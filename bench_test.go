// Package smartds's root benchmarks regenerate every table and figure
// of the paper's evaluation (testing.B harness over the experiment
// runners) plus the ablation studies DESIGN.md calls out. Each
// benchmark runs the experiment in virtual time and reports the
// headline numbers as custom metrics; `go run ./cmd/smartds-bench`
// prints the full tables.
//
// Benchmarks default to quick mode (modeled payloads, short windows).
// Set SMARTDS_BENCH_FULL=1 for full-fidelity runs with real corpus
// data.
package smartds

import (
	"fmt"
	"os"
	"testing"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/corpus"
	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/experiments"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: os.Getenv("SMARTDS_BENCH_FULL") == "", Seed: 42}
}

// logTables attaches the regenerated tables to the benchmark output.
func logTables(b *testing.B, tables []*metrics.Table) {
	b.Helper()
	for _, t := range tables {
		b.Log("\n" + t.String())
	}
}

// BenchmarkFig4MemoryPressure regenerates Figure 4: RDMA forwarding
// throughput under Intel-MLC memory pressure.
func BenchmarkFig4MemoryPressure(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig4(opt)
		if i == 0 {
			logTables(b, []*metrics.Table{tbl})
		}
	}
}

// BenchmarkTable1PCIeLatency regenerates Table 1: DMA latency on an
// idle versus saturated PCIe 3.0 x16 link.
func BenchmarkTable1PCIeLatency(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1(opt)
		if i == 0 {
			logTables(b, []*metrics.Table{tbl})
		}
	}
}

// BenchmarkTable3FPGAResources regenerates Table 3: FPGA resource
// consumption of Acc and SmartDS-1/2/4/6.
func BenchmarkTable3FPGAResources(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table3(opt)
		if i == 0 {
			logTables(b, []*metrics.Table{tbl})
		}
	}
}

// BenchmarkFig7WriteThroughput regenerates Figure 7: throughput and
// latency of serving write requests across the four designs and the
// host-core sweep.
func BenchmarkFig7WriteThroughput(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig7(opt)
		if i == 0 {
			logTables(b, []*metrics.Table{tbl})
		}
	}
}

// BenchmarkFig8BandwidthUsage regenerates Figure 8: host memory and
// PCIe bandwidth occupation per design, including Acc without DDIO.
func BenchmarkFig8BandwidthUsage(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig8(opt)
		if i == 0 {
			logTables(b, tables)
		}
	}
}

// BenchmarkFig9Interference regenerates Figure 9: write-serving
// performance under co-located MLC memory pressure.
func BenchmarkFig9Interference(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig9(opt)
		if i == 0 {
			logTables(b, []*metrics.Table{tbl})
		}
	}
}

// BenchmarkFig10MultiPort regenerates Figure 10: SmartDS throughput,
// latency, and host-side bandwidth versus utilized port count.
func BenchmarkFig10MultiPort(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Fig10(opt)
		if i == 0 {
			logTables(b, []*metrics.Table{tbl})
		}
	}
}

// BenchmarkSec55MultiNIC regenerates the §5.5 estimate: aggregate
// throughput and host budgets with up to 8 SmartDS cards per server.
func BenchmarkSec55MultiNIC(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Sec55(opt)
		if i == 0 {
			logTables(b, []*metrics.Table{tbl})
		}
	}
}

// BenchmarkSimCoreEventsPerSec measures raw simulator throughput on a
// fig7-shaped cluster run — the macro companion to the internal/sim
// micro-benchmarks and the number the run-report sim-perf gate tracks
// (see EXPERIMENTS.md, "Simulator performance"). events/sec counts
// dispatched calendar entries per second of wall time.
func BenchmarkSimCoreEventsPerSec(b *testing.B) {
	var events uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig(middletier.SmartDS)
		cfg.Functional = false
		cfg.Disk.BytesPerSec = 8e9
		c := cluster.New(cfg)
		c.Run(cluster.Workload{Window: 128, Warmup: 2e-3, Measure: 8e-3})
		events += c.Env.Events()
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
}

// --- ablation benches (DESIGN.md "design choices called out") --------

// ablationRun executes one SmartDS configuration and reports Gbps.
func ablationRun(b *testing.B, mutate func(*cluster.Config), w cluster.Workload) cluster.Results {
	b.Helper()
	cfg := cluster.DefaultConfig(middletier.SmartDS)
	cfg.Functional = false
	cfg.Disk.BytesPerSec = 8e9
	if mutate != nil {
		mutate(&cfg)
	}
	c := cluster.New(cfg)
	if w.Window == 0 {
		w = cluster.Workload{Window: 128, Warmup: 2e-3, Measure: 8e-3}
	}
	return c.Run(w)
}

// BenchmarkAblationSplitSize sweeps AAMS's h_size: splitting only the
// 64-byte header versus dragging progressively more of each message
// across PCIe into host memory (4096+64 degenerates to the Acc-like
// full-bounce cost).
func BenchmarkAblationSplitSize(b *testing.B) {
	for _, split := range []int{64, 512, 2048, 4160} {
		split := split
		b.Run(metrics.FormatBytes(float64(split)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := ablationRun(b, func(cfg *cluster.Config) {
					cfg.MT.SplitBytes = split
				}, cluster.Workload{})
				b.ReportMetric(metrics.BytesPerSecToGbps(res.Throughput), "Gbps")
				b.ReportMetric(metrics.BytesPerSecToGbps(res.SDSH2D+res.SDSD2H), "pcieGbps")
				b.ReportMetric(res.Lat.Mean*1e6, "avg_us")
			}
		})
	}
}

// BenchmarkAblationEngineRate sweeps the per-port engine throughput:
// starving it below the port rate makes compression the bottleneck
// (the BF2 failure mode); over-provisioning it buys nothing once the
// port's replication egress binds.
func BenchmarkAblationEngineRate(b *testing.B) {
	for _, gbps := range []float64{10, 25, 50, 100, 200} {
		gbps := gbps
		b.Run(metrics.FormatGbps(metrics.GbpsToBytesPerSec(gbps)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := ablationRun(b, func(cfg *cluster.Config) {
					cfg.MT.SDSEngineRate = metrics.GbpsToBytesPerSec(gbps)
				}, cluster.Workload{})
				b.ReportMetric(metrics.BytesPerSecToGbps(res.Throughput), "Gbps")
				b.ReportMetric(res.Lat.Mean*1e6, "avg_us")
			}
		})
	}
}

// BenchmarkAblationBypass sweeps the latency-sensitive fraction: blocks
// that skip compression save engine time but store (and replicate)
// uncompressed bytes.
func BenchmarkAblationBypass(b *testing.B) {
	for _, frac := range []float64{0, 0.25, 0.5, 1.0} {
		frac := frac
		b.Run(fmt.Sprintf("%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := ablationRun(b, nil, cluster.Workload{
					Window: 128, Warmup: 2e-3, Measure: 8e-3, BypassFraction: frac,
				})
				b.ReportMetric(metrics.BytesPerSecToGbps(res.Throughput), "Gbps")
				b.ReportMetric(res.Lat.Mean*1e6, "avg_us")
			}
		})
	}
}

// BenchmarkAblationEffort sweeps the compression effort knob (§2.2.1):
// higher levels buy ratio with matcher work. This measures the real
// codec on the synthetic corpus.
func BenchmarkAblationEffort(b *testing.B) {
	blocks := benchCorpusBlocks()
	for _, level := range []lz4.Level{lz4.LevelFast, lz4.LevelDefault, lz4.LevelHigh, lz4.LevelMax} {
		level := level
		b.Run(levelName(level), func(b *testing.B) {
			enc := lz4.NewEncoder(4096)
			dst := make([]byte, lz4.CompressBound(4096))
			in, out := 0, 0
			b.SetBytes(4096)
			for i := 0; i < b.N; i++ {
				blk := blocks[i%len(blocks)]
				n, err := enc.Compress(dst, blk, level)
				if err != nil {
					b.Fatal(err)
				}
				in += len(blk)
				out += n
			}
			b.ReportMetric(float64(in)/float64(out), "ratio")
		})
	}
}

func levelName(l lz4.Level) string {
	switch l {
	case lz4.LevelFast:
		return "fast"
	case lz4.LevelDefault:
		return "default"
	case lz4.LevelHigh:
		return "high"
	default:
		return "max"
	}
}

func benchCorpusBlocks() [][]byte {
	c := corpus.New(42)
	blocks := make([][]byte, 64)
	for i := range blocks {
		blocks[i] = c.Block(4096)
	}
	return blocks
}

// BenchmarkLZ4EngineThroughput measures the functional codec inside the
// simulated hardware engine wrapper.
func BenchmarkLZ4EngineThroughput(b *testing.B) {
	_ = device.DefaultHBM() // keep the device package linked for the bench
	blocks := benchCorpusBlocks()
	enc := lz4.NewEncoder(4096)
	dst := make([]byte, lz4.CompressBound(4096))
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, err := enc.Compress(dst, blocks[i%len(blocks)], lz4.LevelDefault); err != nil {
			b.Fatal(err)
		}
	}
}
