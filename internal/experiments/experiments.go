// Package experiments regenerates every table and figure of the
// paper's evaluation (and motivation) sections. Each runner builds the
// workload the paper describes, executes it in virtual time, and
// returns text tables whose rows mirror the paper's series, annotated
// with the paper's reference values where the paper states them.
//
// Index (see DESIGN.md):
//
//	Fig4   - RDMA throughput under memory pressure        (§3.1.2)
//	Table1 - PCIe DMA latency idle vs loaded              (§3.1.3)
//	Fig7   - write throughput + latency per design        (§5.2)
//	Fig8   - host memory and PCIe bandwidth per design    (§5.2)
//	Table3 - FPGA resource consumption                    (§5.1)
//	Fig9   - performance under MLC interference           (§5.3)
//	Fig10  - SmartDS port scaling                         (§5.4)
//	Sec55  - multiple SmartDS cards per server            (§5.5)
package experiments

import (
	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/critpath"
	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/slo"
	"github.com/disagg/smartds/internal/storage"
	"github.com/disagg/smartds/internal/telemetry"
	"github.com/disagg/smartds/internal/trace"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks measurement windows and uses modeled payloads so
	// the full suite runs in seconds (tests, CI). Full runs move real
	// corpus blocks.
	Quick bool
	Seed  uint64
	// Trace, when set, is attached to every cluster an experiment
	// builds; spans and counters from all configurations accumulate in
	// it (export with trace.WriteChromeTrace).
	Trace *trace.Tracer
	// Breakdown appends per-stage latency-attribution tables to the
	// experiments that support them (fig7, ext-reads).
	Breakdown bool
	// FaultSpec overrides the ext-faults campaign schedule (see
	// internal/faults for the grammar). Empty uses DefaultFaultSpec.
	FaultSpec string
	// Replication selects the middle tier's replication protocol for
	// every cluster an experiment builds (primary fan-out, chain, or
	// quorum). The zero value is primary fan-out, the paper's protocol.
	Replication middletier.Protocol
	// Telemetry, when set, collects every cluster's instruments and run
	// records into the central registry; Run threads the experiment id
	// into the run labels automatically.
	Telemetry *telemetry.Registry
	// SLO declares service-level objectives (see internal/slo for the
	// grammar) evaluated by a burn-rate engine on every cluster run;
	// fired alerts land in the telemetry run records. Empty disables.
	SLO []slo.Spec
	// Log, when set, receives structured sim-time events from every
	// layer of every cluster an experiment builds.
	Log *evlog.Logger
	// OnCluster, when set, is called with each new cluster's virtual
	// clock right after construction — the event-log clock follows the
	// currently-running cluster through it.
	OnCluster func(now func() float64)
	// CritpathFolded, when set (with Trace), accumulates every run's
	// critical-path blame as folded stacks for flamegraph export.
	CritpathFolded *critpath.Folded

	// exp is the currently-executing experiment id (set by Run), used
	// to label telemetry run records.
	exp string
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options { return Options{Seed: 42} }

// warmup/measure windows per mode.
func (o Options) windows() (warmup, measure float64) {
	if o.Quick {
		return 2e-3, 8e-3
	}
	return 4e-3, 15e-3
}

func (o Options) functional() bool { return !o.Quick }

// expDisk returns the storage-server disk used across experiments: a
// JBOF-class array (8 GB/s) so back-end flash never masks the
// middle-tier effects the paper isolates.
func expDisk() storage.DiskConfig {
	d := storage.DefaultDisk()
	d.BytesPerSec = 8e9
	return d
}

// newCluster builds a cluster for one experiment configuration.
func (o Options) newCluster(kind middletier.Kind, mutate func(*cluster.Config)) *cluster.Cluster {
	cfg := cluster.DefaultConfig(kind)
	cfg.Seed = o.Seed
	cfg.Functional = o.functional()
	cfg.MT.Protocol = o.Replication
	cfg.Disk = expDisk()
	cfg.Trace = o.Trace
	cfg.CritpathFolded = o.CritpathFolded
	cfg.Telemetry = o.Telemetry
	cfg.TelemetryExp = o.exp
	cfg.SLO = o.SLO
	cfg.Log = o.Log
	if mutate != nil {
		mutate(&cfg)
	}
	c := cluster.New(cfg)
	if o.OnCluster != nil {
		o.OnCluster(c.Env.Now)
	}
	return c
}

// runPeak drives a saturating closed loop sized to the design.
func (o Options) runPeak(c *cluster.Cluster, window int, extra func(*cluster.Workload)) cluster.Results {
	warm, meas := o.windows()
	w := cluster.Workload{Window: window, Warmup: warm, Measure: meas}
	if extra != nil {
		extra(&w)
	}
	return c.Run(w)
}

// gbps formats a byte rate for table cells.
func gbps(bytesPerSec float64) string { return metrics.FormatGbps(bytesPerSec) }

// us formats a latency for table cells.
func us(sec float64) string { return metrics.FormatDuration(sec) }
