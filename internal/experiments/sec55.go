package experiments

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

// Sec55 reproduces the §5.5 scale-up estimate: a 4U middle-tier server
// hosting up to 8 SmartDS cards (two 1x4 PCIe switches). Per-card
// throughput and host-side costs are *measured* (SmartDS-6), then
// aggregated and checked against the host's memory and PCIe budgets;
// the final row compares against the measured CPU-only peak.
func Sec55(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Section 5.5: multiple SmartDS cards per middle-tier server",
		"cards", "aggregate throughput", "host mem demand", "PCIe/switch-port", "fits host budget")

	// Measured per-card behaviour (SmartDS-6) and the CPU-only peak.
	perCard := opt.runFig10Point(sec55Ports(opt))
	cpuCores := 48
	if opt.Quick {
		cpuCores = 16
	}
	cpu := opt.newCluster(middletier.CPUOnly, func(cc *cluster.Config) { cc.MT.Workers = cpuCores })
	cpuRes := opt.runPeak(cpu, 8*cpuCores, nil)

	const (
		hostMemBudget    = 1228e9 / 8 // 8 channels theoretical (paper)
		pcieSwitchBudget = 102.4e9 / 8
		cardsPerSwitch   = 4
	)
	cardMem := perCard.MemReadRate + perCard.MemWriteRate
	cardPCIe := perCard.SDSH2D + perCard.SDSD2H

	var best float64
	for cards := 1; cards <= 8; cards++ {
		agg := perCard.Throughput * float64(cards)
		memDemand := cardMem * float64(cards)
		perSwitch := cardPCIe * float64(minInt(cards, cardsPerSwitch))
		fits := memDemand <= hostMemBudget && perSwitch <= pcieSwitchBudget
		if fits {
			best = agg
		}
		tbl.AddRow(cards, gbps(agg), gbps(memDemand), gbps(perSwitch), fits)
	}
	if cpuRes.Throughput > 0 {
		tbl.AddNote("measured speedup over CPU-only peak: %.1fx (paper: 51.6x with 8 cards)",
			best/cpuRes.Throughput)
	}
	tbl.AddNote(fmt.Sprintf("budgets: host memory %s theoretical, %s per PCIe 3.0x16 switch root",
		gbps(hostMemBudget), gbps(pcieSwitchBudget)))
	return tbl
}

// sec55Ports picks the per-card port count (6 in the paper).
func sec55Ports(opt Options) int {
	if opt.Quick {
		return 2
	}
	return 6
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
