package experiments

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

// DefaultFaultSpec is the ext-faults campaign: client-link loss, a
// storage-server crash with rebuild, a degraded storage link, a
// compression-engine outage, and a short middle-tier restart — spread
// out so each fault's recovery is visible in isolation.
const DefaultFaultSpec = "loss:vm0->mt@4ms+6ms:0.03;" +
	"crash:ss1@8ms+6ms;" +
	"degrade:ss2@16ms+4ms:0.25;" +
	"engine:mt@21ms+3ms;" +
	"restart:mt@26ms+1.5ms"

// faultReplicateTimeout bounds replication fan-outs under faults (see
// middletier.Config.ReplicateTimeout); 1.5 ms sits well above healthy
// fan-out latency and below the client's patience.
const faultReplicateTimeout = 1.5e-3

// ExtFaults replays one deterministic fault campaign against all four
// middle-tier designs under identical load and reports how each
// degrades and recovers. Same seed + same spec reproduces every table
// byte for byte.
func ExtFaults(opt Options) []*metrics.Table {
	spec := opt.FaultSpec
	if spec == "" {
		spec = DefaultFaultSpec
	}
	sched, err := faults.Parse(spec)
	if err != nil {
		t := metrics.NewTable("Extension: fault campaign", "error")
		t.AddRow(err.Error())
		return []*metrics.Table{t}
	}

	tbl := metrics.NewTable(
		"Extension: fault campaign across middle-tier designs",
		"config", "throughput", "p99", "errors", "degraded", "retries",
		"rebuild", "reroute", "max gap")

	// The window must cover the whole campaign plus recovery tail.
	warm := 2e-3
	meas := 12e-3
	if end := sched.LastEnd() + 6e-3 - warm; end > meas {
		meas = end
	}
	// Quick mode trades load for wall time; the faults still bite, the
	// saturation point just is not probed.
	window := 128
	if opt.Quick {
		window = 32
	}

	var sdsStats faults.Stats
	var sdsReport *metrics.Table
	for _, kind := range []middletier.Kind{
		middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS,
	} {
		c := opt.newCluster(kind, func(cc *cluster.Config) {
			cc.NumStorage = 5 // room to lose one and still place 3 replicas
			cc.MT.ReplicateTimeout = faultReplicateTimeout
		})
		inj, err := c.ApplyFaults(sched)
		if err != nil {
			tbl.AddRow(kind.String(), "arm failed: "+err.Error(), "", "", "", "", "", "", "")
			continue
		}
		res := c.Run(cluster.Workload{Window: window, Warmup: warm, Measure: meas})
		stats := inj.Monitor.Stats(sched)

		reroute := "-"
		for _, r := range stats.Recoveries {
			if r.Event.Kind == faults.Crash {
				if r.TimeToRecover >= 0 {
					reroute = us(r.TimeToRecover)
				} else {
					reroute = "never"
				}
				break
			}
		}
		tbl.AddRow(kind.String(), gbps(res.Throughput), us(res.Lat.P99), res.Errors,
			c.MT.Degraded, c.MT.ReplicateRetries,
			fmt.Sprintf("%.0f KB", c.MT.RebuildBytes/1e3),
			reroute, us(stats.MaxGap))

		if opt.functional() {
			if derr := c.CheckAckedWrites(); derr != nil {
				tbl.AddNote("%s DURABILITY VIOLATION: %v", kind, derr)
			}
		}
		if kind == middletier.SmartDS {
			sdsStats = stats
			sdsReport = inj.Report()
		}
	}

	tbl.AddNote("campaign: %s", sched)
	tbl.AddNote("identical schedule, seed, and load per design; replicate timeout %s", us(faultReplicateTimeout))
	if opt.functional() {
		tbl.AddNote("durability verified: every acked write readable from a current replica (violations would be flagged above)")
	} else {
		tbl.AddNote("quick mode models payloads; run without -quick for byte-level durability verification")
	}

	out := []*metrics.Table{tbl}
	if sdsReport != nil {
		out = append(out, sdsReport)
		st := sdsStats.Table()
		out = append(out, st)
	}
	return out
}
