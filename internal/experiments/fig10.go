package experiments

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

// Fig10 reproduces the multi-port scaling experiment (§5.4): SmartDS
// with 1/2/4/6 utilized 100 GbE ports, two host cores per port. The
// paper reports linear throughput scaling with flat latency, because
// only headers cross PCIe regardless of port count.
func Fig10(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Figure 10: effect of the number of SmartDS network ports",
		"ports", "throughput", "avg lat", "p99", "p999", "host mem r+w", "PCIe H2D+D2H")

	ports := []int{1, 2, 4, 6}
	if opt.Quick {
		ports = []int{1, 2}
	}
	for _, n := range ports {
		res := opt.runFig10Point(n)
		tbl.AddRow(fmt.Sprintf("SmartDS-%d", n), gbps(res.Throughput),
			us(res.Lat.Mean), us(res.Lat.P99), us(res.Lat.P999),
			gbps(res.MemReadRate+res.MemWriteRate), gbps(res.SDSH2D+res.SDSD2H))
	}
	tbl.AddNote("paper: throughput scales linearly with ports (SmartDS-4 = 4x SmartDS-1);")
	tbl.AddNote("paper: avg/p99/p999 latency roughly constant across port counts")
	return tbl
}

// runFig10Point measures SmartDS with n ports: one client per port
// (each with its own saturating window), three storage servers per
// port so the back end never bottlenecks.
func (o Options) runFig10Point(n int) cluster.Results {
	c := o.newCluster(middletier.SmartDS, func(cc *cluster.Config) {
		cc.MT.Ports = n
		cc.MT.Workers = 2 * n
		cc.NumClients = n
		cc.NumStorage = 3 * n
	})
	return o.runPeak(c, 192, nil)
}
