package experiments

import (
	"fmt"

	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/metrics"
)

// Table3 reproduces the FPGA resource consumption table: the
// accelerator-only design and SmartDS with 1/2/4/6 ports, as LUT/REG/
// BRAM counts and utilization of the VCU128.
func Table3(Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Table 3: FPGA resource consumption (VCU128)",
		"Name", "LUTs (K)", "REGS (K)", "BRAMs")
	board := device.VCU128()

	row := func(name string, r device.FPGAResources) {
		lut, reg, bram := r.Percent(board)
		tbl.AddRow(name,
			fmt.Sprintf("%.0f (%.1f%%)", r.LUTs, lut),
			fmt.Sprintf("%.0f (%.1f%%)", r.Regs, reg),
			fmt.Sprintf("%.0f (%.1f%%)", r.BRAMs, bram))
	}
	row(`"Acc"`, device.AccFootprint())
	for _, ports := range []int{1, 2, 4, 6} {
		row(fmt.Sprintf(`"SmartDS-%d"`, ports), device.SmartDSFootprint(ports))
	}
	tbl.AddNote("paper: 112/157/313/627/941 K LUTs for Acc and SmartDS-1/2/4/6")
	return tbl
}
