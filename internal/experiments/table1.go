package experiments

import (
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/sim"
)

// Table1 reproduces the PCIe latency microbenchmark (§3.1.3): DMA
// read (H2D) and write (D2H) completion latency with the link idle
// versus saturated by background DMA traffic.
func Table1(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Table 1: PCIe latency under different pressure",
		"", "H2D latency", "D2H latency")

	idleH2D, idleD2H := table1Point(false)
	loadH2D, loadD2H := table1Point(true)
	tbl.AddRow("Under Loaded", us(idleH2D), us(idleD2H))
	tbl.AddRow("Heavily Loaded", us(loadH2D), us(loadD2H))
	tbl.AddNote("paper: 1.4/1.4 us idle; 11.3/6.6 us heavily loaded")
	return tbl
}

// table1Point measures mean small-DMA latency with optional background
// pressure, mirroring the FPGA microbenchmark the paper uses.
func table1Point(loaded bool) (h2d, d2h float64) {
	env := sim.NewEnv()
	link := pcie.New(env, "u280", pcie.DefaultConfig())

	if loaded {
		// Saturating background DMA in both directions.
		for i := 0; i < 8; i++ {
			env.Go("bg", func(p *sim.Proc) {
				for p.Now() < 10e-3 {
					p.Wait(link.StartDMA(pcie.H2D, 1<<20))
				}
			})
			env.Go("bg", func(p *sim.Proc) {
				for p.Now() < 10e-3 {
					p.Wait(link.StartDMA(pcie.D2H, 1<<20))
				}
			})
		}
	}

	const probes = 64
	var sumH, sumD float64
	env.Go("probe", func(p *sim.Proc) {
		p.Sleep(1e-3) // let pressure build
		for i := 0; i < probes; i++ {
			start := p.Now()
			link.DMARead(p, 64)
			sumH += p.Now() - start
			start = p.Now()
			link.DMAWrite(p, 64)
			sumD += p.Now() - start
			p.Sleep(20e-6)
		}
	})
	env.Run(0)
	return sumH / probes, sumD / probes
}
