package experiments

import (
	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

// Fig8 reproduces the resource-occupation comparison (§5.2, Fig. 8):
// host memory read/write bandwidth and per-device PCIe bandwidth while
// each design serves write requests at peak, including the Accel
// baseline with DDIO disabled.
func Fig8(opt Options) []*metrics.Table {
	memTbl := metrics.NewTable(
		"Figure 8a: host memory bandwidth while serving writes",
		"config", "mem read", "mem write", "payload throughput")
	pcieTbl := metrics.NewTable(
		"Figure 8b: CPU PCIe link bandwidth while serving writes",
		"config", "NIC H2D", "NIC D2H", "Accel H2D", "Accel D2H", "SmartDS H2D", "SmartDS D2H")

	type cfg struct {
		label  string
		kind   middletier.Kind
		cores  int
		window int
		ddio   bool
	}
	cpuCores := 48
	if opt.Quick {
		cpuCores = 16
	}
	configs := []cfg{
		{"CPU-only (peak)", middletier.CPUOnly, cpuCores, 8 * cpuCores, true},
		{"Acc w/ DDIO", middletier.Accel, 2, 192, true},
		{"Acc w/o DDIO", middletier.Accel, 2, 192, false},
		{"SmartDS-1", middletier.SmartDS, 2, 192, true},
	}
	for _, fc := range configs {
		c := opt.newCluster(fc.kind, func(cc *cluster.Config) {
			cc.MT.Workers = fc.cores
			cc.MT.DDIO = fc.ddio
		})
		res := opt.runPeak(c, fc.window, nil)
		memTbl.AddRow(fc.label, gbps(res.MemReadRate), gbps(res.MemWriteRate), gbps(res.Throughput))
		pcieTbl.AddRow(fc.label,
			gbps(res.NICH2D), gbps(res.NICD2H),
			gbps(res.AccelH2D), gbps(res.AccelD2H),
			gbps(res.SDSH2D), gbps(res.SDSD2H))
	}
	memTbl.AddNote("paper: CPU-only read ~= write and grows with cores; Acc w/DDIO mostly writes;")
	memTbl.AddNote("paper: Acc w/o DDIO read bandwidth rises sharply; SmartDS ~0")
	pcieTbl.AddNote("paper: CPU-only H2D nears PCIe 3.0x16 limit; Acc doubles PCIe traffic;")
	pcieTbl.AddNote("paper: SmartDS uses ~2%% of PCIe bandwidth (headers + completions only)")
	return []*metrics.Table{memTbl, pcieTbl}
}
