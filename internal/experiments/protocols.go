package experiments

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

// ExtFaultsProtocols replays the ext-faults campaign under every
// replication protocol x middle-tier design combination: the same
// deterministic schedule, seed, and load for each cell, so the table
// isolates what the protocol itself costs. Columns report client
// throughput, tail latency (p999), client-visible errors, time to
// recover from the storage-server crash, and the total re-replication
// traffic the campaign triggered (retry resends + crash rebuild
// streams + quorum read-repairs + substitution backfills). In
// functional mode every cell is additionally checked against the
// protocol-generic durability contract (cluster.CheckAckedWrites).
func ExtFaultsProtocols(opt Options) []*metrics.Table {
	spec := opt.FaultSpec
	if spec == "" {
		spec = DefaultFaultSpec
	}
	sched, err := faults.Parse(spec)
	if err != nil {
		t := metrics.NewTable("Extension: protocol comparison", "error")
		t.AddRow(err.Error())
		return []*metrics.Table{t}
	}

	tbl := metrics.NewTable(
		"Extension: replication protocols under the fault campaign",
		"protocol", "config", "throughput", "p999", "errors",
		"TTR(crash)", "re-replication")

	// Same window math as ExtFaults: cover the campaign + recovery tail.
	warm := 2e-3
	meas := 12e-3
	if end := sched.LastEnd() + 6e-3 - warm; end > meas {
		meas = end
	}
	window := 128
	if opt.Quick {
		window = 32
	}

	violations := 0
	for _, proto := range middletier.Protocols() {
		for _, kind := range []middletier.Kind{
			middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS,
		} {
			po := opt
			po.Replication = proto
			c := po.newCluster(kind, func(cc *cluster.Config) {
				cc.NumStorage = 5 // room to lose one and still place 3 replicas
				cc.MT.ReplicateTimeout = faultReplicateTimeout
			})
			inj, err := c.ApplyFaults(sched)
			if err != nil {
				tbl.AddRow(proto.String(), kind.String(), "arm failed: "+err.Error(),
					"", "", "", "")
				continue
			}
			res := c.Run(cluster.Workload{Window: window, Warmup: warm, Measure: meas})
			stats := inj.Monitor.Stats(sched)

			ttr := "-"
			for _, r := range stats.Recoveries {
				if r.Event.Kind == faults.Crash {
					if r.TimeToRecover >= 0 {
						ttr = us(r.TimeToRecover)
					} else {
						ttr = "never"
					}
					break
				}
			}
			rerep := c.MT.RetryBytes + c.MT.RebuildBytes + c.MT.RepairBytes + c.MT.BackfillBytes
			tbl.AddRow(proto.String(), kind.String(), gbps(res.Throughput),
				us(res.Lat.P999), res.Errors, ttr, fmt.Sprintf("%.0f KB", rerep/1e3))

			if opt.functional() {
				if derr := c.CheckAckedWrites(); derr != nil {
					violations++
					tbl.AddNote("%s/%s DURABILITY VIOLATION: %v", proto, kind, derr)
				}
			}
		}
	}

	tbl.AddNote("campaign: %s", sched)
	tbl.AddNote("identical schedule, seed, and load per cell; replicate timeout %s", us(faultReplicateTimeout))
	tbl.AddNote("re-replication = retry resends + crash rebuild + read-repair + backfill bytes")
	if opt.functional() {
		if violations == 0 {
			tbl.AddNote("durability verified for all %d cells: every acked write held by a read-quorum-intersecting replica set", 3*4)
		}
	} else {
		tbl.AddNote("quick mode models payloads; run without -quick for byte-level durability verification")
	}
	return []*metrics.Table{tbl}
}
