package experiments

import (
	"fmt"
	"sort"

	"github.com/disagg/smartds/internal/metrics"
)

// Runner regenerates one paper artifact.
type Runner func(Options) []*metrics.Table

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig4":   func(o Options) []*metrics.Table { return []*metrics.Table{Fig4(o)} },
	"table1": func(o Options) []*metrics.Table { return []*metrics.Table{Table1(o)} },
	"table3": func(o Options) []*metrics.Table { return []*metrics.Table{Table3(o)} },
	"fig7": func(o Options) []*metrics.Table {
		out := []*metrics.Table{Fig7(o)}
		if o.Breakdown {
			out = append(out, Fig7Breakdown(o)...)
		}
		return out
	},
	"fig8":  Fig8,
	"fig9":  func(o Options) []*metrics.Table { return []*metrics.Table{Fig9(o)} },
	"fig10": func(o Options) []*metrics.Table { return []*metrics.Table{Fig10(o)} },
	"sec55": func(o Options) []*metrics.Table { return []*metrics.Table{Sec55(o)} },
	// Extensions beyond the paper's evaluation.
	"ext-reads": func(o Options) []*metrics.Table {
		out := []*metrics.Table{ExtReads(o)}
		if o.Breakdown {
			out = append(out, ExtReadsBreakdown(o)...)
		}
		return out
	},
	"ext-failover":         func(o Options) []*metrics.Table { return []*metrics.Table{ExtFailover(o)} },
	"ext-faults":           ExtFaults,
	"ext-faults-protocols": ExtFaultsProtocols,
}

// Names lists the available experiment ids in stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(name string, opt Options) ([]*metrics.Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	opt.exp = name
	return r(opt), nil
}

// RunAll executes every experiment in order.
func RunAll(opt Options) []*metrics.Table {
	var out []*metrics.Table
	for _, name := range Names() {
		tables, _ := Run(name, opt)
		out = append(out, tables...)
	}
	return out
}
