package experiments

import (
	"fmt"
	"math"

	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

// Fig4 reproduces the motivation microbenchmark: one-sided-RDMA-style
// packet forwarding (4 MB messages at 100 GbE) on a server whose cores
// all run the Intel MLC injector, sweeping the delay between injected
// memory requests. The paper observes RDMA throughput collapsing to
// ~46% of its uncontended value at maximum pressure while MLC consumes
// the bus (~120 GB/s).
func Fig4(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Figure 4: RDMA throughput under memory pressure (4 MB messages, 100 GbE)",
		"MLC delay", "RDMA (Gbps)", "MLC (GB/s)", "RDMA vs idle")

	delays := []float64{math.Inf(1), 2e-6, 1e-6, 500e-9, 200e-9, 100e-9, 0}
	baseline := 0.0
	for _, delay := range delays {
		rdmaBps, mlcBps := fig4Point(opt, delay)
		if math.IsInf(delay, 1) {
			baseline = rdmaBps
		}
		label := "none"
		if !math.IsInf(delay, 1) {
			label = metrics.FormatDuration(delay)
		}
		frac := 1.0
		if baseline > 0 {
			frac = rdmaBps / baseline
		}
		tbl.AddRow(label, metrics.BytesPerSecToGbps(rdmaBps), mlcBps/1e9, fmt.Sprintf("%.0f%%", frac*100))
	}
	tbl.AddNote("paper: ~46%% of uncontended RDMA throughput at maximum pressure")
	return tbl
}

// fig4Point measures one pressure level.
func fig4Point(opt Options, delay float64) (rdmaBytesPerSec, mlcBytesPerSec float64) {
	env := sim.NewEnv()
	fabric := netsim.NewFabric(env, netsim.DefaultConfig())
	hostMem := mem.New(env, mem.DefaultConfig())

	// The forwarding server: a plain NIC bouncing messages through host
	// memory (in via D2H + DRAM write, out via H2D + DRAM read).
	serverPCIe := pcie.New(env, "fwd.pcie", pcie.DefaultConfig())
	serverPort := fabric.NewPort("fwd", 12.5e9)
	serverStack := rdma.NewStack(env, serverPort, rdma.DefaultConfig())
	clientStack := rdma.NewStack(env, fabric.NewPort("gen", 12.5e9), rdma.DefaultConfig())
	sinkStack := rdma.NewStack(env, fabric.NewPort("sink", 12.5e9), rdma.DefaultConfig())

	in := serverStack.CreateQP()
	genQP := clientStack.CreateQP()
	rdma.Connect(genQP, in)
	out := serverStack.CreateQP()
	sinkQP := sinkStack.CreateQP()
	rdma.Connect(out, sinkQP)

	const msgSize = 4 << 20
	forwarded := metrics.NewMeter(0)
	// The NIC's DMA engine is a two-stage pipeline (RX placement, TX
	// fetch), each moving one bulk transfer at a time. With the bus
	// idle the stages overlap into line rate; under MLC pressure each
	// stage's single transfer gets only a fair share of the bus and the
	// NIC cannot claim more by queueing deeper — the §3.1.2 collapse.
	rxStage := env.NewResource("fwd.rxdma", 1)
	txStage := env.NewResource("fwd.txdma", 1)
	in.OnRecv = func(m *rdma.Message) {
		env.Go("fwd", func(p *sim.Proc) {
			rxStage.Acquire(p)
			w1 := serverPCIe.StartDMA(pcie.D2H, m.Size)
			p.Wait(hostMem.StartWrite(m.Size))
			p.Wait(w1)
			rxStage.Release()
			txStage.Acquire(p)
			r1 := serverPCIe.StartDMA(pcie.H2D, m.Size)
			p.Wait(hostMem.StartRead(m.Size))
			p.Wait(r1)
			txStage.Release()
			out.SendSized(nil, m.Size)
			forwarded.Add(m.Size)
		})
	}

	// Closed-loop generator with a small window: one-sided RDMA keeps
	// only a couple of 4 MB WRs in flight.
	running := true
	var pump func()
	inflight := 0
	pump = func() {
		for inflight < 4 && running {
			inflight++
			ev := genQP.SendSized(nil, msgSize)
			ev.OnTrigger(func(interface{}) {
				inflight--
				pump()
			})
		}
	}
	env.Go("gen", func(p *sim.Proc) { pump() })

	var mlc *mem.MLC
	if !math.IsInf(delay, 1) {
		mlc = mem.NewMLC(env, hostMem, mem.MLCConfig{Workers: 16, Delay: delay, Chunk: 256 << 10})
		mlc.Start()
	}

	warm, meas := opt.windows()
	// 4 MB messages need a longer window for stable numbers.
	warm, meas = warm*2, meas*2
	var rate, mlcRate float64
	env.At(warm, func() {
		forwarded.MarkWindow(warm)
		if mlc != nil {
			mlc.MarkWindow()
		}
	})
	env.At(warm+meas, func() {
		rate = forwarded.MarkWindow(warm + meas)
		if mlc != nil {
			mlcRate = mlc.MarkWindow()
			mlc.Stop()
		}
		running = false
	})
	env.Run(warm + meas + 1e-3)
	return rate, mlcRate
}
