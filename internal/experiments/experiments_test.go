package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

func quickOpts() Options { return Options{Quick: true, Seed: 42} }

// skipInShort gates the full-load driver tests: each one runs real
// cluster workloads for tens of seconds, and race instrumentation
// multiplies that several-fold. Short mode (which the race CI step
// uses) keeps the fast calibration tests; the concurrency these
// drivers exercise is race-tested directly in internal/cluster,
// internal/middletier, and internal/rdma.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-load driver run; skipped in short mode")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ext-failover", "ext-faults", "ext-faults-protocols", "ext-reads", "fig10", "fig4", "fig7", "fig8", "fig9", "sec55", "table1", "table3"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("experiments registered: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", quickOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1MatchesPaperCalibration(t *testing.T) {
	idleH, idleD := table1Point(false)
	loadH, loadD := table1Point(true)
	if math.Abs(idleH-1.4e-6) > 0.2e-6 || math.Abs(idleD-1.4e-6) > 0.2e-6 {
		t.Fatalf("idle latencies %v/%v, want ~1.4us", idleH, idleD)
	}
	if loadH < 8e-6 || loadH > 13e-6 {
		t.Fatalf("loaded H2D %v, want ~11.3us", loadH)
	}
	if loadD < 4.5e-6 || loadD > 8e-6 {
		t.Fatalf("loaded D2H %v, want ~6.6us", loadD)
	}
	if loadH <= loadD {
		t.Fatalf("paper shape: loaded H2D (%v) > loaded D2H (%v)", loadH, loadD)
	}
}

func TestTable3Shape(t *testing.T) {
	tbl := Table3(quickOpts())
	out := tbl.String()
	for _, want := range []string{"Acc", "SmartDS-6", "941", "112"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestFig4PressureShape(t *testing.T) {
	opt := quickOpts()
	free, _ := fig4Point(opt, math.Inf(1))
	loaded, mlcRate := fig4Point(opt, 0)
	if free < metrics.GbpsToBytesPerSec(80) {
		t.Fatalf("uncontended RDMA only %s", metrics.FormatGbps(free))
	}
	frac := loaded / free
	if frac > 0.75 || frac < 0.2 {
		t.Fatalf("pressure drop to %.0f%%, want the paper's collapse toward ~46%%", frac*100)
	}
	if mlcRate < 50e9 {
		t.Fatalf("MLC only sustained %.1f GB/s under its own saturation", mlcRate/1e9)
	}
}

func TestFig7HeadlineShapes(t *testing.T) {
	skipInShort(t)
	opt := quickOpts()
	cpu2 := opt.runFig7Point(fig7Config{middletier.CPUOnly, 2, "", 16})
	cpu48 := opt.runFig7Point(fig7Config{middletier.CPUOnly, 48, "", 8 * 48})
	sds := opt.runFig7Point(fig7Config{middletier.SmartDS, 2, "", 192})
	bf2 := opt.runFig7Point(fig7Config{middletier.BF2, 0, "", 192})

	// CPU-only scales with cores but stays compression-bound.
	if cpu48.Throughput < 5*cpu2.Throughput {
		t.Fatalf("CPU-only scaling broken: %s -> %s",
			metrics.FormatGbps(cpu2.Throughput), metrics.FormatGbps(cpu48.Throughput))
	}
	// SmartDS-1 with 2 cores beats CPU-only with 2 cores by a wide margin
	// and at least matches CPU-only peak.
	if sds.Throughput < 5*cpu2.Throughput {
		t.Fatalf("SmartDS-1 (%s) should dwarf 2-core CPU-only (%s)",
			metrics.FormatGbps(sds.Throughput), metrics.FormatGbps(cpu2.Throughput))
	}
	// Paper §5.2: SmartDS-1 with 2 cores reaches "the same throughput"
	// CPU-only needs all 48 logical cores for (both are bounded by the
	// port's replication egress / compression capacity).
	if sds.Throughput < 0.9*cpu48.Throughput {
		t.Fatalf("SmartDS-1 (%s) well below CPU-only peak (%s)",
			metrics.FormatGbps(sds.Throughput), metrics.FormatGbps(cpu48.Throughput))
	}
	// BF2 is bounded by its ~40 Gbps engine.
	bf2Gbps := metrics.BytesPerSecToGbps(bf2.Throughput)
	if bf2Gbps > 45 {
		t.Fatalf("BF2 exceeded its engine bound: %.1f Gbps", bf2Gbps)
	}
	if bf2Gbps < 15 {
		t.Fatalf("BF2 implausibly slow: %.1f Gbps", bf2Gbps)
	}
}

func TestFig10LinearScaling(t *testing.T) {
	skipInShort(t)
	opt := quickOpts()
	r1 := opt.runFig10Point(1)
	r2 := opt.runFig10Point(2)
	ratio := r2.Throughput / r1.Throughput
	if ratio < 1.7 {
		t.Fatalf("port scaling 1->2 gave %.2fx, want ~2x", ratio)
	}
	// Latency stays in the same regime.
	if r2.Lat.Mean > 3*r1.Lat.Mean {
		t.Fatalf("multi-port latency exploded: %v vs %v", r2.Lat.Mean, r1.Lat.Mean)
	}
}

func TestFig9IsolationShape(t *testing.T) {
	skipInShort(t)
	// Under full MLC pressure, CPU-only loses significant throughput;
	// SmartDS barely changes. Run the minimal two-point version inline.
	opt := quickOpts()
	tbl := Fig9(opt)
	out := tbl.String()
	if !strings.Contains(out, "CPU-only") || !strings.Contains(out, "SmartDS-1") {
		t.Fatalf("fig9 table malformed:\n%s", out)
	}
}

func TestSec55TableShape(t *testing.T) {
	skipInShort(t)
	tbl := Sec55(quickOpts())
	out := tbl.String()
	if !strings.Contains(out, "cards") || !strings.Contains(out, "speedup over CPU-only") {
		t.Fatalf("sec55 table malformed:\n%s", out)
	}
}

func TestRunAllQuickProducesTables(t *testing.T) {
	skipInShort(t)
	tables := RunAll(quickOpts())
	if len(tables) < 10 {
		t.Fatalf("RunAll produced %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("empty table %q", tb.Title)
		}
	}
}

func TestExtFailoverZeroErrors(t *testing.T) {
	skipInShort(t)
	tbl := ExtFailover(quickOpts())
	out := tbl.String()
	if !strings.Contains(out, "server 0 down") || !strings.Contains(out, "recovered") {
		t.Fatalf("failover table malformed:\n%s", out)
	}
	// The dead-server-writes cell for the outage phase must be 0.
	for _, row := range tbl.Rows {
		if row[0] == "server 0 down" {
			if row[3] != "0" {
				t.Fatalf("errors during outage: %s", row[3])
			}
			if row[4] != "0" {
				t.Fatalf("dead server received writes: %s", row[4])
			}
		}
	}
}

func TestExtReadsServesBothOps(t *testing.T) {
	skipInShort(t)
	tbl := ExtReads(quickOpts())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] == "0" || row[5] == "0" {
			t.Fatalf("config %s served no reads or writes: %v", row[0], row)
		}
	}
}
