package experiments

import (
	"fmt"
	"strings"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/trace"
)

// Extension experiments: beyond the paper's figures, exercising the
// parts of the system the paper describes but does not evaluate —
// the read path (§2.2.2; production traffic is ~5 writes : 1 read)
// and storage-server fail-over (§2.2.3 maintenance services).

// ExtReads measures each design under the paper's production mix: one
// read per five writes. Reads fetch the stored frame from one replica
// and decompress it (7x cheaper than compression on CPUs; free on the
// engines).
func ExtReads(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Extension: production read/write mix (1 read : 5 writes)",
		"config", "throughput", "avg lat", "p99", "reads served", "writes served")

	type cfg struct {
		label  string
		kind   middletier.Kind
		cores  int
		window int
	}
	cpuCores := 48
	if opt.Quick {
		cpuCores = 16
	}
	configs := []cfg{
		{"CPU-only (peak)", middletier.CPUOnly, cpuCores, 8 * cpuCores},
		{"Acc", middletier.Accel, 2, 192},
		{"BF2", middletier.BF2, 0, 192},
		{"SmartDS-1", middletier.SmartDS, 2, 192},
	}
	for _, fc := range configs {
		c := opt.newCluster(fc.kind, func(cc *cluster.Config) {
			if fc.cores > 0 {
				cc.MT.Workers = fc.cores
			}
		})
		warm, meas := opt.windows()
		res := c.Run(cluster.Workload{
			Window: fc.window, Warmup: warm, Measure: meas,
			ReadFraction: 1.0 / 6.0, // 5:1 writes:reads
		})
		tbl.AddRow(fc.label, gbps(res.Throughput), us(res.Lat.Mean), us(res.Lat.P99),
			c.MT.ReadsDone, c.MT.WritesDone)
	}
	tbl.AddNote("paper §2.2.3: writes outnumber reads ~5x; decompression is ~7x cheaper per core")
	return tbl
}

// ExtReadsBreakdown runs the production mix on SmartDS with a private
// tracer and attributes mean latency to pipeline stages for both the
// write path and the read path.
func ExtReadsBreakdown(opt Options) []*metrics.Table {
	o := opt
	tr := trace.New(1 << 16)
	o.Trace = tr
	c := o.newCluster(middletier.SmartDS, func(cc *cluster.Config) {
		cc.MT.Workers = 2
	})
	warm, meas := o.windows()
	res := c.Run(cluster.Workload{
		Window: 192, Warmup: warm, Measure: meas,
		ReadFraction: 1.0 / 6.0,
	})
	// The measured mean mixes both ops; reconcile each path against its
	// own traced end-to-end client span instead.
	var writeE2E, readE2E float64
	for _, s := range tr.Spans() {
		switch {
		case strings.HasSuffix(s.Label, "/write"):
			writeE2E = s.Mean
		case strings.HasSuffix(s.Label, "/read"):
			readE2E = s.Mean
		}
	}
	wb := cluster.StageBreakdownFor(tr, cluster.WriteStages, writeE2E)
	rb := cluster.StageBreakdownFor(tr, cluster.ReadStages, readE2E)
	wt := wb.Table("ext-reads write-latency breakdown (SmartDS-1)")
	rt := rb.Table("ext-reads read-latency breakdown (SmartDS-1)")
	for _, t := range []*metrics.Table{wt, rt} {
		t.AddNote("measured mixed-op mean latency: %s", us(res.Lat.Mean))
		t.AddNote("net/request, mt/parse, and net/reply blend both ops; run fig7 -breakdown for an exact write-only tiling")
	}
	return []*metrics.Table{wt, rt}
}

// ExtFailover kills one storage server mid-run: the middle tier's
// fail-over path must reroute replication with zero client-visible
// errors, and the dead server must stop receiving traffic.
func ExtFailover(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Extension: storage-server fail-over during a write burst",
		"phase", "throughput", "avg lat", "errors", "dead-server writes")

	c := opt.newCluster(middletier.SmartDS, func(cc *cluster.Config) {
		cc.NumStorage = 5 // room to lose one and still place 3 replicas
	})
	warm, meas := opt.windows()

	// Phase 1: all servers healthy.
	before := c.Run(cluster.Workload{Window: 192, Warmup: warm, Measure: meas})
	w0 := c.Storage[0].Writes
	tbl.AddRow("healthy", gbps(before.Throughput), us(before.Lat.Mean), before.Errors, w0)

	// Fail server 0 and keep writing.
	c.MT.SetServerDown(0, true)
	after := c.Run(cluster.Workload{Window: 192, Warmup: warm, Measure: meas})
	tbl.AddRow("server 0 down", gbps(after.Throughput), us(after.Lat.Mean), after.Errors,
		c.Storage[0].Writes-w0)

	// Recover it.
	c.MT.SetServerDown(0, false)
	rec := c.Run(cluster.Workload{Window: 192, Warmup: warm, Measure: meas})
	tbl.AddRow("recovered", gbps(rec.Throughput), us(rec.Lat.Mean), rec.Errors,
		fmt.Sprintf("+%d", c.Storage[0].Writes-w0))

	tbl.AddNote("writes during the outage route around the dead server; zero client errors")
	return tbl
}
