package experiments

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/trace"
)

// fig7Config is one point of the §5.2 comparison.
type fig7Config struct {
	kind   middletier.Kind
	cores  int
	label  string
	window int
}

// fig7Sweep lists the paper's core-count sweep per design.
func fig7Sweep(quick bool) []fig7Config {
	var out []fig7Config
	cpuCores := []int{1, 2, 4, 8, 16, 24, 32, 48}
	accCores := []int{1, 2, 4, 8}
	sdsCores := []int{1, 2, 4}
	if quick {
		cpuCores = []int{2, 8, 48}
		accCores = []int{2}
		sdsCores = []int{2}
	}
	for _, n := range cpuCores {
		out = append(out, fig7Config{middletier.CPUOnly, n, fmt.Sprintf("CPU-only/%d", n), 8 * n})
	}
	for _, n := range accCores {
		out = append(out, fig7Config{middletier.Accel, n, fmt.Sprintf("Acc/%d", n), 192})
	}
	out = append(out, fig7Config{middletier.BF2, 0, "BF2", 192})
	for _, n := range sdsCores {
		out = append(out, fig7Config{middletier.SmartDS, n, fmt.Sprintf("SmartDS-1/%d", n), 192})
	}
	return out
}

// runFig7Point executes one configuration at saturating load.
func (o Options) runFig7Point(fc fig7Config) cluster.Results {
	c := o.newCluster(fc.kind, func(cfg *cluster.Config) {
		if fc.cores > 0 {
			cfg.MT.Workers = fc.cores
		}
	})
	return o.runPeak(c, fc.window, nil)
}

// Fig7 reproduces the §5.2 throughput and latency comparison: write
// requests, 4 KB blocks, 3-way replication, sweeping the middle-tier
// host cores per design.
func Fig7(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Figure 7: throughput and latency of serving write requests",
		"config", "throughput", "avg lat", "p99", "p999")
	for _, fc := range fig7Sweep(opt.Quick) {
		res := opt.runFig7Point(fc)
		tbl.AddRow(fc.label, gbps(res.Throughput),
			us(res.Lat.Mean), us(res.Lat.P99), us(res.Lat.P999))
	}
	tbl.AddNote("paper: SmartDS-1 and Acc peak with 2 host cores; CPU-only needs all 48")
	tbl.AddNote("paper: one CPU core compresses ~2.1 Gbps, an SMT pair ~2.7 Gbps")
	return tbl
}

// Fig7Breakdown re-runs one representative configuration per design
// with a private tracer and attributes the mean write latency to the
// pipeline stages (parse, compress, replicate, ack plus the network
// legs). The stage means tile the client-observed latency, so their
// sum reconciles against the measured end-to-end mean.
func Fig7Breakdown(opt Options) []*metrics.Table {
	cpuCores := 48
	if opt.Quick {
		cpuCores = 16
	}
	points := []fig7Config{
		{middletier.CPUOnly, cpuCores, fmt.Sprintf("CPU-only/%d", cpuCores), 8 * cpuCores},
		{middletier.Accel, 2, "Acc/2", 192},
		{middletier.BF2, 0, "BF2", 192},
		{middletier.SmartDS, 2, "SmartDS-1/2", 192},
	}
	var out []*metrics.Table
	for _, fc := range points {
		o := opt
		tr := trace.New(1 << 16)
		o.Trace = tr
		res := o.runFig7Point(fc)
		b := cluster.StageBreakdownFor(tr, cluster.WriteStages, res.Lat.Mean)
		out = append(out, b.Table("Fig7 write-latency breakdown: "+fc.label))
	}
	return out
}
