package experiments

import (
	"math"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

// Fig9 reproduces the performance-isolation experiment (§5.3): 16
// dedicated cores run the MLC injector against the middle-tier server's
// memory while the remaining cores serve write requests, sweeping the
// injector delay. CPU-only and Acc collapse under pressure; SmartDS is
// unaffected because its payloads never touch host memory.
func Fig9(opt Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Figure 9: performance under memory pressure (16-core MLC injector)",
		"config", "MLC delay", "throughput", "avg lat", "p99", "p999", "MLC (GB/s)")

	delays := []float64{math.Inf(1), 1e-6, 500e-9, 200e-9, 0}
	if opt.Quick {
		delays = []float64{math.Inf(1), 0}
	}
	type cfg struct {
		label  string
		kind   middletier.Kind
		cores  int
		window int
	}
	ioCores := 32 // 48 logical minus 16 for the injector
	if opt.Quick {
		ioCores = 16
	}
	configs := []cfg{
		{"CPU-only", middletier.CPUOnly, ioCores, 8 * ioCores},
		{"Acc", middletier.Accel, 2, 192},
		{"SmartDS-1", middletier.SmartDS, 2, 192},
	}
	for _, fc := range configs {
		for _, delay := range delays {
			c := opt.newCluster(fc.kind, func(cc *cluster.Config) {
				cc.MT.Workers = fc.cores
			})
			var mlc *mem.MLC
			if !math.IsInf(delay, 1) {
				mlc = mem.NewMLC(c.Env, c.MT.Mem, mem.MLCConfig{Workers: 16, Delay: delay, Chunk: 256 << 10})
				mlc.Start()
			}
			warm, _ := opt.windows()
			c.Env.At(warm, func() {
				if mlc != nil {
					mlc.MarkWindow()
				}
			})
			res := opt.runPeak(c, fc.window, nil)
			mlcRate := 0.0
			if mlc != nil {
				mlcRate = mlc.MarkWindow() // window closed at run end + drain
				mlc.Stop()
			}
			label := "none"
			if !math.IsInf(delay, 1) {
				label = metrics.FormatDuration(delay)
			}
			tbl.AddRow(fc.label, label, gbps(res.Throughput),
				us(res.Lat.Mean), us(res.Lat.P99), us(res.Lat.P999), mlcRate/1e9)
		}
	}
	tbl.AddNote("paper: CPU-only and Acc throughput drop and tails blow up under pressure;")
	tbl.AddNote("paper: SmartDS-1 throughput/latency barely change and MLC keeps more bandwidth")
	return tbl
}
