package experiments

import (
	"testing"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/middletier"
)

// runProtocolCell reproduces exactly one cell of the ext-faults-protocols
// battery: one protocol x one design under the default campaign, full
// functional payloads, and returns the cluster for invariant checks.
func runProtocolCell(t *testing.T, proto middletier.Protocol, kind middletier.Kind) (*cluster.Cluster, cluster.Results) {
	t.Helper()
	opt := DefaultOptions()
	opt.Replication = proto
	sched, err := faults.Parse(DefaultFaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	c := opt.newCluster(kind, func(cc *cluster.Config) {
		cc.NumStorage = 5
		cc.MT.ReplicateTimeout = faultReplicateTimeout
	})
	if _, err := c.ApplyFaults(sched); err != nil {
		t.Fatal(err)
	}
	warm := 2e-3
	meas := 12e-3
	if end := sched.LastEnd() + 6e-3 - warm; end > meas {
		meas = end
	}
	res := c.Run(cluster.Workload{Window: 128, Warmup: warm, Measure: meas})
	return c, res
}

// TestProtocolFaultBatteryDurability is the acceptance gate: every
// protocol x design cell of the comparison battery must satisfy the
// protocol's durability contract (CheckAckedWrites) across the full
// default fault campaign — zero violations.
func TestProtocolFaultBatteryDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("full functional battery is minutes of sim; run without -short")
	}
	for _, proto := range middletier.Protocols() {
		for _, kind := range []middletier.Kind{
			middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS,
		} {
			proto, kind := proto, kind
			t.Run(proto.String()+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				c, res := runProtocolCell(t, proto, kind)
				if err := c.CheckAckedWrites(); err != nil {
					t.Fatalf("durability violated: %v", err)
				}
				if res.VerifyMismatches > 0 {
					t.Fatalf("%d read verify mismatches", res.VerifyMismatches)
				}
				if res.Requests == 0 {
					t.Fatal("no requests completed")
				}
			})
		}
	}
}
