// Package device models the SmartNIC hardware substrate: HBM device
// memory with a real allocator and channelized bandwidth, the hardware
// engine framework (with a functional LZ4 compression engine), DMA
// plumbing, and the FPGA resource model behind the paper's Table 3.
package device

import (
	"errors"
	"fmt"
	"sort"

	"github.com/disagg/smartds/internal/sim"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("device: out of device memory")

// MemoryConfig sets device memory parameters. The defaults are the
// VCU128's 8 GB HBM with 3.4 Tbps aggregate bandwidth over 16 channels.
type MemoryConfig struct {
	Capacity      int     // bytes
	BytesPerSec   float64 // aggregate bandwidth
	AccessLatency float64 // fixed per-access latency
}

// DefaultHBM returns the VCU128 HBM parameters (Shuhai-measured).
func DefaultHBM() MemoryConfig {
	return MemoryConfig{
		Capacity:      8 << 30,
		BytesPerSec:   425e9, // 3.4 Tbps
		AccessLatency: 120e-9,
	}
}

// Memory is a device-resident memory: functional storage (real bytes)
// plus a bandwidth/latency model. Buffers are allocated out of a single
// arena with a first-fit free list (with coalescing), mirroring how the
// SmartDS driver carves HBM for payload buffers.
type Memory struct {
	env *sim.Env
	cfg MemoryConfig
	bus *sim.PSLink

	free  []span // sorted by addr, coalesced
	used  map[int]int
	inUse int
}

type span struct{ addr, size int }

// NewMemory creates a device memory arena.
func NewMemory(env *sim.Env, name string, cfg MemoryConfig) *Memory {
	def := DefaultHBM()
	if cfg.Capacity <= 0 {
		cfg.Capacity = def.Capacity
	}
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = def.BytesPerSec
	}
	if cfg.AccessLatency <= 0 {
		cfg.AccessLatency = def.AccessLatency
	}
	return &Memory{
		env:  env,
		cfg:  cfg,
		bus:  env.NewPSLink(name+".hbm", cfg.BytesPerSec, 0),
		free: []span{{0, cfg.Capacity}},
		used: make(map[int]int),
	}
}

// Config returns the effective configuration.
func (m *Memory) Config() MemoryConfig { return m.cfg }

// InUse returns currently allocated bytes.
func (m *Memory) InUse() int { return m.inUse }

// Buffer is an allocated region of device memory. Each buffer carries
// its own backing storage (the arena tracks only addresses, so an 8 GB
// HBM costs host RAM proportional to live allocations, not capacity);
// writes through Bytes() are the "DMA" data path.
type Buffer struct {
	mem  *Memory
	addr int
	size int
	data []byte
}

// Alloc carves size bytes out of the arena (first fit).
func (m *Memory) Alloc(size int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("device: invalid allocation size %d", size)
	}
	for i, f := range m.free {
		if f.size >= size {
			b := &Buffer{mem: m, addr: f.addr, size: size, data: make([]byte, size)}
			if f.size == size {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i] = span{f.addr + size, f.size - size}
			}
			m.used[b.addr] = size
			m.inUse += size
			return b, nil
		}
	}
	return nil, ErrOutOfMemory
}

// Free returns the buffer's region to the arena and coalesces adjacent
// free spans. Double free panics: it always indicates a driver bug.
func (b *Buffer) Free() {
	m := b.mem
	size, ok := m.used[b.addr]
	if !ok || size != b.size {
		panic(fmt.Sprintf("device: double or invalid free at %d (+%d)", b.addr, b.size))
	}
	delete(m.used, b.addr)
	m.inUse -= b.size
	m.free = append(m.free, span{b.addr, b.size})
	sort.Slice(m.free, func(i, j int) bool { return m.free[i].addr < m.free[j].addr })
	out := m.free[:1]
	for _, s := range m.free[1:] {
		last := &out[len(out)-1]
		if last.addr+last.size == s.addr {
			last.size += s.size
		} else {
			out = append(out, s)
		}
	}
	m.free = out
}

// Addr returns the buffer's device address.
func (b *Buffer) Addr() int { return b.addr }

// Size returns the buffer length in bytes.
func (b *Buffer) Size() int { return b.size }

// Bytes exposes the underlying storage.
func (b *Buffer) Bytes() []byte { return b.data }

// Mem returns the owning memory.
func (b *Buffer) Mem() *Memory { return b.mem }

// StartAccess begins an n-byte memory access; reads and writes share
// the channelized bandwidth.
func (m *Memory) StartAccess(n float64) *sim.Event { return m.bus.Start(n) }

// Access blocks the process for an n-byte device memory access.
func (m *Memory) Access(p *sim.Proc, n float64) {
	if n <= 0 {
		return
	}
	p.Sleep(m.cfg.AccessLatency)
	p.Wait(m.StartAccess(n))
}

// BusStats exposes the bandwidth counters.
func (m *Memory) BusStats() sim.LinkStats { return m.bus.Snapshot() }
