package device

import (
	"errors"

	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/trace"
)

// ErrEngineDown reports a job submitted to a failed engine. The fault
// subsystem marks engines down (SetDown); callers are expected to
// check first and fall back, so hitting this error means a routing
// bug, not a modeled condition.
var ErrEngineDown = errors.New("device: engine is down")

// Engine models one SmartDS hardware engine: a fixed-function unit that
// fetches input from device memory, processes it at a fixed rate, and
// writes results back (the simple I/O contract of paper §4.1). One
// engine processes one job at a time (further jobs queue FIFO), like
// the pipelined-but-single-stream FPGA engines in the prototype.
type Engine struct {
	env   *sim.Env
	name  string
	rate  float64 // processing bytes/second (input-side)
	slot  *sim.Resource
	mem   *Memory
	bytes float64 // total input bytes processed

	tr    *trace.Tracer
	jobID uint64
	down  bool
}

// NewEngine creates an engine attached to a device memory.
func NewEngine(env *sim.Env, name string, mem *Memory, bytesPerSec float64) *Engine {
	if bytesPerSec <= 0 {
		panic("device: engine rate must be positive")
	}
	return &Engine{
		env:  env,
		name: name,
		rate: bytesPerSec,
		slot: env.NewResource(name+".slot", 1),
		mem:  mem,
	}
}

// Name returns the engine name.
func (e *Engine) Name() string { return e.name }

// SetTrace attaches a tracer; every Run records one occupancy span
// (queue wait + compute + memory movement) on the engine's own track.
func (e *Engine) SetTrace(tr *trace.Tracer) { e.tr = tr }

// Rate returns the engine's processing rate in bytes/second.
func (e *Engine) Rate() float64 { return e.rate }

// Processed returns total input bytes processed.
func (e *Engine) Processed() float64 { return e.bytes }

// Utilization returns cumulative busy statistics of the engine slot.
func (e *Engine) Utilization() sim.ResourceStats { return e.slot.Snapshot() }

// QueueLen reports jobs waiting for the engine (the §2.2.1 adaptive
// compression-effort policy watches this).
func (e *Engine) QueueLen() int { return e.slot.QueueLen() }

// Busy reports whether the engine is processing a job.
func (e *Engine) Busy() bool { return e.slot.InUse() > 0 }

// SetDown fails (true) or restores (false) the engine. A down engine
// rejects Compress/Decompress with ErrEngineDown.
func (e *Engine) SetDown(down bool) { e.down = down }

// Down reports whether the engine is failed.
func (e *Engine) Down() bool { return e.down }

// Run charges the timing of one engine invocation: fetch inBytes from
// device memory, process at the engine rate, write outBytes back. The
// caller performs the functional transformation.
//
// The engine is pipelined: memory movement overlaps computation, so
// the slot (the pipeline's initiation interval) is held only for the
// compute time — this is what lets the prototype's engines sustain
// 100 Gbps on back-to-back 4 KB blocks. The call still returns only
// after the result bytes have landed in device memory.
func (e *Engine) Run(p *sim.Proc, inBytes, outBytes float64) {
	e.jobID++
	id := e.jobID
	// Head-sampled by job id; at full rate ForRequest is the identity.
	tr := e.tr.ForRequest(id)
	t0 := p.Now()
	tr.Begin(t0, e.name, "job", id)
	e.slot.Acquire(p)
	tq := p.Now()
	inEv := e.mem.StartAccess(inBytes)
	p.Sleep(inBytes / e.rate)
	outEv := e.mem.StartAccess(outBytes)
	e.bytes += inBytes
	e.slot.Release()
	p.Wait(inEv)
	p.Wait(outEv)
	end := p.Now()
	tr.End(end, e.name, "job", id)
	// Engine occupancy split: queue wait for the pipeline slot vs time
	// the engine was actually moving and processing this job's bytes.
	if tr != nil {
		if tq > t0 {
			tr.Span(t0, tq, e.name, "job.qwait", id, 0, e.name, "job", trace.KindWait, "")
		}
		if end > tq {
			tr.Span(tq, end, e.name, "job.run", id, 0, e.name, "job", trace.KindService, "")
		}
	}
}

// LZ4Engine is the compression engine SmartDS instantiates per port: a
// functional LZ4 codec (this repository's from-scratch implementation)
// wrapped in engine timing. The FPGA engine in the paper sustains
// 100 Gbps on 4 KB blocks regardless of compression level — effort
// changes ratio, not engine throughput — which the model mirrors.
type LZ4Engine struct {
	*Engine
	enc *lz4.Encoder
	dst []byte
}

// NewLZ4Engine creates a compression engine.
func NewLZ4Engine(env *sim.Env, name string, mem *Memory, bytesPerSec float64, maxBlock int) *LZ4Engine {
	return &LZ4Engine{
		Engine: NewEngine(env, name, mem, bytesPerSec),
		enc:    lz4.NewEncoder(maxBlock),
		dst:    make([]byte, lz4.CompressBound(maxBlock)),
	}
}

// Compress functionally compresses src (device-memory resident bytes)
// and charges engine timing. It returns a fresh slice with the
// compressed bytes.
func (e *LZ4Engine) Compress(p *sim.Proc, src []byte, level lz4.Level) ([]byte, error) {
	if e.down {
		return nil, ErrEngineDown
	}
	if len(e.dst) < lz4.CompressBound(len(src)) {
		e.dst = make([]byte, lz4.CompressBound(len(src)))
	}
	n, err := e.enc.Compress(e.dst, src, level)
	if err != nil {
		return nil, err
	}
	// Copy out before charging engine time: Run parks this process, and
	// a concurrent invocation would overwrite the shared scratch buffer.
	out := make([]byte, n)
	copy(out, e.dst[:n])
	e.Run(p, float64(len(src)), float64(n))
	return out, nil
}

// Decompress functionally decompresses src into a buffer of origSize
// and charges engine timing (decompression runs at the same engine
// rate; it is not the bottleneck in any experiment).
func (e *LZ4Engine) Decompress(p *sim.Proc, src []byte, origSize int) ([]byte, error) {
	if e.down {
		return nil, ErrEngineDown
	}
	out, err := lz4.DecompressToBuf(src, origSize)
	if err != nil {
		return nil, err
	}
	e.Run(p, float64(len(src)), float64(origSize))
	return out, nil
}
