package device

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
)

func newMem(e *sim.Env, capacity int) *Memory {
	return NewMemory(e, "hbm", MemoryConfig{Capacity: capacity, BytesPerSec: 1e9, AccessLatency: 1e-9})
}

func TestAllocFreeBasic(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 1024)
	b, err := m.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 256 || len(b.Bytes()) != 256 {
		t.Fatalf("buffer size %d", b.Size())
	}
	if m.InUse() != 256 {
		t.Fatalf("in use %d", m.InUse())
	}
	b.Free()
	if m.InUse() != 0 {
		t.Fatalf("in use after free %d", m.InUse())
	}
}

func TestAllocExhaustion(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 1000)
	a, _ := m.Alloc(600)
	if _, err := m.Alloc(500); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	b, err := m.Alloc(400)
	if err != nil {
		t.Fatal(err)
	}
	a.Free()
	b.Free()
	// Full capacity available again after coalescing.
	c, err := m.Alloc(1000)
	if err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
	c.Free()
}

func TestCoalescingMiddleFree(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 300)
	a, _ := m.Alloc(100)
	b, _ := m.Alloc(100)
	c, _ := m.Alloc(100)
	a.Free()
	c.Free()
	b.Free() // middle free must merge all three spans
	if _, err := m.Alloc(300); err != nil {
		t.Fatalf("full-arena alloc after scattered frees: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 128)
	b, _ := m.Alloc(64)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free()
}

func TestInvalidAllocSize(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 128)
	if _, err := m.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := m.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestBuffersAreDisjoint(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 1024)
	a, _ := m.Alloc(128)
	b, _ := m.Alloc(128)
	for i := range a.Bytes() {
		a.Bytes()[i] = 0xAA
	}
	for _, v := range b.Bytes() {
		if v == 0xAA {
			t.Fatal("buffers overlap")
		}
	}
}

func TestAllocatorProperty(t *testing.T) {
	// Random alloc/free sequences must preserve: no overlap, inUse
	// accounting exact, and full capacity recoverable at the end.
	f := func(seed uint16) bool {
		e := sim.NewEnv()
		const capacity = 1 << 16
		m := newMem(e, capacity)
		r := rng.New(uint64(seed))
		live := []*Buffer{}
		total := 0
		for op := 0; op < 200; op++ {
			if len(live) > 0 && r.Float64() < 0.45 {
				i := r.Intn(len(live))
				total -= live[i].Size()
				live[i].Free()
				live = append(live[:i], live[i+1:]...)
			} else {
				sz := 1 + r.Intn(2048)
				b, err := m.Alloc(sz)
				if err != nil {
					continue
				}
				live = append(live, b)
				total += sz
			}
			if m.InUse() != total {
				return false
			}
		}
		// overlap check
		type iv struct{ lo, hi int }
		var ivs []iv
		for _, b := range live {
			ivs = append(ivs, iv{b.Addr(), b.Addr() + b.Size()})
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					return false
				}
			}
		}
		for _, b := range live {
			b.Free()
		}
		_, err := m.Alloc(capacity)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryAccessTiming(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 1024)
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		m.Access(p, 1e6) // 1 MB at 1 GB/s = 1 ms
		done = p.Now()
	})
	e.Run(0)
	if math.Abs(done-1e-3) > 1e-6 {
		t.Fatalf("access took %g", done)
	}
	if got := m.BusStats().Work; got != 1e6 {
		t.Fatalf("bus work %g", got)
	}
}

func TestEngineTiming(t *testing.T) {
	e := sim.NewEnv()
	m := NewMemory(e, "hbm", MemoryConfig{Capacity: 1 << 20, BytesPerSec: 1e12, AccessLatency: 1e-9})
	eng := NewEngine(e, "eng", m, 1e9) // 1 GB/s engine
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		eng.Run(p, 1e6, 0.5e6)
		done = p.Now()
	})
	e.Run(0)
	// compute dominates: ~1 ms
	if done < 1e-3 || done > 1.1e-3 {
		t.Fatalf("engine run took %g", done)
	}
	if eng.Processed() != 1e6 {
		t.Fatalf("processed %g", eng.Processed())
	}
}

func TestEngineSerializesJobs(t *testing.T) {
	e := sim.NewEnv()
	m := NewMemory(e, "hbm", MemoryConfig{Capacity: 1 << 20, BytesPerSec: 1e12, AccessLatency: 1e-9})
	eng := NewEngine(e, "eng", m, 1e9)
	var t1, t2 sim.Time
	e.Go("a", func(p *sim.Proc) { eng.Run(p, 1e6, 0); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { eng.Run(p, 1e6, 0); t2 = p.Now() })
	e.Run(0)
	if t2 < 1.9e-3 {
		t.Fatalf("second job did not queue: t1=%g t2=%g", t1, t2)
	}
}

func TestEngineBadRatePanics(t *testing.T) {
	e := sim.NewEnv()
	m := newMem(e, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate engine did not panic")
		}
	}()
	NewEngine(e, "bad", m, 0)
}

func TestLZ4EngineFunctional(t *testing.T) {
	e := sim.NewEnv()
	m := NewMemory(e, "hbm", MemoryConfig{Capacity: 1 << 20, BytesPerSec: 425e9, AccessLatency: 1e-9})
	eng := NewLZ4Engine(e, "lz4", m, 12.5e9, 4096)
	src := bytes.Repeat([]byte("disaggregated "), 300)[:4096]
	var comp, back []byte
	var compErr, decErr error
	e.Go("p", func(p *sim.Proc) {
		comp, compErr = eng.Compress(p, src, lz4.LevelDefault)
		if compErr != nil {
			return
		}
		back, decErr = eng.Decompress(p, comp, len(src))
	})
	e.Run(0)
	if compErr != nil || decErr != nil {
		t.Fatalf("engine codec errors: %v %v", compErr, decErr)
	}
	if len(comp) >= len(src) {
		t.Fatalf("engine did not compress: %d", len(comp))
	}
	if !bytes.Equal(back, src) {
		t.Fatal("engine round trip mismatch")
	}
	// 4 KB at 12.5 GB/s twice (compress+decompress) ≈ 0.66 us + memory
	if e.Now() > 5e-6 {
		t.Fatalf("engine invocations took %g", e.Now())
	}
}

func TestLZ4EngineGrowsBuffer(t *testing.T) {
	e := sim.NewEnv()
	m := NewMemory(e, "hbm", MemoryConfig{Capacity: 1 << 22, BytesPerSec: 425e9, AccessLatency: 1e-9})
	eng := NewLZ4Engine(e, "lz4", m, 12.5e9, 1024) // maxBlock smaller than input
	src := bytes.Repeat([]byte("x"), 100000)
	e.Go("p", func(p *sim.Proc) {
		if _, err := eng.Compress(p, src, lz4.LevelFast); err != nil {
			t.Errorf("compress: %v", err)
		}
	})
	e.Run(0)
}

func TestFPGAResourceTable3(t *testing.T) {
	board := VCU128()
	acc := AccFootprint()
	lut, reg, bram := acc.Percent(board)
	if math.Abs(lut-8.6) > 0.3 || math.Abs(reg-4.2) > 0.3 || math.Abs(bram-8.5) > 0.3 {
		t.Fatalf("Acc percents = %.1f %.1f %.1f, want ~8.6/4.2/8.5", lut, reg, bram)
	}
	cases := []struct {
		ports    int
		wantLUTs float64
	}{{1, 157}, {2, 313}, {4, 627}, {6, 941}}
	for _, c := range cases {
		r := SmartDSFootprint(c.ports)
		if math.Abs(r.LUTs-c.wantLUTs) > 2 {
			t.Errorf("SmartDS-%d LUTs = %g, want ~%g", c.ports, r.LUTs, c.wantLUTs)
		}
		if !r.FitsIn(board) {
			t.Errorf("SmartDS-%d does not fit the VCU128", c.ports)
		}
	}
}

func TestFPGAResourceOps(t *testing.T) {
	a := FPGAResources{1, 2, 3}
	b := FPGAResources{10, 20, 30}
	if got := a.Add(b); got != (FPGAResources{11, 22, 33}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Scale(3); got != (FPGAResources{3, 6, 9}) {
		t.Fatalf("Scale = %+v", got)
	}
	if b.FitsIn(a) {
		t.Fatal("FitsIn inverted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid port count did not panic")
		}
	}()
	SmartDSFootprint(0)
}

func TestEngineDownRejectsWork(t *testing.T) {
	e := sim.NewEnv()
	m := NewMemory(e, "hbm", MemoryConfig{Capacity: 1 << 20, BytesPerSec: 425e9, AccessLatency: 1e-9})
	eng := NewLZ4Engine(e, "lz4", m, 12.5e9, 4096)
	eng.SetDown(true)
	if !eng.Down() {
		t.Fatal("engine not reported down")
	}
	src := bytes.Repeat([]byte("x"), 4096)
	var compErr, decErr error
	e.Go("p", func(p *sim.Proc) {
		_, compErr = eng.Compress(p, src, lz4.LevelDefault)
		_, decErr = eng.Decompress(p, src, len(src))
	})
	e.Run(0)
	if compErr != ErrEngineDown || decErr != ErrEngineDown {
		t.Fatalf("down engine returned %v / %v, want ErrEngineDown", compErr, decErr)
	}
	// Restoring the engine brings the codec back.
	eng.SetDown(false)
	compErr, decErr = nil, nil
	var back []byte
	e.Go("p2", func(p *sim.Proc) {
		comp, err := eng.Compress(p, src, lz4.LevelDefault)
		if err != nil {
			compErr = err
			return
		}
		back, decErr = eng.Decompress(p, comp, len(src))
	})
	e.Run(0)
	if compErr != nil || decErr != nil {
		t.Fatalf("restored engine errors: %v %v", compErr, decErr)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("restored engine round trip mismatch")
	}
}
