package device

import "fmt"

// FPGAResources counts FPGA fabric consumption, the currency of the
// paper's Table 3.
type FPGAResources struct {
	LUTs  float64 // thousands
	Regs  float64 // thousands
	BRAMs float64 // blocks
}

// Add returns the component-wise sum.
func (r FPGAResources) Add(o FPGAResources) FPGAResources {
	return FPGAResources{r.LUTs + o.LUTs, r.Regs + o.Regs, r.BRAMs + o.BRAMs}
}

// Scale returns the resources multiplied by n.
func (r FPGAResources) Scale(n int) FPGAResources {
	f := float64(n)
	return FPGAResources{r.LUTs * f, r.Regs * f, r.BRAMs * f}
}

// FitsIn reports whether the design fits the board.
func (r FPGAResources) FitsIn(board FPGAResources) bool {
	return r.LUTs <= board.LUTs && r.Regs <= board.Regs && r.BRAMs <= board.BRAMs
}

// VCU128 is the prototype board's capacity (Virtex UltraScale+ HBM
// XCVU37P: 1304K LUTs, 2607K registers, 2016 BRAM blocks).
func VCU128() FPGAResources {
	return FPGAResources{LUTs: 1304, Regs: 2607, BRAMs: 2016}
}

// Component footprints synthesized for the prototype (Table 3): the
// accelerator-only design ("Acc": DMA + compression engine, no network
// stack) and one SmartDS port instance (extended RoCE stack + split +
// assemble + compression engine + HBM plumbing).
func AccFootprint() FPGAResources {
	return FPGAResources{LUTs: 112, Regs: 109, BRAMs: 172}
}

// SmartDSInstanceFootprint is the per-port cost; SmartDS-N consumes N
// of these (Table 3 scales linearly with port count: 157/313/627/941 K
// LUTs for 1/2/4/6 ports).
func SmartDSInstanceFootprint() FPGAResources {
	return FPGAResources{LUTs: 157, Regs: 143, BRAMs: 292}
}

// SmartDSFootprint returns the design cost for `ports` instances,
// matching Table 3 within rounding (the paper's 2/4/6-port numbers are
// 313/627/941 K LUTs, i.e. N*157 less a shared percent).
func SmartDSFootprint(ports int) FPGAResources {
	if ports < 1 {
		panic(fmt.Sprintf("device: invalid port count %d", ports))
	}
	inst := SmartDSInstanceFootprint()
	total := inst.Scale(ports)
	if ports > 1 {
		// The PCIe/clocking shell is instantiated once rather than per
		// port, so multi-port builds come in one unit under N x
		// single-port (Table 3: 313/627/941 vs 314/628/942).
		total.LUTs--
		total.Regs--
	}
	return total
}

// Percent returns utilization percentages against a board.
func (r FPGAResources) Percent(board FPGAResources) (lut, reg, bram float64) {
	return 100 * r.LUTs / board.LUTs, 100 * r.Regs / board.Regs, 100 * r.BRAMs / board.BRAMs
}
