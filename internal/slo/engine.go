package slo

import (
	"fmt"

	"github.com/disagg/smartds/internal/sim"
)

// Alert is one fired SLO violation. Alerts are produced in a total
// deterministic order: grid alerts in (tick, spec) order, TTR alerts in
// campaign-schedule order after the run.
type Alert struct {
	SLO      string  // the spec item as written
	Kind     string  // "avail", "p999", "ttr"
	Severity string  // "page"
	At       float64 // virtual seconds when the alert fired
	// BurnShort/BurnLong are the burn rates that tripped the alert
	// (for ttr both carry ttr/ceiling).
	BurnShort, BurnLong float64
	Detail              string
}

// cell is one sampling-grid interval's completion counts.
type cell struct {
	total, bad uint64
}

// window is a fixed-size ring of grid cells with running sums, so each
// tick updates in O(1) regardless of window length.
type window struct {
	cells      []cell
	next       int
	total, bad uint64
}

func newWindow(n int) *window {
	if n < 1 {
		n = 1
	}
	return &window{cells: make([]cell, n)}
}

// push replaces the oldest cell with c.
func (w *window) push(c cell) {
	old := w.cells[w.next]
	w.total += c.total - old.total
	w.bad += c.bad - old.bad
	w.cells[w.next] = c
	w.next = (w.next + 1) % len(w.cells)
}

// badFrac is the bad-event fraction over the window (0 when empty: no
// traffic burns no budget).
func (w *window) badFrac() float64 {
	if w.total == 0 {
		return 0
	}
	return float64(w.bad) / float64(w.total)
}

// specState is one objective's evaluation state.
type specState struct {
	spec   Spec
	short  *window
	long   *window
	cur    cell // completions accumulated since the last tick
	firing bool
}

// Engine evaluates objectives against the completion stream on the
// sampling grid. Feed it with Observe from the client completion path,
// start grid evaluation with Run, and append recovery results with
// ObserveTTR once the fault campaign's stats are in.
type Engine struct {
	env      *sim.Env
	interval float64
	states   []*specState
	alerts   []Alert
}

// NewEngine builds an engine evaluating specs every interval seconds of
// virtual time (the telemetry sampling grid; must be positive).
func NewEngine(env *sim.Env, specs []Spec, interval float64) *Engine {
	if interval <= 0 {
		interval = 100e-6
	}
	e := &Engine{env: env, interval: interval}
	for _, sp := range specs {
		if sp.Kind == TTRCeiling {
			e.states = append(e.states, &specState{spec: sp})
			continue
		}
		e.states = append(e.states, &specState{
			spec:  sp,
			short: newWindow(int(sp.Short/interval + 0.5)),
			long:  newWindow(int(sp.Long/interval + 0.5)),
		})
	}
	return e
}

// Specs returns the objectives under evaluation.
func (e *Engine) Specs() []Spec {
	out := make([]Spec, len(e.states))
	for i, st := range e.states {
		out[i] = st.spec
	}
	return out
}

// Observe feeds one request completion. The signature matches the
// cluster's completion hook (virtual time, latency, errored); the
// timestamp itself is unused because cells close on the grid. O(#specs)
// and allocation-free: safe on the completion hot path.
func (e *Engine) Observe(_, lat float64, err bool) {
	if e == nil {
		return
	}
	for _, st := range e.states {
		if st.short == nil {
			continue
		}
		st.cur.total++
		if st.spec.bad(lat, err) {
			st.cur.bad++
		}
	}
}

// Run subscribes the engine to the environment's shared sampling-grid
// ticker until stop: every tick closes the current cell and evaluates
// the burn-rate windows.
func (e *Engine) Run(stop float64) {
	if e == nil || len(e.states) == 0 {
		return
	}
	e.env.Ticker(e.interval).Subscribe(stop, e.tick)
}

// tick closes the grid cell for every objective and fires rising-edge
// alerts whose burn rate trips both windows.
//
//cold:epoch-scale alert evaluation; alert formatting allocates by design
func (e *Engine) tick() {
	now := e.env.Now()
	for _, st := range e.states {
		if st.short == nil {
			continue
		}
		st.short.push(st.cur)
		st.long.push(st.cur)
		st.cur = cell{}
		budget := st.spec.budget()
		if budget <= 0 {
			continue
		}
		burnShort := st.short.badFrac() / budget
		burnLong := st.long.badFrac() / budget
		trip := burnShort >= st.spec.Burn && burnLong >= st.spec.Burn
		switch {
		case trip && !st.firing:
			st.firing = true
			e.alerts = append(e.alerts, Alert{
				SLO: st.spec.Name, Kind: st.spec.Kind.String(), Severity: "page",
				At: now, BurnShort: burnShort, BurnLong: burnLong,
				Detail: fmt.Sprintf("burn %.3gx/%.3gx over %s/%s windows (threshold %g)",
					burnShort, burnLong,
					formatSeconds(st.spec.Short), formatSeconds(st.spec.Long), st.spec.Burn),
			})
		case !trip && st.firing:
			st.firing = false
		}
	}
}

// ObserveTTR evaluates one fault recovery against every ttr objective:
// burn is ttr/ceiling, and burn >= 1 (or a recovery that never
// happened, ttr < 0) fires. Call once per recovery, in schedule order,
// after the campaign's stats are final; at stamps the alert (the end of
// the run).
func (e *Engine) ObserveTTR(at float64, kind, target string, ttr float64) {
	if e == nil {
		return
	}
	for _, st := range e.states {
		if st.spec.Kind != TTRCeiling {
			continue
		}
		burn := ttr / st.spec.Ceiling
		detail := fmt.Sprintf("%s:%s ttr %s over ceiling %s",
			kind, target, formatSeconds(ttr), formatSeconds(st.spec.Ceiling))
		if ttr < 0 {
			burn = -1
			detail = fmt.Sprintf("%s:%s never recovered (ceiling %s)",
				kind, target, formatSeconds(st.spec.Ceiling))
		} else if burn < 1 {
			continue
		}
		e.alerts = append(e.alerts, Alert{
			SLO: st.spec.Name, Kind: st.spec.Kind.String(), Severity: "page",
			At: at, BurnShort: burn, BurnLong: burn, Detail: detail,
		})
	}
}

// Alerts returns every fired alert in fire order.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	return e.alerts
}

// formatSeconds renders a duration deterministically for alert details
// (µs below 1 ms, ms below 1 s, else seconds).
func formatSeconds(sec float64) string {
	switch {
	case sec < 0:
		return "never"
	case sec < 1e-3:
		return fmt.Sprintf("%.3gus", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.3gms", sec*1e3)
	default:
		return fmt.Sprintf("%.3gs", sec)
	}
}
