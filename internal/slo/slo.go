// Package slo is the sim-time SLO engine: declarative service-level
// objectives evaluated on the simulator's virtual-clock sampling grid,
// with multi-window burn-rate alerting. Everything is a deterministic
// function of the completion stream, so same-seed runs fire
// byte-identical alerts — an alert is a regression signal CI can gate
// on (smartds-report -slo), not a wall-clock page.
//
// The spec grammar is a semicolon-separated list of objectives:
//
//	kind:value[@opt=val,opt=val...]
//
// where kind is one of
//
//	avail — availability objective in percent: the fraction of
//	        completions that must succeed ("avail:99.9"). A completion
//	        with a non-OK status burns error budget.
//	p999  — tail-latency ceiling at a 99.9% objective: completions
//	        slower than the ceiling (or errored) burn budget
//	        ("p999:250us").
//	ttr   — time-to-recover ceiling for fault campaigns ("ttr:10ms"):
//	        each recovery's burn rate is ttr/ceiling, and a recovery
//	        slower than the ceiling (or never observed) fires.
//
// and the options tune the burn-rate windows:
//
//	short=500us  — fast window (default 500 µs of virtual time)
//	long=5ms     — confirmation window (default 5 ms)
//	burn=10      — burn-rate threshold (default 10x budget velocity)
//
// avail and p999 alerts fire on the sampling grid when the burn rate
// over BOTH windows meets the threshold (the classic multi-window rule:
// the short window reacts fast, the long window keeps one bad tick from
// paging), and re-arm when both fall back below it. ttr alerts are
// appended once per out-of-budget recovery when the campaign's stats
// arrive, in schedule order.
package slo

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the objective types.
type Kind int

// The objective kinds of the spec grammar.
const (
	Availability Kind = iota
	LatencyP999
	TTRCeiling
)

var kindNames = [...]string{"avail", "p999", "ttr"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var kindByName = map[string]Kind{
	"avail": Availability, "p999": LatencyP999, "ttr": TTRCeiling,
}

// Default burn-rate windows and threshold, scaled to the millisecond
// horizons the experiments run (a 30 ms measure window corresponds to
// a production hour).
const (
	DefaultShort = 500e-6
	DefaultLong  = 5e-3
	DefaultBurn  = 10.0
)

// Spec is one parsed objective.
type Spec struct {
	Kind Kind
	// Name is the objective's identity in alerts: the spec item as
	// written (e.g. "p999:250us").
	Name string
	// Objective is the required good fraction (avail, p999); budget is
	// 1 - Objective.
	Objective float64
	// Ceiling is the latency ceiling (p999) or recovery-time ceiling
	// (ttr) in seconds.
	Ceiling float64
	// Short, Long, Burn are the multi-window burn-rate knobs.
	Short, Long, Burn float64
}

// budget is the tolerated bad-event fraction.
func (s Spec) budget() float64 { return 1 - s.Objective }

// bad classifies one completion against the objective.
func (s Spec) bad(lat float64, err bool) bool {
	switch s.Kind {
	case Availability:
		return err
	case LatencyP999:
		return err || lat > s.Ceiling
	default:
		return false
	}
}

// String renders the spec back in grammar form.
func (s Spec) String() string { return s.Name }

// Parse builds the objective list from a spec string.
func Parse(spec string) ([]Spec, error) {
	var out []Spec
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		sp, err := parseItem(item)
		if err != nil {
			return nil, fmt.Errorf("slo: %q: %w", item, err)
		}
		out = append(out, sp)
	}
	return out, nil
}

// MustParse is Parse for known-good literals.
func MustParse(spec string) []Spec {
	out, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return out
}

func parseItem(item string) (Spec, error) {
	sp := Spec{Short: DefaultShort, Long: DefaultLong, Burn: DefaultBurn, Name: item}
	colon := strings.Index(item, ":")
	if colon < 0 {
		return sp, fmt.Errorf("missing kind separator, want kind:value")
	}
	kind, ok := kindByName[strings.ToLower(item[:colon])]
	if !ok {
		return sp, fmt.Errorf("unknown SLO kind %q", item[:colon])
	}
	sp.Kind = kind
	rest := item[colon+1:]
	value := rest
	if at := strings.Index(rest, "@"); at >= 0 {
		value = rest[:at]
		for _, opt := range strings.Split(rest[at+1:], ",") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			eq := strings.Index(opt, "=")
			if eq < 0 {
				return sp, fmt.Errorf("bad option %q, want key=value", opt)
			}
			key, val := strings.TrimSpace(opt[:eq]), strings.TrimSpace(opt[eq+1:])
			switch key {
			case "short", "long":
				d, err := time.ParseDuration(val)
				if err != nil || d <= 0 {
					return sp, fmt.Errorf("bad %s window %q", key, val)
				}
				if key == "short" {
					sp.Short = d.Seconds()
				} else {
					sp.Long = d.Seconds()
				}
			case "burn":
				b, err := strconv.ParseFloat(val, 64)
				if err != nil || b <= 0 {
					return sp, fmt.Errorf("bad burn threshold %q", val)
				}
				sp.Burn = b
			default:
				return sp, fmt.Errorf("unknown option %q", key)
			}
		}
	}
	value = strings.TrimSpace(value)

	switch sp.Kind {
	case Availability:
		pct, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return sp, fmt.Errorf("bad availability percent %q", value)
		}
		if pct <= 0 || pct >= 100 {
			return sp, fmt.Errorf("availability %g%% out of (0,100)", pct)
		}
		sp.Objective = pct / 100
	case LatencyP999:
		d, err := time.ParseDuration(value)
		if err != nil || d <= 0 {
			return sp, fmt.Errorf("bad latency ceiling %q", value)
		}
		sp.Ceiling = d.Seconds()
		sp.Objective = 0.999
	case TTRCeiling:
		d, err := time.ParseDuration(value)
		if err != nil || d <= 0 {
			return sp, fmt.Errorf("bad TTR ceiling %q", value)
		}
		sp.Ceiling = d.Seconds()
	}
	if sp.Short >= sp.Long {
		return sp, fmt.Errorf("short window %v must be below long window %v", sp.Short, sp.Long)
	}
	return sp, nil
}
