package slo

import (
	"math"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/sim"
)

func TestParse(t *testing.T) {
	specs, err := Parse("avail:99.9; p999:250us@short=1ms,long=10ms,burn=4; ttr:10ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	a := specs[0]
	if a.Kind != Availability || math.Abs(a.Objective-0.999) > 1e-12 {
		t.Fatalf("avail spec parsed wrong: kind=%v objective=%v", a.Kind, a.Objective)
	}
	if a.Short != DefaultShort || a.Long != DefaultLong || a.Burn != DefaultBurn {
		t.Fatalf("avail defaults wrong: %+v", a)
	}
	p := specs[1]
	if p.Kind != LatencyP999 || p.Ceiling != 250e-6 || p.Objective != 0.999 {
		t.Fatalf("p999 spec parsed wrong: %+v", p)
	}
	if p.Short != 1e-3 || p.Long != 10e-3 || p.Burn != 4 {
		t.Fatalf("p999 options parsed wrong: %+v", p)
	}
	r := specs[2]
	if r.Kind != TTRCeiling || r.Ceiling != 10e-3 {
		t.Fatalf("ttr spec parsed wrong: %+v", r)
	}
	if r.Name != "ttr:10ms" {
		t.Fatalf("spec name %q, want the item as written", r.Name)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus:1",            // unknown kind
		"avail:200",          // percent out of range
		"avail",              // missing separator
		"p999:-3us",          // non-positive ceiling
		"p999:1ms@short=5ms", // short >= long
		"avail:99@zoom=3",    // unknown option
		"avail:99@burn=0",    // non-positive burn
		"ttr:banana",         // unparseable duration
		"avail:99@short=abc", // unparseable window
		"avail:99@short",     // option without value
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

// driveEngine runs a synthetic completion stream: errFrom..errTo is an
// error window inside a 20 ms run with one completion every 20 µs.
func driveEngine(spec string, errFrom, errTo float64) []Alert {
	env := sim.NewEnv()
	eng := NewEngine(env, MustParse(spec), 100e-6)
	const stop = 20e-3
	eng.Run(stop)
	var tick func()
	tick = func() {
		now := env.Now()
		bad := now >= errFrom && now < errTo
		eng.Observe(now, 50e-6, bad)
		if now+20e-6 <= stop {
			env.After(20e-6, tick)
		}
	}
	env.After(20e-6, tick)
	env.Run(stop + 1e-3)
	return eng.Alerts()
}

// TestBurnRateFires pins the multi-window rule: a sustained 100% error
// window trips both windows; alerts carry the spec name and fire once
// per episode (rising edge).
func TestBurnRateFires(t *testing.T) {
	alerts := driveEngine("avail:99.9", 5e-3, 12e-3)
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1 rising-edge alert: %+v", len(alerts), alerts)
	}
	al := alerts[0]
	if al.SLO != "avail:99.9" || al.Kind != "avail" || al.Severity != "page" {
		t.Fatalf("alert identity wrong: %+v", al)
	}
	// The long window (5 ms) needs burn*budget*window of errors; with
	// 100% errors it trips within ~50 µs of accumulating 1% bad over
	// 5 ms — well before the error window closes.
	if al.At <= 5e-3 || al.At >= 12e-3 {
		t.Fatalf("alert at %v, want inside the error window", al.At)
	}
	if al.BurnShort < 10 || al.BurnLong < 10 {
		t.Fatalf("burn rates %v/%v below threshold", al.BurnShort, al.BurnLong)
	}
	if !strings.Contains(al.Detail, "windows") {
		t.Fatalf("detail %q missing window description", al.Detail)
	}
}

// TestBurnRateQuiet pins that a healthy stream fires nothing.
func TestBurnRateQuiet(t *testing.T) {
	if alerts := driveEngine("avail:99.9;p999:1ms", 0, 0); len(alerts) != 0 {
		t.Fatalf("healthy run fired %+v", alerts)
	}
}

// TestP999CeilingFires pins latency-SLO classification: slow-but-OK
// completions burn p999 budget.
func TestP999CeilingFires(t *testing.T) {
	env := sim.NewEnv()
	eng := NewEngine(env, MustParse("p999:100us"), 100e-6)
	const stop = 20e-3
	eng.Run(stop)
	var tick func()
	tick = func() {
		now := env.Now()
		lat := 50e-6
		if now >= 5e-3 && now < 12e-3 {
			lat = 400e-6 // over the ceiling, but not an error
		}
		eng.Observe(now, lat, false)
		if now+20e-6 <= stop {
			env.After(20e-6, tick)
		}
	}
	env.After(20e-6, tick)
	env.Run(stop + 1e-3)
	alerts := eng.Alerts()
	if len(alerts) != 1 || alerts[0].Kind != "p999" {
		t.Fatalf("got %+v, want one p999 alert", alerts)
	}
}

// TestTTRAlerts pins the recovery-ceiling rule: over-ceiling and
// never-recovered fire, in-budget recoveries don't.
func TestTTRAlerts(t *testing.T) {
	env := sim.NewEnv()
	eng := NewEngine(env, MustParse("ttr:10ms"), 100e-6)
	eng.ObserveTTR(30e-3, "crash", "ss1", 4e-3)  // within budget
	eng.ObserveTTR(30e-3, "crash", "ss2", 25e-3) // over ceiling
	eng.ObserveTTR(30e-3, "restart", "mt", -1)   // never recovered
	alerts := eng.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("got %d alerts, want 2: %+v", len(alerts), alerts)
	}
	if alerts[0].BurnShort != 2.5 {
		t.Fatalf("ttr burn = %v, want 2.5", alerts[0].BurnShort)
	}
	if !strings.Contains(alerts[1].Detail, "never recovered") {
		t.Fatalf("unrecovered detail %q", alerts[1].Detail)
	}
}

// TestEngineDeterminism pins that two same-stream engines produce
// byte-identical alert lists (the -count=1 golden CI step relies on
// this at the cluster level).
func TestEngineDeterminism(t *testing.T) {
	a := driveEngine("avail:99.5;p999:200us", 4e-3, 9e-3)
	b := driveEngine("avail:99.5;p999:200us", 4e-3, 9e-3)
	if len(a) != len(b) {
		t.Fatalf("alert counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("alert %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestNilEngine pins nil-safety on the hot path hooks.
func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Observe(0, 1e-6, false)
	e.ObserveTTR(0, "crash", "ss0", 1)
	e.Run(1)
	if e.Alerts() != nil {
		t.Fatal("nil engine returned alerts")
	}
}
