package sim

import (
	"math"
	"testing"
)

// TestTimerCancelBoundedCalendar pins the slow-leak fix: a cancelled
// heap entry is removed in place, so a schedule/cancel churn loop —
// the shape every GetTimeout and retransmission timer produces — keeps
// the calendar flat instead of accumulating a million dead entries
// that only a pop could reclaim.
func TestTimerCancelBoundedCalendar(t *testing.T) {
	env := NewEnv()
	const n = 1_000_000
	for i := 0; i < n; i++ {
		tm := env.After(float64(i%1000)+1, func() {})
		tm.Cancel()
		if l := env.calendarLen(); l > 8 {
			t.Fatalf("iteration %d: calendar holds %d entries after cancel", i, l)
		}
	}
	if got := env.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after cancelling everything", got)
	}
	if got := env.calendarLen(); got != 0 {
		t.Fatalf("calendarLen() = %d after cancelling everything", got)
	}
}

// TestTimerCancelBatch cancels a large scheduled batch out of order and
// checks the heap shrinks with every removal.
func TestTimerCancelBatch(t *testing.T) {
	env := NewEnv()
	const n = 100_000
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, env.After(float64(n-i), func() {}))
	}
	// Cancel in a scrambled order (reverse of odd, then evens).
	for i := n - 1; i >= 0; i -= 2 {
		timers[i].Cancel()
	}
	for i := 0; i < n; i += 2 {
		timers[i].Cancel()
	}
	if got := env.calendarLen(); got != 0 {
		t.Fatalf("calendarLen() = %d after cancelling all %d timers", got, n)
	}
	if end := env.Run(0); end != 0 {
		t.Fatalf("cancelled-everything run ended at %g, want 0", end)
	}
}

// TestTimerCancelAfterFire checks the value-Timer contract: cancelling
// after the callback ran is a no-op, and — because pooled items carry a
// seq stamp — a stale handle can never cancel the entry its item was
// recycled into.
func TestTimerCancelAfterFire(t *testing.T) {
	env := NewEnv()
	fired := 0
	tm := env.After(1, func() { fired++ })
	env.Run(0)
	if fired != 1 {
		t.Fatalf("first timer fired %d times", fired)
	}
	tm.Cancel() // after fire: no-op

	// The released item is now in the pool; the next schedule reuses it.
	reused := false
	env.After(1, func() { reused = true })
	tm.Cancel() // stale handle aimed at a recycled item: must not cancel
	env.Run(0)
	if !reused {
		t.Fatal("stale Timer.Cancel killed a recycled calendar entry")
	}

	var zero Timer
	zero.Cancel() // zero Timer: no-op
}

// TestScheduleNaNPanics pins the NaN guard: NaN compares false against
// everything, so letting one into the heap would silently corrupt the
// dispatch order instead of failing loudly.
func TestScheduleNaNPanics(t *testing.T) {
	env := NewEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at NaN did not panic")
		}
	}()
	env.After(math.NaN(), func() {})
}

// TestRunHorizonReentry drives Run(until) past a scheduled event in
// three steps: stop short (the event is pushed back, the clock parks at
// the horizon), re-enter with an earlier horizon (the clock must not
// move backward), then run through (the event fires at its own time).
func TestRunHorizonReentry(t *testing.T) {
	env := NewEnv()
	var firedAt Time = -1
	env.At(5, func() { firedAt = env.Now() })

	if end := env.Run(2); !almostEq(end, 2, 0) {
		t.Fatalf("Run(2) ended at %g", end)
	}
	if firedAt >= 0 {
		t.Fatal("event fired before its time")
	}
	if env.Pending() != 1 {
		t.Fatalf("Pending() = %d, want the pushed-back event", env.Pending())
	}
	if end := env.Run(1); !almostEq(end, 2, 0) {
		t.Fatalf("Run(1) after now=2 moved the clock to %g", end)
	}
	if end := env.Run(10); !almostEq(end, 10, 0) {
		t.Fatalf("Run(10) ended at %g", end)
	}
	if !almostEq(firedAt, 5, 0) {
		t.Fatalf("event fired at %g, want 5", firedAt)
	}
}

// TestGoFromSchedulerCallback spawns a process from a timer callback
// (scheduler context) rather than from another process, and lets it
// sleep — the same shape cluster fault injectors use.
func TestGoFromSchedulerCallback(t *testing.T) {
	env := NewEnv()
	var wokeAt Time = -1
	env.After(1, func() {
		env.Go("spawned", func(p *Proc) {
			p.Sleep(2)
			wokeAt = p.Now()
		})
	})
	env.Run(0)
	if !almostEq(wokeAt, 3, 0) {
		t.Fatalf("spawned proc woke at %g, want 3", wokeAt)
	}
}

// TestEventsCounter checks Events() counts dispatched entries only:
// cancelled timers never count, wakes and callbacks both do.
func TestEventsCounter(t *testing.T) {
	env := NewEnv()
	env.After(1, func() {})
	env.After(2, func() {})
	dead := env.After(3, func() {})
	dead.Cancel()
	env.Run(0)
	if got := env.Events(); got != 2 {
		t.Fatalf("Events() = %d, want 2", got)
	}
}

// TestQueueMeanLenMidRunCreation pins the MeanLen divisor fix: a queue
// created at t=10 holding one item for five seconds has mean occupancy
// 1.0 — not 1/3, which dividing by absolute now would report.
func TestQueueMeanLenMidRunCreation(t *testing.T) {
	env := NewEnv()
	var mean float64
	env.Go("w", func(p *Proc) {
		p.Sleep(10)
		q := env.NewQueue("mid")
		q.Put(1)
		p.Sleep(5)
		mean = q.MeanLen()
	})
	env.Run(0)
	if !almostEq(mean, 1.0, 1e-9) {
		t.Fatalf("MeanLen = %g, want 1.0 (occupancy since creation, not since t=0)", mean)
	}
}

// TestQueueMeanLenEmptyWindow checks the zero-duration guard.
func TestQueueMeanLenEmptyWindow(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("fresh")
	if got := q.MeanLen(); got != 0 {
		t.Fatalf("MeanLen on a zero-age queue = %g", got)
	}
}

// TestQueueGetTimeoutSameInstantRace pins the lost-item fix for both
// same-instant orderings: whether the Put lands before or after the
// deadline callback at the exact timeout instant, the getter reports
// failure AND the value survives at the head of the queue.
func TestQueueGetTimeoutSameInstantRace(t *testing.T) {
	for _, putFirst := range []bool{true, false} {
		name := "put-scheduled-first"
		if !putFirst {
			name = "timer-scheduled-first"
		}
		t.Run(name, func(t *testing.T) {
			env := NewEnv()
			q := env.NewQueue("race")
			if putFirst {
				// The Put callback holds a smaller seq than the timeout
				// timer, so it dispatches first at t=1.
				env.At(1, func() { q.Put(42) })
			}
			var got interface{}
			var ok bool
			env.Go("getter", func(p *Proc) {
				got, ok = q.GetTimeout(p, 1)
			})
			if !putFirst {
				// Scheduled after the proc exists: the timeout timer wins
				// the seq race and fires before the Put callback.
				env.At(1, func() { q.Put(42) })
			}
			env.Run(0)
			if ok {
				t.Fatalf("GetTimeout won a tie it must lose: got %v", got)
			}
			v, have := q.TryGet()
			if !have || v != 42 {
				t.Fatalf("raced value lost: TryGet = (%v, %v), want (42, true)", v, have)
			}
			if q.Len() != 0 {
				t.Fatalf("queue holds %d extra items", q.Len())
			}
		})
	}
}

// TestQueueGetTimeoutLateDelivery checks the plain miss: the value
// arrives after the deadline and goes to the buffer, not the timed-out
// waiter.
func TestQueueGetTimeoutLateDelivery(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("late")
	var ok bool
	env.Go("getter", func(p *Proc) {
		_, ok = q.GetTimeout(p, 1)
	})
	env.At(2, func() { q.Put("v") })
	env.Run(0)
	if ok {
		t.Fatal("GetTimeout succeeded past its deadline")
	}
	if v, have := q.TryGet(); !have || v != "v" {
		t.Fatalf("late value lost: (%v, %v)", v, have)
	}
}

// TestQueueRingNilsPoppedSlots pins the GC-pinning fix: after a pop the
// ring slot must not retain the payload pointer.
func TestQueueRingNilsPoppedSlots(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("ring")
	for i := 0; i < 20; i++ {
		q.Put(&struct{ pad [64]byte }{})
	}
	for {
		if _, ok := q.TryGet(); !ok {
			break
		}
	}
	for i, s := range q.buf {
		if s != nil {
			t.Fatalf("ring slot %d still pins a popped payload", i)
		}
	}
}

// TestQueueWrapAround exercises the ring across several grow/wrap
// cycles with interleaved puts and gets, checking FIFO order.
func TestQueueWrapAround(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("wrap")
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Put(next)
			next++
		}
		for i := 0; i < 5; i++ {
			v, ok := q.TryGet()
			if !ok || v != want {
				t.Fatalf("round %d: got (%v,%v), want %d", round, v, ok, want)
			}
			want++
		}
	}
	for {
		v, ok := q.TryGet()
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("drain: got %v, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, put %d", want, next)
	}
}

// TestTimerChurnZeroAllocs verifies the pooled calendar: a warmed-up
// schedule/cancel cycle allocates nothing.
func TestTimerChurnZeroAllocs(t *testing.T) {
	env := NewEnv()
	fn := func() {}
	churn := func() {
		tm := env.After(1, fn)
		tm.Cancel()
	}
	for i := 0; i < 64; i++ {
		churn() // warm the item pool
	}
	if allocs := testing.AllocsPerRun(1000, churn); allocs != 0 {
		t.Fatalf("schedule/cancel allocates %.2f objects per cycle, want 0", allocs)
	}
}

// TestQueueSteadyStateZeroAllocs verifies the ring buffer: once the
// ring has grown to cover the working set, put/get cycles are
// allocation-free.
func TestQueueSteadyStateZeroAllocs(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("steady")
	payload := interface{}(&struct{}{})
	cycle := func() {
		q.Put(payload)
		if _, ok := q.TryGet(); !ok {
			t.Fatal("TryGet failed on non-empty queue")
		}
	}
	for i := 0; i < 64; i++ {
		cycle() // establish ring capacity
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("queue put/get allocates %.2f objects per cycle, want 0", allocs)
	}
}

// TestTickerGrid checks the cadence contract matches a self-
// rescheduling After chain: first fire one interval after arming, last
// fire at the greatest t with t+interval > until >= t.
func TestTickerGrid(t *testing.T) {
	env := NewEnv()
	var ticks []Time
	env.Ticker(0.5).Subscribe(2.0, func() { ticks = append(ticks, env.Now()) })
	env.Run(0)
	want := []Time{0.5, 1.0, 1.5, 2.0}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks %v, want %v", len(ticks), ticks, want)
	}
	for i := range want {
		if !almostEq(ticks[i], want[i], 1e-12) {
			t.Fatalf("tick %d at %g, want %g", i, ticks[i], want[i])
		}
	}
	if env.Ticker(0.5).Subscribers() != 0 {
		t.Fatal("expired subscription not dropped")
	}
}

// TestTickerSharedEntry checks the point of the wheel: two subscribers
// at the same cadence cost one calendar entry per tick, fire at the
// same instants, and run in subscription order.
func TestTickerSharedEntry(t *testing.T) {
	env := NewEnv()
	var order []int
	env.Ticker(1).Subscribe(3, func() { order = append(order, 1) })
	env.Ticker(1).Subscribe(3, func() { order = append(order, 2) })
	if got := env.Pending(); got != 1 {
		t.Fatalf("two same-cadence subscriptions cost %d calendar entries, want 1", got)
	}
	env.Run(0)
	want := []int{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestTickerSubscribeMidTick subscribes from inside a tick callback:
// the new subscriber joins the same tick (append-tolerant index loop)
// and the shared grid afterward.
func TestTickerSubscribeMidTick(t *testing.T) {
	env := NewEnv()
	var a, b []Time
	tk := env.Ticker(1)
	tk.Subscribe(2, func() {
		a = append(a, env.Now())
		if len(a) == 1 {
			tk.Subscribe(2, func() { b = append(b, env.Now()) })
		}
	})
	env.Run(0)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("a fired %d times, b %d times; want 2 and 2 (b joins a's first tick)", len(a), len(b))
	}
	if !almostEq(b[0], 1, 0) || !almostEq(b[1], 2, 0) {
		t.Fatalf("mid-tick subscriber fired at %v, want [1 2]", b)
	}
}

// TestTickerBadIntervalPanics rejects zero, negative, and NaN cadences.
func TestTickerBadIntervalPanics(t *testing.T) {
	env := NewEnv()
	for _, bad := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Ticker(%g) did not panic", bad)
				}
			}()
			env.Ticker(bad)
		}()
	}
}

// TestSameInstantCascadeOrder pins the fast-lane compatibility
// contract: a callback scheduling more work at the current instant
// interleaves with already-scheduled same-instant and future entries in
// strict (t, seq) order.
func TestSameInstantCascadeOrder(t *testing.T) {
	env := NewEnv()
	var order []string
	env.At(1, func() {
		order = append(order, "a")
		env.At(1, func() { order = append(order, "a.child") })
	})
	env.At(1, func() { order = append(order, "b") })
	env.At(2, func() { order = append(order, "c") })
	env.Run(0)
	want := []string{"a", "b", "a.child", "c"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}
