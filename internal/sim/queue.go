package sim

// Queue is an unbounded FIFO mailbox between processes. Put never
// blocks; Get blocks while the queue is empty. Waiters are served in
// arrival order.
//
// Buffered items live in a power-of-two ring: pops are O(1), slots are
// nilled as they drain (a popped payload is immediately collectable —
// the old slice-head pops pinned every delivered buffer against GC for
// the life of the backing array), and the steady state allocates
// nothing. Blocked getters ride pooled wait nodes instead of Events.
type Queue struct {
	env  *Env
	name string

	buf  []interface{} // power-of-two ring
	head int
	n    int

	wHead, wTail *qWaiter

	puts uint64
	gets uint64
	// queue-length integral for mean-occupancy reporting
	lenInt    float64
	last      Time
	createdAt Time
}

// qWaiter is one blocked getter: a pooled node holding the park token,
// the delivered value, and the timeout flag its cancellable deadline
// callback sets. The timeout callback is bound once per node and
// reused across the node's pooled lifetime.
type qWaiter struct {
	env       *Env
	tk        wakeToken
	val       interface{}
	delivered bool
	timedOut  bool
	next      *qWaiter
	fire      func()
}

// getWaiter takes a wait node from the env pool.
func (e *Env) getWaiter() *qWaiter {
	w := e.freeWaiters
	if w == nil {
		w = &qWaiter{env: e}
		w.fire = func() {
			w.timedOut = true
			w.env.wake(w.tk)
		}
	} else {
		e.freeWaiters = w.next
		w.next = nil
	}
	w.delivered = false
	w.timedOut = false
	return w
}

// putWaiter returns a node to the pool. The caller must have unlinked
// it from any waiter list and cancelled any pending deadline first.
func (e *Env) putWaiter(w *qWaiter) {
	w.val = nil
	w.next = e.freeWaiters
	e.freeWaiters = w
}

// NewQueue creates an empty queue.
func (e *Env) NewQueue(name string) *Queue {
	return &Queue{env: e, name: name, last: e.now, createdAt: e.now}
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of buffered items.
func (q *Queue) Len() int { return q.n }

func (q *Queue) account() {
	now := q.env.now
	q.lenInt += float64(q.n) * (now - q.last)
	q.last = now
}

// push appends to the ring tail.
func (q *Queue) push(v interface{}) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// pushFront prepends at the ring head (timeout-race requeue keeps FIFO
// order for the other getters).
func (q *Queue) pushFront(v interface{}) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = v
	q.n++
}

// pop removes the oldest item and nils its slot.
func (q *Queue) pop() interface{} {
	v := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

func (q *Queue) grow() {
	nc := len(q.buf) * 2
	if nc == 0 {
		nc = 8
	}
	//detcheck:hotalloc amortized ring doubling; steady state never reaches grow
	nb := make([]interface{}, nc)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// enqueueWaiter appends a blocked getter in arrival order.
func (q *Queue) enqueueWaiter(w *qWaiter) {
	if q.wTail == nil {
		q.wHead, q.wTail = w, w
		return
	}
	q.wTail.next = w
	q.wTail = w
}

// unlinkWaiter removes w from the waiter list (timeout path).
func (q *Queue) unlinkWaiter(w *qWaiter) {
	var prev *qWaiter
	for cur := q.wHead; cur != nil; prev, cur = cur, cur.next {
		if cur != w {
			continue
		}
		if prev == nil {
			q.wHead = cur.next
		} else {
			prev.next = cur.next
		}
		if q.wTail == cur {
			q.wTail = prev
		}
		cur.next = nil
		return
	}
}

// Put appends v and wakes the oldest waiter, if any. Safe to call from
// scheduler callbacks as well as from processes.
//
//hot:steady-state ring path, pinned by TestQueueSteadyStateZeroAllocs
func (q *Queue) Put(v interface{}) {
	q.account()
	q.puts++
	if w := q.wHead; w != nil {
		q.wHead = w.next
		if q.wHead == nil {
			q.wTail = nil
		}
		w.next = nil
		w.val = v
		w.delivered = true
		q.env.wake(w.tk)
		return
	}
	q.push(v)
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue) Get(p *Proc) interface{} {
	q.account()
	if q.n > 0 {
		q.gets++
		return q.pop()
	}
	w := q.env.getWaiter()
	w.tk = p.token()
	q.enqueueWaiter(w)
	p.park()
	if !w.delivered {
		panic("sim: queue waiter woken without a delivery")
	}
	v := w.val
	q.env.putWaiter(w)
	q.gets++
	return v
}

// TryGet removes and returns the oldest item without blocking.
//
//hot:steady-state ring path, pinned by TestQueueSteadyStateZeroAllocs
func (q *Queue) TryGet() (interface{}, bool) {
	if q.n == 0 {
		return nil, false
	}
	q.account()
	q.gets++
	return q.pop(), true
}

// GetTimeout waits up to d seconds for an item. The deadline instant
// belongs to the timeout: if a Put delivers at exactly the instant the
// deadline fires, the wait reports failure and the delivered value is
// requeued at the head — never dropped — so the next getter receives
// it in FIFO order.
func (q *Queue) GetTimeout(p *Proc, d float64) (interface{}, bool) {
	q.account()
	if q.n > 0 {
		q.gets++
		return q.pop(), true
	}
	w := q.env.getWaiter()
	w.tk = p.token()
	q.enqueueWaiter(w)
	timer := q.env.After(d, w.fire)
	p.park()
	timer.Cancel()
	switch {
	case w.delivered && !w.timedOut:
		v := w.val
		q.env.putWaiter(w)
		q.gets++
		return v, true
	case w.delivered:
		// Lost the race: the deadline fired at the same instant the value
		// arrived. Hand it back to the queue head instead of dropping it.
		// puts was counted at Put and gets will be counted by whoever
		// eventually pops it, so the counters stay balanced.
		q.account()
		q.pushFront(w.val)
		q.env.putWaiter(w)
		return nil, false
	default:
		// Timed out with nothing delivered: leave no dangling waiter a
		// later Put could deliver into.
		q.unlinkWaiter(w)
		q.env.putWaiter(w)
		return nil, false
	}
}

// MeanLen returns the time-averaged queue length since the queue was
// created (not since the start of the run — a queue created mid-run
// must not have its occupancy diluted by time it did not exist).
func (q *Queue) MeanLen() float64 {
	q.account()
	dt := q.env.now - q.createdAt
	if dt <= 0 {
		return 0
	}
	return q.lenInt / dt
}
