package sim

// Queue is an unbounded FIFO mailbox between processes. Put never
// blocks; Get blocks while the queue is empty. Waiters are served in
// arrival order.
type Queue struct {
	env     *Env
	name    string
	items   []interface{}
	waiters []*Event

	puts uint64
	gets uint64
	// queue-length integral for mean-occupancy reporting
	lenInt float64
	last   Time
}

// NewQueue creates an empty queue.
func (e *Env) NewQueue(name string) *Queue {
	return &Queue{env: e, name: name, last: e.now}
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

func (q *Queue) account() {
	now := q.env.now
	q.lenInt += float64(len(q.items)) * (now - q.last)
	q.last = now
}

// Put appends v and wakes the oldest waiter, if any. Safe to call from
// scheduler callbacks as well as from processes.
func (q *Queue) Put(v interface{}) {
	q.account()
	q.puts++
	if len(q.waiters) > 0 {
		ev := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.gets++
		ev.Trigger(v)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue) Get(p *Proc) interface{} {
	q.account()
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		q.gets++
		return v
	}
	ev := q.env.NewEvent()
	q.waiters = append(q.waiters, ev)
	return p.Wait(ev)
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue) TryGet() (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	q.account()
	v := q.items[0]
	q.items = q.items[1:]
	q.gets++
	return v, true
}

// GetTimeout waits up to d seconds for an item.
func (q *Queue) GetTimeout(p *Proc, d float64) (interface{}, bool) {
	q.account()
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		q.gets++
		return v, true
	}
	ev := q.env.NewEvent()
	q.waiters = append(q.waiters, ev)
	v, ok := p.WaitTimeout(ev, d)
	if !ok {
		// Remove our waiter so a later Put doesn't deliver into the void.
		for i, w := range q.waiters {
			if w == ev {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				break
			}
		}
		return nil, false
	}
	return v, true
}

// MeanLen returns the time-averaged queue length since creation.
func (q *Queue) MeanLen() float64 {
	q.account()
	if q.env.now <= 0 {
		return 0
	}
	return q.lenInt / q.env.now
}
