package sim

import "testing"

func TestResourceBasicAcquireRelease(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var order []string
	e.Go("a", func(p *Proc) {
		r.Acquire(p)
		order = append(order, "a-in")
		p.Sleep(2)
		r.Release()
		order = append(order, "a-out")
	})
	e.Go("b", func(p *Proc) {
		r.Acquire(p)
		order = append(order, "b-in")
		p.Sleep(1)
		r.Release()
	})
	e.Run(0)
	want := []string{"a-in", "a-out", "b-in"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want prefix %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %g, want 3", e.Now())
	}
}

func TestResourceMultipleSlots(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 2)
	finish := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			r.Process(p, 2)
			finish[i] = p.Now()
		})
	}
	e.Run(0)
	// Two run [0,2]; third runs [2,4].
	if finish[0] != 2 || finish[1] != 2 || finish[2] != 4 {
		t.Fatalf("finish times = %v", finish)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var got []int
	e.Go("holder", func(p *Proc) { r.Process(p, 1) })
	for i := 0; i < 5; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(float64(i) * 0.01)
			r.Acquire(p)
			got = append(got, i)
			r.Release()
		})
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("acquisition order = %v, want FIFO", got)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceUtilization(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 2)
	e.Go("a", func(p *Proc) { r.Process(p, 4) })
	e.Go("b", func(p *Proc) { r.Process(p, 2) })
	e.Run(0)
	s := r.Snapshot()
	// Slot-seconds: 4 + 2 = 6 over 4 seconds => mean 1.5.
	if !almostEq(s.BusyIntegral, 6, 1e-9) {
		t.Fatalf("busy integral = %g, want 6", s.BusyIntegral)
	}
	if u := UtilizationBetween(ResourceStats{}, s); !almostEq(u, 1.5, 1e-9) {
		t.Fatalf("utilization = %g, want 1.5", u)
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	var got []interface{}
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1)
			q.Put(i)
		}
	})
	e.Run(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueBufferedThenDrained(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
	var second interface{}
	e.Go("c", func(p *Proc) { second = q.Get(p) })
	e.Run(0)
	if second != "b" {
		t.Fatalf("second = %v", second)
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	var ok1, ok2 bool
	var v2 interface{}
	e.Go("c", func(p *Proc) {
		_, ok1 = q.GetTimeout(p, 1)
		v2, ok2 = q.GetTimeout(p, 10)
	})
	e.After(2, func() { q.Put("late") })
	e.Run(0)
	if ok1 {
		t.Fatal("first GetTimeout should have timed out")
	}
	if !ok2 || v2 != "late" {
		t.Fatalf("second GetTimeout = %v, %v", v2, ok2)
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("c", func(p *Proc) {
			p.Sleep(float64(i) * 0.001)
			v := q.Get(p)
			got = append(got, v.(int)*10+i)
		})
	}
	e.After(1, func() { q.Put(0); q.Put(1); q.Put(2) })
	e.Run(0)
	// Waiter i receives item i.
	want := []int{0, 11, 22}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
