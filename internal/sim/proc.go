package sim

// Proc is a simulation process: a goroutine that runs only while the
// scheduler has handed control to it. A Proc may block with Sleep, Wait,
// or any of the resource operations; at most one Proc runs at a time.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	gen    uint64 // wait generation; bumped on every park
	done   bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new process. The body fn starts running at the current
// virtual time (after the caller yields back to the scheduler). Go may
// be called before Env.Run, from scheduler callbacks, or from within
// another process.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.nprocs--
		e.parked <- struct{}{}
	}()
	e.schedule(e.now, func() { e.runProc(p) })
	return p
}

// runProc transfers control to p until it parks or finishes.
func (e *Env) runProc(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-e.parked
}

// park yields control back to the scheduler until woken. Each park
// consumes exactly one wake directed at the current generation.
func (p *Proc) park() {
	p.gen++
	p.env.parked <- struct{}{}
	<-p.resume
}

// wakeToken identifies one specific park of one specific process, so a
// stale waker (e.g. a raced timeout) cannot wake the wrong park.
type wakeToken struct {
	p   *Proc
	gen uint64
}

// token captures the identity of the process's next park. It must be
// taken before handing the token to a waker and before calling park.
func (p *Proc) token() wakeToken { return wakeToken{p: p, gen: p.gen + 1} }

// wake schedules the process to resume now if it is still parked on the
// generation the token was taken for.
func (e *Env) wake(tk wakeToken) {
	e.schedule(e.now, func() {
		if !tk.p.done && tk.p.gen == tk.gen {
			e.runProc(tk.p)
		}
	})
}

// Sleep suspends the process for d seconds of virtual time. Negative
// durations sleep zero time but still yield to the scheduler.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	tk := p.token()
	p.env.schedule(p.env.now+d, func() {
		if !tk.p.done && tk.p.gen == tk.gen {
			p.env.runProc(tk.p)
		}
	})
	p.park()
}

// Yield lets other ready processes and events at the current instant run
// before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
