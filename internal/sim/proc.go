package sim

import (
	"runtime"
	"sync/atomic"
)

// Proc is a simulation process: a goroutine that runs only while the
// scheduler has handed control to it. A Proc may block with Sleep, Wait,
// or any of the resource operations; at most one Proc runs at a time.
//
// Control transfer is a spin-then-block protocol rather than a pure
// channel rendezvous. A blocking channel handoff costs 1-2 µs of futex
// wakeup latency per direction, and with one park/resume round per
// queue handoff the simulator spends most of its wall-clock time asleep
// in the kernel. Instead:
//
//   - The scheduler always spins for the yield: the running proc holds
//     control only for the few hundred nanoseconds of straight-line sim
//     code between blocking points, so the wait is short and hot.
//   - A parking proc spins briefly for its resume (same-instant wakes —
//     queue deliveries, event triggers — arrive within a few dispatched
//     events), then commits to a channel receive for the long virtual-
//     time sleeps where spinning would burn a core for nothing.
//
// The resume side picks flag or channel with one CAS against the
// parker, so a wake is never lost. Only the scheduler and at most a few
// freshly-woken procs ever spin concurrently; parked procs sleep.
type Proc struct {
	env    *Env
	name   string
	fn     func(p *Proc)
	resume chan struct{}
	state  atomic.Int32
	gen    uint64 // wait generation; bumped on every park
	done   bool
}

// Proc handoff states.
const (
	procRunning int32 = iota // executing or about to; not awaiting resume
	procSpin                 // parked, still spinning on state
	procBlocked              // parked, committed to the resume channel
	procReady                // resume delivered via the state flag
)

// parkSpinTight bounds a parking proc's spin phase before it commits
// to the channel. Spinning only pays when a sibling core can deliver
// the resume concurrently; with a single P every spin iteration steals
// time from the goroutine that would deliver it, so the budget scales
// with available parallelism (0 on GOMAXPROCS=1).
var parkSpinTight = spinBudget(512)

// waitYieldSpin bounds the scheduler's tight wait for the running
// proc's yield, with the same single-P rule.
var waitYieldSpin = spinBudget(2048)

// spinBudget returns n when true parallelism is available, else 0.
func spinBudget(n int) int {
	if runtime.GOMAXPROCS(0) > 1 {
		return n
	}
	return 0
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new process. The body fn starts running at the current
// virtual time (after the caller yields back to the scheduler). Go may
// be called before Env.Run, from scheduler callbacks, or from within
// another process.
//
// Finished processes park their goroutine and return to a free list, so
// workloads that spawn a process per request (every server loop in the
// cluster does) pay goroutine creation, channel allocation, and closure
// allocation only up to the peak concurrency, not once per request. The
// start itself rides a pooled wake entry — a spawn is allocation-free in
// steady state.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		p = e.freeProcs[n-1]
		e.freeProcs[n-1] = nil
		e.freeProcs = e.freeProcs[:n-1]
		p.name = name
		p.fn = fn
		p.done = false
	} else {
		p = &Proc{env: e, name: name, fn: fn, resume: make(chan struct{}, 1)}
		p.state.Store(procBlocked) // first resume arrives via the channel
		go p.loop()
	}
	e.scheduleWake(e.now, wakeToken{p: p, gen: p.gen})
	return p
}

// loop is the worker body: run one process life, then park awaiting
// reuse. The between-lives park is the same blocked state as a normal
// park, so runProc needs no special case; the generation bump
// invalidates any token minted in the previous life.
func (p *Proc) loop() {
	e := p.env
	for {
		<-p.resume
		p.state.Store(procRunning)
		fn := p.fn
		p.fn = nil
		fn(p)
		p.done = true
		p.gen++
		p.state.Store(procBlocked)
		e.freeProcs = append(e.freeProcs, p)
		e.yield()
	}
}

// runProc transfers control to p until it parks or finishes.
func (e *Env) runProc(p *Proc) {
	if p.done {
		return
	}
	for {
		switch p.state.Load() {
		case procSpin:
			if p.state.CompareAndSwap(procSpin, procReady) {
				e.waitYield()
				return
			}
		case procBlocked:
			p.resume <- struct{}{} // buffered: the parker is committed to receive
			e.waitYield()
			return
		default:
			// The proc is between its blocking decision points; retry.
			runtime.Gosched()
		}
	}
}

// yield hands control from the running proc back to the scheduler.
func (e *Env) yield() { e.yielded.Store(1) }

// waitYield spins until the running proc parks or finishes. The proc
// holds control only across straight-line simulation code, so this wait
// is almost always satisfied within the tight-reload phase; the Gosched
// fallback exists for GOMAXPROCS=1 (and functional-mode compression
// bursts), where the proc needs this P to make progress.
func (e *Env) waitYield() {
	for i := 0; i < waitYieldSpin; i++ {
		if e.yielded.CompareAndSwap(1, 0) {
			return
		}
	}
	for {
		if e.yielded.CompareAndSwap(1, 0) {
			return
		}
		runtime.Gosched()
	}
}

// park yields control back to the scheduler until woken. Each park
// consumes exactly one wake directed at the current generation.
func (p *Proc) park() {
	p.gen++
	p.state.Store(procSpin)
	p.env.yield()
	for i := 0; i < parkSpinTight; i++ {
		if p.state.Load() == procReady {
			p.state.Store(procRunning)
			return
		}
	}
	if p.state.CompareAndSwap(procSpin, procBlocked) {
		<-p.resume
	}
	p.state.Store(procRunning)
}

// wakeToken identifies one specific park of one specific process, so a
// stale waker (e.g. a raced timeout) cannot wake the wrong park.
type wakeToken struct {
	p   *Proc
	gen uint64
}

// token captures the identity of the process's next park. It must be
// taken before handing the token to a waker and before calling park.
func (p *Proc) token() wakeToken { return wakeToken{p: p, gen: p.gen + 1} }

// wake schedules the process to resume now if it is still parked on the
// generation the token was taken for. Wakes ride pooled calendar
// entries — no closure, no allocation in steady state.
func (e *Env) wake(tk wakeToken) {
	e.scheduleWake(e.now, tk)
}

// Sleep suspends the process for d seconds of virtual time. Negative
// durations sleep zero time but still yield to the scheduler.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleWake(p.env.now+d, p.token())
	p.park()
}

// Yield lets other ready processes and events at the current instant run
// before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
