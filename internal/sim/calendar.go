package sim

// This file is the event calendar: an indexed four-ary min-heap plus a
// same-instant fast lane. Together they give the scheduler its
// throughput:
//
//   - The heap is four-ary (children of i are 4i+1..4i+4), which halves
//     the tree depth versus a binary heap and touches fewer cache lines
//     per sift. Every entry tracks its own position (item.idx), so a
//     cancelled timer is removed in place in O(log4 n) instead of
//     leaking until its pop — timeout-heavy runs used to bloat the heap
//     with dead entries and skew Pending().
//   - The fast lane is a FIFO ring for entries scheduled at exactly the
//     current instant (wakes, triggers, zero-delay callbacks — the
//     dominant cascade in steady state). Because virtual time and seq
//     both only grow, lane entries are already globally sorted by
//     (t, seq), so a pop compares the lane head against the heap root
//     and takes the smaller: O(1) for same-instant work, and the total
//     (t, seq) dispatch order — the determinism contract — is
//     preserved exactly.
//
// Items are pooled on the Env. A fired or cancelled item returns to the
// free list immediately, so the steady state allocates nothing; the
// monotone seq doubles as a generation stamp that lets a stale Timer
// recognize an item that has since been recycled.

// item is a calendar entry. Entries with equal time fire in insertion
// order (seq), which keeps runs deterministic. An item carries either a
// callback (fn) or a conditional process wake (proc, gen) — the latter
// avoids allocating a closure for every Sleep and Event wake.
type item struct {
	t   Time
	seq uint64
	// idx is the entry's heap position, laneIdx while in the fast
	// lane, or freeIdx once fired, cancelled, or pooled.
	idx       int
	fn        func()
	proc      *Proc
	gen       uint64
	cancelled bool
}

const (
	freeIdx = -1 // fired, cancelled out of the lane, or pooled
	laneIdx = -2 // queued in the same-instant fast lane
)

// calLess orders calendar entries by (time, seq).
func calLess(a, b *item) bool {
	if a.t != b.t { //detcheck:floateq exact tie detection; ties fall through to the seq order
		return a.t < b.t
	}
	return a.seq < b.seq
}

// calendar is the indexed four-ary min-heap.
type calendar struct {
	items []*item
}

func (c *calendar) len() int { return len(c.items) }

func (c *calendar) push(it *item) {
	//detcheck:hotalloc amortized heap growth; capacity is retained across pops
	c.items = append(c.items, it)
	c.siftUp(len(c.items)-1, it)
}

// siftUp moves it toward the root from position i, writing it into its
// final slot exactly once (hole optimization).
func (c *calendar) siftUp(i int, it *item) {
	for i > 0 {
		pi := (i - 1) / 4
		p := c.items[pi]
		if !calLess(it, p) {
			break
		}
		c.items[i] = p
		p.idx = i
		i = pi
	}
	c.items[i] = it
	it.idx = i
}

// siftDown moves it toward the leaves from position i.
func (c *calendar) siftDown(i int, it *item) {
	n := len(c.items)
	for {
		c0 := 4*i + 1
		if c0 >= n {
			break
		}
		best, bit := c0, c.items[c0]
		hi := c0 + 4
		if hi > n {
			hi = n
		}
		for j := c0 + 1; j < hi; j++ {
			if calLess(c.items[j], bit) {
				best, bit = j, c.items[j]
			}
		}
		if !calLess(bit, it) {
			break
		}
		c.items[i] = bit
		bit.idx = i
		i = best
	}
	c.items[i] = it
	it.idx = i
}

// popMin removes and returns the earliest entry. The heap must be
// non-empty.
func (c *calendar) popMin() *item {
	it := c.items[0]
	n := len(c.items) - 1
	last := c.items[n]
	c.items[n] = nil
	c.items = c.items[:n]
	if n > 0 {
		c.siftDown(0, last)
	}
	it.idx = freeIdx
	return it
}

// remove deletes the entry at heap position i in place.
func (c *calendar) remove(i int) *item {
	it := c.items[i]
	n := len(c.items) - 1
	last := c.items[n]
	c.items[n] = nil
	c.items = c.items[:n]
	if i < n {
		if i > 0 && calLess(last, c.items[(i-1)/4]) {
			c.siftUp(i, last)
		} else {
			c.siftDown(i, last)
		}
	}
	it.idx = freeIdx
	return it
}

// lane is the same-instant FIFO ring. Entries are pushed only at the
// current virtual time, so the ring is globally sorted by (t, seq).
type lane struct {
	buf  []*item // power-of-two length
	head int
	n    int
}

func (l *lane) push(it *item) {
	if l.n == len(l.buf) {
		l.grow()
	}
	l.buf[(l.head+l.n)&(len(l.buf)-1)] = it
	l.n++
	it.idx = laneIdx
}

// peek returns the oldest entry. The lane must be non-empty.
func (l *lane) peek() *item { return l.buf[l.head] }

func (l *lane) pop() *item {
	it := l.buf[l.head]
	l.buf[l.head] = nil
	l.head = (l.head + 1) & (len(l.buf) - 1)
	l.n--
	it.idx = freeIdx
	return it
}

func (l *lane) grow() {
	nc := len(l.buf) * 2
	if nc == 0 {
		nc = 64
	}
	//detcheck:hotalloc amortized doubling; grow is off the per-event path
	nb := make([]*item, nc)
	for i := 0; i < l.n; i++ {
		nb[i] = l.buf[(l.head+i)&(len(l.buf)-1)]
	}
	l.buf = nb
	l.head = 0
}
