package sim

import (
	"testing"
	"testing/quick"
)

func TestPSLinkSingleTransfer(t *testing.T) {
	e := NewEnv()
	l := e.NewPSLink("l", 100, 0) // 100 B/s
	var done Time
	e.Go("p", func(p *Proc) {
		l.Transfer(p, 200)
		done = p.Now()
	})
	e.Run(0)
	if !almostEq(done, 2.0, 1e-9) {
		t.Fatalf("single transfer finished at %g, want 2.0", done)
	}
}

func TestPSLinkFairSharing(t *testing.T) {
	// Two equal transfers starting together each get half the rate.
	e := NewEnv()
	l := e.NewPSLink("l", 100, 0)
	var t1, t2 Time
	e.Go("a", func(p *Proc) { l.Transfer(p, 100); t1 = p.Now() })
	e.Go("b", func(p *Proc) { l.Transfer(p, 100); t2 = p.Now() })
	e.Run(0)
	if !almostEq(t1, 2.0, 1e-9) || !almostEq(t2, 2.0, 1e-9) {
		t.Fatalf("shared transfers finished at %g, %g; want 2.0 both", t1, t2)
	}
}

func TestPSLinkLateArrivalSlowsFirst(t *testing.T) {
	// A 100B job alone for 0.5s does 50B; then shares -> remaining 50B at
	// 50B/s takes 1s more => finishes at 1.5. Second job: 100B at 50B/s
	// until first leaves (50B by t=1.5), then full rate: +0.5s => 2.0.
	e := NewEnv()
	l := e.NewPSLink("l", 100, 0)
	var t1, t2 Time
	e.Go("a", func(p *Proc) { l.Transfer(p, 100); t1 = p.Now() })
	e.Go("b", func(p *Proc) {
		p.Sleep(0.5)
		l.Transfer(p, 100)
		t2 = p.Now()
	})
	e.Run(0)
	if !almostEq(t1, 1.5, 1e-9) {
		t.Fatalf("first transfer finished at %g, want 1.5", t1)
	}
	if !almostEq(t2, 2.0, 1e-9) {
		t.Fatalf("second transfer finished at %g, want 2.0", t2)
	}
}

func TestPSLinkFlowCap(t *testing.T) {
	// Per-flow cap of 10 B/s on a 100 B/s link: a single 100 B transfer
	// takes 10 s even though the link is idle.
	e := NewEnv()
	l := e.NewPSLink("l", 100, 10)
	var done Time
	e.Go("p", func(p *Proc) { l.Transfer(p, 100); done = p.Now() })
	e.Run(0)
	if !almostEq(done, 10, 1e-9) {
		t.Fatalf("capped transfer finished at %g, want 10", done)
	}
}

func TestPSLinkFlowCapWaterFilling(t *testing.T) {
	// Water-filling regression: 100 B/s link, per-flow cap 70. A heavy
	// flow (weight 9, fair share 90) is capped at 70; the light flow
	// (weight 1, fair share 10) must inherit the residual: 30 B/s, not
	// its naive 10 B/s share. Sized 70 B and 30 B, both finish at t=1.
	e := NewEnv()
	l := e.NewPSLink("l", 100, 70)
	var tHeavy, tLight Time
	e.Go("heavy", func(p *Proc) { l.TransferWeighted(p, 70, 9); tHeavy = p.Now() })
	e.Go("light", func(p *Proc) { l.TransferWeighted(p, 30, 1); tLight = p.Now() })
	e.Run(0)
	if !almostEq(tHeavy, 1.0, 1e-9) {
		t.Fatalf("capped flow finished at %g, want 1.0 (70 B/s)", tHeavy)
	}
	if !almostEq(tLight, 1.0, 1e-9) {
		t.Fatalf("uncapped flow finished at %g, want 1.0 (30 B/s after redistribution)", tLight)
	}
	st := l.Snapshot()
	if !almostEq(st.Work, 100, 1e-6) {
		t.Fatalf("total work %g, want 100 (conservation)", st.Work)
	}
	if !almostEq(st.BusyTime, 1.0, 1e-9) {
		t.Fatalf("busy time %g, want 1.0", st.BusyTime)
	}
}

func TestPSLinkWaterFillingCascade(t *testing.T) {
	// Iterative refill: weights 6/3/1 on a 100 B/s link with cap 40.
	// Fair shares 60/30/10 -> A pinned at 40; residual 60 re-shared 3:1
	// gives B 45 -> B pinned at 40 too; C gets the final 20. Sizes are
	// proportional (40/40/20) so every flow completes exactly at t=1.
	e := NewEnv()
	l := e.NewPSLink("l", 100, 40)
	var ta, tb, tc Time
	e.Go("a", func(p *Proc) { l.TransferWeighted(p, 40, 6); ta = p.Now() })
	e.Go("b", func(p *Proc) { l.TransferWeighted(p, 40, 3); tb = p.Now() })
	e.Go("c", func(p *Proc) { l.TransferWeighted(p, 20, 1); tc = p.Now() })
	e.Run(0)
	for i, got := range []Time{ta, tb, tc} {
		if !almostEq(got, 1.0, 1e-9) {
			t.Fatalf("flow %d finished at %g, want 1.0 (rates 40/40/20)", i, got)
		}
	}
	if st := l.Snapshot(); !almostEq(st.Work, 100, 1e-6) {
		t.Fatalf("total work %g, want 100", st.Work)
	}
}

func TestPSLinkFlowCapAllCapped(t *testing.T) {
	// When every flow's share exceeds the cap, each runs at exactly the
	// cap and the link legitimately idles the rest of its capacity.
	e := NewEnv()
	l := e.NewPSLink("l", 100, 30)
	var t1, t2 Time
	e.Go("a", func(p *Proc) { l.Transfer(p, 30); t1 = p.Now() })
	e.Go("b", func(p *Proc) { l.Transfer(p, 30); t2 = p.Now() })
	e.Run(0)
	if !almostEq(t1, 1.0, 1e-9) || !almostEq(t2, 1.0, 1e-9) {
		t.Fatalf("capped flows finished at %g, %g; want 1.0 both", t1, t2)
	}
}

func TestPSLinkWeights(t *testing.T) {
	// Weight 3 vs weight 1: rates 75 and 25 until the heavy one leaves.
	// Heavy: 150B at 75 B/s => t=2. Light: 50B by t=2, then 100B left at
	// 100 B/s => t=3.
	e := NewEnv()
	l := e.NewPSLink("l", 100, 0)
	var th, tl Time
	e.Go("heavy", func(p *Proc) { l.TransferWeighted(p, 150, 3); th = p.Now() })
	e.Go("light", func(p *Proc) { l.TransferWeighted(p, 150, 1); tl = p.Now() })
	e.Run(0)
	if !almostEq(th, 2.0, 1e-9) {
		t.Fatalf("heavy finished at %g, want 2.0", th)
	}
	if !almostEq(tl, 3.0, 1e-9) {
		t.Fatalf("light finished at %g, want 3.0", tl)
	}
}

func TestPSLinkZeroBytes(t *testing.T) {
	e := NewEnv()
	l := e.NewPSLink("l", 100, 0)
	done := false
	e.Go("p", func(p *Proc) {
		l.Transfer(p, 0)
		done = true
	})
	e.Run(0)
	if !done || e.Now() != 0 {
		t.Fatalf("zero-byte transfer: done=%v now=%g", done, e.Now())
	}
}

func TestPSLinkWorkConservation(t *testing.T) {
	// However transfers overlap, total completion time equals total
	// bytes / rate when the link never idles.
	e := NewEnv()
	l := e.NewPSLink("l", 1000, 0)
	const n = 20
	total := 0.0
	var last Time
	for i := 0; i < n; i++ {
		b := float64(100 + 37*i)
		total += b
		e.Go("p", func(p *Proc) {
			l.Transfer(p, b)
			last = p.Now()
		})
	}
	e.Run(0)
	want := total / 1000
	if !almostEq(last, want, 1e-6) {
		t.Fatalf("makespan %g, want %g", last, want)
	}
	st := l.Snapshot()
	if !almostEq(st.Work, total, 1e-3) {
		t.Fatalf("work accounting %g, want %g", st.Work, total)
	}
	if !almostEq(st.BusyTime, want, 1e-6) {
		t.Fatalf("busy time %g, want %g", st.BusyTime, want)
	}
}

func TestPSLinkSnapshotBandwidth(t *testing.T) {
	e := NewEnv()
	l := e.NewPSLink("l", 100, 0)
	e.Go("p", func(p *Proc) { l.Transfer(p, 1000) })
	var s0, s1 LinkStats
	e.After(1, func() { s0 = l.Snapshot() })
	e.After(3, func() { s1 = l.Snapshot() })
	e.Run(4)
	bw := BandwidthBetween(s0, s1)
	if !almostEq(bw, 100, 1e-6) {
		t.Fatalf("bandwidth over saturated window = %g, want 100", bw)
	}
}

func TestPSLinkConservationProperty(t *testing.T) {
	// Property: for any set of (start delay, size) jobs, the sum of bytes
	// reported moved equals the sum of job sizes once all complete, and
	// no job finishes before bytes/rate after its start.
	f := func(seed uint8) bool {
		e := NewEnv()
		rate := 100.0
		l := e.NewPSLink("l", rate, 0)
		n := int(seed%7) + 1
		total := 0.0
		ok := true
		for i := 0; i < n; i++ {
			delay := float64((int(seed)*7+i*13)%50) / 10
			size := float64((int(seed)*31+i*101)%400 + 1)
			total += size
			e.Go("p", func(p *Proc) {
				p.Sleep(delay)
				start := p.Now()
				l.Transfer(p, size)
				if p.Now()-start < size/rate-1e-9 {
					ok = false
				}
			})
		}
		e.Run(0)
		st := l.Snapshot()
		return ok && almostEq(st.Work, total, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPSLinkBadRatePanics(t *testing.T) {
	e := NewEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate link did not panic")
		}
	}()
	e.NewPSLink("bad", 0, 0)
}
