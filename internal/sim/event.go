package sim

// Event is a one-shot completion. Processes block on it with Wait;
// anything (another process, a scheduler callback, a resource) completes
// it with Trigger, optionally attaching a value. Waiting on an event
// that already fired returns immediately.
//
// The first waiter and the first callback live inline — the common
// single-waiter, single-callback event never allocates a slice.
type Event struct {
	env  *Env
	done bool
	val  interface{}

	nw   int
	w0   wakeToken
	more []wakeToken

	ncb int
	cb0 func(interface{})
	cbs []func(interface{})
}

// NewEvent returns an untriggered event bound to the environment.
// Events are carved from a slab: one bulk allocation hands out eventSlab
// events, so the per-event allocator cost disappears from the hot path.
// Events are one-shot and never recycled — a caller may keep the pointer
// and poll Done long after the trigger — so the slab only amortizes
// allocation, it never reuses storage.
func (e *Env) NewEvent() *Event {
	if e.evPos == len(e.evSlab) {
		e.evSlab = make([]Event, eventSlab)
		e.evPos = 0
	}
	ev := &e.evSlab[e.evPos]
	e.evPos++
	ev.env = e
	return ev
}

// eventSlab is the slab chunk size. A chunk is retained until every
// event in it is unreachable; events are short-lived, so retention is
// bounded by a few chunks.
const eventSlab = 512

// Done reports whether the event has been triggered.
func (ev *Event) Done() bool { return ev.done }

// Value returns the value the event was triggered with (nil before).
func (ev *Event) Value() interface{} { return ev.val }

// addWaiter appends a park token in arrival order.
func (ev *Event) addWaiter(tk wakeToken) {
	if ev.nw == 0 {
		ev.w0 = tk
	} else {
		ev.more = append(ev.more, tk)
	}
	ev.nw++
}

// removeWaiter drops one token, preserving arrival order of the rest.
func (ev *Event) removeWaiter(tk wakeToken) {
	if ev.nw == 0 {
		return
	}
	if ev.w0 == tk {
		if len(ev.more) > 0 {
			ev.w0 = ev.more[0]
			copy(ev.more, ev.more[1:])
			ev.more = ev.more[:len(ev.more)-1]
		}
		ev.nw--
		return
	}
	for i, w := range ev.more {
		if w == tk {
			copy(ev.more[i:], ev.more[i+1:])
			ev.more = ev.more[:len(ev.more)-1]
			ev.nw--
			return
		}
	}
}

// Trigger completes the event, waking all waiters and running all
// registered callbacks. Triggering twice panics: an event is one-shot
// and double completion always indicates a bookkeeping bug upstream.
func (ev *Event) Trigger(val interface{}) {
	if ev.done {
		panic("sim: event triggered twice")
	}
	ev.done = true
	ev.val = val
	if ev.nw > 0 {
		ev.env.wake(ev.w0)
		for _, tk := range ev.more {
			ev.env.wake(tk)
		}
		ev.nw = 0
		ev.w0 = wakeToken{}
		ev.more = nil
	}
	if ev.ncb > 0 {
		cb0 := ev.cb0
		cbs := ev.cbs
		ev.ncb = 0
		ev.cb0 = nil
		ev.cbs = nil
		cb0(val)
		for _, cb := range cbs {
			cb(val)
		}
	}
}

// OnTrigger registers a callback to run (in scheduler context) when the
// event fires. If the event already fired, cb runs immediately.
func (ev *Event) OnTrigger(cb func(interface{})) {
	if ev.done {
		cb(ev.val)
		return
	}
	if ev.ncb == 0 {
		ev.cb0 = cb
	} else {
		ev.cbs = append(ev.cbs, cb)
	}
	ev.ncb++
}

// Wait blocks the process until the event fires and returns its value.
func (p *Proc) Wait(ev *Event) interface{} {
	if ev.done {
		return ev.val
	}
	ev.addWaiter(p.token())
	p.park()
	return ev.val
}

// WaitTimeout blocks until the event fires or d seconds elapse. It
// returns the event value and true on completion, or nil and false on
// timeout (the event remains waitable).
func (p *Proc) WaitTimeout(ev *Event, d float64) (interface{}, bool) {
	if ev.done {
		return ev.val, true
	}
	tk := p.token()
	ev.addWaiter(tk)
	timer := p.env.wakeAt(p.env.now+d, tk)
	p.park()
	timer.Cancel()
	if ev.done {
		return ev.val, true
	}
	// Timed out: drop our stale token so a later Trigger doesn't try to
	// wake a generation we've moved past (harmless but wasteful).
	ev.removeWaiter(tk)
	return nil, false
}

// WaitAll blocks until every event has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// AnyOf returns an event that fires as soon as any input event fires,
// carrying the index of the first one.
func (e *Env) AnyOf(evs ...*Event) *Event {
	out := e.NewEvent()
	for i, ev := range evs {
		i := i
		ev.OnTrigger(func(interface{}) {
			if !out.done {
				out.Trigger(i)
			}
		})
	}
	return out
}
