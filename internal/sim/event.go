package sim

// Event is a one-shot completion. Processes block on it with Wait;
// anything (another process, a scheduler callback, a resource) completes
// it with Trigger, optionally attaching a value. Waiting on an event
// that already fired returns immediately.
type Event struct {
	env     *Env
	done    bool
	val     interface{}
	waiters []wakeToken
	cbs     []func(interface{})
}

// NewEvent returns an untriggered event bound to the environment.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Done reports whether the event has been triggered.
func (ev *Event) Done() bool { return ev.done }

// Value returns the value the event was triggered with (nil before).
func (ev *Event) Value() interface{} { return ev.val }

// Trigger completes the event, waking all waiters and running all
// registered callbacks. Triggering twice panics: an event is one-shot
// and double completion always indicates a bookkeeping bug upstream.
func (ev *Event) Trigger(val interface{}) {
	if ev.done {
		panic("sim: event triggered twice")
	}
	ev.done = true
	ev.val = val
	for _, tk := range ev.waiters {
		ev.env.wake(tk)
	}
	ev.waiters = nil
	for _, cb := range ev.cbs {
		cb(val)
	}
	ev.cbs = nil
}

// OnTrigger registers a callback to run (in scheduler context) when the
// event fires. If the event already fired, cb runs immediately.
func (ev *Event) OnTrigger(cb func(interface{})) {
	if ev.done {
		cb(ev.val)
		return
	}
	ev.cbs = append(ev.cbs, cb)
}

// Wait blocks the process until the event fires and returns its value.
func (p *Proc) Wait(ev *Event) interface{} {
	if ev.done {
		return ev.val
	}
	ev.waiters = append(ev.waiters, p.token())
	p.park()
	return ev.val
}

// WaitTimeout blocks until the event fires or d seconds elapse. It
// returns the event value and true on completion, or nil and false on
// timeout (the event remains waitable).
func (p *Proc) WaitTimeout(ev *Event, d float64) (interface{}, bool) {
	if ev.done {
		return ev.val, true
	}
	tk := p.token()
	ev.waiters = append(ev.waiters, tk)
	timer := p.env.After(d, func() { p.env.wake(tk) })
	p.park()
	timer.Cancel()
	if ev.done {
		return ev.val, true
	}
	// Timed out: drop our stale token so a later Trigger doesn't try to
	// wake a generation we've moved past (harmless but wasteful).
	for i, w := range ev.waiters {
		if w == tk {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			break
		}
	}
	return nil, false
}

// WaitAll blocks until every event has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// AnyOf returns an event that fires as soon as any input event fires,
// carrying the index of the first one.
func (e *Env) AnyOf(evs ...*Event) *Event {
	out := e.NewEvent()
	for i, ev := range evs {
		i := i
		ev.OnTrigger(func(interface{}) {
			if !out.done {
				out.Trigger(i)
			}
		})
	}
	return out
}
