package sim

import "math"

// PSLink models a bandwidth resource under processor sharing: the rate
// is divided among all in-flight transfers in proportion to their
// weights, optionally capped per flow. This is the standard fluid model
// for a shared bus, PCIe link, memory channel group, or network port.
//
// The uncapped case (every production link) runs on virtual service
// time, WFQ-style: the link tracks the cumulative normalized service
//
//	S(t) = ∫ rate/weightSum dt
//
// and each job gets a fixed finish tag finishS = S(start) + bytes/weight
// at admission. A job is done exactly when S reaches its tag, so
// advancing the link is O(1) — bump S — and the next completion is a
// peek at a min-heap ordered by tag. Without this, every Start and
// every completion rescans all in-flight jobs, which turns busy links
// (a NIC port with dozens of concurrent transfers) into an O(n²) hot
// spot.
//
// The link is allocation-free in steady state: completed psJobs return
// to a per-link pool, and scratch buffers are reused across calls.
type PSLink struct {
	env     *Env
	name    string
	rate    float64 // bytes/second aggregate capacity
	flowCap float64 // max bytes/second any single flow may get; 0 = unlimited

	// jobs holds the in-flight transfers: a min-heap on finishS in the
	// uncapped mode, plain insertion order in the capped mode.
	jobs      []*psJob
	weightSum float64
	virt      float64 // cumulative normalized service S (uncapped mode)
	jobSeq    uint64  // admission order, for deterministic completion ties
	last      Time
	timer     Timer

	// accounting
	work      float64 // total bytes moved (including partial progress)
	busy      float64 // total seconds with >=1 active job
	busySince Time

	// scratch buffers and pools (reused across calls, never retained)
	completeFn func()
	rates      []float64
	uncapped   []int
	finished   []*psJob
	freeJobs   []*psJob
}

type psJob struct {
	finishS   float64 // virtual finish tag (uncapped mode)
	remaining float64 // bytes left (capped mode)
	weight    float64
	seq       uint64
	ev        *Event
}

// NewPSLink creates a processor-sharing link with the given aggregate
// rate in bytes/second. flowCap limits the rate of any single transfer
// (0 disables the cap).
func (e *Env) NewPSLink(name string, rate, flowCap float64) *PSLink {
	if rate <= 0 {
		panic("sim: PSLink rate must be positive")
	}
	l := &PSLink{
		env:     e,
		name:    name,
		rate:    rate,
		flowCap: flowCap,
		last:    e.now,
	}
	l.completeFn = l.complete
	return l
}

// Name returns the link name.
func (l *PSLink) Name() string { return l.name }

// Rate returns the aggregate capacity in bytes/second.
func (l *PSLink) Rate() float64 { return l.rate }

// SetRate changes the aggregate capacity mid-run (link degradation
// faults): progress accrued so far is applied at the old rate, and
// in-flight transfers continue at the new one. Virtual finish tags are
// rate-independent, so in the uncapped mode only the clock-time
// projection of the next completion changes.
func (l *PSLink) SetRate(rate float64) {
	if rate <= 0 {
		panic("sim: PSLink rate must be positive")
	}
	l.advance()
	l.rate = rate
	l.reschedule()
}

// InFlight returns the number of active transfers.
func (l *PSLink) InFlight() int { return len(l.jobs) }

// jobRates returns the current per-job rates, index-aligned with
// l.jobs, in a scratch buffer valid until the next jobRates call.
// Capped mode only. Capacity is assigned by water-filling: flows whose
// fair share exceeds flowCap are pinned at the cap and the residual is
// re-shared among the remaining flows (iterating, since a larger share
// may push further flows to the cap) — so a capped flow never strands
// capacity other flows could use.
func (l *PSLink) jobRates() []float64 {
	if cap(l.rates) < len(l.jobs) {
		l.rates = make([]float64, len(l.jobs)*2)
	}
	rates := l.rates[:len(l.jobs)]
	for i := range rates {
		rates[i] = 0
	}
	if len(l.jobs) == 0 {
		return rates
	}
	remaining := l.rate
	uncapped := l.uncapped[:0]
	for i := range l.jobs {
		uncapped = append(uncapped, i)
	}
	for len(uncapped) > 0 && remaining > 0 {
		wsum := 0.0
		for _, i := range uncapped {
			wsum += l.jobs[i].weight
		}
		if wsum <= 0 {
			break
		}
		newlyCapped := false
		kept := uncapped[:0]
		for _, i := range uncapped {
			share := remaining * l.jobs[i].weight / wsum
			if share >= l.flowCap {
				rates[i] = l.flowCap
				newlyCapped = true
			} else {
				kept = append(kept, i)
			}
		}
		uncapped = kept
		if newlyCapped {
			// Recompute the pool left for the still-uncapped flows.
			remaining = l.rate
			for i := range l.jobs {
				if rates[i] > 0 {
					remaining -= rates[i]
				}
			}
			if remaining < 0 {
				remaining = 0
			}
			continue
		}
		// No flow hit the cap: the shares are final.
		for _, i := range uncapped {
			rates[i] = remaining * l.jobs[i].weight / wsum
		}
		break
	}
	l.uncapped = uncapped[:0]
	return rates
}

// advance applies progress for the time since the last update. In the
// uncapped mode this is O(1): between events every in-flight job has
// work left, so the link moves bytes at its full rate and the
// normalized service grows at rate/weightSum.
func (l *PSLink) advance() {
	now := l.env.now
	dt := now - l.last
	l.last = now
	if dt <= 0 || len(l.jobs) == 0 {
		return
	}
	if l.flowCap <= 0 {
		if l.weightSum <= 0 {
			return
		}
		l.virt += l.rate / l.weightSum * dt
		l.work += l.rate * dt
		return
	}
	rates := l.jobRates()
	for i, j := range l.jobs {
		prog := dt * rates[i]
		if prog > j.remaining {
			prog = j.remaining
		}
		j.remaining -= prog
		l.work += prog
	}
}

// reschedule cancels any pending completion check and schedules the
// next one at the earliest projected job completion.
func (l *PSLink) reschedule() {
	l.timer.Cancel()
	l.timer = Timer{}
	if len(l.jobs) == 0 {
		return
	}
	if l.flowCap <= 0 {
		if l.weightSum <= 0 {
			return
		}
		next := (l.jobs[0].finishS - l.virt) * l.weightSum / l.rate
		if next < 0 {
			next = 0
		}
		l.timer = l.env.After(next, l.completeFn)
		return
	}
	next := math.Inf(1)
	rates := l.jobRates()
	for i, j := range l.jobs {
		r := rates[i]
		if r <= 0 {
			continue
		}
		if t := j.remaining / r; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	l.timer = l.env.After(next, l.completeFn)
}

// complete fires at a projected completion instant: it advances the
// link, finishes the jobs that are done, and reschedules. Finished
// jobs fire their events in admission order, so same-instant
// completions keep a deterministic, insertion-ordered trigger sequence
// regardless of heap layout.
func (l *PSLink) complete() {
	l.timer = Timer{}
	l.advance()
	const eps = 1e-6 // bytes; transfers are whole bytes, fluid-modeled
	now := l.env.now
	finished := l.finished[:0]
	if l.flowCap <= 0 {
		for len(l.jobs) > 0 {
			top := l.jobs[0]
			if (top.finishS-l.virt)*top.weight > eps {
				// Guard against float livelock: if the next completion
				// instant is not representable past `now`, the leftover
				// work is below the clock's resolution — finish it too.
				if l.weightSum <= 0 {
					break
				}
				if next := (top.finishS - l.virt) * l.weightSum / l.rate; now+next > now {
					break
				}
			}
			l.popMinJob()
			l.weightSum -= top.weight
			finished = append(finished, top)
		}
		// Restore admission order for the triggers below.
		for i := 1; i < len(finished); i++ {
			for k := i; k > 0 && finished[k].seq < finished[k-1].seq; k-- {
				finished[k], finished[k-1] = finished[k-1], finished[k]
			}
		}
	} else {
		rates := l.jobRates()
		kept := l.jobs[:0]
		for i, j := range l.jobs {
			done := j.remaining <= eps
			if !done && rates[i] > 0 && now+j.remaining/rates[i] <= now {
				done = true
			}
			if done {
				finished = append(finished, j)
				l.weightSum -= j.weight
			} else {
				kept = append(kept, j)
			}
		}
		for i := len(kept); i < len(l.jobs); i++ {
			l.jobs[i] = nil
		}
		l.jobs = kept
	}
	if len(l.jobs) == 0 {
		// Kill accumulated float error and keep the virtual clock small.
		l.weightSum = 0
		l.virt = 0
		l.busy += l.env.now - l.busySince
	}
	l.reschedule()
	for _, j := range finished {
		ev := j.ev
		j.ev = nil
		l.freeJobs = append(l.freeJobs, j)
		ev.Trigger(nil)
	}
	l.finished = finished[:0]
}

// pushJob inserts a job into the finish-tag min-heap (uncapped mode).
func (l *PSLink) pushJob(j *psJob) {
	l.jobs = append(l.jobs, j)
	i := len(l.jobs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if l.jobs[parent].finishS <= l.jobs[i].finishS {
			break
		}
		l.jobs[parent], l.jobs[i] = l.jobs[i], l.jobs[parent]
		i = parent
	}
}

// popMinJob removes and returns the job with the smallest finish tag.
func (l *PSLink) popMinJob() *psJob {
	top := l.jobs[0]
	n := len(l.jobs) - 1
	l.jobs[0] = l.jobs[n]
	l.jobs[n] = nil
	l.jobs = l.jobs[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && l.jobs[c+1].finishS < l.jobs[c].finishS {
			c++
		}
		if l.jobs[i].finishS <= l.jobs[c].finishS {
			break
		}
		l.jobs[i], l.jobs[c] = l.jobs[c], l.jobs[i]
		i = c
	}
	return top
}

// StartWeighted begins a transfer of the given size and weight without
// blocking; the returned event fires on completion.
func (l *PSLink) StartWeighted(bytes, weight float64) *Event {
	ev := l.env.NewEvent()
	if bytes <= 0 {
		ev.Trigger(nil)
		return ev
	}
	if weight <= 0 {
		weight = 1
	}
	l.advance()
	if len(l.jobs) == 0 {
		l.busySince = l.env.now
	}
	var j *psJob
	if n := len(l.freeJobs); n > 0 {
		j = l.freeJobs[n-1]
		l.freeJobs[n-1] = nil
		l.freeJobs = l.freeJobs[:n-1]
	} else {
		j = &psJob{}
	}
	j.weight = weight
	j.ev = ev
	l.jobSeq++
	j.seq = l.jobSeq
	if l.flowCap <= 0 {
		j.finishS = l.virt + bytes/weight
		l.pushJob(j)
	} else {
		j.remaining = bytes
		l.jobs = append(l.jobs, j)
	}
	l.weightSum += weight
	l.reschedule()
	return ev
}

// Start begins a unit-weight transfer without blocking.
func (l *PSLink) Start(bytes float64) *Event { return l.StartWeighted(bytes, 1) }

// Transfer moves bytes across the link, blocking the process until the
// transfer completes under processor sharing.
func (l *PSLink) Transfer(p *Proc, bytes float64) {
	p.Wait(l.Start(bytes))
}

// TransferWeighted moves bytes with a given PS weight.
func (l *PSLink) TransferWeighted(p *Proc, bytes, weight float64) {
	p.Wait(l.StartWeighted(bytes, weight))
}

// Stats is a snapshot of the link's activity counters.
type LinkStats struct {
	Work     float64 // bytes moved so far (fluid progress)
	BusyTime float64 // seconds with at least one active transfer
	At       Time    // snapshot time
}

// Snapshot returns cumulative counters at the current instant. Callers
// diff two snapshots to compute bandwidth over a window.
func (l *PSLink) Snapshot() LinkStats {
	l.advance()
	busy := l.busy
	if len(l.jobs) > 0 {
		busy += l.env.now - l.busySince
	}
	return LinkStats{Work: l.work, BusyTime: busy, At: l.env.now}
}

// BandwidthBetween returns the average bytes/second moved between two
// snapshots.
func BandwidthBetween(a, b LinkStats) float64 {
	dt := b.At - a.At
	if dt <= 0 {
		return 0
	}
	return (b.Work - a.Work) / dt
}
