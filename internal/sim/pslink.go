package sim

import "math"

// PSLink models a bandwidth resource under processor sharing: the rate
// is divided among all in-flight transfers in proportion to their
// weights, optionally capped per flow. This is the standard fluid model
// for a shared bus, PCIe link, memory channel group, or network port.
type PSLink struct {
	env     *Env
	name    string
	rate    float64 // bytes/second aggregate capacity
	flowCap float64 // max bytes/second any single flow may get; 0 = unlimited

	jobs      []*psJob // insertion order; completions fire oldest-first
	weightSum float64
	last      Time
	timer     *Timer

	// accounting
	work      float64 // total bytes moved (including partial progress)
	busy      float64 // total seconds with >=1 active job
	busySince Time
}

type psJob struct {
	remaining float64
	weight    float64
	ev        *Event
}

// NewPSLink creates a processor-sharing link with the given aggregate
// rate in bytes/second. flowCap limits the rate of any single transfer
// (0 disables the cap).
func (e *Env) NewPSLink(name string, rate, flowCap float64) *PSLink {
	if rate <= 0 {
		panic("sim: PSLink rate must be positive")
	}
	return &PSLink{
		env:     e,
		name:    name,
		rate:    rate,
		flowCap: flowCap,
		last:    e.now,
	}
}

// Name returns the link name.
func (l *PSLink) Name() string { return l.name }

// Rate returns the aggregate capacity in bytes/second.
func (l *PSLink) Rate() float64 { return l.rate }

// SetRate changes the aggregate capacity mid-run (link degradation
// faults): progress accrued so far is applied at the old rate, and
// in-flight transfers continue at the new one.
func (l *PSLink) SetRate(rate float64) {
	if rate <= 0 {
		panic("sim: PSLink rate must be positive")
	}
	l.advance()
	l.rate = rate
	l.reschedule()
}

// InFlight returns the number of active transfers.
func (l *PSLink) InFlight() int { return len(l.jobs) }

// jobRates returns the current per-job rates, index-aligned with
// l.jobs. Without a flow cap this is plain weighted processor sharing.
// With one, capacity is assigned by water-filling: flows whose fair
// share exceeds flowCap are pinned at the cap and the residual is
// re-shared among the remaining flows (iterating, since a larger share
// may push further flows to the cap) — so a capped flow never strands
// capacity other flows could use.
func (l *PSLink) jobRates() []float64 {
	rates := make([]float64, len(l.jobs))
	if len(l.jobs) == 0 {
		return rates
	}
	if l.flowCap <= 0 {
		if l.weightSum > 0 {
			for i, j := range l.jobs {
				rates[i] = l.rate * j.weight / l.weightSum
			}
		}
		return rates
	}
	remaining := l.rate
	uncapped := make([]int, 0, len(l.jobs))
	for i := range l.jobs {
		uncapped = append(uncapped, i)
	}
	for len(uncapped) > 0 && remaining > 0 {
		wsum := 0.0
		for _, i := range uncapped {
			wsum += l.jobs[i].weight
		}
		if wsum <= 0 {
			break
		}
		newlyCapped := false
		kept := uncapped[:0]
		for _, i := range uncapped {
			share := remaining * l.jobs[i].weight / wsum
			if share >= l.flowCap {
				rates[i] = l.flowCap
				newlyCapped = true
			} else {
				kept = append(kept, i)
			}
		}
		uncapped = kept
		if newlyCapped {
			// Recompute the pool left for the still-uncapped flows.
			remaining = l.rate
			for i := range l.jobs {
				if rates[i] > 0 {
					remaining -= rates[i]
				}
			}
			if remaining < 0 {
				remaining = 0
			}
			continue
		}
		// No flow hit the cap: the shares are final.
		for _, i := range uncapped {
			rates[i] = remaining * l.jobs[i].weight / wsum
		}
		break
	}
	return rates
}

// advance applies progress to all jobs for the time since last update.
func (l *PSLink) advance() {
	now := l.env.now
	dt := now - l.last
	l.last = now
	if dt <= 0 || len(l.jobs) == 0 {
		return
	}
	rates := l.jobRates()
	for i, j := range l.jobs {
		prog := dt * rates[i]
		if prog > j.remaining {
			prog = j.remaining
		}
		j.remaining -= prog
		l.work += prog
	}
}

// reschedule cancels any pending completion check and schedules the next
// one at the earliest projected job completion.
func (l *PSLink) reschedule() {
	if l.timer != nil {
		l.timer.Cancel()
		l.timer = nil
	}
	if len(l.jobs) == 0 {
		return
	}
	next := math.Inf(1)
	rates := l.jobRates()
	for i, j := range l.jobs {
		r := rates[i]
		if r <= 0 {
			continue
		}
		t := j.remaining / r
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	l.timer = l.env.After(next, l.complete)
}

// complete fires at a projected completion instant: it advances all
// jobs, finishes the ones that are done, and reschedules.
func (l *PSLink) complete() {
	l.timer = nil
	l.advance()
	const eps = 1e-6 // bytes; transfers are whole bytes, fluid-modeled
	now := l.env.now
	var finished []*psJob
	rates := l.jobRates()
	kept := l.jobs[:0]
	for i, j := range l.jobs {
		done := j.remaining <= eps
		if !done {
			// Guard against float livelock: if the projected completion
			// time is not representable past `now`, the leftover work is
			// below the clock's resolution — finish it immediately.
			if r := rates[i]; r > 0 && now+j.remaining/r <= now {
				done = true
			}
		}
		if done {
			finished = append(finished, j)
			l.weightSum -= j.weight
		} else {
			kept = append(kept, j)
		}
	}
	l.jobs = kept
	if len(l.jobs) == 0 {
		l.weightSum = 0 // kill accumulated float error
		l.busy += l.env.now - l.busySince
	}
	l.reschedule()
	for _, j := range finished {
		j.ev.Trigger(nil)
	}
}

// StartWeighted begins a transfer of the given size and weight without
// blocking; the returned event fires on completion.
func (l *PSLink) StartWeighted(bytes, weight float64) *Event {
	ev := l.env.NewEvent()
	if bytes <= 0 {
		ev.Trigger(nil)
		return ev
	}
	if weight <= 0 {
		weight = 1
	}
	l.advance()
	if len(l.jobs) == 0 {
		l.busySince = l.env.now
	}
	j := &psJob{remaining: bytes, weight: weight, ev: ev}
	l.jobs = append(l.jobs, j)
	l.weightSum += weight
	l.reschedule()
	return ev
}

// Start begins a unit-weight transfer without blocking.
func (l *PSLink) Start(bytes float64) *Event { return l.StartWeighted(bytes, 1) }

// Transfer moves bytes across the link, blocking the process until the
// transfer completes under processor sharing.
func (l *PSLink) Transfer(p *Proc, bytes float64) {
	p.Wait(l.Start(bytes))
}

// TransferWeighted moves bytes with a given PS weight.
func (l *PSLink) TransferWeighted(p *Proc, bytes, weight float64) {
	p.Wait(l.StartWeighted(bytes, weight))
}

// Stats is a snapshot of the link's activity counters.
type LinkStats struct {
	Work     float64 // bytes moved so far (fluid progress)
	BusyTime float64 // seconds with at least one active transfer
	At       Time    // snapshot time
}

// Snapshot returns cumulative counters at the current instant. Callers
// diff two snapshots to compute bandwidth over a window.
func (l *PSLink) Snapshot() LinkStats {
	l.advance()
	busy := l.busy
	if len(l.jobs) > 0 {
		busy += l.env.now - l.busySince
	}
	return LinkStats{Work: l.work, BusyTime: busy, At: l.env.now}
}

// BandwidthBetween returns the average bytes/second moved between two
// snapshots.
func BandwidthBetween(a, b LinkStats) float64 {
	dt := b.At - a.At
	if dt <= 0 {
		return 0
	}
	return (b.Work - a.Work) / dt
}
