package sim

// Resource is a counted FIFO resource: up to Slots processes hold it at
// once; the rest queue in arrival order. It models server pools, DMA
// queues, disk command slots, and similar bounded concurrency.
type Resource struct {
	env   *Env
	name  string
	slots int
	inUse int
	queue []*Event

	// accounting
	busyInt  float64 // integral of inUse over time
	last     Time
	acquires uint64
	waitTime float64 // total queueing delay across acquisitions
}

// NewResource creates a resource with the given number of slots.
func (e *Env) NewResource(name string, slots int) *Resource {
	if slots <= 0 {
		panic("sim: Resource slots must be positive")
	}
	return &Resource{env: e, name: name, slots: slots, last: e.now}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Slots returns the total slot count.
func (r *Resource) Slots() int { return r.slots }

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiting acquirers.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.env.now
	r.busyInt += float64(r.inUse) * (now - r.last)
	r.last = now
}

// Acquire blocks until a slot is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	start := r.env.now
	if r.inUse < r.slots && len(r.queue) == 0 {
		r.account()
		r.inUse++
		r.acquires++
		return
	}
	ev := r.env.NewEvent()
	r.queue = append(r.queue, ev)
	p.Wait(ev)
	r.acquires++
	r.waitTime += r.env.now - start
}

// TryAcquire takes a slot if one is free, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.slots && len(r.queue) == 0 {
		r.account()
		r.inUse++
		r.acquires++
		return true
	}
	return false
}

// Release frees a slot, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.account()
	if len(r.queue) > 0 {
		// Hand the slot directly to the next waiter; inUse stays.
		ev := r.queue[0]
		r.queue[0] = nil // unpin the fired event from the backing array
		r.queue = r.queue[1:]
		ev.Trigger(nil)
		return
	}
	r.inUse--
}

// Process acquires a slot, holds it for d seconds, then releases it.
func (r *Resource) Process(p *Proc, d float64) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// ResourceStats is a snapshot of utilization counters.
type ResourceStats struct {
	BusyIntegral float64 // slot-seconds of occupancy
	Acquires     uint64
	WaitTime     float64
	At           Time
}

// Snapshot returns cumulative counters at the current instant.
func (r *Resource) Snapshot() ResourceStats {
	r.account()
	return ResourceStats{BusyIntegral: r.busyInt, Acquires: r.acquires, WaitTime: r.waitTime, At: r.env.now}
}

// UtilizationBetween returns mean occupied slots between two snapshots.
func UtilizationBetween(a, b ResourceStats) float64 {
	dt := b.At - a.At
	if dt <= 0 {
		return 0
	}
	return (b.BusyIntegral - a.BusyIntegral) / dt
}
