// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel advances a virtual clock over an event calendar. Simulation
// processes are goroutines that cooperate with the scheduler through a
// strict handoff protocol: at any instant at most one goroutine (either
// the scheduler or a single process) is runnable, which makes execution
// fully deterministic for a fixed sequence of API calls.
//
// Building blocks:
//
//   - Env: the event calendar and clock.
//   - Proc: a simulation process; blocks with Sleep and Wait.
//   - Event: a one-shot completion that carries a value.
//   - PSLink: a processor-sharing bandwidth resource (bus, link, port).
//   - Resource: a counted FIFO resource (server pool).
//   - Queue: an unbounded FIFO mailbox between processes.
//
// All time values are float64 seconds of virtual time.
package sim
