package sim

import "testing"

// BenchmarkEnvRun measures raw calendar throughput: a self-
// rescheduling timer chain (the dominant event shape in the cluster —
// PSLink reschedules, sampler grids, retransmit timers) plus a
// cancelled timer per step, which exercises the in-place heap removal.
func BenchmarkEnvRun(b *testing.B) {
	env := NewEnv()
	fn := func() {}
	n := 0
	var tick func()
	tick = func() {
		n++
		dead := env.After(2e-6, fn) // armed and cancelled, like a timeout that never fires
		dead.Cancel()
		if n < b.N {
			env.After(1e-6, tick)
		}
	}
	env.After(1e-6, tick)
	b.ReportAllocs()
	b.ResetTimer()
	env.Run(0)
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEnvSleepWakeup measures the proc park/resume path: two
// processes ping-ponging through a queue, each handoff crossing the
// scheduler twice.
func BenchmarkEnvSleepWakeup(b *testing.B) {
	env := NewEnv()
	q := env.NewQueue("ping")
	done := env.NewQueue("done")
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
		done.Put(nil)
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run(0)
	if _, ok := done.TryGet(); !ok {
		b.Fatal("consumer did not finish")
	}
}

// BenchmarkQueuePutGet measures the buffered ring path without proc
// switches: the acceptance target is zero allocations per cycle in
// steady state.
func BenchmarkQueuePutGet(b *testing.B) {
	env := NewEnv()
	q := env.NewQueue("bench")
	payload := interface{}(&struct{}{})
	for i := 0; i < 64; i++ { // establish ring capacity
		q.Put(payload)
		q.TryGet()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(payload)
		q.TryGet()
	}
}

// BenchmarkTimerCancel measures the schedule/cancel churn path — the
// shape of every timeout that does not fire.
func BenchmarkTimerCancel(b *testing.B) {
	env := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := env.After(1, fn)
		tm.Cancel()
	}
}

// BenchmarkPSLinkChurn measures the processor-sharing link under a
// sustained open-loop load of overlapping transfers.
func BenchmarkPSLinkChurn(b *testing.B) {
	env := NewEnv()
	l := env.NewPSLink("bench", 100e9, 0)
	n := 0
	var launch func()
	launch = func() {
		n++
		l.Start(4096)
		if n < b.N {
			env.After(50e-9, launch)
		}
	}
	env.After(50e-9, launch)
	b.ReportAllocs()
	b.ResetTimer()
	env.Run(0)
}
