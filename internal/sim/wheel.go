package sim

// Ticker batches every subscriber of one periodic cadence into a
// single calendar entry per tick. The dense sampling grids — the
// telemetry sampler and the trace counter sampler both walk a 100 µs
// virtual-clock grid — used to each maintain their own self-
// rescheduling timer chain; with N samplers that was N heap pushes and
// N pops per grid instant. A Ticker schedules once per tick and fans
// out to all subscribers in subscription order, which is both cheaper
// and deterministic.
//
// Phase: the first tick after a Subscribe that arms an idle ticker
// fires one interval later; subscribers joining an already-armed
// ticker join the existing grid (their first callback arrives at the
// next shared tick, at most one interval away). Subscribers at the
// same cadence therefore share instants, which is exactly what the
// sampling grid wants.
type Ticker struct {
	env      *Env
	interval float64
	subs     []tickSub
	armed    bool
	tickFn   func()
}

type tickSub struct {
	fn    func()
	until Time
}

// Ticker returns the environment's shared ticker for the exact
// interval, creating it on first use. The interval must be a positive
// real number.
func (e *Env) Ticker(interval float64) *Ticker {
	if !(interval > 0) { // rejects zero, negatives, and NaN
		panic("sim: Ticker interval must be positive")
	}
	if e.tickers == nil {
		e.tickers = make(map[float64]*Ticker)
	}
	if tk := e.tickers[interval]; tk != nil {
		return tk
	}
	tk := &Ticker{env: e, interval: interval}
	tk.tickFn = tk.tick
	e.tickers[interval] = tk
	return tk
}

// Subscribe registers fn to run on every tick whose successor would
// still be at or before until — the same cadence contract as a
// self-rescheduling After chain ("fire at t, continue while
// t+interval <= until"). Subscribing arms the ticker if it was idle.
func (tk *Ticker) Subscribe(until Time, fn func()) {
	tk.subs = append(tk.subs, tickSub{fn: fn, until: until})
	if !tk.armed {
		tk.armed = true
		tk.env.After(tk.interval, tk.tickFn)
	}
}

// Subscribers reports the number of live subscriptions.
func (tk *Ticker) Subscribers() int { return len(tk.subs) }

// tick runs every subscriber, expires the ones whose window closed,
// and re-arms while any remain. Subscribers added from within a tick
// callback run later that same tick (the index loop tolerates
// appends).
func (tk *Ticker) tick() {
	now := tk.env.now
	for i := 0; i < len(tk.subs); i++ {
		tk.subs[i].fn()
	}
	kept := tk.subs[:0]
	for _, s := range tk.subs {
		if now+tk.interval <= s.until {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(tk.subs); i++ {
		tk.subs[i] = tickSub{}
	}
	tk.subs = kept
	if len(tk.subs) > 0 {
		tk.env.After(tk.interval, tk.tickFn)
	} else {
		tk.armed = false
	}
}
