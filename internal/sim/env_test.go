package sim

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRunEmptyEnv(t *testing.T) {
	e := NewEnv()
	if got := e.Run(0); got != 0 {
		t.Fatalf("Run on empty env = %g, want 0", got)
	}
	if got := e.Run(5); got != 5 {
		t.Fatalf("Run(5) should advance clock to horizon, got %g", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.After(2, func() { order = append(order, 2) })
	e.After(1, func() { order = append(order, 1) })
	e.After(3, func() { order = append(order, 3) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %g, want 3", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(1, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEnv()
	fired := false
	tm := e.After(1, func() { fired = true })
	tm.Cancel()
	e.Run(0)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	tm.Cancel() // double cancel is a no-op
}

func TestRunHorizonStopsEarly(t *testing.T) {
	e := NewEnv()
	fired := false
	e.After(10, func() { fired = true })
	e.Run(5)
	if fired {
		t.Fatal("event past horizon fired")
	}
	if e.Now() != 5 {
		t.Fatalf("time = %g, want 5", e.Now())
	}
	e.Run(0)
	if !fired {
		t.Fatal("event did not fire after resuming")
	}
	if e.Now() != 10 {
		t.Fatalf("time = %g, want 10", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv()
	e.After(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0.5, func() {})
	})
	e.Run(0)
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var times []Time
	e.Go("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(1.5)
		times = append(times, p.Now())
		p.Sleep(0.5)
		times = append(times, p.Now())
	})
	e.Run(0)
	want := []Time{0, 1.5, 2.0}
	if len(times) != 3 {
		t.Fatalf("got %v", times)
	}
	for i := range want {
		if !almostEq(times[i], want[i], 1e-12) {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcNegativeSleep(t *testing.T) {
	e := NewEnv()
	done := false
	e.Go("p", func(p *Proc) {
		p.Sleep(-1)
		done = true
	})
	e.Run(0)
	if !done || e.Now() != 0 {
		t.Fatalf("negative sleep misbehaved: done=%v now=%g", done, e.Now())
	}
}

func TestInterleavedProcs(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(2)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(1)
		order = append(order, "b1")
		p.Sleep(2)
		order = append(order, "b3")
	})
	e.Run(0)
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventTriggerWakesWaiters(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	got := make([]interface{}, 0, 2)
	for i := 0; i < 2; i++ {
		e.Go("w", func(p *Proc) { got = append(got, p.Wait(ev)) })
	}
	e.After(3, func() { ev.Trigger(42) })
	e.Run(0)
	if len(got) != 2 || got[0] != 42 || got[1] != 42 {
		t.Fatalf("waiters got %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("now = %g", e.Now())
	}
}

func TestWaitOnDoneEvent(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger("x")
	var got interface{}
	e.Go("w", func(p *Proc) { got = p.Wait(ev) })
	e.Run(0)
	if got != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestDoubleTriggerPanics(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double trigger did not panic")
		}
	}()
	ev.Trigger(nil)
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var ok bool
	var at Time
	e.Go("w", func(p *Proc) {
		_, ok = p.WaitTimeout(ev, 2)
		at = p.Now()
	})
	e.Run(0)
	if ok {
		t.Fatal("timeout reported success")
	}
	if !almostEq(at, 2, 1e-12) {
		t.Fatalf("woke at %g, want 2", at)
	}
	// Late trigger must not disturb anything.
	ev.Trigger(nil)
	e.Run(0)
}

func TestWaitTimeoutCompletes(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var ok bool
	var val interface{}
	e.Go("w", func(p *Proc) { val, ok = p.WaitTimeout(ev, 5) })
	e.After(1, func() { ev.Trigger("hi") })
	e.Run(0)
	if !ok || val != "hi" {
		t.Fatalf("ok=%v val=%v", ok, val)
	}
	if e.Now() >= 5 {
		t.Fatalf("timeout timer extended the run: now=%g", e.Now())
	}
}

func TestAnyOf(t *testing.T) {
	e := NewEnv()
	a, b := e.NewEvent(), e.NewEvent()
	any := e.AnyOf(a, b)
	var idx interface{}
	e.Go("w", func(p *Proc) { idx = p.Wait(any) })
	e.After(1, func() { b.Trigger(nil) })
	e.After(2, func() { a.Trigger(nil) })
	e.Run(0)
	if idx != 1 {
		t.Fatalf("AnyOf index = %v, want 1", idx)
	}
}

func TestOnTriggerAlreadyDone(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger(7)
	ran := false
	ev.OnTrigger(func(v interface{}) {
		if v != 7 {
			t.Errorf("cb value %v", v)
		}
		ran = true
	})
	if !ran {
		t.Fatal("OnTrigger on done event did not run immediately")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("parent", func(p *Proc) {
		order = append(order, "parent")
		p.Env().Go("child", func(c *Proc) {
			order = append(order, "child")
			c.Sleep(1)
			order = append(order, "child-done")
		})
		p.Sleep(2)
		order = append(order, "parent-done")
	})
	e.Run(0)
	want := []string{"parent", "child", "child-done", "parent-done"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStepAndPending(t *testing.T) {
	e := NewEnv()
	n := 0
	e.After(1, func() { n++ })
	e.After(2, func() { n++ })
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	if !e.Step() || n != 1 {
		t.Fatalf("Step did not run first event")
	}
	if !e.Step() || n != 2 {
		t.Fatalf("Step did not run second event")
	}
	if e.Step() {
		t.Fatal("Step on empty calendar returned true")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEnv()
		var out []Time
		link := e.NewPSLink("l", 100, 0)
		for i := 0; i < 5; i++ {
			i := i
			e.Go("p", func(p *Proc) {
				p.Sleep(float64(i) * 0.1)
				link.Transfer(p, 50)
				out = append(out, p.Now())
			})
		}
		e.Run(0)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic results: %v vs %v", a, b)
		}
	}
}

func TestAnyOfAlreadyFired(t *testing.T) {
	e := NewEnv()
	a, b := e.NewEvent(), e.NewEvent()
	b.Trigger("early")
	any := e.AnyOf(a, b)
	if !any.Done() || any.Value() != 1 {
		t.Fatalf("AnyOf over fired event: done=%v val=%v", any.Done(), any.Value())
	}
}

func TestWaitAllMixedStates(t *testing.T) {
	e := NewEnv()
	a, b, c := e.NewEvent(), e.NewEvent(), e.NewEvent()
	a.Trigger(nil)
	var done Time
	e.Go("w", func(p *Proc) {
		p.WaitAll(a, b, c)
		done = p.Now()
	})
	e.After(1, func() { c.Trigger(nil) })
	e.After(2, func() { b.Trigger(nil) })
	e.Run(0)
	if done != 2 {
		t.Fatalf("WaitAll finished at %g, want 2", done)
	}
}

func TestQueueMeanLen(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	// 2 items buffered for [0, 1], then drained.
	q.Put(1)
	q.Put(2)
	e.Go("c", func(p *Proc) {
		p.Sleep(1)
		q.Get(p)
		q.Get(p)
		p.Sleep(1)
	})
	e.Run(0)
	if m := q.MeanLen(); m < 0.9 || m > 1.1 {
		t.Fatalf("mean queue length = %g, want ~1.0", m)
	}
}

func TestResourceWaitTimeAccounting(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	e.Go("a", func(p *Proc) { r.Process(p, 2) })
	e.Go("b", func(p *Proc) { r.Process(p, 1) }) // waits 2s
	e.Run(0)
	s := r.Snapshot()
	if s.Acquires != 2 {
		t.Fatalf("acquires = %d", s.Acquires)
	}
	if s.WaitTime < 1.9 || s.WaitTime > 2.1 {
		t.Fatalf("wait time = %g, want ~2", s.WaitTime)
	}
}

func TestPSLinkInFlightGauge(t *testing.T) {
	e := NewEnv()
	l := e.NewPSLink("l", 100, 0)
	e.Go("a", func(p *Proc) { l.Transfer(p, 100) })
	e.Go("b", func(p *Proc) { l.Transfer(p, 100) })
	e.After(0.5, func() {
		if l.InFlight() != 2 {
			t.Errorf("in flight = %d, want 2", l.InFlight())
		}
	})
	e.Run(0)
	if l.InFlight() != 0 {
		t.Fatalf("in flight after drain = %d", l.InFlight())
	}
}
