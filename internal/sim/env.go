package sim

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// Env is the simulation environment: a virtual clock plus an event
// calendar. The zero value is not usable; construct with NewEnv.
type Env struct {
	now Time
	cal calendar
	ln  lane
	seq uint64

	// live counts scheduled-but-not-yet-fired entries; cancellation
	// decrements it immediately, so Pending() is O(1) and honest even
	// under timeout-heavy cancel storms.
	live int
	// events counts dispatched (non-cancelled) calendar entries — the
	// denominator of the simulator-performance metrics.
	events uint64

	freeItems   []*item
	freeWaiters *qWaiter
	freeProcs   []*Proc
	tickers     map[float64]*Ticker

	// evSlab hands out Events in bulk; see NewEvent.
	evSlab []Event
	evPos  int

	// yielded is the proc→scheduler half of the spin handoff: the
	// running proc sets it when it parks or finishes, and the scheduler
	// consumes it in waitYield.
	yielded atomic.Uint32
}

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() Time { return e.now }

// Events reports the number of calendar entries dispatched so far —
// the simulator's raw unit of work. Cancelled entries never count.
func (e *Env) Events() uint64 { return e.events }

// newItem takes a pooled (or fresh) calendar entry stamped with the
// next seq. Scheduling in the past or at NaN panics: NaN compares
// false against everything and would silently corrupt the heap order.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) newItem(t Time) *item {
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN time")
	}
	if t < e.now {
		//detcheck:hotalloc panic path: the run is already dead, formatting is free
		panic(fmt.Sprintf("sim: scheduling in the past: %g < %g", t, e.now))
	}
	e.seq++
	var it *item
	if n := len(e.freeItems); n > 0 {
		it = e.freeItems[n-1]
		e.freeItems[n-1] = nil
		e.freeItems = e.freeItems[:n-1]
	} else {
		//detcheck:hotalloc pool miss: warmup-only, steady state recycles via freeItems
		it = &item{}
	}
	it.t = t
	it.seq = e.seq
	it.cancelled = false
	e.live++
	return it
}

// release returns a fired or cancelled item to the pool. The item
// keeps its seq until reuse, so stale Timers recognize it.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) release(it *item) {
	it.fn = nil
	it.proc = nil
	it.idx = freeIdx
	//detcheck:hotalloc free-list growth mirrors the pool-miss warmup; steady state reuses capacity
	e.freeItems = append(e.freeItems, it)
}

// enqueue files the item: entries at exactly the current instant take
// the FIFO fast lane, everything else goes through the heap.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) enqueue(it *item) {
	if it.t == e.now { //detcheck:floateq same-instant entries take the O(1) fast lane; (t,seq) order is unchanged
		e.ln.push(it)
		return
	}
	e.cal.push(it)
}

// schedule posts fn to run at time t. It returns the calendar entry so
// callers can cancel it.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) schedule(t Time, fn func()) *item {
	it := e.newItem(t)
	it.fn = fn
	e.enqueue(it)
	return it
}

// scheduleWake posts a conditional process resume at time t without
// allocating a closure: the proc runs iff its park generation still
// matches tk when the entry fires.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) scheduleWake(t Time, tk wakeToken) *item {
	it := e.newItem(t)
	it.proc = tk.p
	it.gen = tk.gen
	e.enqueue(it)
	return it
}

// Timer is a cancellable scheduled callback. The zero Timer is valid
// and Cancel on it is a no-op; Timers are plain values, so the hot
// path never heap-allocates one.
type Timer struct {
	env *Env
	it  *item
	seq uint64
}

// timerFor wraps a scheduled item in a cancellation handle.
func (e *Env) timerFor(it *item) Timer { return Timer{env: e, it: it, seq: it.seq} }

// After schedules fn to run after d seconds of virtual time and returns
// a cancellable Timer.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) After(d float64, fn func()) Timer {
	return e.timerFor(e.schedule(e.now+d, fn))
}

// At schedules fn at absolute virtual time t.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) At(t Time, fn func()) Timer {
	return e.timerFor(e.schedule(t, fn))
}

// wakeAt schedules a conditional process resume and returns its Timer
// (the cancellable half of WaitTimeout and Sleep).
func (e *Env) wakeAt(t Time, tk wakeToken) Timer {
	return e.timerFor(e.scheduleWake(t, tk))
}

// Cancel prevents the timer's callback from running. A heap entry is
// removed in place (no leak until pop); a fast-lane entry is marked
// and skipped when its instant drains. Cancelling an already-fired,
// already-cancelled, or zero Timer is a no-op — the seq stamp detects
// items that were recycled for a later schedule.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (t Timer) Cancel() {
	it := t.it
	if it == nil || it.seq != t.seq || it.cancelled {
		return
	}
	switch {
	case it.idx >= 0:
		t.env.cal.remove(it.idx)
		t.env.live--
		t.env.release(it)
	case it.idx == laneIdx:
		it.cancelled = true
		t.env.live--
	}
}

// next pops the earliest live calendar entry, nil when the calendar is
// empty. The lane is globally (t, seq)-sorted, so comparing its head
// against the heap root preserves the total dispatch order.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) next() *item {
	for {
		var it *item
		switch {
		case e.ln.n > 0 && e.cal.len() > 0:
			if calLess(e.cal.items[0], e.ln.peek()) {
				it = e.cal.popMin()
			} else {
				it = e.ln.pop()
			}
		case e.ln.n > 0:
			it = e.ln.pop()
		case e.cal.len() > 0:
			it = e.cal.popMin()
		default:
			return nil
		}
		if it.cancelled {
			e.release(it) // live was decremented at Cancel
			continue
		}
		return it
	}
}

// fire dispatches one live entry and recycles it. The item is released
// before the callback runs — the callback may immediately reschedule
// and reuse it.
//
//hot:per-event scheduler spine, pinned by TestTimerChurnZeroAllocs
func (e *Env) fire(it *item) {
	e.live--
	e.events++
	if p := it.proc; p != nil {
		gen := it.gen
		e.release(it)
		if !p.done && p.gen == gen {
			e.runProc(p)
		}
		return
	}
	fn := it.fn
	e.release(it)
	fn()
}

// Run processes events until the calendar is empty or the clock would
// pass `until` (0 means run until idle). It returns the final time.
// The clock never moves backward: re-entering with an earlier horizon
// is a no-op.
func (e *Env) Run(until Time) Time {
	for {
		it := e.next()
		if it == nil {
			break
		}
		if until > 0 && it.t > until {
			// Put it back and stop at the horizon.
			e.cal.push(it)
			if until > e.now {
				e.now = until
			}
			return e.now
		}
		e.now = it.t
		e.fire(it)
	}
	if until > e.now {
		e.now = until
	}
	return e.now
}

// Step processes a single calendar entry, returning false when the
// calendar is empty.
func (e *Env) Step() bool {
	it := e.next()
	if it == nil {
		return false
	}
	e.now = it.t
	e.fire(it)
	return true
}

// Pending reports the number of live calendar entries in O(1).
func (e *Env) Pending() int { return e.live }

// calendarLen reports the raw size of the calendar structures,
// including lazily-cancelled fast-lane entries — the regression tests
// use it to pin that cancellation does not leak heap slots.
func (e *Env) calendarLen() int { return e.cal.len() + e.ln.n }
