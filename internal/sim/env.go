package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// item is a calendar entry. Entries with equal time fire in insertion
// order (seq), which keeps runs deterministic.
type item struct {
	t         Time
	seq       uint64
	fn        func()
	cancelled bool
}

type calendar []*item

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].t != c[j].t { //detcheck:floateq exact tie detection; ties fall through to the seq order
		return c[i].t < c[j].t
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x interface{}) { *c = append(*c, x.(*item)) }
func (c *calendar) Pop() interface{} {
	old := *c
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*c = old[:n-1]
	return it
}

// Env is the simulation environment: a virtual clock plus an event
// calendar. The zero value is not usable; construct with NewEnv.
type Env struct {
	now    Time
	cal    calendar
	seq    uint64
	parked chan struct{}
	nprocs int
}

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() Time { return e.now }

// schedule posts fn to run at time t. It returns the calendar entry so
// callers can cancel it.
func (e *Env) schedule(t Time, fn func()) *item {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %g < %g", t, e.now))
	}
	e.seq++
	it := &item{t: t, seq: e.seq, fn: fn}
	heap.Push(&e.cal, it)
	return it
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	it *item
}

// After schedules fn to run after d seconds of virtual time and returns
// a cancellable Timer.
func (e *Env) After(d float64, fn func()) *Timer {
	return &Timer{it: e.schedule(e.now+d, fn)}
}

// At schedules fn at absolute virtual time t.
func (e *Env) At(t Time, fn func()) *Timer {
	return &Timer{it: e.schedule(t, fn)}
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.it != nil {
		t.it.cancelled = true
	}
}

// Run processes events until the calendar is empty or the clock would
// pass `until` (0 means run until idle). It returns the final time.
func (e *Env) Run(until Time) Time {
	for e.cal.Len() > 0 {
		it := heap.Pop(&e.cal).(*item)
		if it.cancelled {
			continue
		}
		if until > 0 && it.t > until {
			// Put it back and stop at the horizon.
			heap.Push(&e.cal, it)
			e.now = until
			return e.now
		}
		e.now = it.t
		e.dispatch(it.fn)
	}
	if until > 0 && e.now < until {
		e.now = until
	}
	return e.now
}

// Step processes a single calendar entry, returning false when the
// calendar is empty.
func (e *Env) Step() bool {
	for e.cal.Len() > 0 {
		it := heap.Pop(&e.cal).(*item)
		if it.cancelled {
			continue
		}
		e.now = it.t
		e.dispatch(it.fn)
		return true
	}
	return false
}

// Pending reports the number of live calendar entries.
func (e *Env) Pending() int {
	n := 0
	for _, it := range e.cal {
		if !it.cancelled {
			n++
		}
	}
	return n
}

// dispatch runs one event callback in scheduler context.
func (e *Env) dispatch(fn func()) { fn() }
