// Package critpath reconstructs each sampled request's span DAG from
// trace events, extracts the critical path, and aggregates latency
// blame profiles: what fraction of client-observed latency each stage
// is responsible for, split into service time (a component doing work)
// and wait time (the request parked on a queue, a straggler ack, or an
// engine slot).
//
// The model: every request has one root span (trace.KindRoot) — the
// client-observed end-to-end interval — and any number of stage spans
// linked to it by (PComp, PName) parent edges. The critical path is
// computed by a sweep over elementary intervals: within each interval
// the deepest active span is blamed (ties broken by label, so the
// result is deterministic); intervals covered by no stage span are the
// root's own time. Adjacent intervals with the same blame merge into
// segments, and because all arithmetic is in integer picoseconds the
// segments of one request tile its end-to-end latency exactly — the
// sum of segment durations equals the quantized root duration, testable
// with ==.
package critpath

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/disagg/smartds/internal/trace"
)

// ps quantizes a duration in virtual seconds to integer picoseconds.
// All blame arithmetic happens on these integers so segment sums
// telescope exactly and same-seed profiles are byte-identical.
func ps(sec float64) int64 { return int64(math.Round(sec * 1e12)) }

// Segment is one contiguous stretch of a request's critical path,
// blamed on a single stage.
type Segment struct {
	Stage string // blamed span label "comp/name"; the root label for root self-time
	Wait  bool   // the blamed span was wait time, not service time
	Start int64  // picoseconds after the root start
	Dur   int64  // picoseconds
}

// Path is one request's extracted critical path. Segments are ordered
// by start time and tile [0, E2E] exactly: sum(Dur) == E2E.
type Path struct {
	Req      uint64  // request DAG id (the trace id)
	Root     string  // root span label "comp/name"
	RootName string  // root span name ("write", "read", or a tail-keep reason)
	Start    float64 // root start in virtual seconds
	E2E      int64   // quantized end-to-end latency in picoseconds
	Segments []Segment
}

// stageKey identifies one blame bucket: a span label plus its
// wait/service classification.
type stageKey struct {
	Stage string
	Wait  bool
}

// StageBlame aggregates one stage's share of critical-path time across
// all analyzed requests.
type StageBlame struct {
	Stage    string
	Wait     bool
	TotalPS  int64   // critical-path picoseconds attributed to this stage
	MeanFrac float64 // TotalPS / sum of all requests' E2E
	P99Frac  float64 // this stage's share of the p99 exemplar's latency
	P999Frac float64 // this stage's share of the p999 exemplar's latency
	MeanSec  float64 // TotalPS / requests, in seconds
}

// Analysis is the result of reconstructing and sweeping every complete
// request DAG in an event window.
type Analysis struct {
	// Paths holds one critical path per request, sorted by (E2E, Req)
	// so percentile exemplars index deterministically.
	Paths []Path
	// Stages is the aggregate blame profile, sorted by TotalPS
	// descending (ties by stage label then wait flag).
	Stages []StageBlame
	// TotalPS is the sum of every path's E2E.
	TotalPS int64
	// P99 and P999 are exemplar paths at the respective percentile of
	// the E2E distribution (nil when Paths is empty).
	P99, P999 *Path

	// folded maps semicolon-joined stacks (root name down to the blamed
	// frame) to total critical-path picoseconds, for flamegraph export.
	folded map[string]int64
}

// span is one clamped, quantized stage span during the per-request sweep.
type span struct {
	label string
	start int64
	end   int64
	depth int
	wait  bool
}

// Analyze reconstructs request DAGs from the event window and extracts
// each one's critical path. Only completed request-scoped spans
// (Req != 0, Dur > 0) participate; requests without a root span (its
// End never fired — still in flight at the window edge) are skipped.
func Analyze(events []trace.Event) *Analysis {
	type group struct {
		root  *trace.Event
		spans []trace.Event
	}
	groups := make(map[uint64]*group)
	order := []uint64{}
	for i := range events {
		ev := &events[i]
		if ev.Req == 0 || ev.Counter || ev.Dur <= 0 {
			continue
		}
		g := groups[ev.Req]
		if g == nil {
			g = &group{}
			groups[ev.Req] = g
			order = append(order, ev.Req)
		}
		if ev.Kind == trace.KindRoot {
			if g.root == nil {
				g.root = ev
			}
			continue
		}
		g.spans = append(g.spans, *ev)
	}
	// Deterministic request order regardless of map iteration: requests
	// are visited in first-appearance order, which record order fixes.
	a := &Analysis{folded: make(map[string]int64)}
	for _, req := range order {
		g := groups[req]
		if g.root == nil {
			continue
		}
		p, stacks := analyzeOne(req, g.root, g.spans)
		if p == nil {
			continue
		}
		a.Paths = append(a.Paths, *p)
		a.TotalPS += p.E2E
		for stack, dur := range stacks {
			a.folded[stack] += dur
		}
	}
	a.finish()
	return a
}

// analyzeOne sweeps one request's spans into a critical path. It
// returns the path plus per-stack picoseconds for folded export.
func analyzeOne(req uint64, root *trace.Event, stageSpans []trace.Event) (*Path, map[string]int64) {
	e2e := ps(root.Dur)
	if e2e <= 0 {
		return nil, nil
	}
	rootLabel := root.Component + "/" + root.Name

	// Parent edges by label; depth memoized below. Spans sharing a
	// label (per-hop chain waits) share an edge, which is consistent by
	// construction: a label's parent is fixed at the call site.
	parent := make(map[string]string)
	for i := range stageSpans {
		ev := &stageSpans[i]
		label := ev.Component + "/" + ev.Name
		if ev.PComp == "" && ev.PName == "" {
			parent[label] = rootLabel
		} else {
			parent[label] = ev.PComp + "/" + ev.PName
		}
	}
	var depthOf func(label string, seen int) int
	depths := make(map[string]int)
	depthOf = func(label string, seen int) int {
		if label == rootLabel {
			return 0
		}
		if d, ok := depths[label]; ok {
			return d
		}
		p, ok := parent[label]
		if !ok || seen > len(parent) { // unknown parent or a cycle: hang off the root
			depths[label] = 1
			return 1
		}
		d := 1 + depthOf(p, seen+1)
		depths[label] = d
		return d
	}

	// Clamp each stage span to the root interval and quantize.
	spans := make([]span, 0, len(stageSpans))
	for i := range stageSpans {
		ev := &stageSpans[i]
		s := ps(ev.At - root.At)
		e := ps(ev.At + ev.Dur - root.At)
		if s < 0 {
			s = 0
		}
		if e > e2e {
			e = e2e
		}
		if e <= s {
			continue
		}
		label := ev.Component + "/" + ev.Name
		spans = append(spans, span{
			label: label, start: s, end: e,
			depth: depthOf(label, 0),
			wait:  ev.Kind == trace.KindWait,
		})
	}

	// Elementary interval boundaries: every span edge plus the root's.
	bounds := make([]int64, 0, 2*len(spans)+2)
	bounds = append(bounds, 0, e2e)
	for _, sp := range spans {
		bounds = append(bounds, sp.start, sp.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}

	p := &Path{Req: req, Root: rootLabel, RootName: root.Name, Start: root.At, E2E: e2e}
	stacks := make(map[string]int64)
	for i := 0; i+1 < len(uniq); i++ {
		lo, hi := uniq[i], uniq[i+1]
		// Blame the deepest span covering this interval; ties break on
		// (label, wait) so the sweep is deterministic.
		best := -1
		for j := range spans {
			sp := &spans[j]
			if sp.start > lo || sp.end < hi {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			b := &spans[best]
			if sp.depth > b.depth ||
				(sp.depth == b.depth && (sp.label < b.label ||
					(sp.label == b.label && sp.wait && !b.wait))) {
				best = j
			}
		}
		// Root self-time is labeled with the root's bare name ("write",
		// "read", a tail-keep reason) so it aggregates across clients.
		seg := Segment{Stage: root.Name, Start: lo, Dur: hi - lo}
		stack := p.RootName
		if best >= 0 {
			sp := &spans[best]
			seg.Stage, seg.Wait = sp.label, sp.wait
			stack = foldedStack(p.RootName, rootLabel, sp.label, parent)
		}
		n := len(p.Segments)
		if n > 0 && p.Segments[n-1].Stage == seg.Stage && p.Segments[n-1].Wait == seg.Wait {
			p.Segments[n-1].Dur += seg.Dur
		} else {
			p.Segments = append(p.Segments, seg)
		}
		stacks[stack] += seg.Dur
	}
	return p, stacks
}

// foldedStack joins the blamed span's ancestry root-first with ';',
// the folded-stack separator flamegraph.pl and speedscope expect. The
// root frame is the root span's bare name so stacks from different
// clients collapse together.
func foldedStack(rootName, rootLabel, label string, parent map[string]string) string {
	frames := []string{label}
	for hops := 0; hops <= len(parent); hops++ {
		pl, ok := parent[label]
		if !ok || pl == rootLabel {
			break
		}
		frames = append(frames, pl)
		label = pl
	}
	frames = append(frames, rootName)
	for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
		frames[i], frames[j] = frames[j], frames[i]
	}
	return strings.Join(frames, ";")
}

// finish sorts paths, picks percentile exemplars, and builds the
// aggregate stage profile.
func (a *Analysis) finish() {
	sort.Slice(a.Paths, func(i, j int) bool {
		if a.Paths[i].E2E != a.Paths[j].E2E {
			return a.Paths[i].E2E < a.Paths[j].E2E
		}
		return a.Paths[i].Req < a.Paths[j].Req
	})
	n := len(a.Paths)
	if n > 0 {
		a.P99 = &a.Paths[(n-1)*99/100]
		a.P999 = &a.Paths[(n-1)*999/1000]
	}

	totals := make(map[stageKey]int64)
	for i := range a.Paths {
		for _, seg := range a.Paths[i].Segments {
			totals[stageKey{seg.Stage, seg.Wait}] += seg.Dur
		}
	}
	keys := make([]stageKey, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ti, tj := totals[keys[i]], totals[keys[j]]
		if ti != tj {
			return ti > tj
		}
		if keys[i].Stage != keys[j].Stage {
			return keys[i].Stage < keys[j].Stage
		}
		return !keys[i].Wait && keys[j].Wait
	})
	for _, k := range keys {
		sb := StageBlame{Stage: k.Stage, Wait: k.Wait, TotalPS: totals[k]}
		if a.TotalPS > 0 {
			sb.MeanFrac = float64(sb.TotalPS) / float64(a.TotalPS)
		}
		if n > 0 {
			sb.MeanSec = float64(sb.TotalPS) / float64(n) * 1e-12
		}
		sb.P99Frac = pathFrac(a.P99, k)
		sb.P999Frac = pathFrac(a.P999, k)
		a.Stages = append(a.Stages, sb)
	}
}

// pathFrac returns the fraction of one path's latency blamed on a stage.
func pathFrac(p *Path, k stageKey) float64 {
	if p == nil || p.E2E <= 0 {
		return 0
	}
	var sum int64
	for _, seg := range p.Segments {
		if seg.Stage == k.Stage && seg.Wait == k.Wait {
			sum += seg.Dur
		}
	}
	return float64(sum) / float64(p.E2E)
}

// Folded accumulates folded stacks across analyses — typically every
// cluster run of one harness invocation — so one flamegraph can span a
// whole sweep. A non-empty group becomes the leading frame of each
// stack, keeping designs/protocols separable in the merged graph.
type Folded struct {
	stacks map[string]int64
}

// NewFolded creates an empty accumulator.
func NewFolded() *Folded { return &Folded{stacks: make(map[string]int64)} }

// Add merges one analysis's stacks, prefixed by group when non-empty.
// Nil receivers accept and drop, so call sites need no guards.
func (f *Folded) Add(group string, a *Analysis) {
	if f == nil || a == nil {
		return
	}
	for stack, dur := range a.folded {
		if group != "" {
			stack = group + ";" + stack
		}
		f.stacks[stack] += dur
	}
}

// Write emits the accumulated stacks in folded format (sorted, weights
// in nanoseconds), like Analysis.WriteFolded.
func (f *Folded) Write(w io.Writer) error {
	if f == nil {
		return nil
	}
	return writeFoldedMap(w, f.stacks)
}

// WriteFolded emits the aggregate blame profile in folded-stack format
// (one "frame;frame;frame weight" line per stack, sorted), directly
// consumable by flamegraph.pl or speedscope. Weights are nanoseconds
// of critical-path time, rounded half-up so the output is integral.
func (a *Analysis) WriteFolded(w io.Writer) error {
	return writeFoldedMap(w, a.folded)
}

// writeFoldedMap renders a stack→picoseconds map as sorted folded lines.
func writeFoldedMap(w io.Writer, m map[string]int64) error {
	stacks := make([]string, 0, len(m))
	for s := range m {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	for _, s := range stacks {
		ns := (m[s] + 500) / 1000
		if ns <= 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", s, ns); err != nil {
			return err
		}
	}
	return nil
}
