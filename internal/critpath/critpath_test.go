package critpath

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/trace"
)

// spanEv builds a completed request-scoped span event.
func spanEv(at, dur float64, comp, name string, req uint64, pcomp, pname string, kind trace.Kind) trace.Event {
	return trace.Event{At: at, Dur: dur, Component: comp, Name: name,
		ID: req, Req: req, PComp: pcomp, PName: pname, Kind: kind}
}

func rootEv(at, dur float64, comp, name string, req uint64) trace.Event {
	return trace.Event{At: at, Dur: dur, Component: comp, Name: name,
		ID: req, Req: req, Kind: trace.KindRoot}
}

func TestSingleRequestTilesExactly(t *testing.T) {
	// root [0,100us]; net/request [0,10us]; mt/compress [10,40us] with
	// engine child [20,35us]; mt/replicate [40,90us] with wait child
	// [50,85us]; net/reply [90,100us]. No gaps.
	us := 1e-6
	evs := []trace.Event{
		rootEv(0, 100*us, "client0", "write", 7),
		spanEv(0, 10*us, "net", "request", 7, "", "", trace.KindService),
		spanEv(10*us, 30*us, "mt", "compress", 7, "", "", trace.KindService),
		spanEv(20*us, 15*us, "mt", "compress.engine", 7, "mt", "compress", trace.KindService),
		spanEv(40*us, 50*us, "mt", "replicate", 7, "", "", trace.KindService),
		spanEv(50*us, 35*us, "mt", "replicate.wait", 7, "mt", "replicate", trace.KindWait),
		spanEv(90*us, 10*us, "net", "reply", 7, "", "", trace.KindService),
	}
	a := Analyze(evs)
	if len(a.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(a.Paths))
	}
	p := a.Paths[0]
	var sum int64
	for _, seg := range p.Segments {
		sum += seg.Dur
	}
	if sum != p.E2E {
		t.Fatalf("segments sum to %d ps, want exactly %d", sum, p.E2E)
	}
	// The deepest span wins each interval: the engine child shadows
	// compress for [20,35], the straggler wait shadows replicate.
	want := []Segment{
		{Stage: "net/request", Dur: ps(10 * us)},
		{Stage: "mt/compress", Dur: ps(10 * us)},
		{Stage: "mt/compress.engine", Dur: ps(15 * us)},
		{Stage: "mt/compress", Dur: ps(5 * us)},
		{Stage: "mt/replicate", Dur: ps(10 * us)},
		{Stage: "mt/replicate.wait", Wait: true, Dur: ps(35 * us)},
		{Stage: "mt/replicate", Dur: ps(5 * us)},
		{Stage: "net/reply", Dur: ps(10 * us)},
	}
	if len(p.Segments) != len(want) {
		t.Fatalf("segments = %+v, want %d segments", p.Segments, len(want))
	}
	for i, seg := range p.Segments {
		if seg.Stage != want[i].Stage || seg.Wait != want[i].Wait || seg.Dur != want[i].Dur {
			t.Errorf("segment %d = %+v, want %+v", i, seg, want[i])
		}
	}
}

func TestGapsBlameRootSelfTime(t *testing.T) {
	us := 1e-6
	evs := []trace.Event{
		rootEv(0, 30*us, "client2", "read", 9),
		spanEv(5*us, 10*us, "mt", "fetch", 9, "", "", trace.KindService),
	}
	a := Analyze(evs)
	p := a.Paths[0]
	want := []Segment{
		{Stage: "read", Dur: ps(5 * us)},
		{Stage: "mt/fetch", Dur: ps(10 * us)},
		{Stage: "read", Dur: ps(15 * us)},
	}
	if len(p.Segments) != len(want) {
		t.Fatalf("segments = %+v", p.Segments)
	}
	for i, seg := range p.Segments {
		if seg.Stage != want[i].Stage || seg.Dur != want[i].Dur {
			t.Errorf("segment %d = %+v, want %+v", i, seg, want[i])
		}
	}
}

func TestSpansClampedToRootInterval(t *testing.T) {
	us := 1e-6
	evs := []trace.Event{
		rootEv(10*us, 20*us, "client0", "write", 3),
		// Starts before the root, ends after: clamped to [10,30].
		spanEv(5*us, 40*us, "mt", "replicate", 3, "", "", trace.KindService),
	}
	a := Analyze(evs)
	p := a.Paths[0]
	if len(p.Segments) != 1 || p.Segments[0].Dur != p.E2E {
		t.Fatalf("segments = %+v, want one clamped segment of %d ps", p.Segments, p.E2E)
	}
}

func TestTailKeepRootOnlyIsCompletePath(t *testing.T) {
	// A KeepTail record is a lone root span: the path is one segment of
	// pure root self-time labeled with the keep reason.
	evs := []trace.Event{rootEv(1e-3, 2e-3, "tail", "error", 42)}
	a := Analyze(evs)
	if len(a.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(a.Paths))
	}
	p := a.Paths[0]
	if len(p.Segments) != 1 || p.Segments[0].Stage != "error" || p.Segments[0].Dur != p.E2E {
		t.Fatalf("segments = %+v", p.Segments)
	}
}

func TestRootlessRequestSkipped(t *testing.T) {
	evs := []trace.Event{
		spanEv(0, 1e-6, "mt", "parse", 5, "", "", trace.KindService),
	}
	if a := Analyze(evs); len(a.Paths) != 0 {
		t.Fatalf("paths = %d, want 0 (no root span)", len(a.Paths))
	}
}

func TestPercentileExemplarsAndFractions(t *testing.T) {
	us := 1e-6
	var evs []trace.Event
	// 1000 requests with latency (i+1) us; the slowest spends 90% of
	// its time in a straggler wait.
	for i := 0; i < 1000; i++ {
		req := uint64(i + 1)
		lat := float64(i+1) * us
		evs = append(evs, rootEv(0, lat, "client0", "write", req))
		if i == 999 {
			evs = append(evs, spanEv(0, 0.9*lat, "mt", "replicate.wait", req, "", "", trace.KindWait))
		}
	}
	a := Analyze(evs)
	if n := len(a.Paths); n != 1000 {
		t.Fatalf("paths = %d", n)
	}
	// (n-1)*999/1000 = 998 → req 999 in E2E-sorted order.
	if a.P999 == nil || a.P999.Req != 999 {
		t.Fatalf("p999 exemplar = %+v", a.P999)
	}
	if a.P99 == nil || a.P99.Req != 990 {
		t.Fatalf("p99 exemplar = %+v", a.P99)
	}
	var waitBlame *StageBlame
	for i := range a.Stages {
		if a.Stages[i].Stage == "mt/replicate.wait" {
			waitBlame = &a.Stages[i]
		}
	}
	if waitBlame == nil {
		t.Fatal("no replicate.wait blame entry")
	}
	if waitBlame.P999Frac != 0 {
		// The p999 exemplar (req 999) has no wait span; only req 1000 does.
		t.Errorf("p999 frac = %g, want 0", waitBlame.P999Frac)
	}
	if !waitBlame.Wait {
		t.Error("replicate.wait not classified as wait time")
	}
	if waitBlame.MeanFrac <= 0 {
		t.Error("mean frac should be positive")
	}
}

func TestClusterTotalTilesAcrossRequests(t *testing.T) {
	us := 1e-6
	var evs []trace.Event
	for i := 0; i < 64; i++ {
		req := uint64(i + 1)
		at := float64(i) * 10 * us
		lat := float64(i%7+1) * us
		evs = append(evs, rootEv(at, lat, "client0", "write", req))
		evs = append(evs, spanEv(at, lat/2, "mt", "compress", req, "", "", trace.KindService))
	}
	a := Analyze(evs)
	var segSum, e2eSum int64
	for _, p := range a.Paths {
		for _, seg := range p.Segments {
			segSum += seg.Dur
		}
		e2eSum += p.E2E
	}
	if segSum != e2eSum || e2eSum != a.TotalPS {
		t.Fatalf("segment sum %d, e2e sum %d, total %d — must all be equal", segSum, e2eSum, a.TotalPS)
	}
	var meanSum float64
	for _, sb := range a.Stages {
		meanSum += sb.MeanFrac
	}
	if math.Abs(meanSum-1) > 1e-12 {
		t.Fatalf("mean fractions sum to %g, want 1", meanSum)
	}
}

func TestWriteFoldedStacks(t *testing.T) {
	us := 1e-6
	evs := []trace.Event{
		rootEv(0, 100*us, "client0", "write", 1),
		spanEv(0, 40*us, "mt", "compress", 1, "", "", trace.KindService),
		spanEv(10*us, 20*us, "mt", "compress.engine", 1, "mt", "compress", trace.KindService),
	}
	a := Analyze(evs)
	var buf bytes.Buffer
	if err := a.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"write 60000",
		"write;mt/compress 20000",
		"write;mt/compress;mt/compress.engine 20000",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("folded output missing %q:\n%s", w, out)
		}
	}
}

// render flattens an analysis into a byte string covering the stage
// profile, exemplars, and folded stacks.
func render(t *testing.T, a *Analysis) string {
	t.Helper()
	var buf bytes.Buffer
	for _, sb := range a.Stages {
		fmt.Fprintf(&buf, "%s wait=%t total=%d mean=%.17g p99=%.17g p999=%.17g\n",
			sb.Stage, sb.Wait, sb.TotalPS, sb.MeanFrac, sb.P99Frac, sb.P999Frac)
	}
	if a.P999 != nil {
		fmt.Fprintf(&buf, "p999 req=%d e2e=%d segs=%d\n", a.P999.Req, a.P999.E2E, len(a.P999.Segments))
	}
	if err := a.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestAnalyzeDeterministicAcrossRuns(t *testing.T) {
	us := 1e-6
	build := func() []trace.Event {
		var evs []trace.Event
		for i := 0; i < 128; i++ {
			req := uint64(i + 1)
			at := float64(i) * 3 * us
			evs = append(evs, rootEv(at, float64(i%11+1)*us, "client0", "write", req))
			evs = append(evs, spanEv(at, float64(i%5+1)*us/2, "mt", "replicate", req, "", "", trace.KindService))
			if i%3 == 0 {
				evs = append(evs, spanEv(at, float64(i%5+1)*us/4, "mt", "replicate.wait", req, "mt", "replicate", trace.KindWait))
			}
		}
		return evs
	}
	var out [2]string
	for r := 0; r < 2; r++ {
		out[r] = render(t, Analyze(build()))
	}
	if out[0] != out[1] {
		t.Fatalf("analysis not byte-identical across runs:\n%s\nvs\n%s", out[0], out[1])
	}
}
