package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewLatencyHistogram()
	vals := []float64{1e-6, 2e-6, 3e-6, 4e-6}
	for _, v := range vals {
		h.Record(v)
	}
	if got, want := h.Mean(), 2.5e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 4e-6 || h.Min() != 1e-6 {
		t.Fatalf("extremes: min=%g max=%g", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	var raw []float64
	// Deterministic skewed distribution across several decades.
	x := uint64(12345)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		u := float64(x>>11) / float64(1<<53)
		v := 1e-6 * math.Pow(1000, u) // log-uniform on [1us, 1ms]
		raw = append(raw, v)
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := ExactQuantile(raw, q)
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Fatalf("q=%g: histogram %g vs exact %g (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(1e-6, 1e-3, 30)
	h.Record(1e-9) // under
	h.Record(1.0)  // over
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(0.01) != 1e-9 {
		t.Fatalf("low quantile should clamp to min seen, got %g", h.Quantile(0.01))
	}
	if h.Quantile(0.9999) != 1.0 {
		t.Fatalf("high quantile should clamp to max seen, got %g", h.Quantile(0.9999))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(float64(i) * 1e-6)
		b.Record(float64(i) * 2e-6)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if math.Abs(a.Max()-200e-6) > 1e-12 {
		t.Fatalf("merged max = %g", a.Max())
	}
}

func TestHistogramMergeGeometryMismatch(t *testing.T) {
	a := NewHistogram(1e-6, 1e-3, 30)
	b := NewHistogram(1e-6, 1e-2, 30)
	defer func() {
		if recover() == nil {
			t.Fatal("geometry mismatch merge did not panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(1e-3)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear samples")
	}
	h.Record(2e-3)
	if h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint16) bool {
		h := NewLatencyHistogram()
		x := uint64(seed) + 1
		for i := 0; i < 500; i++ {
			x = x*2862933555777941757 + 3037000493
			v := 1e-7 + float64(x%1000000)*1e-9
			h.Record(v)
		}
		prev := 0.0
		for q := 0.01; q <= 1.0; q += 0.01 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterWindows(t *testing.T) {
	m := NewMeter(0)
	m.Add(100)
	if r := m.MarkWindow(2); r != 50 {
		t.Fatalf("window rate = %g, want 50", r)
	}
	m.Add(30)
	if r := m.RateSince(3); r != 30 {
		t.Fatalf("RateSince = %g, want 30", r)
	}
	if r := m.MarkWindow(3); r != 30 {
		t.Fatalf("second window = %g, want 30", r)
	}
	if m.Total() != 130 {
		t.Fatalf("total = %g", m.Total())
	}
	if r := m.MarkWindow(3); r != 0 {
		t.Fatalf("zero-width window = %g, want 0", r)
	}
}

func TestMeterLifetimeRate(t *testing.T) {
	m := NewMeter(1) // opened at t=1
	m.Add(100)
	m.MarkWindow(2) // closing windows must not affect the lifetime rate
	m.Add(100)
	if r := m.LifetimeRate(5); r != 50 {
		t.Fatalf("LifetimeRate(5) = %g, want 200/(5-1) = 50", r)
	}
	if r := m.LifetimeRate(1); r != 0 {
		t.Fatalf("LifetimeRate at creation time = %g, want 0", r)
	}
	if r := m.LifetimeRate(0.5); r != 0 {
		t.Fatalf("LifetimeRate before creation = %g, want 0", r)
	}
}

// TestQuantileUnderMass pins Quantile when the target quantile falls
// inside the below-range (under) mass: every such quantile reports the
// exact tracked minimum, which is also what ExactQuantile returns only
// for the smallest sample — so the histogram's answer lower-bounds the
// exact one but never exceeds the under-range ceiling.
func TestQuantileUnderMass(t *testing.T) {
	h := NewLatencyHistogram() // covers [100ns, 10s)
	samples := []float64{10e-9, 40e-9, 80e-9, 1e-6, 2e-6, 3e-6, 4e-6, 5e-6, 6e-6, 7e-6}
	for _, v := range samples {
		h.Record(v)
	}
	// q=0.1..0.3 target the three under-range samples.
	for _, q := range []float64{0.05, 0.1, 0.2, 0.3} {
		got := h.Quantile(q)
		if got != 10e-9 {
			t.Fatalf("Quantile(%g) = %g, want tracked min 10e-9 while inside under mass", q, got)
		}
		exact := ExactQuantile(samples, q)
		if got > exact {
			t.Fatalf("Quantile(%g) = %g exceeds exact %g", q, got, exact)
		}
		if exact >= 100e-9 {
			t.Fatalf("test setup wrong: exact quantile %g left the under mass", exact)
		}
	}
	// The first in-range quantile must leave the floor and agree with
	// the exact value to bucket resolution (~3.8% at 60/decade).
	got := h.Quantile(0.4)
	exact := ExactQuantile(samples, 0.4)
	if rel := math.Abs(got-exact) / exact; rel > 0.05 {
		t.Fatalf("Quantile(0.4) = %g vs exact %g (rel err %g)", got, exact, rel)
	}
}

// TestQuantileOverMass pins Quantile when the target falls inside the
// above-range (over) mass: it reports the exact tracked maximum, which
// upper-bounds the exact quantile.
func TestQuantileOverMass(t *testing.T) {
	h := NewHistogram(100e-9, 1e-3, 60) // deliberately narrow: [100ns, 1ms)
	samples := []float64{1e-6, 2e-6, 3e-6, 4e-6, 5e-6, 6e-6, 7e-6, 2e-3, 3e-3, 5e-3}
	for _, v := range samples {
		h.Record(v)
	}
	for _, q := range []float64{0.75, 0.8, 0.9, 0.99} {
		got := h.Quantile(q)
		if got != 5e-3 {
			t.Fatalf("Quantile(%g) = %g, want tracked max 5e-3 while inside over mass", q, got)
		}
		exact := ExactQuantile(samples, q)
		if got < exact {
			t.Fatalf("Quantile(%g) = %g below exact %g", q, got, exact)
		}
	}
	// A quantile below the over mass must stay in-range and accurate.
	got := h.Quantile(0.5)
	exact := ExactQuantile(samples, 0.5)
	if rel := math.Abs(got-exact) / exact; rel > 0.05 {
		t.Fatalf("Quantile(0.5) = %g vs exact %g (rel err %g)", got, exact, rel)
	}
}

// TestQuantileNearFloor mirrors the breakdown-table concern: stages
// whose durations sit at or below the 100 ns histogram floor must not
// silently mis-report — the mean stays exact even when every sample is
// under-range, and quantiles clamp to the true extremes.
func TestQuantileNearFloor(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		h.Record(50e-9) // completion bookkeeping, sub-floor
	}
	if m := h.Mean(); math.Abs(m-50e-9) > 1e-15 {
		t.Fatalf("mean of sub-floor samples = %g, want 50e-9 (float-sum exact)", m)
	}
	if got := h.Quantile(0.99); got != 50e-9 {
		t.Fatalf("p99 of sub-floor samples = %g, want 50e-9", got)
	}
	if got, exact := h.Quantile(0.5), ExactQuantile([]float64{50e-9}, 0.5); got != exact {
		t.Fatalf("p50 = %g, exact = %g", got, exact)
	}
}

func TestRateConversions(t *testing.T) {
	if g := BytesPerSecToGbps(12.5e9 / 100 * 100); math.Abs(g-100) > 1e-9 {
		t.Fatalf("12.5 GB/s = %g Gbps, want 100", g)
	}
	if b := GbpsToBytesPerSec(100); math.Abs(b-12.5e9) > 1e-3 {
		t.Fatalf("100 Gbps = %g B/s, want 12.5e9", b)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FormatDuration(0), "0"},
		{FormatDuration(500e-9), "500 ns"},
		{FormatDuration(1.5e-6), "1.50 us"},
		{FormatDuration(2.5e-3), "2.500 ms"},
		{FormatDuration(1.25), "1.250 s"},
		{FormatBytes(512), "512 B"},
		{FormatBytes(2048), "2.00 KiB"},
		{FormatBytes(3 * 1024 * 1024), "3.00 MiB"},
		{FormatBytes(5 * 1024 * 1024 * 1024), "5.00 GiB"},
		{FormatGbps(12.5e9), "100.00 Gbps"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("format: got %q, want %q", c.got, c.want)
		}
	}
}

func TestSummaryString(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		h.Record(1e-6)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("summary count = %d", s.Count)
	}
	str := s.String()
	if !strings.Contains(str, "n=100") || !strings.Contains(str, "avg=") {
		t.Fatalf("summary string %q", str)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", "x")
	tb.AddNote("hello %d", 7)
	out := tb.String()
	for _, want := range []string{"== Demo ==", "name", "alpha", "1.5", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("unexpected table shape:\n%s", out)
	}
}

func TestExactQuantile(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	if ExactQuantile(s, 0) != 1 || ExactQuantile(s, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if ExactQuantile(s, 0.5) != 3 {
		t.Fatalf("median = %g", ExactQuantile(s, 0.5))
	}
	if ExactQuantile(nil, 0.5) != 0 {
		t.Fatal("empty slice quantile should be 0")
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatal("ExactQuantile mutated its input")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", `with"quote`)
	tb.AddRow("with,comma", "v")
	got := tb.CSV()
	want := "a,b\nplain,\"with\"\"quote\"\n\"with,comma\",v\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestMeterZeroWidthWindows(t *testing.T) {
	m := NewMeter(1.0)
	m.Add(100)
	// Two marks at the same sim instant: the second must report 0 (not
	// Inf/NaN) and must NOT swallow the accumulated amount.
	if r := m.MarkWindow(2.0); r != 100 {
		t.Fatalf("first window rate = %g, want 100", r)
	}
	m.Add(50)
	if r := m.MarkWindow(2.0); r != 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("zero-width window rate = %g, want 0", r)
	}
	// The 50 units stayed in the open window and land in the next one.
	if r := m.MarkWindow(3.0); r != 50 {
		t.Fatalf("post-zero-width window rate = %g, want 50", r)
	}
	// Backwards marks are no-ops too.
	if r := m.MarkWindow(2.5); r != 0 {
		t.Fatalf("backwards window rate = %g, want 0", r)
	}
	m.Add(10)
	if r := m.MarkWindow(4.0); r != 10 {
		t.Fatalf("window after backwards mark = %g, want 10 (mark must not move back)", r)
	}

	// RateSince / LifetimeRate at the mark/creation instant.
	m2 := NewMeter(5.0)
	m2.Add(42)
	for _, r := range []float64{m2.RateSince(5.0), m2.RateSince(4.0), m2.LifetimeRate(5.0)} {
		if r != 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("zero-width query = %g, want 0", r)
		}
	}
	if r := m2.LifetimeRate(7.0); r != 21 {
		t.Fatalf("lifetime rate = %g, want 21", r)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewLatencyHistogram()
	var samples []float64
	// Deterministic spread across several decades plus out-of-range mass.
	for i := 1; i <= 500; i++ {
		v := 100e-9 * math.Pow(10, float64(i%7)) * (1 + float64(i)/500)
		h.Record(v)
		samples = append(samples, v)
	}
	h.Record(1e-9) // under range
	h.Record(100)  // over range
	samples = append(samples, 1e-9, 100)

	bs := h.Buckets()
	if len(bs) < 3 {
		t.Fatalf("too few buckets: %d", len(bs))
	}
	// Invariants: ascending bounds, monotone counts, first bound = min,
	// last = +Inf carrying the total count.
	for i := 1; i < len(bs); i++ {
		if !(bs[i].UpperBound > bs[i-1].UpperBound) {
			t.Fatalf("bucket bounds not ascending at %d: %g <= %g", i, bs[i].UpperBound, bs[i-1].UpperBound)
		}
		if bs[i].Count < bs[i-1].Count {
			t.Fatalf("cumulative counts not monotone at %d", i)
		}
	}
	if bs[0].UpperBound != 100e-9 {
		t.Fatalf("first bound = %g, want histogram min", bs[0].UpperBound)
	}
	if bs[0].Count != 1 {
		t.Fatalf("under-range count = %d, want 1", bs[0].Count)
	}
	if !math.IsInf(bs[len(bs)-1].UpperBound, 1) || bs[len(bs)-1].Count != h.Count() {
		t.Fatalf("final bucket must be +Inf with total count")
	}

	// Pin the boundaries against ExactQuantile: for each quantile, the
	// first bucket whose cumulative count reaches ceil(q*n) must have
	// the exact quantile at or below its upper bound, and above the
	// previous bound (the same bracketing Quantile() relies on).
	n := float64(h.Count())
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		target := uint64(math.Ceil(q * n))
		exact := ExactQuantile(samples, q)
		for i, b := range bs {
			if b.Count >= target {
				if exact > b.UpperBound {
					t.Fatalf("q=%g: exact %g above bucket bound %g", q, exact, b.UpperBound)
				}
				if i > 0 && exact <= bs[i-1].UpperBound && bs[i-1].Count < target {
					t.Fatalf("q=%g: exact %g below previous bound %g", q, exact, bs[i-1].UpperBound)
				}
				break
			}
		}
	}

	// Sum matches what was recorded.
	want := 0.0
	for _, v := range samples {
		want += v
	}
	if diff := math.Abs(h.Sum() - want); diff > 1e-9*want {
		t.Fatalf("Sum = %g, want %g", h.Sum(), want)
	}
}
