// Package metrics provides the measurement primitives used by the
// SmartDS experiments: log-bucketed latency histograms with percentile
// queries, windowed bandwidth meters, and formatted result tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed histogram tuned for latency recording. It
// covers [min, max) with `perDecade` buckets per decade, giving a
// relative quantile error of about 10^(1/perDecade)-1 (≈3.8% at 60/decade)
// while using constant memory regardless of sample count.
type Histogram struct {
	min, max  float64
	perDecade int
	buckets   []uint64
	under     uint64
	over      uint64
	count     uint64
	sum       float64
	maxSeen   float64
	minSeen   float64
}

// NewHistogram creates a histogram covering [min, max) seconds with the
// given bucket resolution per decade.
func NewHistogram(min, max float64, perDecade int) *Histogram {
	if min <= 0 || max <= min || perDecade <= 0 {
		panic("metrics: invalid histogram bounds")
	}
	decades := math.Log10(max / min)
	n := int(math.Ceil(decades*float64(perDecade))) + 1
	return &Histogram{
		min:       min,
		max:       max,
		perDecade: perDecade,
		buckets:   make([]uint64, n),
		minSeen:   math.Inf(1),
	}
}

// NewLatencyHistogram covers 100 ns .. 10 s, which spans every latency
// this repository produces, at 60 buckets/decade.
func NewLatencyHistogram() *Histogram { return NewHistogram(100e-9, 10, 60) }

func (h *Histogram) index(v float64) int {
	return int(math.Log10(v/h.min) * float64(h.perDecade))
}

// bucketValue returns the representative (geometric-mid) value of bucket i.
func (h *Histogram) bucketValue(i int) float64 {
	lo := h.min * math.Pow(10, float64(i)/float64(h.perDecade))
	hi := h.min * math.Pow(10, float64(i+1)/float64(h.perDecade))
	return math.Sqrt(lo * hi)
}

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	h.count++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.minSeen {
		h.minSeen = v
	}
	switch {
	case v < h.min:
		h.under++
	case v >= h.max:
		h.over++
	default:
		i := h.index(v)
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of all samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.maxSeen
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.minSeen
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Bucket is one cumulative histogram bucket: Count samples fell at or
// below UpperBound. The OpenMetrics exporter maps it onto the
// `_bucket{le=...}` encoding.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// bucketUpper returns the exclusive upper boundary of bucket i.
func (h *Histogram) bucketUpper(i int) float64 {
	return h.min * math.Pow(10, float64(i+1)/float64(h.perDecade))
}

// Buckets returns the cumulative bucket view in ascending boundary
// order. The first bucket's boundary is the histogram minimum (it
// carries the under-range count), the last is +Inf (it carries the
// total count, including over-range samples) — exactly the invariants
// the OpenMetrics histogram encoding requires. Counts are monotone
// non-decreasing.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.buckets)+2)
	cum := h.under
	out = append(out, Bucket{UpperBound: h.min, Count: cum})
	for i, c := range h.buckets {
		cum += c
		out = append(out, Bucket{UpperBound: h.bucketUpper(i), Count: cum})
	}
	out = append(out, Bucket{UpperBound: math.Inf(1), Count: h.count})
	return out
}

// UpperBoundFor returns the boundary of the cumulative bucket a sample
// of value v lands in, mirroring Record's bucket selection: under-range
// samples map to the histogram minimum, over-range to +Inf. Exemplar
// stores key on it so an exemplar always annotates the exact `le`
// boundary its sample incremented.
func (h *Histogram) UpperBoundFor(v float64) float64 {
	switch {
	case v < h.min:
		return h.min
	case v >= h.max:
		return math.Inf(1)
	default:
		i := h.index(v)
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		return h.bucketUpper(i)
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) with the histogram's
// bucket resolution. Out-of-range samples clamp to the tracked extremes.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.minSeen
	}
	if q >= 1 {
		return h.maxSeen
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return h.minSeen
	}
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return h.bucketValue(i)
		}
	}
	return h.maxSeen
}

// P50, P99 and P999 are the percentiles the paper reports.
func (h *Histogram) P50() float64  { return h.Quantile(0.50) }
func (h *Histogram) P99() float64  { return h.Quantile(0.99) }
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Merge adds all samples of other into h. The histograms must share the
// same geometry.
func (h *Histogram) Merge(other *Histogram) {
	if h.min != other.min || h.max != other.max || h.perDecade != other.perDecade { //detcheck:floateq geometry fields are set once from constants, never computed
		panic("metrics: merging histograms with different geometry")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.count += other.count
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	if other.minSeen < h.minSeen {
		h.minSeen = other.minSeen
	}
}

// Reset discards all samples, keeping the geometry.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.over, h.count = 0, 0, 0
	h.sum, h.maxSeen = 0, 0
	h.minSeen = math.Inf(1)
}

// Summary holds the standard latency digest the experiments print.
type Summary struct {
	Count uint64
	Mean  float64
	P50   float64
	P99   float64
	P999  float64
	Max   float64
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.P50(),
		P99:   h.P99(),
		P999:  h.P999(),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d avg=%s p50=%s p99=%s p999=%s max=%s",
		s.Count, FormatDuration(s.Mean), FormatDuration(s.P50),
		FormatDuration(s.P99), FormatDuration(s.P999), FormatDuration(s.Max))
}

// ExactQuantile computes a quantile from a raw sample slice (sorted copy;
// used by tests to validate the histogram approximation).
func ExactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}
