package metrics

import "fmt"

// Meter accumulates a monotone quantity (bytes, requests) and reports
// rates over explicit windows in virtual time.
type Meter struct {
	total   float64
	mark    float64
	markAt  float64
	started float64
}

// NewMeter creates a meter with its window opened at time t.
func NewMeter(t float64) *Meter {
	return &Meter{markAt: t, started: t}
}

// Add accumulates an amount.
func (m *Meter) Add(v float64) { m.total += v }

// Total returns the lifetime accumulated amount.
func (m *Meter) Total() float64 { return m.total }

// MarkWindow closes the current window at time t and opens a new one,
// returning the average rate (amount/second) over the closed window.
//
// A zero-width window — two marks at the same sim instant, which the
// telemetry sampler can legitimately produce when a sample tick
// coincides with a window boundary — returns 0 and leaves the window
// open (the mark does not move), so the accumulated amount is counted
// in the next real window instead of vanishing and no Inf/NaN rate can
// ever poison an exported series. Marks in the past are likewise
// no-ops: the window never moves backwards.
func (m *Meter) MarkWindow(t float64) float64 {
	dt := t - m.markAt
	if dt <= 0 {
		return 0
	}
	rate := (m.total - m.mark) / dt
	m.mark = m.total
	m.markAt = t
	return rate
}

// RateSince returns the average rate between time t and the last mark
// without closing the window. Zero-width (or backwards) windows report
// a rate of 0, never Inf/NaN.
func (m *Meter) RateSince(t float64) float64 {
	dt := t - m.markAt
	if dt <= 0 {
		return 0
	}
	return (m.total - m.mark) / dt
}

// LifetimeRate returns the average rate from the meter's creation to
// time t, independent of any window marks. Querying at (or before) the
// creation instant reports 0, never Inf/NaN.
func (m *Meter) LifetimeRate(t float64) float64 {
	dt := t - m.started
	if dt <= 0 {
		return 0
	}
	return m.total / dt
}

// Byte-rate formatting helpers. The paper reports Gbps (decimal giga),
// so 1 Gbps = 1e9 bits/s.

// BytesPerSecToGbps converts a byte rate into decimal gigabits/second.
func BytesPerSecToGbps(bps float64) float64 { return bps * 8 / 1e9 }

// GbpsToBytesPerSec converts decimal gigabits/second into bytes/second.
func GbpsToBytesPerSec(gbps float64) float64 { return gbps * 1e9 / 8 }

// FormatGbps renders a byte rate as Gbps text.
func FormatGbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f Gbps", BytesPerSecToGbps(bytesPerSec))
}

// FormatDuration renders seconds using the most readable unit.
func FormatDuration(sec float64) string {
	switch {
	case sec == 0: //detcheck:floateq exact zero prints "0"; any computed nonzero falls through to a unit
		return "0"
	case sec < 1e-6:
		return fmt.Sprintf("%.0f ns", sec*1e9)
	case sec < 1e-3:
		return fmt.Sprintf("%.2f us", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.3f ms", sec*1e3)
	default:
		return fmt.Sprintf("%.3f s", sec)
	}
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(b float64) string {
	const (
		kib = 1024
		mib = 1024 * kib
		gib = 1024 * mib
	)
	switch {
	case b >= gib:
		return fmt.Sprintf("%.2f GiB", b/gib)
	case b >= mib:
		return fmt.Sprintf("%.2f MiB", b/mib)
	case b >= kib:
		return fmt.Sprintf("%.2f KiB", b/kib)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
