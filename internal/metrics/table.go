package metrics

import (
	"fmt"
	"strings"
)

// Table renders experiment results as aligned text, the way the
// benchmark harness prints each reproduced paper table/figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas or quotes), one header row then data rows.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
