// Package evlog is the simulator's structured event log: a leveled,
// slog-style logger stamped with virtual time instead of wall-clock
// time. It replaces ad-hoc prints across cluster, middletier, and
// faults with one deterministic channel: attributes are ordered
// key=value pairs (never maps), values format through strconv, and the
// clock is the sim clock — so same-seed runs emit byte-identical logs
// and a log diff is a regression signal.
//
// A nil *Logger is valid and silently drops everything (the same
// contract as trace.Tracer), so call sites need no guards and the
// disabled path costs one nil check.
package evlog

import (
	"io"
	"strconv"
)

// Level classifies log events.
type Level int8

// The four levels, debug lowest.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "DEBUG"
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	case Error:
		return "ERROR"
	default:
		return "LEVEL(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel maps a flag string to a level (default Info).
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return Debug
	case "warn":
		return Warn
	case "error":
		return Error
	default:
		return Info
	}
}

// Logger writes structured events. Build with New, derive
// per-component children with With.
type Logger struct {
	w         io.Writer
	min       Level
	clock     func() float64
	component string
	events    *uint64
}

// New builds a logger writing events at or above min to w, stamped by
// clock (virtual seconds; required).
func New(w io.Writer, min Level, clock func() float64) *Logger {
	return &Logger{w: w, min: min, clock: clock, events: new(uint64)}
}

// With returns a child logger tagging every event with the component
// (e.g. "mt", "faults", "cluster"). Children share the sink and level.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.component = component
	return &child
}

// Enabled reports whether events at the level would be written — guard
// any attribute computation that allocates.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// Events reports how many events were written (shared across With
// children).
func (l *Logger) Events() uint64 {
	if l == nil || l.events == nil {
		return 0
	}
	return *l.events
}

// Log writes one event: a name plus ordered key-value attribute pairs
// (slog convention: "key", value, "key", value, ...). Values may be
// string, int, int64, uint64, float64, or bool; anything else renders
// as "?(unsupported)" rather than panicking mid-simulation.
func (l *Logger) Log(lv Level, event string, kvs ...interface{}) {
	if !l.Enabled(lv) {
		return
	}
	buf := make([]byte, 0, 96)
	buf = appendTimestamp(buf, l.clock())
	buf = append(buf, ' ')
	buf = append(buf, lv.String()...)
	for n := len(lv.String()); n < 5; n++ {
		buf = append(buf, ' ')
	}
	buf = append(buf, ' ')
	if l.component != "" {
		buf = append(buf, l.component...)
		buf = append(buf, ' ')
	}
	buf = append(buf, event...)
	for i := 0; i+1 < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = "?key"
		}
		buf = append(buf, ' ')
		buf = append(buf, key...)
		buf = append(buf, '=')
		buf = appendValue(buf, kvs[i+1])
	}
	if len(kvs)%2 != 0 {
		buf = append(buf, " ?dangling"...)
	}
	buf = append(buf, '\n')
	*l.events++
	l.w.Write(buf)
}

// Debugf-style helpers at each level.
func (l *Logger) Debug(event string, kvs ...interface{}) { l.Log(Debug, event, kvs...) }

// Info logs at Info level.
func (l *Logger) Info(event string, kvs ...interface{}) { l.Log(Info, event, kvs...) }

// Warn logs at Warn level.
func (l *Logger) Warn(event string, kvs ...interface{}) { l.Log(Warn, event, kvs...) }

// Error logs at Error level.
func (l *Logger) Error(event string, kvs ...interface{}) { l.Log(Error, event, kvs...) }

// appendTimestamp renders virtual seconds as fixed-width microsecond
// precision (order-preserving lexical sort within a run).
func appendTimestamp(buf []byte, sec float64) []byte {
	us := int64(sec*1e6 + 0.5)
	whole := us / 1e6
	frac := us % 1e6
	buf = strconv.AppendInt(buf, whole, 10)
	buf = append(buf, '.')
	digits := strconv.AppendInt(nil, frac+1e6, 10) // force 7 digits, drop lead
	buf = append(buf, digits[1:]...)
	return buf
}

// appendValue renders one attribute value deterministically.
func appendValue(buf []byte, v interface{}) []byte {
	switch x := v.(type) {
	case string:
		return appendString(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(buf, x)
	default:
		return append(buf, "?(unsupported)"...)
	}
}

// appendString quotes only when the value contains whitespace or '='
// (keeps the common case grep-friendly).
func appendString(buf []byte, s string) []byte {
	plain := s != ""
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '"', '=':
			plain = false
		}
	}
	if plain {
		return append(buf, s...)
	}
	return strconv.AppendQuote(buf, s)
}
