package evlog

import (
	"bytes"
	"strings"
	"testing"
)

func TestFormatting(t *testing.T) {
	var buf bytes.Buffer
	now := 0.0045
	l := New(&buf, Debug, func() float64 { return now })
	mt := l.With("mt")
	mt.Info("rebuild", "server", 2, "bytes", 4096.0, "ok", true)
	now = 0.0051
	l.Warn("degraded", "target", "ss1 down", "replicas", uint64(2))
	got := buf.String()
	want := "0.004500 INFO  mt rebuild server=2 bytes=4096 ok=true\n" +
		"0.005100 WARN  degraded target=\"ss1 down\" replicas=2\n"
	if got != want {
		t.Fatalf("log output:\n%q\nwant:\n%q", got, want)
	}
	if l.Events() != 2 || mt.Events() != 2 {
		t.Fatalf("event counts %d/%d, want shared 2", l.Events(), mt.Events())
	}
}

func TestLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Warn, func() float64 { return 0 })
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("got %d lines, want 2 (warn+error): %q", lines, buf.String())
	}
	if l.Enabled(Info) || !l.Enabled(Error) {
		t.Fatal("Enabled disagrees with the filter")
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Info("dropped", "k", 1)
	l.With("mt").Error("dropped")
	if l.Enabled(Error) {
		t.Fatal("nil logger claims enabled")
	}
	if l.Events() != 0 {
		t.Fatal("nil logger counted events")
	}
}

func TestMalformedAttrs(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug, func() float64 { return 0 })
	l.Info("odd", "key-without-value")
	l.Info("badkey", 7, "x")
	l.Info("badval", "k", struct{}{})
	got := buf.String()
	if !strings.Contains(got, "?dangling") {
		t.Errorf("odd-arity event missing marker: %q", got)
	}
	if !strings.Contains(got, "?key=") {
		t.Errorf("non-string key missing marker: %q", got)
	}
	if !strings.Contains(got, "k=?(unsupported)") {
		t.Errorf("unsupported value missing marker: %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": Debug, "info": Info, "warn": Warn, "error": Error, "": Info, "bogus": Info,
	} {
		if got := ParseLevel(s); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", s, got, want)
		}
	}
}

// TestDeterministicBytes pins byte-identical output for identical event
// streams — the property that makes a same-seed log diffable.
func TestDeterministicBytes(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		l := New(&buf, Debug, func() float64 { return 1.25 })
		for i := 0; i < 50; i++ {
			l.With("faults").Info("inject", "kind", "crash", "idx", i, "p", 0.1*float64(i))
		}
		return buf.String()
	}
	if emit() != emit() {
		t.Fatal("same stream produced different bytes")
	}
}
