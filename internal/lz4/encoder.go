package lz4

import "fmt"

// Encoder holds reusable matcher state so hot paths (the middle tier
// compresses every 4 KB block of every write request) do not pay a
// fresh hash-table allocation per block. An Encoder is not safe for
// concurrent use; the simulation is single-threaded so each simulated
// engine or core owns one.
type Encoder struct {
	head  []int32
	prev  []int32
	epoch int32 // current generation; head entries from older epochs are stale
	marks []int32
}

// NewEncoder returns an Encoder ready for blocks up to maxBlock bytes
// (larger inputs still work; prev grows on demand).
func NewEncoder(maxBlock int) *Encoder {
	if maxBlock < 0 {
		maxBlock = 0
	}
	return &Encoder{
		head:  make([]int32, 1<<hashLog),
		prev:  make([]int32, maxBlock),
		marks: make([]int32, 1<<hashLog),
		epoch: 0,
	}
}

// Compress compresses src into dst like the package-level Compress but
// reusing the encoder's tables.
func (e *Encoder) Compress(dst, src []byte, level Level) (int, error) {
	if !level.Valid() {
		return 0, fmt.Errorf("lz4: invalid level %d", level)
	}
	if len(dst) < CompressBound(len(src)) {
		return 0, ErrShortBuffer
	}
	if len(src) == 0 {
		dst[0] = 0
		return 1, nil
	}
	if len(src) < mfLimit+minMatch {
		return emitLastLiterals(dst, 0, src)
	}
	if len(e.prev) < len(src) {
		e.prev = make([]int32, len(src))
	}
	e.epoch++
	if e.epoch == 0 { // wrapped; flush everything
		for i := range e.marks {
			e.marks[i] = 0
		}
		e.epoch = 1
	}
	return e.compressBlock(dst, src, level.attempts())
}

// lookup returns the chain head for h, or -1 when stale.
func (e *Encoder) lookup(h uint32) int32 {
	if e.marks[h] != e.epoch {
		return -1
	}
	return e.head[h]
}

func (e *Encoder) insert(src []byte, i int) {
	h := hash4(load32(src, i))
	if e.marks[h] == e.epoch {
		e.prev[i] = e.head[h]
	} else {
		e.prev[i] = -1
		e.marks[h] = e.epoch
	}
	e.head[h] = int32(i)
}

func (e *Encoder) compressBlock(dst, src []byte, attempts int) (int, error) {
	di := 0
	anchor := 0
	i := 0
	matchEndLimit := len(src) - lastLiterals
	searchLimit := len(src) - mfLimit

	for i <= searchLimit {
		cur := load32(src, i)
		cand := e.lookup(hash4(cur))
		bestLen := 0
		bestPos := -1
		tries := attempts
		for cand >= 0 && tries > 0 {
			c := int(cand)
			if i-c > maxOffset {
				break
			}
			if load32(src, c) == cur {
				l := matchLength(src, c+minMatch, i+minMatch, matchEndLimit) + minMatch
				if l > bestLen {
					bestLen = l
					bestPos = c
				}
			}
			cand = e.prev[c]
			tries--
		}
		if bestLen < minMatch {
			e.insert(src, i)
			i++
			continue
		}
		for i > anchor && bestPos > 0 && src[i-1] == src[bestPos-1] {
			i--
			bestPos--
			bestLen++
		}
		var err error
		di, err = emitSequence(dst, di, src[anchor:i], i-bestPos, bestLen)
		if err != nil {
			return 0, err
		}
		end := i + bestLen
		step := 1
		if bestLen > 4096 {
			step = 16
		}
		for j := i; j < end && j <= searchLimit; j += step {
			e.insert(src, j)
		}
		i = end
		anchor = i
	}
	return emitLastLiterals(dst, di, src[anchor:])
}
