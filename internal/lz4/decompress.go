package lz4

// Decompress decodes an LZ4 block from src into dst and returns the
// number of bytes produced. dst must be large enough for the whole
// decoded output (callers know the original size out of band, as both
// the paper's storage format and this repository's frame header carry
// it). Malformed input yields ErrCorrupt, never a panic.
func Decompress(dst, src []byte) (int, error) {
	si, di := 0, 0
	for {
		if si >= len(src) {
			return 0, ErrCorrupt
		}
		token := src[si]
		si++

		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, si, err = readLenExt(src, si, litLen)
			if err != nil {
				return 0, err
			}
		}
		if litLen > 0 {
			if si+litLen > len(src) {
				return 0, ErrCorrupt
			}
			if di+litLen > len(dst) {
				return 0, ErrShortBuffer
			}
			copy(dst[di:], src[si:si+litLen])
			si += litLen
			di += litLen
		}
		if si == len(src) {
			// A block legitimately ends right after the final literals,
			// whose token carries a zero match nibble. A non-zero nibble
			// promised a match that never arrived.
			if token&15 != 0 {
				return 0, ErrCorrupt
			}
			return di, nil
		}

		// Match.
		if si+2 > len(src) {
			return 0, ErrCorrupt
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return 0, ErrCorrupt
		}
		matchLen := int(token & 15)
		if matchLen == 15 {
			var err error
			matchLen, si, err = readLenExt(src, si, matchLen)
			if err != nil {
				return 0, err
			}
		}
		matchLen += minMatch
		if di+matchLen > len(dst) {
			return 0, ErrShortBuffer
		}
		// Overlapping copy: must go byte-by-byte when offset < matchLen.
		ref := di - offset
		if offset >= matchLen {
			copy(dst[di:di+matchLen], dst[ref:ref+matchLen])
			di += matchLen
		} else {
			for k := 0; k < matchLen; k++ {
				dst[di] = dst[ref]
				di++
				ref++
			}
		}
	}
}

// readLenExt reads the 255-run extension of a length field that began
// at its 15 cap.
func readLenExt(src []byte, si, base int) (int, int, error) {
	v := base
	for {
		if si >= len(src) {
			return 0, 0, ErrCorrupt
		}
		b := src[si]
		si++
		v += int(b)
		if v < 0 {
			return 0, 0, ErrCorrupt // overflow on hostile input
		}
		if b != 255 {
			return v, si, nil
		}
	}
}

// DecompressToBuf decodes src given the known original size.
func DecompressToBuf(src []byte, origSize int) ([]byte, error) {
	dst := make([]byte, origSize)
	n, err := Decompress(dst, src)
	if err != nil {
		return nil, err
	}
	if n != origSize {
		return nil, ErrCorrupt
	}
	return dst, nil
}
