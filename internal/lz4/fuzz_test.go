package lz4

import (
	"testing"

	"github.com/disagg/smartds/internal/corpus"
)

// FuzzDecodeFrame hammers the frame decoder with arbitrary bytes. The
// decoder sits on the storage read path directly behind the network,
// so it must reject any malformed frame with an error — never panic,
// never over-read — and any frame it accepts must satisfy the header's
// own size and checksum claims.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with real frames over every corpus class (text through
	// incompressible random), plus truncations and corruptions of each.
	c := corpus.New(7, corpus.WithStreamSize(16<<10))
	for _, class := range corpus.Classes() {
		src := c.BlockOf(class, 4096)
		frame, err := EncodeFrame(src, 3)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)/2]) // truncated mid-payload
		f.Add(frame[:FrameHeaderSize])
		bad := append([]byte(nil), frame...)
		bad[FrameHeaderSize] ^= 0xff // corrupt the compressed stream
		f.Add(bad)
	}
	empty, err := EncodeFrame(nil, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeFrame(data)
		if err != nil {
			return // malformed input must error, not panic
		}
		fi, err := ParseFrameHeader(data)
		if err != nil {
			t.Fatalf("DecodeFrame accepted a frame ParseFrameHeader rejects: %v", err)
		}
		if len(out) != fi.OrigSize {
			t.Fatalf("decoded %d bytes but the header claims %d", len(out), fi.OrigSize)
		}
		if Checksum(out) != fi.CRC {
			t.Fatal("decoded bytes do not match the frame checksum")
		}
	})
}

// FuzzFrameRoundTrip checks the encoder/decoder pair from the other
// side: every input, at every level, must survive a compress+frame →
// decode cycle byte for byte.
func FuzzFrameRoundTrip(f *testing.F) {
	c := corpus.New(7, corpus.WithStreamSize(16<<10))
	for _, class := range corpus.Classes() {
		f.Add(c.BlockOf(class, 1024), uint8(3))
	}
	f.Add([]byte{}, uint8(1))
	f.Add([]byte("a"), uint8(9))

	f.Fuzz(func(t *testing.T, src []byte, lvl uint8) {
		level := Level(lvl%9) + 1
		frame, err := EncodeFrame(src, level)
		if err != nil {
			t.Fatalf("EncodeFrame(level %d): %v", level, err)
		}
		out, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame of a fresh frame: %v", err)
		}
		if string(out) != string(src) {
			t.Fatalf("round trip drifted: %d bytes in, %d bytes out", len(src), len(out))
		}
	})
}
