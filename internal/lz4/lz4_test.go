package lz4

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/disagg/smartds/internal/rng"
)

func roundTrip(t *testing.T, src []byte, level Level) []byte {
	t.Helper()
	comp, err := CompressToBuf(src, level)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	out, err := DecompressToBuf(comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(out))
	}
	return comp
}

func TestRoundTripEmpty(t *testing.T) {
	comp := roundTrip(t, nil, LevelDefault)
	if len(comp) != 1 {
		t.Fatalf("empty block should be 1 byte, got %d", len(comp))
	}
}

func TestRoundTripTiny(t *testing.T) {
	for n := 1; n < 20; n++ {
		src := bytes.Repeat([]byte{'a'}, n)
		roundTrip(t, src, LevelDefault)
	}
}

func TestRoundTripAllLevels(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 200))
	for l := Level(1); l <= 9; l++ {
		comp := roundTrip(t, src, l)
		if len(comp) >= len(src) {
			t.Fatalf("level %d did not compress repetitive text: %d >= %d", l, len(comp), len(src))
		}
	}
}

func TestHigherLevelNoWorseRatio(t *testing.T) {
	// Moderately compressible data: structured records with noise.
	r := rng.New(1)
	var b bytes.Buffer
	for i := 0; i < 2000; i++ {
		b.WriteString("record-")
		b.WriteByte(byte('a' + i%17))
		b.WriteString(":value=")
		b.WriteByte(byte('0' + r.Intn(10)))
		b.WriteByte(byte(r.Uint64()))
	}
	src := b.Bytes()
	fast := roundTrip(t, src, LevelFast)
	max := roundTrip(t, src, LevelMax)
	if len(max) > len(fast)+len(src)/100 {
		t.Fatalf("LevelMax (%d) much worse than LevelFast (%d)", len(max), len(fast))
	}
}

func TestIncompressibleData(t *testing.T) {
	r := rng.New(7)
	src := make([]byte, 4096)
	r.Bytes(src)
	comp := roundTrip(t, src, LevelDefault)
	if len(comp) > CompressBound(len(src)) {
		t.Fatalf("output exceeded bound: %d > %d", len(comp), CompressBound(len(src)))
	}
}

func TestZeroPage(t *testing.T) {
	src := make([]byte, 4096)
	comp := roundTrip(t, src, LevelDefault)
	if len(comp) > 64 {
		t.Fatalf("zero page compressed to %d bytes, want tiny", len(comp))
	}
}

func TestLongRepeats(t *testing.T) {
	// Exercises long match-length extension encoding (>= 15+255 runs).
	src := bytes.Repeat([]byte("ab"), 40000)
	comp := roundTrip(t, src, LevelFast)
	if len(comp) > 500 {
		t.Fatalf("long repeat compressed to %d bytes", len(comp))
	}
}

func TestLongLiteralRun(t *testing.T) {
	// Incompressible prefix long enough to need literal-length extension.
	r := rng.New(3)
	src := make([]byte, 1000)
	r.Bytes(src)
	src = append(src, bytes.Repeat([]byte("xyz"), 200)...)
	roundTrip(t, src, LevelDefault)
}

func TestFarMatchBeyondWindow(t *testing.T) {
	// A repeat farther than 64 KiB cannot be matched; data must still
	// round-trip (as literals).
	pattern := []byte("unique-pattern-block-0123456789")
	filler := make([]byte, 70000)
	rng.New(9).Bytes(filler)
	src := append(append(append([]byte{}, pattern...), filler...), pattern...)
	roundTrip(t, src, LevelMax)
}

func TestCompressShortDst(t *testing.T) {
	src := []byte("hello world hello world")
	dst := make([]byte, 3)
	if _, err := Compress(dst, src, LevelDefault); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestInvalidLevel(t *testing.T) {
	for _, l := range []Level{0, -1, 10} {
		if _, err := CompressToBuf([]byte("x"), l); err == nil {
			t.Fatalf("level %d accepted", l)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"truncated literals": {0x50, 'a', 'b'},        // promises 5 literals
		"zero offset":        {0x10, 'a', 0x00, 0x00}, // offset 0 invalid
		"offset too far":     {0x10, 'a', 0x09, 0x00}, // offset 9 > produced 1
		"missing offset":     {0x14, 'a'},             // token says match follows
		"bad ext run":        {0xf0, 255, 255},        // literal ext never ends
	}
	dst := make([]byte, 64)
	for name, src := range cases {
		if _, err := Decompress(dst, src); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestDecompressShortDst(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 100)
	comp, _ := CompressToBuf(src, LevelDefault)
	small := make([]byte, 10)
	if _, err := Decompress(small, comp); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint32, sizeSel uint16, levelSel uint8) bool {
		local := rng.New(uint64(seed))
		size := int(sizeSel) % 8192
		level := Level(int(levelSel)%9 + 1)
		src := make([]byte, size)
		// Mix of random and repetitive spans for realistic structure.
		i := 0
		for i < size {
			runLen := local.Intn(200) + 1
			if i+runLen > size {
				runLen = size - i
			}
			if local.Float64() < 0.5 {
				local.Bytes(src[i : i+runLen])
			} else {
				b := byte(local.Intn(256))
				for k := 0; k < runLen; k++ {
					src[i+k] = b
				}
			}
			i += runLen
		}
		comp, err := CompressToBuf(src, level)
		if err != nil {
			return false
		}
		out, err := DecompressToBuf(comp, len(src))
		if err != nil {
			return false
		}
		return bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressFuzzNoPanics(t *testing.T) {
	// Random garbage must never panic the decoder.
	r := rng.New(1234)
	dst := make([]byte, 4096)
	for i := 0; i < 2000; i++ {
		n := r.Intn(200)
		src := make([]byte, n)
		r.Bytes(src)
		_, _ = Decompress(dst, src) // any error is fine; panics are not
	}
}

func TestMutatedCompressedData(t *testing.T) {
	// Flipping bytes in valid compressed output must either error or
	// produce different data, never panic.
	src := []byte(strings.Repeat("disaggregated block storage ", 100))
	comp, _ := CompressToBuf(src, LevelDefault)
	dst := make([]byte, len(src)+64)
	for i := 0; i < len(comp); i += 3 {
		mut := append([]byte(nil), comp...)
		mut[i] ^= 0xff
		_, _ = Decompress(dst, mut)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	src := []byte(strings.Repeat("frame payload ", 300))
	frame, err := EncodeFrame(src, LevelDefault)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := ParseFrameHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if fi.OrigSize != len(src) || fi.Stored {
		t.Fatalf("frame info %+v", fi)
	}
	out, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("frame round trip mismatch")
	}
}

func TestFrameStoredFallback(t *testing.T) {
	src := make([]byte, 1024)
	rng.New(5).Bytes(src)
	frame, err := EncodeFrame(src, LevelFast)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := ParseFrameHeader(frame)
	if !fi.Stored {
		t.Fatal("random data should be stored raw")
	}
	out, err := DecodeFrame(frame)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("stored frame decode failed: %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	src := []byte(strings.Repeat("abc", 500))
	frame, _ := EncodeFrame(src, LevelDefault)

	short := frame[:10]
	if _, err := DecodeFrame(short); err == nil {
		t.Fatal("short frame accepted")
	}
	badMagic := append([]byte(nil), frame...)
	badMagic[0] ^= 1
	if _, err := DecodeFrame(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}
	badCRC := append([]byte(nil), frame...)
	badCRC[12] ^= 1
	if _, err := DecodeFrame(badCRC); err == nil {
		t.Fatal("bad checksum accepted")
	}
	truncated := frame[:len(frame)-1]
	if _, err := DecodeFrame(truncated); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4096, 2048) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(100, 0) != 0 {
		t.Fatal("zero comp size should yield 0")
	}
}

func BenchmarkCompress4KFast(b *testing.B) {
	src := benchBlock()
	dst := make([]byte, CompressBound(len(src)))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(dst, src, LevelFast); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompress4KHigh(b *testing.B) {
	src := benchBlock()
	dst := make([]byte, CompressBound(len(src)))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(dst, src, LevelHigh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress4K(b *testing.B) {
	src := benchBlock()
	comp, _ := CompressToBuf(src, LevelDefault)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(dst, comp); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBlock() []byte {
	r := rng.New(42)
	src := make([]byte, 4096)
	for i := 0; i < len(src); i += 16 {
		copy(src[i:], "log-entry: id=")
		src[i+14] = byte(r.Intn(256))
		if i+15 < len(src) {
			src[i+15] = byte(r.Intn(4))
		}
	}
	return src
}
