package lz4

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/disagg/smartds/internal/rng"
)

func TestEncoderMatchesPackageCompress(t *testing.T) {
	enc := NewEncoder(4096)
	r := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		src := make([]byte, 1+r.Intn(4096))
		// structured content
		for i := 0; i < len(src); i += 8 {
			copy(src[i:], "pattern!")
		}
		r.Bytes(src[:len(src)/3])
		level := Level(trial%9 + 1)

		want, err := CompressToBuf(src, level)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, CompressBound(len(src)))
		n, err := enc.Compress(dst, src, level)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst[:n], want) {
			t.Fatalf("trial %d: encoder output differs from package Compress", trial)
		}
	}
}

func TestEncoderReuseRoundTrip(t *testing.T) {
	// Back-to-back blocks must not contaminate each other through the
	// reused hash table.
	enc := NewEncoder(0) // forces prev growth too
	r := rng.New(5)
	dst := make([]byte, CompressBound(8192))
	for trial := 0; trial < 200; trial++ {
		src := make([]byte, 16+r.Intn(8000))
		if trial%2 == 0 {
			r.Bytes(src)
		} else {
			for i := range src {
				src[i] = byte(trial)
			}
		}
		n, err := enc.Compress(dst, src, LevelDefault)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecompressToBuf(dst[:n], len(src))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestEncoderEmptyAndTiny(t *testing.T) {
	enc := NewEncoder(64)
	dst := make([]byte, 64)
	n, err := enc.Compress(dst, nil, LevelFast)
	if err != nil || n != 1 {
		t.Fatalf("empty: n=%d err=%v", n, err)
	}
	n, err = enc.Compress(dst, []byte("abc"), LevelFast)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecompressToBuf(dst[:n], 3)
	if err != nil || string(out) != "abc" {
		t.Fatalf("tiny: %q %v", out, err)
	}
}

func TestEncoderInvalidInputs(t *testing.T) {
	enc := NewEncoder(16)
	if _, err := enc.Compress(make([]byte, 1), make([]byte, 100), LevelFast); err != ErrShortBuffer {
		t.Fatalf("short dst: %v", err)
	}
	if _, err := enc.Compress(make([]byte, 64), []byte("x"), Level(0)); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestEncoderEpochWrap(t *testing.T) {
	// Force the epoch counter to wrap and verify correctness persists.
	enc := NewEncoder(256)
	enc.epoch = -2 // two compressions away from wrapping through 0
	dst := make([]byte, CompressBound(256))
	src := bytes.Repeat([]byte("wrap"), 64)
	for i := 0; i < 4; i++ {
		n, err := enc.Compress(dst, src, LevelDefault)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecompressToBuf(dst[:n], len(src))
		if err != nil || !bytes.Equal(out, src) {
			t.Fatalf("wrap iteration %d failed: %v", i, err)
		}
	}
}

func TestEncoderPropertyRoundTrip(t *testing.T) {
	enc := NewEncoder(4096)
	dst := make([]byte, CompressBound(4096))
	f := func(seed uint32, lvl uint8) bool {
		local := rng.New(uint64(seed))
		src := make([]byte, local.Intn(4096))
		for i := 0; i < len(src); {
			n := local.Intn(64) + 1
			if i+n > len(src) {
				n = len(src) - i
			}
			if local.Float64() < 0.6 {
				b := byte(local.Intn(8))
				for k := 0; k < n; k++ {
					src[i+k] = b
				}
			} else {
				local.Bytes(src[i : i+n])
			}
			i += n
		}
		n, err := enc.Compress(dst, src, Level(int(lvl)%9+1))
		if err != nil {
			return false
		}
		out, err := DecompressToBuf(dst[:n], len(src))
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncoderCompress4KFast(b *testing.B) {
	src := benchBlock()
	enc := NewEncoder(len(src))
	dst := make([]byte, CompressBound(len(src)))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Compress(dst, src, LevelFast); err != nil {
			b.Fatal(err)
		}
	}
}
