package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming container: a magic-prefixed sequence of independently
// compressed blocks, each a Frame, closed by a zero-length terminator.
// This is what lz4util uses for whole files and what snapshot export
// uses for chunk images; blocks are independent so a reader can resume
// mid-stream.
//
// Layout:
//
//	0:4  stream magic "LZ4s"
//	4:8  block size the writer used
//	then per block: u32 frame length, frame bytes
//	terminator: u32 zero
const (
	streamMagic      = 0x7334_5a4c // "LZ4s"
	DefaultBlockSize = 64 << 10
	maxStreamBlock   = 8 << 20
)

// ErrClosed is returned when using a closed stream writer.
var ErrClosed = errors.New("lz4: stream closed")

// Writer compresses a byte stream block by block.
type Writer struct {
	w      io.Writer
	level  Level
	block  int
	buf    []byte // pending uncompressed bytes
	enc    *Encoder
	closed bool
	header bool

	// Stats accumulate across the stream.
	BytesIn  int64
	BytesOut int64
}

// NewWriter creates a streaming compressor with the given block size
// (0 means DefaultBlockSize).
func NewWriter(w io.Writer, level Level, blockSize int) (*Writer, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("lz4: invalid level %d", level)
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > maxStreamBlock {
		return nil, fmt.Errorf("lz4: block size %d exceeds %d", blockSize, maxStreamBlock)
	}
	return &Writer{w: w, level: level, block: blockSize, enc: NewEncoder(blockSize)}, nil
}

func (sw *Writer) writeHeader() error {
	if sw.header {
		return nil
	}
	sw.header = true
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], streamMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(sw.block))
	_, err := sw.w.Write(hdr[:])
	sw.BytesOut += 8
	return err
}

// Write buffers p and emits full blocks.
func (sw *Writer) Write(p []byte) (int, error) {
	if sw.closed {
		return 0, ErrClosed
	}
	if err := sw.writeHeader(); err != nil {
		return 0, err
	}
	total := len(p)
	for len(p) > 0 {
		room := sw.block - len(sw.buf)
		n := len(p)
		if n > room {
			n = room
		}
		sw.buf = append(sw.buf, p[:n]...)
		p = p[n:]
		if len(sw.buf) == sw.block {
			if err := sw.flushBlock(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (sw *Writer) flushBlock() error {
	if len(sw.buf) == 0 {
		return nil
	}
	dst := make([]byte, CompressBound(len(sw.buf)))
	n, err := sw.enc.Compress(dst, sw.buf, sw.level)
	if err != nil {
		return err
	}
	frame := WrapFrame(sw.buf, dst[:n])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := sw.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := sw.w.Write(frame); err != nil {
		return err
	}
	sw.BytesIn += int64(len(sw.buf))
	sw.BytesOut += int64(4 + len(frame))
	sw.buf = sw.buf[:0]
	return nil
}

// Close flushes the final partial block and writes the terminator.
func (sw *Writer) Close() error {
	if sw.closed {
		return ErrClosed
	}
	sw.closed = true
	if err := sw.writeHeader(); err != nil {
		return err
	}
	if err := sw.flushBlock(); err != nil {
		return err
	}
	var z [4]byte
	_, err := sw.w.Write(z[:])
	sw.BytesOut += 4
	return err
}

// Reader decompresses a stream produced by Writer.
type Reader struct {
	r      io.Reader
	buf    []byte // decompressed bytes not yet consumed
	off    int
	done   bool
	header bool
	block  int
}

// NewReader creates a streaming decompressor.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

func (sr *Reader) readHeader() error {
	if sr.header {
		return nil
	}
	sr.header = true
	var hdr [8]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return fmt.Errorf("lz4: stream header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != streamMagic {
		return ErrCorrupt
	}
	sr.block = int(binary.LittleEndian.Uint32(hdr[4:]))
	if sr.block <= 0 || sr.block > maxStreamBlock {
		return ErrCorrupt
	}
	return nil
}

// Read implements io.Reader.
func (sr *Reader) Read(p []byte) (int, error) {
	if err := sr.readHeader(); err != nil {
		return 0, err
	}
	for sr.off == len(sr.buf) {
		if sr.done {
			return 0, io.EOF
		}
		if err := sr.nextBlock(); err != nil {
			return 0, err
		}
	}
	n := copy(p, sr.buf[sr.off:])
	sr.off += n
	return n, nil
}

func (sr *Reader) nextBlock() error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(sr.r, lenBuf[:]); err != nil {
		return fmt.Errorf("lz4: stream block length: %w", err)
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen == 0 {
		sr.done = true
		return nil
	}
	if int(frameLen) > FrameHeaderSize+CompressBound(sr.block) {
		return ErrCorrupt
	}
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(sr.r, frame); err != nil {
		return fmt.Errorf("lz4: stream block: %w", err)
	}
	orig, err := DecodeFrame(frame)
	if err != nil {
		return err
	}
	sr.buf = orig
	sr.off = 0
	return nil
}
