package lz4

import (
	"encoding/binary"
	"hash/crc32"
)

// Frame is a minimal self-describing container for one compressed
// block: magic, original size, compressed size, and a CRC32-C of the
// original data. The storage servers persist frames so the read path
// can decompress and verify integrity end to end.
//
// Layout (little endian):
//
//	0:4   magic "LZ4b"
//	4:8   original size
//	8:12  compressed size
//	12:16 crc32c(original)
//	16:   compressed payload
const (
	frameMagic      = 0x6234_5a4c // "LZ4b"
	FrameHeaderSize = 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of data, the integrity check used
// throughout the block store.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// EncodeFrame compresses src at the given level and wraps it in a frame.
// If compression would expand the data, the frame stores it raw
// (compressed size == original size means "stored").
func EncodeFrame(src []byte, level Level) ([]byte, error) {
	comp, err := CompressToBuf(src, level)
	if err != nil {
		return nil, err
	}
	return WrapFrame(src, comp), nil
}

// WrapFrame builds a frame around already-compressed bytes. Callers
// that run their own Encoder (per-core, per-engine) use this to avoid
// a second compression pass. If comp is not smaller than src, the
// frame stores src raw.
func WrapFrame(src, comp []byte) []byte {
	payload := comp
	if len(comp) >= len(src) && len(src) > 0 {
		payload = src // store raw
	}
	out := make([]byte, FrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], frameMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(len(src)))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[12:], Checksum(src))
	copy(out[FrameHeaderSize:], payload)
	return out
}

// FrameInfo describes a parsed frame header.
type FrameInfo struct {
	OrigSize int
	CompSize int
	CRC      uint32
	Stored   bool // payload kept raw because compression expanded it
}

// ParseFrameHeader validates and decodes a frame header.
func ParseFrameHeader(frame []byte) (FrameInfo, error) {
	if len(frame) < FrameHeaderSize {
		return FrameInfo{}, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(frame[0:]) != frameMagic {
		return FrameInfo{}, ErrCorrupt
	}
	fi := FrameInfo{
		OrigSize: int(binary.LittleEndian.Uint32(frame[4:])),
		CompSize: int(binary.LittleEndian.Uint32(frame[8:])),
		CRC:      binary.LittleEndian.Uint32(frame[12:]),
	}
	fi.Stored = fi.CompSize == fi.OrigSize
	if fi.CompSize < 0 || FrameHeaderSize+fi.CompSize > len(frame) {
		return FrameInfo{}, ErrCorrupt
	}
	return fi, nil
}

// DecodeFrame decompresses a frame and verifies its checksum.
func DecodeFrame(frame []byte) ([]byte, error) {
	fi, err := ParseFrameHeader(frame)
	if err != nil {
		return nil, err
	}
	payload := frame[FrameHeaderSize : FrameHeaderSize+fi.CompSize]
	var orig []byte
	if fi.Stored {
		orig = append([]byte(nil), payload...)
	} else {
		orig, err = DecompressToBuf(payload, fi.OrigSize)
		if err != nil {
			return nil, err
		}
	}
	if Checksum(orig) != fi.CRC {
		return nil, ErrCorrupt
	}
	return orig, nil
}
