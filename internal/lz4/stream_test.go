package lz4

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"github.com/disagg/smartds/internal/rng"
)

func streamRoundTrip(t *testing.T, src []byte, level Level, blockSize int) []byte {
	t.Helper()
	var comp bytes.Buffer
	w, err := NewWriter(&comp, level, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(NewReader(bytes.NewReader(comp.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("stream round trip mismatch: %d in, %d out", len(src), len(out))
	}
	return comp.Bytes()
}

func TestStreamRoundTripBasic(t *testing.T) {
	src := []byte(strings.Repeat("streaming compression works ", 5000))
	comp := streamRoundTrip(t, src, LevelDefault, 0)
	if len(comp) >= len(src) {
		t.Fatalf("stream did not compress: %d >= %d", len(comp), len(src))
	}
}

func TestStreamEmpty(t *testing.T) {
	comp := streamRoundTrip(t, nil, LevelFast, 0)
	// magic+blocksize+terminator
	if len(comp) != 12 {
		t.Fatalf("empty stream = %d bytes, want 12", len(comp))
	}
}

func TestStreamOddSizesAndBlocks(t *testing.T) {
	r := rng.New(3)
	for _, blockSize := range []int{16, 100, 4096, 1 << 16} {
		for _, n := range []int{1, 15, 16, 17, 99, 100, 101, 5000} {
			src := make([]byte, n)
			r.Bytes(src[:n/2]) // half random, half zero
			streamRoundTrip(t, src, LevelFast, blockSize)
		}
	}
}

func TestStreamMultipleWrites(t *testing.T) {
	var comp bytes.Buffer
	w, _ := NewWriter(&comp, LevelDefault, 128)
	var want bytes.Buffer
	for i := 0; i < 50; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, i*7%200+1)
		want.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(NewReader(&comp))
	if err != nil || !bytes.Equal(out, want.Bytes()) {
		t.Fatalf("multi-write stream mismatch: %v", err)
	}
}

func TestStreamWriterStats(t *testing.T) {
	var comp bytes.Buffer
	w, _ := NewWriter(&comp, LevelDefault, 0)
	src := bytes.Repeat([]byte("abc"), 100000)
	w.Write(src)
	w.Close()
	if w.BytesIn != int64(len(src)) {
		t.Fatalf("BytesIn = %d", w.BytesIn)
	}
	if w.BytesOut != int64(comp.Len()) {
		t.Fatalf("BytesOut = %d, wrote %d", w.BytesOut, comp.Len())
	}
}

func TestStreamWriterClosedErrors(t *testing.T) {
	var comp bytes.Buffer
	w, _ := NewWriter(&comp, LevelDefault, 0)
	w.Close()
	if _, err := w.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
	if err := w.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestStreamWriterValidation(t *testing.T) {
	if _, err := NewWriter(io.Discard, Level(0), 0); err == nil {
		t.Fatal("invalid level accepted")
	}
	if _, err := NewWriter(io.Discard, LevelFast, maxStreamBlock+1); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestStreamReaderCorruption(t *testing.T) {
	src := bytes.Repeat([]byte("data"), 1000)
	var comp bytes.Buffer
	w, _ := NewWriter(&comp, LevelDefault, 256)
	w.Write(src)
	w.Close()
	good := comp.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{0, 0, 0, 0}, good[4:]...),
		"truncated":   good[:len(good)-6],
		"no term":     good[:len(good)-4],
		"flip body":   flipByte(good, len(good)/2),
		"huge length": append(good[:8], 0xff, 0xff, 0xff, 0x7f),
	}
	for name, data := range cases {
		if _, err := io.ReadAll(NewReader(bytes.NewReader(data))); err == nil {
			t.Errorf("%s: corrupt stream accepted", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

func TestStreamSmallReads(t *testing.T) {
	src := bytes.Repeat([]byte("tiny reads "), 3000)
	var comp bytes.Buffer
	w, _ := NewWriter(&comp, LevelDefault, 512)
	w.Write(src)
	w.Close()
	r := NewReader(&comp)
	var out []byte
	buf := make([]byte, 7) // deliberately tiny, unaligned reads
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out, src) {
		t.Fatal("small-read stream mismatch")
	}
}

func TestStreamProperty(t *testing.T) {
	f := func(seed uint32, blockSel uint16) bool {
		local := rng.New(uint64(seed))
		blockSize := int(blockSel)%2048 + 1
		src := make([]byte, local.Intn(20000))
		for i := 0; i < len(src); {
			n := local.Intn(100) + 1
			if i+n > len(src) {
				n = len(src) - i
			}
			if local.Float64() < 0.5 {
				local.Bytes(src[i : i+n])
			}
			i += n
		}
		var comp bytes.Buffer
		w, err := NewWriter(&comp, LevelFast, blockSize)
		if err != nil {
			return false
		}
		if _, err := w.Write(src); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		out, err := io.ReadAll(NewReader(&comp))
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
