// Package lz4 implements the LZ4 block compression format from scratch
// using only the standard library.
//
// The paper's middle tier compresses every 4 KB data block with LZ4
// before replicating it to storage servers; SmartDS offloads exactly
// this codec into per-port hardware engines. This package provides the
// functional codec both the software (CPU) path and the simulated
// hardware engines execute, including the paper's "compression effort"
// knob (§2.2.1) as compression levels: higher levels search deeper
// match chains and buy a better ratio with more (simulated) time.
//
// The encoded stream is the standard LZ4 block format: a sequence of
// (token, literals, offset, match-length) records with 4-byte minimum
// matches and 64 KiB maximum offsets.
package lz4

import (
	"errors"
	"fmt"
)

const (
	minMatch     = 4  // smallest encodable match
	lastLiterals = 5  // the final bytes of a block are always literals
	mfLimit      = 12 // no match may start within mfLimit bytes of the end
	hashLog      = 16
	hashShift    = 32 - hashLog
	maxOffset    = 65535
)

// Level selects compression effort: the maximum number of hash-chain
// candidates examined per position. Level 1 mimics LZ4-fast (single
// probe); higher levels approach LZ4-HC ratios.
type Level int

// Standard effort levels. The middle tier picks a level per request
// based on service type and load (paper §2.2.1).
const (
	LevelFast    Level = 1
	LevelDefault Level = 3
	LevelHigh    Level = 6
	LevelMax     Level = 9
)

// attempts maps a level to its chain-search depth.
func (l Level) attempts() int {
	switch {
	case l <= 1:
		return 1
	case l >= 9:
		return 256
	default:
		return 1 << uint(l-1)
	}
}

// Valid reports whether the level is within the supported range.
func (l Level) Valid() bool { return l >= 1 && l <= 9 }

var (
	// ErrShortBuffer is returned when dst cannot hold the output.
	ErrShortBuffer = errors.New("lz4: destination buffer too small")
	// ErrCorrupt is returned when compressed input is malformed.
	ErrCorrupt = errors.New("lz4: corrupt compressed data")
)

// CompressBound returns the maximum compressed size for n input bytes.
func CompressBound(n int) int { return n + n/255 + 16 }

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func hash4(u uint32) uint32 { return (u * 2654435761) >> hashShift }

// Compress compresses src into dst at the given level and returns the
// number of bytes written. dst must be at least CompressBound(len(src))
// bytes; otherwise ErrShortBuffer is returned.
func Compress(dst, src []byte, level Level) (int, error) {
	if !level.Valid() {
		return 0, fmt.Errorf("lz4: invalid level %d", level)
	}
	if len(dst) < CompressBound(len(src)) {
		return 0, ErrShortBuffer
	}
	if len(src) == 0 {
		dst[0] = 0 // single token: zero literals, no match
		return 1, nil
	}
	if len(src) < mfLimit+minMatch {
		return emitLastLiterals(dst, 0, src)
	}
	return compressBlock(dst, src, level.attempts())
}

// CompressToBuf compresses src into a freshly allocated buffer.
func CompressToBuf(src []byte, level Level) ([]byte, error) {
	dst := make([]byte, CompressBound(len(src)))
	n, err := Compress(dst, src, level)
	if err != nil {
		return nil, err
	}
	return dst[:n:n], nil
}

// compressBlock runs the hash-chain matcher.
func compressBlock(dst, src []byte, attempts int) (int, error) {
	var head [1 << hashLog]int32
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(src))

	insert := func(i int) {
		h := hash4(load32(src, i))
		prev[i] = head[h]
		head[h] = int32(i)
	}

	di := 0
	anchor := 0
	i := 0
	matchEndLimit := len(src) - lastLiterals
	searchLimit := len(src) - mfLimit

	for i <= searchLimit {
		// Find the best match among up to `attempts` chain candidates.
		cur := load32(src, i)
		h := hash4(cur)
		cand := head[h]
		bestLen := 0
		bestPos := -1
		tries := attempts
		for cand >= 0 && tries > 0 {
			c := int(cand)
			if i-c > maxOffset {
				break // older entries are even farther away
			}
			if load32(src, c) == cur {
				l := matchLength(src, c+minMatch, i+minMatch, matchEndLimit) + minMatch
				if l > bestLen {
					bestLen = l
					bestPos = c
				}
			}
			cand = prev[c]
			tries--
		}
		if bestLen < minMatch {
			insert(i)
			i++
			continue
		}

		// Extend the match backwards over pending literals.
		for i > anchor && bestPos > 0 && src[i-1] == src[bestPos-1] {
			i--
			bestPos--
			bestLen++
		}

		var err error
		di, err = emitSequence(dst, di, src[anchor:i], i-bestPos, bestLen)
		if err != nil {
			return 0, err
		}

		// Index the positions covered by the match so later data can
		// reference them, then continue after it.
		end := i + bestLen
		step := 1
		if bestLen > 4096 {
			// Long runs (e.g. zero pages) would make indexing quadratic;
			// sparse indexing preserves most of the ratio.
			step = 16
		}
		for j := i; j < end && j <= searchLimit; j += step {
			insert(j)
		}
		i = end
		anchor = i
	}

	return emitLastLiterals(dst, di, src[anchor:])
}

// matchLength counts how many bytes match between src[a:] and src[b:]
// with b < limit.
func matchLength(src []byte, a, b, limit int) int {
	n := 0
	for b < limit && src[a] == src[b] {
		a++
		b++
		n++
	}
	return n
}

// emitSequence writes one (literals, match) sequence at dst[di:].
func emitSequence(dst []byte, di int, literals []byte, offset, matchLen int) (int, error) {
	if offset <= 0 || offset > maxOffset {
		return 0, fmt.Errorf("lz4: internal error: offset %d out of range", offset)
	}
	if matchLen < minMatch {
		return 0, fmt.Errorf("lz4: internal error: match length %d too short", matchLen)
	}
	litLen := len(literals)
	mlCode := matchLen - minMatch

	tokenPos := di
	di++
	if litLen >= 15 {
		dst[tokenPos] = 15 << 4
		di = putLenExt(dst, di, litLen-15)
	} else {
		dst[tokenPos] = byte(litLen) << 4
	}
	di += copy(dst[di:], literals)
	dst[di] = byte(offset)
	dst[di+1] = byte(offset >> 8)
	di += 2
	if mlCode >= 15 {
		dst[tokenPos] |= 15
		di = putLenExt(dst, di, mlCode-15)
	} else {
		dst[tokenPos] |= byte(mlCode)
	}
	return di, nil
}

// emitLastLiterals writes the trailing literals-only sequence.
func emitLastLiterals(dst []byte, di int, literals []byte) (int, error) {
	litLen := len(literals)
	tokenPos := di
	di++
	if litLen >= 15 {
		dst[tokenPos] = 15 << 4
		di = putLenExt(dst, di, litLen-15)
	} else {
		dst[tokenPos] = byte(litLen) << 4
	}
	di += copy(dst[di:], literals)
	return di, nil
}

// putLenExt writes the 255-run length extension encoding of v.
func putLenExt(dst []byte, di, v int) int {
	for v >= 255 {
		dst[di] = 255
		di++
		v -= 255
	}
	dst[di] = byte(v)
	return di + 1
}

// Ratio returns origSize/compSize, the figure of merit the middle tier
// tracks per block (>=1 means the block shrank).
func Ratio(origSize, compSize int) float64 {
	if compSize <= 0 {
		return 0
	}
	return float64(origSize) / float64(compSize)
}
