package mem

import (
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/sim"
)

// MLC is an Intel Memory Latency Checker stand-in: worker loops that
// inject dummy memory traffic with a configurable delay between
// requests, exactly how the paper dials memory pressure in Figures 4
// and 9. Delay zero saturates the bus; larger delays throttle pressure.
type MLC struct {
	env     *sim.Env
	mem     *System
	workers int
	delay   float64
	chunk   float64

	running bool
	stopped *sim.Event
	live    int
	moved   *metrics.Meter
}

// MLCConfig parameterizes the injector.
type MLCConfig struct {
	Workers int     // concurrent injector loops (the paper uses 16 cores)
	Delay   float64 // pause between injected requests (seconds)
	Chunk   float64 // bytes per injected request (read+write halves)
}

// NewMLC creates an injector bound to a memory system.
func NewMLC(env *sim.Env, m *System, cfg MLCConfig) *MLC {
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 64 << 10 // 64 KiB streaming stride
	}
	return &MLC{
		env:     env,
		mem:     m,
		workers: cfg.Workers,
		delay:   cfg.Delay,
		chunk:   cfg.Chunk,
		moved:   metrics.NewMeter(env.Now()),
	}
}

// Start launches the worker loops. They run until Stop is called.
func (m *MLC) Start() {
	if m.running {
		return
	}
	m.running = true
	m.stopped = m.env.NewEvent()
	m.live = m.workers
	for i := 0; i < m.workers; i++ {
		m.env.Go("mlc-worker", func(p *sim.Proc) {
			for m.running {
				// MLC's buffer walk: half reads, half writes.
				m.mem.Read(p, m.chunk/2)
				m.mem.Write(p, m.chunk/2)
				m.moved.Add(m.chunk)
				if m.delay > 0 {
					p.Sleep(m.delay)
				} else {
					p.Yield()
				}
			}
			m.live--
			if m.live == 0 {
				m.stopped.Trigger(nil)
			}
		})
	}
}

// Stop asks the workers to exit after their current iteration.
func (m *MLC) Stop() { m.running = false }

// StoppedEvent fires once all workers have exited after Stop.
func (m *MLC) StoppedEvent() *sim.Event { return m.stopped }

// Moved returns total injected bytes.
func (m *MLC) Moved() float64 { return m.moved.Total() }

// MarkWindow returns the injector's achieved bytes/second since the
// previous mark — the "MLC bandwidth" series of Figures 4 and 9.
func (m *MLC) MarkWindow() float64 { return m.moved.MarkWindow(m.env.Now()) }
