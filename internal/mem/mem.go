// Package mem models the middle-tier server's host memory subsystem:
// a processor-shared memory bus with separate read/write accounting, a
// last-level cache with Intel DDIO way allocation, and an Intel-MLC-like
// interference injector.
//
// The paper's motivation (§3.1.2, Figure 4) and isolation results
// (§5.3, Figure 9) hinge on this subsystem: network DMA, software
// compression, and co-located maintenance services all compete for the
// same ~120 GB/s of achievable DRAM bandwidth.
package mem

import (
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/sim"
)

// Config sets the memory subsystem's capacities. Zero fields take the
// defaults measured on the paper's testbed (2x Xeon Silver 4214, 8
// channels DDR4-2400).
type Config struct {
	// BusBytesPerSec is total achievable DRAM bandwidth (reads+writes).
	BusBytesPerSec float64
	// AccessLatency is the uncontended DRAM access latency charged per
	// Read/Write call in addition to transfer time.
	AccessLatency float64
	// LLCBytes is last-level cache capacity.
	LLCBytes float64
	// TotalWays and DDIOWays partition the LLC; DMA writes may allocate
	// only into the DDIO ways.
	TotalWays int
	DDIOWays  int
	// DDIOEnabled mirrors the BIOS knob the paper toggles in Fig. 8.
	DDIOEnabled bool
}

// DefaultConfig returns the paper's testbed parameters.
func DefaultConfig() Config {
	return Config{
		BusBytesPerSec: 120e9,    // ~120 GB/s achievable over 8 channels
		AccessLatency:  90e-9,    // uncontended DRAM access
		LLCBytes:       16 << 20, // 16 MiB
		TotalWays:      11,
		DDIOWays:       2,
		DDIOEnabled:    true,
	}
}

// System is the host memory subsystem.
type System struct {
	env *sim.Env
	cfg Config
	bus *sim.PSLink

	readBytes  *metrics.Meter
	writeBytes *metrics.Meter
}

// New creates a memory system.
func New(env *sim.Env, cfg Config) *System {
	def := DefaultConfig()
	if cfg.BusBytesPerSec <= 0 {
		cfg.BusBytesPerSec = def.BusBytesPerSec
	}
	if cfg.AccessLatency <= 0 {
		cfg.AccessLatency = def.AccessLatency
	}
	if cfg.LLCBytes <= 0 {
		cfg.LLCBytes = def.LLCBytes
	}
	if cfg.TotalWays <= 0 {
		cfg.TotalWays = def.TotalWays
	}
	if cfg.DDIOWays <= 0 {
		cfg.DDIOWays = def.DDIOWays
	}
	return &System{
		env:        env,
		cfg:        cfg,
		bus:        env.NewPSLink("membus", cfg.BusBytesPerSec, 0),
		readBytes:  metrics.NewMeter(env.Now()),
		writeBytes: metrics.NewMeter(env.Now()),
	}
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// StartRead begins a read of n bytes; the event fires when the bus has
// delivered them.
func (s *System) StartRead(n float64) *sim.Event {
	s.readBytes.Add(n)
	return s.bus.Start(n)
}

// StartWrite begins a write of n bytes.
func (s *System) StartWrite(n float64) *sim.Event {
	s.writeBytes.Add(n)
	return s.bus.Start(n)
}

// Read blocks the process for an n-byte read (latency + bandwidth).
func (s *System) Read(p *sim.Proc, n float64) {
	if n <= 0 {
		return
	}
	p.Sleep(s.cfg.AccessLatency)
	p.Wait(s.StartRead(n))
}

// Write blocks the process for an n-byte write.
func (s *System) Write(p *sim.Proc, n float64) {
	if n <= 0 {
		return
	}
	p.Sleep(s.cfg.AccessLatency)
	p.Wait(s.StartWrite(n))
}

// BandwidthSnapshot captures cumulative read/write byte counters.
type BandwidthSnapshot struct {
	ReadBytes  float64
	WriteBytes float64
	At         sim.Time
}

// Snapshot returns the counters at the current instant.
func (s *System) Snapshot() BandwidthSnapshot {
	return BandwidthSnapshot{
		ReadBytes:  s.readBytes.Total(),
		WriteBytes: s.writeBytes.Total(),
		At:         s.env.Now(),
	}
}

// RatesBetween returns (readB/s, writeB/s) between two snapshots.
func RatesBetween(a, b BandwidthSnapshot) (float64, float64) {
	dt := b.At - a.At
	if dt <= 0 {
		return 0, 0
	}
	return (b.ReadBytes - a.ReadBytes) / dt, (b.WriteBytes - a.WriteBytes) / dt
}

// DDIOCapacity returns the bytes of LLC available to DMA writes.
func (s *System) DDIOCapacity() float64 {
	if !s.cfg.DDIOEnabled {
		return 0
	}
	return s.cfg.LLCBytes * float64(s.cfg.DDIOWays) / float64(s.cfg.TotalWays)
}

// ReadHitFraction estimates the fraction of device reads served from
// the LLC when the *in-flight* working set (bytes written by DMA and
// read back within the processing window) is ws bytes. With DDIO off,
// DMA cannot allocate into the LLC, so every device read misses.
func (s *System) ReadHitFraction(ws float64) float64 {
	cap := s.DDIOCapacity()
	if cap <= 0 || ws <= 0 {
		if ws <= 0 && cap > 0 {
			return 1
		}
		return 0
	}
	if ws <= cap {
		return 1
	}
	return cap / ws
}

// WriteEvictFraction estimates the fraction of DMA-written bytes that
// eventually reach DRAM because the buffers are *retained* (the paper
// measures a ~32 ms buffer lifetime => ~400 MB working set at 100 Gbps,
// far beyond the DDIO ways). Retention beyond the DDIO capacity forces
// eviction; with DDIO off, every DMA write goes straight to DRAM.
func (s *System) WriteEvictFraction(retainedWS float64) float64 {
	cap := s.DDIOCapacity()
	if cap <= 0 {
		return 1
	}
	if retainedWS <= cap {
		return 0
	}
	return 1 - cap/retainedWS
}

// ContentionFactor models DRAM latency amplification under load: when
// many agents (the MLC injector's 16 workers, §5.3) keep the bus
// saturated, every individual access — a compressing core's cache
// misses, a DMA engine's reads — stalls longer. The factor is 1.0 until
// the bus holds more than a handful of concurrent transfers, then grows
// toward a 3x cap at injector-level pressure. Fluid bandwidth sharing
// alone cannot express this (a 4 KB transfer's fair share is always
// "fast enough"); latency amplification is what actually collapses the
// CPU-only and Acc designs in Figure 9.
func (s *System) ContentionFactor() float64 {
	jobs := float64(s.bus.InFlight())
	f := 1 + (jobs-4)/6
	if f < 1 {
		return 1
	}
	if f > 3 {
		return 3
	}
	return f
}

// RetainedWorkingSet applies Little's law: traffic (bytes/s) times the
// buffer lifetime gives the resident buffer bytes (paper §3.2).
func RetainedWorkingSet(trafficBytesPerSec, lifetime float64) float64 {
	return trafficBytesPerSec * lifetime
}
