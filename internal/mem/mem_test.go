package mem

import (
	"math"
	"testing"

	"github.com/disagg/smartds/internal/sim"
)

func TestDefaults(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, Config{DDIOEnabled: true})
	cfg := s.Config()
	if cfg.BusBytesPerSec != 120e9 || cfg.TotalWays != 11 || cfg.DDIOWays != 2 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestReadWriteTiming(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, Config{BusBytesPerSec: 1e9, AccessLatency: 1e-6, DDIOEnabled: true})
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		s.Read(p, 1e6) // 1 MB at 1 GB/s = 1 ms + 1 us latency
		done = p.Now()
	})
	e.Run(0)
	want := 1e-3 + 1e-6
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("read completed at %g, want %g", done, want)
	}
}

func TestZeroByteAccessFree(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, DefaultConfig())
	e.Go("p", func(p *sim.Proc) {
		s.Read(p, 0)
		s.Write(p, -5)
	})
	e.Run(0)
	if e.Now() != 0 {
		t.Fatalf("zero-byte access consumed time: %g", e.Now())
	}
}

func TestReadWriteShareBus(t *testing.T) {
	// Concurrent read and write share the single bus: each of 1 MB at
	// 1 GB/s shared => both finish at 2 ms (plus latency).
	e := sim.NewEnv()
	s := New(e, Config{BusBytesPerSec: 1e9, AccessLatency: 0.5e-9, DDIOEnabled: true})
	var tr, tw sim.Time
	e.Go("r", func(p *sim.Proc) { s.Read(p, 1e6); tr = p.Now() })
	e.Go("w", func(p *sim.Proc) { s.Write(p, 1e6); tw = p.Now() })
	e.Run(0)
	if math.Abs(tr-2e-3) > 1e-5 || math.Abs(tw-2e-3) > 1e-5 {
		t.Fatalf("shared bus times: read %g write %g, want ~2ms", tr, tw)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, Config{BusBytesPerSec: 1e9, AccessLatency: 1e-9, DDIOEnabled: true})
	s0 := s.Snapshot()
	e.Go("p", func(p *sim.Proc) {
		s.Read(p, 3e6)
		s.Write(p, 1e6)
	})
	e.Run(0)
	s1 := s.Snapshot()
	r, w := RatesBetween(s0, s1)
	if r <= 0 || w <= 0 {
		t.Fatalf("rates: r=%g w=%g", r, w)
	}
	if got := s1.ReadBytes - s0.ReadBytes; got != 3e6 {
		t.Fatalf("read bytes = %g", got)
	}
	if got := s1.WriteBytes - s0.WriteBytes; got != 1e6 {
		t.Fatalf("write bytes = %g", got)
	}
	if rr, ww := RatesBetween(s1, s1); rr != 0 || ww != 0 {
		t.Fatal("zero-width window must report 0")
	}
}

func TestDDIOCapacity(t *testing.T) {
	e := sim.NewEnv()
	on := New(e, Config{DDIOEnabled: true})
	want := 16.0 * (1 << 20) * 2 / 11
	if math.Abs(on.DDIOCapacity()-want) > 1 {
		t.Fatalf("DDIO capacity = %g, want %g", on.DDIOCapacity(), want)
	}
	off := New(e, Config{DDIOEnabled: false})
	if off.DDIOCapacity() != 0 {
		t.Fatal("DDIO off must have zero capacity")
	}
}

func TestReadHitFraction(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, Config{DDIOEnabled: true})
	cap := s.DDIOCapacity()
	if f := s.ReadHitFraction(cap / 2); f != 1 {
		t.Fatalf("small WS hit fraction = %g, want 1", f)
	}
	if f := s.ReadHitFraction(cap * 4); math.Abs(f-0.25) > 1e-9 {
		t.Fatalf("4x WS hit fraction = %g, want 0.25", f)
	}
	off := New(e, Config{DDIOEnabled: false})
	if f := off.ReadHitFraction(1024); f != 0 {
		t.Fatalf("DDIO-off hit fraction = %g, want 0", f)
	}
}

func TestWriteEvictFraction(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, Config{DDIOEnabled: true})
	cap := s.DDIOCapacity()
	if f := s.WriteEvictFraction(cap / 2); f != 0 {
		t.Fatalf("small retained WS evict = %g, want 0", f)
	}
	// The paper's 400 MB retained working set: essentially all evicted.
	if f := s.WriteEvictFraction(400e6); f < 0.99 {
		t.Fatalf("400MB retained WS evict = %g, want ~1", f)
	}
	off := New(e, Config{DDIOEnabled: false})
	if f := off.WriteEvictFraction(10); f != 1 {
		t.Fatalf("DDIO-off evict = %g, want 1", f)
	}
}

func TestRetainedWorkingSetLittlesLaw(t *testing.T) {
	// 100 Gbps * 32 ms = 400 MB (paper §3.2).
	ws := RetainedWorkingSet(12.5e9, 32e-3)
	if math.Abs(ws-400e6) > 1e3 {
		t.Fatalf("Little's law WS = %g, want 400e6", ws)
	}
}

func TestMLCSaturatesBus(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, Config{BusBytesPerSec: 1e9, AccessLatency: 1e-9, DDIOEnabled: true})
	mlc := NewMLC(e, s, MLCConfig{Workers: 4, Delay: 0})
	mlc.Start()
	e.After(0.5, func() { mlc.MarkWindow() })
	var rate float64
	e.After(1.0, func() { rate = mlc.MarkWindow(); mlc.Stop() })
	e.Run(1.1)
	if math.Abs(rate-1e9) > 0.1e9 {
		t.Fatalf("saturating MLC achieved %g B/s, want ~1e9", rate)
	}
}

func TestMLCDelayThrottles(t *testing.T) {
	run := func(delay float64) float64 {
		e := sim.NewEnv()
		s := New(e, Config{BusBytesPerSec: 100e9, AccessLatency: 1e-9, DDIOEnabled: true})
		mlc := NewMLC(e, s, MLCConfig{Workers: 2, Delay: delay, Chunk: 1 << 20})
		mlc.Start()
		var rate float64
		e.After(0.05, func() { rate = mlc.MarkWindow(); mlc.Stop() })
		e.Run(0.06)
		return rate
	}
	fast := run(0)
	slow := run(1e-3)
	if slow >= fast/2 {
		t.Fatalf("delay did not throttle: fast=%g slow=%g", fast, slow)
	}
}

func TestMLCStopTerminates(t *testing.T) {
	e := sim.NewEnv()
	s := New(e, DefaultConfig())
	mlc := NewMLC(e, s, MLCConfig{Workers: 3, Delay: 1e-6})
	mlc.Start()
	e.After(0.01, func() { mlc.Stop() })
	e.Run(1)
	if !mlc.StoppedEvent().Done() {
		t.Fatal("MLC workers did not stop")
	}
	if mlc.Moved() <= 0 {
		t.Fatal("MLC moved no bytes")
	}
	// Double Start after stop is a fresh run.
	mlc.Start()
	e.After(0.01, func() { mlc.Stop() })
	e.Run(0)
}

func TestMLCInterferesWithForeground(t *testing.T) {
	// A foreground transfer under full MLC pressure takes ~(workers+1)x
	// longer than alone — the Figure 4 effect in miniature.
	measure := func(pressure bool) sim.Time {
		e := sim.NewEnv()
		s := New(e, Config{BusBytesPerSec: 1e9, AccessLatency: 1e-9, DDIOEnabled: true})
		if pressure {
			mlc := NewMLC(e, s, MLCConfig{Workers: 3, Delay: 0})
			mlc.Start()
			e.After(2.0, func() { mlc.Stop() })
		}
		var done sim.Time
		e.Go("fg", func(p *sim.Proc) {
			s.Read(p, 100e6) // 100 MB
			done = p.Now()
		})
		e.Run(3)
		return done
	}
	alone := measure(false)
	loaded := measure(true)
	if loaded < alone*2 {
		t.Fatalf("MLC pressure had too little effect: alone=%g loaded=%g", alone, loaded)
	}
}
