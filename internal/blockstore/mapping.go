package blockstore

import "fmt"

// Geometry captures the paper's address hierarchy: a virtual disk is
// carved into segments (32 GB), each segment into chunks (64 MB), each
// I/O targets one block (4 KB) within a chunk.
type Geometry struct {
	BlockSize    int
	ChunkBytes   int64
	SegmentBytes int64
}

// DefaultGeometry returns the paper's sizes.
func DefaultGeometry() Geometry {
	return Geometry{
		BlockSize:    4096,
		ChunkBytes:   64 << 20,
		SegmentBytes: 32 << 30,
	}
}

// BlocksPerChunk returns how many blocks fit a chunk.
func (g Geometry) BlocksPerChunk() int64 { return g.ChunkBytes / int64(g.BlockSize) }

// ChunksPerSegment returns how many chunks fit a segment.
func (g Geometry) ChunksPerSegment() int64 { return g.SegmentBytes / g.ChunkBytes }

// Location is a fully resolved block address.
type Location struct {
	SegmentID uint64
	ChunkID   uint32
	BlockOff  uint32
}

// Resolve maps a logical block address (in blocks) to its location.
func (g Geometry) Resolve(lba uint64) Location {
	blocksPerChunk := uint64(g.BlocksPerChunk())
	chunksPerSeg := uint64(g.ChunksPerSegment())
	chunkIdx := lba / blocksPerChunk
	return Location{
		SegmentID: chunkIdx / chunksPerSeg,
		ChunkID:   uint32(chunkIdx % chunksPerSeg),
		BlockOff:  uint32(lba % blocksPerChunk),
	}
}

// LBA inverts Resolve.
func (g Geometry) LBA(loc Location) uint64 {
	blocksPerChunk := uint64(g.BlocksPerChunk())
	chunksPerSeg := uint64(g.ChunksPerSegment())
	return (loc.SegmentID*chunksPerSeg+uint64(loc.ChunkID))*blocksPerChunk + uint64(loc.BlockOff)
}

// Validate sanity-checks the geometry.
func (g Geometry) Validate() error {
	if g.BlockSize <= 0 || g.ChunkBytes <= 0 || g.SegmentBytes <= 0 {
		return fmt.Errorf("blockstore: non-positive geometry %+v", g)
	}
	if g.ChunkBytes%int64(g.BlockSize) != 0 {
		return fmt.Errorf("blockstore: chunk size %d not a multiple of block size %d", g.ChunkBytes, g.BlockSize)
	}
	if g.SegmentBytes%g.ChunkBytes != 0 {
		return fmt.Errorf("blockstore: segment size %d not a multiple of chunk size %d", g.SegmentBytes, g.ChunkBytes)
	}
	return nil
}
