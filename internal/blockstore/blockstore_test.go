package blockstore

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Op:        OpWrite,
		Flags:     FlagCompressed | FlagLatencySensitive,
		Level:     6,
		Status:    StatusOK,
		VMID:      0xDEADBEEF12345678,
		ReqID:     42,
		SegmentID: 7,
		ChunkID:   300,
		BlockOff:  15999,
		OrigLen:   4096,
		CRC:       0xCAFEBABE,
	}
	b := h.Encode()
	if len(b) != HeaderSize {
		t.Fatalf("encoded size %d", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(op uint8, flags, level uint8, vm, req, seg uint64, chunk, off, orig, crc uint32) bool {
		h := Header{
			Op:        Op(op%8 + 1),
			Flags:     flags,
			Level:     level,
			VMID:      vm,
			ReqID:     req,
			SegmentID: seg,
			ChunkID:   chunk,
			BlockOff:  off,
			OrigLen:   orig,
			CRC:       crc,
		}
		got, err := Decode(h.Encode())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode(make([]byte, 10)); err == nil {
		t.Fatal("short accepted")
	}
	bad := (&Header{Op: OpWrite}).Encode()
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	badOp := (&Header{Op: OpWrite}).Encode()
	badOp[4] = 200
	if _, err := Decode(badOp); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestMessageSplit(t *testing.T) {
	h := Header{Op: OpReplicate, ReqID: 9}
	payload := []byte("block-data")
	msg := Message(&h, payload)
	if len(msg) != HeaderSize+len(payload) {
		t.Fatalf("message size %d", len(msg))
	}
	got, pl, err := SplitMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReqID != 9 || string(pl) != "block-data" {
		t.Fatalf("split mismatch: %+v %q", got, pl)
	}
	if got.PayloadLen != uint32(len(payload)) {
		t.Fatalf("payload len %d", got.PayloadLen)
	}
	// Length mismatch must error.
	if _, _, err := SplitMessage(msg[:len(msg)-1]); err == nil {
		t.Fatal("truncated message accepted")
	}
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpFetchReply.String() != "fetch-reply" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op should stringify")
	}
}

func TestGeometryDefaults(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.BlocksPerChunk() != 16384 {
		t.Fatalf("blocks/chunk = %d, want 16384 (64MB / 4KB)", g.BlocksPerChunk())
	}
	if g.ChunksPerSegment() != 512 {
		t.Fatalf("chunks/segment = %d, want 512 (32GB / 64MB)", g.ChunksPerSegment())
	}
}

func TestResolveInverse(t *testing.T) {
	g := DefaultGeometry()
	f := func(lba uint64) bool {
		lba %= 1 << 40
		loc := g.Resolve(lba)
		return g.LBA(loc) == lba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResolveKnownValues(t *testing.T) {
	g := DefaultGeometry()
	// Block 0.
	if loc := g.Resolve(0); loc != (Location{0, 0, 0}) {
		t.Fatalf("Resolve(0) = %+v", loc)
	}
	// Last block of the first chunk.
	if loc := g.Resolve(16383); loc != (Location{0, 0, 16383}) {
		t.Fatalf("Resolve(16383) = %+v", loc)
	}
	// First block of the second chunk.
	if loc := g.Resolve(16384); loc != (Location{0, 1, 0}) {
		t.Fatalf("Resolve(16384) = %+v", loc)
	}
	// First block of the second segment: 512 chunks * 16384 blocks.
	if loc := g.Resolve(512 * 16384); loc != (Location{1, 0, 0}) {
		t.Fatalf("Resolve(segment boundary) = %+v", loc)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{BlockSize: 0, ChunkBytes: 64 << 20, SegmentBytes: 32 << 30},
		{BlockSize: 4096, ChunkBytes: 4097, SegmentBytes: 32 << 30},
		{BlockSize: 4096, ChunkBytes: 64 << 20, SegmentBytes: (64 << 20) + 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
}
