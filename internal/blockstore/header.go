// Package blockstore defines the disaggregated block storage protocol:
// the 64-byte block-storage header every request and reply carries
// (paper §2.2.1: VM id, service type, block offset, segment id, ...),
// and the LBA -> segment -> chunk address mapping (§2.1: 32 GB
// segments divided into 64 MB chunks, 4 KB I/O blocks).
package blockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderSize is the fixed wire size of a block-storage header. The
// paper's AAMS example uses 64-byte headers split to the host.
const HeaderSize = 64

const headerMagic = 0x53_44_42_48 // "HBDS"

// Op is the service type.
type Op uint8

// Service types.
const (
	OpWrite Op = iota + 1
	OpRead
	OpWriteReply
	OpReadReply
	OpReplicate      // middle tier -> storage server write
	OpReplicateReply // storage server -> middle tier ack
	OpFetch          // middle tier -> storage server read
	OpFetchReply
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpWriteReply:
		return "write-reply"
	case OpReadReply:
		return "read-reply"
	case OpReplicate:
		return "replicate"
	case OpReplicateReply:
		return "replicate-reply"
	case OpFetch:
		return "fetch"
	case OpFetchReply:
		return "fetch-reply"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Header flags.
const (
	FlagLatencySensitive uint8 = 1 << iota // bypass compression (§4.3)
	FlagCompressed                         // payload is an LZ4 frame
)

// Status codes for replies.
type Status uint8

// Reply statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusCorrupt
	StatusError
)

// Header is the block-storage header preceding every payload.
type Header struct {
	Op         Op
	Flags      uint8
	Level      uint8 // compression effort chosen by the middle tier
	Status     Status
	VMID       uint64
	ReqID      uint64
	SegmentID  uint64
	ChunkID    uint32
	BlockOff   uint32 // block offset within the chunk, in blocks
	PayloadLen uint32
	OrigLen    uint32 // uncompressed block length
	CRC        uint32 // CRC32-C of the original block
	// Version is the middle tier's writer-assigned version of the block
	// (monotonic per middle-tier server). Replicate requests carry it so
	// storage servers can refuse regressions (a stale read-repair or
	// re-replication must never clobber a newer append); fetch replies
	// echo the stored record's version so quorum reads can pick the
	// newest replica. Zero means unversioned (legacy/maintenance
	// traffic) and disables the regression guard.
	Version uint64
}

// ErrBadHeader reports a malformed header.
var ErrBadHeader = errors.New("blockstore: malformed header")

// Encode serializes the header into a fresh 64-byte slice.
func (h *Header) Encode() []byte {
	b := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(b[0:], headerMagic)
	b[4] = uint8(h.Op)
	b[5] = h.Flags
	b[6] = h.Level
	b[7] = uint8(h.Status)
	binary.LittleEndian.PutUint64(b[8:], h.VMID)
	binary.LittleEndian.PutUint64(b[16:], h.ReqID)
	binary.LittleEndian.PutUint64(b[24:], h.SegmentID)
	binary.LittleEndian.PutUint32(b[32:], h.ChunkID)
	binary.LittleEndian.PutUint32(b[36:], h.BlockOff)
	binary.LittleEndian.PutUint32(b[40:], h.PayloadLen)
	binary.LittleEndian.PutUint32(b[44:], h.OrigLen)
	binary.LittleEndian.PutUint32(b[48:], h.CRC)
	binary.LittleEndian.PutUint64(b[52:], h.Version)
	return b
}

// Decode parses a header from the first 64 bytes of b.
func Decode(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrBadHeader
	}
	if binary.LittleEndian.Uint32(b[0:]) != headerMagic {
		return Header{}, ErrBadHeader
	}
	h := Header{
		Op:         Op(b[4]),
		Flags:      b[5],
		Level:      b[6],
		Status:     Status(b[7]),
		VMID:       binary.LittleEndian.Uint64(b[8:]),
		ReqID:      binary.LittleEndian.Uint64(b[16:]),
		SegmentID:  binary.LittleEndian.Uint64(b[24:]),
		ChunkID:    binary.LittleEndian.Uint32(b[32:]),
		BlockOff:   binary.LittleEndian.Uint32(b[36:]),
		PayloadLen: binary.LittleEndian.Uint32(b[40:]),
		OrigLen:    binary.LittleEndian.Uint32(b[44:]),
		CRC:        binary.LittleEndian.Uint32(b[48:]),
		Version:    binary.LittleEndian.Uint64(b[52:]),
	}
	if h.Op < OpWrite || h.Op > OpFetchReply {
		return Header{}, ErrBadHeader
	}
	return h, nil
}

// Message assembles header + payload into one wire buffer.
func Message(h *Header, payload []byte) []byte {
	h.PayloadLen = uint32(len(payload))
	out := make([]byte, HeaderSize+len(payload))
	copy(out, h.Encode())
	copy(out[HeaderSize:], payload)
	return out
}

// SplitMessage separates a wire buffer into header and payload.
func SplitMessage(b []byte) (Header, []byte, error) {
	h, err := Decode(b)
	if err != nil {
		return Header{}, nil, err
	}
	if int(h.PayloadLen) != len(b)-HeaderSize {
		return Header{}, nil, fmt.Errorf("blockstore: payload length %d != %d: %w",
			h.PayloadLen, len(b)-HeaderSize, ErrBadHeader)
	}
	return h, b[HeaderSize:], nil
}
