package blockstore

import (
	"testing"
)

// FuzzHeaderDecode feeds the wire-header decoder arbitrary bytes.
// Decode parses what clients and storage servers receive straight off
// the fabric, so malformed input must produce ErrBadHeader — never a
// panic — and any header it accepts must survive an encode/decode
// round trip unchanged.
func FuzzHeaderDecode(f *testing.F) {
	seeds := []Header{
		{Op: OpWrite, Flags: FlagCompressed, Level: 3, VMID: 7, ReqID: 9,
			SegmentID: 12, ChunkID: 34, BlockOff: 56, PayloadLen: 4096, OrigLen: 4096, CRC: 0xdeadbeef},
		{Op: OpReadReply, Status: StatusNotFound},
		{Op: OpReplicate, Flags: FlagLatencySensitive, ReqID: ^uint64(0)},
		{Op: OpFetchReply, Status: StatusCorrupt, PayloadLen: 1},
	}
	for i := range seeds {
		f.Add(seeds[i].Encode())
	}
	f.Add(Message(&Header{Op: OpWrite, VMID: 1}, []byte("block payload")))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize-1)) // one byte short
	f.Add(make([]byte, HeaderSize))   // zero magic

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Decode(data)
		if err != nil {
			return // malformed input must error, not panic
		}
		back, err := Decode(h.Encode())
		if err != nil {
			t.Fatalf("re-decode of an accepted header failed: %v", err)
		}
		if back != h {
			t.Fatalf("header round trip drifted:\n in  %+v\n out %+v", h, back)
		}
		// A buffer whose length matches the header's payload claim must
		// split cleanly; any other length must be rejected.
		_, payload, err := SplitMessage(data)
		if int(h.PayloadLen) == len(data)-HeaderSize {
			if err != nil {
				t.Fatalf("SplitMessage rejected a consistent message: %v", err)
			}
			if len(payload) != int(h.PayloadLen) {
				t.Fatalf("SplitMessage returned %d payload bytes, header says %d",
					len(payload), h.PayloadLen)
			}
		} else if err == nil {
			t.Fatalf("SplitMessage accepted a message with a payload-length mismatch")
		}
	})
}
