package middletier

import (
	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/host"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

// request is one in-flight client I/O.
type request struct {
	hdr     blockstore.Header
	payload []byte  // real block bytes (nil when modeled-only)
	size    float64 // modeled payload size
	// hostResident counts payload bytes that AAMS placed in host memory
	// because the configured split exceeds the header (ablation only);
	// they must be fetched back before device-side compression.
	hostResident float64
}

// parseRequest extracts the request from an incoming message. Modeled
// traffic carries a real 64-byte header with the payload size implied
// by the message size.
func parseRequest(m *rdma.Message) (request, bool) {
	if m.Data == nil || len(m.Data) < blockstore.HeaderSize {
		return request{}, false
	}
	h, err := blockstore.Decode(m.Data)
	if err != nil {
		return request{}, false
	}
	req := request{hdr: h, size: m.Size - blockstore.HeaderSize}
	if len(m.Data) > blockstore.HeaderSize {
		req.payload = m.Data[blockstore.HeaderSize:]
		req.size = float64(len(req.payload))
	}
	return req, true
}

// hostRecv is the CPUOnly/Accel entry point: the NIC has already
// DMA-written the message into host memory.
func (s *Server) hostRecv(qp *rdma.QP, m *rdma.Message) {
	req, ok := parseRequest(m)
	if !ok {
		return
	}
	s.env.Go("mt.req", func(p *sim.Proc) {
		switch req.hdr.Op {
		case blockstore.OpWrite:
			s.hostWrite(p, qp, req)
		case blockstore.OpRead:
			s.hostRead(p, qp, req)
		}
	})
}

// softwareCompress runs functional LZ4 on the worker's encoder and
// returns (frame, modeledSize). Modeled-only payloads use ModelRatio.
func (s *Server) softwareCompress(core *host.Core, req request) ([]byte, float64) {
	return s.softwareCompressLeveled(core, req, s.cfg.Level)
}

// softwareCompressLeveled is softwareCompress at an explicit effort
// level (a request header may also demand a minimum level).
func (s *Server) softwareCompressLeveled(core *host.Core, req request, level lz4.Level) ([]byte, float64) {
	if req.payload == nil {
		return nil, req.size / s.cfg.ModelRatio
	}
	frame, err := encodeFrameWith(s.enc[core.ID()], req.payload, lz4.Level(maxu8(req.hdr.Level, uint8(level))))
	if err != nil {
		// Incompressible handled inside EncodeFrame; any other error is
		// a bug upstream.
		panic(err)
	}
	return frame, float64(len(frame))
}

func maxu8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

// encodeFrameWith is lz4.EncodeFrame using a reusable encoder.
func encodeFrameWith(enc *lz4.Encoder, block []byte, level lz4.Level) ([]byte, error) {
	if !level.Valid() {
		level = lz4.LevelDefault
	}
	dst := make([]byte, lz4.CompressBound(len(block)))
	n, err := enc.Compress(dst, block, level)
	if err != nil {
		return nil, err
	}
	comp := dst[:n]
	return lz4.WrapFrame(block, comp), nil
}

// hostWrite serves one write request on the CPUOnly or Accel path.
func (s *Server) hostWrite(p *sim.Proc, clientQP *rdma.QP, req request) {
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	tr.End(p.Now(), "net", "request", tid)
	stageBegin(tr, p.Now(), "mt", "parse", tid)
	core := s.nextCore()
	core.Parse(p)
	tr.End(p.Now(), "mt", "parse", tid)
	s.BytesIn += req.size

	bypass := req.hdr.Flags&blockstore.FlagLatencySensitive != 0
	var frame []byte
	var frameSize float64
	flags := uint8(0)
	stageBegin(tr, p.Now(), "mt", "compress", tid)
	switch {
	case bypass:
		s.BypassHits++
		frame = req.payload
		frameSize = req.size
	case s.cfg.Kind == CPUOnly:
		// Software LZ4: read the block from DRAM, burn core time (slowed
		// by DRAM latency amplification when the bus is contended, and
		// scaled by the chosen compression effort), write the frame back.
		level := s.chooseLevel(core.QueueLen())
		s.Mem.Read(p, req.size)
		core.CompressSlowed(p, req.size, s.Mem.ContentionFactor()*effortTimeFactor(level))
		frame, frameSize = s.softwareCompressLeveled(core, req, level)
		s.Mem.Write(p, frameSize)
		flags = blockstore.FlagCompressed
	case !s.engineAvailable(0): // Accel, card failed
		// Store raw rather than stall the write path: software LZ4 on
		// the control cores would collapse throughput, so availability
		// wins and the frame goes out uncompressed.
		s.EngineFallbacks++
		frame = req.payload
		frameSize = req.size
	default: // Accel
		frame, frameSize = s.accelCompress(p, core, req)
		flags = blockstore.FlagCompressed
	}
	tr.End(p.Now(), "mt", "compress", tid)

	s.replicateAndReply(p, clientQP, req, frame, frameSize, flags)
}

// accelCompress bounces the block through the FPGA card: PCIe H2D
// fetch (from LLC when DDIO holds it), engine time, PCIe D2H
// write-back (evicted to DRAM later: retained buffer).
func (s *Server) accelCompress(p *sim.Proc, core *host.Core, req request) ([]byte, float64) {
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	// CPU posts the job to the card.
	s.accelPCIe.Doorbell(p)
	// Card fetches the block.
	fetch := s.accelPCIe.StartDMA(pcie.H2D, req.size)
	if !s.cfg.DDIO {
		p.Wait(s.Mem.StartRead(req.size))
	}
	p.Wait(fetch)
	// Engine processes at AccelEngineRate (one job at a time). Its DMA
	// stream stalls under DRAM contention: fully with DDIO off, partly
	// (LLC absorbs some traffic) with DDIO on.
	memF := s.Mem.ContentionFactor()
	if s.cfg.DDIO {
		memF = 1 + (memF-1)*0.6
	}
	q0 := p.Now()
	s.accelSlot.Acquire(p)
	q1 := p.Now()
	p.Sleep(req.size * memF / s.cfg.AccelEngineRate)
	s.accelSlot.Release()
	s.engineSpans(tr, tid, "compress", q0, q1, p.Now())
	var frame []byte
	var frameSize float64
	if req.payload == nil {
		frameSize = req.size / s.cfg.ModelRatio
	} else {
		var err error
		frame, err = encodeFrameWith(s.accelEnc, req.payload, s.cfg.Level)
		if err != nil {
			panic(err)
		}
		frameSize = float64(len(frame))
	}
	// Write-back: PCIe D2H plus the eventual DRAM eviction.
	wb := s.accelPCIe.StartDMA(pcie.D2H, frameSize)
	p.Wait(s.Mem.StartWrite(frameSize))
	p.Wait(wb)
	return frame, frameSize
}

// replicateAndReply runs the frame through the replication protocol
// and replies to the client. Used by CPUOnly and Accel (the NIC path);
// BF2 and SmartDS have their own senders.
func (s *Server) replicateAndReply(p *sim.Proc, clientQP *rdma.QP, req request, frame []byte, frameSize float64, flags uint8) {
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	stageBegin(tr, p.Now(), "mt", "replicate", tid)
	version := s.nextWriteVersion()
	status, stored := s.replicateWait(p, req.hdr, frameSize, func(repID uint64, set []int) {
		rh := blockstore.Header{
			Op:        blockstore.OpReplicate,
			Flags:     flags,
			ReqID:     repID,
			VMID:      req.hdr.VMID,
			SegmentID: req.hdr.SegmentID,
			ChunkID:   req.hdr.ChunkID,
			BlockOff:  req.hdr.BlockOff,
			OrigLen:   uint32(req.size),
			CRC:       req.hdr.CRC,
			Version:   version,
		}
		var msg []byte
		if frame != nil {
			msg = blockstore.Message(&rh, frame)
		} else {
			rh.PayloadLen = uint32(frameSize)
			msg = rh.Encode()
		}
		msgSize := blockstore.HeaderSize + frameSize
		for _, idx := range set {
			qp := s.storagePaths[0][idx]
			s.nic.Send(qp, msg, msgSize)
		}
	})
	tr.End(p.Now(), "mt", "replicate", tid)

	stageBegin(tr, p.Now(), "mt", "ack", tid)
	reply := blockstore.Header{Op: blockstore.OpWriteReply, ReqID: req.hdr.ReqID, Status: status}
	tr.End(p.Now(), "mt", "ack", tid)
	stageBegin(tr, p.Now(), "net", "reply", tid)
	s.nic.Send(clientQP, reply.Encode(), blockstore.HeaderSize)
	s.WritesDone++
	s.BytesStored += frameSize * float64(stored)
}

// hostRead serves one read request: fetch from one storage server,
// decompress, reply with the block.
func (s *Server) hostRead(p *sim.Proc, clientQP *rdma.QP, req request) {
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	tr.End(p.Now(), "net", "request", tid)
	stageBegin(tr, p.Now(), "mt", "parse", tid)
	core := s.nextCore()
	core.Parse(p)
	tr.End(p.Now(), "mt", "parse", tid)

	var pr *pendingReq
	if s.cfg.Protocol == ProtoQuorum {
		stageBegin(tr, p.Now(), "mt", "fetch", tid)
		winner, qok := s.quorumFetch(p, req.hdr,
			func(fh blockstore.Header, idx int) {
				s.nic.Send(s.storagePaths[0][idx], fh.Encode(), blockstore.HeaderSize)
			},
			func(rh blockstore.Header, frame []byte, frameSize float64, idx int) {
				var msg []byte
				if frame != nil {
					msg = blockstore.Message(&rh, frame)
				} else {
					rh.PayloadLen = uint32(frameSize)
					msg = rh.Encode()
				}
				s.nic.Send(s.storagePaths[0][idx], msg, blockstore.HeaderSize+frameSize)
			})
		tr.End(p.Now(), "mt", "fetch", tid)
		if !qok {
			// No reachable read quorum: answer the client instead of
			// panicking or stalling.
			reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusError}
			stageBegin(tr, p.Now(), "net", "reply", tid)
			s.nic.Send(clientQP, reply.Encode(), blockstore.HeaderSize)
			s.ReadsDone++
			return
		}
		pr = winner
	} else {
		idx, ok := s.readReplicaFor(req.hdr)
		if !ok {
			// Every replica of the chunk is down: answer the client instead
			// of panicking or stalling.
			reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusError}
			stageBegin(tr, p.Now(), "net", "reply", tid)
			s.nic.Send(clientQP, reply.Encode(), blockstore.HeaderSize)
			s.ReadsDone++
			return
		}
		repID, spr := s.newPending(1)
		fh := blockstore.Header{
			Op:        blockstore.OpFetch,
			ReqID:     repID,
			SegmentID: req.hdr.SegmentID,
			ChunkID:   req.hdr.ChunkID,
			BlockOff:  req.hdr.BlockOff,
		}
		stageBegin(tr, p.Now(), "mt", "fetch", tid)
		s.nic.Send(s.storagePaths[0][idx], fh.Encode(), blockstore.HeaderSize)
		p.Wait(spr.done)
		tr.End(p.Now(), "mt", "fetch", tid)
		pr = spr
	}

	if pr.status != blockstore.StatusOK {
		reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: pr.status}
		stageBegin(tr, p.Now(), "net", "reply", tid)
		s.nic.Send(clientQP, reply.Encode(), blockstore.HeaderSize)
		s.ReadsDone++
		return
	}

	stageBegin(tr, p.Now(), "mt", "decompress", tid)
	var block []byte
	blockSize := float64(s.cfg.BlockSize)
	compressed := pr.hdr.Flags&blockstore.FlagCompressed != 0
	switch {
	case pr.payload != nil && !compressed:
		// Latency-sensitive blocks were stored raw: forward as-is.
		block = pr.payload
		blockSize = float64(len(block))
	case pr.payload != nil:
		fi, err := lz4.ParseFrameHeader(pr.payload)
		if err == nil {
			blockSize = float64(fi.OrigSize)
		}
		switch s.cfg.Kind {
		case CPUOnly:
			s.Mem.Read(p, pr.size)
			core.Decompress(p, blockSize)
			block, err = lz4.DecodeFrame(pr.payload)
			s.Mem.Write(p, blockSize)
		default: // Accel
			s.accelPCIe.Doorbell(p)
			fetch := s.accelPCIe.StartDMA(pcie.H2D, pr.size)
			if !s.cfg.DDIO {
				p.Wait(s.Mem.StartRead(pr.size))
			}
			p.Wait(fetch)
			q0 := p.Now()
			s.accelSlot.Acquire(p)
			q1 := p.Now()
			p.Sleep(blockSize / s.cfg.AccelEngineRate)
			s.accelSlot.Release()
			s.engineSpans(tr, tid, "decompress", q0, q1, p.Now())
			block, err = lz4.DecodeFrame(pr.payload)
			wb := s.accelPCIe.StartDMA(pcie.D2H, blockSize)
			p.Wait(s.Mem.StartWrite(blockSize))
			p.Wait(wb)
		}
		if err != nil {
			tr.End(p.Now(), "mt", "decompress", tid)
			reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusCorrupt}
			stageBegin(tr, p.Now(), "net", "reply", tid)
			s.nic.Send(clientQP, reply.Encode(), blockstore.HeaderSize)
			s.ReadsDone++
			return
		}
	case compressed:
		// Modeled: charge CPU decompression time for the block.
		if s.cfg.Kind == CPUOnly {
			s.Mem.Read(p, pr.size)
			core.Decompress(p, blockSize)
			s.Mem.Write(p, blockSize)
		}
	default:
		// Modeled, stored raw: nothing to decompress.
		blockSize = pr.size
	}

	tr.End(p.Now(), "mt", "decompress", tid)
	reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusOK}
	var msg []byte
	if block != nil {
		msg = blockstore.Message(&reply, block)
	} else {
		reply.PayloadLen = uint32(blockSize)
		msg = reply.Encode()
	}
	stageBegin(tr, p.Now(), "net", "reply", tid)
	s.nic.Send(clientQP, msg, blockstore.HeaderSize+blockSize)
	s.ReadsDone++
}
