package middletier

import (
	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/sim"
)

// This file is the quorum protocol's read path (the second half of the
// ABD scheme): fetch from a read quorum, rank the replies by writer
// version, answer from the newest, and read-repair stale replicas so
// they converge. The design data paths keep owning transport — they
// hand quorumFetch two closures, one to issue a fetch and one to issue
// a repair write.

// readQuorumTargets picks the storage servers a quorum read consults:
// ReadQuorum(Replicas) healthy members of the chunk's placement,
// rotating the start for balance. ok is false when fewer healthy
// members remain than the read quorum — answering from a minority
// could miss the newest acked write, so the read fails instead. A
// chunk never written through this server falls back to up to a
// quorum's worth of arbitrary healthy servers (they will answer
// not-found; no write exists whose visibility needs protecting).
func (s *Server) readQuorumTargets(hdr blockstore.Header) ([]int, bool) {
	rq := s.rep.ReadQuorum(s.cfg.Replicas)
	key := chunkKey{seg: hdr.SegmentID, chunk: hdr.ChunkID}
	set, ok := s.placement[key]
	if !ok {
		hs := s.healthyReplicas()
		if len(hs) == 0 {
			s.Unroutable++
			return nil, false
		}
		if len(hs) > rq {
			hs = hs[:rq]
		}
		return hs, true
	}
	out := make([]int, 0, rq)
	for i := 0; i < len(set) && len(out) < rq; i++ {
		idx := set[(s.readRR+i)%len(set)]
		if !s.serverDown[idx] {
			out = append(out, idx)
		}
	}
	s.readRR++
	if len(out) < rq {
		s.Unroutable++
		return nil, false
	}
	return out, true
}

// quorumFetch runs one quorum read. sendFetch must issue the fetch
// header to storage server idx through the design's front end;
// sendRepair must ship a repair frame (real bytes or modeled size) the
// same way replicate frames travel. The returned pendingReq is the
// winning reply — newest writer version among OK replies, or a failed
// reply when no target answered OK — already completed, ready for the
// caller's decompress-and-reply tail. ok is false when no read quorum
// was reachable at all.
func (s *Server) quorumFetch(p *sim.Proc, hdr blockstore.Header,
	sendFetch func(fh blockstore.Header, idx int),
	sendRepair func(rh blockstore.Header, frame []byte, frameSize float64, idx int),
) (*pendingReq, bool) {
	targets, ok := s.readQuorumTargets(hdr)
	if !ok {
		return nil, false
	}
	ids := make([]uint64, len(targets))
	prs := make([]*pendingReq, len(targets))
	for i, idx := range targets {
		repID, pr := s.newPendingQuorum(1, 1)
		ids[i], prs[i] = repID, pr
		sendFetch(blockstore.Header{
			Op:        blockstore.OpFetch,
			VMID:      hdr.VMID,
			ReqID:     repID,
			SegmentID: hdr.SegmentID,
			ChunkID:   hdr.ChunkID,
			BlockOff:  hdr.BlockOff,
		}, idx)
	}
	// All fetches are in flight; events are sticky, so waiting on them
	// one by one still means "wait for the slowest", not a serial round
	// trip per target.
	timeout := s.cfg.ReplicateTimeout
	for i, pr := range prs {
		if timeout <= 0 {
			p.Wait(pr.done)
			continue
		}
		if _, done := p.WaitTimeout(pr.done, timeout); !done {
			// Orphan the fetch: a late reply counts as stale and the
			// target is treated as failed for this read.
			delete(s.pending, ids[i])
			pr.status = blockstore.StatusError
		}
	}
	var winner *pendingReq
	for _, pr := range prs {
		if pr.status != blockstore.StatusOK {
			continue
		}
		if winner == nil || pr.hdr.Version > winner.hdr.Version {
			winner = pr
		}
	}
	if winner == nil {
		winner = prs[0]
	}
	// Return the losing replies' receive descriptors (SmartDS) now; the
	// caller only ever sees the winner.
	for _, pr := range prs {
		if pr != winner && pr.release != nil {
			pr.release()
			pr.release = nil
		}
	}
	if winner.status == blockstore.StatusOK && winner.hdr.Version > 0 && sendRepair != nil {
		repairSize := winner.size
		if winner.payload != nil {
			repairSize = float64(len(winner.payload))
		}
		for i, pr := range prs {
			if pr == winner {
				continue
			}
			// A replica that answered with an older version — or no block
			// at all — missed the newest write (it was outside the write
			// quorum, or lost its state in a crash). Push the winner's
			// frame back at it, carrying the winner's version so the
			// storage-side guard makes the repair idempotent and never a
			// regression. Fire-and-forget: the read reply must not wait on
			// repair acks.
			stale := pr.status == blockstore.StatusNotFound ||
				(pr.status == blockstore.StatusOK && pr.hdr.Version < winner.hdr.Version)
			if !stale {
				continue
			}
			repID, _ := s.newPendingQuorum(1, 1)
			sendRepair(blockstore.Header{
				Op:        blockstore.OpReplicate,
				Flags:     winner.hdr.Flags,
				Level:     winner.hdr.Level,
				ReqID:     repID,
				VMID:      hdr.VMID,
				SegmentID: hdr.SegmentID,
				ChunkID:   hdr.ChunkID,
				BlockOff:  hdr.BlockOff,
				OrigLen:   winner.hdr.OrigLen,
				Version:   winner.hdr.Version,
			}, winner.payload, repairSize, targets[i])
			s.ReadRepairs++
			s.RepairBytes += repairSize
		}
	}
	return winner, true
}
