package middletier

import (
	"bytes"
	"testing"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		CPUOnly: "CPU-only", Accel: "Acc", BF2: "BF2", SmartDS: "SmartDS",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestDefaultConfigPerKind(t *testing.T) {
	if DefaultConfig(BF2).Ports != 2 {
		t.Error("BF2 should default to 2 ports")
	}
	if DefaultConfig(SmartDS).Ports != 1 {
		t.Error("SmartDS should default to 1 port")
	}
	cfg := DefaultConfig(CPUOnly)
	if cfg.Replicas != 3 || cfg.BlockSize != 4096 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.SplitBytes != blockstore.HeaderSize {
		t.Errorf("default split = %d, want header size", cfg.SplitBytes)
	}
}

func newTestServer(t *testing.T, kind Kind) *Server {
	t.Helper()
	env := sim.NewEnv()
	fabric := netsim.NewFabric(env, netsim.DefaultConfig())
	cfg := DefaultConfig(kind)
	cfg.HBM.Capacity = 64 << 20
	return New(env, fabric, cfg)
}

func TestHealthyReplicasRotatesAndSkipsDown(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	s.numStorage = 5
	s.serverDown = make([]bool, 5)
	s.SetServerDown(1, true)

	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		for _, idx := range s.healthyReplicas() {
			counts[idx]++
		}
	}
	if counts[1] != 0 {
		t.Fatalf("down server selected %d times", counts[1])
	}
	// The four healthy servers all get used.
	for _, idx := range []int{0, 2, 3, 4} {
		if counts[idx] == 0 {
			t.Fatalf("healthy server %d never selected", idx)
		}
	}
}

func TestHealthyReplicasShortWhenInsufficient(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	s.numStorage = 3
	s.serverDown = []bool{true, false, false} // only 2 healthy, need 3
	set := s.healthyReplicas()
	if len(set) != 2 {
		t.Fatalf("healthy set = %v, want the 2 surviving servers", set)
	}
	for _, idx := range set {
		if s.serverDown[idx] {
			t.Fatalf("down server in healthy set %v", set)
		}
	}
	// A degraded write through replicasFor counts itself.
	h := blockstore.Header{SegmentID: 9, ChunkID: 9}
	if got := s.replicasFor(h); len(got) != 2 {
		t.Fatalf("degraded fan-out = %v", got)
	}
	if s.Degraded == 0 {
		t.Fatal("degraded write not counted")
	}
}

func TestPendingFanInCountsReplies(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	id, pr := s.newPending(3)
	s.completePending(id, -1, blockstore.StatusOK, nil, 0, blockstore.Header{})
	s.completePending(id, -1, blockstore.StatusOK, nil, 0, blockstore.Header{})
	if pr.done.Done() {
		t.Fatal("pending completed early")
	}
	s.completePending(id, -1, blockstore.StatusOK, nil, 0, blockstore.Header{})
	if !pr.done.Done() {
		t.Fatal("pending did not complete after all replies")
	}
	if pr.status != blockstore.StatusOK {
		t.Fatalf("status = %v", pr.status)
	}
	// Stale completion for a finished id is ignored.
	s.completePending(id, -1, blockstore.StatusError, nil, 0, blockstore.Header{})
}

func TestPendingRecordsWorstStatus(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	id, pr := s.newPending(2)
	s.completePending(id, -1, blockstore.StatusOK, nil, 0, blockstore.Header{})
	s.completePending(id, -1, blockstore.StatusCorrupt, nil, 0, blockstore.Header{})
	if pr.status != blockstore.StatusCorrupt {
		t.Fatalf("fan-in status = %v, want Corrupt", pr.status)
	}
}

func TestParseRequestFunctionalAndModeled(t *testing.T) {
	h := blockstore.Header{Op: blockstore.OpWrite, ReqID: 7, OrigLen: 4096}
	block := bytes.Repeat([]byte{0xAB}, 4096)

	// Functional: header + real payload.
	m := &rdma.Message{Data: blockstore.Message(&h, block), Size: float64(blockstore.HeaderSize + 4096)}
	req, ok := parseRequest(m)
	if !ok || req.hdr.ReqID != 7 || req.size != 4096 || req.payload == nil {
		t.Fatalf("functional parse: %+v ok=%v", req, ok)
	}

	// Modeled: header only, size implies the payload.
	m = &rdma.Message{Data: h.Encode(), Size: float64(blockstore.HeaderSize + 4096)}
	req, ok = parseRequest(m)
	if !ok || req.size != 4096 || req.payload != nil {
		t.Fatalf("modeled parse: %+v ok=%v", req, ok)
	}

	// Garbage is rejected.
	if _, ok := parseRequest(&rdma.Message{Data: []byte("short")}); ok {
		t.Fatal("garbage accepted")
	}
	if _, ok := parseRequest(&rdma.Message{Data: nil, Size: 4096}); ok {
		t.Fatal("nil-data message accepted")
	}
}

func TestSoftwareCompressRoundTrips(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	core := s.cores[0]
	block := bytes.Repeat([]byte("compressible "), 400)[:4096]
	req := request{payload: block, size: 4096}
	frame, size := s.softwareCompress(core, req)
	if float64(len(frame)) != size {
		t.Fatalf("frame size mismatch: %d vs %g", len(frame), size)
	}
	got, err := lz4.DecodeFrame(frame)
	if err != nil || !bytes.Equal(got, block) {
		t.Fatalf("software frame corrupt: %v", err)
	}

	// Modeled request uses the configured ratio.
	_, msize := s.softwareCompress(core, request{size: 4096})
	if msize <= 0 || msize >= 4096 {
		t.Fatalf("modeled compressed size %g", msize)
	}
}

func TestConfigValidationPanics(t *testing.T) {
	env := sim.NewEnv()
	fabric := netsim.NewFabric(env, netsim.DefaultConfig())
	cfg := DefaultConfig(CPUOnly)
	cfg.Workers = 1000 // more cores than the pool has
	defer func() {
		if recover() == nil {
			t.Fatal("overclaimed workers did not panic")
		}
	}()
	New(env, fabric, cfg)
}

func TestUnknownKindPanics(t *testing.T) {
	env := sim.NewEnv()
	fabric := netsim.NewFabric(env, netsim.DefaultConfig())
	cfg := DefaultConfig(CPUOnly)
	cfg.Kind = Kind(99)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	New(env, fabric, cfg)
}

func TestMaxU8(t *testing.T) {
	if maxu8(3, 5) != 5 || maxu8(5, 3) != 5 || maxu8(4, 4) != 4 {
		t.Fatal("maxu8 wrong")
	}
}

func TestMaintenanceDefaults(t *testing.T) {
	def := DefaultMaintenanceConfig()
	if def.CompactionInterval <= 0 || def.GCThreshold <= 0 || def.SnapshotInterval <= 0 {
		t.Fatalf("defaults not positive: %+v", def)
	}
}

func TestAccessorsPerKind(t *testing.T) {
	cpu := newTestServer(t, CPUOnly)
	if cpu.NIC() == nil || cpu.Device() != nil || cpu.AccelPCIe() != nil {
		t.Fatal("CPUOnly accessors wrong")
	}
	acc := newTestServer(t, Accel)
	if acc.NIC() == nil || acc.AccelPCIe() == nil {
		t.Fatal("Accel accessors wrong")
	}
	sds := newTestServer(t, SmartDS)
	if sds.Device() == nil || sds.NIC() != nil {
		t.Fatal("SmartDS accessors wrong")
	}
	if sds.CPUPool() == nil {
		t.Fatal("CPU pool missing")
	}
	if sds.Kind() != SmartDS || sds.Config().Kind != SmartDS {
		t.Fatal("kind accessors wrong")
	}
}

func TestPlacementStableAcrossWritesAndReads(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	s.numStorage = 8
	s.serverDown = make([]bool, 8)
	h := blockstore.Header{SegmentID: 3, ChunkID: 7}
	set1 := s.replicasFor(h)
	// Later writes to the same chunk reuse the same replica set even as
	// other chunks rotate the allocator.
	for i := 0; i < 10; i++ {
		s.replicasFor(blockstore.Header{SegmentID: uint64(i), ChunkID: uint32(i)})
	}
	set2 := s.replicasFor(h)
	if len(set1) != 3 || len(set2) != 3 {
		t.Fatalf("replica sets: %v %v", set1, set2)
	}
	for i := range set1 {
		if set1[i] != set2[i] {
			t.Fatalf("placement not stable: %v vs %v", set1, set2)
		}
	}
	// Reads target members of the set.
	seen := map[int]bool{}
	for i := 0; i < 12; i++ {
		idx, ok := s.readReplicaFor(h)
		if !ok {
			t.Fatal("healthy chunk reported unroutable")
		}
		found := false
		for _, m := range set1 {
			if m == idx {
				found = true
			}
		}
		if !found {
			t.Fatalf("read targeted non-replica %d (set %v)", idx, set1)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("reads not balanced across replicas: %v", seen)
	}
}

func TestPlacementFailoverSubstitutes(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	s.numStorage = 5
	s.serverDown = make([]bool, 5)
	h := blockstore.Header{SegmentID: 1, ChunkID: 1}
	orig := append([]int(nil), s.replicasFor(h)...)
	s.SetServerDown(orig[1], true)
	repl := s.replicasFor(h)
	for _, idx := range repl {
		if idx == orig[1] {
			t.Fatalf("down server still in replica set: %v", repl)
		}
		if s.serverDown[idx] {
			t.Fatalf("replica set contains a down server: %v", repl)
		}
	}
	// Reads avoid the down server too.
	for i := 0; i < 6; i++ {
		idx, ok := s.readReplicaFor(h)
		if !ok {
			t.Fatal("chunk with healthy replicas reported unroutable")
		}
		if s.serverDown[idx] {
			t.Fatalf("read targeted down server %d", idx)
		}
	}
}

func TestReadReplicaUnknownChunkFallsBack(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	s.numStorage = 4
	s.serverDown = make([]bool, 4)
	idx, ok := s.readReplicaFor(blockstore.Header{SegmentID: 42, ChunkID: 42})
	if !ok || idx < 0 || idx >= 4 {
		t.Fatalf("fallback index %d ok=%v", idx, ok)
	}
}

func TestAllReplicasDownReportsUnroutable(t *testing.T) {
	s := newTestServer(t, CPUOnly)
	s.numStorage = 4
	s.serverDown = make([]bool, 4)
	h := blockstore.Header{SegmentID: 2, ChunkID: 2}
	set := s.replicasFor(h)
	for _, idx := range set {
		s.serverDown[idx] = true
	}
	// Substitution rescues the chunk while a healthy server remains
	// outside the original set.
	if repl := s.replicasFor(h); len(repl) == 0 {
		t.Fatalf("substitution failed with a spare server: %v", repl)
	}
	// With every server down, both paths degrade gracefully.
	for i := range s.serverDown {
		s.serverDown[i] = true
	}
	if _, ok := s.readReplicaFor(h); ok {
		t.Fatal("fully-down chunk reported routable")
	}
	if set := s.replicasFor(h); set != nil {
		t.Fatalf("fully-down write got replicas %v", set)
	}
	if s.Unroutable == 0 {
		t.Fatal("unroutable requests not counted")
	}
}
