package middletier

import (
	"bytes"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/storage"
)

// Maintenance services (paper §2.2.3): besides serving I/O, every
// middle-tier server runs LSM-tree compaction over retained write
// buffers, disk garbage collection, and snapshotting. These compete
// with the real-time path for CPU and — critically for §5.3 — for
// host memory bandwidth.

// MaintenanceConfig tunes the background services.
type MaintenanceConfig struct {
	// CompactionInterval is how often the compaction service scans the
	// retained write buffers.
	CompactionInterval float64
	// CompactionBytes is how much buffered data each pass rewrites
	// (reads + writes host memory and burns CPU).
	CompactionBytes float64
	// CompactionCPUTime is the core time per pass.
	CompactionCPUTime float64
	// GCInterval and GCThreshold drive storage-side garbage collection:
	// when a storage server's garbage ratio exceeds the threshold, the
	// service triggers ChunkStore.Compact.
	GCInterval  float64
	GCThreshold float64
	// SnapshotInterval drives periodic snapshots (metadata-only pass).
	SnapshotInterval float64
	SnapshotCPUTime  float64
}

// DefaultMaintenanceConfig returns modest background load.
func DefaultMaintenanceConfig() MaintenanceConfig {
	return MaintenanceConfig{
		CompactionInterval: 10e-3,
		CompactionBytes:    4 << 20,
		CompactionCPUTime:  500e-6,
		GCInterval:         50e-3,
		GCThreshold:        0.5,
		SnapshotInterval:   100e-3,
		SnapshotCPUTime:    200e-6,
	}
}

// Maintenance is the running service set.
type Maintenance struct {
	s       *Server
	cfg     MaintenanceConfig
	running bool

	CompactionPasses uint64
	GCPasses         uint64
	Snapshots        uint64
	BytesCompacted   float64
	BytesReclaimed   int64
	SnapshotBytes    int64 // compressed snapshot image bytes produced
	SnapshotRecords  int
}

// StartMaintenance launches the background services on dedicated
// cores. They run until StopMaintenance.
func (s *Server) StartMaintenance(cfg MaintenanceConfig, servers []*storage.Server) *Maintenance {
	def := DefaultMaintenanceConfig()
	if cfg.CompactionInterval <= 0 {
		cfg.CompactionInterval = def.CompactionInterval
	}
	if cfg.CompactionBytes <= 0 {
		cfg.CompactionBytes = def.CompactionBytes
	}
	if cfg.CompactionCPUTime <= 0 {
		cfg.CompactionCPUTime = def.CompactionCPUTime
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = def.GCInterval
	}
	if cfg.GCThreshold <= 0 {
		cfg.GCThreshold = def.GCThreshold
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = def.SnapshotInterval
	}
	if cfg.SnapshotCPUTime <= 0 {
		cfg.SnapshotCPUTime = def.SnapshotCPUTime
	}
	m := &Maintenance{s: s, cfg: cfg, running: true}

	// Compaction: rewrite retained buffers through host memory, then
	// persist the compacted result on the storage servers (paper
	// §2.2.3: "the result of the compaction is sent to remote storage
	// servers for persistence").
	compCore, err := s.cpu.Claim()
	if err == nil {
		s.env.Go("mt.compaction", func(p *sim.Proc) {
			var seq uint32
			for m.running {
				p.Sleep(cfg.CompactionInterval)
				if !m.running {
					break
				}
				compCore.Work(p, cfg.CompactionCPUTime)
				s.Mem.Read(p, cfg.CompactionBytes)
				s.Mem.Write(p, cfg.CompactionBytes)
				// Ship the compacted run to the replicas of a dedicated
				// maintenance chunk. Compaction output is already
				// compressed data, so it goes out as-is.
				seq++
				hdr := blockstore.Header{
					Op:         blockstore.OpReplicate,
					Flags:      blockstore.FlagCompressed,
					SegmentID:  ^uint64(0), // maintenance namespace
					ChunkID:    seq,
					PayloadLen: uint32(cfg.CompactionBytes),
				}
				// Size the pending entry to the actual fan-out: under
				// degraded mode replicasFor can return fewer servers than
				// the replication factor, and a pending registered for the
				// full factor would then never complete and wedge the
				// compaction loop for the rest of the run.
				var set []int
				if s.numStorage > 0 {
					set = s.replicasFor(hdr)
				}
				if len(set) > 0 {
					repID, pr := s.newPending(len(set))
					hdr.ReqID = repID
					for _, idx := range set {
						s.sendMaintenance(hdr, idx, cfg.CompactionBytes)
					}
					p.Wait(pr.done)
				}
				m.CompactionPasses++
				m.BytesCompacted += cfg.CompactionBytes
			}
			compCore.Release()
		})
	}

	// Garbage collection over the storage servers.
	s.env.Go("mt.gc", func(p *sim.Proc) {
		for m.running {
			p.Sleep(cfg.GCInterval)
			if !m.running {
				break
			}
			for _, srv := range servers {
				if srv.Store().GarbageRatio() >= cfg.GCThreshold {
					m.BytesReclaimed += srv.Store().Compact()
					m.GCPasses++
				}
			}
		}
	})

	// Snapshots: periodically capture a real compressed image of one
	// storage server's live records (round-robin across servers). The
	// image lands in the middle tier's host memory.
	snapCore, err := s.cpu.Claim()
	if err == nil {
		s.env.Go("mt.snapshot", func(p *sim.Proc) {
			next := 0
			for m.running {
				p.Sleep(cfg.SnapshotInterval)
				if !m.running {
					break
				}
				snapCore.Work(p, cfg.SnapshotCPUTime)
				if len(servers) > 0 {
					srv := servers[next%len(servers)]
					next++
					var img bytes.Buffer
					n, err := srv.Store().Snapshot(&img, lz4.LevelFast)
					if err == nil {
						m.SnapshotRecords += n
						m.SnapshotBytes += int64(img.Len())
						// The image crosses the network into host memory.
						s.Mem.Write(p, float64(img.Len()))
					}
				}
				m.Snapshots++
			}
			snapCore.Release()
		})
	}
	return m
}

// Stop winds the services down after their current sleep.
func (m *Maintenance) Stop() { m.running = false }
