package middletier

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AckSet is the wire snapshot of one quorum fan-out's ack accounting:
// which attempt it was, how many replies were expected, how many OK
// acks the quorum needed, and the per-reply statuses collected so far.
// The quorum replicator emits it (hex) in replicate-timeout trace
// events so a stuck quorum is diagnosable from the trace alone, and the
// decoder is a fuzz target (FuzzAckSetDecode): it parses bytes straight
// out of trace files, so it must never panic or over-allocate on
// corrupt input.
type AckSet struct {
	RepID    uint64
	Attempt  uint32
	Expected uint32
	Need     uint32
	Statuses []uint8
}

// maxAckSetStatuses bounds the decoded status list. Real fan-outs are
// replication-factor sized (3..5); the cap only exists so a corrupt
// length prefix cannot make Decode allocate unbounded memory.
const maxAckSetStatuses = 1024

// errBadAckSet reports a truncated or corrupt ack-set encoding.
var errBadAckSet = errors.New("middletier: malformed ack set")

// Encode serializes the ack set (varint fields, length-prefixed
// statuses).
func (a *AckSet) Encode() []byte {
	b := make([]byte, 0, 5*binary.MaxVarintLen64+len(a.Statuses))
	b = binary.AppendUvarint(b, a.RepID)
	b = binary.AppendUvarint(b, uint64(a.Attempt))
	b = binary.AppendUvarint(b, uint64(a.Expected))
	b = binary.AppendUvarint(b, uint64(a.Need))
	b = binary.AppendUvarint(b, uint64(len(a.Statuses)))
	b = append(b, a.Statuses...)
	return b
}

// DecodeAckSet parses an encoded ack set, rejecting truncated input,
// trailing garbage, oversized fields, and implausible status counts.
func DecodeAckSet(b []byte) (AckSet, error) {
	var a AckSet
	u32 := func() (uint32, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 || v > 1<<32-1 {
			return 0, errBadAckSet
		}
		b = b[n:]
		return uint32(v), nil
	}
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return AckSet{}, errBadAckSet
	}
	b = b[n:]
	a.RepID = v
	var err error
	if a.Attempt, err = u32(); err != nil {
		return AckSet{}, err
	}
	if a.Expected, err = u32(); err != nil {
		return AckSet{}, err
	}
	if a.Need, err = u32(); err != nil {
		return AckSet{}, err
	}
	count, err := u32()
	if err != nil {
		return AckSet{}, err
	}
	if count > maxAckSetStatuses {
		return AckSet{}, fmt.Errorf("middletier: ack set claims %d statuses: %w", count, errBadAckSet)
	}
	if uint32(len(b)) != count {
		return AckSet{}, errBadAckSet
	}
	if count > 0 {
		a.Statuses = append([]uint8(nil), b...)
	}
	return a, nil
}

// encodeAckSet snapshots a pending fan-out for trace emission.
func encodeAckSet(repID uint64, attempt int, pr *pendingReq) []byte {
	a := AckSet{
		RepID:    repID,
		Attempt:  uint32(attempt),
		Expected: uint32(pr.expected),
		Need:     uint32(pr.need),
	}
	for _, st := range pr.acks {
		a.Statuses = append(a.Statuses, uint8(st))
	}
	return a.Encode()
}
