package middletier

import (
	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/trace"
)

// The BF2 path (paper §3.4, Figure 1d): messages land in the SoC's
// DRAM, Arm cores parse, the on-board engine compresses, and results
// leave from device memory. The host is never involved, but the SoC's
// weak DRAM and 40 Gbps engine bound throughput. Payloads traverse
// device memory four times: network-in write, engine read, engine
// write, network-out read (≈3.5x effective with compression).

// bf2Recv handles a client message arriving on a BF2 port.
func (s *Server) bf2Recv(qp *rdma.QP, m *rdma.Message) {
	req, ok := parseRequest(m)
	if !ok {
		return
	}
	s.env.Go("bf2.req", func(p *sim.Proc) {
		tid := traceID(req.hdr)
		tr := s.cfg.Trace.ForRequest(tid)
		tr.End(p.Now(), "net", "request", tid)
		stageBegin(tr, p.Now(), "mt", "parse", tid)
		// Network-in: the message is written into SoC DRAM.
		s.bf2Mem.Access(p, m.Size)
		switch req.hdr.Op {
		case blockstore.OpWrite:
			s.bf2Write(p, qp, req)
		case blockstore.OpRead:
			s.bf2Read(p, qp, req)
		}
	})
}

// bf2StorageReply charges the inbound DRAM write before routing. from
// is the global storage-server index the owning connection serves.
func (s *Server) bf2StorageReply(from int, m *rdma.Message) {
	s.env.Go("bf2.ack", func(p *sim.Proc) {
		s.bf2Mem.Access(p, m.Size)
		s.onStorageReplyFrom(from, m)
	})
}

func (s *Server) bf2Write(p *sim.Proc, clientQP *rdma.QP, req request) {
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	arm := s.nextBF2Core()
	arm.Parse(p)
	tr.End(p.Now(), "mt", "parse", tid)
	s.BytesIn += req.size

	bypass := req.hdr.Flags&blockstore.FlagLatencySensitive != 0
	var frame []byte
	var frameSize float64
	flags := uint8(0)
	stageBegin(tr, p.Now(), "mt", "compress", tid)
	switch {
	case bypass:
		s.BypassHits++
		frame = req.payload
		frameSize = req.size
	case !s.engineAvailable(0):
		// The SoC engine failed: store raw — the Arm cores have no
		// spare cycles for software LZ4, so availability wins.
		s.EngineFallbacks++
		frame = req.payload
		frameSize = req.size
	default:
		// The engine reads and writes SoC DRAM itself (device.Engine
		// charges both inside Run).
		e0 := p.Now()
		if req.payload != nil {
			out, err := s.bf2Engine.Compress(p, req.payload, s.cfg.Level)
			if err != nil {
				panic(err)
			}
			frame = lz4.WrapFrame(req.payload, out)
			frameSize = float64(len(frame))
		} else {
			s.bf2Engine.Run(p, req.size, req.size/s.cfg.ModelRatio)
			frameSize = req.size / s.cfg.ModelRatio
		}
		// Engine occupancy inside the compress stage (queueing for the
		// engine slot is inside Run; the device-track job.qwait span
		// carries the split).
		if e1 := p.Now(); tr != nil && e1 > e0 {
			tr.Span(e0, e1, "mt", "compress.engine", tid, tid, "mt", "compress", trace.KindService, "")
		}
		flags = blockstore.FlagCompressed
	}
	tr.End(p.Now(), "mt", "compress", tid)

	// Which port's storage QPs: same port the client is bound to.
	path := s.bf2PathOf(clientQP)
	stageBegin(tr, p.Now(), "mt", "replicate", tid)
	version := s.nextWriteVersion()
	status, stored := s.replicateWait(p, req.hdr, frameSize, func(repID uint64, set []int) {
		rh := blockstore.Header{
			Op: blockstore.OpReplicate, Flags: flags, ReqID: repID,
			VMID: req.hdr.VMID, SegmentID: req.hdr.SegmentID,
			ChunkID: req.hdr.ChunkID, BlockOff: req.hdr.BlockOff,
			OrigLen: uint32(req.size), CRC: req.hdr.CRC, Version: version,
		}
		var msg []byte
		if frame != nil {
			msg = blockstore.Message(&rh, frame)
		} else {
			rh.PayloadLen = uint32(frameSize)
			msg = rh.Encode()
		}
		msgSize := blockstore.HeaderSize + frameSize
		for _, idx := range set {
			qp := s.storagePaths[path][idx]
			// Network-out: read the frame from SoC DRAM per replica.
			s.bf2Mem.Access(p, msgSize)
			qp.SendSized(msg, msgSize)
		}
	})
	tr.End(p.Now(), "mt", "replicate", tid)

	stageBegin(tr, p.Now(), "mt", "ack", tid)
	reply := blockstore.Header{Op: blockstore.OpWriteReply, ReqID: req.hdr.ReqID, Status: status}
	tr.End(p.Now(), "mt", "ack", tid)
	stageBegin(tr, p.Now(), "net", "reply", tid)
	clientQP.Send(reply.Encode())
	s.WritesDone++
	s.BytesStored += frameSize * float64(stored)
}

func (s *Server) bf2Read(p *sim.Proc, clientQP *rdma.QP, req request) {
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	arm := s.nextBF2Core()
	arm.Parse(p)
	tr.End(p.Now(), "mt", "parse", tid)

	path := s.bf2PathOf(clientQP)
	var pr *pendingReq
	if s.cfg.Protocol == ProtoQuorum {
		stageBegin(tr, p.Now(), "mt", "fetch", tid)
		winner, qok := s.quorumFetch(p, req.hdr,
			func(fh blockstore.Header, idx int) {
				s.storagePaths[path][idx].Send(fh.Encode())
			},
			func(rh blockstore.Header, frame []byte, frameSize float64, idx int) {
				var msg []byte
				if frame != nil {
					msg = blockstore.Message(&rh, frame)
				} else {
					rh.PayloadLen = uint32(frameSize)
					msg = rh.Encode()
				}
				msgSize := blockstore.HeaderSize + frameSize
				// Network-out: the repair frame leaves SoC DRAM like any
				// replicate frame.
				s.bf2Mem.Access(p, msgSize)
				s.storagePaths[path][idx].SendSized(msg, msgSize)
			})
		tr.End(p.Now(), "mt", "fetch", tid)
		if !qok {
			reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusError}
			stageBegin(tr, p.Now(), "net", "reply", tid)
			clientQP.Send(reply.Encode())
			s.ReadsDone++
			return
		}
		pr = winner
	} else {
		idx, ok := s.readReplicaFor(req.hdr)
		if !ok {
			reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusError}
			stageBegin(tr, p.Now(), "net", "reply", tid)
			clientQP.Send(reply.Encode())
			s.ReadsDone++
			return
		}
		repID, spr := s.newPending(1)
		fh := blockstore.Header{
			Op: blockstore.OpFetch, ReqID: repID,
			SegmentID: req.hdr.SegmentID, ChunkID: req.hdr.ChunkID, BlockOff: req.hdr.BlockOff,
		}
		stageBegin(tr, p.Now(), "mt", "fetch", tid)
		s.storagePaths[path][idx].Send(fh.Encode())
		p.Wait(spr.done)
		tr.End(p.Now(), "mt", "fetch", tid)
		pr = spr
	}

	reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: pr.status}
	if pr.status != blockstore.StatusOK {
		stageBegin(tr, p.Now(), "net", "reply", tid)
		clientQP.Send(reply.Encode())
		s.ReadsDone++
		return
	}
	stageBegin(tr, p.Now(), "mt", "decompress", tid)
	blockSize := float64(s.cfg.BlockSize)
	var block []byte
	compressed := pr.hdr.Flags&blockstore.FlagCompressed != 0
	switch {
	case pr.payload != nil && !compressed:
		block = pr.payload
		blockSize = float64(len(block))
	case pr.payload != nil:
		var err error
		block, err = lz4.DecodeFrame(pr.payload)
		if err != nil {
			tr.End(p.Now(), "mt", "decompress", tid)
			reply.Status = blockstore.StatusCorrupt
			stageBegin(tr, p.Now(), "net", "reply", tid)
			clientQP.Send(reply.Encode())
			s.ReadsDone++
			return
		}
		blockSize = float64(len(block))
	case !compressed:
		blockSize = pr.size
	}
	if compressed {
		// Engine decompression timing (reads the frame, writes the block).
		s.bf2Engine.Run(p, pr.size, blockSize)
	}
	// Network-out read of the reply payload.
	s.bf2Mem.Access(p, blockSize)
	tr.End(p.Now(), "mt", "decompress", tid)
	stageBegin(tr, p.Now(), "net", "reply", tid)
	if block != nil {
		clientQP.Send(blockstore.Message(&reply, block))
	} else {
		reply.PayloadLen = uint32(blockSize)
		clientQP.SendSized(reply.Encode(), blockstore.HeaderSize+blockSize)
	}
	s.ReadsDone++
}

// bf2PathOf maps a client QP to its port index.
func (s *Server) bf2PathOf(qp *rdma.QP) int {
	addr := qp.ID().Addr
	for i, st := range s.bf2Stacks {
		if st.Addr() == addr {
			return i
		}
	}
	return 0
}
