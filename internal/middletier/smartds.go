package middletier

import (
	"fmt"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/core"
	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/trace"
)

// The SmartDS path (paper §4, Listing 1): recv descriptors split each
// incoming message — 64-byte header to host memory, payload to HBM.
// The host CPU runs only the flexible control logic (parse, placement
// decisions, descriptor management); the per-port hardware engine
// compresses payloads entirely inside device memory; the Assemble
// module gathers header+payload into outgoing replicate messages.

// completionCPUTime is the host cost of handling one completion event
// (poll + bookkeeping); the paper budgets two host cores per port.
const completionCPUTime = 50e-9

// sdsClientConn is one client connection: a QP plus its descriptor
// pool.
type sdsClientConn struct {
	s     *Server
	inst  *core.Instance
	qp    *rdma.QP
	hbufs []*core.HostBuf
	dbufs []*device.Buffer
}

// sdsClientQP attaches a new client connection to the given port.
func (s *Server) sdsClientQP(portIdx int) *rdma.QP {
	inst, err := s.sds.OpenRoCEInstance(portIdx)
	if err != nil {
		panic(err)
	}
	conn := &sdsClientConn{s: s, inst: inst, qp: inst.CreateQP()}
	maxPayload := s.cfg.BlockSize + 1024
	for i := 0; i < s.cfg.SmartDSInflight; i++ {
		dbuf, err := s.sds.DevAlloc(maxPayload)
		if err != nil {
			panic(fmt.Sprintf("middletier: HBM exhausted sizing descriptor pool: %v", err))
		}
		conn.hbufs = append(conn.hbufs, s.sds.HostAlloc(s.cfg.SplitBytes))
		conn.dbufs = append(conn.dbufs, dbuf)
	}
	for i := range conn.hbufs {
		conn.post(i)
	}
	return conn.qp
}

// post arms descriptor slot i and chains its completion handler.
func (c *sdsClientConn) post(i int) {
	comp := c.inst.DevMixedRecv(c.qp, c.hbufs[i], c.s.cfg.SplitBytes, c.dbufs[i], c.dbufs[i].Size())
	comp.Event().OnTrigger(func(v interface{}) {
		res := v.(core.Result)
		c.s.env.Go("sds.req", func(p *sim.Proc) {
			// The descriptor is rearmed as soon as its payload buffer has
			// been consumed (right after compression for ordinary writes),
			// which keeps the receive pipeline deep during the replication
			// round trip.
			reposted := false
			repost := func() {
				if !reposted {
					reposted = true
					c.post(i)
				}
			}
			c.handle(p, i, res, repost)
			repost()
		})
	})
}

// handle serves one split request; it returns once the descriptor's
// buffers can be reused.
func (c *sdsClientConn) handle(p *sim.Proc, i int, res core.Result, repost func()) {
	s := c.s
	if res.Err != nil {
		return
	}
	hdr, err := blockstore.Decode(c.hbufs[i].Bytes())
	if err != nil {
		return
	}
	req := request{hdr: hdr, size: float64(res.Size)}
	if res.Placed > 0 {
		req.payload = c.dbufs[i].Bytes()[:res.Placed]
	}
	// With an oversized split (ablation), part of the payload landed in
	// host memory; account for it in the request size.
	if extra := s.cfg.SplitBytes - blockstore.HeaderSize; extra > 0 &&
		hdr.Op == blockstore.OpWrite && hdr.OrigLen > 0 {
		req.size = float64(hdr.OrigLen)
		req.hostResident = float64(extra)
		if req.hostResident > req.size {
			req.hostResident = req.size
		}
		req.payload = nil // functional path requires the header-only split
	}
	tid := traceID(hdr)
	// Resolve the head-sampling decision once; an unsampled request gets
	// a nil tracer and every span call below is a free no-op.
	tr := s.cfg.Trace.ForRequest(tid)
	tr.End(p.Now(), "net", "request", tid)
	stageBegin(tr, p.Now(), "mt", "parse", tid)
	core := s.nextCore()
	core.Parse(p)
	tr.End(p.Now(), "mt", "parse", tid)

	switch hdr.Op {
	case blockstore.OpWrite:
		s.sdsWrite(p, c, i, req, repost)
	case blockstore.OpRead:
		repost() // reads carry no payload
		s.sdsRead(p, c, req)
	}
}

// sdsWrite serves one write: optional engine compression in HBM, then
// assembled replicate messages, then the client ack.
func (s *Server) sdsWrite(p *sim.Proc, c *sdsClientConn, slot int, req request, repost func()) {
	s.BytesIn += req.size
	inst := c.inst
	bypass := req.hdr.Flags&blockstore.FlagLatencySensitive != 0
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)

	var payloadBuf *device.Buffer
	var payloadSize float64
	var freePayload bool
	flags := uint8(0)

	port := inst.Index()
	stageBegin(tr, p.Now(), "mt", "compress", tid)
	switch {
	case bypass:
		s.BypassHits++
		payloadBuf = c.dbufs[slot]
		payloadSize = req.size
	case !s.engineAvailable(port) && s.altEnginePort(port) < 0:
		// Every port engine is down: store raw. The descriptor's HBM
		// buffer carries the payload out, exactly like bypass.
		s.EngineFallbacks++
		payloadBuf = c.dbufs[slot]
		payloadSize = req.size
	default:
		// Compress on this port's engine, or reroute to a surviving
		// port's engine through the shared HBM when ours is down.
		engInst := inst
		if !s.engineAvailable(port) {
			alt := s.altEnginePort(port)
			altInst, err := s.sds.OpenRoCEInstance(alt)
			if err != nil {
				panic(err)
			}
			engInst = altInst
			s.EngineReroutes++
		}
		dst, err := s.sds.DevAlloc(lz4.CompressBound(s.cfg.BlockSize))
		if err != nil {
			panic(fmt.Sprintf("middletier: HBM exhausted for compression output: %v", err))
		}
		freePayload = true
		if req.hostResident > 0 {
			// Fetch the host-resident payload prefix back into HBM so
			// the engine sees a contiguous block — the round trip an
			// oversized split costs.
			fetch := s.sds.PCIe().StartDMA(pcie.H2D, req.hostResident)
			p.Wait(s.Mem.StartRead(req.hostResident))
			p.Wait(fetch)
			p.Wait(s.sds.HBM().StartAccess(req.hostResident))
		}
		e0 := p.Now()
		if req.payload != nil {
			comp := engInst.DevFunc(c.dbufs[slot], len(req.payload), dst, s.cfg.Level)
			res := core.Poll(p, comp)
			if res.Err != nil {
				panic(res.Err)
			}
			// Wrap as a frame in place: the storage server persists
			// frames. Rebuild dst to hold the frame bytes.
			frame := lz4.WrapFrame(req.payload, dst.Bytes()[:res.Size])
			copy(dst.Bytes(), frame)
			payloadSize = float64(len(frame))
		} else {
			engInst.Engine().Run(p, req.size, req.size/s.cfg.ModelRatio)
			payloadSize = req.size/s.cfg.ModelRatio + lz4.FrameHeaderSize
		}
		// Engine occupancy inside the compress stage; the device-track
		// job.qwait/job.run spans carry the slot-wait split.
		if e1 := p.Now(); tr != nil && e1 > e0 {
			tr.Span(e0, e1, "mt", "compress.engine", tid, tid, "mt", "compress", trace.KindService, "")
		}
		payloadBuf = dst
		flags = blockstore.FlagCompressed
		repost() // the descriptor's payload buffer is consumed
	}
	tr.End(p.Now(), "mt", "compress", tid)

	stageBegin(tr, p.Now(), "mt", "replicate", tid)
	version := s.nextWriteVersion()
	status, stored := s.replicateWait(p, req.hdr, payloadSize, func(repID uint64, set []int) {
		rh := blockstore.Header{
			Op: blockstore.OpReplicate, Flags: flags, ReqID: repID,
			VMID: req.hdr.VMID, SegmentID: req.hdr.SegmentID,
			ChunkID: req.hdr.ChunkID, BlockOff: req.hdr.BlockOff,
			OrigLen: uint32(req.size), CRC: req.hdr.CRC,
			PayloadLen: uint32(payloadSize), Version: version,
		}
		// A fresh header buffer per attempt: the Assemble module copies
		// its bytes asynchronously, so a prior attempt's gather may still
		// be reading the old one.
		a0 := p.Now()
		repHdr := s.sds.HostAlloc(blockstore.HeaderSize)
		copy(repHdr.Bytes(), rh.Encode())
		for _, idx := range set {
			inst.DevMixedSend(s.storagePaths[port][idx], repHdr, blockstore.HeaderSize, payloadBuf, int(payloadSize))
		}
		// The split design's replicate self-time is message assembly
		// (header gather + descriptor posting), not store-and-forward:
		// name it so blame profiles show the shift across designs.
		if a1 := p.Now(); tr != nil && a1 > a0 {
			tr.Span(a0, a1, "mt", "replicate.assemble", tid, tid, "mt", "replicate", trace.KindService, "")
		}
	})
	tr.End(p.Now(), "mt", "replicate", tid)
	stageBegin(tr, p.Now(), "mt", "ack", tid)
	s.nextCore().Work(p, completionCPUTime*float64(maxInt(stored, 1)))

	if freePayload {
		payloadBuf.Free()
	}

	reply := blockstore.Header{Op: blockstore.OpWriteReply, ReqID: req.hdr.ReqID, Status: status}
	replyHdr := s.sds.HostAlloc(blockstore.HeaderSize)
	copy(replyHdr.Bytes(), reply.Encode())
	tr.End(p.Now(), "mt", "ack", tid)
	stageBegin(tr, p.Now(), "net", "reply", tid)
	inst.DevMixedSend(c.qp, replyHdr, blockstore.HeaderSize, nil, 0)
	s.nextCore().Work(p, completionCPUTime)
	s.WritesDone++
	s.BytesStored += payloadSize * float64(stored)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sdsRead serves one read: fetch the frame from a storage server into
// HBM, engine-decompress it there, and assemble the reply.
func (s *Server) sdsRead(p *sim.Proc, c *sdsClientConn, req request) {
	inst := c.inst
	tid := traceID(req.hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	path := inst.Index()
	var pr *pendingReq
	if s.cfg.Protocol == ProtoQuorum {
		stageBegin(tr, p.Now(), "mt", "fetch", tid)
		winner, qok := s.quorumFetch(p, req.hdr,
			func(fh blockstore.Header, idx int) {
				fetchHdr := s.sds.HostAlloc(blockstore.HeaderSize)
				copy(fetchHdr.Bytes(), fh.Encode())
				inst.DevMixedSend(s.storagePaths[path][idx], fetchHdr, blockstore.HeaderSize, nil, 0)
			},
			func(rh blockstore.Header, frame []byte, frameSize float64, idx int) {
				rh.PayloadLen = uint32(frameSize)
				repHdr := s.sds.HostAlloc(blockstore.HeaderSize)
				copy(repHdr.Bytes(), rh.Encode())
				rbuf, err := s.sds.DevAlloc(maxInt(int(frameSize), 1))
				if err != nil {
					panic(err)
				}
				if frame != nil {
					copy(rbuf.Bytes(), frame)
				}
				comp := inst.DevMixedSend(s.storagePaths[path][idx], repHdr, blockstore.HeaderSize, rbuf, int(frameSize))
				comp.Event().OnTrigger(func(interface{}) { rbuf.Free() })
			})
		s.nextCore().Work(p, completionCPUTime)
		tr.End(p.Now(), "mt", "fetch", tid)
		if !qok {
			reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusError}
			replyHdr := s.sds.HostAlloc(blockstore.HeaderSize)
			copy(replyHdr.Bytes(), reply.Encode())
			stageBegin(tr, p.Now(), "net", "reply", tid)
			inst.DevMixedSend(c.qp, replyHdr, blockstore.HeaderSize, nil, 0)
			s.ReadsDone++
			return
		}
		pr = winner
	} else {
		idx, ok := s.readReplicaFor(req.hdr)
		if !ok {
			reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: blockstore.StatusError}
			replyHdr := s.sds.HostAlloc(blockstore.HeaderSize)
			copy(replyHdr.Bytes(), reply.Encode())
			stageBegin(tr, p.Now(), "net", "reply", tid)
			inst.DevMixedSend(c.qp, replyHdr, blockstore.HeaderSize, nil, 0)
			s.ReadsDone++
			return
		}
		repID, spr := s.newPending(1)
		fh := blockstore.Header{
			Op: blockstore.OpFetch, ReqID: repID,
			SegmentID: req.hdr.SegmentID, ChunkID: req.hdr.ChunkID, BlockOff: req.hdr.BlockOff,
		}
		fetchHdr := s.sds.HostAlloc(blockstore.HeaderSize)
		copy(fetchHdr.Bytes(), fh.Encode())
		stageBegin(tr, p.Now(), "mt", "fetch", tid)
		inst.DevMixedSend(s.storagePaths[path][idx], fetchHdr, blockstore.HeaderSize, nil, 0)
		p.Wait(spr.done)
		s.nextCore().Work(p, completionCPUTime)
		tr.End(p.Now(), "mt", "fetch", tid)
		pr = spr
	}

	reply := blockstore.Header{Op: blockstore.OpReadReply, ReqID: req.hdr.ReqID, Status: pr.status}
	replyHdr := s.sds.HostAlloc(blockstore.HeaderSize)
	if pr.status != blockstore.StatusOK {
		copy(replyHdr.Bytes(), reply.Encode())
		stageBegin(tr, p.Now(), "net", "reply", tid)
		inst.DevMixedSend(c.qp, replyHdr, blockstore.HeaderSize, nil, 0)
		if pr.release != nil {
			pr.release()
		}
		s.ReadsDone++
		return
	}

	stageBegin(tr, p.Now(), "mt", "decompress", tid)
	blockSize := float64(s.cfg.BlockSize)
	compressed := pr.hdr.Flags&blockstore.FlagCompressed != 0
	var block []byte
	if pr.payload != nil {
		if compressed {
			var err error
			block, err = lz4.DecodeFrame(pr.payload)
			if err != nil {
				tr.End(p.Now(), "mt", "decompress", tid)
				reply.Status = blockstore.StatusCorrupt
				copy(replyHdr.Bytes(), reply.Encode())
				stageBegin(tr, p.Now(), "net", "reply", tid)
				inst.DevMixedSend(c.qp, replyHdr, blockstore.HeaderSize, nil, 0)
				if pr.release != nil {
					pr.release()
				}
				s.ReadsDone++
				return
			}
		} else {
			// Stored raw: the fetched bytes are the block.
			block = append([]byte(nil), pr.payload...)
		}
		blockSize = float64(len(block))
	} else if !compressed {
		blockSize = pr.size
	}
	var blockBuf *device.Buffer
	var allocErr error
	if block != nil {
		blockBuf, allocErr = s.sds.DevAlloc(len(block))
	} else {
		blockBuf, allocErr = s.sds.DevAlloc(int(blockSize))
	}
	if allocErr != nil {
		panic(allocErr)
	}
	if block != nil {
		copy(blockBuf.Bytes(), block)
	}
	if compressed {
		// Engine decompression timing inside HBM.
		inst.Engine().Run(p, pr.size, blockSize)
	}
	if pr.release != nil {
		pr.release()
	}
	tr.End(p.Now(), "mt", "decompress", tid)

	reply.PayloadLen = uint32(blockSize)
	copy(replyHdr.Bytes(), reply.Encode())
	stageBegin(tr, p.Now(), "net", "reply", tid)
	comp := inst.DevMixedSend(c.qp, replyHdr, blockstore.HeaderSize, blockBuf, int(blockSize))
	core.Poll(p, comp)
	blockBuf.Free()
	s.ReadsDone++
}

// sdsStorageQP builds the instance-side QP for one storage connection
// plus its ack/fetch-reply descriptor pool. from is the global
// storage-server index this connection is wired to (straggler
// attribution for completePending).
func (s *Server) sdsStorageQP(portIdx, from int) *rdma.QP {
	inst, err := s.sds.OpenRoCEInstance(portIdx)
	if err != nil {
		panic(err)
	}
	qp := inst.CreateQP()
	const ackDepth = 64
	maxFrame := lz4.CompressBound(s.cfg.BlockSize) + lz4.FrameHeaderSize
	for i := 0; i < ackDepth; i++ {
		hbuf := s.sds.HostAlloc(blockstore.HeaderSize)
		dbuf, allocErr := s.sds.DevAlloc(maxFrame)
		if allocErr != nil {
			panic(allocErr)
		}
		s.postAckDesc(inst, qp, from, hbuf, dbuf)
	}
	return qp
}

// postAckDesc arms one storage-reply descriptor. Replicate acks repost
// immediately; fetch replies hand the device buffer to the waiting
// read request and repost on release.
func (s *Server) postAckDesc(inst *core.Instance, qp *rdma.QP, from int, hbuf *core.HostBuf, dbuf *device.Buffer) {
	comp := inst.DevMixedRecv(qp, hbuf, blockstore.HeaderSize, dbuf, dbuf.Size())
	comp.Event().OnTrigger(func(v interface{}) {
		res := v.(core.Result)
		if res.Err != nil {
			s.postAckDesc(inst, qp, from, hbuf, dbuf)
			return
		}
		h, err := blockstore.Decode(hbuf.Bytes())
		if err != nil {
			s.postAckDesc(inst, qp, from, hbuf, dbuf)
			return
		}
		switch h.Op {
		case blockstore.OpReplicateReply:
			s.completePending(h.ReqID, from, h.Status, nil, 0, h)
			s.postAckDesc(inst, qp, from, hbuf, dbuf)
		case blockstore.OpFetchReply:
			var payload []byte
			if res.Placed > 0 {
				payload = dbuf.Bytes()[:res.Placed]
			}
			if pr, ok := s.pending[h.ReqID]; ok {
				pr.release = func() { s.postAckDesc(inst, qp, from, hbuf, dbuf) }
				s.completePending(h.ReqID, from, h.Status, payload, float64(res.Size), h)
			} else {
				// Stale fetch reply (its read already timed out and moved
				// on): count it like any other stale ack, repost immediately.
				s.StaleAcks++
				s.postAckDesc(inst, qp, from, hbuf, dbuf)
			}
		default:
			s.postAckDesc(inst, qp, from, hbuf, dbuf)
		}
	})
}
