package middletier

import (
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/sim"
)

// fakeHost drives a Replicator in isolation: a scripted transport
// standing in for the Server. Each send is answered by the test's
// script (immediate acks, delayed acks, or silence), and the pending
// accounting mirrors Server.completePending so stale-ack semantics
// match the real host.
type fakeHost struct {
	env     *sim.Env
	sets    [][]int // replicaSet per attempt; last entry repeats
	calls   int
	timeout float64
	nrep    int

	cur     []int // currentSet's answer (nil = placement unknown)
	pending map[uint64]*pendingReq
	nextID  uint64

	sends   [][]int  // every send's replica set, in order
	sendIDs []uint64 // the repID each send carried
	sendAt  []float64
	retries int
	stale   int
	emits   []string

	// onSend scripts the transport's response to one send.
	onSend func(f *fakeHost, repID uint64, set []int)
}

func newFakeHost(env *sim.Env, timeout float64, sets ...[]int) *fakeHost {
	return &fakeHost{
		env: env, sets: sets, timeout: timeout, nrep: 3,
		pending: make(map[uint64]*pendingReq),
	}
}

func (f *fakeHost) replicaSet(blockstore.Header) []int {
	i := f.calls
	if i >= len(f.sets) {
		i = len(f.sets) - 1
	}
	f.calls++
	return f.sets[i]
}

func (f *fakeHost) begin(expected, need int) (uint64, *pendingReq) {
	f.nextID++
	pr := &pendingReq{remaining: expected, expected: expected, need: need,
		done: f.env.NewEvent(), status: blockstore.StatusOK}
	f.pending[f.nextID] = pr
	return f.nextID, pr
}

// cur scripts currentSet; nil means "placement unknown" (no resync).
func (f *fakeHost) currentSet(blockstore.Header) []int { return f.cur }

func (f *fakeHost) abandon(repID uint64)                      { delete(f.pending, repID) }
func (f *fakeHost) noteWait(blockstore.Header, *pendingReq)   {}
func (f *fakeHost) replicateTimeout() float64                 { return f.timeout }
func (f *fakeHost) replicas() int                             { return f.nrep }
func (f *fakeHost) noteRetry(frameSize float64, replicas int) { f.retries++ }
func (f *fakeHost) emit(now float64, event, detail string) {
	f.emits = append(f.emits, event+" "+detail)
}

func (f *fakeHost) send(repID uint64, set []int) {
	cp := append([]int(nil), set...)
	f.sends = append(f.sends, cp)
	f.sendIDs = append(f.sendIDs, repID)
	f.sendAt = append(f.sendAt, float64(f.env.Now()))
	if f.onSend != nil {
		f.onSend(f, repID, cp)
	}
}

// ack mirrors Server.completePending's accounting (need countdown,
// worst-status, stale acks for unknown ids).
func (f *fakeHost) ack(repID uint64, st blockstore.Status) {
	pr, ok := f.pending[repID]
	if !ok {
		f.stale++
		return
	}
	if st == blockstore.StatusOK {
		pr.need--
	} else {
		pr.status = st
	}
	pr.remaining--
	if pr.need <= 0 {
		pr.status = blockstore.StatusOK
		delete(f.pending, repID)
		pr.done.Trigger(nil)
		return
	}
	if pr.remaining <= 0 {
		delete(f.pending, repID)
		pr.done.Trigger(nil)
	}
}

// ackAfter schedules an ack d seconds from now.
func (f *fakeHost) ackAfter(d float64, repID uint64, st blockstore.Status) {
	f.env.After(d, func() { f.ack(repID, st) })
}

// runReplicate drives one Replicate call to completion in virtual time.
func runReplicate(t *testing.T, env *sim.Env, r Replicator, f *fakeHost) (blockstore.Status, int) {
	t.Helper()
	var st blockstore.Status
	var stored int
	finished := false
	env.Go("test.replicate", func(p *sim.Proc) {
		st, stored = r.Replicate(f, p, blockstore.Header{SegmentID: 1, ChunkID: 1}, 4096, f.send)
		finished = true
	})
	env.Run(1)
	if !finished {
		t.Fatal("Replicate never returned")
	}
	return st, stored
}

func TestReplicatorQuorumSizes(t *testing.T) {
	cases := []struct {
		r         Replicator
		n, wq, rq int
	}{
		{primaryReplicator{}, 3, 3, 1},
		{chainReplicator{}, 3, 3, 1},
		{quorumReplicator{}, 3, 2, 2},
		{quorumReplicator{}, 5, 3, 3},
		{quorumReplicator{}, 4, 3, 3},
	}
	for _, c := range cases {
		if got := c.r.WriteQuorum(c.n); got != c.wq {
			t.Errorf("%s.WriteQuorum(%d) = %d, want %d", c.r.Name(), c.n, got, c.wq)
		}
		if got := c.r.ReadQuorum(c.n); got != c.rq {
			t.Errorf("%s.ReadQuorum(%d) = %d, want %d", c.r.Name(), c.n, got, c.rq)
		}
		// Every write quorum must intersect every read quorum.
		if c.r.WriteQuorum(c.n)+c.r.ReadQuorum(c.n) <= c.n {
			t.Errorf("%s: WQ+RQ = %d does not intersect at n=%d",
				c.r.Name(), c.r.WriteQuorum(c.n)+c.r.ReadQuorum(c.n), c.n)
		}
	}
}

func TestPrimaryReplicatorAcksWhenAllReply(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 1e-3, []int{0, 1, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		for range set {
			f.ackAfter(10e-6, repID, blockstore.StatusOK)
		}
	}
	st, stored := runReplicate(t, env, primaryReplicator{}, f)
	if st != blockstore.StatusOK || stored != 3 {
		t.Fatalf("status=%v stored=%d, want OK/3", st, stored)
	}
	if len(f.sends) != 1 || f.retries != 0 || f.stale != 0 {
		t.Fatalf("sends=%v retries=%d stale=%d", f.sends, f.retries, f.stale)
	}
}

func TestPrimaryReplicatorWorstStatusWins(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 0, []int{0, 1, 2}) // no timeout: pure fan-in
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		f.ackAfter(10e-6, repID, blockstore.StatusOK)
		f.ackAfter(20e-6, repID, blockstore.StatusCorrupt)
		f.ackAfter(30e-6, repID, blockstore.StatusOK)
	}
	st, _ := runReplicate(t, env, primaryReplicator{}, f)
	if st != blockstore.StatusCorrupt {
		t.Fatalf("status = %v, want Corrupt", st)
	}
}

// TestPrimaryReplicatorRetryIgnoresStaleAck pins the stale-ack
// regression: a replica that was only slow — not dead — acks after the
// attempt timed out and a retry began under a fresh repID. That
// straggler must count as stale, never toward the retry's fan-in
// (double-counting it would ack the client with the frame on fewer
// replicas than the protocol promised).
func TestPrimaryReplicatorRetryIgnoresStaleAck(t *testing.T) {
	env := sim.NewEnv()
	// Attempt 1 fans out to {0,1,2}: two acks arrive, the third is slow
	// and lands only after the 1ms timeout fired and attempt 2 (refreshed
	// set {0,2,3}) is in flight.
	f := newFakeHost(env, 1e-3, []int{0, 1, 2}, []int{0, 2, 3})
	attempt := 0
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		attempt++
		if attempt == 1 {
			f.ackAfter(10e-6, repID, blockstore.StatusOK)
			f.ackAfter(20e-6, repID, blockstore.StatusOK)
			f.ackAfter(1.5e-3, repID, blockstore.StatusOK) // straggler: after timeout+retry
			return
		}
		// The retry completes 100us in — before the straggler arrives, so
		// a double-count bug would complete the retry one real ack short.
		for i := range set {
			f.ackAfter(100e-6+float64(i)*10e-6, repID, blockstore.StatusOK)
		}
	}
	st, stored := runReplicate(t, env, primaryReplicator{}, f)
	if st != blockstore.StatusOK || stored != 3 {
		t.Fatalf("status=%v stored=%d, want OK/3", st, stored)
	}
	if f.retries != 1 {
		t.Fatalf("retries = %d, want 1", f.retries)
	}
	if len(f.sends) != 2 || f.sendIDs[0] == f.sendIDs[1] {
		t.Fatalf("want 2 sends under distinct repIDs, got %v ids=%v", f.sends, f.sendIDs)
	}
	env.Run(1) // let the straggler land
	if f.stale != 1 {
		t.Fatalf("stale acks = %d, want exactly the straggler", f.stale)
	}
	if len(f.pending) != 0 {
		t.Fatalf("pending fan-outs leaked: %d", len(f.pending))
	}
}

func TestPrimaryReplicatorUnroutableFails(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 1e-3, []int{})
	st, stored := runReplicate(t, env, primaryReplicator{}, f)
	if st != blockstore.StatusError || stored != 0 || len(f.sends) != 0 {
		t.Fatalf("status=%v stored=%d sends=%v, want immediate error", st, stored, f.sends)
	}
}

func TestPrimaryReplicatorExhaustsAttempts(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 100e-6, []int{0, 1, 2}) // nobody ever acks
	st, _ := runReplicate(t, env, primaryReplicator{}, f)
	if st != blockstore.StatusError {
		t.Fatalf("status = %v, want Error after exhausted attempts", st)
	}
	if len(f.sends) != maxReplicateAttempts || f.retries != maxReplicateAttempts-1 {
		t.Fatalf("sends=%d retries=%d, want %d attempts", len(f.sends), f.retries, maxReplicateAttempts)
	}
	if len(f.emits) != maxReplicateAttempts {
		t.Fatalf("emits=%v, want one timeout trace per attempt", f.emits)
	}
}

func TestChainReplicatorSequencesHops(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 1e-3, []int{0, 1, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		f.ackAfter(10e-6, repID, blockstore.StatusOK)
	}
	st, stored := runReplicate(t, env, chainReplicator{}, f)
	if st != blockstore.StatusOK || stored != 3 {
		t.Fatalf("status=%v stored=%d, want OK/3", st, stored)
	}
	if len(f.sends) != 3 {
		t.Fatalf("sends = %v, want 3 single-replica hops", f.sends)
	}
	for i, s := range f.sends {
		if len(s) != 1 || s[0] != i {
			t.Fatalf("hop %d sent to %v, want [%d]", i, s, i)
		}
		// Each hop departs only after the predecessor acked: 10us apart.
		if i > 0 && f.sendAt[i] < f.sendAt[i-1]+10e-6 {
			t.Fatalf("hop %d sent at %g, before predecessor's ack (%g+10us)",
				i, f.sendAt[i], f.sendAt[i-1])
		}
	}
}

func TestChainReplicatorHopTimeoutRestartsChain(t *testing.T) {
	env := sim.NewEnv()
	// Attempt 1: head acks, middle (server 1) is dead. Attempt 2 runs on
	// the refreshed set {0,3,2} and completes.
	f := newFakeHost(env, 200e-6, []int{0, 1, 2}, []int{0, 3, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		if set[0] == 1 {
			return // dead middle hop: silence
		}
		f.ackAfter(10e-6, repID, blockstore.StatusOK)
	}
	st, stored := runReplicate(t, env, chainReplicator{}, f)
	if st != blockstore.StatusOK || stored != 3 {
		t.Fatalf("status=%v stored=%d, want OK/3", st, stored)
	}
	if f.retries != 1 {
		t.Fatalf("retries = %d, want 1 (whole-chain restart)", f.retries)
	}
	// 2 hops on attempt 1 (head + dead middle), 3 on attempt 2.
	if len(f.sends) != 5 {
		t.Fatalf("sends = %v, want 5 hops total", f.sends)
	}
	found := false
	for _, e := range f.emits {
		if strings.Contains(e, "protocol=chain") && strings.Contains(e, "hop=2/3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no chain hop-timeout trace in %v", f.emits)
	}
}

func TestChainReplicatorPropagatesWorstHopStatus(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 0, []int{0, 1, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		st := blockstore.StatusOK
		if set[0] == 1 {
			st = blockstore.StatusCorrupt
		}
		f.ackAfter(10e-6, repID, st)
	}
	st, _ := runReplicate(t, env, chainReplicator{}, f)
	if st != blockstore.StatusCorrupt {
		t.Fatalf("status = %v, want the middle hop's Corrupt", st)
	}
}

func TestQuorumReplicatorAcksAtMajority(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 1e-3, []int{0, 1, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		f.ackAfter(10e-6, repID, blockstore.StatusOK)
		f.ackAfter(20e-6, repID, blockstore.StatusOK)
		f.ackAfter(5e-3, repID, blockstore.StatusOK) // laggard, way past the timeout
	}
	st, stored := runReplicate(t, env, quorumReplicator{}, f)
	if st != blockstore.StatusOK || stored != 3 {
		t.Fatalf("status=%v stored=%d, want OK at majority", st, stored)
	}
	if f.retries != 0 {
		t.Fatalf("retries = %d: the majority ack must beat the timeout", f.retries)
	}
	env.Run(1)
	if f.stale != 1 {
		t.Fatalf("stale = %d, want the post-quorum laggard counted stale", f.stale)
	}
}

func TestQuorumReplicatorFailsBelowWriteQuorum(t *testing.T) {
	env := sim.NewEnv()
	// Two of three replicas crashed with no substitutes: one reachable
	// member is a minority, so the write must fail without a send.
	f := newFakeHost(env, 1e-3, []int{4})
	st, stored := runReplicate(t, env, quorumReplicator{}, f)
	if st != blockstore.StatusError || stored != 0 {
		t.Fatalf("status=%v stored=%d, want refusal", st, stored)
	}
	if len(f.sends) != 0 {
		t.Fatalf("sends = %v, want none for a minority set", f.sends)
	}
}

func TestQuorumReplicatorMinorityErrorStillOK(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 0, []int{0, 1, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		f.ackAfter(10e-6, repID, blockstore.StatusOK)
		f.ackAfter(20e-6, repID, blockstore.StatusError)
		f.ackAfter(30e-6, repID, blockstore.StatusOK)
	}
	st, _ := runReplicate(t, env, quorumReplicator{}, f)
	if st != blockstore.StatusOK {
		t.Fatalf("status = %v: a minority error must not fail a quorum write", st)
	}
}

func TestQuorumReplicatorMajorityErrorFails(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 0, []int{0, 1, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		f.ackAfter(10e-6, repID, blockstore.StatusError)
		f.ackAfter(20e-6, repID, blockstore.StatusError)
		f.ackAfter(30e-6, repID, blockstore.StatusOK)
	}
	st, _ := runReplicate(t, env, quorumReplicator{}, f)
	if st != blockstore.StatusError {
		t.Fatalf("status = %v, want Error when the quorum cannot be met", st)
	}
}

func TestQuorumReplicatorTimeoutEmitsAckSet(t *testing.T) {
	env := sim.NewEnv()
	f := newFakeHost(env, 100e-6, []int{0, 1, 2})
	f.onSend = func(f *fakeHost, repID uint64, set []int) {
		f.ackAfter(10e-6, repID, blockstore.StatusOK) // one ack: short of quorum
	}
	st, _ := runReplicate(t, env, quorumReplicator{}, f)
	if st != blockstore.StatusError {
		t.Fatalf("status = %v, want Error", st)
	}
	if len(f.emits) == 0 || !strings.Contains(f.emits[0], "ackset=") {
		t.Fatalf("timeout trace should carry the encoded ack set: %v", f.emits)
	}
}

// TestReplicatorResyncAfterMidFlightSubstitution pins the fail-over
// race the full fault battery exposed: a write's fan-out is acked by
// the members it reached, but while it was in flight one member
// crashed and a concurrent write substituted a fresh replica into the
// chunk's placement. The backfill snapshot can predate this write's
// appends, so the all-replica protocols must notice the placement
// moved and re-send to the current set before acking the client.
func TestReplicatorResyncAfterMidFlightSubstitution(t *testing.T) {
	for _, r := range []Replicator{primaryReplicator{}, chainReplicator{}} {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			env := sim.NewEnv()
			f := newFakeHost(env, 1e-3, []int{0, 1, 2}, []int{0, 3, 2})
			f.cur = []int{0, 1, 2}
			f.onSend = func(f *fakeHost, repID uint64, set []int) {
				f.ackAfter(10e-6, repID, blockstore.StatusOK)
				if len(set) > 1 {
					for range set[1:] {
						f.ackAfter(10e-6, repID, blockstore.StatusOK)
					}
				}
			}
			// Mid-flight (5us: after the sends, before the acks), server 1
			// crashes and a concurrent write substitutes server 3.
			env.After(5e-6, func() { f.cur = []int{0, 3, 2} })
			st, stored := runReplicate(t, env, r, f)
			if st != blockstore.StatusOK || stored != 3 {
				t.Fatalf("status=%v stored=%d, want OK/3", st, stored)
			}
			if f.retries != 1 {
				t.Fatalf("retries = %d, want exactly one resync round", f.retries)
			}
			// The resync round must have reached the substitute.
			sentTo3 := false
			for _, s := range f.sends {
				for _, idx := range s {
					if idx == 3 {
						sentTo3 = true
					}
				}
			}
			if !sentTo3 {
				t.Fatalf("substitute never received the write: sends=%v", f.sends)
			}
			found := false
			for _, e := range f.emits {
				if strings.Contains(e, "replicate-resync") {
					found = true
				}
			}
			if !found {
				t.Fatalf("no resync trace in %v", f.emits)
			}
		})
	}
}

// TestReplicasForSubstitutionUnderCrashes exercises degraded-mode
// substitution through the real Server: with 0, 1, and 2 simultaneous
// crashes out of 5 servers, a 3-replica placement keeps its surviving
// members, substitutes healthy servers for the dead, and only counts
// the write degraded when the set actually shrank.
func TestReplicasForSubstitutionUnderCrashes(t *testing.T) {
	for _, crashes := range [][]int{nil, {1}, {1, 3}} {
		s := newTestServer(t, CPUOnly)
		s.numStorage = 5
		s.serverDown = make([]bool, 5)
		h := blockstore.Header{SegmentID: 7, ChunkID: 3}
		orig := append([]int(nil), s.replicasFor(h)...) // pins placement
		if len(orig) != 3 {
			t.Fatalf("initial placement = %v, want 3 replicas", orig)
		}
		for _, idx := range crashes {
			s.SetServerDown(idx, true)
		}
		got := s.replicasFor(h)
		if len(got) != 3 {
			t.Fatalf("%d crashes: set = %v, want full substitution from 5 servers", len(crashes), got)
		}
		down := map[int]bool{}
		for _, idx := range crashes {
			down[idx] = true
		}
		for _, idx := range got {
			if down[idx] {
				t.Fatalf("%d crashes: down server %d still in set %v", len(crashes), idx, got)
			}
		}
		// Surviving original members keep their slots.
		for _, o := range orig {
			if down[o] {
				continue
			}
			found := false
			for _, g := range got {
				if g == o {
					found = true
				}
			}
			if !found {
				t.Fatalf("%d crashes: surviving member %d evicted: %v -> %v", len(crashes), o, orig, got)
			}
		}
		if len(crashes) == 0 && s.Degraded != 0 {
			t.Fatal("healthy write counted degraded")
		}
	}
}
