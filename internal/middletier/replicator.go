package middletier

import (
	"fmt"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/sim"
)

// This file defines the pluggable replication protocol layer. The
// write paths (hostpaths.go, bf2.go, smartds.go) own message assembly
// and transport; everything protocol-shaped — fan-out order, ack
// thresholds, timeout/retry, degraded-mode behavior — lives behind the
// Replicator interface so the three protocols the comparison harness
// studies (primary fan-out, chain, ABD-style quorum) share one
// contract and one durability checker (cluster.CheckAckedWrites).

// Protocol selects the replication protocol a middle-tier server runs.
type Protocol int

// The three replication protocols.
const (
	// ProtoPrimary is the seed behavior: fan the frame out to every
	// replica at once and ack the client when all of them acked.
	ProtoPrimary Protocol = iota
	// ProtoChain is chain replication, middle-tier-sequenced: the frame
	// is forwarded to the head, then to each successor only after the
	// predecessor acked, and the client ack follows the tail's ack.
	// Reads target the tail.
	ProtoChain
	// ProtoQuorum is an ABD-style write quorum: fan out to every
	// replica, ack the client at ceil((n+1)/2) acks. Reads consult a
	// read quorum, pick the newest writer version, and read-repair
	// stale replicas.
	ProtoQuorum
)

func (p Protocol) String() string {
	switch p {
	case ProtoPrimary:
		return "primary"
	case ProtoChain:
		return "chain"
	case ProtoQuorum:
		return "quorum"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol maps a -replication flag value to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "primary", "fanout", "primary-fanout":
		return ProtoPrimary, nil
	case "chain":
		return ProtoChain, nil
	case "quorum", "abd":
		return ProtoQuorum, nil
	}
	return ProtoPrimary, fmt.Errorf("middletier: unknown replication protocol %q (have primary, chain, quorum)", s)
}

// Protocols lists every protocol in comparison-table order.
func Protocols() []Protocol { return []Protocol{ProtoPrimary, ProtoChain, ProtoQuorum} }

// SendFn issues one replicate message, tagged with repID, to every
// server in set through whatever front end the design has. The write
// paths provide it; replicators may call it several times per write,
// each time with a fresh repID and a (possibly refreshed or partial)
// replica set.
type SendFn func(repID uint64, set []int)

// Replicator is one replication protocol: it owns fan-out order, ack
// accounting, timeout/retry, and degraded-mode substitution for the
// write path, and declares the quorum sizes the read path and the
// durability checker derive their invariants from.
type Replicator interface {
	// Name is the protocol's table label.
	Name() string
	// Replicate runs one write's replication and returns the status the
	// client ack carries plus how many replicas the frame was sent to
	// on the deciding attempt (the BytesStored accounting factor).
	Replicate(h replicatorHost, p *sim.Proc, hdr blockstore.Header, frameSize float64, send SendFn) (blockstore.Status, int)
	// WriteQuorum is how many replicas out of a set of n must hold an
	// acked write for the protocol's durability contract to hold.
	WriteQuorum(n int) int
	// ReadQuorum is how many replicas out of n a read consults; every
	// write quorum must intersect every read quorum.
	ReadQuorum(n int) int
}

// replicatorHost is the slice of Server a Replicator drives: pending
// fan-out bookkeeping, replica placement, and retry accounting. Tests
// fake it to exercise each protocol in isolation.
type replicatorHost interface {
	// replicaSet resolves the write's replica fan-out (placement lookup
	// with degraded-mode substitution); empty means unroutable. The
	// returned slice is the caller's to keep: it never aliases the live
	// placement table.
	replicaSet(hdr blockstore.Header) []int
	// currentSet returns the chunk's placement as it stands right now —
	// no substitution, no counters — or nil when the chunk has none.
	// Replicators that promise all-replica durability use it to detect a
	// fail-over that mutated the placement while an attempt was in
	// flight.
	currentSet(hdr blockstore.Header) []int
	// begin registers a fan-out expecting `expected` replies, succeeding
	// at `need` OK acks, and returns its id plus the pending entry.
	begin(expected, need int) (uint64, *pendingReq)
	// abandon orphans a timed-out fan-out; stragglers for it count as
	// stale acks instead of completing anything.
	abandon(repID uint64)
	// noteRetry charges one re-issued fan-out to the retry counters.
	noteRetry(frameSize float64, replicas int)
	// replicateTimeout bounds one ack wait; <= 0 disables the timeout.
	replicateTimeout() float64
	// replicas is the configured replication factor (quorum sizing).
	replicas() int
	// emit records one trace event on the middle tier's track.
	emit(now float64, event, detail string)
	// noteWait records a completed fan-out's straggler wait — the
	// interval from the attempt's sends being posted to the deciding
	// ack — on the request's trace for critical-path blame.
	noteWait(hdr blockstore.Header, pr *pendingReq)
}

// sameSet reports whether two replica sets are identical slot by slot.
func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// placementMoved reports whether the chunk's placement changed out from
// under an attempt that fanned out to `set`. That happens when a member
// crashed mid-flight and a concurrent write substituted a fresh replica
// into the slot: the backfill snapshot may predate this write's appends
// on the survivors, and this write never sent to the substitute, so the
// all-replica protocols must re-send before acking the client (the
// versioned appends make the re-send idempotent).
func placementMoved(h replicatorHost, hdr blockstore.Header, set []int) bool {
	cur := h.currentSet(hdr)
	return cur != nil && !sameSet(cur, set)
}

// newReplicator builds the Replicator for a protocol.
func newReplicator(p Protocol) Replicator {
	switch p {
	case ProtoChain:
		return chainReplicator{}
	case ProtoQuorum:
		return quorumReplicator{}
	default:
		return primaryReplicator{}
	}
}

// primaryReplicator is the seed protocol: one fan-out to every replica,
// success when all of them acked, bounded timeout/retry with a
// refreshed set per attempt.
type primaryReplicator struct{}

func (primaryReplicator) Name() string          { return ProtoPrimary.String() }
func (primaryReplicator) WriteQuorum(n int) int { return n }
func (primaryReplicator) ReadQuorum(n int) int  { return 1 }

func (primaryReplicator) Replicate(h replicatorHost, p *sim.Proc, hdr blockstore.Header, frameSize float64,
	send SendFn) (blockstore.Status, int) {
	stored := 0
	for attempt := 0; attempt < maxReplicateAttempts; attempt++ {
		set := h.replicaSet(hdr)
		if len(set) == 0 {
			// No reachable replica at all: fail the write rather than
			// blocking the client forever.
			return blockstore.StatusError, stored
		}
		if attempt > 0 {
			h.noteRetry(frameSize, len(set))
		}
		repID, pr := h.begin(len(set), len(set))
		send(repID, set)
		pr.set, pr.sentAt = set, p.Now()
		stored = len(set)
		done := true
		if h.replicateTimeout() <= 0 {
			p.Wait(pr.done)
		} else if _, ok := p.WaitTimeout(pr.done, h.replicateTimeout()); !ok {
			done = false
		}
		if done {
			h.noteWait(hdr, pr)
			if pr.status == blockstore.StatusOK && placementMoved(h, hdr, set) {
				// A member crashed mid-flight and was substituted: re-send
				// so the substitute holds this write too before the client
				// hears OK.
				h.emit(p.Now(), "replicate-resync",
					fmt.Sprintf("attempt=%d replicas=%d", attempt+1, len(set)))
				continue
			}
			return pr.status, stored
		}
		// Timed out: orphan this fan-out — completePending counts acks
		// for abandoned ids as stale, so stragglers from slow-but-alive
		// replicas are harmless (the storage write is idempotent: a later
		// retry just appends a newer version) — and go around with a
		// refreshed set.
		h.abandon(repID)
		h.emit(p.Now(), "replicate-timeout",
			fmt.Sprintf("attempt=%d replicas=%d", attempt+1, len(set)))
	}
	return blockstore.StatusError, stored
}

// chainReplicator forwards the frame along the replica set one hop at a
// time: head, then each successor after its predecessor acked, client
// ack after the tail acked. The simulation keeps the middle tier as the
// sequencer (storage servers do not forward to each other), so the
// middle tier's send bandwidth matches primary fan-out while ack
// latency and ordering match chain replication. A hop timeout restarts
// the whole chain against a refreshed set.
type chainReplicator struct{}

func (chainReplicator) Name() string          { return ProtoChain.String() }
func (chainReplicator) WriteQuorum(n int) int { return n }
func (chainReplicator) ReadQuorum(n int) int  { return 1 }

func (chainReplicator) Replicate(h replicatorHost, p *sim.Proc, hdr blockstore.Header, frameSize float64,
	send SendFn) (blockstore.Status, int) {
	stored := 0
	for attempt := 0; attempt < maxReplicateAttempts; attempt++ {
		set := h.replicaSet(hdr)
		if len(set) == 0 {
			return blockstore.StatusError, stored
		}
		if attempt > 0 {
			h.noteRetry(frameSize, len(set))
		}
		stored = len(set)
		worst := blockstore.StatusOK
		timedOut := false
		for hop := 0; hop < len(set); hop++ {
			repID, pr := h.begin(1, 1)
			send(repID, set[hop:hop+1])
			pr.set, pr.sentAt = set[hop:hop+1], p.Now()
			if h.replicateTimeout() <= 0 {
				p.Wait(pr.done)
			} else if _, ok := p.WaitTimeout(pr.done, h.replicateTimeout()); !ok {
				h.abandon(repID)
				h.emit(p.Now(), "replicate-timeout",
					fmt.Sprintf("protocol=chain attempt=%d hop=%d/%d", attempt+1, hop+1, len(set)))
				timedOut = true
				break
			}
			h.noteWait(hdr, pr)
			if pr.status != blockstore.StatusOK {
				worst = pr.status
			}
		}
		if !timedOut {
			if worst == blockstore.StatusOK && placementMoved(h, hdr, set) {
				// The chain's membership changed while this write was mid-
				// hop (crash + substitution): run the chain again on the
				// current set before acking, so the substitute holds it.
				h.emit(p.Now(), "replicate-resync",
					fmt.Sprintf("protocol=chain attempt=%d replicas=%d", attempt+1, len(set)))
				continue
			}
			return worst, stored
		}
	}
	return blockstore.StatusError, stored
}

// quorumReplicator is the ABD-style write: fan out to every replica at
// once, succeed at a majority of the replication factor. Acks beyond
// the quorum complete against an already-finished fan-out and count as
// stale (expected for this protocol); a degraded set smaller than the
// write quorum fails the write outright — a minority can never promise
// durability.
type quorumReplicator struct{}

func (quorumReplicator) Name() string { return ProtoQuorum.String() }

func (quorumReplicator) WriteQuorum(n int) int { return n/2 + 1 }
func (quorumReplicator) ReadQuorum(n int) int  { return n/2 + 1 }

func (q quorumReplicator) Replicate(h replicatorHost, p *sim.Proc, hdr blockstore.Header, frameSize float64,
	send SendFn) (blockstore.Status, int) {
	stored := 0
	need := q.WriteQuorum(h.replicas())
	for attempt := 0; attempt < maxReplicateAttempts; attempt++ {
		set := h.replicaSet(hdr)
		if len(set) < need {
			// Fewer reachable replicas than the write quorum: fail rather
			// than ack a write a majority never held.
			return blockstore.StatusError, stored
		}
		if attempt > 0 {
			h.noteRetry(frameSize, len(set))
		}
		repID, pr := h.begin(len(set), need)
		send(repID, set)
		pr.set, pr.sentAt = set, p.Now()
		stored = len(set)
		if h.replicateTimeout() <= 0 {
			p.Wait(pr.done)
			h.noteWait(hdr, pr)
			return pr.status, stored
		}
		if _, ok := p.WaitTimeout(pr.done, h.replicateTimeout()); ok {
			h.noteWait(hdr, pr)
			return pr.status, stored
		}
		h.abandon(repID)
		h.emit(p.Now(), "replicate-timeout",
			fmt.Sprintf("protocol=quorum attempt=%d replicas=%d need=%d ackset=%x",
				attempt+1, len(set), need, encodeAckSet(repID, attempt+1, pr)))
	}
	return blockstore.StatusError, stored
}
