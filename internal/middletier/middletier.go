// Package middletier implements the four middle-tier server designs
// the paper compares (Figure 1):
//
//   - CPUOnly: plain RDMA NIC; the host CPU parses headers and runs
//     software LZ4; every byte crosses PCIe and host memory.
//   - Accel: NIC + PCIe FPGA compression card (U280-like); the CPU
//     still controls every message, payloads cross PCIe twice more.
//   - BF2: SoC SmartNIC (BlueField-2-like); Arm cores parse, an
//     on-board 40 Gbps engine compresses, nothing touches the host.
//   - SmartDS: the paper's contribution; AAMS splits each message so
//     only 64-byte headers reach the host while per-port 100 Gbps
//     engines compress payloads in device memory (internal/core).
//
// All four serve the same protocol (internal/blockstore): write
// requests are compressed (unless latency-sensitive), replicated to
// three storage servers, acknowledged to the client; read requests
// fetch, decompress, and return the block. Maintenance services (LSM
// compaction, garbage collection, snapshots) run alongside.
package middletier

import (
	"bytes"
	"fmt"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/core"
	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/host"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/storage"
	"github.com/disagg/smartds/internal/trace"
)

// Kind selects the middle-tier design.
type Kind int

// The four designs of Figure 1.
const (
	CPUOnly Kind = iota
	Accel
	BF2
	SmartDS
)

func (k Kind) String() string {
	switch k {
	case CPUOnly:
		return "CPU-only"
	case Accel:
		return "Acc"
	case BF2:
		return "BF2"
	case SmartDS:
		return "SmartDS"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config parameterizes a middle-tier server.
type Config struct {
	Kind    Kind
	Workers int // host CPU cores serving I/O (x-axis of Figure 7)
	Ports   int // network ports (SmartDS-N; BF2 has 2; others 1)

	Level lz4.Level // compression effort for non-bypass writes
	// AdaptiveEffort implements the paper's §2.2.1 policy: idle
	// compressors spend more effort (better ratio), loaded ones fall
	// back to the fastest level. Level is then the mid-load setting.
	AdaptiveEffort bool
	Replicas       int     // write replication factor (3 in the paper)
	BlockSize      int     // I/O block size (4 KB)
	ModelRatio     float64 // compression ratio assumed for modeled-only payloads

	// ReplicateTimeout bounds how long a write waits for its replication
	// fan-out before re-issuing it against a refreshed healthy replica
	// set — without it, a replica that crashes with the fan-out in
	// flight strands the client's window slot forever (the dead server
	// never replies). Zero disables the timeout (the default: healthy
	// clusters keep the seed behavior exactly); fault campaigns and the
	// failover tests enable it.
	ReplicateTimeout float64

	// Protocol selects the replication protocol (replicator.go): primary
	// fan-out (the default, the seed behavior), chain, or ABD-style
	// quorum. It is orthogonal to Kind — every design runs every
	// protocol.
	Protocol Protocol

	// DDIO mirrors the BIOS toggle for the Accel baseline (Fig. 8).
	DDIO bool
	// BufferLifetime drives the retained-working-set DDIO computation
	// (§3.2 measures ~32 ms).
	BufferLifetime float64

	PortRate  float64
	CPU       host.CPUConfig
	Mem       mem.Config
	PCIe      pcie.Config
	Transport rdma.Config

	// AccelEngineRate is the U280 card's compression throughput.
	AccelEngineRate float64
	// SDSEngineRate overrides the per-port SmartDS engine throughput
	// (default 100 Gbps; the engine-rate ablation sweeps it).
	SDSEngineRate float64
	// BF2EngineRate is the SoC's compression engine (~40 Gbps); its
	// DRAM is BF2MemRate (§3.4: two weak DDR channels).
	BF2EngineRate float64
	BF2MemRate    float64
	BF2ParseTime  float64

	// SmartDSInflight is the recv-descriptor pool depth per client
	// connection.
	SmartDSInflight int
	// SplitBytes is how many leading bytes of each message AAMS places
	// in host memory (64 = just the block-storage header; the ablation
	// benches sweep it up to the whole message, which degenerates into
	// the accelerator baseline's PCIe cost). Values other than the
	// header size imply modeled payloads.
	SplitBytes int
	// HBM overrides the SmartDS device memory (tests shrink it).
	HBM device.MemoryConfig

	// Trace, when set, records per-stage request spans (parse, compress,
	// replicate, ack, ...) in virtual time. Nil disables tracing.
	Trace *trace.Tracer

	// Log, when set, receives structured middle-tier lifecycle events
	// (rebuilds, backfills) as the event log's "mt" component.
	Log *evlog.Logger
}

// DefaultConfig returns the paper's testbed parameters for a kind.
func DefaultConfig(kind Kind) Config {
	cfg := Config{
		Kind:            kind,
		Workers:         2,
		Ports:           1,
		Level:           lz4.LevelDefault,
		Replicas:        3,
		BlockSize:       4096,
		ModelRatio:      2.1,
		DDIO:            true,
		BufferLifetime:  32e-3,
		PortRate:        12.5e9,
		CPU:             host.DefaultCPUConfig(),
		Mem:             mem.DefaultConfig(),
		PCIe:            pcie.DefaultConfig(),
		Transport:       rdma.DefaultConfig(),
		AccelEngineRate: 12.5e9,
		BF2EngineRate:   5e9,
		BF2MemRate:      19e9,
		BF2ParseTime:    600e-9,
		SmartDSInflight: 64,
		SplitBytes:      blockstore.HeaderSize,
		HBM:             device.DefaultHBM(),
	}
	switch kind {
	case BF2:
		cfg.Ports = 2
	case SmartDS:
		cfg.Ports = 1
	}
	return cfg
}

// pendingReq tracks a fan-out to storage servers (replication) or a
// single fetch.
type pendingReq struct {
	remaining int // replies still outstanding
	expected  int // replies the fan-out was registered with
	// need is how many more OK acks make the fan-out a success. Primary
	// fan-out and single fetches start it at expected (all replies must
	// be OK); the quorum protocol starts it at the write quorum, so the
	// fan-out completes — and is unregistered, making later minority
	// acks stale by construction — the moment the quorum is met.
	need   int
	done   *sim.Event
	status blockstore.Status
	// acks records per-reply statuses in arrival order when the server
	// tracks ack sets (non-primary protocols); replicate-timeout traces
	// embed them (ackset.go) for diagnosis.
	acks    []blockstore.Status
	payload []byte  // fetch replies: the stored frame (real bytes)
	size    float64 // fetch replies: modeled frame size
	hdr     blockstore.Header
	// release, when set, returns the receive descriptor holding the
	// fetched payload (SmartDS read path).
	release func()

	// Straggler attribution (critpath): the replicator stamps the
	// fan-out set and send-complete time, completePending stamps which
	// reply decided the fan-out and when. set[slot] is the global
	// storage-server index of replica slot; deciderSlot is the slot of
	// the deciding (slowest-awaited) ack, -1 until decided.
	set         []int
	sentAt      float64
	decidedAt   float64
	deciderSlot int
	deciderIdx  int // global server index of the deciding ack
}

// Server is one middle-tier server of the configured kind.
type Server struct {
	env    *sim.Env
	cfg    Config
	fabric *netsim.Fabric

	// Host resources (unused by BF2's data path but always present:
	// the machine still exists).
	Mem   *mem.System
	cpu   *host.Pool
	cores []*host.Core
	rr    int

	// CPUOnly / Accel front end.
	nic       *host.NIC
	accelPCIe *pcie.Link
	accelSlot *sim.Resource
	accelEnc  *lz4.Encoder

	// BF2.
	bf2Mem    *device.Memory
	bf2Engine *device.LZ4Engine
	bf2Stacks []*rdma.Stack
	bf2Pool   *host.Pool
	bf2Cores  []*host.Core
	bf2RR     int

	// SmartDS.
	sds *core.Device

	// Per-core software LZ4 encoders (functional CPU compression).
	enc map[int]*lz4.Encoder

	// Replication connections: storagePaths[path][replica].
	storagePaths [][]*rdma.QP
	serverDown   []bool
	numStorage   int
	nextPath     int
	// placement records which storage servers hold each chunk's
	// replicas (the chunk -> server mapping the paper's middle tier
	// owns, §2.1); writes create it, reads consult it, fail-over
	// rewrites it.
	placement map[chunkKey][]int
	readRR    int

	pending map[uint64]*pendingReq
	nextRep uint64

	// rep is the active replication protocol (replicator.go); trackAcks
	// enables per-reply status capture for its trace diagnostics.
	rep       Replicator
	trackAcks bool
	// nextVer is the writer-assigned block version counter: every write
	// gets one version before its fan-out, stable across retry attempts,
	// so storage servers can refuse regressions and quorum reads can
	// rank replicas.
	nextVer uint64
	// storageServers mirrors ConnectStorage's argument for chunk
	// backfill after replica substitution.
	storageServers []*storage.Server

	// engineDown marks failed compression engines: index 0 for the
	// Accel card and the BF2 SoC engine, per-port for SmartDS.
	engineDown []bool

	// Counters.
	WritesDone  uint64
	ReadsDone   uint64
	BypassHits  uint64
	BytesIn     float64
	BytesStored float64

	// Failure-handling counters (degraded-mode behavior the fault
	// campaigns and failover tests assert on).
	Degraded         uint64  // writes placed on fewer than cfg.Replicas servers
	Unroutable       uint64  // requests with no healthy replica at all
	ReplicateRetries uint64  // replication fan-outs re-issued after timeout
	RetryBytes       float64 // payload bytes re-sent by those retries
	EngineFallbacks  uint64  // writes stored raw because an engine was down
	EngineReroutes   uint64  // SmartDS writes compressed by a surviving port's engine
	RebuildBytes     float64 // snapshot bytes streamed rebuilding crashed servers
	StaleAcks        uint64  // storage acks arriving after their fan-out completed or was abandoned
	ReadRepairs      uint64  // stale replicas rewritten by quorum reads
	RepairBytes      float64 // frame bytes those read-repairs pushed
	BackfillBytes    float64 // chunk snapshot bytes copied onto substituted replicas

	// StragglerAcks[i] counts multi-replica fan-outs whose deciding ack
	// — the one the middle tier actually waited for — came from replica
	// slot i of the fan-out set. A skewed distribution means one
	// placement position consistently drags the write path, visible
	// without tracing enabled.
	StragglerAcks []uint64

	clientConns  int
	clientLocals []*rdma.QP // middle-tier side of each client connection
}

// New builds a middle-tier server of cfg.Kind attached to the fabric.
func New(env *sim.Env, fabric *netsim.Fabric, cfg Config) *Server {
	def := DefaultConfig(cfg.Kind)
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.Ports <= 0 {
		cfg.Ports = def.Ports
	}
	if cfg.Level == 0 {
		cfg.Level = def.Level
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = def.Replicas
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = def.BlockSize
	}
	if cfg.ModelRatio <= 0 {
		cfg.ModelRatio = def.ModelRatio
	}
	if cfg.BufferLifetime <= 0 {
		cfg.BufferLifetime = def.BufferLifetime
	}
	if cfg.PortRate <= 0 {
		cfg.PortRate = def.PortRate
	}
	if cfg.AccelEngineRate <= 0 {
		cfg.AccelEngineRate = def.AccelEngineRate
	}
	if cfg.BF2EngineRate <= 0 {
		cfg.BF2EngineRate = def.BF2EngineRate
	}
	if cfg.BF2MemRate <= 0 {
		cfg.BF2MemRate = def.BF2MemRate
	}
	if cfg.BF2ParseTime <= 0 {
		cfg.BF2ParseTime = def.BF2ParseTime
	}
	if cfg.SmartDSInflight <= 0 {
		cfg.SmartDSInflight = def.SmartDSInflight
	}
	if cfg.SplitBytes <= 0 {
		cfg.SplitBytes = def.SplitBytes
	}
	cfg.Mem.DDIOEnabled = cfg.DDIO

	s := &Server{
		env:        env,
		cfg:        cfg,
		fabric:     fabric,
		Mem:        mem.New(env, cfg.Mem),
		cpu:        host.NewPool(env, cfg.CPU),
		enc:        make(map[int]*lz4.Encoder),
		pending:    make(map[uint64]*pendingReq),
		placement:  make(map[chunkKey][]int),
		engineDown: make([]bool, cfg.Ports),
		rep:        newReplicator(cfg.Protocol),
		trackAcks:  cfg.Protocol != ProtoPrimary,
	}
	s.StragglerAcks = make([]uint64, cfg.Replicas)
	for i := 0; i < cfg.Workers; i++ {
		c, err := s.cpu.Claim()
		if err != nil {
			panic(fmt.Sprintf("middletier: cannot claim %d cores: %v", cfg.Workers, err))
		}
		s.cores = append(s.cores, c)
		s.enc[c.ID()] = lz4.NewEncoder(cfg.BlockSize)
	}

	switch cfg.Kind {
	case CPUOnly, Accel:
		s.nic = host.NewNIC(env, fabric, "mt-nic", cfg.PortRate, cfg.PCIe, cfg.Transport, s.Mem)
		s.applyDDIOFractions()
		if cfg.Kind == Accel {
			s.accelPCIe = pcie.New(env, "mt-accel.pcie", cfg.PCIe)
			s.accelSlot = env.NewResource("mt-accel.engine", 1)
			s.accelEnc = lz4.NewEncoder(cfg.BlockSize)
		}
	case BF2:
		s.bf2Mem = device.NewMemory(env, "bf2", device.MemoryConfig{
			Capacity:      16 << 30,
			BytesPerSec:   cfg.BF2MemRate,
			AccessLatency: 150e-9,
		})
		s.bf2Engine = device.NewLZ4Engine(env, "bf2.lz4", s.bf2Mem, cfg.BF2EngineRate, 64<<10)
		s.bf2Engine.SetTrace(cfg.Trace)
		for i := 0; i < cfg.Ports; i++ {
			port := fabric.NewPort(netsim.Addr(fmt.Sprintf("mt-bf2-p%d", i)), cfg.PortRate)
			s.bf2Stacks = append(s.bf2Stacks, rdma.NewStack(env, port, cfg.Transport))
		}
		armCfg := host.CPUConfig{PhysCores: 4, ParseTime: cfg.BF2ParseTime,
			CompressBytesPerSec: 0.6e9, SMTPairBytesPerSec: 0.8e9}
		s.bf2Pool = host.NewPool(env, armCfg)
		for i := 0; i < 8; i++ {
			//detcheck:errdrop fresh pool sized for these claims; cannot fail at construction
			c, _ := s.bf2Pool.Claim()
			s.bf2Cores = append(s.bf2Cores, c)
		}
	case SmartDS:
		devCfg := core.DefaultConfig(cfg.Ports)
		devCfg.PortBytesPerSec = cfg.PortRate
		if cfg.SDSEngineRate > 0 {
			devCfg.EngineBytesPerSec = cfg.SDSEngineRate
		}
		devCfg.PCIe = cfg.PCIe
		devCfg.Transport = cfg.Transport
		devCfg.HBM = cfg.HBM
		devCfg.Trace = cfg.Trace
		s.sds = core.NewDevice(env, "mt-sds", fabric, s.Mem, devCfg)
	default:
		panic(fmt.Sprintf("middletier: unknown kind %d", cfg.Kind))
	}
	return s
}

// applyDDIOFractions sets the NIC's DRAM traffic shares from the LLC
// model: retained buffers always evict (write fraction ~1), while TX
// reads hit the LLC only when DDIO holds the just-produced data.
func (s *Server) applyDDIOFractions() {
	traffic := s.cfg.PortRate // worst-case retained traffic
	retained := mem.RetainedWorkingSet(traffic, s.cfg.BufferLifetime)
	s.nic.MemWriteFraction = s.Mem.WriteEvictFraction(retained)
	if s.cfg.DDIO {
		s.nic.MemReadFraction = 0
	} else {
		s.nic.MemReadFraction = 1
	}
}

// Config returns the server's effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Kind returns the design variant.
func (s *Server) Kind() Kind { return s.cfg.Kind }

// NIC exposes the host NIC (CPUOnly/Accel) for bandwidth snapshots.
func (s *Server) NIC() *host.NIC { return s.nic }

// AccelPCIe exposes the accelerator card's link (Accel).
func (s *Server) AccelPCIe() *pcie.Link { return s.accelPCIe }

// Device exposes the SmartDS card (SmartDS).
func (s *Server) Device() *core.Device { return s.sds }

// CPUPool exposes the host CPU pool.
func (s *Server) CPUPool() *host.Pool { return s.cpu }

// InflightFanouts reports how many client requests currently have
// replication fan-outs outstanding toward storage — the instantaneous
// fan-out depth the telemetry sampler records.
func (s *Server) InflightFanouts() int { return len(s.pending) }

// Engines returns the hardware compression engines of this design in
// stable index order: the BF2 SoC engine, or SmartDS's per-port
// engines. CPUOnly/Accel (software or slot-modeled compression) return
// nil.
func (s *Server) Engines() []*device.LZ4Engine {
	switch {
	case s.bf2Engine != nil:
		return []*device.LZ4Engine{s.bf2Engine}
	case s.sds != nil:
		out := make([]*device.LZ4Engine, 0, s.sds.Ports())
		for i := 0; i < s.sds.Ports(); i++ {
			inst, err := s.sds.OpenRoCEInstance(i)
			if err != nil {
				break
			}
			out = append(out, inst.Engine())
		}
		return out
	}
	return nil
}

// DeviceMemory returns the on-card memory of this design — the BF2
// SoC DRAM or the SmartDS HBM. Designs without a card memory (CPUOnly,
// Accel) return nil.
func (s *Server) DeviceMemory() *device.Memory {
	switch {
	case s.bf2Mem != nil:
		return s.bf2Mem
	case s.sds != nil:
		return s.sds.HBM()
	}
	return nil
}

// TransportStacks returns every RDMA stack terminating client or
// storage traffic on this server, in stable port order: the host NIC's
// stack (CPUOnly/Accel), the BF2 SoC stacks, or SmartDS's per-port
// instance stacks.
func (s *Server) TransportStacks() []*rdma.Stack {
	switch {
	case s.nic != nil:
		return []*rdma.Stack{s.nic.Stack()}
	case len(s.bf2Stacks) > 0:
		return append([]*rdma.Stack(nil), s.bf2Stacks...)
	case s.sds != nil:
		out := make([]*rdma.Stack, 0, s.sds.Ports())
		for i := 0; i < s.sds.Ports(); i++ {
			inst, err := s.sds.OpenRoCEInstance(i)
			if err != nil {
				break
			}
			out = append(out, inst.Stack())
		}
		return out
	}
	return nil
}

// NetPorts returns the fabric ports behind TransportStacks, in the
// same order.
func (s *Server) NetPorts() []*netsim.Port {
	stacks := s.TransportStacks()
	out := make([]*netsim.Port, 0, len(stacks))
	for _, st := range stacks {
		out = append(out, st.Port())
	}
	return out
}

// effortTimeFactor scales software compression time by level: deeper
// match searches cost more core time (LZ4 -> LZ4HC-like growth).
func effortTimeFactor(level lz4.Level) float64 {
	switch {
	case level <= lz4.LevelFast:
		return 0.8
	case level <= lz4.LevelDefault:
		return 1.0
	case level <= lz4.LevelHigh:
		return 2.0
	default:
		return 4.0
	}
}

// chooseLevel applies the adaptive-effort policy given the local
// compressor's queue length.
func (s *Server) chooseLevel(queueLen int) lz4.Level {
	if !s.cfg.AdaptiveEffort {
		return s.cfg.Level
	}
	switch {
	case queueLen == 0:
		return lz4.LevelHigh
	case queueLen < 4:
		return s.cfg.Level
	default:
		return lz4.LevelFast
	}
}

// nextCore rotates across the claimed worker cores.
func (s *Server) nextCore() *host.Core {
	c := s.cores[s.rr%len(s.cores)]
	s.rr++
	return c
}

func (s *Server) nextBF2Core() *host.Core {
	c := s.bf2Cores[s.bf2RR%len(s.bf2Cores)]
	s.bf2RR++
	return c
}

// newPending registers a fan-out of n expected replies that succeeds
// only when all n are OK (primary fan-out, single fetches).
func (s *Server) newPending(n int) (uint64, *pendingReq) {
	return s.newPendingQuorum(n, n)
}

// newPendingQuorum registers a fan-out of `expected` replies that
// succeeds at `need` OK acks.
func (s *Server) newPendingQuorum(expected, need int) (uint64, *pendingReq) {
	s.nextRep++
	pr := &pendingReq{remaining: expected, expected: expected, need: need,
		done: s.env.NewEvent(), status: blockstore.StatusOK,
		sentAt: -1, decidedAt: -1, deciderSlot: -1, deciderIdx: -1}
	if s.trackAcks {
		pr.acks = make([]blockstore.Status, 0, expected)
	}
	s.pending[s.nextRep] = pr
	return s.nextRep, pr
}

// completePending records one reply for a fan-out. A reply whose id is
// unknown — its fan-out already completed (e.g. the write quorum was
// met without it) or was abandoned by a timed-out attempt — is a stale
// ack: it is counted and dropped, and can never complete a different
// (e.g. retried) fan-out, because every attempt registers a fresh id.
//
// from is the global storage-server index the reply arrived from (-1
// when unknown). Reply headers carry no sender identity — it is the
// per-connection receive closure, bound at ConnectStorage time, that
// knows which server a reply came down from.
func (s *Server) completePending(repID uint64, from int, st blockstore.Status, payload []byte, size float64, hdr blockstore.Header) {
	pr, ok := s.pending[repID]
	if !ok {
		s.StaleAcks++
		return
	}
	if pr.acks != nil {
		pr.acks = append(pr.acks, st)
	}
	if st == blockstore.StatusOK {
		pr.need--
	} else {
		pr.status = st
	}
	if payload != nil || size > 0 {
		pr.payload = payload
		pr.size = size
		pr.hdr = hdr
	}
	pr.remaining--
	if pr.need <= 0 {
		// Enough OK acks: the fan-out succeeds even if a minority
		// errored. Unregistering it here is what makes the remaining
		// stragglers stale.
		pr.status = blockstore.StatusOK
		delete(s.pending, repID)
		s.noteDecider(pr, from)
		pr.done.Trigger(nil)
		return
	}
	if pr.remaining <= 0 {
		delete(s.pending, repID)
		s.noteDecider(pr, from)
		pr.done.Trigger(nil)
	}
}

// noteDecider stamps the reply that completed a fan-out and, for
// multi-replica fan-outs, bumps the per-slot straggler counter: the
// deciding ack is by definition the slowest one the protocol still had
// to wait for, so its replica slot is the fan-out's straggler.
func (s *Server) noteDecider(pr *pendingReq, from int) {
	pr.decidedAt = s.now()
	pr.deciderIdx = from
	if pr.expected <= 1 || from < 0 {
		return
	}
	for slot, idx := range pr.set {
		if idx == from {
			pr.deciderSlot = slot
			if slot < len(s.StragglerAcks) {
				s.StragglerAcks[slot]++
			}
			return
		}
	}
}

// sendMaintenance ships one maintenance payload (compaction output) to
// a storage server over whatever front end the design has.
func (s *Server) sendMaintenance(hdr blockstore.Header, idx int, size float64) {
	msg := hdr.Encode()
	total := float64(blockstore.HeaderSize) + size
	switch s.cfg.Kind {
	case CPUOnly, Accel:
		s.nic.Send(s.storagePaths[0][idx], msg, total)
	case BF2:
		s.storagePaths[0][idx].SendSized(msg, total)
	case SmartDS:
		// Maintenance data lives in host memory; it crosses PCIe like
		// any host-sourced payload, then leaves via port 0.
		hbuf := s.sds.HostAlloc(blockstore.HeaderSize)
		copy(hbuf.Bytes(), msg)
		inst, err := s.sds.OpenRoCEInstance(0)
		if err != nil {
			// Engine 0 is down (fault injection): drop the maintenance
			// send rather than dereference a nil instance; the rebuild
			// protocol retries on its own cadence.
			return
		}
		// Host-resident payload: charge the PCIe crossing explicitly by
		// sending it as part of the assembled message's host half.
		big := s.sds.HostAlloc(int(total))
		copy(big.Bytes(), msg)
		inst.DevMixedSend(s.storagePaths[0][idx], big, int(total), nil, 0)
	}
}

// onStorageReplyFrom routes replicate/fetch replies back to their
// pending fan-outs. from is the global storage-server index the
// owning connection is wired to (straggler attribution). Used by the
// CPUOnly/Accel/BF2 paths; SmartDS routes through recv descriptors
// (see smartds.go).
func (s *Server) onStorageReplyFrom(from int, m *rdma.Message) {
	if m.Data == nil || len(m.Data) < blockstore.HeaderSize {
		return
	}
	h, err := blockstore.Decode(m.Data)
	if err != nil {
		return
	}
	switch h.Op {
	case blockstore.OpReplicateReply:
		s.completePending(h.ReqID, from, h.Status, nil, 0, h)
	case blockstore.OpFetchReply:
		payload := m.Data[blockstore.HeaderSize:]
		size := float64(len(payload))
		if len(payload) == 0 {
			payload = nil
			size = float64(h.PayloadLen) // modeled frame
		}
		s.completePending(h.ReqID, from, h.Status, payload, size, h)
	}
}

// TraceID builds the cluster-wide span correlation id for one client
// request: the issuing VM in the high bits, the per-VM request id
// below. Clients and every middle-tier design derive the same value
// from the header, so one request's spans line up across components.
func TraceID(vmID, reqID uint64) uint64 { return vmID<<48 ^ reqID }

// traceID is TraceID from a parsed request header.
func traceID(hdr blockstore.Header) uint64 { return TraceID(hdr.VMID, hdr.ReqID) }

// now is shorthand for the current virtual time.
func (s *Server) now() float64 { return s.env.Now() }

// chunkKey identifies one chunk for placement.
type chunkKey struct {
	seg   uint64
	chunk uint32
}

// replicasFor returns the servers a write to this chunk should fan out
// to: existing placement if recorded, else a fresh healthy set. Down
// servers in an existing set are replaced by healthy ones (fail-over
// re-replication) and the table updated. When no substitute exists the
// down member keeps its placement slot — it still holds the replica and
// rejoins on recovery — but is excluded from the returned fan-out, so
// the write proceeds degraded instead of panicking; an empty return
// means no replica is reachable at all and the write must fail.
func (s *Server) replicasFor(hdr blockstore.Header) []int {
	key := chunkKey{seg: hdr.SegmentID, chunk: hdr.ChunkID}
	set, ok := s.placement[key]
	if !ok {
		set = s.healthyReplicas()
		if len(set) == 0 {
			s.Unroutable++
			return nil
		}
		if len(set) < s.cfg.Replicas {
			s.Degraded++
		}
		s.placement[key] = set
		return set
	}
	anyDown := false
	for _, idx := range set {
		if s.serverDown[idx] {
			anyDown = true
			break
		}
	}
	if !anyDown {
		return set
	}
	healthy := make([]int, 0, len(set))
	var srcs, subs []int
	degraded := false
	for i, idx := range set {
		if !s.serverDown[idx] {
			healthy = append(healthy, idx)
			srcs = append(srcs, idx)
			continue
		}
		if sub := s.substituteReplica(set); sub >= 0 {
			set[i] = sub
			healthy = append(healthy, sub)
			subs = append(subs, sub)
		} else {
			degraded = true
		}
	}
	if degraded {
		s.Degraded++
	}
	if len(healthy) == 0 {
		s.Unroutable++
		return nil
	}
	// A substitute joins the set empty: copy the chunk's existing blocks
	// onto it from a surviving original member, or substitution would
	// silently shrink how many replicas actually hold pre-fail-over
	// writes (the durability checker counts holders per replica).
	for _, sub := range subs {
		s.scheduleBackfill(key, srcs, sub)
	}
	return healthy
}

// scheduleBackfill streams one chunk's snapshot from a surviving
// replica onto a freshly substituted one. The copy is applied to the
// destination store up front (the simulated transfer time then charges
// the port), so blocks written before the fail-over are durable on the
// substitute immediately; versioned restore makes it safe to race with
// new writes to the same chunk — a newer append is never clobbered.
func (s *Server) scheduleBackfill(key chunkKey, srcs []int, dst int) {
	if len(srcs) == 0 || len(s.storageServers) == 0 ||
		dst < 0 || dst >= len(s.storageServers) {
		return
	}
	src := srcs[0]
	s.env.Go("mt.backfill", func(p *sim.Proc) {
		var buf bytes.Buffer
		n, err := s.storageServers[src].Store().SnapshotChunk(&buf, key.seg, key.chunk, s.cfg.Level)
		if err != nil || n == 0 {
			return
		}
		if _, err := s.storageServers[dst].Store().RestoreSnapshot(&buf); err != nil {
			return
		}
		s.BackfillBytes += float64(n)
		p.Sleep(float64(n) / s.cfg.PortRate)
		if s.cfg.Trace != nil {
			s.cfg.Trace.Emit(p.Now(), "mt", "backfill",
				fmt.Sprintf("chunk=%d/%d src=%d dst=%d bytes=%d", key.seg, key.chunk, src, dst, n))
		}
		if s.cfg.Log.Enabled(evlog.Info) {
			s.cfg.Log.Info("backfill", "seg", key.seg, "chunk", key.chunk,
				"src", src, "dst", dst, "bytes", n)
		}
	})
}

// substituteReplica finds a healthy server outside the given set, or -1
// when every server outside it is down (degraded mode).
func (s *Server) substituteReplica(set []int) int {
	for i := 0; i < s.numStorage; i++ {
		idx := (s.nextPath + i) % s.numStorage
		if s.serverDown[idx] {
			continue
		}
		in := false
		for _, m := range set {
			if m == idx {
				in = true
				break
			}
		}
		if !in {
			s.nextPath++
			return idx
		}
	}
	return -1
}

// readReplicaFor picks a healthy holder of the request's chunk,
// rotating across the replica set for balance. ok is false when every
// replica of the chunk is down — the caller answers the client with an
// error instead of the old panic.
func (s *Server) readReplicaFor(hdr blockstore.Header) (int, bool) {
	key := chunkKey{seg: hdr.SegmentID, chunk: hdr.ChunkID}
	set, ok := s.placement[key]
	if !ok {
		// Never written through this server: fall back to any healthy
		// server (the storage tier will answer not-found).
		hs := s.healthyReplicas()
		if len(hs) == 0 {
			s.Unroutable++
			return 0, false
		}
		return hs[0], true
	}
	if s.cfg.Protocol == ProtoChain {
		// Chain replication serves reads from the tail: the tail only
		// acked after every predecessor held the write, so its state is
		// always the committed prefix. Walk backward to the last healthy
		// member when the tail itself is down.
		for i := len(set) - 1; i >= 0; i-- {
			if !s.serverDown[set[i]] {
				return set[i], true
			}
		}
		s.Unroutable++
		return 0, false
	}
	for i := 0; i < len(set); i++ {
		idx := set[(s.readRR+i)%len(set)]
		if !s.serverDown[idx] {
			s.readRR++
			return idx, true
		}
	}
	s.Unroutable++
	return 0, false
}

// healthyReplicas picks up to cfg.Replicas distinct healthy storage
// servers, rotating the starting point for balance. Fewer healthy
// servers than the replication factor yields a short (possibly empty)
// set — the caller decides whether to proceed degraded.
func (s *Server) healthyReplicas() []int {
	var out []int
	n := s.numStorage
	for i := 0; i < n && len(out) < s.cfg.Replicas; i++ {
		idx := (s.nextPath + i) % n
		if !s.serverDown[idx] {
			out = append(out, idx)
		}
	}
	s.nextPath++
	return out
}

// SetServerDown marks a storage server failed (or recovered); the
// fail-over maintenance path reroutes subsequent writes.
func (s *Server) SetServerDown(idx int, down bool) {
	s.serverDown[idx] = down
}

// ConnectStorage wires the server to its storage back ends. For
// multi-port designs every port gets its own QP set so replication
// traffic exits the port the request arrived on.
func (s *Server) ConnectStorage(servers []*storage.Server) {
	s.storageServers = servers
	s.numStorage = len(servers)
	s.serverDown = make([]bool, len(servers))
	paths := 1
	switch s.cfg.Kind {
	case BF2, SmartDS:
		paths = s.cfg.Ports
	}
	s.storagePaths = make([][]*rdma.QP, paths)
	for pi := 0; pi < paths; pi++ {
		for si, srv := range servers {
			// Each connection's receive closure captures the server index
			// it is wired to: replies carry no sender identity, so this is
			// where straggler attribution learns which replica answered.
			si := si
			var local *rdma.QP
			switch s.cfg.Kind {
			case CPUOnly, Accel:
				local = s.nic.CreateQP(func(_ *rdma.QP, m *rdma.Message) { s.onStorageReplyFrom(si, m) })
			case BF2:
				local = s.bf2Stacks[pi].CreateQP()
				local.OnRecv = func(m *rdma.Message) { s.bf2StorageReply(si, m) }
			case SmartDS:
				local = s.sdsStorageQP(pi, si)
			}
			remote := srv.AcceptQP()
			rdma.Connect(local, remote)
			s.storagePaths[pi] = append(s.storagePaths[pi], local)
		}
	}
}

// Protocol returns the active replication protocol.
func (s *Server) Protocol() Protocol { return s.cfg.Protocol }

// ReplicatorName returns the active protocol's table label.
func (s *Server) ReplicatorName() string { return s.rep.Name() }

// WriteQuorum is how many replicas out of a set of n must hold an acked
// write under the active protocol (the durability checker's threshold).
func (s *Server) WriteQuorum(n int) int { return s.rep.WriteQuorum(n) }

// ReadQuorum is how many replicas out of n a read consults under the
// active protocol.
func (s *Server) ReadQuorum(n int) int { return s.rep.ReadQuorum(n) }

// nextWriteVersion hands out the writer-assigned version for one write.
// It is assigned once per logical write, before the fan-out, so every
// retry attempt re-sends the same version and the storage-side
// regression guard treats them as the same write.
func (s *Server) nextWriteVersion() uint64 {
	s.nextVer++
	return s.nextVer
}

// replicatorHost implementation (replicator.go): the slice of Server a
// Replicator drives.

func (s *Server) replicaSet(hdr blockstore.Header) []int {
	// Copy: replicasFor may return the live placement slice, which a
	// concurrent write's substitution mutates in place. The replicator
	// compares its attempt set against currentSet to detect exactly that,
	// so it must hold a stable snapshot.
	return append([]int(nil), s.replicasFor(hdr)...)
}

func (s *Server) currentSet(hdr blockstore.Header) []int {
	set, ok := s.placement[chunkKey{seg: hdr.SegmentID, chunk: hdr.ChunkID}]
	if !ok {
		return nil
	}
	return append([]int(nil), set...)
}

func (s *Server) begin(expected, need int) (uint64, *pendingReq) {
	return s.newPendingQuorum(expected, need)
}

func (s *Server) abandon(repID uint64) { delete(s.pending, repID) }

func (s *Server) noteRetry(frameSize float64, replicas int) {
	s.ReplicateRetries++
	s.RetryBytes += frameSize * float64(replicas)
}

func (s *Server) replicateTimeout() float64 { return s.cfg.ReplicateTimeout }

func (s *Server) replicas() int { return s.cfg.Replicas }

func (s *Server) emit(now float64, event, detail string) {
	s.cfg.Trace.Emit(now, "mt", event, detail)
}

// noteWait records one completed fan-out's straggler wait on the
// request's trace: the interval between the attempt's sends being
// posted and the deciding ack arriving is time the middle tier spent
// blocked on the slowest awaited replica, not doing work. The span is
// a wait child of mt/replicate in the request DAG; its detail names
// the straggler so a p999 drill-down can say which replica dragged.
func (s *Server) noteWait(hdr blockstore.Header, pr *pendingReq) {
	if pr.sentAt < 0 || pr.decidedAt <= pr.sentAt {
		return
	}
	tid := traceID(hdr)
	tr := s.cfg.Trace.ForRequest(tid)
	if tr == nil {
		return
	}
	detail := ""
	if pr.deciderSlot >= 0 {
		detail = fmt.Sprintf("straggler replica=%d server=%d", pr.deciderSlot, pr.deciderIdx)
	}
	tr.Span(pr.sentAt, pr.decidedAt, "mt", "replicate.wait", tid, tid,
		"mt", "replicate", trace.KindWait, detail)
}

// stageBegin opens one request-scoped pipeline-stage span: grouped
// into the request's DAG (Req = tid) as a direct service child of the
// client root span.
func stageBegin(tr *trace.Tracer, at float64, component, name string, tid uint64) {
	tr.BeginReq(at, component, name, tid, tid, trace.KindService)
}

// engineSpans records the engine-occupancy split under one mt stage:
// queue wait for the engine slot ([q0, q1]) vs engine busy time
// ([q1, e1]). Sub-span names are static strings so recording stays
// allocation-free.
func (s *Server) engineSpans(tr *trace.Tracer, tid uint64, stage string, q0, q1, e1 float64) {
	if tr == nil {
		return
	}
	var qname, ename string
	switch stage {
	case "compress":
		qname, ename = "compress.qwait", "compress.engine"
	default:
		qname, ename = "decompress.qwait", "decompress.engine"
	}
	if q1 > q0 {
		tr.Span(q0, q1, "mt", qname, tid, tid, "mt", stage, trace.KindWait, "")
	}
	if e1 > q1 {
		tr.Span(q1, e1, "mt", ename, tid, tid, "mt", stage, trace.KindService, "")
	}
}

// ConnectClient attaches one client (VM storage agent): the returned
// QP is the client's side, ready to send requests. Connections are
// spread across ports round-robin.
func (s *Server) ConnectClient(peer *rdma.Stack) *rdma.QP {
	clientQP := peer.CreateQP()
	var local *rdma.QP
	switch s.cfg.Kind {
	case CPUOnly, Accel:
		local = s.nic.CreateQP(s.hostRecv)
	case BF2:
		stack := s.bf2Stacks[s.clientConns%len(s.bf2Stacks)]
		local = stack.CreateQP()
		qp := local
		local.OnRecv = func(m *rdma.Message) { s.bf2Recv(qp, m) }
	case SmartDS:
		local = s.sdsClientQP(s.clientConns % s.cfg.Ports)
	}
	s.clientConns++
	rdma.Connect(clientQP, local)
	s.clientLocals = append(s.clientLocals, local)
	return clientQP
}
