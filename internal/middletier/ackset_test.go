package middletier

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func TestAckSetRoundTrip(t *testing.T) {
	cases := []AckSet{
		{},
		{RepID: 1, Attempt: 1, Expected: 3, Need: 3},
		{RepID: 7, Attempt: 2, Expected: 5, Need: 3, Statuses: []uint8{0, 0, 1}},
		{RepID: 1<<64 - 1, Attempt: 1<<32 - 1, Expected: 1<<32 - 1, Need: 1<<32 - 1,
			Statuses: bytes.Repeat([]byte{0xff}, maxAckSetStatuses)},
	}
	for i, a := range cases {
		got, err := DecodeAckSet(a.Encode())
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, a)
		}
	}
}

func TestAckSetDecodeRejectsCorrupt(t *testing.T) {
	valid := (&AckSet{RepID: 7, Attempt: 2, Expected: 5, Need: 3, Statuses: []uint8{0, 0, 1}}).Encode()
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": valid[:len(valid)-2],
		"trailing":  append(append([]byte(nil), valid...), 0xaa),
	}
	// An encoding claiming more statuses than the cap allows.
	big := binary.AppendUvarint(nil, 1)
	big = binary.AppendUvarint(big, 1)
	big = binary.AppendUvarint(big, 1)
	big = binary.AppendUvarint(big, 1)
	big = binary.AppendUvarint(big, maxAckSetStatuses+1)
	cases["count over cap"] = big
	// A u32 field holding a value that only fits in u64.
	wide := binary.AppendUvarint(nil, 1)
	wide = binary.AppendUvarint(wide, 1<<33)
	cases["attempt overflow"] = wide
	for name, b := range cases {
		if _, err := DecodeAckSet(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input %x", name, b)
		}
	}
}

// FuzzAckSetDecode hammers the trace-facing decoder: it must never
// panic or over-allocate, and any input it accepts must re-encode to a
// canonical form that decodes to the same value (decode∘encode is the
// identity on accepted values).
func FuzzAckSetDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&AckSet{RepID: 1, Attempt: 1, Expected: 3, Need: 3}).Encode())
	f.Add((&AckSet{RepID: 7, Attempt: 2, Expected: 5, Need: 3, Statuses: []uint8{0, 0, 1}}).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := DecodeAckSet(b)
		if err != nil {
			return
		}
		if len(a.Statuses) > maxAckSetStatuses {
			t.Fatalf("accepted %d statuses, cap is %d", len(a.Statuses), maxAckSetStatuses)
		}
		again, err := DecodeAckSet(a.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted value failed: %v", err)
		}
		if !reflect.DeepEqual(again, a) {
			t.Fatalf("re-encode round trip changed the value: %+v != %+v", again, a)
		}
	})
}
