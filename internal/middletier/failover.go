package middletier

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/storage"
)

// This file is the middle tier's failure-handling plane: bounded-retry
// replication, compression-engine fail-over, transport reconnects, and
// crashed-server rebuild. The data paths (hostpaths.go, bf2.go,
// smartds.go) call into it; the fault injector (internal/faults) and
// the failover tests drive it from outside.

// maxReplicateAttempts bounds how many times one write's fan-out is
// re-issued before the client gets an error. Each retry refreshes the
// replica set, so a crashed server is routed around on the second
// attempt; repeated failure means the cluster itself is unhealthy.
const maxReplicateAttempts = 4

// replicateWait runs one write's replication through the configured
// protocol (replicator.go). send must issue the replicate message to
// every server in set, tagged with repID, through whatever front end
// the design has; the protocol may call it several times, each with a
// fresh repID and whatever subset its fan-out order dictates. The
// returned status is what the client ack carries; stored is how many
// replicas the deciding attempt shipped the frame to (the BytesStored
// accounting factor).
func (s *Server) replicateWait(p *sim.Proc, hdr blockstore.Header, frameSize float64,
	send SendFn) (blockstore.Status, int) {
	return s.rep.Replicate(s, p, hdr, frameSize, send)
}

// SetEngineDown fails (true) or restores (false) a compression engine:
// index 0 for the Accel card and the BF2 SoC engine, the port index
// for SmartDS's per-port engines.
func (s *Server) SetEngineDown(port int, down bool) {
	if port < 0 || port >= len(s.engineDown) {
		return
	}
	s.engineDown[port] = down
	// Mirror the failure onto the device engine itself so a routing bug
	// that submits work to a failed engine surfaces as ErrEngineDown
	// instead of silently compressing.
	switch {
	case s.bf2Engine != nil && port == 0:
		s.bf2Engine.SetDown(down)
	case s.sds != nil:
		if inst, err := s.sds.OpenRoCEInstance(port); err == nil {
			inst.Engine().SetDown(down)
		}
	}
}

// engineAvailable reports whether the engine at idx is serving.
func (s *Server) engineAvailable(idx int) bool {
	return idx >= 0 && idx < len(s.engineDown) && !s.engineDown[idx]
}

// altEnginePort finds a surviving SmartDS engine to reroute compression
// to when the request's own port engine is down; -1 when none is left.
func (s *Server) altEnginePort(down int) int {
	for i := range s.engineDown {
		if i != down && !s.engineDown[i] {
			return i
		}
	}
	return -1
}

// Addrs returns the middle tier's fabric addresses — the ports a fault
// injector targets for loss or degradation on "mt".
func (s *Server) Addrs() []netsim.Addr {
	switch s.cfg.Kind {
	case CPUOnly, Accel:
		return []netsim.Addr{"mt-nic"}
	case BF2:
		out := make([]netsim.Addr, 0, len(s.bf2Stacks))
		for _, st := range s.bf2Stacks {
			out = append(out, st.Addr())
		}
		return out
	case SmartDS:
		out := make([]netsim.Addr, 0, s.cfg.Ports)
		for i := 0; i < s.cfg.Ports; i++ {
			out = append(out, netsim.Addr(fmt.Sprintf("%s-p%d", s.sds.Name(), i)))
		}
		return out
	}
	return nil
}

// ReplicaSet returns a copy of the recorded placement for one chunk
// (empty when the chunk was never written through this server). The
// durability checker walks it to find which stores must hold a block.
func (s *Server) ReplicaSet(seg uint64, chunk uint32) []int {
	set := s.placement[chunkKey{seg: seg, chunk: chunk}]
	out := make([]int, len(set))
	copy(out, set)
	return out
}

// ClientLocalQP returns the middle-tier side of client connection i (in
// ConnectClient order) so the transport layer can be reconnected after
// a middle-tier restart.
func (s *Server) ClientLocalQP(i int) *rdma.QP {
	if i < 0 || i >= len(s.clientLocals) {
		return nil
	}
	return s.clientLocals[i]
}

// ClientConns returns how many client connections are attached.
func (s *Server) ClientConns() int { return len(s.clientLocals) }

// ReconnectStorage re-establishes every transport path to storage
// server idx whose QP broke while the server was dark (retry budget
// exhausted during a crash window). Both ends reset to a common new
// epoch; unbroken paths are left untouched.
func (s *Server) ReconnectStorage(idx int, srv *storage.Server) {
	for pi := range s.storagePaths {
		if idx < 0 || idx >= len(s.storagePaths[pi]) {
			continue
		}
		local := s.storagePaths[pi][idx]
		peer := srv.Stack().QP(local.Remote().QPN)
		if peer == nil {
			continue
		}
		if local.Broken() || peer.Broken() {
			rdma.Reconnect(local, peer)
		}
	}
}

// RebuildServer streams surviving replicas' chunk snapshots into a
// recovered server's empty store (the re-replication phase of
// fail-over). It charges the transfer at the middle tier's port rate
// and returns the snapshot bytes moved. Chunks are rebuilt in sorted
// (segment, chunk) order so same-seed runs replay identically.
func (s *Server) RebuildServer(p *sim.Proc, idx int, servers []*storage.Server) float64 {
	var keys []chunkKey
	for key, set := range s.placement {
		for _, m := range set {
			if m == idx {
				keys = append(keys, key)
				break
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].seg != keys[j].seg {
			return keys[i].seg < keys[j].seg
		}
		return keys[i].chunk < keys[j].chunk
	})
	dst := servers[idx].Store()
	total := 0.0
	rebuilt := 0
	for _, key := range keys {
		var src *storage.Server
		for _, m := range s.placement[key] {
			if m != idx && m >= 0 && m < len(servers) && !servers[m].Down() {
				src = servers[m]
				break
			}
		}
		if src == nil {
			continue // no surviving replica: data loss, nothing to stream
		}
		var buf bytes.Buffer
		n, err := src.Store().SnapshotChunk(&buf, key.seg, key.chunk, s.cfg.Level)
		if err != nil {
			continue
		}
		if _, err := dst.RestoreSnapshot(&buf); err != nil {
			continue
		}
		total += float64(n)
		rebuilt++
	}
	if total > 0 {
		p.Sleep(total / s.cfg.PortRate)
	}
	s.RebuildBytes += total
	if s.cfg.Trace != nil {
		s.cfg.Trace.Emit(p.Now(), "mt", "rebuild",
			fmt.Sprintf("server=%d chunks=%d bytes=%.0f", idx, rebuilt, total))
	}
	if s.cfg.Log.Enabled(evlog.Info) {
		s.cfg.Log.Info("rebuild", "server", idx, "chunks", rebuilt, "bytes", total)
	}
	return total
}
