// Package corpus generates the deterministic synthetic workload data
// the experiments compress.
//
// The paper evaluates on the Silesia compression corpus, a fixed set of
// files spanning the data types found in practice (English text, source
// code, XML, database tables, executables, medical imagery, near-random
// scientific data). Shipping Silesia is not possible offline, so this
// package synthesizes one stream per class with generators tuned so
// that 4 KB blocks compress under this repository's LZ4 at ratios
// matching the class character, and the default mix lands near the
// corpus-wide LZ4 ratio (~2.1x). The blocks drive the middle tier, and
// their *actual* compressed sizes determine replication traffic, so the
// generators matter to every bandwidth figure.
package corpus

import (
	"fmt"

	"github.com/disagg/smartds/internal/rng"
)

// Class identifies a data type in the synthetic corpus.
type Class int

// Corpus data classes, mirroring the character of Silesia members.
const (
	Text     Class = iota // dickens/webster: English prose
	Source                // samba: program source code
	XML                   // xml: markup with heavy tag repetition
	Database              // nci/osdb: fixed-width records, low-cardinality fields
	Binary                // mozilla/ooffice: executables; structured with noise
	Medical               // mr/x-ray: sensor imagery; weakly compressible
	Random                // sao-like: effectively incompressible
	Zero                  // all-zero pages (sparse disks are common in clouds)
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Text:
		return "text"
	case Source:
		return "source"
	case XML:
		return "xml"
	case Database:
		return "database"
	case Binary:
		return "binary"
	case Medical:
		return "medical"
	case Random:
		return "random"
	case Zero:
		return "zero"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes lists every class in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// DefaultMix is the block-sampling weight per class. It is chosen so the
// mixed stream's LZ4 ratio sits near Silesia's ~2.1x.
func DefaultMix() map[Class]float64 {
	return map[Class]float64{
		Text:     0.22,
		Source:   0.15,
		XML:      0.10,
		Database: 0.19,
		Binary:   0.16,
		Medical:  0.09,
		Random:   0.04,
		Zero:     0.05,
	}
}

// Corpus holds one pre-generated stream per class plus a sampler.
type Corpus struct {
	streams [numClasses][]byte
	classes []Class
	weights []float64
	r       *rng.Source
}

// Option configures corpus construction.
type Option func(*config)

type config struct {
	bytesPerClass int
	mix           map[Class]float64
}

// WithStreamSize sets the per-class stream length in bytes.
func WithStreamSize(n int) Option {
	return func(c *config) { c.bytesPerClass = n }
}

// WithMix overrides the class sampling weights.
func WithMix(mix map[Class]float64) Option {
	return func(c *config) { c.mix = mix }
}

// New builds a corpus from a seed. The default stream size (256 KiB per
// class) keeps construction cheap while giving 4 KB blocks plenty of
// distinct offsets.
func New(seed uint64, opts ...Option) *Corpus {
	cfg := config{bytesPerClass: 256 << 10, mix: DefaultMix()}
	for _, o := range opts {
		o(&cfg)
	}
	root := rng.New(seed)
	c := &Corpus{r: root.Split()}
	gens := [numClasses]func(*rng.Source, []byte){
		Text:     genText,
		Source:   genSource,
		XML:      genXML,
		Database: genDatabase,
		Binary:   genBinary,
		Medical:  genMedical,
		Random:   genRandom,
		Zero:     genZero,
	}
	for cl := Class(0); cl < numClasses; cl++ {
		buf := make([]byte, cfg.bytesPerClass)
		gens[cl](root.Split(), buf)
		c.streams[cl] = buf
	}
	// Walk classes in id order rather than ranging over the mix map, so
	// the weight table (and every Choice draw from it) is independent of
	// Go's map iteration seed.
	for cl := Class(0); cl < numClasses; cl++ {
		if w := cfg.mix[cl]; w > 0 {
			c.classes = append(c.classes, cl)
			c.weights = append(c.weights, w)
		}
	}
	if len(c.classes) == 0 {
		panic("corpus: empty mix")
	}
	return c
}

// Block returns a fresh buffer of the given size sampled from the class
// mix at a random stream offset.
func (c *Corpus) Block(size int) []byte {
	cl := c.classes[c.r.Choice(c.weights)]
	return c.BlockOf(cl, size)
}

// BlockOf samples a block from one specific class.
func (c *Corpus) BlockOf(class Class, size int) []byte {
	if class < 0 || class >= numClasses {
		panic(fmt.Sprintf("corpus: invalid class %d", class))
	}
	stream := c.streams[class]
	if size <= 0 {
		return nil
	}
	out := make([]byte, size)
	off := c.r.Intn(len(stream))
	n := copy(out, stream[off:])
	for n < size { // wrap around
		n += copy(out[n:], stream)
	}
	return out
}

// Stream exposes a class's raw stream (read-only by convention).
func (c *Corpus) Stream(class Class) []byte { return c.streams[class] }

// --- class generators -------------------------------------------------

var words = []string{
	"the", "of", "and", "a", "to", "in", "is", "was", "he", "for",
	"it", "with", "as", "his", "on", "be", "at", "by", "had", "not",
	"storage", "block", "server", "request", "data", "cloud", "virtual",
	"machine", "network", "message", "header", "payload", "compress",
	"middle", "tier", "disk", "segment", "chunk", "replica", "latency",
	"throughput", "bandwidth", "memory", "device", "engine", "flexible",
	"morning", "evening", "window", "garden", "letter", "whisper",
	"pleasant", "gentle", "curious", "remarkable", "certainly", "however",
}

// genText emits Zipf-weighted English-like prose.
func genText(r *rng.Source, buf []byte) {
	w := make([]float64, len(words))
	for i := range w {
		w[i] = 1.0 / float64(i+1) // Zipf
	}
	i := 0
	col := 0
	for i < len(buf) {
		word := words[r.Choice(w)]
		for k := 0; k < len(word) && i < len(buf); k++ {
			buf[i] = word[k]
			i++
		}
		if i < len(buf) {
			if col += len(word) + 1; col > 72 {
				buf[i] = '\n'
				col = 0
			} else if r.Float64() < 0.08 {
				buf[i] = '.'
			} else {
				buf[i] = ' '
			}
			i++
		}
	}
}

// genSource emits C-like source code.
func genSource(r *rng.Source, buf []byte) {
	idents := []string{"ret", "buf", "len", "ctx", "req", "err", "ptr", "idx", "off", "dev"}
	templates := []string{
		"static int %s_handle(struct %s *%s, int %s)\n{\n",
		"\tif (%s->%s == NULL)\n\t\treturn -EINVAL;\n",
		"\t%s = %s_alloc(%s, sizeof(*%s));\n",
		"\tfor (%s = 0; %s < %s; %s++)\n",
		"\t\t%s[%s] = %s(%s);\n",
		"\treturn %s;\n}\n\n",
		"/* %s: process one %s from the %s queue */\n",
	}
	i := 0
	for i < len(buf) {
		tmpl := templates[r.Intn(len(templates))]
		args := make([]interface{}, 4)
		for k := range args {
			args[k] = idents[r.Intn(len(idents))]
		}
		s := fmt.Sprintf(tmpl, args...)
		n := copy(buf[i:], s)
		i += n
	}
}

// genXML emits markup with heavily repeated tags and attributes.
func genXML(r *rng.Source, buf []byte) {
	tags := []string{"record", "entry", "item", "node", "field"}
	i := 0
	for i < len(buf) {
		tag := tags[r.Intn(len(tags))]
		s := fmt.Sprintf("<%s id=\"%06d\" type=\"%s\"><value>%d</value></%s>\n",
			tag, r.Intn(1000000), tags[r.Intn(len(tags))], r.Intn(100), tag)
		i += copy(buf[i:], s)
	}
}

// genDatabase emits fixed-width records: sequential keys, enum fields,
// and a few random payload bytes, like nci/osdb table dumps.
func genDatabase(r *rng.Source, buf []byte) {
	const recLen = 64
	statuses := []string{"ACTIVE ", "CLOSED ", "PENDING", "ARCHIVE"}
	rec := make([]byte, recLen)
	key := 1000000
	i := 0
	for i < len(buf) {
		s := fmt.Sprintf("K%09d|%s|REGION%02d|", key, statuses[r.Intn(len(statuses))], r.Intn(8))
		n := copy(rec, s)
		for k := n; k < recLen-1; k++ {
			if r.Float64() < 0.2 {
				rec[k] = byte('0' + r.Intn(10))
			} else {
				rec[k] = ' '
			}
		}
		rec[recLen-1] = '\n'
		i += copy(buf[i:], rec)
		key++
	}
}

// genBinary emits executable-like content: repeated instruction-ish
// patterns, address tables, string pools, and noise sections.
func genBinary(r *rng.Source, buf []byte) {
	sectionWeights := []float64{0.30, 0.20, 0.20, 0.15, 0.15}
	// A small pool of instruction "idioms" so code sections repeat the
	// way real compiled functions do (prologues, epilogues, mov chains).
	idioms := make([][]byte, 24)
	for k := range idioms {
		id := make([]byte, 8+r.Intn(8))
		r.Bytes(id)
		idioms[k] = id
	}
	i := 0
	for i < len(buf) {
		runLen := 200 + r.Intn(800)
		if i+runLen > len(buf) {
			runLen = len(buf) - i
		}
		switch r.Choice(sectionWeights) {
		case 0: // instruction-like: repeated idioms with occasional operands
			for k := 0; k < runLen; {
				id := idioms[r.Intn(len(idioms))]
				n := copy(buf[i+k:i+runLen], id)
				k += n
				if k < runLen && r.Float64() < 0.3 {
					buf[i+k] = byte(r.Intn(256))
					k++
				}
			}
		case 1: // address table: small deltas, constant high bytes
			base := uint32(r.Uint64()) & 0x00ffffff
			for k := 0; k+4 <= runLen; k += 4 {
				base += uint32(r.Intn(16) * 8)
				buf[i+k] = byte(base)
				buf[i+k+1] = byte(base >> 8)
				buf[i+k+2] = byte(base >> 16)
				buf[i+k+3] = 0x00
			}
		case 2: // string pool
			for k := 0; k < runLen; {
				s := words[r.Intn(len(words))]
				n := copy(buf[i+k:i+runLen], s)
				k += n
				if k < runLen {
					buf[i+k] = 0
					k++
				}
			}
		case 3: // zero padding between sections
			for k := 0; k < runLen; k++ {
				buf[i+k] = 0
			}
		default: // noise (packed/encrypted resources)
			r.Bytes(buf[i : i+runLen])
		}
		i += runLen
	}
}

// genMedical emits smooth sensor-like data: a random walk per 2-byte
// sample. Neighboring samples correlate but bytes rarely repeat in
// 4-byte runs, giving the weak compressibility of mr/x-ray.
func genMedical(r *rng.Source, buf []byte) {
	v := 2048.0
	for i := 0; i+2 <= len(buf); i += 2 {
		v += r.Norm(0, 10)
		if v < 0 {
			v = 0
		}
		if v > 4095 {
			v = 4095
		}
		// Sensors quantize; coarse steps make short byte runs repeat,
		// giving the ~1.1-1.2x LZ4 ratio of mr/x-ray.
		s := (uint16(v) / 8) * 8
		buf[i] = byte(s)
		buf[i+1] = byte(s >> 8)
	}
}

// genRandom emits incompressible bytes.
func genRandom(r *rng.Source, buf []byte) { r.Bytes(buf) }

// genZero leaves the buffer zeroed.
func genZero(_ *rng.Source, _ []byte) {}
