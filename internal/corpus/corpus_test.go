package corpus

import (
	"bytes"
	"testing"

	"github.com/disagg/smartds/internal/lz4"
)

// classRatio compresses n blocks of a class and returns the mean ratio.
func classRatio(t *testing.T, c *Corpus, cl Class, n int) float64 {
	t.Helper()
	enc := lz4.NewEncoder(4096)
	dst := make([]byte, lz4.CompressBound(4096))
	totalIn, totalOut := 0, 0
	for i := 0; i < n; i++ {
		blk := c.BlockOf(cl, 4096)
		m, err := enc.Compress(dst, blk, lz4.LevelDefault)
		if err != nil {
			t.Fatal(err)
		}
		totalIn += len(blk)
		totalOut += m
	}
	return float64(totalIn) / float64(totalOut)
}

func TestDeterministicConstruction(t *testing.T) {
	a, b := New(42), New(42)
	for _, cl := range Classes() {
		if !bytes.Equal(a.Stream(cl), b.Stream(cl)) {
			t.Fatalf("class %v streams differ for same seed", cl)
		}
	}
	// Sampling is deterministic too.
	for i := 0; i < 10; i++ {
		if !bytes.Equal(a.Block(4096), b.Block(4096)) {
			t.Fatalf("block sample %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	if bytes.Equal(a.Stream(Text), b.Stream(Text)) {
		t.Fatal("different seeds produced identical text streams")
	}
}

func TestBlockSizesAndWrap(t *testing.T) {
	c := New(3, WithStreamSize(8192))
	for _, size := range []int{1, 512, 4096, 8192, 20000} {
		blk := c.Block(size)
		if len(blk) != size {
			t.Fatalf("Block(%d) returned %d bytes", size, len(blk))
		}
	}
	if c.BlockOf(Text, 0) != nil {
		t.Fatal("zero-size block should be nil")
	}
}

func TestBlockIsACopy(t *testing.T) {
	c := New(4)
	blk := c.BlockOf(Text, 64)
	orig := append([]byte(nil), blk...)
	for i := range blk {
		blk[i] = 0xFF
	}
	blk2 := c.BlockOf(Text, 64)
	_ = blk2
	// The stream must be untouched: resampling can't return 0xFF-filled data
	// unless the generator made it, which Text never does.
	stream := c.Stream(Text)
	for _, b := range stream[:64] {
		if b == 0xFF {
			t.Fatal("corpus stream was mutated through a returned block")
		}
	}
	_ = orig
}

func TestInvalidClassPanics(t *testing.T) {
	c := New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid class did not panic")
		}
	}()
	c.BlockOf(Class(99), 128)
}

func TestClassCompressibilityOrdering(t *testing.T) {
	c := New(42)
	const n = 64
	ratios := map[Class]float64{}
	for _, cl := range Classes() {
		ratios[cl] = classRatio(t, c, cl, n)
	}
	t.Logf("class ratios: %v", ratios)

	if ratios[Zero] < 20 {
		t.Errorf("zero pages ratio %.2f, want very high", ratios[Zero])
	}
	if ratios[Random] > 1.05 {
		t.Errorf("random ratio %.2f, want ~1.0", ratios[Random])
	}
	if ratios[Medical] > ratios[Database] {
		t.Errorf("medical (%.2f) should compress worse than database (%.2f)",
			ratios[Medical], ratios[Database])
	}
	if ratios[Text] < 1.5 {
		t.Errorf("text ratio %.2f, want >= 1.5", ratios[Text])
	}
	if ratios[XML] < 2.0 {
		t.Errorf("xml ratio %.2f, want >= 2.0", ratios[XML])
	}
	if ratios[Source] < 2.0 {
		t.Errorf("source ratio %.2f, want >= 2.0", ratios[Source])
	}
}

func TestDefaultMixRatioNearSilesia(t *testing.T) {
	// The paper's corpus compresses around 2.1x under LZ4; our mixed
	// stream should land in the same neighborhood so all derived
	// bandwidth numbers are comparable.
	c := New(42)
	enc := lz4.NewEncoder(4096)
	dst := make([]byte, lz4.CompressBound(4096))
	totalIn, totalOut := 0, 0
	for i := 0; i < 400; i++ {
		blk := c.Block(4096)
		m, err := enc.Compress(dst, blk, lz4.LevelDefault)
		if err != nil {
			t.Fatal(err)
		}
		totalIn += len(blk)
		totalOut += m
	}
	ratio := float64(totalIn) / float64(totalOut)
	t.Logf("default mix LZ4 ratio: %.2fx", ratio)
	if ratio < 1.7 || ratio > 2.6 {
		t.Fatalf("mixed corpus ratio %.2f outside Silesia-like band [1.7, 2.6]", ratio)
	}
}

func TestWithMixRestriction(t *testing.T) {
	c := New(7, WithMix(map[Class]float64{Zero: 1}))
	for i := 0; i < 10; i++ {
		blk := c.Block(128)
		for _, b := range blk {
			if b != 0 {
				t.Fatal("zero-only mix returned nonzero data")
			}
		}
	}
}

func TestEmptyMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty mix did not panic")
		}
	}()
	New(1, WithMix(map[Class]float64{}))
}

func TestClassString(t *testing.T) {
	if Text.String() != "text" || Zero.String() != "zero" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class should stringify")
	}
}
