package storage

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/disagg/smartds/internal/lz4"
)

// Snapshotting (paper §2.2.3): the middle tier periodically captures a
// consistent image of a chunk's live blocks. The image is a sequence of
// records inside this repository's LZ4 stream container, so snapshots
// are themselves compressed and integrity-checked, and can be restored
// into any chunk store.
//
// Record layout inside the stream (little endian):
//
//	u64 segmentID, u32 chunkID, u32 blockOff,
//	u8 flags, u32 payloadLen, u64 writeVersion, payload bytes
// A payloadLen of 0xFFFFFFFF marks a modeled (sizes-only) record and is
// followed by u32 sizeHint instead of payload bytes. writeVersion is
// the writer-assigned block version; restores route through the
// versioned appends so replaying a snapshot over a store that already
// holds newer writes (replica backfill racing live traffic) never
// regresses a block.

const modeledMark = ^uint32(0)

// SnapshotChunk writes a consistent image of one chunk's live records.
func (s *ChunkStore) SnapshotChunk(w io.Writer, seg uint64, chunk uint32, level lz4.Level) (int, error) {
	sw, err := lz4.NewWriter(w, level, 0)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, rec := range s.records {
		if !rec.live || rec.Key.SegmentID != seg || rec.Key.ChunkID != chunk {
			continue
		}
		if err := writeSnapshotRecord(sw, rec); err != nil {
			return count, err
		}
		count++
	}
	return count, sw.Close()
}

// Snapshot writes an image of every live record in the store.
func (s *ChunkStore) Snapshot(w io.Writer, level lz4.Level) (int, error) {
	sw, err := lz4.NewWriter(w, level, 0)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, rec := range s.records {
		if !rec.live {
			continue
		}
		if err := writeSnapshotRecord(sw, rec); err != nil {
			return count, err
		}
		count++
	}
	return count, sw.Close()
}

func writeSnapshotRecord(w io.Writer, rec *Record) error {
	var hdr [29]byte
	binary.LittleEndian.PutUint64(hdr[0:], rec.Key.SegmentID)
	binary.LittleEndian.PutUint32(hdr[8:], rec.Key.ChunkID)
	binary.LittleEndian.PutUint32(hdr[12:], rec.Key.BlockOff)
	hdr[16] = rec.Flags
	binary.LittleEndian.PutUint64(hdr[21:], rec.WriteVersion)
	if rec.Data == nil {
		binary.LittleEndian.PutUint32(hdr[17:], modeledMark)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		var sz [4]byte
		binary.LittleEndian.PutUint32(sz[:], rec.SizeHint)
		_, err := w.Write(sz[:])
		return err
	}
	binary.LittleEndian.PutUint32(hdr[17:], uint32(len(rec.Data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(rec.Data)
	return err
}

// RestoreSnapshot appends every record from a snapshot image into the
// store (the fail-over path for rebuilding a replacement server). It
// returns the number of records restored.
func (s *ChunkStore) RestoreSnapshot(r io.Reader) (int, error) {
	sr := lz4.NewReader(r)
	count := 0
	for {
		var hdr [29]byte
		if _, err := io.ReadFull(sr, hdr[:]); err != nil {
			if err == io.EOF {
				return count, nil
			}
			return count, fmt.Errorf("storage: snapshot record header: %w", err)
		}
		key := BlockKey{
			SegmentID: binary.LittleEndian.Uint64(hdr[0:]),
			ChunkID:   binary.LittleEndian.Uint32(hdr[8:]),
			BlockOff:  binary.LittleEndian.Uint32(hdr[12:]),
		}
		flags := hdr[16]
		plen := binary.LittleEndian.Uint32(hdr[17:])
		version := binary.LittleEndian.Uint64(hdr[21:])
		if plen == modeledMark {
			var sz [4]byte
			if _, err := io.ReadFull(sr, sz[:]); err != nil {
				return count, fmt.Errorf("storage: snapshot modeled record: %w", err)
			}
			s.AppendModeledVersioned(key, binary.LittleEndian.Uint32(sz[:]), flags, version)
		} else {
			if plen > 64<<20 {
				return count, fmt.Errorf("storage: snapshot record of %d bytes is implausible", plen)
			}
			payload := make([]byte, plen)
			if _, err := io.ReadFull(sr, payload); err != nil {
				return count, fmt.Errorf("storage: snapshot record payload: %w", err)
			}
			s.AppendVersioned(key, payload, flags, version)
		}
		count++
	}
}
