package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
)

func TestChunkStoreAppendLookup(t *testing.T) {
	s := NewChunkStore()
	k := BlockKey{SegmentID: 1, ChunkID: 2, BlockOff: 3}
	s.Append(k, []byte("v1"))
	s.Append(k, []byte("v2"))
	rec, ok := s.Lookup(k)
	if !ok || string(rec.Data) != "v2" {
		t.Fatalf("lookup = %v %v", rec, ok)
	}
	if s.Records() != 2 {
		t.Fatalf("records = %d", s.Records())
	}
	if s.LiveBytes() != 2 || s.DeadBytes() != 2 {
		t.Fatalf("live=%d dead=%d", s.LiveBytes(), s.DeadBytes())
	}
}

func TestChunkStoreCompact(t *testing.T) {
	s := NewChunkStore()
	k := BlockKey{}
	for i := 0; i < 10; i++ {
		s.Append(k, bytes.Repeat([]byte{byte(i)}, 10))
	}
	if s.GarbageRatio() != 0.9 {
		t.Fatalf("garbage ratio %g", s.GarbageRatio())
	}
	reclaimed := s.Compact()
	if reclaimed != 90 {
		t.Fatalf("reclaimed %d", reclaimed)
	}
	if s.Records() != 1 || s.DeadBytes() != 0 {
		t.Fatalf("after compact: records=%d dead=%d", s.Records(), s.DeadBytes())
	}
	rec, ok := s.Lookup(k)
	if !ok || rec.Data[0] != 9 {
		t.Fatal("latest version lost in compaction")
	}
}

func TestChunkStoreAppendIsolatesCaller(t *testing.T) {
	s := NewChunkStore()
	buf := []byte("mutable")
	s.Append(BlockKey{}, buf)
	buf[0] = 'X'
	rec, _ := s.Lookup(BlockKey{})
	if rec.Data[0] == 'X' {
		t.Fatal("store aliases caller buffer")
	}
}

func TestChunkStoreProperty(t *testing.T) {
	// Lookup always returns the last appended version per key, and
	// compaction never changes lookup results.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		s := NewChunkStore()
		want := map[BlockKey]byte{}
		for i := 0; i < 300; i++ {
			k := BlockKey{ChunkID: uint32(r.Intn(8)), BlockOff: uint32(r.Intn(16))}
			v := byte(r.Intn(256))
			s.Append(k, []byte{v})
			want[k] = v
			if r.Float64() < 0.05 {
				s.Compact()
			}
		}
		s.Compact()
		for k, v := range want {
			rec, ok := s.Lookup(k)
			if !ok || rec.Data[0] != v {
				return false
			}
		}
		return s.DeadBytes() == 0 && s.Records() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskTiming(t *testing.T) {
	e := sim.NewEnv()
	d := NewDisk(e, "d", DiskConfig{WriteLatency: 10e-6, ReadLatency: 50e-6, BytesPerSec: 1e9, QueueDepth: 4})
	var wt, rt sim.Time
	e.Go("p", func(p *sim.Proc) {
		start := p.Now()
		d.Write(p, 1e6) // 10us + 1ms
		wt = p.Now() - start
		start = p.Now()
		d.Read(p, 1e6) // 50us + 1ms
		rt = p.Now() - start
	})
	e.Run(0)
	if wt < 1.00e-3 || wt > 1.02e-3 {
		t.Fatalf("write time %g", wt)
	}
	if rt < 1.04e-3 || rt > 1.06e-3 {
		t.Fatalf("read time %g", rt)
	}
}

// rig wires a server and a client QP pair.
type rig struct {
	env    *sim.Env
	server *Server
	client *rdma.QP
	sqp    *rdma.QP
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEnv()
	f := netsim.NewFabric(e, netsim.DefaultConfig())
	srv := NewServer(e, f, "ss0", 12.5e9, rdma.DefaultConfig(), DefaultDisk())
	peer := rdma.NewStack(e, f.NewPort("mt", 12.5e9), rdma.DefaultConfig())
	cqp := peer.CreateQP()
	sqp := srv.AcceptQP()
	rdma.Connect(cqp, sqp)
	return &rig{env: e, server: srv, client: cqp, sqp: sqp}
}

func TestServerWriteThenRead(t *testing.T) {
	r := newRig(t)
	r.server.Verify = true
	block := bytes.Repeat([]byte("data0123"), 512) // 4 KB
	frame, _ := lz4.EncodeFrame(block, lz4.LevelDefault)
	h := blockstore.Header{
		Op:        blockstore.OpReplicate,
		Flags:     blockstore.FlagCompressed,
		ReqID:     1,
		SegmentID: 5,
		ChunkID:   6,
		BlockOff:  7,
		OrigLen:   uint32(len(block)),
		CRC:       lz4.Checksum(block),
	}

	var writeStatus, readStatus blockstore.Status
	var fetched []byte
	//detcheck:spawn buffered host-side reply counter; callbacks run on the single scheduler thread
	replies := make(chan struct{}, 8)
	r.client.OnRecv = func(m *rdma.Message) {
		rh, payload, err := blockstore.SplitMessage(m.Data)
		if err != nil {
			t.Errorf("bad reply: %v", err)
			return
		}
		switch rh.Op {
		case blockstore.OpReplicateReply:
			writeStatus = rh.Status
		case blockstore.OpFetchReply:
			readStatus = rh.Status
			fetched = append([]byte(nil), payload...)
		}
		replies <- struct{}{} //detcheck:spawn buffered, never blocks; same scheduler thread
	}

	r.env.Go("mt", func(p *sim.Proc) {
		p.Wait(r.client.Send(blockstore.Message(&h, frame)))
		p.Sleep(1e-3)
		rh := blockstore.Header{Op: blockstore.OpFetch, ReqID: 2, SegmentID: 5, ChunkID: 6, BlockOff: 7}
		p.Wait(r.client.Send(rh.Encode()))
	})
	r.env.Run(0)

	if writeStatus != blockstore.StatusOK {
		t.Fatalf("write status %v", writeStatus)
	}
	if readStatus != blockstore.StatusOK {
		t.Fatalf("read status %v", readStatus)
	}
	got, err := lz4.DecodeFrame(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block) {
		t.Fatal("fetched block differs from written block")
	}
	if r.server.Writes != 1 || r.server.Reads != 1 {
		t.Fatalf("counters: w=%d r=%d", r.server.Writes, r.server.Reads)
	}
}

func TestServerReadMissing(t *testing.T) {
	r := newRig(t)
	var status blockstore.Status = 255
	r.client.OnRecv = func(m *rdma.Message) {
		rh, _, _ := blockstore.SplitMessage(m.Data)
		status = rh.Status
	}
	r.env.Go("mt", func(p *sim.Proc) {
		h := blockstore.Header{Op: blockstore.OpFetch, ReqID: 3}
		p.Wait(r.client.Send(h.Encode()))
	})
	r.env.Run(0)
	if status != blockstore.StatusNotFound {
		t.Fatalf("status = %v, want NotFound", status)
	}
}

func TestServerRejectsCorruptPayload(t *testing.T) {
	r := newRig(t)
	r.server.Verify = true
	block := bytes.Repeat([]byte("x"), 1024)
	frame, _ := lz4.EncodeFrame(block, lz4.LevelDefault)
	h := blockstore.Header{
		Op:    blockstore.OpReplicate,
		Flags: blockstore.FlagCompressed,
		CRC:   lz4.Checksum(block) ^ 1, // wrong CRC
	}
	var status blockstore.Status = 255
	r.client.OnRecv = func(m *rdma.Message) {
		rh, _, _ := blockstore.SplitMessage(m.Data)
		status = rh.Status
	}
	r.env.Go("mt", func(p *sim.Proc) {
		p.Wait(r.client.Send(blockstore.Message(&h, frame)))
	})
	r.env.Run(0)
	if status != blockstore.StatusCorrupt {
		t.Fatalf("status = %v, want Corrupt", status)
	}
	if _, ok := r.server.Store().Lookup(BlockKey{}); ok {
		t.Fatal("corrupt block stored anyway")
	}
}

func TestServerModeledOnlyTraffic(t *testing.T) {
	// nil-Data messages (pure-throughput experiments) still get replies.
	r := newRig(t)
	got := 0
	r.client.OnRecv = func(*rdma.Message) { got++ }
	r.env.Go("mt", func(p *sim.Proc) {
		p.Wait(r.client.SendSized(nil, 4096))
	})
	r.env.Run(0)
	if got != 1 || r.server.Writes != 1 {
		t.Fatalf("modeled traffic: replies=%d writes=%d", got, r.server.Writes)
	}
}

func TestServerGarbageReply(t *testing.T) {
	r := newRig(t)
	var status blockstore.Status = 255
	r.client.OnRecv = func(m *rdma.Message) {
		rh, _, _ := blockstore.SplitMessage(m.Data)
		status = rh.Status
	}
	r.env.Go("mt", func(p *sim.Proc) {
		p.Wait(r.client.Send([]byte("not a header at all, just junk bytes...............")))
	})
	r.env.Run(0)
	if status != blockstore.StatusError {
		t.Fatalf("status = %v, want Error", status)
	}
}
