package storage

import (
	"bytes"
	"testing"

	"github.com/disagg/smartds/internal/lz4"
)

// TestAppendVersionedGuard pins the idempotence guard replicate
// retries and quorum read-repair lean on: a versioned append never
// replaces a record that already holds the same or a newer writer
// version (the refusal hands back the standing record), so a resent
// frame or a racing repair cannot roll a block back.
func TestAppendVersionedGuard(t *testing.T) {
	s := NewChunkStore()
	key := BlockKey{SegmentID: 1, ChunkID: 2, BlockOff: 3}

	first := s.AppendVersioned(key, []byte("v5"), 0, 5)
	if first == nil || first.WriteVersion != 5 {
		t.Fatal("first versioned append refused")
	}
	// Same version again: the retry must be a no-op returning the
	// standing record.
	if rec := s.AppendVersioned(key, []byte("v5-retry"), 0, 5); rec != first {
		t.Fatal("replay of the same version replaced the record")
	}
	// Older version: a straggler from an abandoned fan-out must lose.
	if rec := s.AppendVersioned(key, []byte("v4"), 0, 4); rec != first {
		t.Fatal("older version overwrote a newer record")
	}
	if got, _ := s.Lookup(key); !bytes.Equal(got.Data, []byte("v5")) {
		t.Fatalf("store holds %q, want the version-5 bytes", got.Data)
	}
	// Newer version wins.
	if rec := s.AppendVersioned(key, []byte("v6"), 0, 6); rec == first {
		t.Fatal("newer version refused")
	}
	got, _ := s.Lookup(key)
	if !bytes.Equal(got.Data, []byte("v6")) || got.WriteVersion != 6 {
		t.Fatalf("store holds %q version %d, want v6/6", got.Data, got.WriteVersion)
	}
	// Version 0 (unversioned legacy path) always appends.
	s.AppendVersioned(key, []byte("v0"), 0, 0)
	if got, _ := s.Lookup(key); !bytes.Equal(got.Data, []byte("v0")) {
		t.Fatal("unversioned append refused")
	}

	// Modeled appends follow the same guard.
	mkey := BlockKey{SegmentID: 9, ChunkID: 0, BlockOff: 0}
	mfirst := s.AppendModeledVersioned(mkey, 4096, 0, 8)
	if mfirst == nil || mfirst.WriteVersion != 8 {
		t.Fatal("modeled append refused")
	}
	if rec := s.AppendModeledVersioned(mkey, 4096, 0, 7); rec != mfirst {
		t.Fatal("older modeled version replaced the record")
	}
}

// TestSnapshotPreservesWriteVersion pins the backfill contract: a
// snapshot/restore cycle carries every record's writer version, so a
// substituted replica refuses stale re-sends exactly like the replica
// it replaced would have.
func TestSnapshotPreservesWriteVersion(t *testing.T) {
	src := NewChunkStore()
	key := BlockKey{SegmentID: 4, ChunkID: 1, BlockOff: 7}
	mkey := BlockKey{SegmentID: 4, ChunkID: 1, BlockOff: 8}
	src.AppendVersioned(key, []byte("payload"), 0, 42)
	src.AppendModeledVersioned(mkey, 512, 0, 43)

	var img bytes.Buffer
	if _, err := src.SnapshotChunk(&img, 4, 1, lz4.LevelFast); err != nil {
		t.Fatal(err)
	}
	dst := NewChunkStore()
	if n, err := dst.RestoreSnapshot(bytes.NewReader(img.Bytes())); err != nil || n != 2 {
		t.Fatalf("restored %d records, err %v", n, err)
	}
	rec, ok := dst.Lookup(key)
	if !ok || rec.WriteVersion != 42 {
		t.Fatalf("restored record has version %d, want 42", rec.WriteVersion)
	}
	mrec, ok := dst.Lookup(mkey)
	if !ok || mrec.WriteVersion != 43 {
		t.Fatalf("restored modeled record has version %d, want 43", mrec.WriteVersion)
	}
	// The restored replica enforces the guard against stale re-sends.
	dst.AppendVersioned(key, []byte("stale"), 0, 41)
	if got, _ := dst.Lookup(key); !bytes.Equal(got.Data, []byte("payload")) {
		t.Fatal("restored store accepted a write older than the snapshot")
	}
	dst.AppendVersioned(key, []byte("fresh"), 0, 44)
	if got, _ := dst.Lookup(key); !bytes.Equal(got.Data, []byte("fresh")) {
		t.Fatal("restored store refused a newer write")
	}
}
