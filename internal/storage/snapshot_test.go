package storage

import (
	"bytes"
	"testing"

	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/rng"
)

func fillStore(t *testing.T, n int) *ChunkStore {
	t.Helper()
	s := NewChunkStore()
	r := rng.New(11)
	for i := 0; i < n; i++ {
		key := BlockKey{SegmentID: uint64(i % 2), ChunkID: uint32(i % 3), BlockOff: uint32(i)}
		data := make([]byte, 256+r.Intn(512))
		for k := range data {
			data[k] = byte(i % 7)
		}
		s.AppendFlagged(key, data, uint8(i%2))
	}
	return s
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := fillStore(t, 40)
	var img bytes.Buffer
	n, err := src.Snapshot(&img, lz4.LevelDefault)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("snapshotted %d records, want 40", n)
	}

	dst := NewChunkStore()
	restored, err := dst.RestoreSnapshot(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 40 {
		t.Fatalf("restored %d records", restored)
	}
	// Every live record matches, including flags.
	for i := 0; i < 40; i++ {
		key := BlockKey{SegmentID: uint64(i % 2), ChunkID: uint32(i % 3), BlockOff: uint32(i)}
		a, okA := src.Lookup(key)
		b, okB := dst.Lookup(key)
		if !okA || !okB {
			t.Fatalf("record %v missing after restore", key)
		}
		if !bytes.Equal(a.Data, b.Data) || a.Flags != b.Flags {
			t.Fatalf("record %v differs after restore", key)
		}
	}
}

func TestSnapshotChunkFilters(t *testing.T) {
	src := fillStore(t, 30)
	var img bytes.Buffer
	n, err := src.SnapshotChunk(&img, 0, 0, lz4.LevelFast)
	if err != nil {
		t.Fatal(err)
	}
	// Records with i%2==0 && i%3==0: i in {0,6,12,18,24} => 5.
	if n != 5 {
		t.Fatalf("chunk snapshot has %d records, want 5", n)
	}
	dst := NewChunkStore()
	if _, err := dst.RestoreSnapshot(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Records() != 5 {
		t.Fatalf("restored %d records", dst.Records())
	}
}

func TestSnapshotSkipsGarbage(t *testing.T) {
	s := NewChunkStore()
	key := BlockKey{}
	s.Append(key, []byte("old"))
	s.Append(key, []byte("new"))
	var img bytes.Buffer
	n, err := s.Snapshot(&img, lz4.LevelDefault)
	if err != nil || n != 1 {
		t.Fatalf("snapshot of superseded store: n=%d err=%v", n, err)
	}
	dst := NewChunkStore()
	dst.RestoreSnapshot(bytes.NewReader(img.Bytes()))
	rec, _ := dst.Lookup(key)
	if string(rec.Data) != "new" {
		t.Fatalf("restored stale version %q", rec.Data)
	}
}

func TestSnapshotModeledRecords(t *testing.T) {
	s := NewChunkStore()
	s.AppendModeled(BlockKey{BlockOff: 1}, 1234, 2)
	var img bytes.Buffer
	if _, err := s.Snapshot(&img, lz4.LevelDefault); err != nil {
		t.Fatal(err)
	}
	dst := NewChunkStore()
	if _, err := dst.RestoreSnapshot(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	rec, ok := dst.Lookup(BlockKey{BlockOff: 1})
	if !ok || rec.Data != nil || rec.SizeHint != 1234 || rec.Flags != 2 {
		t.Fatalf("modeled record mangled: %+v", rec)
	}
}

func TestRestoreCorruptSnapshot(t *testing.T) {
	src := fillStore(t, 10)
	var img bytes.Buffer
	src.Snapshot(&img, lz4.LevelDefault)
	good := img.Bytes()

	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)/2] },
		func(b []byte) []byte { b = append([]byte(nil), b...); b[10] ^= 0xFF; return b },
		func(b []byte) []byte { return []byte("not a snapshot at all") },
	} {
		dst := NewChunkStore()
		if _, err := dst.RestoreSnapshot(bytes.NewReader(mutate(good))); err == nil {
			t.Fatal("corrupt snapshot accepted")
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := NewChunkStore()
	var img bytes.Buffer
	n, err := s.Snapshot(&img, lz4.LevelDefault)
	if err != nil || n != 0 {
		t.Fatalf("empty snapshot: n=%d err=%v", n, err)
	}
	dst := NewChunkStore()
	restored, err := dst.RestoreSnapshot(bytes.NewReader(img.Bytes()))
	if err != nil || restored != 0 {
		t.Fatalf("empty restore: n=%d err=%v", restored, err)
	}
}
