package storage

import (
	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/trace"
)

// DiskConfig models the server's NVMe flash (paper cites PCIe flash
// with millions of IOPS and tens-of-microseconds latency).
type DiskConfig struct {
	WriteLatency float64 // per-IO access latency
	ReadLatency  float64
	BytesPerSec  float64 // sustained bandwidth
	QueueDepth   int     // concurrent commands
}

// DefaultDisk returns D7-P5520-like parameters.
func DefaultDisk() DiskConfig {
	return DiskConfig{
		WriteLatency: 15e-6,
		ReadLatency:  65e-6,
		BytesPerSec:  4e9,
		QueueDepth:   128,
	}
}

// Disk is the device model: a command-slot pool plus a bandwidth link.
type Disk struct {
	cfg   DiskConfig
	slots *sim.Resource
	bw    *sim.PSLink
}

// NewDisk creates a disk.
func NewDisk(env *sim.Env, name string, cfg DiskConfig) *Disk {
	def := DefaultDisk()
	if cfg.WriteLatency <= 0 {
		cfg.WriteLatency = def.WriteLatency
	}
	if cfg.ReadLatency <= 0 {
		cfg.ReadLatency = def.ReadLatency
	}
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = def.BytesPerSec
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	return &Disk{
		cfg:   cfg,
		slots: env.NewResource(name+".dq", cfg.QueueDepth),
		bw:    env.NewPSLink(name+".dbw", cfg.BytesPerSec, 0),
	}
}

// Write charges one write IO of n bytes.
func (d *Disk) Write(p *sim.Proc, n float64) {
	d.slots.Acquire(p)
	p.Sleep(d.cfg.WriteLatency)
	d.bw.Transfer(p, n)
	d.slots.Release()
}

// Read charges one read IO of n bytes.
func (d *Disk) Read(p *sim.Proc, n float64) {
	d.slots.Acquire(p)
	p.Sleep(d.cfg.ReadLatency)
	d.bw.Transfer(p, n)
	d.slots.Release()
}

// Server is one storage server: transport + disk + chunk store. It
// serves OpReplicate (append a block version, reply success) and
// OpFetch (return the stored frame).
type Server struct {
	env   *sim.Env
	name  string
	stack *rdma.Stack
	disk  *Disk
	store *ChunkStore

	// Writes and Reads count served requests.
	Writes, Reads uint64
	// down silences the service loop while the machine is failed. The
	// fault injector additionally drops the server's fabric traffic (a
	// dead NIC acks nothing); this flag is the belt-and-braces guard for
	// requests already past the transport when the crash lands.
	down bool
	// Verify enables payload CRC checking on replicate (integrity
	// testing; adds wall-clock cost, not simulated time).
	Verify bool
	// Trace, when set, records one span per disk IO (queue wait +
	// access latency + bandwidth) on the server's track.
	Trace   *trace.Tracer
	diskSeq uint64
}

// diskWrite wraps one disk write IO in a trace span (head-sampled by
// IO sequence number; at full rate ForRequest is the identity).
func (s *Server) diskWrite(p *sim.Proc, n float64) {
	s.diskSeq++
	id := s.diskSeq
	tr := s.Trace.ForRequest(id)
	tr.Begin(p.Now(), s.name, "disk-write", id)
	s.disk.Write(p, n)
	tr.End(p.Now(), s.name, "disk-write", id)
}

// diskRead wraps one disk read IO in a trace span.
func (s *Server) diskRead(p *sim.Proc, n float64) {
	s.diskSeq++
	id := s.diskSeq
	tr := s.Trace.ForRequest(id)
	tr.Begin(p.Now(), s.name, "disk-read", id)
	s.disk.Read(p, n)
	tr.End(p.Now(), s.name, "disk-read", id)
}

// NewServer attaches a storage server to the fabric.
func NewServer(env *sim.Env, fabric *netsim.Fabric, addr netsim.Addr, portRate float64,
	transport rdma.Config, disk DiskConfig) *Server {
	s := &Server{
		env:   env,
		name:  string(addr),
		stack: rdma.NewStack(env, fabric.NewPort(addr, portRate), transport),
		disk:  NewDisk(env, string(addr), disk),
		store: NewChunkStore(),
	}
	return s
}

// Stack exposes the transport for connection setup.
func (s *Server) Stack() *rdma.Stack { return s.stack }

// SetDown marks the server failed (true) or serving (false).
func (s *Server) SetDown(down bool) { s.down = down }

// Down reports whether the server is failed.
func (s *Server) Down() bool { return s.down }

// Crash models a fail-stop loss of the machine: the service loop goes
// silent and the store's contents are gone. Recovery streams the data
// back from surviving replicas (middletier.Server.RebuildServer).
func (s *Server) Crash() {
	s.down = true
	s.store = NewChunkStore()
}

// Recover brings the crashed server back with an empty store, ready
// for the rebuild to repopulate it.
func (s *Server) Recover() { s.down = false }

// Store exposes the chunk store (tests, GC service).
func (s *Server) Store() *ChunkStore { return s.store }

// AcceptQP creates a server-side QP ready to serve requests arriving
// from one middle-tier connection.
func (s *Server) AcceptQP() *rdma.QP {
	qp := s.stack.CreateQP()
	qp.OnRecv = func(m *rdma.Message) { s.serve(qp, m) }
	return qp
}

// serve handles one request message.
func (s *Server) serve(qp *rdma.QP, m *rdma.Message) {
	if s.down {
		return
	}
	s.env.Go(s.name+".serve", func(p *sim.Proc) {
		if m.Data == nil {
			// Modeled-only traffic: charge the disk for the payload and
			// reply with a bare success header.
			s.Writes++
			s.diskWrite(p, m.Size)
			h := blockstore.Header{Op: blockstore.OpReplicateReply, Status: blockstore.StatusOK}
			p.Wait(qp.Send(h.Encode()))
			return
		}
		h, err := blockstore.Decode(m.Data)
		if err != nil {
			reply := blockstore.Header{Op: blockstore.OpReplicateReply, Status: blockstore.StatusError}
			p.Wait(qp.Send(reply.Encode()))
			return
		}
		payload := m.Data[blockstore.HeaderSize:]
		// A header-only message whose header promises a payload is
		// modeled-size traffic: charge the disk, skip the store.
		if len(payload) == 0 && h.PayloadLen > 0 && h.Op == blockstore.OpReplicate {
			s.Writes++
			s.diskWrite(p, float64(h.PayloadLen))
			key := BlockKey{SegmentID: h.SegmentID, ChunkID: h.ChunkID, BlockOff: h.BlockOff}
			s.store.AppendModeledVersioned(key, h.PayloadLen, h.Flags, h.Version)
			reply := blockstore.Header{Op: blockstore.OpReplicateReply, ReqID: h.ReqID, Status: blockstore.StatusOK}
			p.Wait(qp.Send(reply.Encode()))
			return
		}
		if int(h.PayloadLen) != len(payload) {
			reply := blockstore.Header{Op: blockstore.OpReplicateReply, ReqID: h.ReqID, Status: blockstore.StatusError}
			p.Wait(qp.Send(reply.Encode()))
			return
		}
		switch h.Op {
		case blockstore.OpReplicate:
			s.serveWrite(p, qp, h, payload)
		case blockstore.OpFetch:
			s.serveRead(p, qp, h)
		default:
			reply := blockstore.Header{Op: blockstore.OpReplicateReply, ReqID: h.ReqID, Status: blockstore.StatusError}
			p.Wait(qp.Send(reply.Encode()))
		}
	})
}

func (s *Server) serveWrite(p *sim.Proc, qp *rdma.QP, h blockstore.Header, payload []byte) {
	s.Writes++
	status := blockstore.StatusOK
	// CRC==0 means the sender had no checksum to offer (read-repair and
	// other middle-tier-internal traffic): integrity is then enforced by
	// the version guard, not a CRC it never carried.
	if s.Verify && h.Flags&blockstore.FlagCompressed != 0 && h.CRC != 0 {
		if orig, err := lz4.DecodeFrame(payload); err != nil || lz4.Checksum(orig) != h.CRC {
			status = blockstore.StatusCorrupt
		}
	}
	if status == blockstore.StatusOK {
		key := BlockKey{SegmentID: h.SegmentID, ChunkID: h.ChunkID, BlockOff: h.BlockOff}
		s.diskWrite(p, float64(len(payload)))
		s.store.AppendVersioned(key, payload, h.Flags, h.Version)
	}
	reply := blockstore.Header{Op: blockstore.OpReplicateReply, ReqID: h.ReqID, Status: status}
	p.Wait(qp.Send(reply.Encode()))
}

func (s *Server) serveRead(p *sim.Proc, qp *rdma.QP, h blockstore.Header) {
	s.Reads++
	key := BlockKey{SegmentID: h.SegmentID, ChunkID: h.ChunkID, BlockOff: h.BlockOff}
	rec, ok := s.store.Lookup(key)
	if !ok {
		reply := blockstore.Header{Op: blockstore.OpFetchReply, ReqID: h.ReqID, Status: blockstore.StatusNotFound}
		p.Wait(qp.Send(reply.Encode()))
		return
	}
	s.diskRead(p, float64(rec.SizeHint))
	reply := blockstore.Header{
		Op:      blockstore.OpFetchReply,
		ReqID:   h.ReqID,
		Status:  blockstore.StatusOK,
		Flags:   rec.Flags,
		Version: rec.WriteVersion,
	}
	if rec.Data == nil {
		// Modeled record: header-only reply with the modeled frame size.
		reply.PayloadLen = rec.SizeHint
		p.Wait(qp.SendSized(reply.Encode(), float64(blockstore.HeaderSize)+float64(rec.SizeHint)))
		return
	}
	p.Wait(qp.Send(blockstore.Message(&reply, rec.Data)))
}
