// Package storage implements the back-end storage servers of the
// disaggregated block store: an append-only chunk store with a
// block-location index (writes append, reads return the latest
// version, compaction reclaims superseded records), an NVMe-like disk
// model, and the network service loop the middle tier talks to.
package storage

import (
	"fmt"
)

// BlockKey identifies one logical block.
type BlockKey struct {
	SegmentID uint64
	ChunkID   uint32
	BlockOff  uint32
}

func (k BlockKey) String() string {
	return fmt.Sprintf("seg%d/chunk%d/blk%d", k.SegmentID, k.ChunkID, k.BlockOff)
}

// Record is one appended block version: the stored payload (usually an
// LZ4 frame) plus bookkeeping. Modeled-size runs store no bytes; the
// record then carries only SizeHint, the frame size to serve reads with.
type Record struct {
	Key      BlockKey
	Data     []byte
	SizeHint uint32
	Flags    uint8 // blockstore header flags at write time (compressed?)
	// Version is this store's own append sequence (local arrival order,
	// not writer order).
	Version uint64
	// WriteVersion is the middle tier's writer-assigned version carried
	// by the replicate header: it totally orders writes to a block
	// across replicas, so quorum reads rank replicas by it and the
	// versioned appends refuse regressions. Zero means unversioned
	// (legacy or maintenance traffic).
	WriteVersion uint64
	live         bool
}

// ChunkStore is the per-server append-only store (paper §2.2.1:
// "storage servers write the data into the disk in an appended way").
type ChunkStore struct {
	records []*Record
	index   map[BlockKey]*Record
	version uint64

	liveBytes int64
	deadBytes int64
}

// NewChunkStore returns an empty store.
func NewChunkStore() *ChunkStore {
	return &ChunkStore{index: make(map[BlockKey]*Record)}
}

// Append stores a new version of a block and returns its record. The
// previous version, if any, becomes garbage until compaction.
func (s *ChunkStore) Append(key BlockKey, data []byte) *Record {
	return s.AppendFlagged(key, data, 0)
}

// AppendFlagged is Append carrying the write's header flags, so reads
// can tell compressed frames from raw (latency-sensitive) blocks.
func (s *ChunkStore) AppendFlagged(key BlockKey, data []byte, flags uint8) *Record {
	return s.AppendVersioned(key, data, flags, 0)
}

// AppendVersioned is AppendFlagged carrying the writer-assigned
// version. A versioned append (version > 0) is refused — returning the
// standing record — when the block's current record already holds an
// equal or newer writer version: a stale read-repair, backfill, or
// duplicate retry must never clobber a newer write. Unversioned
// appends always land (legacy behavior).
func (s *ChunkStore) AppendVersioned(key BlockKey, data []byte, flags uint8, version uint64) *Record {
	if old, ok := s.index[key]; ok && version > 0 && old.WriteVersion >= version {
		return old
	}
	s.version++
	rec := &Record{Key: key, Data: append([]byte(nil), data...), SizeHint: uint32(len(data)),
		Flags: flags, Version: s.version, WriteVersion: version, live: true}
	if old, ok := s.index[key]; ok {
		old.live = false
		s.liveBytes -= int64(len(old.Data))
		s.deadBytes += int64(len(old.Data))
	}
	s.records = append(s.records, rec)
	s.index[key] = rec
	s.liveBytes += int64(len(data))
	return rec
}

// AppendModeled stores a sizes-only record (modeled payload runs).
func (s *ChunkStore) AppendModeled(key BlockKey, size uint32, flags uint8) *Record {
	return s.AppendModeledVersioned(key, size, flags, 0)
}

// AppendModeledVersioned is AppendModeled with the same regression
// guard as AppendVersioned.
func (s *ChunkStore) AppendModeledVersioned(key BlockKey, size uint32, flags uint8, version uint64) *Record {
	if old, ok := s.index[key]; ok && version > 0 && old.WriteVersion >= version {
		return old
	}
	s.version++
	rec := &Record{Key: key, SizeHint: size, Flags: flags, Version: s.version, WriteVersion: version, live: true}
	if old, ok := s.index[key]; ok {
		old.live = false
		s.liveBytes -= int64(len(old.Data))
		s.deadBytes += int64(len(old.Data))
	}
	s.records = append(s.records, rec)
	s.index[key] = rec
	return rec
}

// Lookup returns the latest version of a block.
func (s *ChunkStore) Lookup(key BlockKey) (*Record, bool) {
	rec, ok := s.index[key]
	return rec, ok
}

// LiveBytes and DeadBytes report store occupancy.
func (s *ChunkStore) LiveBytes() int64 { return s.liveBytes }
func (s *ChunkStore) DeadBytes() int64 { return s.deadBytes }

// Records returns the total record count including garbage.
func (s *ChunkStore) Records() int { return len(s.records) }

// Compact drops superseded records (the disk-side half of the LSM
// compaction + garbage collection maintenance service) and returns the
// bytes reclaimed.
func (s *ChunkStore) Compact() int64 {
	kept := s.records[:0]
	for _, r := range s.records {
		if r.live {
			kept = append(kept, r)
		}
	}
	// Zero the tail so dropped records can be collected.
	for i := len(kept); i < len(s.records); i++ {
		s.records[i] = nil
	}
	s.records = kept
	reclaimed := s.deadBytes
	s.deadBytes = 0
	return reclaimed
}

// GarbageRatio returns dead/(live+dead) bytes, the compaction trigger.
func (s *ChunkStore) GarbageRatio() float64 {
	total := s.liveBytes + s.deadBytes
	if total == 0 {
		return 0
	}
	return float64(s.deadBytes) / float64(total)
}
