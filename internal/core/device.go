package core

import (
	"fmt"

	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/trace"
)

// Config describes one SmartDS card.
type Config struct {
	// Ports is the number of utilized networking ports (SmartDS-N).
	Ports int
	// PortBytesPerSec is per-port line rate (100 Gbps default).
	PortBytesPerSec float64
	// EngineBytesPerSec is the per-port compression engine rate
	// (100 Gbps default, matching the prototype's 4 KB-block engines).
	EngineBytesPerSec float64
	// HBM configures the card's device memory.
	HBM device.MemoryConfig
	// PCIe configures the card's host link.
	PCIe pcie.Config
	// Transport configures the RoCE stacks.
	Transport rdma.Config
	// CompletionBytes is the size of the completion record DMA-written
	// to host memory when a descriptor finishes.
	CompletionBytes float64
	// Trace, when set, records split/assemble spans and engine
	// occupancy in virtual time. Nil disables tracing.
	Trace *trace.Tracer
}

// DefaultConfig returns the VCU128 prototype parameters.
func DefaultConfig(ports int) Config {
	return Config{
		Ports:             ports,
		PortBytesPerSec:   12.5e9,
		EngineBytesPerSec: 12.5e9,
		HBM:               device.DefaultHBM(),
		PCIe:              pcie.DefaultConfig(),
		Transport:         rdma.DefaultConfig(),
		CompletionBytes:   32,
	}
}

// Device is one SmartDS card plugged into a middle-tier server.
type Device struct {
	env       *sim.Env
	cfg       Config
	name      string
	hbm       *device.Memory
	pcieLink  *pcie.Link
	hostMem   *mem.System
	instances []*Instance

	fpga device.FPGAResources

	tr      *trace.Tracer
	spanSeq uint64 // split/assemble span correlation ids
}

// NewDevice creates a SmartDS card attached to the fabric with one port
// per instance (addresses "<name>-p<i>") and to the host's memory
// system for header placement.
func NewDevice(env *sim.Env, name string, fabric *netsim.Fabric, hostMem *mem.System, cfg Config) *Device {
	if cfg.Ports < 1 {
		panic(fmt.Sprintf("core: SmartDS needs at least one port, got %d", cfg.Ports))
	}
	def := DefaultConfig(cfg.Ports)
	if cfg.PortBytesPerSec <= 0 {
		cfg.PortBytesPerSec = def.PortBytesPerSec
	}
	if cfg.EngineBytesPerSec <= 0 {
		cfg.EngineBytesPerSec = def.EngineBytesPerSec
	}
	if cfg.CompletionBytes <= 0 {
		cfg.CompletionBytes = def.CompletionBytes
	}
	d := &Device{
		env:      env,
		cfg:      cfg,
		name:     name,
		hbm:      device.NewMemory(env, name, cfg.HBM),
		pcieLink: pcie.New(env, name+".pcie", cfg.PCIe),
		hostMem:  hostMem,
		fpga:     device.SmartDSFootprint(cfg.Ports),
		tr:       cfg.Trace,
	}
	for i := 0; i < cfg.Ports; i++ {
		port := fabric.NewPort(netsim.Addr(fmt.Sprintf("%s-p%d", name, i)), cfg.PortBytesPerSec)
		inst := &Instance{
			dev:    d,
			index:  i,
			stack:  rdma.NewStack(env, port, cfg.Transport),
			engine: device.NewLZ4Engine(env, fmt.Sprintf("%s.lz4[%d]", name, i), d.hbm, cfg.EngineBytesPerSec, 64<<10),
			recvQ:  make(map[int]*qpRecvState),
		}
		inst.engine.SetTrace(cfg.Trace)
		d.instances = append(d.instances, inst)
	}
	return d
}

// Config returns the card's effective configuration.
func (d *Device) Config() Config { return d.cfg }

// Name returns the card name.
func (d *Device) Name() string { return d.name }

// HBM returns the card's device memory.
func (d *Device) HBM() *device.Memory { return d.hbm }

// PCIe returns the card's host link.
func (d *Device) PCIe() *pcie.Link { return d.pcieLink }

// FPGA returns the synthesized resource footprint (Table 3).
func (d *Device) FPGA() device.FPGAResources { return d.fpga }

// Ports returns the number of instances.
func (d *Device) Ports() int { return len(d.instances) }

// HostBuf is host-memory backing for message headers. Allocation is a
// plain malloc; traffic is charged when DMA touches it.
type HostBuf struct {
	data []byte
}

// Bytes exposes the buffer contents.
func (h *HostBuf) Bytes() []byte { return h.data }

// HostAlloc implements host_alloc(size) from Table 2.
func (d *Device) HostAlloc(size int) *HostBuf {
	if size <= 0 {
		panic("core: host_alloc size must be positive")
	}
	return &HostBuf{data: make([]byte, size)}
}

// DevAlloc implements dev_alloc(size): carve a buffer from HBM.
func (d *Device) DevAlloc(size int) (*device.Buffer, error) {
	return d.hbm.Alloc(size)
}

// OpenRoCEInstance implements open_roce_instance(instance_index).
func (d *Device) OpenRoCEInstance(index int) (*Instance, error) {
	if index < 0 || index >= len(d.instances) {
		return nil, fmt.Errorf("core: no RoCE instance %d (card has %d ports)", index, len(d.instances))
	}
	return d.instances[index], nil
}
