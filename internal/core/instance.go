package core

import (
	"fmt"

	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

// Instance is one extended RoCE instance: transport stack + Split +
// Assemble modules + a per-port compression engine (paper Figure 6).
type Instance struct {
	dev    *Device
	index  int
	stack  *rdma.Stack
	engine *device.LZ4Engine

	recvQ map[int]*qpRecvState
}

// qpRecvState is the Split module's per-QP descriptor table plus the
// buffer of messages that arrived before a descriptor was posted
// (receiver-not-ready, held by the transport in real RoCE).
type qpRecvState struct {
	descs []*recvDesc
	msgs  []*rdma.Message
}

type recvDesc struct {
	hbuf  *HostBuf
	hsize int
	dbuf  *device.Buffer
	dsize int
	comp  *Completion
}

// Index returns the instance's port index.
func (in *Instance) Index() int { return in.index }

// Stack exposes the transport (for connection setup).
func (in *Instance) Stack() *rdma.Stack { return in.stack }

// Engine exposes the instance's compression engine.
func (in *Instance) Engine() *device.LZ4Engine { return in.engine }

// Device returns the owning card.
func (in *Instance) Device() *Device { return in.dev }

// Completion is the asynchronous event every Table 2 verb returns.
type Completion struct {
	ev *sim.Event
}

// Result is the completion value: the verb-specific size (received
// payload bytes, compressed bytes, ...) or an error. For recv
// completions, Placed counts the *real* payload bytes copied into the
// device buffer (zero for modeled-size-only traffic).
type Result struct {
	Size   int
	Placed int
	Err    error
}

// Event exposes the raw event for select-style composition.
func (c *Completion) Event() *sim.Event { return c.ev }

// Done reports whether the completion fired.
func (c *Completion) Done() bool { return c.ev.Done() }

// Poll implements poll(event): block until the verb completes.
func Poll(p *sim.Proc, c *Completion) Result {
	v := p.Wait(c.ev)
	if v == nil {
		return Result{}
	}
	return v.(Result)
}

func (in *Instance) newCompletion() *Completion {
	return &Completion{ev: in.dev.env.NewEvent()}
}

// CreateQP allocates a QP whose receive side feeds the Split module.
func (in *Instance) CreateQP() *rdma.QP {
	qp := in.stack.CreateQP()
	st := &qpRecvState{}
	in.recvQ[qp.ID().QPN] = st
	qp.OnRecv = func(m *rdma.Message) { in.onMessage(st, m) }
	return qp
}

// DevMixedRecv implements dev_mixed_recv: post a recv descriptor whose
// first hsize bytes land in host memory and the remainder in device
// memory. The completion's Size is the payload (device-side) byte
// count.
func (in *Instance) DevMixedRecv(qp *rdma.QP, hbuf *HostBuf, hsize int, dbuf *device.Buffer, dsize int) *Completion {
	st, ok := in.recvQ[qp.ID().QPN]
	if !ok {
		panic("core: DevMixedRecv on a QP not created through this instance")
	}
	if dbuf == nil && dsize > 0 {
		panic("core: recv descriptor with payload bytes but no device buffer")
	}
	if hsize > len(hbuf.data) || (dbuf != nil && dsize > dbuf.Size()) {
		panic("core: recv descriptor larger than its buffers")
	}
	comp := in.newCompletion()
	st.descs = append(st.descs, &recvDesc{hbuf: hbuf, hsize: hsize, dbuf: dbuf, dsize: dsize, comp: comp})
	in.matchRecv(st)
	return comp
}

// onMessage is the Split module's input: an in-order RDMA message.
func (in *Instance) onMessage(st *qpRecvState, m *rdma.Message) {
	st.msgs = append(st.msgs, m)
	in.matchRecv(st)
}

// matchRecv pairs queued messages with posted descriptors in FIFO
// order and starts placement for each pair.
func (in *Instance) matchRecv(st *qpRecvState) {
	for len(st.msgs) > 0 && len(st.descs) > 0 {
		m := st.msgs[0]
		st.msgs = st.msgs[1:]
		d := st.descs[0]
		st.descs = st.descs[1:]
		in.place(m, d)
	}
}

// place performs the split: header bytes cross PCIe into host memory,
// payload bytes go to device memory, then the host is notified.
func (in *Instance) place(m *rdma.Message, d *recvDesc) {
	dev := in.dev
	dev.spanSeq++
	span := dev.spanSeq
	dev.env.Go(fmt.Sprintf("%s.split[%d]", dev.name, in.index), func(p *sim.Proc) {
		// Head-sampled by span seq; identity at full rate.
		tr := dev.tr.ForRequest(span)
		tr.Begin(p.Now(), dev.name, "split", span)
		defer func() { tr.End(p.Now(), dev.name, "split", span) }()
		total := int(m.Size)
		hdr := d.hsize
		if hdr > total {
			hdr = total
		}
		payload := total - hdr
		if payload > d.dsize {
			d.comp.ev.Trigger(Result{Err: fmt.Errorf("core: %d payload bytes exceed device buffer (%d)", payload, d.dsize)})
			return
		}
		// Functional placement of whatever real bytes the message
		// carries (modeled traffic materializes only its header).
		placed := 0
		if m.Data != nil {
			n := hdr
			if n > len(m.Data) {
				n = len(m.Data)
			}
			copy(d.hbuf.data, m.Data[:n])
			if d.dbuf != nil && len(m.Data) > hdr {
				placed = copy(d.dbuf.Bytes(), m.Data[hdr:])
			}
		}
		// Header -> host via PCIe D2H, landing in host DRAM.
		var waits []*sim.Event
		if hdr > 0 {
			waits = append(waits, dev.pcieLink.StartDMA(pcie.D2H, float64(hdr)))
			waits = append(waits, dev.hostMem.StartWrite(float64(hdr)))
		}
		// Payload -> device memory.
		if payload > 0 {
			waits = append(waits, dev.hbm.StartAccess(float64(payload)))
		}
		for _, ev := range waits {
			p.Wait(ev)
		}
		// Completion record to the host (tiny D2H write).
		p.Wait(dev.pcieLink.StartDMA(pcie.D2H, dev.cfg.CompletionBytes))
		dev.hostMem.StartWrite(dev.cfg.CompletionBytes)
		d.comp.ev.Trigger(Result{Size: payload, Placed: placed})
	})
}

// DevMixedSend implements dev_mixed_send: gather hsize bytes from host
// memory and dsize bytes from device memory into one RDMA message. The
// completion fires when the transport acknowledges delivery; Size is
// the message size.
func (in *Instance) DevMixedSend(qp *rdma.QP, hbuf *HostBuf, hsize int, dbuf *device.Buffer, dsize int) *Completion {
	if dbuf == nil && dsize > 0 {
		panic("core: send descriptor with payload bytes but no device buffer")
	}
	if hsize > len(hbuf.data) || (dbuf != nil && dsize > dbuf.Size()) {
		panic("core: send descriptor larger than its buffers")
	}
	comp := in.newCompletion()
	dev := in.dev
	dev.spanSeq++
	span := dev.spanSeq
	dev.env.Go(fmt.Sprintf("%s.assemble[%d]", dev.name, in.index), func(p *sim.Proc) {
		// Head-sampled by span seq; identity at full rate.
		tr := dev.tr.ForRequest(span)
		tr.Begin(p.Now(), dev.name, "assemble", span)
		defer func() { tr.End(p.Now(), dev.name, "assemble", span) }()
		// Gather both halves in parallel: PCIe H2D for the header,
		// device memory for the payload.
		var waits []*sim.Event
		if hsize > 0 {
			waits = append(waits, dev.pcieLink.StartDMA(pcie.H2D, float64(hsize)))
			waits = append(waits, dev.hostMem.StartRead(float64(hsize)))
		}
		if dsize > 0 {
			waits = append(waits, dev.hbm.StartAccess(float64(dsize)))
		}
		for _, ev := range waits {
			p.Wait(ev)
		}
		data := make([]byte, hsize+dsize)
		copy(data, hbuf.data[:hsize])
		if dbuf != nil {
			copy(data[hsize:], dbuf.Bytes()[:dsize])
		}
		v := p.Wait(qp.Send(data))
		// Completion record to the host.
		p.Wait(dev.pcieLink.StartDMA(pcie.D2H, dev.cfg.CompletionBytes))
		dev.hostMem.StartWrite(dev.cfg.CompletionBytes)
		if err, ok := v.(error); ok && err != nil {
			comp.ev.Trigger(Result{Err: err})
			return
		}
		comp.ev.Trigger(Result{Size: hsize + dsize})
	})
	return comp
}

// DevFunc implements dev_func: invoke the instance's hardware engine on
// srcSize bytes of src, writing the result into dst. Size is the
// result byte count.
func (in *Instance) DevFunc(src *device.Buffer, srcSize int, dst *device.Buffer, level lz4.Level) *Completion {
	if srcSize > src.Size() {
		panic("core: DevFunc source size exceeds buffer")
	}
	comp := in.newCompletion()
	dev := in.dev
	dev.env.Go(fmt.Sprintf("%s.devfunc[%d]", dev.name, in.index), func(p *sim.Proc) {
		out, err := in.engine.Compress(p, src.Bytes()[:srcSize], level)
		if err != nil {
			comp.ev.Trigger(Result{Err: err})
			return
		}
		if len(out) > dst.Size() {
			comp.ev.Trigger(Result{Err: fmt.Errorf("core: compressed output %d exceeds destination %d", len(out), dst.Size())})
			return
		}
		copy(dst.Bytes(), out)
		// Notify the host CPU (paper: "writes the result ... and
		// notifies the application running in the host CPU").
		p.Wait(dev.pcieLink.StartDMA(pcie.D2H, dev.cfg.CompletionBytes))
		dev.hostMem.StartWrite(dev.cfg.CompletionBytes)
		comp.ev.Trigger(Result{Size: len(out)})
	})
	return comp
}

// DevFuncDecompress is the read-path twin of DevFunc: decompress
// srcSize bytes of src (an LZ4 block) into dst, whose needed size is
// origSize.
func (in *Instance) DevFuncDecompress(src *device.Buffer, srcSize int, dst *device.Buffer, origSize int) *Completion {
	if srcSize > src.Size() {
		panic("core: DevFuncDecompress source size exceeds buffer")
	}
	comp := in.newCompletion()
	dev := in.dev
	dev.env.Go(fmt.Sprintf("%s.devfunc[%d]", dev.name, in.index), func(p *sim.Proc) {
		if origSize > dst.Size() {
			comp.ev.Trigger(Result{Err: fmt.Errorf("core: decompressed output %d exceeds destination %d", origSize, dst.Size())})
			return
		}
		out, err := in.engine.Decompress(p, src.Bytes()[:srcSize], origSize)
		if err != nil {
			comp.ev.Trigger(Result{Err: err})
			return
		}
		copy(dst.Bytes(), out)
		p.Wait(dev.pcieLink.StartDMA(pcie.D2H, dev.cfg.CompletionBytes))
		dev.hostMem.StartWrite(dev.cfg.CompletionBytes)
		comp.ev.Trigger(Result{Size: origSize})
	})
	return comp
}
