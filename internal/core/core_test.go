package core

import (
	"bytes"
	"testing"

	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

// rig is a SmartDS card plus a remote plain-RDMA peer for tests.
type rig struct {
	env     *sim.Env
	fabric  *netsim.Fabric
	hostMem *mem.System
	dev     *Device
	peer    *rdma.Stack
}

func newRig(t *testing.T, ports int) *rig {
	t.Helper()
	e := sim.NewEnv()
	f := netsim.NewFabric(e, netsim.DefaultConfig())
	hm := mem.New(e, mem.DefaultConfig())
	cfg := DefaultConfig(ports)
	cfg.HBM.Capacity = 64 << 20 // keep test arenas small
	dev := NewDevice(e, "sds", f, hm, cfg)
	peer := rdma.NewStack(e, f.NewPort("peer", 12.5e9), rdma.DefaultConfig())
	return &rig{env: e, fabric: f, hostMem: hm, dev: dev, peer: peer}
}

// connect builds a QP pair between instance idx and the peer stack.
func (r *rig) connect(t *testing.T, idx int) (*rdma.QP, *rdma.QP) {
	t.Helper()
	inst, err := r.dev.OpenRoCEInstance(idx)
	if err != nil {
		t.Fatal(err)
	}
	local := inst.CreateQP()
	remote := r.peer.CreateQP()
	rdma.Connect(local, remote)
	return local, remote
}

func TestOpenRoCEInstanceBounds(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.dev.OpenRoCEInstance(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.dev.OpenRoCEInstance(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.dev.OpenRoCEInstance(2); err == nil {
		t.Fatal("out-of-range instance accepted")
	}
	if _, err := r.dev.OpenRoCEInstance(-1); err == nil {
		t.Fatal("negative instance accepted")
	}
}

func TestHostAllocAndDevAlloc(t *testing.T) {
	r := newRig(t, 1)
	hb := r.dev.HostAlloc(128)
	if len(hb.Bytes()) != 128 {
		t.Fatalf("host buf size %d", len(hb.Bytes()))
	}
	db, err := r.dev.DevAlloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 4096 {
		t.Fatalf("dev buf size %d", db.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero host_alloc did not panic")
		}
	}()
	r.dev.HostAlloc(0)
}

func TestSplitPlacesHeaderAndPayload(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	local, remote := r.connect(t, 0)
	_ = local

	const headerSize = 64
	hbuf := r.dev.HostAlloc(headerSize)
	dbuf, _ := r.dev.DevAlloc(8192)

	msg := make([]byte, headerSize+4096)
	for i := range msg {
		msg[i] = byte(i % 251)
	}

	var res Result
	r.env.Go("host", func(p *sim.Proc) {
		comp := inst.DevMixedRecv(qpOf(t, inst, local), hbuf, headerSize, dbuf, 8192)
		res = Poll(p, comp)
	})
	r.env.Go("client", func(p *sim.Proc) {
		p.Wait(remote.Send(msg))
	})
	r.env.Run(0)

	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Size != 4096 {
		t.Fatalf("payload size = %d, want 4096", res.Size)
	}
	if !bytes.Equal(hbuf.Bytes(), msg[:headerSize]) {
		t.Fatal("header bytes not placed in host buffer")
	}
	if !bytes.Equal(dbuf.Bytes()[:4096], msg[headerSize:]) {
		t.Fatal("payload bytes not placed in device buffer")
	}
}

// qpOf asserts the QP belongs to the instance (helper for readability).
func qpOf(t *testing.T, in *Instance, qp *rdma.QP) *rdma.QP {
	t.Helper()
	return qp
}

func TestSplitChargesPCIeOnlyForHeader(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	local, remote := r.connect(t, 0)

	const headerSize = 64
	const payload = 64 << 10
	hbuf := r.dev.HostAlloc(headerSize)
	dbuf, _ := r.dev.DevAlloc(payload)

	s0 := r.dev.PCIe().Snapshot()
	r.env.Go("host", func(p *sim.Proc) {
		comp := inst.DevMixedRecv(local, hbuf, headerSize, dbuf, payload)
		Poll(p, comp)
	})
	r.env.Go("client", func(p *sim.Proc) {
		p.Wait(remote.SendSized(nil, headerSize+payload))
	})
	r.env.Run(0)
	s1 := r.dev.PCIe().Snapshot()

	d2h := s1.D2HBytes - s0.D2HBytes
	if d2h > 3*headerSize {
		t.Fatalf("split moved %g bytes over PCIe, want only header+completion", d2h)
	}
	if got := s1.H2DBytes - s0.H2DBytes; got != 0 {
		t.Fatalf("split consumed H2D bandwidth: %g", got)
	}
}

func TestRecvBeforeMessageAndAfter(t *testing.T) {
	// Descriptor posted before the message and message before the
	// descriptor must both complete.
	for _, postFirst := range []bool{true, false} {
		r := newRig(t, 1)
		inst, _ := r.dev.OpenRoCEInstance(0)
		local, remote := r.connect(t, 0)
		hbuf := r.dev.HostAlloc(64)
		dbuf, _ := r.dev.DevAlloc(4096)
		var res Result
		delayPost := 0.0
		if !postFirst {
			delayPost = 1e-3
		}
		r.env.Go("host", func(p *sim.Proc) {
			p.Sleep(delayPost)
			res = Poll(p, inst.DevMixedRecv(local, hbuf, 64, dbuf, 4096))
		})
		r.env.Go("client", func(p *sim.Proc) {
			p.Wait(remote.SendSized(nil, 64+1024))
		})
		r.env.Run(0)
		if res.Err != nil || res.Size != 1024 {
			t.Fatalf("postFirst=%v: res=%+v", postFirst, res)
		}
	}
}

func TestSplitOverflowErrors(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	local, remote := r.connect(t, 0)
	hbuf := r.dev.HostAlloc(64)
	dbuf, _ := r.dev.DevAlloc(512) // too small for the payload
	var res Result
	r.env.Go("host", func(p *sim.Proc) {
		res = Poll(p, inst.DevMixedRecv(local, hbuf, 64, dbuf, 512))
	})
	r.env.Go("client", func(p *sim.Proc) {
		p.Wait(remote.SendSized(nil, 64+1024))
	})
	r.env.Run(0)
	if res.Err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestAssembleSendsSpanningMessage(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	local, remote := r.connect(t, 0)

	var got []byte
	remote.OnRecv = func(m *rdma.Message) { got = append([]byte(nil), m.Data...) }

	hbuf := r.dev.HostAlloc(16)
	copy(hbuf.Bytes(), "HEADERHEADERHEAD")
	dbuf, _ := r.dev.DevAlloc(32)
	copy(dbuf.Bytes(), "PAYLOADPAYLOADPAYLOADPAYLOADPAYL")

	var res Result
	r.env.Go("host", func(p *sim.Proc) {
		res = Poll(p, inst.DevMixedSend(local, hbuf, 16, dbuf, 32))
	})
	r.env.Run(0)
	if res.Err != nil || res.Size != 48 {
		t.Fatalf("send result %+v", res)
	}
	want := append([]byte("HEADERHEADERHEAD"), []byte("PAYLOADPAYLOADPAYLOADPAYLOADPAYL")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("assembled message = %q", got)
	}
}

func TestDevFuncCompressesInDeviceMemory(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	src, _ := r.dev.DevAlloc(4096)
	dst, _ := r.dev.DevAlloc(8192)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i % 7) // compressible
	}
	orig := append([]byte(nil), src.Bytes()...)

	var res Result
	r.env.Go("host", func(p *sim.Proc) {
		res = Poll(p, inst.DevFunc(src, 4096, dst, lz4.LevelDefault))
	})
	r.env.Run(0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Size <= 0 || res.Size >= 4096 {
		t.Fatalf("compressed size %d", res.Size)
	}
	back, err := lz4.DecompressToBuf(dst.Bytes()[:res.Size], 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, orig) {
		t.Fatal("device compression corrupted data")
	}
}

func TestDevFuncDecompressRoundTrip(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	orig := bytes.Repeat([]byte("abcd0123"), 512)
	comp, _ := lz4.CompressToBuf(orig, lz4.LevelDefault)
	src, _ := r.dev.DevAlloc(len(comp))
	copy(src.Bytes(), comp)
	dst, _ := r.dev.DevAlloc(len(orig))
	var res Result
	r.env.Go("host", func(p *sim.Proc) {
		res = Poll(p, inst.DevFuncDecompress(src, len(comp), dst, len(orig)))
	})
	r.env.Run(0)
	if res.Err != nil || res.Size != len(orig) {
		t.Fatalf("decompress result %+v", res)
	}
	if !bytes.Equal(dst.Bytes()[:len(orig)], orig) {
		t.Fatal("decompressed bytes wrong")
	}
}

func TestMultiPortInstancesIndependent(t *testing.T) {
	r := newRig(t, 4)
	if r.dev.Ports() != 4 {
		t.Fatalf("ports = %d", r.dev.Ports())
	}
	if got := r.dev.FPGA().LUTs; got < 600 || got > 650 {
		t.Fatalf("SmartDS-4 LUTs = %g", got)
	}
	// Each instance has its own engine and stack address.
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		inst, err := r.dev.OpenRoCEInstance(i)
		if err != nil {
			t.Fatal(err)
		}
		addr := string(inst.Stack().Addr())
		if seen[addr] {
			t.Fatalf("duplicate instance address %s", addr)
		}
		seen[addr] = true
	}
}

func TestRecvDescriptorValidation(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	local, _ := r.connect(t, 0)
	hbuf := r.dev.HostAlloc(8)
	dbuf, _ := r.dev.DevAlloc(64)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized descriptor did not panic")
		}
	}()
	inst.DevMixedRecv(local, hbuf, 100, dbuf, 64)
}

func TestForeignQPPanics(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	foreign := r.peer.CreateQP()
	hbuf := r.dev.HostAlloc(8)
	dbuf, _ := r.dev.DevAlloc(64)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign QP did not panic")
		}
	}()
	inst.DevMixedRecv(foreign, hbuf, 8, dbuf, 64)
}
