// Package core implements SmartDS itself: the middle-tier-centric
// SmartNIC with the application-aware message split (AAMS) mechanism
// (paper §4).
//
// A Device models one SmartDS card: a PCIe endpoint, a shared HBM
// device memory, and one extended-RoCE Instance per networking port.
// Each Instance couples a transport stack with the two AAMS modules:
//
//   - Split: consumes recv descriptors (host buffer + device buffer);
//     when an RDMA message arrives, the first h_size bytes are DMA-
//     written across PCIe into host memory and the remainder goes to
//     the card's device memory — a single RDMA message spanning both
//     memories.
//   - Assemble: consumes send descriptors; gathers h_size bytes from
//     host memory over PCIe and d_size bytes from device memory into
//     one outgoing RDMA message.
//
// Each Instance also instantiates a hardware LZ4 engine invokable
// through DevFunc. The package exposes the Table 2 API: HostAlloc,
// DevAlloc, OpenRoCEInstance, DevMixedRecv, DevMixedSend, DevFunc, and
// Poll, so the example in the paper's Listing 1 translates line for
// line (see examples/writepath).
package core
