package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
)

// payloadFor generates message id's deterministic payload.
func payloadFor(id, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(id*31 + i*7)
	}
	return out
}

// TestPipelinedDescriptorsManyMessages drives hundreds of back-to-back
// messages through a small descriptor pool, asserting FIFO descriptor
// pairing and exact byte placement for every message.
func TestPipelinedDescriptorsManyMessages(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)
	local, remote := r.connect(t, 0)

	const (
		depth   = 8
		nMsgs   = 300
		hdrSize = 16
	)
	hbufs := make([]*HostBuf, depth)
	dbufs := make([]*device.Buffer, depth)
	for i := 0; i < depth; i++ {
		hbufs[i] = r.dev.HostAlloc(hdrSize)
		db, err := r.dev.DevAlloc(2048)
		if err != nil {
			t.Fatal(err)
		}
		dbufs[i] = db
	}

	received := 0
	var mismatch error
	var post func(i int)
	post = func(i int) {
		comp := inst.DevMixedRecv(local, hbufs[i], hdrSize, dbufs[i], dbufs[i].Size())
		comp.Event().OnTrigger(func(v interface{}) {
			res := v.(Result)
			if res.Err != nil {
				mismatch = res.Err
				return
			}
			id := int(hbufs[i].Bytes()[0]) | int(hbufs[i].Bytes()[1])<<8
			want := payloadFor(id, res.Size)
			if !bytes.Equal(dbufs[i].Bytes()[:res.Size], want) {
				mismatch = fmt.Errorf("message %d payload corrupted", id)
				return
			}
			received++
			if received+depth <= nMsgs {
				post(i)
			}
		})
	}
	for i := 0; i < depth; i++ {
		post(i)
	}

	gen := rng.New(5)
	r.env.Go("client", func(p *sim.Proc) {
		for id := 0; id < nMsgs; id++ {
			size := 64 + gen.Intn(1500)
			hdr := make([]byte, hdrSize)
			hdr[0] = byte(id)
			hdr[1] = byte(id >> 8)
			msg := append(hdr, payloadFor(id, size)...)
			p.Wait(remote.Send(msg))
		}
	})
	r.env.Run(0)

	if mismatch != nil {
		t.Fatal(mismatch)
	}
	if received != nMsgs {
		t.Fatalf("received %d of %d messages", received, nMsgs)
	}
}

// TestDevFuncConcurrentJobs: many concurrent DevFunc invocations on one
// engine queue FIFO and never corrupt each other's outputs.
func TestDevFuncConcurrentJobs(t *testing.T) {
	r := newRig(t, 1)
	inst, _ := r.dev.OpenRoCEInstance(0)

	const n = 24
	srcs := make([]*device.Buffer, n)
	dsts := make([]*device.Buffer, n)
	origs := make([][]byte, n)
	gen := rng.New(9)
	for i := 0; i < n; i++ {
		src, err := r.dev.DevAlloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := r.dev.DevAlloc(lz4.CompressBound(4096) + lz4.FrameHeaderSize)
		if err != nil {
			t.Fatal(err)
		}
		b := src.Bytes()
		for k := range b {
			b[k] = byte((i + k/16) % 13)
		}
		if gen.Float64() < 0.3 {
			gen.Bytes(b[:1024])
		}
		srcs[i], dsts[i] = src, dst
		origs[i] = append([]byte(nil), b...)
	}

	results := make([]Result, n)
	for i := 0; i < n; i++ {
		i := i
		r.env.Go("caller", func(p *sim.Proc) {
			results[i] = Poll(p, inst.DevFunc(srcs[i], 4096, dsts[i], lz4.LevelDefault))
		})
	}
	r.env.Run(0)

	for i := 0; i < n; i++ {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
		back, err := lz4.DecompressToBuf(dsts[i].Bytes()[:results[i].Size], 4096)
		if err != nil {
			t.Fatalf("job %d: corrupt engine output: %v", i, err)
		}
		if !bytes.Equal(back, origs[i]) {
			t.Fatalf("job %d: engine output belongs to another job", i)
		}
	}
	// The engine processed every byte exactly once.
	if got := inst.Engine().Processed(); got != n*4096 {
		t.Fatalf("engine processed %g bytes, want %d", got, n*4096)
	}
}

// TestMultiPortConcurrentTraffic exercises two instances concurrently,
// each with its own client, verifying isolation of descriptor state.
func TestMultiPortConcurrentTraffic(t *testing.T) {
	r := newRig(t, 2)
	counts := [2]int{}
	for pi := 0; pi < 2; pi++ {
		pi := pi
		inst, _ := r.dev.OpenRoCEInstance(pi)
		local := inst.CreateQP()
		remote := r.peer.CreateQP()
		rdma.Connect(local, remote)

		hbuf := r.dev.HostAlloc(64)
		dbuf, _ := r.dev.DevAlloc(4096)
		var post func()
		post = func() {
			comp := inst.DevMixedRecv(local, hbuf, 64, dbuf, 4096)
			comp.Event().OnTrigger(func(v interface{}) {
				if v.(Result).Err == nil {
					counts[pi]++
					if counts[pi] < 20 {
						post()
					}
				}
			})
		}
		post()
		r.env.Go("client", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				p.Wait(remote.SendSized(nil, 64+1024))
			}
		})
	}
	r.env.Run(0)
	if counts[0] != 20 || counts[1] != 20 {
		t.Fatalf("per-port deliveries: %v", counts)
	}
}
