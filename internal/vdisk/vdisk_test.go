package vdisk

import (
	"bytes"
	"testing"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/storage"
)

// rig wires a disk to a real SmartDS middle tier with three storage
// servers.
type rig struct {
	env  *sim.Env
	disk *Disk
	mt   *middletier.Server
	ss   []*storage.Server
}

func newRig(t *testing.T, kind middletier.Kind) *rig {
	t.Helper()
	env := sim.NewEnv()
	fabric := netsim.NewFabric(env, netsim.DefaultConfig())
	cfg := middletier.DefaultConfig(kind)
	cfg.HBM.Capacity = 64 << 20
	mt := middletier.New(env, fabric, cfg)
	var servers []*storage.Server
	for i := 0; i < 3; i++ {
		servers = append(servers, storage.NewServer(env, fabric,
			netsim.Addr(string(rune('A'+i))), 12.5e9, cfg.Transport, storage.DefaultDisk()))
	}
	mt.ConnectStorage(servers)

	agent := rdma.NewStack(env, fabric.NewPort("vm", 12.5e9), rdma.DefaultConfig())
	qp := mt.ConnectClient(agent)
	disk := Attach(env, qp, Config{VMID: 9, Verify: true})
	return &rig{env: env, disk: disk, mt: mt, ss: servers}
}

func block(seed uint64) []byte {
	b := make([]byte, 4096)
	r := rng.New(seed)
	for i := 0; i < len(b); i += 16 {
		copy(b[i:], "record:")
		b[i+8] = byte(r.Intn(4))
	}
	return b
}

func TestWriteThenReadBack(t *testing.T) {
	r := newRig(t, middletier.SmartDS)
	want := block(1)
	var got []byte
	var werr, rerr error
	r.env.Go("vm", func(p *sim.Proc) {
		werr = r.disk.Write(p, 12345, want)
		got, rerr = r.disk.Read(p, 12345)
	})
	r.env.Run(0)
	if werr != nil || rerr != nil {
		t.Fatalf("errors: write=%v read=%v", werr, rerr)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read returned different bytes than written")
	}
	if r.disk.Writes != 1 || r.disk.Reads != 1 || r.disk.Errors != 0 {
		t.Fatalf("stats: %d/%d/%d", r.disk.Writes, r.disk.Reads, r.disk.Errors)
	}
	if r.disk.WriteLat.Count() != 1 || r.disk.WriteLat.Mean() <= 0 {
		t.Fatal("write latency not recorded")
	}
}

func TestReadMissingBlock(t *testing.T) {
	r := newRig(t, middletier.SmartDS)
	var err error
	r.env.Go("vm", func(p *sim.Proc) {
		_, err = r.disk.Read(p, 999)
	})
	r.env.Run(0)
	if err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if r.disk.Errors != 1 {
		t.Fatalf("errors = %d", r.disk.Errors)
	}
}

func TestWriteWrongSizeRejected(t *testing.T) {
	r := newRig(t, middletier.SmartDS)
	var err error
	r.env.Go("vm", func(p *sim.Proc) {
		err = r.disk.Write(p, 1, []byte("short"))
	})
	r.env.Run(0)
	if err == nil {
		t.Fatal("short block accepted")
	}
}

func TestAsyncPipelineAndFlush(t *testing.T) {
	r := newRig(t, middletier.SmartDS)
	const n = 32
	r.env.Go("vm", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.disk.WriteAsync(uint64(i), block(uint64(i)), i%5 == 0)
		}
		if r.disk.Outstanding() != n {
			t.Errorf("outstanding = %d, want %d", r.disk.Outstanding(), n)
		}
		r.disk.Flush(p)
		if r.disk.Outstanding() != 0 {
			t.Errorf("outstanding after flush = %d", r.disk.Outstanding())
		}
	})
	r.env.Run(0)
	if r.disk.Writes != n || r.disk.Errors != 0 {
		t.Fatalf("writes=%d errors=%d", r.disk.Writes, r.disk.Errors)
	}
	// Bypass writes skipped the engine but still got stored.
	if r.mt.BypassHits == 0 {
		t.Fatal("latency-sensitive flag not honored")
	}
	for i, srv := range r.ss {
		if srv.Writes != n {
			t.Fatalf("storage %d got %d writes, want %d", i, srv.Writes, n)
		}
	}
}

func TestOverwriteReturnsLatestVersion(t *testing.T) {
	r := newRig(t, middletier.SmartDS)
	v1, v2 := block(10), block(20)
	var got []byte
	r.env.Go("vm", func(p *sim.Proc) {
		if err := r.disk.Write(p, 7, v1); err != nil {
			t.Errorf("write v1: %v", err)
		}
		if err := r.disk.Write(p, 7, v2); err != nil {
			t.Errorf("write v2: %v", err)
		}
		got, _ = r.disk.Read(p, 7)
	})
	r.env.Run(0)
	if !bytes.Equal(got, v2) {
		t.Fatal("read did not return the latest version")
	}
}

func TestWorksOnCPUOnlyMiddleTier(t *testing.T) {
	r := newRig(t, middletier.CPUOnly)
	want := block(3)
	var got []byte
	r.env.Go("vm", func(p *sim.Proc) {
		if err := r.disk.Write(p, 42, want); err != nil {
			t.Errorf("write: %v", err)
		}
		got, _ = r.disk.Read(p, 42)
	})
	r.env.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("CPU-only round trip mismatch")
	}
}

func TestGeometryMappingUsed(t *testing.T) {
	// Writes to LBAs in different chunks land under different keys.
	r := newRig(t, middletier.SmartDS)
	geo := blockstore.DefaultGeometry()
	lbaA := uint64(0)
	lbaB := uint64(geo.BlocksPerChunk()) // first block of chunk 1
	r.env.Go("vm", func(p *sim.Proc) {
		r.disk.Write(p, lbaA, block(1))
		r.disk.Write(p, lbaB, block(2))
	})
	r.env.Run(0)
	store := r.ss[0].Store()
	if _, ok := store.Lookup(storage.BlockKey{ChunkID: 0, BlockOff: 0}); !ok {
		t.Fatal("chunk 0 block missing")
	}
	if _, ok := store.Lookup(storage.BlockKey{ChunkID: 1, BlockOff: 0}); !ok {
		t.Fatal("chunk 1 block missing")
	}
}
