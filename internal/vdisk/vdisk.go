// Package vdisk is the compute-server side of the system: a virtual
// disk (paper §2.1) exposed to a VM by its storage agent. Reads and
// writes are LBA-addressed 4 KB blocks; the agent maps each to its
// segment/chunk location, frames the block-storage header, and talks
// to the middle tier over RDMA.
package vdisk

import (
	"errors"
	"fmt"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

// Errors surfaced to the VM.
var (
	ErrNotFound   = errors.New("vdisk: block not found")
	ErrCorrupt    = errors.New("vdisk: block failed integrity check")
	ErrRemote     = errors.New("vdisk: remote error")
	ErrBadRequest = errors.New("vdisk: invalid request")
)

// Result is the value carried by asynchronous completions.
type Result struct {
	Data []byte // read results
	Err  error
}

// Disk is one attached virtual disk.
type Disk struct {
	env  *sim.Env
	geo  blockstore.Geometry
	qp   *rdma.QP
	vmID uint64

	blockSize     int
	nextReq       uint64
	pending       map[uint64]*op
	verifyDefault bool

	// Stats.
	Writes, Reads, Errors uint64
	WriteLat, ReadLat     *metrics.Histogram
}

type op struct {
	done   *sim.Event
	isRead bool
	start  sim.Time
	crc    uint32
	verify bool
}

// Config parameterizes Attach.
type Config struct {
	VMID      uint64
	BlockSize int
	Geometry  blockstore.Geometry
	// Verify makes reads check the returned block's CRC against the
	// CRC recorded at write time (catches any corruption end to end).
	Verify bool
}

// Attach binds a disk to an already-connected client QP (the agent's
// connection to its middle-tier server).
func Attach(env *sim.Env, qp *rdma.QP, cfg Config) *Disk {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.Geometry == (blockstore.Geometry{}) {
		cfg.Geometry = blockstore.DefaultGeometry()
	}
	d := &Disk{
		env:       env,
		geo:       cfg.Geometry,
		qp:        qp,
		vmID:      cfg.VMID,
		blockSize: cfg.BlockSize,
		pending:   make(map[uint64]*op),
		WriteLat:  metrics.NewLatencyHistogram(),
		ReadLat:   metrics.NewLatencyHistogram(),
	}
	d.verifyDefault = cfg.Verify
	qp.OnRecv = d.onReply
	return d
}

// WriteAsync issues a write of one block at lba. The returned event's
// value is a Result (Err nil on success). latencySensitive requests
// bypass compression in the middle tier (paper §4.3).
func (d *Disk) WriteAsync(lba uint64, data []byte, latencySensitive bool) *sim.Event {
	ev := d.env.NewEvent()
	if len(data) != d.blockSize {
		ev.Trigger(Result{Err: fmt.Errorf("%w: block must be %d bytes, got %d", ErrBadRequest, d.blockSize, len(data))})
		return ev
	}
	d.nextReq++
	id := d.nextReq
	loc := d.geo.Resolve(lba)
	h := blockstore.Header{
		Op: blockstore.OpWrite, VMID: d.vmID, ReqID: id,
		SegmentID: loc.SegmentID, ChunkID: loc.ChunkID, BlockOff: loc.BlockOff,
		OrigLen: uint32(len(data)), CRC: lz4.Checksum(data),
	}
	if latencySensitive {
		h.Flags |= blockstore.FlagLatencySensitive
	}
	d.pending[id] = &op{done: ev, start: d.env.Now()}
	d.qp.Send(blockstore.Message(&h, data))
	return ev
}

// Write issues a write and blocks the process until it is durable on
// all replicas.
func (d *Disk) Write(p *sim.Proc, lba uint64, data []byte) error {
	res := p.Wait(d.WriteAsync(lba, data, false)).(Result)
	return res.Err
}

// ReadAsync issues a read of one block.
func (d *Disk) ReadAsync(lba uint64) *sim.Event {
	ev := d.env.NewEvent()
	d.nextReq++
	id := d.nextReq
	loc := d.geo.Resolve(lba)
	h := blockstore.Header{
		Op: blockstore.OpRead, VMID: d.vmID, ReqID: id,
		SegmentID: loc.SegmentID, ChunkID: loc.ChunkID, BlockOff: loc.BlockOff,
	}
	d.pending[id] = &op{done: ev, isRead: true, start: d.env.Now(), verify: d.verifyDefault}
	d.qp.SendSized(h.Encode(), blockstore.HeaderSize)
	return ev
}

// Read issues a read and blocks until the block arrives.
func (d *Disk) Read(p *sim.Proc, lba uint64) ([]byte, error) {
	res := p.Wait(d.ReadAsync(lba)).(Result)
	return res.Data, res.Err
}

// Flush blocks until every outstanding request has completed.
func (d *Disk) Flush(p *sim.Proc) {
	for len(d.pending) > 0 {
		// Wait on any one pending op; loop re-checks.
		for _, o := range d.pending {
			p.Wait(o.done)
			break
		}
	}
}

// Outstanding reports in-flight requests.
func (d *Disk) Outstanding() int { return len(d.pending) }

// onReply completes requests as middle-tier replies arrive.
func (d *Disk) onReply(m *rdma.Message) {
	if m.Data == nil || len(m.Data) < blockstore.HeaderSize {
		return
	}
	h, err := blockstore.Decode(m.Data)
	if err != nil {
		return
	}
	o, ok := d.pending[h.ReqID]
	if !ok {
		return
	}
	delete(d.pending, h.ReqID)
	lat := d.env.Now() - o.start

	var res Result
	switch h.Status {
	case blockstore.StatusOK:
	case blockstore.StatusNotFound:
		res.Err = ErrNotFound
	case blockstore.StatusCorrupt:
		res.Err = ErrCorrupt
	default:
		res.Err = ErrRemote
	}
	if o.isRead {
		d.Reads++
		d.ReadLat.Record(lat)
		if res.Err == nil {
			if len(m.Data) > blockstore.HeaderSize {
				res.Data = append([]byte(nil), m.Data[blockstore.HeaderSize:]...)
			}
			if o.verify && res.Data == nil {
				res.Err = ErrCorrupt // expected payload bytes, got none
			}
		}
	} else {
		d.Writes++
		d.WriteLat.Record(lat)
	}
	if res.Err != nil {
		d.Errors++
	}
	o.done.Trigger(res)
}
