// Package sim is the call-graph golden-test fixture: a miniature of
// the simulator core exercising every edge kind (static, closure,
// interface, dynamic) and every root role (//hot annotation, timer
// callback, process body). The package path ends in internal/sim so
// the Env registration methods are recognized.
package sim

// Env mimics the simulator environment's registration surface.
type Env struct{}

// At registers a timer callback.
func (e *Env) At(t float64, fn func()) {}

// Go spawns a process body.
func (e *Env) Go(name string, fn func(p *Proc)) {}

// Proc mimics a simulated process handle.
type Proc struct{}

type store interface{ Put(k int) }

type mem struct{}

func (m *mem) Put(k int) { alloc() }

type disk struct{}

func (d *disk) Put(k int) {}

//hot:annotated root
func dispatch(e *Env) {
	helper()
	e.At(1, onTimer)
	e.At(2, func() { helper() })
	e.Go("w", worker)
	var s store = &mem{}
	s.Put(1)
	cb := helper
	cb()
	func() { helper() }()
}

func onTimer() {}

func worker(p *Proc) {}

func helper() {}

func alloc() {}
