// Call graph: the interprocedural layer of the detcheck framework.
//
// BuildCallGraph walks every loaded package once and produces a
// package-set call graph whose nodes are function declarations and
// function literals and whose edges are call sites. Static calls are
// resolved exactly; calls through interfaces and function values are
// over-approximated conservatively:
//
//   - an interface method call gets an edge to every method in the
//     package set with the same name and signature shape (class
//     hierarchy analysis by name+signature, which is robust against
//     the two type-checking universes the source importer creates for
//     each package);
//   - a call through a function value gets an edge to every
//     address-taken function or closure with the same signature shape.
//
// Nodes are keyed by a stable string ID (types.Func.FullName for
// declarations, package path + position for literals), so the same
// function seen from its defining package and through the source
// importer unifies to one node.
//
// The graph also records the three root roles the interprocedural
// analyzers start from: functions annotated `//hot`, callbacks handed
// to the simulator's event loop (Env.At / Env.After /
// Ticker.Subscribe), and process bodies handed to Env.Go.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unit is one type-checked package as the call-graph builder consumes
// it: the driver adapts load.Package (and analysistest its fixtures)
// into this neutral shape so the framework does not depend on the
// loader.
type Unit struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info
}

// Role marks why a function is an analysis entry point.
type Role uint8

const (
	// RoleHot marks a function annotated with a `//hot` comment (on
	// the declaration line, the line above it, or in its doc comment):
	// part of the zero-allocation contract.
	RoleHot Role = 1 << iota
	// RoleTimerCallback marks a callback registered on the simulator
	// event loop (Env.At, Env.After, Ticker.Subscribe): it runs inline
	// in the dispatcher, where per-event cost is the paper's currency.
	RoleTimerCallback
	// RoleProcBody marks a function handed to Env.Go: the body of a
	// simulated process.
	RoleProcBody
)

// EdgeKind classifies how a call site was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a named function or method.
	EdgeStatic EdgeKind = iota
	// EdgeClosure is the immediate invocation of a function literal.
	EdgeClosure
	// EdgeInterface is a call through an interface method, resolved to
	// every same-shaped concrete method in the package set.
	EdgeInterface
	// EdgeDynamic is a call through a function value, resolved to
	// every address-taken function with the same signature shape.
	EdgeDynamic
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeClosure:
		return "closure"
	case EdgeInterface:
		return "interface"
	case EdgeDynamic:
		return "dynamic"
	}
	return "unknown"
}

// FuncNode is one function (declaration or literal) in the call graph.
type FuncNode struct {
	// ID is the stable identity: types.Func.FullName for declared
	// functions and methods, "pkg.func@file:line:col" for literals.
	ID string
	// Name is the short display name ("(*Env).fire", "func@env.go:212").
	Name string
	// PkgPath is the import path of the package the node was declared
	// in ("" for stub nodes only ever seen as call targets, e.g.
	// standard-library functions).
	PkgPath string
	// Pos is the declaration position (NoPos for stubs).
	Pos token.Pos
	// Decl and Lit hold the syntax when the defining package was part
	// of the build: exactly one is non-nil for defined nodes, both are
	// nil for stubs.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// InTestFile records whether the node was declared in a _test.go
	// file; analyzers that enforce production contracts skip those.
	InTestFile bool
	// Info is the type information of the unit that defined the node,
	// nil for stubs. Interprocedural analyzers use it to scan bodies.
	Info *types.Info
	// Roles is the set of entry-point roles this node carries.
	Roles Role
	// Cold marks a `//cold` annotation: the function is declared off
	// the steady-state path (rare fault handling, epoch-scale
	// bookkeeping), so hot-path analyzers neither root it nor follow
	// calls into it. It is a reviewed trust boundary, like a waiver.
	Cold bool

	// Out and In are the call edges leaving and entering the node, in
	// deterministic build order.
	Out []*CallEdge
	In  []*CallEdge

	addrTaken bool
	sig       string // normalized signature shape, "" when unknown
	method    bool   // declared with a receiver
}

// String returns the display name.
func (n *FuncNode) String() string { return n.Name }

// AddrTaken reports whether the function's value escapes into a
// variable, field, argument, or return — i.e. whether a dynamic call
// site of the same shape may invoke it.
func (n *FuncNode) AddrTaken() bool { return n.addrTaken }

// Defined reports whether the node's body is part of the analyzed
// package set (false for standard-library and other external targets).
func (n *FuncNode) Defined() bool { return n.Decl != nil || n.Lit != nil }

// Body returns the function body when defined, else nil.
func (n *FuncNode) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	// Pos is the call site.
	Pos token.Pos
	// Kind records how the site was resolved.
	Kind EdgeKind
}

// CallGraph is the package-set call graph.
type CallGraph struct {
	Fset *token.FileSet

	nodes map[string]*FuncNode
	order []*FuncNode // insertion order: deterministic across runs
}

// Node returns the node with the given ID, or nil.
func (g *CallGraph) Node(id string) *FuncNode { return g.nodes[id] }

// Nodes returns all nodes in deterministic build order.
func (g *CallGraph) Nodes() []*FuncNode { return g.order }

// Roots returns the defined nodes carrying any of the given roles, in
// build order.
func (g *CallGraph) Roots(mask Role) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.order {
		if n.Roles&mask != 0 && n.Defined() {
			out = append(out, n)
		}
	}
	return out
}

// ReachableFrom computes the forward-reachable set from roots,
// following only edges for which follow returns true (nil follows
// everything). The result maps each reached node to the edge by which
// BFS first reached it; roots map to nil. Deterministic: BFS order is
// the deterministic node and edge order.
func (g *CallGraph) ReachableFrom(roots []*FuncNode, follow func(*CallEdge) bool) map[*FuncNode]*CallEdge {
	tree := make(map[*FuncNode]*CallEdge, len(roots))
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := tree[r]; !ok {
			tree[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if _, ok := tree[e.Callee]; ok {
				continue
			}
			tree[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return tree
}

// ChainTo reconstructs the call chain root → ... → n from a
// ReachableFrom tree. It returns nil when n was not reached.
func ChainTo(tree map[*FuncNode]*CallEdge, n *FuncNode) []*FuncNode {
	e, ok := tree[n]
	if !ok {
		return nil
	}
	chain := []*FuncNode{n}
	for e != nil {
		n = e.Caller
		chain = append(chain, n)
		e = tree[n]
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// ChainString renders a call chain as "a → b → c", eliding the middle
// of very long chains.
func ChainString(chain []*FuncNode) string {
	const maxShown = 5
	names := make([]string, 0, len(chain))
	if len(chain) <= maxShown {
		for _, n := range chain {
			names = append(names, n.Name)
		}
	} else {
		for _, n := range chain[:2] {
			names = append(names, n.Name)
		}
		names = append(names, fmt.Sprintf("… %d calls …", len(chain)-4))
		for _, n := range chain[len(chain)-2:] {
			names = append(names, n.Name)
		}
	}
	return strings.Join(names, " → ")
}

// SCCs returns the strongly connected components of the graph in
// bottom-up order: every edge leaving a component points to an earlier
// component, so iterating the result visits callees before callers.
// Analyzers use this to propagate per-function summary facts without
// worrying about recursion.
func (g *CallGraph) SCCs() [][]*FuncNode {
	// Tarjan, iterative. index/lowlink per node.
	index := make(map[*FuncNode]int, len(g.order))
	lowlink := make(map[*FuncNode]int, len(g.order))
	onStack := make(map[*FuncNode]bool, len(g.order))
	var stack []*FuncNode
	var comps [][]*FuncNode
	next := 0

	type frame struct {
		n  *FuncNode
		ei int
	}
	for _, start := range g.order {
		if _, seen := index[start]; seen {
			continue
		}
		work := []frame{{n: start}}
		index[start], lowlink[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ei < len(f.n.Out) {
				callee := f.n.Out[f.ei].Callee
				f.ei++
				if _, seen := index[callee]; !seen {
					index[callee], lowlink[callee] = next, next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					work = append(work, frame{n: callee})
				} else if onStack[callee] && index[callee] < lowlink[f.n] {
					lowlink[f.n] = index[callee]
				}
				continue
			}
			// Node finished: pop component if root.
			n := f.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].n
				if lowlink[n] < lowlink[p] {
					lowlink[p] = lowlink[n]
				}
			}
			if lowlink[n] == index[n] {
				var comp []*FuncNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// ShortName trims a full package path down to its last two segments
// for diagnostics ("github.com/x/y/internal/sim" → "internal/sim").
func ShortName(pkgPath string) string {
	segs := strings.Split(pkgPath, "/")
	if len(segs) <= 2 {
		return pkgPath
	}
	return strings.Join(segs[len(segs)-2:], "/")
}

// builder carries the two-phase construction state.
type builder struct {
	g *CallGraph

	// hotLines maps filename → set of lines carrying a //hot comment;
	// coldLines is the same for //cold.
	hotLines  map[string]map[int]bool
	coldLines map[string]map[int]bool

	ifaceSites   []pendingSite // interface method calls, phase-2 resolved
	dynSites     []pendingSite // function-value calls, phase-2 resolved
	ifaceAddrSig []string      // method-value-of-interface shapes: mark impls address-taken
}

type pendingSite struct {
	caller *FuncNode
	pos    token.Pos
	name   string // method name for interface sites, "" for dynamic
	sig    string
}

// SimPkgSuffix is the import-path suffix identifying the simulator
// core whose Env/Ticker registration methods define callback roots.
// The vet driver and fixtures share this default.
const SimPkgSuffix = "internal/sim"

// BuildCallGraph constructs the call graph for a set of type-checked
// units. Units must share one FileSet.
func BuildCallGraph(units []Unit) *CallGraph {
	g := &CallGraph{nodes: map[string]*FuncNode{}}
	if len(units) > 0 {
		g.Fset = units[0].Fset
	}
	b := &builder{g: g, hotLines: map[string]map[int]bool{}, coldLines: map[string]map[int]bool{}}
	for _, u := range units {
		for _, f := range u.Files {
			b.scanHotComments(u.Fset, f)
		}
	}
	for _, u := range units {
		for _, f := range u.Files {
			b.walkFile(u, f)
		}
	}
	b.resolvePending()
	return g
}

// scanHotComments indexes the lines of every `//hot` and `//cold`
// annotation. Like //go:build, the marker must be flush against the
// comment slashes — "// hot paths are scanned" is prose, "//hot" is an
// annotation — so doc text about the convention cannot mint roots.
func (b *builder) scanHotComments(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			var lines map[string]map[int]bool
			switch marker(c.Text) {
			case "hot":
				lines = b.hotLines
			case "cold":
				lines = b.coldLines
			default:
				continue
			}
			pos := fset.Position(c.Pos())
			if lines[pos.Filename] == nil {
				lines[pos.Filename] = map[int]bool{}
			}
			lines[pos.Filename][pos.Line] = true
		}
	}
}

// marker classifies a raw comment as a flush //hot or //cold
// annotation (bare, or followed by a space/colon and a reason).
func marker(text string) string {
	if !strings.HasPrefix(text, "//") {
		return "" // /* */ comments are never annotations
	}
	text = text[2:]
	for _, m := range [...]string{"hot", "cold"} {
		rest, ok := strings.CutPrefix(text, m)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == ':') {
			return m
		}
	}
	return ""
}

// hotAt reports whether a declaration starting at pos is covered by a
// //hot annotation (same line or the line above).
func (b *builder) hotAt(fset *token.FileSet, pos token.Pos) bool {
	return markedAt(b.hotLines, fset, pos)
}

// coldAt is hotAt for //cold annotations.
func (b *builder) coldAt(fset *token.FileSet, pos token.Pos) bool {
	return markedAt(b.coldLines, fset, pos)
}

func markedAt(marks map[string]map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	at := fset.Position(pos)
	lines := marks[at.Filename]
	return lines != nil && (lines[at.Line] || lines[at.Line-1])
}

// ensure returns the node with the given ID, creating a stub if new.
func (b *builder) ensure(id string) *FuncNode {
	if n := b.g.nodes[id]; n != nil {
		return n
	}
	n := &FuncNode{ID: id, Name: id}
	b.g.nodes[id] = n
	b.g.order = append(b.g.order, n)
	return n
}

// funcID returns the stable node ID for a declared function.
func funcID(fn *types.Func) string { return fn.FullName() }

// sigShape normalizes a signature to its parameter/result type shape,
// qualified by full package path so the string is identical across the
// loader's type-checking universes. The receiver is excluded.
func sigShape(sig *types.Signature) string {
	if sig == nil {
		return ""
	}
	qual := func(p *types.Package) string { return p.Path() }
	var sb strings.Builder
	sb.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		t := sig.Params().At(i).Type()
		if sig.Variadic() && i == sig.Params().Len()-1 {
			sb.WriteString("...")
		}
		sb.WriteString(types.TypeString(t, qual))
	}
	sb.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	sb.WriteByte(')')
	return sb.String()
}

// shortFuncName renders a display name for a declared function.
func shortFuncName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		return fmt.Sprintf("(%s).%s", types.TypeString(recv, func(p *types.Package) string { return p.Name() }), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// walkFile creates nodes for every declared function in the file and
// walks their bodies.
func (b *builder) walkFile(u Unit, f *ast.File) {
	pos := u.Fset.Position(f.Pos())
	isTest := strings.HasSuffix(pos.Filename, "_test.go")
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		obj, _ := u.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		n := b.ensure(funcID(obj))
		n.Name = shortFuncName(obj)
		n.PkgPath = u.PkgPath
		n.Pos = fd.Pos()
		n.Decl = fd
		n.InTestFile = isTest
		n.Info = u.Info
		n.method = fd.Recv != nil
		if sig, ok := obj.Type().(*types.Signature); ok {
			n.sig = sigShape(sig)
		}
		if b.hotAt(u.Fset, fd.Pos()) || docHasMarker(fd.Doc, "hot") {
			n.Roles |= RoleHot
		}
		if b.coldAt(u.Fset, fd.Pos()) || docHasMarker(fd.Doc, "cold") {
			n.Cold = true
		}
		if fd.Body != nil {
			b.walkBody(u, n, fd.Body, isTest)
		}
	}
}

// docHasMarker reports whether a doc comment carries a flush //hot or
// //cold line (want is "hot" or "cold").
func docHasMarker(doc *ast.CommentGroup, want string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if marker(c.Text) == want {
			return true
		}
	}
	return false
}

// litID returns the stable node ID for a function literal.
func (b *builder) litID(u Unit, lit *ast.FuncLit) string {
	p := u.Fset.Position(lit.Pos())
	return fmt.Sprintf("%s.func@%s:%d:%d", u.PkgPath, shortFile(p.Filename), p.Line, p.Column)
}

// shortFile trims a filename to its base for stable, readable IDs.
func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// litNode creates (or returns) the node for a function literal.
func (b *builder) litNode(u Unit, lit *ast.FuncLit, isTest bool) *FuncNode {
	id := b.litID(u, lit)
	n := b.ensure(id)
	if n.Lit == nil {
		p := u.Fset.Position(lit.Pos())
		n.Name = fmt.Sprintf("func@%s:%d", shortFile(p.Filename), p.Line)
		n.PkgPath = u.PkgPath
		n.Pos = lit.Pos()
		n.Lit = lit
		n.InTestFile = isTest
		n.Info = u.Info
		if sig, ok := u.Info.Types[lit].Type.(*types.Signature); ok {
			n.sig = sigShape(sig)
		}
		if b.hotAt(u.Fset, lit.Pos()) {
			n.Roles |= RoleHot
		}
		if b.coldAt(u.Fset, lit.Pos()) {
			n.Cold = true
		}
	}
	return n
}

// addEdge appends a resolved call edge.
func (b *builder) addEdge(caller, callee *FuncNode, pos token.Pos, kind EdgeKind) {
	e := &CallEdge{Caller: caller, Callee: callee, Pos: pos, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// walkBody resolves the call sites and function-value uses of one
// function body. Nested literals become their own nodes and are walked
// recursively; the outer walk does not descend into them.
func (b *builder) walkBody(u Unit, n *FuncNode, body *ast.BlockStmt, isTest bool) {
	// callPos marks expressions in call position, so a *types.Func use
	// is only "address taken" when it is not the operand of a call.
	// selIdents suppresses the bare Sel identifier of every selector:
	// x.M resolves through noteMethodValue, never as a plain ident use.
	callPos := map[ast.Expr]bool{}
	selIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			lit := b.litNode(u, node, isTest)
			b.walkBody(u, lit, node.Body, isTest)
			if !callPos[ast.Expr(node)] {
				lit.addrTaken = true
			}
			return false
		case *ast.CallExpr:
			fun := ast.Unparen(node.Fun)
			callPos[fun] = true
			b.resolveCall(u, n, node, fun)
		case *ast.Ident:
			if !selIdents[node] {
				b.noteFuncUse(u, node, callPos[ast.Expr(node)])
			}
		case *ast.SelectorExpr:
			selIdents[node.Sel] = true
			b.noteMethodValue(u, node, callPos[ast.Expr(node)])
		}
		return true
	})
}

// resolveCall classifies one call site and records the edge (or a
// pending site for phase 2).
func (b *builder) resolveCall(u Unit, caller *FuncNode, call *ast.CallExpr, fun ast.Expr) {
	// Type conversions look like calls; skip them.
	if tv, ok := u.Info.Types[fun]; ok && tv.IsType() {
		return
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		lit := b.litNode(u, fun, caller.InTestFile)
		b.addEdge(caller, lit, call.Pos(), EdgeClosure)
		return
	case *ast.Ident:
		switch obj := u.Info.Uses[fun].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			callee := b.ensure(funcID(obj))
			if callee.Name == callee.ID {
				callee.Name = shortFuncName(obj)
			}
			b.addEdge(caller, callee, call.Pos(), EdgeStatic)
			b.noteRegistration(u, caller, obj, call)
			return
		case *types.TypeName:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj().(*types.Func)
			if types.IsInterface(recvType(m)) {
				b.ifaceSites = append(b.ifaceSites, pendingSite{
					caller: caller, pos: call.Pos(), name: m.Name(), sig: sigShape(m.Type().(*types.Signature)),
				})
				return
			}
			callee := b.ensure(funcID(m))
			if callee.Name == callee.ID {
				callee.Name = shortFuncName(m)
			}
			b.addEdge(caller, callee, call.Pos(), EdgeStatic)
			b.noteRegistration(u, caller, m, call)
			return
		}
		// Package-qualified function: p.F resolves through Uses.
		if obj, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			callee := b.ensure(funcID(obj))
			if callee.Name == callee.ID {
				callee.Name = shortFuncName(obj)
			}
			b.addEdge(caller, callee, call.Pos(), EdgeStatic)
			b.noteRegistration(u, caller, obj, call)
			return
		}
	}
	// A call through a function value.
	if sig, ok := typeOf(u, fun).(*types.Signature); ok {
		b.dynSites = append(b.dynSites, pendingSite{caller: caller, pos: call.Pos(), sig: sigShape(sig)})
	}
}

// recvType returns the receiver type of a method, nil for functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func typeOf(u Unit, e ast.Expr) types.Type {
	if tv, ok := u.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// noteFuncUse marks a named function referenced outside call position
// as address-taken.
func (b *builder) noteFuncUse(u Unit, id *ast.Ident, inCallPos bool) {
	if inCallPos {
		return
	}
	obj, ok := u.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	b.markTaken(obj)
}

// markTaken records a declared function as address-taken.
func (b *builder) markTaken(obj *types.Func) {
	n := b.ensure(funcID(obj))
	if n.Name == n.ID {
		n.Name = shortFuncName(obj)
	}
	if n.sig == "" {
		if sig, ok := obj.Type().(*types.Signature); ok {
			n.sig = sigShape(sig)
		}
	}
	n.addrTaken = true
}

// noteMethodValue marks function values built from selectors as
// address-taken: package-qualified functions and concrete method
// values directly, interface method values by marking every
// same-shaped implementation in phase 2.
func (b *builder) noteMethodValue(u Unit, sel *ast.SelectorExpr, inCallPos bool) {
	if inCallPos {
		return
	}
	s, ok := u.Info.Selections[sel]
	if !ok {
		// No selection: a package-qualified reference like pkg.F.
		if obj, ok := u.Info.Uses[sel.Sel].(*types.Func); ok {
			b.markTaken(obj)
		}
		return
	}
	if s.Kind() != types.MethodVal {
		return
	}
	m := s.Obj().(*types.Func)
	if types.IsInterface(recvType(m)) {
		b.ifaceAddrSig = append(b.ifaceAddrSig, m.Name()+"|"+sigShape(m.Type().(*types.Signature)))
		return
	}
	b.markTaken(m)
}

// simEnvMethod reports whether fn is a method named one of names on a
// type declared in a package whose import path ends in SimPkgSuffix.
func simEnvMethod(fn *types.Func, names ...string) bool {
	if fn.Pkg() == nil || !PathHasSuffixSegments(fn.Pkg().Path(), SimPkgSuffix) {
		return false
	}
	if recvType(fn) == nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// noteRegistration marks callback roles: function-typed arguments of
// Env.At/Env.After/Ticker.Subscribe become timer callbacks, the body
// argument of Env.Go becomes a process body. Registrations made from
// test files do not create roots: the runtime contracts bind
// production code.
func (b *builder) noteRegistration(u Unit, caller *FuncNode, callee *types.Func, call *ast.CallExpr) {
	if caller.InTestFile {
		return
	}
	var role Role
	switch {
	case simEnvMethod(callee, "At", "After", "Subscribe"):
		role = RoleTimerCallback
	case simEnvMethod(callee, "Go"):
		role = RoleProcBody
	default:
		return
	}
	for _, arg := range call.Args {
		arg = ast.Unparen(arg)
		if sig, ok := typeOf(u, arg).(*types.Signature); !ok || sig == nil {
			continue
		}
		switch arg := arg.(type) {
		case *ast.FuncLit:
			b.litNode(u, arg, caller.InTestFile).Roles |= role
		case *ast.Ident:
			if obj, ok := u.Info.Uses[arg].(*types.Func); ok {
				b.ensure(funcID(obj)).Roles |= role
			}
		case *ast.SelectorExpr:
			if s, ok := u.Info.Selections[arg]; ok && s.Kind() == types.MethodVal {
				if m, ok := s.Obj().(*types.Func); ok && !types.IsInterface(recvType(m)) {
					b.ensure(funcID(m)).Roles |= role
				}
			}
		}
	}
}

// resolvePending runs phase 2: interface sites fan out to same-shaped
// methods, interface method values mark implementations address-taken,
// and dynamic sites fan out to address-taken functions.
func (b *builder) resolvePending() {
	// Index defined methods and address-taken candidates by shape.
	methodsByShape := map[string][]*FuncNode{}
	for _, n := range b.g.order {
		if n.Defined() && n.method {
			name := n.Decl.Name.Name
			methodsByShape[name+"|"+n.sig] = append(methodsByShape[name+"|"+n.sig], n)
		}
	}
	for _, key := range b.ifaceAddrSig {
		for _, m := range methodsByShape[key] {
			m.addrTaken = true
		}
	}
	for i := range b.ifaceSites {
		s := &b.ifaceSites[i]
		for _, m := range methodsByShape[s.name+"|"+s.sig] {
			b.addEdge(s.caller, m, s.pos, EdgeInterface)
		}
	}
	takenByShape := map[string][]*FuncNode{}
	for _, n := range b.g.order {
		if n.addrTaken && n.sig != "" {
			takenByShape[n.sig] = append(takenByShape[n.sig], n)
		}
	}
	for i := range b.dynSites {
		s := &b.dynSites[i]
		for _, t := range takenByShape[s.sig] {
			b.addEdge(s.caller, t, s.pos, EdgeDynamic)
		}
	}
}

// DumpString renders the graph deterministically for golden tests:
// nodes sorted by ID, each followed by its outgoing edges sorted by
// (kind, callee).
func (g *CallGraph) DumpString() string {
	nodes := make([]*FuncNode, 0, len(g.order))
	for _, n := range g.order {
		if n.Defined() {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	var sb strings.Builder
	for _, n := range nodes {
		var roles []string
		if n.Roles&RoleHot != 0 {
			roles = append(roles, "hot")
		}
		if n.Roles&RoleTimerCallback != 0 {
			roles = append(roles, "timer")
		}
		if n.Roles&RoleProcBody != 0 {
			roles = append(roles, "proc")
		}
		if n.Cold {
			roles = append(roles, "cold")
		}
		tag := ""
		if len(roles) > 0 {
			tag = " [" + strings.Join(roles, ",") + "]"
		}
		if n.addrTaken {
			tag += " &"
		}
		fmt.Fprintf(&sb, "node %s%s\n", n.ID, tag)
		edges := make([]string, 0, len(n.Out))
		for _, e := range n.Out {
			edges = append(edges, fmt.Sprintf("  %s -> %s", e.Kind, e.Callee.ID))
		}
		sort.Strings(edges)
		for _, e := range edges {
			sb.WriteString(e)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
