package framework_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/analysis/framework"
	"github.com/disagg/smartds/internal/analysis/load"
)

// loadFixture type-checks one fixture package and adapts it to units.
func loadFixture(t *testing.T, pkgpath string) []framework.Unit {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(wd, "testdata", "src", filepath.FromSlash(pkgpath))
	l := load.NewLoader()
	pkgs, err := l.DirAs(dir, pkgpath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var units []framework.Unit
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("fixture type error: %v", terr)
		}
		units = append(units, framework.Unit{
			Fset: p.Fset, Files: p.Files, PkgPath: p.PkgPath, Pkg: p.Types, Info: p.Info,
		})
	}
	return units
}

// TestCallGraphGolden pins the exact node, edge, and role structure
// the builder produces for the fixture: static calls, an immediately
// invoked closure, conservative interface fan-out, dynamic fan-out to
// address-taken functions, and the three root roles.
func TestCallGraphGolden(t *testing.T) {
	cg := framework.BuildCallGraph(loadFixture(t, "example.com/internal/sim"))
	const want = `node (*example.com/internal/sim.Env).At
node (*example.com/internal/sim.Env).Go
node (*example.com/internal/sim.disk).Put
node (*example.com/internal/sim.mem).Put
  static -> example.com/internal/sim.alloc
node example.com/internal/sim.alloc
node example.com/internal/sim.dispatch [hot]
  closure -> example.com/internal/sim.func@graph.go:40:2
  dynamic -> example.com/internal/sim.func@graph.go:34:10
  dynamic -> example.com/internal/sim.helper
  dynamic -> example.com/internal/sim.onTimer
  interface -> (*example.com/internal/sim.disk).Put
  interface -> (*example.com/internal/sim.mem).Put
  static -> (*example.com/internal/sim.Env).At
  static -> (*example.com/internal/sim.Env).At
  static -> (*example.com/internal/sim.Env).Go
  static -> example.com/internal/sim.helper
node example.com/internal/sim.func@graph.go:34:10 [timer] &
  static -> example.com/internal/sim.helper
node example.com/internal/sim.func@graph.go:40:2
  static -> example.com/internal/sim.helper
node example.com/internal/sim.helper &
node example.com/internal/sim.onTimer [timer] &
node example.com/internal/sim.worker [proc] &
`
	got := cg.DumpString()
	if got != want {
		t.Errorf("call graph mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestReachabilityAndChains covers the BFS tree helpers: hot roots
// reach the static/closure succession but an edge filter cuts the
// dynamic over-approximation.
func TestReachabilityAndChains(t *testing.T) {
	cg := framework.BuildCallGraph(loadFixture(t, "example.com/internal/sim"))
	roots := cg.Roots(framework.RoleHot)
	if len(roots) != 1 || roots[0].Name != "sim.dispatch" {
		t.Fatalf("hot roots = %v, want [sim.dispatch]", roots)
	}
	// Follow everything: the dynamic edges pull in onTimer.
	all := cg.ReachableFrom(roots, nil)
	onTimer := cg.Node("example.com/internal/sim.onTimer")
	if _, ok := all[onTimer]; !ok {
		t.Errorf("onTimer not reachable with unfiltered edges")
	}
	// Cut dynamic edges: onTimer is only a dynamic target.
	direct := cg.ReachableFrom(roots, func(e *framework.CallEdge) bool {
		return e.Kind != framework.EdgeDynamic
	})
	if _, ok := direct[onTimer]; ok {
		t.Errorf("onTimer reachable despite dynamic-edge filter")
	}
	alloc := cg.Node("example.com/internal/sim.alloc")
	chain := framework.ChainTo(direct, alloc)
	want := "sim.dispatch → (*sim.mem).Put → sim.alloc"
	if got := framework.ChainString(chain); got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
}

// TestSCCsBottomUp pins that callees appear before callers.
func TestSCCsBottomUp(t *testing.T) {
	cg := framework.BuildCallGraph(loadFixture(t, "example.com/internal/sim"))
	pos := map[string]int{}
	for i, comp := range cg.SCCs() {
		for _, n := range comp {
			pos[n.ID] = i
		}
	}
	if pos["example.com/internal/sim.alloc"] >= pos["(*example.com/internal/sim.mem).Put"] {
		t.Errorf("alloc SCC (%d) should come before (*mem).Put SCC (%d)",
			pos["example.com/internal/sim.alloc"], pos["(*example.com/internal/sim.mem).Put"])
	}
	if pos["(*example.com/internal/sim.mem).Put"] >= pos["example.com/internal/sim.dispatch"] {
		t.Errorf("(*mem).Put SCC should come before dispatch SCC")
	}
}

// TestRoleRegistrationFromTests pins that registrations made inside
// _test.go files do not mint roots.
func TestRoleRegistrationFromTests(t *testing.T) {
	units := loadFixture(t, "example.com/internal/sim")
	cg := framework.BuildCallGraph(units)
	for _, n := range cg.Roots(framework.RoleTimerCallback | framework.RoleProcBody) {
		if n.InTestFile {
			t.Errorf("test-file node %s carries a callback role", n.Name)
		}
	}
	if !strings.Contains(cg.DumpString(), "[proc]") {
		t.Errorf("no proc root found at all")
	}
}
