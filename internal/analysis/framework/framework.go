// Package framework is a minimal reimplementation of the parts of
// golang.org/x/tools/go/analysis that the detcheck analyzers need,
// built only on the standard library so the repository stays
// dependency-free. The API mirrors go/analysis deliberately: an
// Analyzer bundles a name, doc string, flags and a Run function; a Pass
// hands Run one type-checked package and a Report sink. If the x/tools
// dependency ever becomes available, the analyzers port over by
// swapping this import.
//
// Escape hatches: every detcheck analyzer honors a `//detcheck:<name>`
// directive comment placed on the flagged line or the line directly
// above it. Directives are deliberate, reviewable annotations — the
// analyzers report everything else.
package framework

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and command-line
	// flags. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph help text.
	Doc string

	// Flags holds analyzer-specific flags. The multichecker registers
	// them with a "<name>." prefix.
	Flags flag.FlagSet

	// WaiverNames lists the `//detcheck:<name>` keys this analyzer
	// honors; empty means exactly {Name}. Analyzers with historical or
	// per-finding-kind keys (maporder→ordered, floatacc→floateq,
	// simspawn→spawn) declare them here so the waiver audit knows the
	// full vocabulary.
	WaiverNames []string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// WaiverKeys returns the waiver vocabulary: WaiverNames, defaulting
// to the analyzer name.
func (a *Analyzer) WaiverKeys() []string {
	if len(a.WaiverNames) > 0 {
		return a.WaiverNames
	}
	return []string{a.Name}
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps positions for all Files.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees (with comments).
	Files []*ast.File

	// PkgPath is the package's import path. Analyzers use it to scope
	// themselves (e.g. wallclock applies only under internal/).
	PkgPath string

	// Pkg and TypesInfo carry type information. TypesInfo is always
	// non-nil; with a broken package its maps may be partial.
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// CallGraph and Summaries carry the interprocedural layer: the
	// package-set call graph and the shared whole-program fact store.
	// Both are nil in drivers that analyze a single compilation unit
	// (the go vet -vettool .cfg protocol); interprocedural analyzers
	// degrade to a no-op there and rely on the standalone driver,
	// which CI runs over the whole tree.
	CallGraph *CallGraph
	Summaries *Summaries

	// Audit, when set, records which waiver directives actually
	// suppressed findings (the -waiver-audit satellite).
	Audit *WaiverAudit

	directives map[directiveKey]bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

type directiveKey struct {
	file string
	line int
	name string
}

// buildDirectives indexes `//detcheck:<name>` comments by file and
// line so Suppressed can answer in O(1).
func (p *Pass) buildDirectives() {
	p.directives = make(map[directiveKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "detcheck:") {
					continue
				}
				rest := strings.TrimPrefix(text, "detcheck:")
				// Allow trailing justification: //detcheck:ordered keys sorted below
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				pos := p.Fset.Position(c.Pos())
				p.directives[directiveKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
}

// Suppressed reports whether a `//detcheck:<name>` directive covers the
// given position: the directive may sit on the same line (trailing
// comment) or on the line immediately above the flagged construct.
// When an Audit is attached, a matching directive is recorded as used.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	if p.directives == nil {
		p.buildDirectives()
	}
	at := p.Fset.Position(pos)
	for _, line := range []int{at.Line, at.Line - 1} {
		if p.directives[directiveKey{at.Filename, line, name}] {
			if p.Audit != nil {
				p.Audit.markUsed(at.Filename, line, name)
			}
			return true
		}
	}
	return false
}

// TypeOf returns the type of an expression, or nil when unknown (for
// example inside a package with type errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ImportedAs returns the local name under which the file imports the
// given path ("" when the file does not import it). A dot import
// returns "."; an underscore import returns "_".
func ImportedAs(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		// Default local name: last path element.
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// PathHasSegment reports whether slash-separated path contains the
// given segment (e.g. PathHasSegment("a/internal/b", "internal")).
func PathHasSegment(path, segment string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == segment {
			return true
		}
	}
	return false
}

// PathHasSegments reports whether slash-separated path contains the
// given multi-segment subsequence on segment boundaries (e.g.
// "a/internal/storage/ssd" contains "internal/storage" but
// "a/internal/storagex" does not).
func PathHasSegments(path, sub string) bool {
	return path == sub ||
		strings.HasPrefix(path, sub+"/") ||
		strings.HasSuffix(path, "/"+sub) ||
		strings.Contains(path, "/"+sub+"/")
}

// PathHasSuffixSegments reports whether path ends in the given
// slash-separated suffix on a segment boundary (e.g. "x/internal/rng"
// ends with "internal/rng" but "x/notinternal/rng" does not).
func PathHasSuffixSegments(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// SortDiagnostics orders diagnostics by position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Message < ds[j].Message
	})
}
