// Summaries: the per-function fact store the interprocedural
// analyzers share. An interprocedural analyzer runs once over the
// whole package set (computing reachability or propagating
// per-function facts bottom-up over the SCC order) and then reports
// its findings package by package as the driver hands it passes; the
// Summaries memoizes that whole-program result so it is computed
// exactly once per run.
package framework

// Summaries carries memoized whole-program analysis results keyed by
// analyzer. It is shared by every Pass of one driver run.
type Summaries struct {
	cg      *CallGraph
	results map[string]interface{}
}

// NewSummaries returns an empty store over the given call graph.
func NewSummaries(cg *CallGraph) *Summaries {
	return &Summaries{cg: cg, results: map[string]interface{}{}}
}

// CallGraph returns the underlying call graph.
func (s *Summaries) CallGraph() *CallGraph { return s.cg }

// Program returns the memoized whole-program result for key,
// computing it on first use. Analyzers use their name as the key; the
// compute function sees the shared call graph and typically walks
// every defined node once (forward reachability from roots) or the
// SCC order bottom-up (summary propagation).
func (s *Summaries) Program(key string, compute func(*CallGraph) interface{}) interface{} {
	if r, ok := s.results[key]; ok {
		return r
	}
	r := compute(s.cg)
	s.results[key] = r
	return r
}
