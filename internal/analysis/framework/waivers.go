// Waiver audit: `//detcheck:<name>` directives are deliberate,
// reviewable suppressions — and like all suppressions they rot. A
// directive naming an analyzer that does not exist, or one that no
// longer suppresses any finding, silently blesses nothing (or worse,
// the wrong thing). The audit collects every directive and every
// suppression hit across a run, so the driver can fail on unknown and
// never-firing waivers.
package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //detcheck: comment.
type Directive struct {
	// Name is the waiver key (an analyzer's waiver name, e.g.
	// "wallclock", "ordered", "floateq").
	Name string
	// Reason is the justification text after the key ("" when absent).
	Reason string
	// Pos is the comment position.
	Pos token.Pos
	// File and Line locate the directive for audit bookkeeping.
	File string
	Line int
}

// Directives parses every //detcheck: comment in the files.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "detcheck:") {
					continue
				}
				rest := strings.TrimPrefix(text, "detcheck:")
				name, reason := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, reason = rest[:i], strings.TrimSpace(rest[i:])
				}
				pos := fset.Position(c.Pos())
				out = append(out, Directive{
					Name: name, Reason: reason, Pos: c.Pos(),
					File: pos.Filename, Line: pos.Line,
				})
			}
		}
	}
	return out
}

// WaiverAudit accumulates suppression hits across every pass of a
// driver run. Pass.Suppressed records into it when attached.
type WaiverAudit struct {
	used map[directiveKey]bool
}

// NewWaiverAudit returns an empty audit.
func NewWaiverAudit() *WaiverAudit {
	return &WaiverAudit{used: map[directiveKey]bool{}}
}

// markUsed records that the directive at (file, line) with the given
// name suppressed a finding.
func (w *WaiverAudit) markUsed(file string, line int, name string) {
	w.used[directiveKey{file, line, name}] = true
}

// Used reports whether the directive suppressed at least one finding
// during the run.
func (w *WaiverAudit) Used(d Directive) bool {
	return w.used[directiveKey{d.File, d.Line, d.Name}]
}
