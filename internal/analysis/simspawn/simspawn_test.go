package simspawn_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/simspawn"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), simspawn.Analyzer,
		"example.com/internal/spawnbad",
		"example.com/internal/sim",
	)
}
