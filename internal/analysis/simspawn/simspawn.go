// Package simspawn forbids free-running concurrency in simulation
// packages. The simulator is cooperatively scheduled: exactly one
// process runs at a time and control passes only through the Env
// calendar (Env.Go, Proc.Sleep/Wait, resource operations). A bare `go`
// statement or a raw channel operation races the scheduler in host
// time, so whether it interleaves before or after a virtual-time event
// depends on the Go runtime — exactly the nondeterminism the virtual
// clock exists to exclude. Only internal/sim's own scheduler
// internals, which implement the parking protocol, are exempt.
package simspawn

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the simspawn check.
var Analyzer = &framework.Analyzer{
	Name: "simspawn",
	Doc: "forbid bare go statements and raw channel operations in simulation packages; " +
		"spawn processes with Env.Go and synchronize through Proc parking",
	WaiverNames: []string{"spawn"},
	Run:         run,
}

var scope, exempt string

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", "internal",
		"only packages whose import path contains this segment are checked")
	Analyzer.Flags.StringVar(&exempt, "exempt", "internal/sim",
		"comma-separated import-path suffixes exempt from the check (scheduler internals)")
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.PkgPath, scope) {
		return nil
	}
	for _, suffix := range strings.Split(exempt, ",") {
		if suffix = strings.TrimSpace(suffix); suffix != "" &&
			framework.PathHasSuffixSegments(strings.TrimSuffix(pass.PkgPath, "_test"), suffix) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(pass, n.Pos(), "bare go statement races the cooperative scheduler; use Env.Go")
			case *ast.SendStmt:
				report(pass, n.Pos(), "raw channel send synchronizes in host time; use Event/Proc parking")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(pass, n.Pos(), "raw channel receive synchronizes in host time; use Proc.Wait")
				}
			case *ast.SelectStmt:
				report(pass, n.Pos(), "select races channels in host time; use Env.AnyOf/WaitTimeout")
			case *ast.CallExpr:
				if isMakeChan(pass, n) {
					report(pass, n.Pos(), "channel construction in simulation code; use Env.NewEvent")
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(pass, n.Pos(), "range over channel synchronizes in host time; use Proc.Wait")
					}
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *framework.Pass, pos token.Pos, msg string) {
	if pass.Suppressed("spawn", pos) {
		return
	}
	pass.Reportf(pos, "%s", msg)
}

// isMakeChan reports whether the call is make(chan ...).
func isMakeChan(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	t := pass.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
