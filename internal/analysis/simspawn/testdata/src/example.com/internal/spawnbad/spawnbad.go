// Package spawnbad exercises every simspawn trigger.
package spawnbad

func bad() {
	ch := make(chan int, 1) // want `channel construction in simulation code`
	go func() {             // want `bare go statement races the cooperative scheduler`
		ch <- 1 // want `raw channel send synchronizes in host time`
	}()
	_ = <-ch // want `raw channel receive synchronizes in host time`
	select { // want `select races channels in host time`
	case v := <-ch: // want `raw channel receive synchronizes in host time`
		_ = v
	default:
	}
	for v := range ch { // want `range over channel synchronizes in host time`
		_ = v
	}
}

func annotated(done chan struct{}) {
	//detcheck:spawn host-side watchdog outside virtual time
	go func() {
		//detcheck:spawn paired with the watchdog above
		done <- struct{}{}
	}()
}
