// Package sim stands in for the scheduler internals, which are exempt:
// they implement the parking protocol the rest of the tree must use.
package sim

// Proc mimics the scheduler's parking handshake.
type Proc struct{ resume chan struct{} }

func run(p *Proc, fn func()) {
	go func() {
		<-p.resume
		fn()
	}()
	p.resume <- struct{}{}
}
