package mutexcopy_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/mutexcopy"
)

func TestMutexcopy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mutexcopy.Analyzer,
		"example.com/internal/mcopy",
		"example.com/app",
	)
}
