// Firing fixture for mutexcopy: every way a lock-containing value is
// copied (receiver, parameter, result, assignment, call argument,
// range value). Construction of fresh values and pointer plumbing is
// fine.
package mcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want `by-value parameter copies sync\.Mutex`
	return g.n
}

func (g guarded) read() int { // want `by-value receiver copies sync\.Mutex`
	return g.n
}

func produce() guarded { // want `by-value result copies sync\.Mutex`
	return guarded{}
}

func snapshot(g *guarded) {
	cp := *g // want `assignment copies sync\.Mutex by value`
	_ = cp.n
	use(*g) // want `call argument copies sync\.Mutex by value`
}

func use(g guarded) int { // want `by-value parameter copies sync\.Mutex`
	return g.n
}

func iterate(gs []guarded) {
	for _, g := range gs { // want `range value copies sync\.Mutex per iteration`
		_ = g.n
	}
}

func fresh() *guarded {
	g := guarded{}
	return &g
}

func ptr(g *guarded) *guarded { return g }
