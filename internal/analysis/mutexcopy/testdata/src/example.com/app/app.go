// Non-firing fixture for mutexcopy: same copies, but the package is
// outside the internal/ scope (host-facing tooling may shuttle config
// structs however it likes).
package app

import "sync"

type cfg struct {
	mu sync.Mutex
	n  int
}

func byValue(c cfg) int { return c.n }

func snapshot(c *cfg) {
	cp := *c
	_ = cp.n
}
