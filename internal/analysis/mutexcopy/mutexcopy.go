// Package mutexcopy forbids copying values that contain sync
// primitives (a copylocks-lite for internal/ packages). A copied
// Mutex/WaitGroup/Once forks its state: both copies think they own
// the lock, and the resulting corruption shows up as a
// once-in-a-thousand-runs hang — exactly the class of bug a
// deterministic simulator exists to rule out.
package mutexcopy

import (
	"go/ast"
	"go/types"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the lock-copy check.
var Analyzer = &framework.Analyzer{
	Name: "mutexcopy",
	Doc: "forbid copying values containing sync primitives (Mutex, RWMutex, WaitGroup, " +
		"Cond, Once, Pool, Map) by value in internal/ packages",
	Run: run,
}

var scope string

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", "internal",
		"only packages whose import path contains this segment are checked")
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.PkgPath, scope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncDecl:
				checkFuncType(pass, x.Recv, x.Type)
			case *ast.FuncLit:
				checkFuncType(pass, nil, x.Type)
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if i >= len(x.Lhs) {
						break
					}
					checkValueCopy(pass, rhs, "assignment")
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					checkRangeCopy(pass, x.Value)
				}
			case *ast.CallExpr:
				if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range x.Args {
					checkValueCopy(pass, arg, "call argument")
				}
			}
			return true
		})
	}
	return nil
}

// checkFuncType flags by-value receivers, parameters and results of
// lock-containing types.
func checkFuncType(pass *framework.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	labels := []string{"receiver", "parameter", "result"}
	for li, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if name, bad := lockInside(t); bad {
				if pass.Suppressed("mutexcopy", field.Pos()) {
					continue
				}
				pass.Reportf(field.Pos(),
					"by-value %s copies %s; pass a pointer", labels[li], name)
			}
		}
	}
}

// checkValueCopy flags reads of existing lock-containing values
// (dereferences, field selections, variables). Fresh composite
// literals are construction, not copies.
func checkValueCopy(pass *framework.Pass, e ast.Expr, what string) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypeOf(e)
	if t == nil {
		return
	}
	if name, bad := lockInside(t); bad {
		if pass.Suppressed("mutexcopy", e.Pos()) {
			return
		}
		pass.Reportf(e.Pos(), "%s copies %s by value; pass a pointer", what, name)
	}
}

func checkRangeCopy(pass *framework.Pass, v ast.Expr) {
	t := pass.TypeOf(v)
	if t == nil {
		return
	}
	if name, bad := lockInside(t); bad {
		if pass.Suppressed("mutexcopy", v.Pos()) {
			return
		}
		pass.Reportf(v.Pos(), "range value copies %s per iteration; range over indexes or pointers", name)
	}
}

// lockInside reports whether t contains a sync primitive by value and
// names the innermost one found.
func lockInside(t types.Type) (string, bool) {
	return lockInsideRec(t, map[types.Type]bool{})
}

func lockInsideRec(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
				return "sync." + obj.Name(), true
			}
		}
		return lockInsideRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name, bad := lockInsideRec(t.Field(i).Type(), seen); bad {
				return name, true
			}
		}
	case *types.Array:
		return lockInsideRec(t.Elem(), seen)
	}
	return "", false
}
