// Package analysistest runs a framework.Analyzer against fixture
// packages under testdata/src and checks its diagnostics against
// `// want "regexp"` expectations, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest on top of the stdlib-only
// framework in this repository.
//
// A fixture package lives at testdata/src/<importpath>/ and is
// type-checked under exactly that import path, so path-scoped
// analyzers (wallclock only fires under internal/, randsrc exempts
// internal/rng, ...) can be exercised with both firing and non-firing
// packages.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/analysis/framework"
	"github.com/disagg/smartds/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics with want expectations.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		runOne(t, testdata, a, path)
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func runOne(t *testing.T, testdata string, a *framework.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	l := load.NewLoader()
	pkgs, err := l.DirAs(dir, pkgpath)
	if err != nil {
		t.Fatalf("%s: loading fixture: %v", pkgpath, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("%s: no Go files in %s", pkgpath, dir)
	}
	// Build the interprocedural layer over the fixture's package set
	// (the library package plus its external test package, if any), the
	// same way the standalone driver does over the whole module.
	var units []framework.Unit
	for _, pkg := range pkgs {
		units = append(units, framework.Unit{
			Fset: pkg.Fset, Files: pkg.Files, PkgPath: pkg.PkgPath,
			Pkg: pkg.Types, Info: pkg.Info,
		})
	}
	cg := framework.BuildCallGraph(units)
	sums := framework.NewSummaries(cg)
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error in fixture: %v", pkgpath, terr)
		}
		var diags []framework.Diagnostic
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			CallGraph: cg,
			Summaries: sums,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s failed: %v", pkgpath, a.Name, err)
			continue
		}
		framework.SortDiagnostics(pkg.Fset, diags)
		wants := collectWants(t, pkg.Fset, pkg.Files)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			if !matchWant(wants[key], d.Message) {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s", pkgpath, pos.Filename, pos.Line, d.Message)
			}
		}
		for key, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s: expected diagnostic matching %q at %s, got none", pkgpath, e.re, key)
				}
			}
		}
	}
}

func matchWant(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want "re" "re"` comments, keyed by file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitQuoted(t, key, rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the double- or back-quoted strings of a want
// comment body.
func splitQuoted(t *testing.T, where, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", where, s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", where, s[:end+1], err)
			}
			out = append(out, unq)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want raw string: %s", where, s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			t.Fatalf("%s: want expects quoted regexps, got: %s", where, s)
		}
	}
}
