// Package simblock forbids wall-clock blocking in simulated code. A
// simulated process or timer callback runs inline in the event
// dispatcher; if it parks on a real channel, mutex, or syscall the
// whole simulation stalls in host time and — worse — results start
// depending on host scheduling, breaking bit-for-bit replay. The only
// legitimate blocking lives inside the simulator core's own
// proc-handoff primitive, which the exempt list covers.
//
// Roots are process bodies (Env.Go) and timer callbacks (Env.At /
// Env.After / Ticker.Subscribe). Reachability follows static,
// closure, and interface edges; dynamic function-value edges are cut
// for the same reason as in hotalloc — the dispatcher's own `fn()`
// trampoline would otherwise mark the entire module.
package simblock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the simulated-blocking check.
var Analyzer = &framework.Analyzer{
	Name: "simblock",
	Doc: "forbid wall-clock blocking (time.Sleep, channel ops, sync.Wait, syscalls/IO) " +
		"in functions reachable from simulated process bodies and timer callbacks",
	Run: run,
}

var exempt string

func init() {
	Analyzer.Flags.StringVar(&exempt, "exempt", framework.SimPkgSuffix,
		"comma-separated package path suffixes whose blocking sites are the sanctioned "+
			"sim handoff and are not reported")
}

type finding struct {
	pkg string
	pos token.Pos
	msg string
}

func run(pass *framework.Pass) error {
	if pass.Summaries == nil || pass.CallGraph == nil {
		return nil // unit mode: the standalone driver covers this in CI
	}
	findings := pass.Summaries.Program("simblock", compute).([]finding)
	for _, f := range findings {
		if f.pkg != pass.PkgPath {
			continue
		}
		if pass.Suppressed("simblock", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

func exemptPkg(path string) bool {
	for _, s := range strings.Split(exempt, ",") {
		if s = strings.TrimSpace(s); s != "" && framework.PathHasSuffixSegments(path, s) {
			return true
		}
	}
	return false
}

func compute(cg *framework.CallGraph) interface{} {
	var roots []*framework.FuncNode
	for _, n := range cg.Roots(framework.RoleProcBody | framework.RoleTimerCallback) {
		if !n.InTestFile {
			roots = append(roots, n)
		}
	}
	tree := cg.ReachableFrom(roots, func(e *framework.CallEdge) bool {
		return e.Kind != framework.EdgeDynamic && !e.Callee.InTestFile
	})
	var out []finding
	for _, n := range cg.Nodes() {
		if _, ok := tree[n]; !ok || !n.Defined() || n.InTestFile {
			continue
		}
		if exemptPkg(n.PkgPath) {
			continue
		}
		chain := framework.ChainString(framework.ChainTo(tree, n))
		scanBody(n, func(pos token.Pos, desc string) {
			out = append(out, finding{
				pkg: n.PkgPath,
				pos: pos,
				msg: fmt.Sprintf("%s in simulated code (via %s); use virtual time and the sim scheduler", desc, chain),
			})
		})
	}
	return out
}

// scanBody reports every potentially blocking construct in one body.
// Nested literals are separate call-graph nodes and are skipped.
func scanBody(n *framework.FuncNode, report func(token.Pos, string)) {
	body := n.Body()
	if body == nil || n.Info == nil {
		return
	}
	info := n.Info
	// Channel ops inside a select's comm clauses are part of the select
	// (the select is the blocking point); collect them so they are not
	// double-reported.
	inSelect := map[ast.Node]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(y ast.Node) bool {
				switch y := y.(type) {
				case *ast.SendStmt:
					inSelect[y] = true
				case *ast.UnaryExpr:
					if y.Op == token.ARROW {
						inSelect[y] = true
					}
				}
				return true
			})
		}
		return true
	})
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !inSelect[x] {
				report(x.Pos(), "channel send may block on the host scheduler")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inSelect[x] {
				report(x.Pos(), "channel receive may block on the host scheduler")
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true // has a default clause: non-blocking
				}
			}
			report(x.Pos(), "select without default may block on the host scheduler")
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(x.Pos(), "range over channel blocks on the host scheduler")
				}
			}
		case *ast.CallExpr:
			if desc, bad := blockingCallee(info, x); bad {
				report(x.Pos(), desc)
			}
		}
		return true
	})
}

// blockingCallee classifies a call as blocking/syscalling by its
// statically named callee.
func blockingCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(info, ast.Unparen(call.Fun))
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "time":
		switch name {
		case "Sleep", "After", "Tick":
			return "time." + name + " blocks in host time", true
		}
	case "sync":
		switch name {
		case "Wait":
			return "sync " + recvName(fn) + ".Wait blocks on the host scheduler", true
		case "Lock", "RLock":
			return "sync " + recvName(fn) + "." + name + " may block on the host scheduler", true
		}
	case "os", "net", "syscall", "os/exec", "io/ioutil":
		return pkg + "." + name + " performs host I/O", true
	}
	return "", false
}

// recvName renders a method's receiver type name for diagnostics.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return fn.Pkg().Name()
}

// staticCallee resolves the *types.Func a direct call names, nil for
// dynamic calls.
func staticCallee(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
