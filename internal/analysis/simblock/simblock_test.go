package simblock_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/framework"
	"github.com/disagg/smartds/internal/analysis/simblock"
)

func TestSimblock(t *testing.T) {
	td := analysistest.TestData()
	// The firing fixture must live under internal/sim (roots come from
	// Env registrations there) — point the exemption elsewhere so the
	// package's own blocking sites report.
	if err := simblock.Analyzer.Flags.Set("exempt", "example.com/none"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, simblock.Analyzer, "example.com/blk/internal/sim")

	if err := simblock.Analyzer.Flags.Set("exempt", framework.SimPkgSuffix); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, simblock.Analyzer, "example.com/blkexempt/internal/sim")
}
