// Non-firing fixture for simblock: with the default exemption
// (internal/sim), the simulator core's own handoff primitives — the
// one sanctioned place that really blocks — are not reported.
package sim

import "time"

// Env mimics the simulator environment's registration surface.
type Env struct{}

// Go spawns a process body.
func (e *Env) Go(name string, fn func(p *Proc)) {}

// Proc mimics a simulated process handle.
type Proc struct{}

var handoff = make(chan struct{}, 1)

func setup(e *Env) {
	e.Go("w", worker)
}

func worker(p *Proc) {
	<-handoff
	handoff <- struct{}{}
	time.Sleep(time.Microsecond)
}
