// Firing fixture for simblock: the package path must end in
// internal/sim so Env.Go / Env.At registrations mint roots, and the
// test overrides -simblock.exempt so the package's own sites report.
package sim

import (
	"os"
	"sync"
	"time"
)

// Env mimics the simulator environment's registration surface.
type Env struct{}

// Go spawns a process body.
func (e *Env) Go(name string, fn func(p *Proc)) {}

// At registers a timer callback.
func (e *Env) At(t float64, fn func()) {}

// Proc mimics a simulated process handle.
type Proc struct{}

var ch = make(chan int)
var wg sync.WaitGroup
var mu sync.Mutex

func setup(e *Env) {
	e.Go("w", worker)
	e.At(1, tick)
}

func worker(p *Proc) {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks in host time`
	ch <- 1                      // want `channel send may block`
	<-ch                         // want `channel receive may block`
	helper()
}

func tick() {
	wg.Wait() // want `WaitGroup\.Wait blocks`
	mu.Lock() // want `Mutex\.Lock may block`
	mu.Unlock()
	select { // want `select without default may block`
	case <-ch:
	}
	select { // non-blocking: has a default clause
	case v := <-ch:
		_ = v
	default:
	}
}

func helper() {
	f, _ := os.Open("x") // want `os\.Open performs host I/O`
	_ = f
	for range ch { // want `range over channel blocks`
		break
	}
}

func free() {
	time.Sleep(1) // unreachable from any root: no finding
}
