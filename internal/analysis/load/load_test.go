package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module for the loader to chew on.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDirUnparseableFile(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":    "module example.com/broken\n",
		"broken.go": "package broken\n\nfunc oops( {\n",
	})
	_, err := NewLoader().Dir(dir)
	if err == nil {
		t.Fatal("Dir succeeded on an unparseable file, want a parse error")
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("parse error does not name the file: %v", err)
	}
}

// TestDirMissingImport pins the partial-check contract: an unresolvable
// import is collected into TypeErrors, but the package is still
// returned so syntactic analyzers can run over it.
func TestDirMissingImport(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module example.com/missing\n",
		"m.go": `package missing

import "example.com/no/such/package"

var _ = nosuch.Value
`,
	})
	pkgs, err := NewLoader().Dir(dir)
	if err != nil {
		t.Fatalf("Dir: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) == 0 {
		t.Error("missing import produced no TypeErrors")
	}
	if len(p.Files) != 1 || p.Info == nil {
		t.Errorf("partially checked package lost its syntax or info: files=%d info=%v", len(p.Files), p.Info != nil)
	}
}

func TestDirRejectsCgo(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module example.com/cgomod\n",
		"c.go": `package cgomod

// #include <stdlib.h>
import "C"

func f() { C.free(nil) }
`,
	})
	_, err := NewLoader().Dir(dir)
	if err == nil {
		t.Fatal("Dir succeeded on a cgo file, want an explicit rejection")
	}
	if !strings.Contains(err.Error(), "cgo is not supported") {
		t.Errorf("cgo rejection message = %v", err)
	}
	if !strings.Contains(err.Error(), "c.go") {
		t.Errorf("cgo rejection does not name the file: %v", err)
	}
}

func TestPatternsBadDirectory(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": "module example.com/empty\n"})
	_, err := NewLoader().Patterns(dir, []string{"./no/such/dir/..."})
	if err == nil {
		t.Fatal("Patterns succeeded on a nonexistent directory, want an error")
	}
	if !strings.Contains(err.Error(), "not a directory") {
		t.Errorf("pattern error = %v", err)
	}
}

// TestImportPathForOutsideModule pins the no-go.mod failure mode.
func TestImportPathForOutsideModule(t *testing.T) {
	dir := t.TempDir() // no go.mod anywhere above a fresh temp root (in practice)
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
		t.Skip("temp dir unexpectedly contains go.mod")
	}
	sub := filepath.Join(dir, "pkg")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := importPathFor(sub); err == nil {
		t.Skip("a go.mod exists above the temp dir on this machine; cannot pin the failure")
	}
}
