// Package load enumerates, parses and type-checks the module's
// packages for the detcheck analyzers using only the standard library
// (go/parser + go/types with the "source" importer). It understands
// the same "./..." pattern syntax the go tool uses, scoped to the
// current module.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked compilation unit. In-package
// test files are checked together with the library files; an external
// test package (package foo_test) forms its own Package.
type Package struct {
	Dir     string
	PkgPath string // import path; external tests carry a "_test" suffix
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// TypeErrors collects type-checking problems. Analyzers still run
	// on partially checked packages; drivers decide whether to fail.
	TypeErrors []error
}

// Loader parses and type-checks packages with a shared FileSet and
// importer so stdlib dependencies are only checked once per process.
type Loader struct {
	Fset *token.FileSet

	// IncludeTests controls whether *_test.go files are loaded.
	// Determinism invariants bind test code too, so the default is on.
	IncludeTests bool

	imp types.Importer
}

// NewLoader returns a loader with test files included.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		IncludeTests: true,
		imp:          importer.ForCompiler(fset, "source", nil),
	}
}

// Patterns resolves go-tool style patterns ("./...", "./internal/rng",
// "dir/...") into packages, rooted at dir (typically the module root
// or the current directory).
func (l *Loader) Patterns(dir string, patterns []string) ([]*Package, error) {
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		expanded, err := expandPattern(dir, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		ps, err := l.Dir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}

// expandPattern turns one pattern into package directories.
func expandPattern(root, pat string) ([]string, error) {
	recursive := false
	if pat == "all" || pat == "..." {
		pat, recursive = ".", true
	}
	if strings.HasSuffix(pat, "/...") {
		pat, recursive = strings.TrimSuffix(pat, "/..."), true
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(root, base)
	}
	if st, err := os.Stat(base); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("load: pattern %q: not a directory: %s", pat, base)
	}
	if !recursive {
		if hasGoFiles(base) {
			return []string{base}, nil
		}
		return nil, nil
	}
	var out []string
	err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Dir loads the package(s) rooted in one directory: the primary
// package (with its in-package test files when IncludeTests is set)
// and, separately, an external test package if present.
func (l *Loader) Dir(dir string) ([]*Package, error) {
	pkgPath, err := importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.DirAs(dir, pkgPath)
}

// DirAs is Dir with an explicit import path, used by test fixtures
// whose on-disk location is unrelated to the path being simulated.
func (l *Loader) DirAs(dir, pkgPath string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if ignoredByBuildConstraint(f) {
			continue
		}
		if err := rejectCgo(l.Fset, f); err != nil {
			return nil, err
		}
		pkg := f.Name.Name
		byName[pkg] = append(byName[pkg], f)
	}
	var names []string
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*Package
	for _, n := range names {
		path := pkgPath
		if strings.HasSuffix(n, "_test") {
			path += "_test"
		}
		out = append(out, l.check(dir, path, byName[n]))
	}
	return out, nil
}

// rejectCgo turns a cgo file into an explicit, actionable error. The
// source importer cannot type-check import "C" (there is no Go source
// for it), which would otherwise surface as a cascade of confusing
// type errors; determinism analysis of C-calling code is out of scope.
func rejectCgo(fset *token.FileSet, f *ast.File) error {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"C"` {
			return fmt.Errorf(`load: %s: cgo is not supported (import "C"); exclude the file with a build constraint`,
				fset.Position(imp.Pos()).Filename)
		}
	}
	return nil
}

// ignoredByBuildConstraint reports whether the file opts out of the
// build entirely (`//go:build ignore` and friends).
func ignoredByBuildConstraint(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if t == "go:build ignore" || strings.HasPrefix(t, "+build ignore") {
				return true
			}
		}
	}
	return false
}

// check type-checks one group of files.
func (l *Loader) check(dir, pkgPath string, files []*ast.File) *Package {
	p := &Package{
		Dir:     dir,
		PkgPath: pkgPath,
		Fset:    l.Fset,
		Files:   files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error;
	// errors were already captured via conf.Error.
	pkg, _ := conf.Check(pkgPath, l.Fset, files, p.Info)
	p.Types = pkg
	return p
}

// importPathFor computes a directory's import path from the enclosing
// module's go.mod.
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			modPath = strings.TrimSpace(strings.TrimPrefix(line, "module "))
			modPath = strings.Trim(modPath, `"`)
			break
		}
	}
	if modPath == "" {
		return "", fmt.Errorf("load: no module line in %s/go.mod", root)
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
