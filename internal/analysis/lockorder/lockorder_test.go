package lockorder_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer,
		"example.com/lockbad",
		"example.com/lockok",
	)
}
