// Firing fixture for lockorder: f orders a→b, g→h composes b→a
// interprocedurally, so {a, b} is a cycle; relock re-acquires the
// same class while holding it.
package lockbad

import "sync"

var a sync.Mutex
var b sync.Mutex

func f() {
	a.Lock()
	b.Lock() // want `acquiring .*lockbad\.b while holding .*lockbad\.a participates in a lock-order cycle`
	b.Unlock()
	a.Unlock()
}

func g() {
	b.Lock()
	defer b.Unlock()
	h() // want `acquiring .*lockbad\.a while holding .*lockbad\.b participates in a lock-order cycle`
}

func h() {
	a.Lock()
	a.Unlock()
}

type shard struct{ mu sync.Mutex }

func relock(s *shard) {
	s.mu.Lock()
	s.mu.Lock() // want `acquiring .*shard\.mu while already holding it`
	s.mu.Unlock()
	s.mu.Unlock()
}
