// Non-firing fixture for lockorder: every path agrees on the a→b
// order (including the interprocedural one), sequential non-nested
// scopes impose no order at all, and RWMutex read locks follow the
// same consistent order.
package lockok

import "sync"

var a sync.Mutex
var b sync.RWMutex

func f() {
	a.Lock()
	defer a.Unlock()
	g()
}

func g() {
	b.RLock()
	defer b.RUnlock()
}

func sequential() {
	a.Lock()
	a.Unlock()
	b.Lock()
	b.Unlock()
}
