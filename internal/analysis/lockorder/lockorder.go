// Package lockorder builds a whole-program mutex acquisition-order
// graph and reports cycles. Each function gets a summary — the lock
// classes it acquires locally and the lock set held at each outgoing
// call — and the summaries are propagated bottom-up over the SCC
// order, so "g locks B then calls h, h locks A" composes with
// "f locks A then B" into the A→B→A cycle even though no single
// function sees both orders.
//
// A lock class is an abstraction of "which mutex": package-level
// mutex variables are classes of their own (pkg.var), mutex fields
// are classed per type and field (pkg.Type.field), so two instances
// of the same struct share a class. That is deliberately coarse: a
// hand-over-hand traversal that locks two shards of one type in a
// stable order is reported and must carry a //detcheck:lockorder
// waiver explaining the real ordering invariant.
//
// The walk is flow-insensitive within a function (source order
// approximates acquisition order; deferred unlocks mean held-to-end)
// — sound enough for this codebase, where lock scopes are lexical.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the lock-ordering check.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "build the whole-program mutex acquisition graph from per-function summaries " +
		"and report lock-order cycles (potential deadlocks)",
	Run: run,
}

type finding struct {
	pkg string
	pos token.Pos
	msg string
}

func run(pass *framework.Pass) error {
	if pass.Summaries == nil || pass.CallGraph == nil {
		return nil // unit mode: the standalone driver covers this in CI
	}
	findings := pass.Summaries.Program("lockorder", compute).([]finding)
	for _, f := range findings {
		if f.pkg != pass.PkgPath {
			continue
		}
		if pass.Suppressed("lockorder", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

// summary is the per-function lock behavior.
type summary struct {
	// acquires are the classes locked anywhere in the body.
	acquires map[string]bool
	// pairs are direct ordered acquisitions: held h when acquiring c.
	pairs []orderedPair
	// heldAtCall maps a call position to the lock set held there.
	heldAtCall map[token.Pos][]string
}

type orderedPair struct {
	first, second string
	pos           token.Pos
	pkg           string
}

func compute(cg *framework.CallGraph) interface{} {
	// Phase 1: local summaries.
	sums := map[*framework.FuncNode]*summary{}
	for _, n := range cg.Nodes() {
		if n.Defined() && !n.InTestFile {
			sums[n] = localSummary(n)
		}
	}

	// Phase 2: propagate transitively acquired classes bottom-up.
	// Within an SCC every member gets the component's union.
	transAcq := map[*framework.FuncNode]map[string]bool{}
	for _, comp := range cg.SCCs() {
		union := map[string]bool{}
		for _, n := range comp {
			s := sums[n]
			if s == nil {
				continue
			}
			for c := range s.acquires {
				union[c] = true
			}
			for _, e := range n.Out {
				if e.Kind == framework.EdgeDynamic {
					continue
				}
				for c := range transAcq[e.Callee] {
					union[c] = true
				}
			}
		}
		for _, n := range comp {
			transAcq[n] = union
		}
	}

	// Phase 3: the class order graph. Edges from local pairs and from
	// calls made while holding a lock into functions that (transitively)
	// acquire more.
	type edgeKey struct{ first, second string }
	edgePos := map[edgeKey]orderedPair{}
	addPair := func(p orderedPair) {
		k := edgeKey{p.first, p.second}
		if _, ok := edgePos[k]; !ok {
			edgePos[k] = p
		}
	}
	for _, n := range cg.Nodes() {
		s := sums[n]
		if s == nil {
			continue
		}
		for _, p := range s.pairs {
			addPair(p)
		}
		for _, e := range n.Out {
			if e.Kind == framework.EdgeDynamic {
				continue
			}
			held := s.heldAtCall[e.Pos]
			if len(held) == 0 {
				continue
			}
			for c := range transAcq[e.Callee] {
				for _, h := range held {
					addPair(orderedPair{first: h, second: c, pos: e.Pos, pkg: n.PkgPath})
				}
			}
		}
	}

	// Phase 4: cycles = SCCs of the class graph with >1 node, plus
	// self-edges (recursive re-acquisition of a non-reentrant mutex).
	adj := map[string][]string{}
	var classes []string
	seen := map[string]bool{}
	note := func(c string) {
		if !seen[c] {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	for k := range edgePos {
		note(k.first)
		note(k.second)
		adj[k.first] = append(adj[k.first], k.second)
	}
	sort.Strings(classes)
	for _, c := range classes {
		sort.Strings(adj[c])
	}
	comp := classSCCs(classes, adj)

	var out []finding
	reportKeys := make([]edgeKey, 0, len(edgePos))
	for k := range edgePos {
		reportKeys = append(reportKeys, k)
	}
	sort.Slice(reportKeys, func(i, j int) bool {
		if reportKeys[i].first != reportKeys[j].first {
			return reportKeys[i].first < reportKeys[j].first
		}
		return reportKeys[i].second < reportKeys[j].second
	})
	for _, k := range reportKeys {
		p := edgePos[k]
		if k.first == k.second {
			out = append(out, finding{
				pkg: p.pkg, pos: p.pos,
				msg: fmt.Sprintf("acquiring %s while already holding it (self-deadlock on a non-reentrant mutex)", k.first),
			})
			continue
		}
		if comp[k.first] != comp[k.second] {
			continue // edge not inside a cycle
		}
		cycle := cycleMembers(comp, comp[k.first], classes)
		out = append(out, finding{
			pkg: p.pkg, pos: p.pos,
			msg: fmt.Sprintf("acquiring %s while holding %s participates in a lock-order cycle {%s}",
				k.second, k.first, strings.Join(cycle, ", ")),
		})
	}
	return out
}

// cycleMembers lists the classes of one component in sorted order.
func cycleMembers(comp map[string]int, id int, classes []string) []string {
	var out []string
	for _, c := range classes {
		if comp[c] == id {
			out = append(out, c)
		}
	}
	return out
}

// classSCCs computes strongly connected components of the class graph
// (iterative Tarjan over sorted string nodes). Singleton components
// without a self-edge never count as cycles because the caller checks
// component membership of real edges only.
func classSCCs(classes []string, adj map[string][]string) map[string]int {
	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	type frame struct {
		n  string
		ei int
	}
	for _, start := range classes {
		if _, ok := index[start]; ok {
			continue
		}
		work := []frame{{n: start}}
		index[start], lowlink[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ei < len(adj[f.n]) {
				m := adj[f.n][f.ei]
				f.ei++
				if _, ok := index[m]; !ok {
					index[m], lowlink[m] = next, next
					next++
					stack = append(stack, m)
					onStack[m] = true
					work = append(work, frame{n: m})
				} else if onStack[m] && index[m] < lowlink[f.n] {
					lowlink[f.n] = index[m]
				}
				continue
			}
			n := f.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].n
				if lowlink[n] < lowlink[p] {
					lowlink[p] = lowlink[n]
				}
			}
			if lowlink[n] == index[n] {
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp[m] = ncomp
					if m == n {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// localSummary walks one body in source order tracking the held set.
func localSummary(n *framework.FuncNode) *summary {
	s := &summary{
		acquires:   map[string]bool{},
		heldAtCall: map[token.Pos][]string{},
	}
	body := n.Body()
	if body == nil || n.Info == nil {
		return s
	}
	info := n.Info
	var held []string
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // separate node
		case *ast.DeferStmt:
			// Deferred unlocks keep the lock held to function end; the
			// held set is unchanged. Other deferred calls are still
			// calls — record the held set for them.
			if _, op, ok := lockOp(info, x.Call); ok && (op == "Unlock" || op == "RUnlock") {
				return false
			}
			s.heldAtCall[x.Call.Pos()] = append([]string(nil), held...)
			return true
		case *ast.CallExpr:
			if class, op, ok := lockOp(info, x); ok {
				switch op {
				case "Lock", "RLock":
					for _, h := range held {
						s.pairs = append(s.pairs, orderedPair{first: h, second: class, pos: x.Pos(), pkg: n.PkgPath})
					}
					held = append(held, class)
					s.acquires[class] = true
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == class {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			s.heldAtCall[x.Pos()] = append([]string(nil), held...)
		}
		return true
	})
	return s
}

// lockOp recognizes mu.Lock()/Unlock()/RLock()/RUnlock() on
// sync.Mutex / sync.RWMutex and returns the lock class and operation.
func lockOp(info *types.Info, call *ast.CallExpr) (class, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", "", false
	}
	fn, _ := s.Obj().(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	return lockClass(info, sel.X), fn.Name(), true
}

// lockClass abstracts the receiver expression of a lock operation to
// a stable class name.
func lockClass(info *types.Info, x ast.Expr) string {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		// y.mu → Type-of-y.mu: per-type-per-field class.
		if t := namedOf(info.TypeOf(x.X)); t != nil {
			return typeName(t) + "." + x.Sel.Name
		}
		return "?." + x.Sel.Name
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if v, isVar := obj.(*types.Var); isVar {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				// Package-level mutex variable.
				if v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
				return v.Name()
			}
			// Local or receiver: class by its (struct) type when it
			// embeds the mutex, else by declaration site.
			if t := namedOf(v.Type()); t != nil && typeName(t) != "sync.Mutex" && typeName(t) != "sync.RWMutex" {
				return typeName(t) + ".(embedded)"
			}
			if v.Pkg() != nil {
				return v.Pkg().Path() + ".local." + v.Name()
			}
			return "local." + v.Name()
		}
	case *ast.StarExpr:
		return lockClass(info, x.X)
	}
	if t := namedOf(info.TypeOf(x)); t != nil {
		return typeName(t)
	}
	return "?"
}

// namedOf unwraps pointers to the named type underneath, nil if none.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

func typeName(n *types.Named) string {
	if n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}
