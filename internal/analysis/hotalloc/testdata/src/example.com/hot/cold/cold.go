// Non-firing fixture for hotalloc: the same allocating constructs as
// the firing fixture, but no //hot annotation and no simulator
// registration — nothing is reachable from a root, so nothing is
// reported.
package cold

type thing struct{ k int }

var sink interface{}

func build(buf []int) interface{} {
	s := []int{1, 2}
	m := map[string]int{"a": 1}
	buf = append(buf, len(s)+len(m))
	x := &thing{k: 1}
	n := 7
	cb := func() { n++ }
	cb()
	sink = n
	_ = x
	return s
}
