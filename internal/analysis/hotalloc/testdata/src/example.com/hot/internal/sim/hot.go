// Firing fixture for hotalloc: the package path ends in internal/sim
// so Env.At registrations mint timer-callback roots, and dispatch is
// annotated //hot. Every allocating construct below carries a want;
// the non-firing cases (captureless closure, pointer boxing, constant
// concatenation, waived make, non-root functions) carry none.
package sim

import "strconv"

// Env mimics the simulator environment's registration surface.
type Env struct{}

// At registers a timer callback.
func (e *Env) At(t float64, fn func()) {}

// Go spawns a process body.
func (e *Env) Go(name string, fn func(p *Proc)) {}

// Proc mimics a simulated process handle.
type Proc struct{}

type item struct{ k, v int }

var pool []*item
var sink interface{}
var label string

//hot:per-event dispatch entry, zero-alloc contract
func dispatch(e *Env, buf []int, it *item) {
	helper(it)
	s := []int{1, 2}                 // want `slice literal allocates`
	m := map[string]int{"a": 1}      // want `map literal allocates`
	buf = append(buf, len(s)+len(m)) // want `append may grow`
	x := &item{k: 1}                 // want `&sim.item literal allocates`
	pool = append(pool, x)           // want `append may grow`
	n := 7
	cb := func() { n++ } // want `closure capturing enclosing variables allocates`
	cb()
	cb2 := func() { helper(nil) } // captureless: func value is static, no alloc
	cb2()
	sink = n                // want `interface boxing of int`
	var any interface{} = s // want `interface boxing of \[\]int`
	_ = any
	sink = x // pointer-shaped: fits the interface word, no alloc
	//detcheck:hotalloc scratch is pooled, refill amortized over the run
	waived := make([]int, 0, 8)
	_ = waived
}

func helper(it *item) interface{} {
	b := []byte("xy")       // want `conversion string → \[\]byte allocates`
	_ = string(b)           // want `conversion \[\]byte → string allocates`
	_ = label + "x"         // want `string concatenation allocates`
	_ = label + "/" + label // want `string concatenation allocates`
	_ = "a" + "b"           // constant-folded: no alloc
	go tick()               // want `go statement allocates a goroutine`
	audit(7)                // cold callee: propagation stops at the boundary
	return 3                // want `interface boxing of int`
}

// audit is rare-path bookkeeping; its allocations are tolerated.
//
//cold:invariant-violation bookkeeping, fires at most once per run
func audit(n int) {
	sink = n
	_ = map[int]int{n: n}
}

func setup(e *Env) {
	e.At(1, tick)
	e.Go("w", worker)
	cold := map[int]int{} // setup is not hot and not a callback: no finding
	_ = cold
}

func tick() {
	_ = strconv.Itoa(9) // want `strconv.Itoa allocates`
}

func worker(p *Proc) {
	_ = []int{1, 2, 3} // proc bodies are simblock's concern, not hotalloc's
}
