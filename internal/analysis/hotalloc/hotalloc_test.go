package hotalloc_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer,
		"example.com/hot/internal/sim",
		"example.com/hot/cold",
	)
}
