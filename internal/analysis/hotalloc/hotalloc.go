// Package hotalloc enforces the zero-allocation contract on hot
// paths. The simulator's event dispatch and the middle tier's
// per-message stage path must not touch the garbage collector: the
// AllocsPerRun tests pin the end-to-end budgets, and this analyzer
// explains *why* a budget broke by naming the construct and the call
// chain that reaches it.
//
// Roots are functions annotated `//hot` plus every callback registered
// on the simulator event loop (Env.At / Env.After / Ticker.Subscribe).
// Reachability follows static calls, immediately invoked closures and
// the conservative interface fan-out, but deliberately NOT dynamic
// function-value edges: the dispatcher invoking `it.fn()` would
// otherwise make every address-taken func() in the module hot.
// Dynamic call sites are trust boundaries; the callbacks behind them
// are rooted explicitly at their registration sites.
//
// Flagged constructs: capturing closures, &composite / new, make,
// map and slice literals, append (may grow), interface boxing of
// non-pointer-shaped values, string concatenation and conversions,
// `go` statements, and calls into an allocating-stdlib denylist
// (fmt, errors.New, sort, strings helpers, ...).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap-allocating constructs (closures, make, append, boxing, string ops) " +
		"in functions reachable from //hot roots and simulator event callbacks",
	Run: run,
}

var includeTests bool

func init() {
	Analyzer.Flags.BoolVar(&includeTests, "tests", false,
		"also enforce the contract on functions declared in _test.go files")
}

// finding is one allocation site, pre-resolved to the package that
// must report it.
type finding struct {
	pkg   string
	pos   token.Pos
	msg   string
	order int
}

func run(pass *framework.Pass) error {
	if pass.Summaries == nil || pass.CallGraph == nil {
		// Unit-mode driver (go vet .cfg protocol): no whole-program
		// view, the standalone driver covers this check in CI.
		return nil
	}
	findings := pass.Summaries.Program("hotalloc", compute).([]finding)
	for _, f := range findings {
		if f.pkg != pass.PkgPath {
			continue
		}
		if pass.Suppressed("hotalloc", f.pos) {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

// compute runs the whole-program analysis once: reachability from the
// hot roots, then an allocation-site scan of every reached body.
func compute(cg *framework.CallGraph) interface{} {
	var roots []*framework.FuncNode
	for _, n := range cg.Roots(framework.RoleHot | framework.RoleTimerCallback) {
		if n.Cold {
			continue // declared off the steady-state path
		}
		if includeTests || !n.InTestFile {
			roots = append(roots, n)
		}
	}
	tree := cg.ReachableFrom(roots, func(e *framework.CallEdge) bool {
		if e.Kind == framework.EdgeDynamic || e.Callee.Cold {
			return false
		}
		return includeTests || !e.Callee.InTestFile
	})
	var out []finding
	for _, n := range cg.Nodes() {
		if _, ok := tree[n]; !ok || !n.Defined() {
			continue
		}
		if n.InTestFile && !includeTests {
			continue
		}
		chain := framework.ChainString(framework.ChainTo(tree, n))
		scanBody(n, func(pos token.Pos, desc string) {
			out = append(out, finding{
				pkg:   n.PkgPath,
				pos:   pos,
				msg:   fmt.Sprintf("%s on zero-alloc hot path (via %s)", desc, chain),
				order: len(out),
			})
		})
	}
	return out
}

// scanBody reports every allocating construct in one function body.
// Nested function literals are their own call-graph nodes and are not
// descended into; only their creation is judged here.
func scanBody(n *framework.FuncNode, report func(token.Pos, string)) {
	body := n.Body()
	if body == nil || n.Info == nil {
		return
	}
	info := n.Info
	resultSig := nodeSignature(n)

	// Pre-pass: literals in call position (immediately invoked, stack
	// allocated) and composite literals already reported under `&`.
	invoked := map[*ast.FuncLit]bool{}
	addrOf := map[*ast.CompositeLit]bool{}
	innerAdd := map[*ast.BinaryExpr]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				invoked[fl] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					addrOf[cl] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if !invoked[x] && captures(info, x) {
				report(x.Pos(), "closure capturing enclosing variables allocates")
			}
			return false // nested bodies are separate nodes
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), fmt.Sprintf("&%s literal allocates", typeDesc(info, cl)))
					return true
				}
			}
		case *ast.CompositeLit:
			if addrOf[x] {
				return true // reported at the & above
			}
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				report(x.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				report(x.Pos(), "map literal allocates")
			}
		case *ast.CallExpr:
			scanCall(info, x, report)
		case *ast.BinaryExpr:
			// a + "/" + b is two ADD nodes sharing a position; report
			// the chain once at the outermost one.
			if x.Op == token.ADD && isString(info.TypeOf(x)) && !isConstant(info, x) && !innerAdd[x] {
				report(x.Pos(), "string concatenation allocates")
				var spine func(e ast.Expr)
				spine = func(e ast.Expr) {
					if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.ADD {
						innerAdd[b] = true
						spine(b.X)
						spine(b.Y)
					}
				}
				spine(x.X)
				spine(x.Y)
			}
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		case *ast.AssignStmt:
			if x.Tok == token.ASSIGN {
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					checkBox(info, info.TypeOf(lhs), x.Rhs[i], report)
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				to := info.TypeOf(x.Type)
				for _, v := range x.Values {
					checkBox(info, to, v, report)
				}
			}
		case *ast.ReturnStmt:
			if resultSig != nil && len(x.Results) == resultSig.Results().Len() {
				for i, r := range x.Results {
					checkBox(info, resultSig.Results().At(i).Type(), r, report)
				}
			}
		}
		return true
	})
}

// nodeSignature returns the node's own signature for return-boxing
// checks, nil when unavailable.
func nodeSignature(n *framework.FuncNode) *types.Signature {
	switch {
	case n.Decl != nil:
		if obj, ok := n.Info.Defs[n.Decl.Name].(*types.Func); ok {
			if sig, ok := obj.Type().(*types.Signature); ok {
				return sig
			}
		}
	case n.Lit != nil:
		if sig, ok := n.Info.TypeOf(n.Lit).(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// scanCall classifies one call expression: builtins (make, new,
// append), conversions, denylisted stdlib calls, and boxing at
// interface-typed parameters.
func scanCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if convAllocates(from, to) {
				report(call.Pos(), fmt.Sprintf("conversion %s allocates",
					convDesc(from, to)))
			}
			if types.IsInterface(to.Underlying()) {
				checkBox(info, to, call.Args[0], report)
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				report(call.Pos(), "new() allocates")
			case "make":
				report(call.Pos(), "make() allocates")
			case "append":
				report(call.Pos(), "append may grow the backing array")
			}
			return
		}
	}

	// Named callee: stdlib denylist.
	if fn := staticCallee(info, fun); fn != nil && fn.Pkg() != nil {
		if desc, bad := allocStdlib(fn); bad {
			report(call.Pos(), desc)
		}
	}

	// Boxing at interface-typed parameters.
	sig, ok := info.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			checkBox(info, pt, arg, report)
		}
	}
}

// staticCallee resolves the *types.Func a direct call names, nil for
// dynamic calls.
func staticCallee(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// allocStdlib reports whether a standard-library callee is on the
// known-allocating denylist.
func allocStdlib(fn *types.Func) (string, bool) {
	pkg := fn.Pkg().Path()
	name := fn.Name()
	switch pkg {
	case "fmt":
		return "fmt." + name + " allocates (formats through interfaces)", true
	case "errors":
		if name == "New" || name == "Join" {
			return "errors." + name + " allocates", true
		}
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return "sort." + name + " allocates (interface or closure boxing)", true
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Split", "SplitN", "Fields", "Map",
			"ToUpper", "ToLower", "NewReplacer", "NewReader":
			return "strings." + name + " allocates", true
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote":
			return "strconv." + name + " allocates", true
		}
	case "bytes":
		switch name {
		case "NewBuffer", "NewBufferString", "Join", "Repeat":
			return "bytes." + name + " allocates", true
		}
	}
	return "", false
}

// checkBox reports interface boxing: assigning a concrete
// non-pointer-shaped value to an interface-typed destination.
func checkBox(info *types.Info, dst types.Type, src ast.Expr, report func(token.Pos, string)) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	st := info.TypeOf(src)
	if st == nil || types.IsInterface(st.Underlying()) {
		return
	}
	if tv, ok := info.Types[src]; ok && tv.IsNil() {
		return
	}
	if pointerShaped(st) {
		return
	}
	report(src.Pos(), fmt.Sprintf("interface boxing of %s allocates",
		types.TypeString(st, shortQual)))
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// captures reports whether the literal references any variable
// declared outside it (other than package-level variables, which are
// not captured).
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// convAllocates reports whether the conversion from → to copies data
// to the heap (string↔[]byte/[]rune in either direction).
func convAllocates(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	return (isString(from) && isByteOrRuneSlice(to)) ||
		(isByteOrRuneSlice(from) && isString(to))
}

func convDesc(from, to types.Type) string {
	return fmt.Sprintf("%s → %s", types.TypeString(from, shortQual), types.TypeString(to, shortQual))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func typeDesc(info *types.Info, cl *ast.CompositeLit) string {
	t := info.TypeOf(cl)
	if t == nil {
		return "composite"
	}
	s := types.TypeString(t, shortQual)
	if strings.HasPrefix(s, "struct{") {
		return "struct"
	}
	return s
}

func shortQual(p *types.Package) string { return p.Name() }
