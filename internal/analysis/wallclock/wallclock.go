// Package wallclock forbids wall-clock time in simulation code. The
// simulator runs entirely in virtual time (sim.Time); any call to
// time.Now, time.Sleep, timer construction, or an ambient time.Time
// value inside internal/ packages couples results to the host clock
// and breaks bit-for-bit replay. Host-facing spots (flag parsing of
// human durations, wall-time progress lines in cmd/) live outside
// internal/ or carry a //detcheck:wallclock annotation.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the wallclock check.
var Analyzer = &framework.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time (time.Now/Since/Sleep/After/NewTimer/NewTicker and " +
		"time.Time construction) in internal/ packages; simulation code must use virtual sim.Time",
	Run: run,
}

var forbidden, scope string

func init() {
	Analyzer.Flags.StringVar(&forbidden, "funcs",
		"Now,Since,Until,Sleep,After,AfterFunc,Tick,NewTimer,NewTicker",
		"comma-separated time package functions to forbid")
	Analyzer.Flags.StringVar(&scope, "scope", "internal",
		"only packages whose import path contains this segment are checked")
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.PkgPath, scope) {
		return nil
	}
	banned := map[string]bool{}
	for _, f := range strings.Split(forbidden, ",") {
		if f = strings.TrimSpace(f); f != "" {
			banned[f] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if !banned[n.Sel.Name] || !isTimePkg(pass, n.X) {
					return true
				}
				if pass.Suppressed("wallclock", n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"wall-clock time.%s in simulation code: use virtual time (sim.Time, Env.Now, Proc.Sleep)",
					n.Sel.Name)
			case *ast.CompositeLit:
				t := pass.TypeOf(n)
				if t == nil || !isTimeTime(t) {
					return true
				}
				if pass.Suppressed("wallclock", n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"time.Time construction in simulation code: use virtual time (sim.Time)")
			}
			return true
		})
	}
	return nil
}

// isTimePkg reports whether expr is a reference to the imported
// standard "time" package.
func isTimePkg(pass *framework.Pass, x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// isTimeTime reports whether t is time.Time.
func isTimeTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}
