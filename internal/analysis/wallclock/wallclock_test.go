package wallclock_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/wallclock"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer,
		"example.com/internal/clockbad",
		"example.com/cmd/clockok",
	)
}
