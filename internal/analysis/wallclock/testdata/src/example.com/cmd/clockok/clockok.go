// Package clockok is outside internal/: wall-clock use is host-facing
// (progress lines, wall-time reporting) and not flagged.
package clockok

import "time"

func ok() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
