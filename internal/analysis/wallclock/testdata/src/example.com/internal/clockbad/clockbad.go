// Package clockbad exercises every wallclock trigger.
package clockbad

import "time"

func bad() {
	_ = time.Now()                   // want `wall-clock time\.Now`
	time.Sleep(time.Millisecond)     // want `wall-clock time\.Sleep`
	<-time.After(time.Second)        // want `wall-clock time\.After`
	_ = time.NewTimer(time.Second)   // want `wall-clock time\.NewTimer`
	_ = time.NewTicker(time.Second)  // want `wall-clock time\.NewTicker`
	_ = time.Since(time.Time{})      // want `wall-clock time\.Since` `time\.Time construction`
	var f func() time.Time = time.Now // want `wall-clock time\.Now`
	_ = f
}

func allowedDuration() time.Duration {
	// Duration parsing/formatting is virtual-time friendly and allowed.
	d, _ := time.ParseDuration("3ms")
	return d
}

func annotated() time.Time {
	//detcheck:wallclock host-facing progress line
	return time.Now()
}
