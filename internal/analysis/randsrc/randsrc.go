// Package randsrc forbids importing the standard randomness packages
// outside internal/rng. Every stochastic choice in the simulator must
// flow from the seeded, splittable xoshiro source so whole experiments
// replay bit-for-bit from one root seed; math/rand has global state,
// math/rand/v2 auto-seeds, and crypto/rand is nondeterministic by
// design.
package randsrc

import (
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the randsrc check.
var Analyzer = &framework.Analyzer{
	Name: "randsrc",
	Doc: "forbid importing math/rand, math/rand/v2 and crypto/rand outside internal/rng; " +
		"all randomness must come from the seeded rng.Source",
	Run: run,
}

var packages, allow string

func init() {
	Analyzer.Flags.StringVar(&packages, "packages",
		"math/rand,math/rand/v2,crypto/rand",
		"comma-separated import paths to forbid")
	Analyzer.Flags.StringVar(&allow, "allow", "internal/rng",
		"comma-separated import-path suffixes allowed to import the forbidden packages")
}

func run(pass *framework.Pass) error {
	for _, suffix := range strings.Split(allow, ",") {
		if suffix = strings.TrimSpace(suffix); suffix != "" &&
			framework.PathHasSuffixSegments(pass.PkgPath, suffix) {
			return nil
		}
	}
	banned := map[string]bool{}
	for _, p := range strings.Split(packages, ",") {
		if p = strings.TrimSpace(p); p != "" {
			banned[p] = true
		}
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !banned[path] {
				continue
			}
			if pass.Suppressed("randsrc", imp.Pos()) {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s outside internal/rng: draw randomness from the seeded rng.Source "+
					"so runs replay bit-for-bit", path)
		}
	}
	return nil
}
