package randsrc_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/randsrc"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), randsrc.Analyzer,
		"example.com/internal/randbad",
		"example.com/internal/rng",
	)
}
