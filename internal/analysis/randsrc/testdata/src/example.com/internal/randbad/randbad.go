// Package randbad imports every forbidden randomness source.
package randbad

import (
	crand "crypto/rand"    // want `import of crypto/rand outside internal/rng`
	"math/rand"            // want `import of math/rand outside internal/rng`
	randv2 "math/rand/v2"  // want `import of math/rand/v2 outside internal/rng`
)

func use() {
	_ = rand.Int()
	_ = randv2.Int()
	_, _ = crand.Read(make([]byte, 8))
}
