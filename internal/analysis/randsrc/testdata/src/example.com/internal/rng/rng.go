// Package rng stands in for the one package allowed to touch the
// standard randomness sources (e.g. to cross-check distributions in
// its own tests). No diagnostics may fire here.
package rng

import "math/rand"

// Cross checks the seeded source against the stdlib generator.
func Cross(seed int64) int {
	return rand.New(rand.NewSource(seed)).Int()
}
