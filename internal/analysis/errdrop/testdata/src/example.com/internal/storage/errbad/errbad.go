// Firing fixture for errdrop: the package sits under internal/storage
// (in the default enforcement scope). Discards of may-fail calls
// report; discards of provably-nil-returning helpers (directly or one
// hop removed), handled errors, and waived lines do not.
package errbad

import "errors"

var errFull = errors.New("device full")

func mayFail(b bool) error {
	if b {
		return errFull
	}
	return nil
}

func alwaysNil() error { return nil }

func wrapsNil() error { return alwaysNil() }

func pair() (int, error) { return 1, errFull }

func ack() {
	mayFail(true)       // want `error result of errbad\.mayFail is silently discarded`
	_ = mayFail(false)  // want `error result of errbad\.mayFail is silently discarded`
	go mayFail(true)    // want `errbad\.mayFail \(goroutine\) is silently discarded`
	defer mayFail(true) // want `deferred errbad\.mayFail is silently discarded`
	alwaysNil()         // provably nil on every path: no finding
	wrapsNil()          // provably nil through one hop: no finding
	v, _ := pair()      // want `error result of errbad\.pair is silently discarded`
	_ = v
	//detcheck:errdrop best-effort stats flush, loss is acceptable here
	mayFail(true)
	if err := mayFail(true); err != nil {
		_ = err.Error()
	}
}
