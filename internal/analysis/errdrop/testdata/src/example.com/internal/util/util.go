// Non-firing fixture for errdrop: identical discards, but the
// package is outside the ack/durability scope.
package util

import "errors"

var errBoom = errors.New("boom")

func mayFail() error { return errBoom }

func sweep() {
	mayFail()
	_ = mayFail()
	defer mayFail()
}
