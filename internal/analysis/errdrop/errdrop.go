// Package errdrop forbids silently discarded errors on the ack and
// durability paths (middletier, storage, rdma). In the SmartDS split
// protocol an ACK to the client asserts that data reached its
// durability point; a dropped error between the two turns "durable"
// into "probably durable". The check is interprocedural in one
// direction: a discarded call is fine when the callee provably
// returns nil on every path (computed bottom-up over the call graph),
// so error-plumbed helpers that cannot currently fail do not force
// ceremony on their callers.
package errdrop

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the discarded-error check.
var Analyzer = &framework.Analyzer{
	Name: "errdrop",
	Doc: "forbid discarded error results (bare calls, _ =, go/defer) in ack/durability " +
		"packages unless the callee provably always returns nil",
	Run: run,
}

var paths string

func init() {
	Analyzer.Flags.StringVar(&paths, "paths",
		"internal/middletier,internal/storage,internal/rdma",
		"comma-separated path segments naming the packages under enforcement")
}

func inScope(pkgPath string) bool {
	for _, p := range strings.Split(paths, ",") {
		if p = strings.TrimSpace(p); p != "" && framework.PathHasSegments(pkgPath, p) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if pass.Summaries == nil || pass.CallGraph == nil {
		return nil // unit mode: the standalone driver covers this in CI
	}
	if !inScope(pass.PkgPath) {
		return nil
	}
	nf := pass.Summaries.Program("errdrop", computeNeverFails).(map[string]bool)
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		checkFile(pass, f, nf)
	}
	return nil
}

// computeNeverFails propagates "provably returns nil error on every
// path" bottom-up: a function qualifies when every return either
// writes literal nil into each error result or forwards a callee that
// itself qualifies. Unknown callees (no body in the package set) and
// recursion default to may-fail.
func computeNeverFails(cg *framework.CallGraph) interface{} {
	nf := map[string]bool{}
	for _, comp := range cg.SCCs() {
		for _, n := range comp {
			if !n.Defined() || n.Decl == nil {
				continue
			}
			nf[n.ID] = provesNilErrors(n, nf)
		}
	}
	return nf
}

func provesNilErrors(n *framework.FuncNode, nf map[string]bool) bool {
	info := n.Info
	sig := declSignature(n)
	if sig == nil {
		return false
	}
	errIdx := errorResultIndexes(sig)
	if len(errIdx) == 0 {
		return true // vacuous: no error to fail with
	}
	body := n.Body()
	if body == nil {
		return false
	}
	ok := true
	ast.Inspect(body, func(x ast.Node) bool {
		if !ok {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			switch {
			case len(x.Results) == 0:
				ok = false // bare return with named error result
			case len(x.Results) == sig.Results().Len():
				for _, i := range errIdx {
					if !exprProvesNil(info, x.Results[i], nf) {
						ok = false
					}
				}
			case len(x.Results) == 1:
				// return f() passthrough of a multi-value callee.
				if !exprProvesNil(info, x.Results[0], nf) {
					ok = false
				}
			default:
				ok = false
			}
		}
		return true
	})
	return ok
}

func exprProvesNil(info *types.Info, e ast.Expr, nf map[string]bool) bool {
	e = ast.Unparen(e)
	if tv, found := info.Types[e]; found && tv.IsNil() {
		return true
	}
	if call, isCall := e.(*ast.CallExpr); isCall {
		if fn := staticCallee(info, ast.Unparen(call.Fun)); fn != nil {
			return nf[fn.FullName()]
		}
	}
	return false
}

// checkFile reports the intraprocedural discard sites of one file.
func checkFile(pass *framework.Pass, f *ast.File, nf map[string]bool) {
	report := func(pos ast.Node, what string) {
		if pass.Suppressed("errdrop", pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(),
			"error result of %s is silently discarded on an ack/durability path; handle it or waive with //detcheck:errdrop",
			what)
	}
	ast.Inspect(f, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				checkCall(pass, call, nf, func(what string) { report(x, what) })
			}
		case *ast.DeferStmt:
			checkCall(pass, x.Call, nf, func(what string) { report(x, "deferred "+what) })
		case *ast.GoStmt:
			checkCall(pass, x.Call, nf, func(what string) { report(x, what+" (goroutine)") })
		case *ast.AssignStmt:
			checkAssign(pass, x, nf, report)
		}
		return true
	})
}

// checkCall fires when the call has an error result and the callee is
// not proven nil-returning.
func checkCall(pass *framework.Pass, call *ast.CallExpr, nf map[string]bool, report func(string)) {
	info := pass.TypesInfo
	t := info.TypeOf(call)
	if t == nil || !containsError(t) {
		return
	}
	fn := staticCallee(info, ast.Unparen(call.Fun))
	if fn != nil && nf[fn.FullName()] {
		return // provably always nil
	}
	report(callDisplay(fn))
}

// checkAssign fires when an error-typed value lands on a blank
// identifier.
func checkAssign(pass *framework.Pass, as *ast.AssignStmt, nf map[string]bool, report func(ast.Node, string)) {
	info := pass.TypesInfo
	// Multi-value call: v, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, isCall := as.Rhs[0].(*ast.CallExpr)
		if !isCall {
			return
		}
		tuple, isTuple := info.TypeOf(call).(*types.Tuple)
		if !isTuple {
			return
		}
		fn := staticCallee(info, ast.Unparen(call.Fun))
		for i, lhs := range as.Lhs {
			if i >= tuple.Len() || !isBlank(lhs) || !isErrorType(tuple.At(i).Type()) {
				continue
			}
			if fn != nil && nf[fn.FullName()] {
				continue
			}
			report(lhs, callDisplay(fn))
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rhs := as.Rhs[i]
		t := info.TypeOf(rhs)
		if t == nil || !containsError(t) {
			continue
		}
		if call, isCall := rhs.(*ast.CallExpr); isCall {
			fn := staticCallee(info, ast.Unparen(call.Fun))
			if fn != nil && nf[fn.FullName()] {
				continue
			}
			report(lhs, callDisplay(fn))
			continue
		}
		report(lhs, "an error value")
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// containsError reports whether the type (a single type or a result
// tuple) has an error component.
func containsError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isErrorType recognizes the universe error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

func errorResultIndexes(sig *types.Signature) []int {
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

func declSignature(n *framework.FuncNode) *types.Signature {
	if n.Decl == nil || n.Info == nil {
		return nil
	}
	obj, _ := n.Info.Defs[n.Decl.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// callDisplay renders a callee for diagnostics.
func callDisplay(fn *types.Func) string {
	if fn == nil {
		return "a dynamic call"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s",
			types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() }),
			fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// staticCallee resolves the *types.Func a direct call names, nil for
// dynamic calls.
func staticCallee(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
