package errdrop_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer,
		"example.com/internal/storage/errbad",
		"example.com/internal/util",
	)
}
