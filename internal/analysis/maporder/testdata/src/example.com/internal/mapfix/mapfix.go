// Package mapfix exercises the maporder triggers and every accepted
// escape: sorted-after append, commutative effects, and the
// //detcheck:ordered annotation.
package mapfix

import (
	"fmt"
	"sort"
	"strings"
)

// appendUnsorted builds a slice in map order and returns it: flagged.
func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside map iteration builds a slice in map order`
	}
	return out
}

// appendThenSort is the canonical accepted idiom.
func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// appendToField emits into a struct field in map order: flagged.
type holder struct{ names []string }

func (h *holder) appendToField(m map[string]int) {
	for k := range m {
		h.names = append(h.names, k) // want `append inside map iteration builds a slice in map order`
	}
}

// selectWinner picks a map-order-dependent winner on ties: flagged.
func selectWinner(m map[string]float64) string {
	best := ""
	bestV := -1.0
	for k, v := range m {
		if v > bestV {
			best, bestV = k, v // want `assignment selects a value that depends on map iteration order`
		}
	}
	return best
}

// annotated carries a justification and is accepted.
func annotated(m map[string]float64) string {
	worst := ""
	for k := range m { //detcheck:ordered any key is acceptable here
		worst = k
	}
	return worst
}

// floatSum reorders rounding error: flagged.
func floatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation over map iteration reorders rounding error`
	}
	return total
}

// intSum is exact and commutative: accepted.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// countOnly never references the iteration variables: accepted.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// deleteMatching mutates the ranged map only: accepted (delete is
// per-key and commutative).
func deleteMatching(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// invert writes into another map: accepted (per-key, last-write-wins).
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// printDirect emits formatted rows in map order: flagged.
func printDirect(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want `call to ordered sink Fprintf inside map iteration`
	}
}

// sinkMethod calls a known ordered sink with the loop key: flagged.
type table struct{ rows [][]string }

func (t *table) AddRow(cells ...interface{}) { t.rows = append(t.rows, nil) }

func sinkMethod(m map[string]int, t *table) {
	for k := range m {
		t.AddRow(k) // want `call to ordered sink AddRow inside map iteration`
	}
}

// The telemetry-registry shapes: a label set built by collecting map
// keys then sorting (accepted — the canonical MakeLabels idiom), and a
// naive exporter writing OpenMetrics lines in raw map order (flagged —
// exporters must iterate a sorted metric list).
type tLabel struct{ k, v string }

func makeLabels(m map[string]string) []tLabel {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]tLabel, 0, len(keys))
	for _, k := range keys {
		out = append(out, tLabel{k: k, v: m[k]})
	}
	return out
}

func exportUnsorted(finals map[string]float64, b *strings.Builder) {
	for name, v := range finals {
		fmt.Fprintf(b, "%s %g\n", name, v) // want `call to ordered sink Fprintf inside map iteration`
	}
}
