package maporder_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/maporder"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer,
		"example.com/internal/mapfix",
	)
}
