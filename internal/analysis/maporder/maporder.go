// Package maporder flags `for range` loops over maps whose bodies
// leak Go's randomized iteration order into ordered output: appends to
// slices that are later iterated, writes to tables/trace/printers, or
// selection/reduction into variables outside the loop. Any of these
// makes report text or trace streams depend on the per-process map
// seed, breaking byte-for-byte replay.
//
// A loop is accepted when:
//   - the emitted slice is sorted afterwards in the same function
//     (the append-then-sort idiom, e.g. sort.Strings / sort.Slice /
//     slices.Sort on the appended variable);
//   - the body's only map-order-dependent effects are commutative and
//     exact (integer accumulation, writes into another map, delete);
//   - the loop carries a `//detcheck:ordered` justification comment.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body emits to ordered sinks (slice appends, tables, " +
		"trace, printers) or selects into outer variables without sorting keys first",
	WaiverNames: []string{"ordered"},
	Run:         run,
}

var sinkMethods string

func init() {
	Analyzer.Flags.StringVar(&sinkMethods, "sinks",
		"AddRow,AddNote,Emit,Record,Begin,End,Counter,Trigger,Go,At,After,Schedule,"+
			"Fprintf,Fprint,Fprintln,Printf,Print,Println,Sprintf,"+
			"WriteString,Write,WriteByte,WriteRune",
		"comma-separated method/function names treated as ordered sinks")
}

func run(pass *framework.Pass) error {
	sinks := map[string]bool{}
	for _, s := range strings.Split(sinkMethods, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sinks[s] = true
		}
	}
	for _, f := range pass.Files {
		// Walk function by function so the append-then-sort idiom can
		// inspect statements that follow the loop.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, sinks, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc inspects one function body for offending map ranges. It
// recurses into nested loops but not nested function literals (they
// get their own walk).
func checkFunc(pass *framework.Pass, sinks map[string]bool, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Suppressed("ordered", rs.Pos()) {
			return true
		}
		checkMapRange(pass, sinks, body, rs)
		return true
	})
}

type loopScope struct {
	pass *framework.Pass
	rs   *ast.RangeStmt
	vars map[types.Object]bool // the key/value iteration variables
}

// checkMapRange reports each order-dependent effect in one map range.
func checkMapRange(pass *framework.Pass, sinks map[string]bool, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	sc := &loopScope{pass: pass, rs: rs, vars: map[types.Object]bool{}}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				sc.vars[obj] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			sc.checkAssign(sinks, funcBody, n)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				sc.checkCall(sinks, call)
			}
		case *ast.SendStmt:
			if sc.referencesLoopVar(n.Value) || sc.referencesLoopVar(n.Chan) {
				sc.report(n.Pos(), "channel send depends on map iteration order")
			}
		}
		return true
	})
}

func (sc *loopScope) report(pos token.Pos, what string) {
	if sc.pass.Suppressed("ordered", pos) {
		return
	}
	sc.pass.Reportf(pos,
		"%s: iterate sorted keys instead, sort the result before emitting, "+
			"or annotate the loop with //detcheck:ordered <reason>", what)
}

// checkAssign flags appends and selections into variables that outlive
// the loop. At most one diagnostic is reported per assignment
// statement (a multi-assign like `best, bestAt = k, v` is one finding).
func (sc *loopScope) checkAssign(sinks map[string]bool, funcBody *ast.BlockStmt, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		// Writes into a map are per-key and commutative: order-safe.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if t := sc.pass.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					continue
				}
			}
		}
		if !sc.outlivesLoop(lhs) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(sc.pass, call, "append") {
			if !sc.referencesLoopVar(call) {
				continue
			}
			if sortedAfter(sc.pass, funcBody, sc.rs, lhs) {
				continue
			}
			sc.report(as.Pos(), "append inside map iteration builds a slice in map order")
			return
		}
		if !sc.referencesLoopVar(rhs) && !(as.Tok != token.ASSIGN && sc.referencesLoopVar(lhs)) {
			continue
		}
		// Compound integer accumulation (n += count) is exact and
		// commutative; float accumulation reorders rounding error and
		// selection (plain =) picks a map-order-dependent winner.
		if as.Tok != token.ASSIGN && isIntegerType(sc.pass.TypeOf(lhs)) {
			continue
		}
		if as.Tok == token.ASSIGN {
			sc.report(as.Pos(), "assignment selects a value that depends on map iteration order")
		} else {
			sc.report(as.Pos(), "floating-point accumulation over map iteration reorders rounding error")
		}
		return
	}
}

// checkCall flags sink calls whose arguments carry the iteration
// variables into ordered output.
func (sc *loopScope) checkCall(sinks map[string]bool, call *ast.CallExpr) {
	name := calleeName(call)
	if name == "" || !sinks[name] {
		return
	}
	if !sc.referencesLoopVar(call) {
		return
	}
	sc.report(call.Pos(), "call to ordered sink "+name+" inside map iteration")
}

// outlivesLoop reports whether the assignment target survives the
// range statement: a selector/index (field, element) always does; a
// plain identifier does when it was declared outside the loop.
func (sc *loopScope) outlivesLoop(lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := sc.pass.TypesInfo.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		return obj.Pos() < sc.rs.Pos() || obj.Pos() > sc.rs.End()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// referencesLoopVar reports whether the expression mentions the range
// key or value variable.
func (sc *loopScope) referencesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := sc.pass.TypesInfo.ObjectOf(id); obj != nil && sc.vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether the appended-to variable is passed to a
// sort.* or slices.Sort* call after the loop in the same function — the
// append-then-sort idiom that restores a canonical order.
func sortedAfter(pass *framework.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		p := pn.Imported().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if aid, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(aid) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(pass *framework.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isIntegerType reports whether t is an integer kind (exact,
// commutative accumulation).
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
