// Package floatbad exercises the floatacc triggers.
package floatbad

type stats struct{ min, max float64 }

func bad(a, b float64, s stats) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != 0 { // want `floating-point != comparison`
		return false
	}
	return s.min == s.max // want `floating-point == comparison`
}

func ordered(a, b float64) bool {
	// Ordering comparisons are fine: the event calendar is built on them.
	return a < b || a >= b
}

func ints(a, b int) bool {
	return a == b
}

func annotated(weightSum float64) bool {
	//detcheck:floateq exact zero is a sentinel reset below
	return weightSum == 0
}

func float32s(x, y float32) bool {
	return x != y // want `floating-point != comparison`
}
