// Package floatacc flags `==` and `!=` between floating-point
// expressions in internal/ packages. The bandwidth water-filling,
// histogram quantile and virtual-clock code all manipulate float64;
// exact equality there is either a latent bug (accumulated rounding
// makes it flip) or an intentional exact-value check that deserves a
// visible `//detcheck:floateq` justification. Ordering comparisons
// (<, <=, >, >=) are allowed — the simulator's event calendar is
// built on them.
package floatacc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the floatacc check.
var Analyzer = &framework.Analyzer{
	Name: "floatacc",
	Doc: "flag ==/!= between floating-point expressions in internal/ packages; " +
		"use an epsilon, integer units, or annotate intentional exact checks with //detcheck:floateq",
	WaiverNames: []string{"floateq"},
	Run:         run,
}

var (
	scope      string
	checkTests bool
)

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", "internal",
		"only packages whose import path contains this segment are checked")
	Analyzer.Flags.BoolVar(&checkTests, "tests", false,
		"also check _test.go files (off by default: determinism tests assert "+
			"bit-identical replay, so exact float comparison there is the point)")
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.PkgPath, scope) {
		return nil
	}
	for _, f := range pass.Files {
		if !checkTests && strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if pass.Suppressed("floateq", be.Pos()) {
				return true
			}
			pass.Reportf(be.Pos(),
				"floating-point %s comparison: use an epsilon or integer units, "+
					"or annotate with //detcheck:floateq if exactness is intended", be.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a float kind
// (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
