package floatacc_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/floatacc"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatacc.Analyzer,
		"example.com/internal/floatbad",
	)
}
