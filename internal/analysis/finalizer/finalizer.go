// Package finalizer forbids garbage-collector and scheduler
// manipulation (runtime.SetFinalizer, runtime.GC, runtime.Gosched,
// runtime.GOMAXPROCS, debug.SetGCPercent, ...) in internal/ packages.
// Finalizers run on the collector's clock and forced collections or
// scheduler yields perturb timing in host time — all of it invisible
// to the virtual clock, none of it replayable. The simulator core
// (internal/sim) is exempt: pinning GOMAXPROCS for the run harness is
// its prerogative.
package finalizer

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/disagg/smartds/internal/analysis/framework"
)

// Analyzer is the GC/scheduler-manipulation check.
var Analyzer = &framework.Analyzer{
	Name: "finalizer",
	Doc: "forbid GC and scheduler manipulation (runtime.SetFinalizer/GC/Gosched/GOMAXPROCS, " +
		"debug.SetGCPercent/FreeOSMemory/...) in internal/ packages outside the sim core",
	Run: run,
}

var scope, exempt string

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", "internal",
		"only packages whose import path contains this segment are checked")
	Analyzer.Flags.StringVar(&exempt, "exempt", framework.SimPkgSuffix,
		"comma-separated package path suffixes exempt from the check")
}

// banned maps package path → function names whose call is forbidden.
var banned = map[string]map[string]bool{
	"runtime": {
		"SetFinalizer": true, "GC": true, "Gosched": true,
		"GOMAXPROCS": true, "LockOSThread": true, "UnlockOSThread": true,
	},
	"runtime/debug": {
		"SetGCPercent": true, "SetMemoryLimit": true,
		"FreeOSMemory": true, "SetMaxThreads": true,
	},
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.PkgPath, scope) {
		return nil
	}
	for _, s := range strings.Split(exempt, ",") {
		if s = strings.TrimSpace(s); s != "" && framework.PathHasSuffixSegments(pass.PkgPath, s) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			pkg := pn.Imported().Path()
			if !banned[pkg][sel.Sel.Name] {
				return true
			}
			if pass.Suppressed("finalizer", sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s manipulates the collector/scheduler in host time; not replayable, keep it out of simulation code",
				pkg, sel.Sel.Name)
			return true
		})
	}
	return nil
}
