package finalizer_test

import (
	"testing"

	"github.com/disagg/smartds/internal/analysis/analysistest"
	"github.com/disagg/smartds/internal/analysis/finalizer"
)

func TestFinalizer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), finalizer.Analyzer,
		"example.com/internal/gcfiddle",
		"example.com/x/internal/sim",
	)
}
