// Non-firing fixture for finalizer: the sim core is exempt — pinning
// GOMAXPROCS for the run harness is its prerogative.
package sim

import "runtime"

func pin() { runtime.GOMAXPROCS(1) }
