// Firing fixture for finalizer: GC and scheduler manipulation in a
// plain internal/ package. Informational reads (NumCPU) and waived
// lines do not report.
package gcfiddle

import (
	"runtime"
	"runtime/debug"
)

func tune() {
	runtime.GC()                   // want `runtime\.GC manipulates`
	runtime.Gosched()              // want `runtime\.Gosched manipulates`
	runtime.GOMAXPROCS(1)          // want `runtime\.GOMAXPROCS manipulates`
	debug.SetGCPercent(-1)         // want `runtime/debug\.SetGCPercent manipulates`
	runtime.SetFinalizer(nil, nil) // want `runtime\.SetFinalizer manipulates`
	//detcheck:finalizer startup pinning before the measured region
	runtime.LockOSThread()
	_ = runtime.NumCPU()
}
