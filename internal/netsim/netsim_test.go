package netsim

import (
	"math"
	"testing"

	"github.com/disagg/smartds/internal/sim"
)

func newPair(e *sim.Env, rate float64) (*Fabric, *Port, *Port) {
	f := NewFabric(e, Config{WireLatency: 1e-6, MTU: 4096, PerPktOverhead: 0})
	a := f.NewPort("a", rate)
	b := f.NewPort("b", rate)
	return f, a, b
}

func TestBasicDelivery(t *testing.T) {
	e := sim.NewEnv()
	_, a, b := newPair(e, 1e9)
	var gotAt sim.Time
	var got *Message
	b.SetHandler(func(m *Message) { got = m; gotAt = e.Now() })
	e.Go("tx", func(p *sim.Proc) {
		p.Wait(a.Send(&Message{Dst: "b", WireBytes: 1e6, Payload: "hello"}))
	})
	e.Run(0)
	if got == nil || got.Payload != "hello" || got.Src != "a" {
		t.Fatalf("delivery failed: %+v", got)
	}
	// 1 MB at 1 GB/s = 1 ms serialization + 1 us wire.
	want := 1e-3 + 1e-6
	if math.Abs(gotAt-want) > 1e-8 {
		t.Fatalf("delivered at %g, want %g", gotAt, want)
	}
}

func TestSendEventFiresAtTxComplete(t *testing.T) {
	e := sim.NewEnv()
	_, a, _ := newPair(e, 1e9)
	var sentAt sim.Time
	e.Go("tx", func(p *sim.Proc) {
		p.Wait(a.Send(&Message{Dst: "b", WireBytes: 1e6}))
		sentAt = p.Now()
	})
	e.Run(0)
	if math.Abs(sentAt-1e-3) > 1e-8 {
		t.Fatalf("TX completed at %g, want 1ms", sentAt)
	}
}

func TestUnknownDestinationVanishes(t *testing.T) {
	e := sim.NewEnv()
	_, a, _ := newPair(e, 1e9)
	done := false
	e.Go("tx", func(p *sim.Proc) {
		p.Wait(a.Send(&Message{Dst: "nowhere", WireBytes: 100}))
		done = true
	})
	e.Run(0)
	if !done {
		t.Fatal("send to unknown destination blocked forever")
	}
}

func TestNoHandlerDrops(t *testing.T) {
	e := sim.NewEnv()
	_, a, _ := newPair(e, 1e9)
	e.Go("tx", func(p *sim.Proc) {
		p.Wait(a.Send(&Message{Dst: "b", WireBytes: 100}))
	})
	e.Run(0) // must not panic
}

func TestLossInjection(t *testing.T) {
	e := sim.NewEnv()
	f, a, b := newPair(e, 1e9)
	delivered := 0
	b.SetHandler(func(*Message) { delivered++ })
	n := 0
	f.SetLossFn(func(*Message) bool {
		n++
		return n%2 == 1 // drop every other message
	})
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(a.Send(&Message{Dst: "b", WireBytes: 100}))
		}
	})
	e.Run(0)
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5", delivered)
	}
	f.SetLossFn(nil)
}

func TestReceiverSharingSlowsDelivery(t *testing.T) {
	// Two senders into one receiver: RX is the bottleneck, so both
	// complete at ~2x single-flow time (incast).
	e := sim.NewEnv()
	f := NewFabric(e, Config{WireLatency: 1e-9, MTU: 4096, PerPktOverhead: 0})
	a := f.NewPort("a", 1e9)
	b := f.NewPort("b", 1e9)
	c := f.NewPort("c", 1e9)
	arrived := []sim.Time{}
	c.SetHandler(func(*Message) { arrived = append(arrived, e.Now()) })
	for _, p := range []*Port{a, b} {
		p := p
		e.Go("tx", func(proc *sim.Proc) {
			proc.Wait(p.Send(&Message{Dst: "c", WireBytes: 1e6}))
		})
	}
	e.Run(0)
	if len(arrived) != 2 {
		t.Fatalf("arrived %d messages", len(arrived))
	}
	for _, at := range arrived {
		if at < 1.9e-3 {
			t.Fatalf("incast delivery too fast: %g (RX not shared?)", at)
		}
	}
}

func TestWireSize(t *testing.T) {
	e := sim.NewEnv()
	f := NewFabric(e, Config{WireLatency: 1e-6, MTU: 1000, PerPktOverhead: 50})
	cases := []struct{ in, want float64 }{
		{0, 50},      // minimum one packet
		{1, 51},      // 1 byte, 1 packet
		{1000, 1050}, // exactly one MTU
		{1001, 1101}, // two packets
		{4096, 4096 + 5*50},
	}
	for _, c := range cases {
		if got := f.WireSize(c.in); got != c.want {
			t.Errorf("WireSize(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	if f.WireSize(-5) != 50 {
		t.Error("negative payload should clamp to empty packet")
	}
}

func TestDuplicateAddrPanics(t *testing.T) {
	e := sim.NewEnv()
	f := NewFabric(e, DefaultConfig())
	f.NewPort("x", 1e9)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate address did not panic")
		}
	}()
	f.NewPort("x", 1e9)
}

func TestPortStats(t *testing.T) {
	e := sim.NewEnv()
	_, a, b := newPair(e, 1e9)
	b.SetHandler(func(*Message) {})
	e.Go("tx", func(p *sim.Proc) {
		p.Wait(a.Send(&Message{Dst: "b", WireBytes: 5000}))
	})
	e.Run(0)
	if got := a.TxStats().Work; got != 5000 {
		t.Fatalf("tx work = %g", got)
	}
	if got := b.RxStats().Work; got != 5000 {
		t.Fatalf("rx work = %g", got)
	}
	if a.Rate() != 1e9 {
		t.Fatalf("rate = %g", a.Rate())
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := sim.NewEnv()
	f := NewFabric(e, Config{})
	cfg := f.Config()
	if cfg.WireLatency != 1e-6 || cfg.MTU != 4096 || cfg.PerPktOverhead != 0 {
		// PerPktOverhead 0 is respected (not defaulted) only when
		// explicitly negative values are not given; zero means zero.
		t.Logf("cfg = %+v", cfg)
	}
	if cfg.MTU != 4096 {
		t.Fatalf("MTU default = %g", cfg.MTU)
	}
}

func TestManyToManyThroughput(t *testing.T) {
	// 4 senders to 4 distinct receivers: all transfer at full rate.
	e := sim.NewEnv()
	f := NewFabric(e, Config{WireLatency: 1e-9, MTU: 4096, PerPktOverhead: 0})
	var finish []sim.Time
	for i := 0; i < 4; i++ {
		src := f.NewPort(Addr(string(rune('s'+i))), 1e9)
		dst := f.NewPort(Addr(string(rune('d'+i))), 1e9)
		dst.SetHandler(func(*Message) { finish = append(finish, e.Now()) })
		dstAddr := dst.Addr()
		e.Go("tx", func(p *sim.Proc) {
			p.Wait(src.Send(&Message{Dst: dstAddr, WireBytes: 1e6}))
		})
	}
	e.Run(0)
	if len(finish) != 4 {
		t.Fatalf("deliveries: %d", len(finish))
	}
	for _, at := range finish {
		if at > 1.1e-3 {
			t.Fatalf("parallel flows interfered: %g", at)
		}
	}
}
