package netsim

import (
	"testing"
	"testing/quick"

	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
)

// TestFIFOPerPathProperty: whatever the message sizes and send times,
// messages between one (src, dst) pair are delivered in send order —
// a wire path cannot reorder, even though the fluid bandwidth model
// would otherwise let small transfers overtake large ones.
func TestFIFOPerPathProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		e := sim.NewEnv()
		fab := NewFabric(e, Config{WireLatency: 1e-6, MTU: 4096, PerPktOverhead: 0})
		a := fab.NewPort("a", 1e9)
		b := fab.NewPort("b", 1e9)
		var got []int
		b.SetHandler(func(m *Message) { got = append(got, m.Payload.(int)) })

		const n = 30
		e.Go("tx", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				// Wildly varying sizes force PS completion inversions.
				size := float64(64 + r.Intn(1<<20))
				a.Send(&Message{Dst: "b", WireBytes: size, Payload: i})
				if r.Float64() < 0.5 {
					p.Sleep(r.Exp(50e-6))
				}
			}
		})
		e.Run(0)
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOIndependentPaths: ordering is per path — messages to
// different destinations may interleave freely, and a slow path must
// not block a fast one.
func TestFIFOIndependentPaths(t *testing.T) {
	e := sim.NewEnv()
	fab := NewFabric(e, Config{WireLatency: 1e-9, MTU: 4096, PerPktOverhead: 0})
	a := fab.NewPort("a", 1e9)
	slow := fab.NewPort("slow", 1e6) // 1000x slower receiver
	fast := fab.NewPort("fast", 1e9)
	var fastAt sim.Time
	fast.SetHandler(func(*Message) { fastAt = e.Now() })
	slow.SetHandler(func(*Message) {})

	e.Go("tx", func(p *sim.Proc) {
		a.Send(&Message{Dst: "slow", WireBytes: 1e6}) // ~1s on the slow port
		a.Send(&Message{Dst: "fast", WireBytes: 1e6}) // ~2ms shared on a.tx
	})
	e.Run(0)
	if fastAt == 0 || fastAt > 0.1 {
		t.Fatalf("fast path blocked behind slow path: delivered at %g", fastAt)
	}
}

// TestLossDoesNotStallFIFO: a dropped message must not wedge the
// resequencer for later messages on the same path.
func TestLossDoesNotStallFIFO(t *testing.T) {
	e := sim.NewEnv()
	fab := NewFabric(e, Config{WireLatency: 1e-6, MTU: 4096, PerPktOverhead: 0})
	a := fab.NewPort("a", 1e9)
	b := fab.NewPort("b", 1e9)
	var got []int
	b.SetHandler(func(m *Message) { got = append(got, m.Payload.(int)) })
	drop := true
	fab.SetLossFn(func(m *Message) bool {
		if m.Payload.(int) == 0 && drop {
			drop = false
			return true
		}
		return false
	})
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			a.Send(&Message{Dst: "b", WireBytes: 100, Payload: i})
		}
	})
	e.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("loss stalled the path: got %v", got)
	}
}
