// Package netsim models the datacenter fabric connecting compute
// servers, the middle-tier server, and storage servers: full-duplex
// ports with processor-shared bandwidth, wire/switch latency, framing
// overhead per packet, and an optional loss injector for transport
// testing.
//
// The fabric is message-granular: each message charges the sender's TX
// link and the receiver's RX link concurrently (flow-level fluid
// approximation) and arrives one wire latency after serialization.
package netsim

import (
	"fmt"
	"math"

	"github.com/disagg/smartds/internal/sim"
)

// Addr identifies a port on the fabric.
type Addr string

// Message is one fabric-level datagram. Payload is opaque to the
// fabric; the transport layer above defines it.
type Message struct {
	Src, Dst  Addr
	WireBytes float64
	Payload   interface{}
}

// Config sets fabric-wide parameters.
type Config struct {
	// WireLatency is propagation + switching delay, one way.
	WireLatency float64
	// MTU is the maximum payload carried per packet.
	MTU float64
	// PerPktOverhead is framing overhead per packet (Ethernet + IP +
	// UDP + RoCE BTH + ICRC + preamble/IFG).
	PerPktOverhead float64
}

// DefaultConfig returns datacenter-typical parameters (the paper's
// testbed uses 100 GbE RoCE with ~2 µs fabric RTT contribution).
func DefaultConfig() Config {
	return Config{
		WireLatency:    1e-6,
		MTU:            4096,
		PerPktOverhead: 80,
	}
}

// Fabric is the switch plus cabling. It is non-blocking internally:
// only port links constrain bandwidth.
type Fabric struct {
	env   *sim.Env
	cfg   Config
	ports map[Addr]*Port
	// DropFn, when set, is consulted per message; returning true drops
	// the message after TX serialization (loss injection for transport
	// tests). Nil means a lossless fabric.
	dropFn func(*Message) bool
	// pairs resequences deliveries per (src, dst): a wire path is FIFO,
	// but the fluid bandwidth model can let a small message's transfer
	// finish before an earlier large one — physically impossible on one
	// path — so completed transfers are released in send order.
	pairs map[pairKey]*pairState
	// freeXfers pools in-flight transfer nodes.
	freeXfers []*xfer
}

type pairKey struct{ src, dst Addr }

type pairState struct {
	nextSend    uint64
	nextDeliver uint64
	// ready buffers out-of-order completions; it is allocated lazily
	// because the in-order case (by far the common one under fluid
	// bandwidth sharing) never touches it.
	ready map[uint64]*Message
}

// xfer tracks one message crossing the fabric: TX and RX serialization
// completing (in either order), then one wire latency, then in-order
// release to the destination handler. Nodes are pooled and their two
// callbacks are bound once per node, so a steady-state Send allocates
// nothing beyond the PSLink completion events.
type xfer struct {
	f         *Fabric
	dst       *Port
	st        *pairState
	m         *Message
	seq       uint64
	remaining int
	decFn     func(interface{})
	postFn    func()
}

// getXfer takes a transfer node from the pool.
func (f *Fabric) getXfer() *xfer {
	if n := len(f.freeXfers); n > 0 {
		x := f.freeXfers[n-1]
		f.freeXfers[n-1] = nil
		f.freeXfers = f.freeXfers[:n-1]
		return x
	}
	x := &xfer{f: f}
	x.decFn = func(interface{}) {
		x.remaining--
		if x.remaining == 0 {
			x.f.env.After(x.f.cfg.WireLatency, x.postFn)
		}
	}
	x.postFn = x.post
	return x
}

// post runs one wire latency after both serializations finish: it hands
// the message to the destination in send order. The node is released
// before the handler runs, since handlers routinely Send in response.
func (x *xfer) post() {
	f, dst, st, m, seq := x.f, x.dst, x.st, x.m, x.seq
	x.dst = nil
	x.st = nil
	x.m = nil
	f.freeXfers = append(f.freeXfers, x)
	if seq != st.nextDeliver {
		// Out of order: a message posted earlier on this path is still in
		// flight. Park until it lands.
		if st.ready == nil {
			st.ready = make(map[uint64]*Message)
		}
		st.ready[seq] = m
		return
	}
	st.nextDeliver++
	if dst.handler != nil {
		dst.handler(m)
	}
	for len(st.ready) > 0 {
		next, ok := st.ready[st.nextDeliver]
		if !ok {
			return
		}
		delete(st.ready, st.nextDeliver)
		st.nextDeliver++
		if dst.handler != nil {
			dst.handler(next)
		}
	}
}

// NewFabric creates an empty fabric.
func NewFabric(env *sim.Env, cfg Config) *Fabric {
	def := DefaultConfig()
	if cfg.WireLatency <= 0 {
		cfg.WireLatency = def.WireLatency
	}
	if cfg.MTU <= 0 {
		cfg.MTU = def.MTU
	}
	if cfg.PerPktOverhead < 0 {
		cfg.PerPktOverhead = def.PerPktOverhead
	}
	return &Fabric{env: env, cfg: cfg, ports: make(map[Addr]*Port), pairs: make(map[pairKey]*pairState)}
}

// Config returns the effective configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetLossFn installs a message-drop predicate (nil restores lossless).
func (f *Fabric) SetLossFn(fn func(*Message) bool) { f.dropFn = fn }

// LossFn returns the installed drop predicate (nil when lossless), so
// an injector can chain a previously installed one instead of silently
// replacing it.
func (f *Fabric) LossFn() func(*Message) bool { return f.dropFn }

// Port returns the port bound to addr, or nil — fault injection and
// tests reach ports by address.
func (f *Fabric) Port(addr Addr) *Port { return f.ports[addr] }

// WireSize returns the on-wire bytes for a payload of n bytes,
// accounting for per-packet framing at the fabric MTU.
func (f *Fabric) WireSize(n float64) float64 {
	if n < 0 {
		n = 0
	}
	pkts := math.Ceil(n / f.cfg.MTU)
	if pkts < 1 {
		pkts = 1
	}
	return n + pkts*f.cfg.PerPktOverhead
}

// Port is one network interface attached to the fabric.
type Port struct {
	fabric  *Fabric
	addr    Addr
	tx, rx  *sim.PSLink
	handler func(*Message)
}

// NewPort attaches a port with the given per-direction rate in
// bytes/second. Addresses must be unique.
func (f *Fabric) NewPort(addr Addr, bytesPerSec float64) *Port {
	if _, dup := f.ports[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate port address %q", addr))
	}
	p := &Port{
		fabric: f,
		addr:   addr,
		tx:     f.env.NewPSLink(string(addr)+".tx", bytesPerSec, 0),
		rx:     f.env.NewPSLink(string(addr)+".rx", bytesPerSec, 0),
	}
	f.ports[addr] = p
	return p
}

// Addr returns the port's fabric address.
func (p *Port) Addr() Addr { return p.addr }

// Fabric returns the fabric the port is attached to.
func (p *Port) Fabric() *Fabric { return p.fabric }

// SetHandler installs the receive callback. Messages arriving before a
// handler is installed are dropped (as real NICs drop to unbound
// queues).
func (p *Port) SetHandler(fn func(*Message)) { p.handler = fn }

// TxStats and RxStats expose the underlying link counters for
// bandwidth reporting.
func (p *Port) TxStats() sim.LinkStats { return p.tx.Snapshot() }
func (p *Port) RxStats() sim.LinkStats { return p.rx.Snapshot() }

// Rate returns the port's per-direction capacity in bytes/second.
func (p *Port) Rate() float64 { return p.tx.Rate() }

// WireTime returns the unloaded time for n on-wire bytes to cross this
// port and the fabric: serialization at the port's current rate plus
// one wire latency. Anything a real transfer takes beyond this is
// contention — queueing behind other transfers, retransmits, ack
// turnaround — which is the wait share of a send span's duration.
func (p *Port) WireTime(n float64) float64 {
	if n < 0 {
		n = 0
	}
	r := p.tx.Rate()
	if r <= 0 {
		return p.fabric.cfg.WireLatency
	}
	return n/r + p.fabric.cfg.WireLatency
}

// TxQueueLen and RxQueueLen report the number of transfers currently
// serializing through each direction of the port — the instantaneous
// queue depth the telemetry sampler records per sim-clock tick.
func (p *Port) TxQueueLen() int { return p.tx.InFlight() }
func (p *Port) RxQueueLen() int { return p.rx.InFlight() }

// SetRate rescales both directions of the port mid-run (link-rate
// degradation faults). In-flight transfers continue at the new rate.
func (p *Port) SetRate(bytesPerSec float64) {
	p.tx.SetRate(bytesPerSec)
	p.rx.SetRate(bytesPerSec)
}

// Send serializes the message out of this port. The returned event
// fires when the last byte leaves the sender (TX complete); delivery to
// the destination handler happens one wire latency after both TX and
// the receiver's RX serialization complete. Unknown destinations and
// loss-injected messages silently vanish after TX, exactly like a real
// fabric.
func (p *Port) Send(m *Message) *sim.Event {
	if m.Src == "" {
		m.Src = p.addr
	}
	if m.WireBytes < 0 {
		m.WireBytes = 0
	}
	sent := p.tx.Start(m.WireBytes)

	dst, ok := p.fabric.ports[m.Dst]
	if !ok || (p.fabric.dropFn != nil && p.fabric.dropFn(m)) {
		return sent
	}
	key := pairKey{src: m.Src, dst: m.Dst}
	st := p.fabric.pairs[key]
	if st == nil {
		st = &pairState{}
		p.fabric.pairs[key] = st
	}
	seq := st.nextSend
	st.nextSend++

	rxDone := dst.rx.Start(m.WireBytes)
	x := p.fabric.getXfer()
	x.dst = dst
	x.st = st
	x.m = m
	x.seq = seq
	x.remaining = 2
	sent.OnTrigger(x.decFn)
	rxDone.OnTrigger(x.decFn)
	return sent
}
