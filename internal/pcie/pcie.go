// Package pcie models a PCIe endpoint link: full-duplex processor-
// shared bandwidth plus load-dependent DMA latency.
//
// The paper's Table 1 measures 1.4 µs H2D/D2H DMA latency on an idle
// PCIe 3.0 x16 link, rising to 11.3 µs (H2D) and 6.6 µs (D2H) when the
// link is heavily loaded; §3.1.3 argues this extra latency leaks into
// end-to-end storage latency for host-bounced designs. The model
// reproduces this with a calibrated latency curve: base latency plus a
// loaded-latency term that scales with instantaneous queue pressure.
package pcie

import (
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/sim"
)

// Direction of a DMA transfer relative to the host.
type Direction int

const (
	// H2D is host-to-device: the device DMA-reads host memory.
	H2D Direction = iota
	// D2H is device-to-host: the device DMA-writes host memory.
	D2H
)

func (d Direction) String() string {
	if d == H2D {
		return "H2D"
	}
	return "D2H"
}

// Config sets the link parameters. Zero fields take PCIe 3.0 x16
// defaults from the paper's testbed.
type Config struct {
	// BytesPerSec is achievable bandwidth per direction (~104 Gbps).
	BytesPerSec float64
	// BaseLatency is the unloaded DMA completion latency.
	BaseLatency float64
	// LoadedLatencyH2D / D2H are the asymptotic extra latencies when the
	// link is saturated (Table 1 calibration points).
	LoadedLatencyH2D float64
	LoadedLatencyD2H float64
	// LoadThreshold is the outstanding-bytes level treated as "heavily
	// loaded" for the latency curve.
	LoadThreshold float64
}

// DefaultConfig returns PCIe 3.0 x16 parameters.
func DefaultConfig() Config {
	return Config{
		BytesPerSec:      13e9, // ~104 Gbps achievable
		BaseLatency:      1.4e-6,
		LoadedLatencyH2D: 11.3e-6,
		LoadedLatencyD2H: 6.6e-6,
		LoadThreshold:    256 << 10,
	}
}

// Link is one PCIe endpoint (a NIC, an accelerator card, a SmartNIC).
type Link struct {
	env *sim.Env
	cfg Config
	h2d *sim.PSLink
	d2h *sim.PSLink

	h2dBytes *metrics.Meter
	d2hBytes *metrics.Meter

	outstanding [2]float64 // in-flight bytes per direction
}

// New creates a link. Name distinguishes multiple endpoints.
func New(env *sim.Env, name string, cfg Config) *Link {
	def := DefaultConfig()
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = def.BytesPerSec
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = def.BaseLatency
	}
	if cfg.LoadedLatencyH2D <= 0 {
		cfg.LoadedLatencyH2D = def.LoadedLatencyH2D
	}
	if cfg.LoadedLatencyD2H <= 0 {
		cfg.LoadedLatencyD2H = def.LoadedLatencyD2H
	}
	if cfg.LoadThreshold <= 0 {
		cfg.LoadThreshold = def.LoadThreshold
	}
	return &Link{
		env:      env,
		cfg:      cfg,
		h2d:      env.NewPSLink(name+".h2d", cfg.BytesPerSec, 0),
		d2h:      env.NewPSLink(name+".d2h", cfg.BytesPerSec, 0),
		h2dBytes: metrics.NewMeter(env.Now()),
		d2hBytes: metrics.NewMeter(env.Now()),
	}
}

// Config returns the effective configuration.
func (l *Link) Config() Config { return l.cfg }

// loadFactor returns 0..1 pressure for the latency curve.
func (l *Link) loadFactor(dir Direction) float64 {
	f := l.outstanding[dir] / l.cfg.LoadThreshold
	if f > 1 {
		return 1
	}
	return f
}

// Latency returns the current DMA completion latency in the given
// direction; it interpolates between the idle and loaded calibration
// points of Table 1.
func (l *Link) Latency(dir Direction) float64 {
	loaded := l.cfg.LoadedLatencyH2D
	if dir == D2H {
		loaded = l.cfg.LoadedLatencyD2H
	}
	return l.cfg.BaseLatency + (loaded-l.cfg.BaseLatency)*l.loadFactor(dir)
}

// StartDMA begins a transfer of n bytes in the given direction and
// returns its completion event. Latency is sampled at issue time.
func (l *Link) StartDMA(dir Direction, n float64) *sim.Event {
	done := l.env.NewEvent()
	if n < 0 {
		n = 0
	}
	lat := l.Latency(dir)
	link := l.h2d
	meter := l.h2dBytes
	if dir == D2H {
		link = l.d2h
		meter = l.d2hBytes
	}
	meter.Add(n)
	l.outstanding[dir] += n
	xfer := link.Start(n)
	xfer.OnTrigger(func(interface{}) {
		l.outstanding[dir] -= n
		l.env.After(lat, func() { done.Trigger(nil) })
	})
	return done
}

// DMARead blocks while the device reads n bytes from host memory (H2D).
func (l *Link) DMARead(p *sim.Proc, n float64) { p.Wait(l.StartDMA(H2D, n)) }

// DMAWrite blocks while the device writes n bytes to host memory (D2H).
func (l *Link) DMAWrite(p *sim.Proc, n float64) { p.Wait(l.StartDMA(D2H, n)) }

// Doorbell models an MMIO write from CPU to device (descriptor ring
// doorbells); it is latency-only and cheap.
func (l *Link) Doorbell(p *sim.Proc) { p.Sleep(l.cfg.BaseLatency / 2) }

// Snapshot captures the cumulative per-direction byte counters.
type Snapshot struct {
	H2DBytes float64
	D2HBytes float64
	At       sim.Time
}

// Snapshot returns the counters at the current instant.
func (l *Link) Snapshot() Snapshot {
	return Snapshot{H2DBytes: l.h2dBytes.Total(), D2HBytes: l.d2hBytes.Total(), At: l.env.Now()}
}

// RatesBetween returns (H2D B/s, D2H B/s) between two snapshots.
func RatesBetween(a, b Snapshot) (float64, float64) {
	dt := b.At - a.At
	if dt <= 0 {
		return 0, 0
	}
	return (b.H2DBytes - a.H2DBytes) / dt, (b.D2HBytes - a.D2HBytes) / dt
}
