package pcie

import (
	"math"
	"testing"

	"github.com/disagg/smartds/internal/sim"
)

func TestUnloadedLatencyMatchesTable1(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", DefaultConfig())
	if got := l.Latency(H2D); math.Abs(got-1.4e-6) > 1e-12 {
		t.Fatalf("idle H2D latency = %g, want 1.4us", got)
	}
	if got := l.Latency(D2H); math.Abs(got-1.4e-6) > 1e-12 {
		t.Fatalf("idle D2H latency = %g, want 1.4us", got)
	}
}

func TestLoadedLatencyMatchesTable1(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", DefaultConfig())
	// Saturate both directions with large outstanding DMA.
	l.StartDMA(H2D, 8<<20)
	l.StartDMA(D2H, 8<<20)
	if got := l.Latency(H2D); math.Abs(got-11.3e-6) > 1e-12 {
		t.Fatalf("loaded H2D latency = %g, want 11.3us", got)
	}
	if got := l.Latency(D2H); math.Abs(got-6.6e-6) > 1e-12 {
		t.Fatalf("loaded D2H latency = %g, want 6.6us", got)
	}
}

func TestDMATransferTime(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", Config{BytesPerSec: 1e9, BaseLatency: 1e-6})
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		l.DMARead(p, 1e6) // 1 MB at 1 GB/s = 1 ms + ~latency
		done = p.Now()
	})
	e.Run(0)
	if done < 1e-3 || done > 1.1e-3 {
		t.Fatalf("DMA read took %g, want ~1ms", done)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	// Full duplex: simultaneous H2D and D2H at full rate each.
	e := sim.NewEnv()
	l := New(e, "nic", Config{BytesPerSec: 1e9, BaseLatency: 1e-9})
	var tr, tw sim.Time
	e.Go("r", func(p *sim.Proc) { l.DMARead(p, 1e6); tr = p.Now() })
	e.Go("w", func(p *sim.Proc) { l.DMAWrite(p, 1e6); tw = p.Now() })
	e.Run(0)
	if tr > 1.2e-3 || tw > 1.2e-3 {
		t.Fatalf("duplex transfers serialized: read %g write %g", tr, tw)
	}
}

func TestSameDirectionShares(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", Config{BytesPerSec: 1e9, BaseLatency: 1e-9})
	var t1, t2 sim.Time
	e.Go("a", func(p *sim.Proc) { l.DMARead(p, 1e6); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { l.DMARead(p, 1e6); t2 = p.Now() })
	e.Run(0)
	if t1 < 1.9e-3 || t2 < 1.9e-3 {
		t.Fatalf("same-direction transfers did not share: %g %g", t1, t2)
	}
}

func TestAccountingAndRates(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", Config{BytesPerSec: 1e9, BaseLatency: 1e-9})
	s0 := l.Snapshot()
	e.Go("p", func(p *sim.Proc) {
		l.DMARead(p, 2e6)
		l.DMAWrite(p, 1e6)
	})
	e.Run(0)
	s1 := l.Snapshot()
	if s1.H2DBytes-s0.H2DBytes != 2e6 || s1.D2HBytes-s0.D2HBytes != 1e6 {
		t.Fatalf("byte accounting wrong: %+v", s1)
	}
	h, d := RatesBetween(s0, s1)
	if h <= 0 || d <= 0 {
		t.Fatalf("rates: %g %g", h, d)
	}
	if h2, d2 := RatesBetween(s1, s1); h2 != 0 || d2 != 0 {
		t.Fatal("zero window rates must be 0")
	}
}

func TestOutstandingDrains(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", DefaultConfig())
	e.Go("p", func(p *sim.Proc) { l.DMARead(p, 1e6) })
	e.Run(0)
	if got := l.Latency(H2D); math.Abs(got-1.4e-6) > 1e-12 {
		t.Fatalf("latency did not return to idle after drain: %g", got)
	}
}

func TestDoorbellCheap(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", DefaultConfig())
	var done sim.Time
	e.Go("p", func(p *sim.Proc) { l.Doorbell(p); done = p.Now() })
	e.Run(0)
	if done <= 0 || done > 1.4e-6 {
		t.Fatalf("doorbell latency %g out of range", done)
	}
}

func TestZeroAndNegativeBytes(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", DefaultConfig())
	var done bool
	e.Go("p", func(p *sim.Proc) {
		l.DMAWrite(p, 0)
		l.DMARead(p, -3)
		done = true
	})
	e.Run(0)
	if !done {
		t.Fatal("degenerate DMA sizes blocked")
	}
}

func TestDirectionString(t *testing.T) {
	if H2D.String() != "H2D" || D2H.String() != "D2H" {
		t.Fatal("direction names wrong")
	}
}

func TestLatencyInterpolationMonotone(t *testing.T) {
	e := sim.NewEnv()
	l := New(e, "nic", DefaultConfig())
	prev := l.Latency(H2D)
	for _, n := range []float64{16 << 10, 64 << 10, 128 << 10, 256 << 10} {
		l.outstanding[H2D] = n
		cur := l.Latency(H2D)
		if cur < prev {
			t.Fatalf("latency not monotone in load: %g < %g at %g bytes", cur, prev, n)
		}
		prev = cur
	}
}
