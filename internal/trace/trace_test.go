package trace

import (
	"math"
	"strings"
	"testing"
)

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, "c", "n", "")
	tr.Begin(1, "c", "n", 1)
	tr.End(2, "c", "n", 1)
	if tr.Events() != nil || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer leaked state")
	}
}

func TestEmitAndOrder(t *testing.T) {
	tr := New(16)
	tr.Emit(0.001, "a", "x", "one")
	tr.Emit(0.002, "b", "y", "two")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Detail != "one" || evs[1].Detail != "two" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(float64(i), "c", "n", "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events", len(evs))
	}
	// Oldest kept is event 6, newest 9, in order.
	for i, ev := range evs {
		if ev.At != float64(6+i) {
			t.Fatalf("wrapped order broken: %+v", evs)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestSpans(t *testing.T) {
	tr := New(64)
	tr.Begin(1.0, "mt", "write", 1)
	tr.Begin(1.5, "mt", "write", 2)
	tr.End(2.0, "mt", "write", 1)  // 1.0s
	tr.End(2.0, "mt", "write", 2)  // 0.5s
	tr.End(9.9, "mt", "write", 99) // unmatched
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	s := spans[0]
	if s.Label != "mt/write" || s.Count != 2 {
		t.Fatalf("span = %+v", s)
	}
	if math.Abs(s.Mean-0.75) > 1e-12 || s.Max != 1.0 {
		t.Fatalf("span stats = %+v", s)
	}
}

func TestDump(t *testing.T) {
	tr := New(2)
	tr.Emit(0.001, "c", "ev1", "d1")
	tr.Emit(0.002, "c", "ev2", "d2")
	tr.Emit(0.003, "c", "ev3", "d3") // drops ev1
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if strings.Contains(out, "ev1") || !strings.Contains(out, "ev3") {
		t.Fatalf("dump wrong:\n%s", out)
	}
	if !strings.Contains(out, "1 earlier events dropped") {
		t.Fatalf("dropped note missing:\n%s", out)
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0)
	for i := 0; i < 5000; i++ {
		tr.Emit(float64(i), "c", "n", "")
	}
	if len(tr.Events()) != 4096 {
		t.Fatalf("default capacity = %d events", len(tr.Events()))
	}
}
