package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, "c", "n", "")
	tr.Begin(1, "c", "n", 1)
	tr.End(2, "c", "n", 1)
	if tr.Events() != nil || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer leaked state")
	}
}

func TestEmitAndOrder(t *testing.T) {
	tr := New(16)
	tr.Emit(0.001, "a", "x", "one")
	tr.Emit(0.002, "b", "y", "two")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Detail != "one" || evs[1].Detail != "two" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(float64(i), "c", "n", "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events", len(evs))
	}
	// Oldest kept is event 6, newest 9, in order.
	for i, ev := range evs {
		if ev.At != float64(6+i) {
			t.Fatalf("wrapped order broken: %+v", evs)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestSpans(t *testing.T) {
	tr := New(64)
	tr.Begin(1.0, "mt", "write", 1)
	tr.Begin(1.5, "mt", "write", 2)
	tr.End(2.0, "mt", "write", 1)  // 1.0s
	tr.End(2.0, "mt", "write", 2)  // 0.5s
	tr.End(9.9, "mt", "write", 99) // unmatched
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	s := spans[0]
	if s.Label != "mt/write" || s.Count != 2 {
		t.Fatalf("span = %+v", s)
	}
	if math.Abs(s.Mean-0.75) > 1e-12 || s.Max != 1.0 {
		t.Fatalf("span stats = %+v", s)
	}
}

func TestDump(t *testing.T) {
	tr := New(2)
	tr.Emit(0.001, "c", "ev1", "d1")
	tr.Emit(0.002, "c", "ev2", "d2")
	tr.Emit(0.003, "c", "ev3", "d3") // drops ev1
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if strings.Contains(out, "ev1") || !strings.Contains(out, "ev3") {
		t.Fatalf("dump wrong:\n%s", out)
	}
	if !strings.Contains(out, "1 earlier events dropped") {
		t.Fatalf("dropped note missing:\n%s", out)
	}
}

func TestSpanPercentiles(t *testing.T) {
	tr := New(1 << 12)
	for i := 0; i < 1000; i++ {
		tr.Begin(0, "mt", "stage", uint64(i))
		tr.End(1e-6*float64(i+1), "mt", "stage", uint64(i)) // 1us..1000us
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Count != 1000 {
		t.Fatalf("spans = %+v", spans)
	}
	s := spans[0]
	if s.P50 < 400e-6 || s.P50 > 600e-6 {
		t.Fatalf("p50 = %g, want ~500us", s.P50)
	}
	if s.P99 < 900e-6 || s.P99 > 1100e-6 {
		t.Fatalf("p99 = %g, want ~990us", s.P99)
	}
	if s.Max != 1000e-6 {
		t.Fatalf("max = %g, want 1000us exact", s.Max)
	}
}

func TestLeakedAndPurge(t *testing.T) {
	tr := New(64)
	tr.Begin(1.0, "mt", "write", 1)
	tr.Begin(1.1, "mt", "write", 2)
	tr.End(2.0, "mt", "write", 1)
	if got := tr.Leaked(); got != 0 {
		t.Fatalf("leaked before purge = %d", got)
	}
	if got := tr.OpenSpans(); got != 1 {
		t.Fatalf("open spans = %d, want 1", got)
	}
	tr.PurgeOpen(10.0)
	if got := tr.Leaked(); got != 1 {
		t.Fatalf("leaked after purge = %d, want 1", got)
	}
	if got := tr.OpenSpans(); got != 0 {
		t.Fatalf("open spans after purge = %d", got)
	}
	// Balanced Begin/End traffic never leaks.
	tr2 := New(64)
	for i := 0; i < 1000; i++ {
		tr2.Begin(float64(i), "c", "s", uint64(i))
		tr2.End(float64(i)+0.5, "c", "s", uint64(i))
	}
	tr2.PurgeOpen(math.Inf(1))
	if tr2.Leaked() != 0 {
		t.Fatalf("balanced spans leaked %d", tr2.Leaked())
	}
}

func TestOpenTableBounded(t *testing.T) {
	tr := New(16)
	tr.maxOpen = 8
	for i := 0; i < 100; i++ {
		tr.Begin(float64(i), "c", "orphan", uint64(i))
	}
	if got := tr.OpenSpans(); got > 8 {
		t.Fatalf("open table grew to %d despite maxOpen=8", got)
	}
	if tr.Leaked() != 92 {
		t.Fatalf("leaked = %d, want 92 evictions", tr.Leaked())
	}
	// The survivors are the newest spans: ending one still works.
	tr.End(200, "c", "orphan", 99)
	if got := tr.Spans(); len(got) != 1 || got[0].Count != 1 {
		t.Fatalf("newest span lost: %+v", got)
	}
}

func TestReBeginCountsLeak(t *testing.T) {
	tr := New(16)
	tr.Begin(1, "c", "s", 7)
	tr.Begin(2, "c", "s", 7) // same key re-begun while open
	tr.End(3, "c", "s", 7)
	if tr.Leaked() != 1 {
		t.Fatalf("re-begin leak = %d, want 1", tr.Leaked())
	}
	spans := tr.Spans()
	if len(spans) != 1 || math.Abs(spans[0].Mean-1.0) > 1e-12 {
		t.Fatalf("span paired with wrong begin: %+v", spans)
	}
}

func TestCounterEvents(t *testing.T) {
	tr := New(16)
	tr.Counter(0.001, "pslink.mt", 42.5)
	tr.Counter(0.002, "pslink.mt", 43.5)
	evs := tr.Events()
	if len(evs) != 2 || !evs[0].Counter || evs[0].Value != 42.5 {
		t.Fatalf("counter events = %+v", evs)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := New(64)
	tr.Begin(1e-6, "mt", "parse", 1)
	tr.End(2e-6, "mt", "parse", 1)
	tr.Emit(3e-6, "mt", "drop", "why")
	tr.Counter(4e-6, "bw", 99)
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var parsed []map[string]interface{}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, out)
	}
	var phases []string
	for _, ev := range parsed {
		phases = append(phases, ev["ph"].(string))
	}
	var bCount, eCount int
	for _, ph := range phases {
		switch ph {
		case "B":
			bCount++
		case "E":
			eCount++
		}
	}
	if bCount != 1 || eCount != 1 {
		t.Fatalf("span not exported as matched B/E pair: phases=%v", phases)
	}
	if !strings.Contains(out, `"ph":"C"`) || !strings.Contains(out, `"ph":"i"`) {
		t.Fatalf("missing counter or instant events:\n%s", out)
	}
	if !strings.Contains(out, `"thread_name"`) {
		t.Fatalf("missing thread metadata:\n%s", out)
	}
	// ts of the B event is 1us; E at 2us.
	for _, ev := range parsed {
		if ev["ph"] == "B" && ev["ts"].(float64) != 1 {
			t.Fatalf("B ts = %v, want 1 (virtual us)", ev["ts"])
		}
		if ev["ph"] == "E" && ev["ts"].(float64) != 2 {
			t.Fatalf("E ts = %v, want 2 (virtual us)", ev["ts"])
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() string {
		tr := New(128)
		for i := 0; i < 20; i++ {
			tr.Begin(float64(i)*1e-6, "c", "s", uint64(i))
			tr.End(float64(i)*1e-6+5e-7, "c", "s", uint64(i))
			tr.Counter(float64(i)*1e-6, "bw", float64(i)*3.7)
		}
		var b strings.Builder
		if err := tr.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatal("identical traces serialized differently")
	}
}

func TestNilTracerExportAndBreakdown(t *testing.T) {
	var tr *Tracer
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil || strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil export = %q err=%v", b.String(), err)
	}
	tr.Counter(1, "x", 2)
	tr.PurgeOpen(1)
	if tr.Leaked() != 0 || tr.OpenSpans() != 0 || tr.Breakdown() != nil || tr.Histogram("x") != nil {
		t.Fatal("nil tracer leaked state")
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0)
	for i := 0; i < 5000; i++ {
		tr.Emit(float64(i), "c", "n", "")
	}
	if len(tr.Events()) != 4096 {
		t.Fatalf("default capacity = %d events", len(tr.Events()))
	}
}
