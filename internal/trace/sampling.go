package trace

import "github.com/disagg/smartds/internal/metrics"

// Head sampling: at cluster scale the tracer cannot afford a ring
// entry, an open-table insert, and a histogram update for every stage
// of every request. The sampling decision is a pure function of
// (seed, correlation id) — a splitmix64 finalizer compared against the
// configured rate — so the set of kept requests is byte-identical
// across same-seed runs and identical no matter which pipeline stage
// asks. Call ForRequest once at the top of a request path: it returns
// the tracer itself when the request is sampled and nil otherwise, and
// every downstream Begin/End/Emit on the nil result is the zero-cost
// no-op the nil-*Tracer contract already guarantees.
//
// Tail keeps complement head sampling: requests the head sampler
// dropped but that turned out interesting (errors, p999 outliers,
// degraded placements) are recorded retroactively as a single span on
// the "tail" track, so the artifacts worth debugging survive even at
// 1% head rates.

// SetSampling configures head sampling. rate is the fraction of
// requests kept: >= 1 keeps everything (the default — a tracer that
// never saw SetSampling behaves exactly as before sampling existed),
// <= 0 keeps nothing. seed decorrelates the kept set across
// experiment seeds.
func (t *Tracer) SetSampling(rate float64, seed uint64) {
	if t == nil {
		return
	}
	t.sampleRate = rate
	t.sampleSeed = seed
	t.sampleSome = rate < 1
}

// SampleRate reports the configured head-sampling rate (1 when
// sampling was never configured).
func (t *Tracer) SampleRate() float64 {
	if t == nil || !t.sampleSome {
		return 1
	}
	return t.sampleRate
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash with no allocation and no shared state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports the head-sampling decision for a correlation id.
// Deterministic: depends only on (seed, id, rate).
//
//hot:per-request sampling gate, pinned by TestUnsampledPathZeroAllocs
func (t *Tracer) Sampled(id uint64) bool {
	if t == nil {
		return false
	}
	if !t.sampleSome {
		return true
	}
	if t.sampleRate <= 0 {
		return false
	}
	// Top 53 bits of the hash → uniform float in [0, 1).
	u := float64(mix64(t.sampleSeed^id)>>11) / (1 << 53)
	return u < t.sampleRate
}

// ForRequest resolves the tracer a request path should record through:
// the tracer itself when the request is head-sampled, nil otherwise.
// The unsampled path costs one hash and one branch — no allocation, no
// map touch, no ring append — and at the default rate (>= 1) this is
// the identity, so full-sampling runs stay byte-identical to the
// pre-sampling tracer.
//
//hot:per-request sampling gate, pinned by TestUnsampledPathZeroAllocs
func (t *Tracer) ForRequest(id uint64) *Tracer {
	if t == nil {
		return nil
	}
	if !t.sampleSome {
		return t
	}
	if t.Sampled(id) {
		return t
	}
	return nil
}

// KeepTail retroactively records a request the head sampler dropped:
// one completed span on the "tail" track named by reason (e.g.
// "error", "p999"), covering [start, end]. The span feeds the
// tail/<reason> histogram like any other, and the id ties it to
// exemplars and logs. Call only for unsampled requests — sampled ones
// already have their full stage tiling.
//
// The kept span is marked as the request's root (Req = id, KindRoot):
// a tail-kept request therefore always carries a complete — if
// single-segment — DAG, never a partial path, so critical-path
// analysis can tile it exactly without inventing stages head sampling
// never recorded.
func (t *Tracer) KeepTail(start, end float64, reason string, id uint64) {
	if t == nil {
		return
	}
	t.keptTail++
	t.record(Event{At: start, Component: "tail", Name: reason, Dur: end - start,
		ID: id, Req: id, Kind: KindRoot})
	label := "tail/" + reason
	h, ok := t.hists[label]
	if !ok {
		h = metrics.NewLatencyHistogram()
		t.hists[label] = h
	}
	h.Record(end - start)
}

// KeptTail reports how many tail-based keeps were recorded.
func (t *Tracer) KeptTail() uint64 {
	if t == nil {
		return 0
	}
	return t.keptTail
}
