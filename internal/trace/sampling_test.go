package trace

import "testing"

// TestSamplingDeterministic pins that the head-sampling decision is a
// pure function of (seed, rate, id): two tracers configured alike keep
// exactly the same id set, and a different seed keeps a different one.
func TestSamplingDeterministic(t *testing.T) {
	a, b := New(16), New(16)
	a.SetSampling(0.01, 42)
	b.SetSampling(0.01, 42)
	other := New(16)
	other.SetSampling(0.01, 43)
	kept, moved := 0, 0
	for id := uint64(0); id < 100000; id++ {
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("id %d: same config disagrees", id)
		}
		if a.Sampled(id) {
			kept++
			if !other.Sampled(id) {
				moved++
			}
		}
	}
	// 1% of 100k with a uniform hash: expect ~1000 keeps.
	if kept < 800 || kept > 1200 {
		t.Fatalf("kept %d of 100000 at rate 0.01, want ~1000", kept)
	}
	if moved == 0 {
		t.Fatalf("seed change did not move the kept set")
	}
}

// TestSamplingRateEdges pins the rate extremes and the default.
func TestSamplingRateEdges(t *testing.T) {
	tr := New(16)
	if tr.ForRequest(7) != tr {
		t.Fatalf("unconfigured tracer must sample everything")
	}
	if tr.SampleRate() != 1 {
		t.Fatalf("default SampleRate = %v, want 1", tr.SampleRate())
	}
	tr.SetSampling(0, 1)
	if tr.ForRequest(7) != nil {
		t.Fatalf("rate 0 must sample nothing")
	}
	tr.SetSampling(1, 1)
	if tr.ForRequest(7) != tr {
		t.Fatalf("rate 1 must return the tracer itself (identity)")
	}
	var nilT *Tracer
	if nilT.ForRequest(7) != nil || nilT.Sampled(7) {
		t.Fatalf("nil tracer must stay nil and unsampled")
	}
	nilT.SetSampling(0.5, 1) // must not panic
	nilT.KeepTail(0, 1, "error", 7)
	if nilT.KeptTail() != 0 {
		t.Fatalf("nil tracer KeptTail = %d, want 0", nilT.KeptTail())
	}
}

// TestKeepTail pins the retroactive tail-keep record: one span on the
// tail track, a tail/<reason> histogram sample, and the counter.
func TestKeepTail(t *testing.T) {
	tr := New(16)
	tr.SetSampling(0, 99)
	tr.KeepTail(1.0, 1.002, "error", 77)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Component != "tail" || ev.Name != "error" || ev.ID != 77 {
		t.Fatalf("unexpected tail event %+v", ev)
	}
	if ev.Dur < 0.0019 || ev.Dur > 0.0021 {
		t.Fatalf("tail span dur = %v, want ~2ms", ev.Dur)
	}
	h := tr.Histogram("tail/error")
	if h == nil || h.Count() != 1 {
		t.Fatalf("tail/error histogram not fed")
	}
	if tr.KeptTail() != 1 {
		t.Fatalf("KeptTail = %d, want 1", tr.KeptTail())
	}
}

// unsampledStagePath mirrors the middle-tier write pipeline's span
// calls for one request: the shape the satellite's 0 allocs/op pin
// must hold on when the request is not head-sampled.
func unsampledStagePath(root *Tracer, id uint64) {
	tr := root.ForRequest(id)
	tr.End(0, "net", "request", id)
	tr.Begin(0, "mt", "parse", id)
	tr.End(1e-6, "mt", "parse", id)
	tr.Begin(1e-6, "mt", "compress", id)
	tr.End(2e-6, "mt", "compress", id)
	tr.Begin(2e-6, "mt", "replicate", id)
	tr.End(5e-6, "mt", "replicate", id)
	tr.Begin(5e-6, "mt", "ack", id)
	tr.End(5e-6, "mt", "ack", id)
	tr.Begin(5e-6, "net", "reply", id)
}

// TestUnsampledPathZeroAllocs is the satellite pin: a request the head
// sampler drops must not allocate anywhere in the stage path — the
// ForRequest branch happens before any span bookkeeping.
func TestUnsampledPathZeroAllocs(t *testing.T) {
	root := New(1 << 10)
	root.SetSampling(0, 42) // drop everything
	allocs := testing.AllocsPerRun(1000, func() {
		unsampledStagePath(root, 12345)
	})
	if allocs != 0 {
		t.Fatalf("unsampled stage path allocates %v/op, want 0", allocs)
	}
	// A nil root tracer (tracing disabled entirely) must also be free.
	allocs = testing.AllocsPerRun(1000, func() {
		unsampledStagePath(nil, 12345)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer stage path allocates %v/op, want 0", allocs)
	}
}

// BenchmarkUnsampledStagePath measures the per-request cost of the
// dropped path (expected: a hash, a compare, and ten nil-check calls).
func BenchmarkUnsampledStagePath(b *testing.B) {
	root := New(1 << 10)
	root.SetSampling(0.01, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Id 3 is dropped at rate 0.01 with seed 42 (asserted below in
		// case the hash ever changes).
		unsampledStagePath(root, 3)
	}
}

func TestBenchmarkIDUnsampled(t *testing.T) {
	root := New(16)
	root.SetSampling(0.01, 42)
	if root.Sampled(3) {
		t.Fatalf("benchmark id 3 is sampled at rate 0.01 seed 42; pick another id")
	}
}
