// Package trace records simulation events into a bounded ring for
// debugging and latency breakdowns. A nil *Tracer is valid and records
// nothing, so call sites need no guards.
package trace

import (
	"fmt"
	"io"
	"sort"
)

// Event is one recorded occurrence in virtual time.
type Event struct {
	At        float64 // virtual seconds
	Component string  // e.g. "client0", "mt", "ss2"
	Name      string  // e.g. "issue", "compress-done"
	Detail    string
}

// Tracer is a bounded ring of events.
type Tracer struct {
	cap     int
	events  []Event
	next    int
	wrapped bool
	dropped uint64

	open map[spanKey]float64
	durs map[string][]float64
}

type spanKey struct {
	component, name string
	id              uint64
}

// New creates a tracer holding up to capacity events (older events are
// overwritten once full).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{
		cap:    capacity,
		events: make([]Event, 0, capacity),
		open:   make(map[spanKey]float64),
		durs:   make(map[string][]float64),
	}
}

// Emit records one event. Nil tracers drop silently.
func (t *Tracer) Emit(at float64, component, name, detail string) {
	if t == nil {
		return
	}
	ev := Event{At: at, Component: component, Name: name, Detail: detail}
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.next] = ev
	t.next = (t.next + 1) % t.cap
	t.wrapped = true
	t.dropped++
}

// Begin opens a span identified by (component, name, id).
func (t *Tracer) Begin(at float64, component, name string, id uint64) {
	if t == nil {
		return
	}
	t.Emit(at, component, name+":begin", fmt.Sprintf("id=%d", id))
	t.open[spanKey{component, name, id}] = at
}

// End closes a span and records its duration under component/name.
func (t *Tracer) End(at float64, component, name string, id uint64) {
	if t == nil {
		return
	}
	key := spanKey{component, name, id}
	start, ok := t.open[key]
	if !ok {
		t.Emit(at, component, name+":end-unmatched", fmt.Sprintf("id=%d", id))
		return
	}
	delete(t.open, key)
	t.Emit(at, component, name+":end", fmt.Sprintf("id=%d dur=%.3gus", id, (at-start)*1e6))
	label := component + "/" + name
	t.durs[label] = append(t.durs[label], at-start)
}

// Events returns the recorded events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.events...)
	}
	out := make([]Event, 0, t.cap)
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dropped reports how many events were overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// SpanStats summarizes one span label.
type SpanStats struct {
	Label string
	Count int
	Mean  float64
	Max   float64
}

// Spans returns per-label duration summaries, sorted by label.
func (t *Tracer) Spans() []SpanStats {
	if t == nil {
		return nil
	}
	out := make([]SpanStats, 0, len(t.durs))
	for label, ds := range t.durs {
		s := SpanStats{Label: label, Count: len(ds)}
		for _, d := range ds {
			s.Mean += d
			if d > s.Max {
				s.Max = d
			}
		}
		s.Mean /= float64(len(ds))
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Dump writes the event log in chronological order.
func (t *Tracer) Dump(w io.Writer) {
	for _, ev := range t.Events() {
		fmt.Fprintf(w, "%12.6fms %-12s %-24s %s\n", ev.At*1e3, ev.Component, ev.Name, ev.Detail)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", d)
	}
}
