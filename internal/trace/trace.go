// Package trace records simulation events into a bounded ring for
// debugging and latency breakdowns. A nil *Tracer is valid and records
// nothing, so call sites need no guards.
//
// Three record kinds exist:
//
//   - instant events (Emit): a point occurrence on a component track;
//   - spans (Begin/End): a named interval correlated by (component,
//     name, id); completed spans feed a per-label latency histogram so
//     Breakdown can attribute end-to-end latency to pipeline stages;
//   - counter samples (Counter): a periodic reading of a bandwidth or
//     occupancy value, rendered as a counter track.
//
// All timestamps are virtual seconds, so traces from the same seed are
// byte-identical across runs. WriteChromeTrace exports the ring as
// Chrome trace-event JSON viewable in Perfetto or chrome://tracing,
// with the virtual microsecond as the timebase.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/disagg/smartds/internal/metrics"
)

// Kind classifies a span for critical-path blame: service time (the
// component was doing work), wait time (the request was parked on a
// queue, a straggler ack, or a retransmit), or the request root (the
// client-observed end-to-end interval every other span tiles).
type Kind uint8

const (
	KindService Kind = iota
	KindWait
	KindRoot
)

// String names the kind for reports and folded stacks.
func (k Kind) String() string {
	switch k {
	case KindWait:
		return "wait"
	case KindRoot:
		return "root"
	default:
		return "service"
	}
}

// Event is one recorded occurrence in virtual time. Dur > 0 marks a
// completed span starting at At; Counter marks a counter sample whose
// reading is Value.
//
// Req, PComp/PName and Kind carry the request DAG: spans with the same
// non-zero Req belong to one request, PComp/PName name the parent span
// label within that request ("" means the span hangs directly off the
// request root), and Kind splits wait from service time. Parent edges
// are stored as two static-string fields — never concatenated — so
// recording a span stays allocation-free.
type Event struct {
	At        float64 // virtual seconds (span: start time)
	Component string  // e.g. "client0", "mt", "ss2"
	Name      string  // e.g. "issue", "compress"
	Detail    string
	Dur       float64 // span duration in virtual seconds (0 = instant)
	ID        uint64  // span correlation id
	Req       uint64  // request DAG id (0 = not request-scoped)
	PComp     string  // parent span component ("" = child of the root)
	PName     string  // parent span name
	Kind      Kind    // wait/service/root classification
	Counter   bool    // counter sample
	Value     float64 // counter reading
}

// Tracer is a bounded ring of events plus per-label span histograms.
// The open-span table is bounded too: a Begin with no matching End is
// evicted once maxOpen spans are outstanding and counted in Leaked.
type Tracer struct {
	cap     int
	events  []Event
	next    int
	wrapped bool
	dropped uint64

	open    map[spanKey]openSpan
	maxOpen int
	leaked  uint64

	hists map[string]*metrics.Histogram

	// Head sampling (see sampling.go). sampleSome is false until
	// SetSampling configures a rate below 1, keeping the default path
	// — sample everything — a single branch.
	sampleRate float64
	sampleSeed uint64
	sampleSome bool
	keptTail   uint64
}

type spanKey struct {
	component, name string
	id              uint64
}

// openSpan is the per-open-span state stashed at Begin time and pulled
// into the recorded Event at End time.
type openSpan struct {
	at    float64
	req   uint64
	pcomp string
	pname string
	kind  Kind
}

// defaultMaxOpen bounds the open-span table; the deepest legitimate
// nesting in the simulator is a few spans per in-flight request, so
// crossing this means Begin/End pairing is broken somewhere.
const defaultMaxOpen = 1 << 16

// New creates a tracer holding up to capacity events (older events are
// overwritten once full).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{
		cap:     capacity,
		events:  make([]Event, 0, capacity),
		open:    make(map[spanKey]openSpan),
		maxOpen: defaultMaxOpen,
		hists:   make(map[string]*metrics.Histogram),
	}
}

// record appends one event to the ring.
func (t *Tracer) record(ev Event) {
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.next] = ev
	t.next = (t.next + 1) % t.cap
	t.wrapped = true
	t.dropped++
}

// Emit records one instant event. Nil tracers drop silently.
func (t *Tracer) Emit(at float64, component, name, detail string) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Component: component, Name: name, Detail: detail})
}

// Counter records one counter sample on the given track.
func (t *Tracer) Counter(at float64, track string, value float64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Component: track, Name: track, Counter: true, Value: value})
}

// Begin opens a span identified by (component, name, id). If the open
// table is full, the stalest open span is evicted and counted leaked.
func (t *Tracer) Begin(at float64, component, name string, id uint64) {
	t.BeginUnder(at, component, name, id, 0, "", "", KindService)
}

// BeginReq opens a request-scoped span: req groups it into the
// request's DAG as a direct child of the request root. kind splits
// wait from service time (KindRoot marks the root span itself).
func (t *Tracer) BeginReq(at float64, component, name string, id, req uint64, kind Kind) {
	t.BeginUnder(at, component, name, id, req, "", "", kind)
}

// BeginUnder opens a request-scoped span under an explicit parent span
// label (pcomp, pname) within the same request DAG. Pass static
// strings for the parent edge — they are stored verbatim, never
// concatenated, so the call stays allocation-free.
func (t *Tracer) BeginUnder(at float64, component, name string, id, req uint64, pcomp, pname string, kind Kind) {
	if t == nil {
		return
	}
	key := spanKey{component, name, id}
	if _, dup := t.open[key]; dup {
		// Re-Begin of an open span: the earlier one can never match an
		// End anymore (End would pair with the newest start).
		t.leaked++
	} else if len(t.open) >= t.maxOpen {
		t.evictStalest()
	}
	t.open[key] = openSpan{at: at, req: req, pcomp: pcomp, pname: pname, kind: kind}
}

// evictStalest drops the oldest open span and counts it leaked. Ties
// on the start time break on the span key, not on map iteration order,
// so the evicted span (and the resulting leak accounting and later
// end-unmatched events) is the same in every replay of a seed.
func (t *Tracer) evictStalest() {
	var oldest spanKey
	oldestAt := -1.0
	first := true
	for k, os := range t.open {
		if first || os.at < oldestAt || (os.at == oldestAt && keyLess(k, oldest)) { //detcheck:floateq exact tie on recorded timestamps
			oldest, oldestAt, first = k, os.at, false //detcheck:ordered winner is total-ordered by (at, key)
		}
	}
	if !first {
		delete(t.open, oldest)
		t.leaked++
	}
}

// keyLess is the total order on span keys used to break eviction ties.
func keyLess(a, b spanKey) bool {
	if a.component != b.component {
		return a.component < b.component
	}
	if a.name != b.name {
		return a.name < b.name
	}
	return a.id < b.id
}

// End closes a span, records it in the ring, and feeds the per-label
// duration histogram under component/name.
func (t *Tracer) End(at float64, component, name string, id uint64) {
	if t == nil {
		return
	}
	key := spanKey{component, name, id}
	os, ok := t.open[key]
	if !ok {
		t.record(Event{At: at, Component: component, Name: name + ":end-unmatched",
			Detail: fmt.Sprintf("id=%d", id)})
		return
	}
	delete(t.open, key)
	t.record(Event{At: os.at, Component: component, Name: name, Dur: at - os.at, ID: id,
		Req: os.req, PComp: os.pcomp, PName: os.pname, Kind: os.kind})
	t.recordHist(component, name, at-os.at)
}

// Span records an already-completed span directly, bypassing the open
// table: the caller knows both endpoints (straggler waits, wire/queue
// splits, tail keeps). It feeds the component/name histogram exactly
// like a Begin/End pair.
func (t *Tracer) Span(start, end float64, component, name string, id, req uint64, pcomp, pname string, kind Kind, detail string) {
	if t == nil {
		return
	}
	t.record(Event{At: start, Component: component, Name: name, Detail: detail,
		Dur: end - start, ID: id, Req: req, PComp: pcomp, PName: pname, Kind: kind})
	t.recordHist(component, name, end-start)
}

// recordHist feeds the per-label duration histogram under component/name.
func (t *Tracer) recordHist(component, name string, dur float64) {
	label := component + "/" + name
	h, ok := t.hists[label]
	if !ok {
		h = metrics.NewLatencyHistogram()
		t.hists[label] = h
	}
	h.Record(dur)
}

// PurgeOpen drops every open span that began before the given time,
// counting them leaked. Call at the end of a run to detect Begin calls
// whose End never fired.
func (t *Tracer) PurgeOpen(before float64) {
	if t == nil {
		return
	}
	for k, os := range t.open {
		if os.at < before {
			delete(t.open, k)
			t.leaked++
		}
	}
}

// OpenSpans reports spans begun but not yet ended.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// Leaked reports spans that were opened but could never complete:
// evicted from a full open table, re-begun while open, or purged.
func (t *Tracer) Leaked() uint64 {
	if t == nil {
		return 0
	}
	return t.leaked
}

// Events returns the recorded events in ring order (chronological by
// record time; a span is recorded when it ends but stamped with its
// start time).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.events...)
	}
	out := make([]Event, 0, t.cap)
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dropped reports how many events were overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Recorded reports the total number of events ever recorded (including
// ones since overwritten). Use it as a cursor with EventsSince to
// slice per-run windows out of a long-lived ring.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return uint64(len(t.events)) + t.dropped
}

// EventsSince returns the events recorded at or after the given
// cursor (a prior Recorded() reading) that are still in the ring, in
// record order. Events the ring has already overwritten are gone; the
// caller sees only the surviving suffix.
func (t *Tracer) EventsSince(cursor uint64) []Event {
	if t == nil {
		return nil
	}
	all := t.Events()
	oldest := t.dropped // absolute index of the first surviving event
	if cursor <= oldest {
		return all
	}
	skip := cursor - oldest
	if skip >= uint64(len(all)) {
		return nil
	}
	return all[skip:]
}

// SpanStats summarizes one span label. Count, Mean and Max are exact;
// the percentiles carry the histogram's bucket resolution.
type SpanStats struct {
	Label string
	Count int
	Mean  float64
	Max   float64
	P50   float64
	P99   float64
	P999  float64
}

// Spans returns per-label duration summaries, sorted by label.
func (t *Tracer) Spans() []SpanStats {
	if t == nil {
		return nil
	}
	out := make([]SpanStats, 0, len(t.hists))
	for label, h := range t.hists {
		out = append(out, SpanStats{
			Label: label,
			Count: int(h.Count()),
			Mean:  h.Mean(),
			Max:   h.Max(),
			P50:   h.P50(),
			P99:   h.P99(),
			P999:  h.P999(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Breakdown is Spans under the name the latency-attribution tables use.
func (t *Tracer) Breakdown() []SpanStats { return t.Spans() }

// Histogram returns the duration histogram for one span label (nil if
// the label never completed a span).
func (t *Tracer) Histogram(label string) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.hists[label]
}

// BreakdownTable renders the per-stage latency decomposition.
func (t *Tracer) BreakdownTable(title string) *metrics.Table {
	tbl := metrics.NewTable(title, "stage", "count", "mean", "p50", "p99", "max")
	for _, s := range t.Spans() {
		tbl.AddRow(s.Label, s.Count,
			metrics.FormatDuration(s.Mean), metrics.FormatDuration(s.P50),
			metrics.FormatDuration(s.P99), metrics.FormatDuration(s.Max))
	}
	if t != nil && t.leaked > 0 {
		tbl.AddNote("%d spans leaked (Begin without End)", t.leaked)
	}
	return tbl
}

// Dump writes the event log in ring order.
func (t *Tracer) Dump(w io.Writer) {
	for _, ev := range t.Events() {
		switch {
		case ev.Counter:
			fmt.Fprintf(w, "%12.6fms %-12s %-24s %g\n", ev.At*1e3, ev.Component, ev.Name, ev.Value)
		case ev.Dur > 0:
			fmt.Fprintf(w, "%12.6fms %-12s %-24s id=%d dur=%.3gus\n",
				ev.At*1e3, ev.Component, ev.Name, ev.ID, ev.Dur*1e6)
		default:
			fmt.Fprintf(w, "%12.6fms %-12s %-24s %s\n", ev.At*1e3, ev.Component, ev.Name, ev.Detail)
		}
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", d)
	}
}

// WriteChromeTrace exports the ring as Chrome trace-event JSON (the
// "JSON array format"): one track (tid) per component under a single
// process, spans as matched B/E pairs, instants as "i", counters as
// "C". Timestamps are virtual microseconds. Output is deterministic:
// events appear in ring order and tids are assigned in order of first
// appearance.
//
// Request-scoped spans (Req != 0) additionally carry their req id and
// parent label in args and are stitched together with flow events
// ("s" on the request's first recorded span, "t" on the rest, flow id
// = Req), so the viewer nests a request's stages under one arrow chain
// instead of rendering unrelated flat lanes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	events := t.Events()
	tids := make(map[string]int)
	order := []string{}
	tidOf := func(component string) int {
		id, ok := tids[component]
		if !ok {
			id = len(tids) + 1
			tids[component] = id
			order = append(order, component)
		}
		return id
	}
	for _, ev := range events {
		tidOf(ev.Component)
	}

	bw := newErrWriter(w)
	bw.writeString("[\n")
	first := true
	emit := func(s string) {
		if !first {
			bw.writeString(",\n")
		}
		first = false
		bw.writeString(s)
	}
	// Thread-name metadata so Perfetto labels each component track.
	for _, comp := range order {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tids[comp], quoteJSON(comp)))
	}
	flowSeen := make(map[uint64]bool)
	for _, ev := range events {
		ts := usec(ev.At)
		tid := tids[ev.Component]
		switch {
		case ev.Counter:
			emit(fmt.Sprintf(`{"name":%s,"ph":"C","pid":1,"tid":%d,"ts":%s,"args":{"value":%s}}`,
				quoteJSON(ev.Name), tid, ts, jsonFloat(ev.Value)))
		case ev.Dur > 0:
			args := fmt.Sprintf(`{"id":%d}`, ev.ID)
			if ev.Req != 0 {
				parent := "root"
				if ev.PComp != "" || ev.PName != "" {
					parent = ev.PComp + "/" + ev.PName
				}
				args = fmt.Sprintf(`{"id":%d,"req":%d,"parent":%s,"kind":%s}`,
					ev.ID, ev.Req, quoteJSON(parent), quoteJSON(ev.Kind.String()))
			}
			emit(fmt.Sprintf(`{"name":%s,"ph":"B","pid":1,"tid":%d,"ts":%s,"args":%s}`,
				quoteJSON(ev.Name), tid, ts, args))
			if ev.Req != 0 {
				// Flow arrows stitch a request's spans across tracks.
				ph := "t"
				if !flowSeen[ev.Req] {
					ph, flowSeen[ev.Req] = "s", true
				}
				emit(fmt.Sprintf(`{"name":"req","cat":"req","ph":%s,"pid":1,"tid":%d,"ts":%s,"id":%d}`,
					quoteJSON(ph), tid, ts, ev.Req))
			}
			emit(fmt.Sprintf(`{"name":%s,"ph":"E","pid":1,"tid":%d,"ts":%s}`,
				quoteJSON(ev.Name), tid, usec(ev.At+ev.Dur)))
		default:
			args := "{}"
			if ev.Detail != "" {
				args = fmt.Sprintf(`{"detail":%s}`, quoteJSON(ev.Detail))
			}
			emit(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s,"args":%s}`,
				quoteJSON(ev.Name), tid, ts, args))
		}
	}
	bw.writeString("\n]\n")
	return bw.err
}

// usec renders a virtual-seconds timestamp as microseconds with a
// deterministic shortest decimal representation.
func usec(sec float64) string { return jsonFloat(sec * 1e6) }

// jsonFloat formats a float deterministically for JSON.
func jsonFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// quoteJSON escapes a string for JSON (component/stage names are plain
// ASCII identifiers, so strconv.Quote is sufficient and deterministic).
func quoteJSON(s string) string { return strconv.Quote(s) }

// errWriter folds write errors so export code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}
