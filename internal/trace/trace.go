// Package trace records simulation events into a bounded ring for
// debugging and latency breakdowns. A nil *Tracer is valid and records
// nothing, so call sites need no guards.
//
// Three record kinds exist:
//
//   - instant events (Emit): a point occurrence on a component track;
//   - spans (Begin/End): a named interval correlated by (component,
//     name, id); completed spans feed a per-label latency histogram so
//     Breakdown can attribute end-to-end latency to pipeline stages;
//   - counter samples (Counter): a periodic reading of a bandwidth or
//     occupancy value, rendered as a counter track.
//
// All timestamps are virtual seconds, so traces from the same seed are
// byte-identical across runs. WriteChromeTrace exports the ring as
// Chrome trace-event JSON viewable in Perfetto or chrome://tracing,
// with the virtual microsecond as the timebase.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/disagg/smartds/internal/metrics"
)

// Event is one recorded occurrence in virtual time. Dur > 0 marks a
// completed span starting at At; Counter marks a counter sample whose
// reading is Value.
type Event struct {
	At        float64 // virtual seconds (span: start time)
	Component string  // e.g. "client0", "mt", "ss2"
	Name      string  // e.g. "issue", "compress"
	Detail    string
	Dur       float64 // span duration in virtual seconds (0 = instant)
	ID        uint64  // span correlation id
	Counter   bool    // counter sample
	Value     float64 // counter reading
}

// Tracer is a bounded ring of events plus per-label span histograms.
// The open-span table is bounded too: a Begin with no matching End is
// evicted once maxOpen spans are outstanding and counted in Leaked.
type Tracer struct {
	cap     int
	events  []Event
	next    int
	wrapped bool
	dropped uint64

	open    map[spanKey]float64
	maxOpen int
	leaked  uint64

	hists map[string]*metrics.Histogram

	// Head sampling (see sampling.go). sampleSome is false until
	// SetSampling configures a rate below 1, keeping the default path
	// — sample everything — a single branch.
	sampleRate float64
	sampleSeed uint64
	sampleSome bool
	keptTail   uint64
}

type spanKey struct {
	component, name string
	id              uint64
}

// defaultMaxOpen bounds the open-span table; the deepest legitimate
// nesting in the simulator is a few spans per in-flight request, so
// crossing this means Begin/End pairing is broken somewhere.
const defaultMaxOpen = 1 << 16

// New creates a tracer holding up to capacity events (older events are
// overwritten once full).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{
		cap:     capacity,
		events:  make([]Event, 0, capacity),
		open:    make(map[spanKey]float64),
		maxOpen: defaultMaxOpen,
		hists:   make(map[string]*metrics.Histogram),
	}
}

// record appends one event to the ring.
func (t *Tracer) record(ev Event) {
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.next] = ev
	t.next = (t.next + 1) % t.cap
	t.wrapped = true
	t.dropped++
}

// Emit records one instant event. Nil tracers drop silently.
func (t *Tracer) Emit(at float64, component, name, detail string) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Component: component, Name: name, Detail: detail})
}

// Counter records one counter sample on the given track.
func (t *Tracer) Counter(at float64, track string, value float64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Component: track, Name: track, Counter: true, Value: value})
}

// Begin opens a span identified by (component, name, id). If the open
// table is full, the stalest open span is evicted and counted leaked.
func (t *Tracer) Begin(at float64, component, name string, id uint64) {
	if t == nil {
		return
	}
	key := spanKey{component, name, id}
	if _, dup := t.open[key]; dup {
		// Re-Begin of an open span: the earlier one can never match an
		// End anymore (End would pair with the newest start).
		t.leaked++
	} else if len(t.open) >= t.maxOpen {
		t.evictStalest()
	}
	t.open[key] = at
}

// evictStalest drops the oldest open span and counts it leaked. Ties
// on the start time break on the span key, not on map iteration order,
// so the evicted span (and the resulting leak accounting and later
// end-unmatched events) is the same in every replay of a seed.
func (t *Tracer) evictStalest() {
	var oldest spanKey
	oldestAt := -1.0
	first := true
	for k, at := range t.open {
		if first || at < oldestAt || (at == oldestAt && keyLess(k, oldest)) { //detcheck:floateq exact tie on recorded timestamps
			oldest, oldestAt, first = k, at, false //detcheck:ordered winner is total-ordered by (at, key)
		}
	}
	if !first {
		delete(t.open, oldest)
		t.leaked++
	}
}

// keyLess is the total order on span keys used to break eviction ties.
func keyLess(a, b spanKey) bool {
	if a.component != b.component {
		return a.component < b.component
	}
	if a.name != b.name {
		return a.name < b.name
	}
	return a.id < b.id
}

// End closes a span, records it in the ring, and feeds the per-label
// duration histogram under component/name.
func (t *Tracer) End(at float64, component, name string, id uint64) {
	if t == nil {
		return
	}
	key := spanKey{component, name, id}
	start, ok := t.open[key]
	if !ok {
		t.record(Event{At: at, Component: component, Name: name + ":end-unmatched",
			Detail: fmt.Sprintf("id=%d", id)})
		return
	}
	delete(t.open, key)
	t.record(Event{At: start, Component: component, Name: name, Dur: at - start, ID: id})
	label := component + "/" + name
	h, ok := t.hists[label]
	if !ok {
		h = metrics.NewLatencyHistogram()
		t.hists[label] = h
	}
	h.Record(at - start)
}

// PurgeOpen drops every open span that began before the given time,
// counting them leaked. Call at the end of a run to detect Begin calls
// whose End never fired.
func (t *Tracer) PurgeOpen(before float64) {
	if t == nil {
		return
	}
	for k, at := range t.open {
		if at < before {
			delete(t.open, k)
			t.leaked++
		}
	}
}

// OpenSpans reports spans begun but not yet ended.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// Leaked reports spans that were opened but could never complete:
// evicted from a full open table, re-begun while open, or purged.
func (t *Tracer) Leaked() uint64 {
	if t == nil {
		return 0
	}
	return t.leaked
}

// Events returns the recorded events in ring order (chronological by
// record time; a span is recorded when it ends but stamped with its
// start time).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.events...)
	}
	out := make([]Event, 0, t.cap)
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dropped reports how many events were overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// SpanStats summarizes one span label. Count, Mean and Max are exact;
// the percentiles carry the histogram's bucket resolution.
type SpanStats struct {
	Label string
	Count int
	Mean  float64
	Max   float64
	P50   float64
	P99   float64
	P999  float64
}

// Spans returns per-label duration summaries, sorted by label.
func (t *Tracer) Spans() []SpanStats {
	if t == nil {
		return nil
	}
	out := make([]SpanStats, 0, len(t.hists))
	for label, h := range t.hists {
		out = append(out, SpanStats{
			Label: label,
			Count: int(h.Count()),
			Mean:  h.Mean(),
			Max:   h.Max(),
			P50:   h.P50(),
			P99:   h.P99(),
			P999:  h.P999(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Breakdown is Spans under the name the latency-attribution tables use.
func (t *Tracer) Breakdown() []SpanStats { return t.Spans() }

// Histogram returns the duration histogram for one span label (nil if
// the label never completed a span).
func (t *Tracer) Histogram(label string) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.hists[label]
}

// BreakdownTable renders the per-stage latency decomposition.
func (t *Tracer) BreakdownTable(title string) *metrics.Table {
	tbl := metrics.NewTable(title, "stage", "count", "mean", "p50", "p99", "max")
	for _, s := range t.Spans() {
		tbl.AddRow(s.Label, s.Count,
			metrics.FormatDuration(s.Mean), metrics.FormatDuration(s.P50),
			metrics.FormatDuration(s.P99), metrics.FormatDuration(s.Max))
	}
	if t != nil && t.leaked > 0 {
		tbl.AddNote("%d spans leaked (Begin without End)", t.leaked)
	}
	return tbl
}

// Dump writes the event log in ring order.
func (t *Tracer) Dump(w io.Writer) {
	for _, ev := range t.Events() {
		switch {
		case ev.Counter:
			fmt.Fprintf(w, "%12.6fms %-12s %-24s %g\n", ev.At*1e3, ev.Component, ev.Name, ev.Value)
		case ev.Dur > 0:
			fmt.Fprintf(w, "%12.6fms %-12s %-24s id=%d dur=%.3gus\n",
				ev.At*1e3, ev.Component, ev.Name, ev.ID, ev.Dur*1e6)
		default:
			fmt.Fprintf(w, "%12.6fms %-12s %-24s %s\n", ev.At*1e3, ev.Component, ev.Name, ev.Detail)
		}
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", d)
	}
}

// WriteChromeTrace exports the ring as Chrome trace-event JSON (the
// "JSON array format"): one track (tid) per component under a single
// process, spans as matched B/E pairs, instants as "i", counters as
// "C". Timestamps are virtual microseconds. Output is deterministic:
// events appear in ring order and tids are assigned in order of first
// appearance.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	events := t.Events()
	tids := make(map[string]int)
	order := []string{}
	tidOf := func(component string) int {
		id, ok := tids[component]
		if !ok {
			id = len(tids) + 1
			tids[component] = id
			order = append(order, component)
		}
		return id
	}
	for _, ev := range events {
		tidOf(ev.Component)
	}

	bw := newErrWriter(w)
	bw.writeString("[\n")
	first := true
	emit := func(s string) {
		if !first {
			bw.writeString(",\n")
		}
		first = false
		bw.writeString(s)
	}
	// Thread-name metadata so Perfetto labels each component track.
	for _, comp := range order {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tids[comp], quoteJSON(comp)))
	}
	for _, ev := range events {
		ts := usec(ev.At)
		tid := tids[ev.Component]
		switch {
		case ev.Counter:
			emit(fmt.Sprintf(`{"name":%s,"ph":"C","pid":1,"tid":%d,"ts":%s,"args":{"value":%s}}`,
				quoteJSON(ev.Name), tid, ts, jsonFloat(ev.Value)))
		case ev.Dur > 0:
			args := fmt.Sprintf(`{"id":%d}`, ev.ID)
			emit(fmt.Sprintf(`{"name":%s,"ph":"B","pid":1,"tid":%d,"ts":%s,"args":%s}`,
				quoteJSON(ev.Name), tid, ts, args))
			emit(fmt.Sprintf(`{"name":%s,"ph":"E","pid":1,"tid":%d,"ts":%s}`,
				quoteJSON(ev.Name), tid, usec(ev.At+ev.Dur)))
		default:
			args := "{}"
			if ev.Detail != "" {
				args = fmt.Sprintf(`{"detail":%s}`, quoteJSON(ev.Detail))
			}
			emit(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s,"args":%s}`,
				quoteJSON(ev.Name), tid, ts, args))
		}
	}
	bw.writeString("\n]\n")
	return bw.err
}

// usec renders a virtual-seconds timestamp as microseconds with a
// deterministic shortest decimal representation.
func usec(sec float64) string { return jsonFloat(sec * 1e6) }

// jsonFloat formats a float deterministically for JSON.
func jsonFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// quoteJSON escapes a string for JSON (component/stage names are plain
// ASCII identifiers, so strconv.Quote is sufficient and deterministic).
func quoteJSON(s string) string { return strconv.Quote(s) }

// errWriter folds write errors so export code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}
