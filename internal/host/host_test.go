package host

import (
	"math"
	"testing"

	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

func TestPoolDefaults(t *testing.T) {
	e := sim.NewEnv()
	p := NewPool(e, CPUConfig{})
	if p.LogicalCores() != 48 {
		t.Fatalf("logical cores = %d, want 48", p.LogicalCores())
	}
}

func TestClaimSpreadsAcrossPhysicalFirst(t *testing.T) {
	e := sim.NewEnv()
	p := NewPool(e, CPUConfig{PhysCores: 4})
	var ids []int
	for i := 0; i < 8; i++ {
		c, err := p.Claim()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	// First four claims land on distinct physical cores (even ids),
	// then the siblings (odd ids).
	for i := 0; i < 4; i++ {
		if ids[i]%2 != 0 {
			t.Fatalf("claim order %v did not spread physical cores first", ids)
		}
	}
	for i := 4; i < 8; i++ {
		if ids[i]%2 != 1 {
			t.Fatalf("claim order %v did not fall back to siblings", ids)
		}
	}
	if _, err := p.Claim(); err == nil {
		t.Fatal("overclaim succeeded")
	}
}

func TestReleaseAllowsReclaim(t *testing.T) {
	e := sim.NewEnv()
	p := NewPool(e, CPUConfig{PhysCores: 1})
	a, _ := p.Claim()
	b, _ := p.Claim()
	a.Release()
	c, err := p.Claim()
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != a.ID() {
		t.Fatalf("reclaim got core %d, want %d", c.ID(), a.ID())
	}
	_ = b
}

func TestCompressRateSoloVsSMT(t *testing.T) {
	e := sim.NewEnv()
	p := NewPool(e, CPUConfig{PhysCores: 1})
	a, _ := p.Claim()
	b, _ := p.Claim()

	// Solo: 2.1 Gbps -> 4 KB takes 4096 / (2.1e9/8) s.
	var soloTime sim.Time
	e.Go("solo", func(proc *sim.Proc) {
		start := proc.Now()
		a.Compress(proc, 4096)
		soloTime = proc.Now() - start
	})
	e.Run(0)
	wantSolo := 4096 / (2.1e9 / 8)
	if math.Abs(soloTime-wantSolo) > wantSolo*0.01 {
		t.Fatalf("solo compress time %g, want %g", soloTime, wantSolo)
	}

	// Concurrent on both siblings: each at 1.35 Gbps.
	var t1, t2 sim.Time
	e.Go("a", func(proc *sim.Proc) {
		start := proc.Now()
		a.Compress(proc, 4096)
		t1 = proc.Now() - start
	})
	e.Go("b", func(proc *sim.Proc) {
		start := proc.Now()
		b.Compress(proc, 4096)
		t2 = proc.Now() - start
	})
	e.Run(0)
	wantPair := 4096 / (2.7e9 / 8 / 2)
	// The second starter samples a busy sibling; the first samples idle.
	// At least one of them must see the degraded rate.
	if t1 < wantSolo*0.99 && t2 < wantPair*0.99 {
		t.Fatalf("SMT contention not applied: t1=%g t2=%g", t1, t2)
	}
}

func TestDecompressFaster(t *testing.T) {
	e := sim.NewEnv()
	p := NewPool(e, CPUConfig{PhysCores: 1})
	c, _ := p.Claim()
	var ct, dt sim.Time
	e.Go("p", func(proc *sim.Proc) {
		s := proc.Now()
		c.Compress(proc, 1e6)
		ct = proc.Now() - s
		s = proc.Now()
		c.Decompress(proc, 1e6)
		dt = proc.Now() - s
	})
	e.Run(0)
	if ratio := ct / dt; math.Abs(ratio-7) > 0.1 {
		t.Fatalf("decompress speedup = %g, want 7", ratio)
	}
}

func TestParseAndWork(t *testing.T) {
	e := sim.NewEnv()
	p := NewPool(e, CPUConfig{PhysCores: 1, ParseTime: 1e-6})
	c, _ := p.Claim()
	e.Go("p", func(proc *sim.Proc) {
		c.Parse(proc)
		c.Work(proc, 5e-6)
		c.Work(proc, -1) // no-op
		c.Compress(proc, 0)
	})
	e.Run(0)
	if math.Abs(e.Now()-6e-6) > 1e-12 {
		t.Fatalf("parse+work time %g, want 6us", e.Now())
	}
}

func newNICRig(e *sim.Env) (*NIC, *rdma.Stack, *mem.System) {
	f := netsim.NewFabric(e, netsim.DefaultConfig())
	hm := mem.New(e, mem.DefaultConfig())
	nic := NewNIC(e, f, "mt", 12.5e9, pcie.DefaultConfig(), rdma.DefaultConfig(), hm)
	peer := rdma.NewStack(e, f.NewPort("client", 12.5e9), rdma.DefaultConfig())
	return nic, peer, hm
}

func TestNICReceiveChargesPCIeAndMemory(t *testing.T) {
	e := sim.NewEnv()
	nic, peer, hm := newNICRig(e)
	var delivered *rdma.Message
	qp := nic.CreateQP(func(_ *rdma.QP, m *rdma.Message) { delivered = m })
	rq := peer.CreateQP()
	rdma.Connect(qp, rq)

	m0 := hm.Snapshot()
	p0 := nic.PCIe().Snapshot()
	e.Go("client", func(p *sim.Proc) { p.Wait(rq.SendSized(nil, 1<<20)) })
	e.Run(0)
	if delivered == nil {
		t.Fatal("message not delivered to software")
	}
	m1 := hm.Snapshot()
	p1 := nic.PCIe().Snapshot()
	if got := p1.D2HBytes - p0.D2HBytes; got != 1<<20 {
		t.Fatalf("PCIe D2H = %g, want 1 MiB", got)
	}
	if got := m1.WriteBytes - m0.WriteBytes; got != 1<<20 {
		t.Fatalf("DRAM writes = %g, want 1 MiB", got)
	}
}

func TestNICSendChargesPCIeAndMemory(t *testing.T) {
	e := sim.NewEnv()
	nic, peer, hm := newNICRig(e)
	qp := nic.CreateQP(nil)
	rq := peer.CreateQP()
	rdma.Connect(qp, rq)
	got := 0
	rq.OnRecv = func(*rdma.Message) { got++ }

	m0 := hm.Snapshot()
	p0 := nic.PCIe().Snapshot()
	var ackErr interface{}
	e.Go("host", func(p *sim.Proc) { ackErr = p.Wait(nic.Send(qp, nil, 1<<20)) })
	e.Run(0)
	if got != 1 || ackErr != nil {
		t.Fatalf("send failed: got=%d err=%v", got, ackErr)
	}
	m1 := hm.Snapshot()
	p1 := nic.PCIe().Snapshot()
	if gotB := p1.H2DBytes - p0.H2DBytes; gotB != 1<<20 {
		t.Fatalf("PCIe H2D = %g", gotB)
	}
	if gotB := m1.ReadBytes - m0.ReadBytes; gotB != 1<<20 {
		t.Fatalf("DRAM reads = %g", gotB)
	}
}

func TestNICDDIOFractions(t *testing.T) {
	e := sim.NewEnv()
	nic, peer, hm := newNICRig(e)
	nic.MemWriteFraction = 0.25
	nic.MemReadFraction = 0
	qp := nic.CreateQP(func(*rdma.QP, *rdma.Message) {})
	rq := peer.CreateQP()
	rdma.Connect(qp, rq)

	m0 := hm.Snapshot()
	e.Go("client", func(p *sim.Proc) { p.Wait(rq.SendSized(nil, 1<<20)) })
	e.Go("host", func(p *sim.Proc) { p.Wait(nic.Send(qp, nil, 1<<20)) })
	e.Run(0)
	m1 := hm.Snapshot()
	if got := m1.WriteBytes - m0.WriteBytes; math.Abs(got-(1<<20)/4) > 1 {
		t.Fatalf("DDIO write fraction not applied: %g", got)
	}
	if got := m1.ReadBytes - m0.ReadBytes; got != 0 {
		t.Fatalf("DDIO read fraction not applied: %g", got)
	}
}

func TestNICRealDataPath(t *testing.T) {
	e := sim.NewEnv()
	nic, peer, _ := newNICRig(e)
	var got []byte
	qp := nic.CreateQP(func(_ *rdma.QP, m *rdma.Message) { got = m.Data })
	rq := peer.CreateQP()
	rdma.Connect(qp, rq)
	e.Go("client", func(p *sim.Proc) { p.Wait(rq.Send([]byte("payload"))) })
	e.Run(0)
	if string(got) != "payload" {
		t.Fatalf("real bytes lost: %q", got)
	}
}
