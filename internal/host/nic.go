package host

import (
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

// NIC is a plain host RDMA NIC (ConnectX-5-like): every received
// message is DMA-written across PCIe into host memory before software
// sees it, and every sent message is DMA-read back out. This is the
// network front end of the CPU-only and accelerator-enhanced baselines
// (paper Figure 1a/1b).
//
// The memory-traffic fractions model DDIO: MemWriteFraction is the
// share of received bytes that reach DRAM (evictions of retained
// buffers; 1 with DDIO off), MemReadFraction the share of sent bytes
// read from DRAM rather than LLC.
type NIC struct {
	env     *sim.Env
	stack   *rdma.Stack
	link    *pcie.Link
	hostMem *mem.System

	// MemWriteFraction and MemReadFraction scale how much of the DMA
	// traffic also hits DRAM. Defaults are 1 (no DDIO benefit).
	MemWriteFraction float64
	MemReadFraction  float64
}

// NewNIC creates a host NIC on the fabric.
func NewNIC(env *sim.Env, fabric *netsim.Fabric, addr netsim.Addr, portRate float64,
	pcieCfg pcie.Config, transport rdma.Config, hostMem *mem.System) *NIC {
	port := fabric.NewPort(addr, portRate)
	return &NIC{
		env:              env,
		stack:            rdma.NewStack(env, port, transport),
		link:             pcie.New(env, string(addr)+".pcie", pcieCfg),
		hostMem:          hostMem,
		MemWriteFraction: 1,
		MemReadFraction:  1,
	}
}

// Stack exposes the transport for connection setup.
func (n *NIC) Stack() *rdma.Stack { return n.stack }

// PCIe exposes the NIC's host link.
func (n *NIC) PCIe() *pcie.Link { return n.link }

// Addr returns the NIC's fabric address.
func (n *NIC) Addr() netsim.Addr { return n.stack.Addr() }

// CreateQP returns a QP whose receive path lands messages in host
// memory (PCIe D2H + DRAM write) before invoking onRecv with the QP
// the message arrived on.
func (n *NIC) CreateQP(onRecv func(*rdma.QP, *rdma.Message)) *rdma.QP {
	qp := n.stack.CreateQP()
	qp.OnRecv = func(m *rdma.Message) {
		n.env.Go("nic.rxdma", func(p *sim.Proc) {
			var waits []*sim.Event
			waits = append(waits, n.link.StartDMA(pcie.D2H, m.Size))
			if w := m.Size * n.MemWriteFraction; w > 0 {
				waits = append(waits, n.hostMem.StartWrite(w))
			}
			for _, ev := range waits {
				p.Wait(ev)
			}
			if onRecv != nil {
				onRecv(qp, m)
			}
		})
	}
	return qp
}

// Send transmits data that lives in host memory: DMA read over PCIe
// (plus the DRAM share) then the wire. The event fires on transport
// ACK.
func (n *NIC) Send(qp *rdma.QP, data []byte, size float64) *sim.Event {
	done := n.env.NewEvent()
	n.env.Go("nic.txdma", func(p *sim.Proc) {
		var waits []*sim.Event
		waits = append(waits, n.link.StartDMA(pcie.H2D, size))
		if r := size * n.MemReadFraction; r > 0 {
			waits = append(waits, n.hostMem.StartRead(r))
		}
		for _, ev := range waits {
			p.Wait(ev)
		}
		// SendSized keeps the modeled wire size even when only header
		// bytes are materialized (modeled-payload runs).
		done.Trigger(p.Wait(qp.SendSized(data, size)))
	})
	return done
}
