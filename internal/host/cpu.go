// Package host models the middle-tier server's host side: a CPU pool
// with SMT-aware software compression rates, and the plain host NIC
// (ConnectX-5-like) whose every message bounces through PCIe and host
// memory — the data path of the CPU-only and accelerator baselines.
package host

import (
	"fmt"

	"github.com/disagg/smartds/internal/sim"
)

// CPUConfig sets the processor parameters. Defaults are the paper's
// 2x Xeon Silver 4214 testbed.
type CPUConfig struct {
	PhysCores int // physical cores (24 across both sockets)
	// CompressBytesPerSec is software LZ4 throughput for a logical core
	// whose SMT sibling is idle (~2.1 Gbps).
	CompressBytesPerSec float64
	// SMTPairBytesPerSec is the combined throughput of two busy logical
	// cores on one physical core (~2.7 Gbps).
	SMTPairBytesPerSec float64
	// DecompressFactor is how much faster decompression runs (paper
	// §2.2.3 cites >7x).
	DecompressFactor float64
	// ParseTime is the per-message header-parse + bookkeeping cost.
	ParseTime float64
}

// DefaultCPUConfig returns the testbed parameters.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		PhysCores:           24,
		CompressBytesPerSec: 2.1e9 / 8,
		SMTPairBytesPerSec:  2.7e9 / 8,
		DecompressFactor:    7,
		ParseTime:           300e-9,
	}
}

// Pool is the set of logical cores (two per physical core).
type Pool struct {
	env   *sim.Env
	cfg   CPUConfig
	cores []*Core
}

// Core is one logical core. Middle-tier workers claim a core for their
// lifetime (pinned threads) and charge work to it; throughput of
// compression work depends on whether the SMT sibling is busy.
type Core struct {
	pool    *Pool
	id      int
	sibling *Core
	claimed bool
	busy    bool
	slot    *sim.Resource // serializes work charged by concurrent procs
}

// NewPool builds the core set.
func NewPool(env *sim.Env, cfg CPUConfig) *Pool {
	def := DefaultCPUConfig()
	if cfg.PhysCores <= 0 {
		cfg.PhysCores = def.PhysCores
	}
	if cfg.CompressBytesPerSec <= 0 {
		cfg.CompressBytesPerSec = def.CompressBytesPerSec
	}
	if cfg.SMTPairBytesPerSec <= 0 {
		cfg.SMTPairBytesPerSec = def.SMTPairBytesPerSec
	}
	if cfg.DecompressFactor <= 0 {
		cfg.DecompressFactor = def.DecompressFactor
	}
	if cfg.ParseTime <= 0 {
		cfg.ParseTime = def.ParseTime
	}
	p := &Pool{env: env, cfg: cfg}
	for i := 0; i < cfg.PhysCores; i++ {
		a := &Core{pool: p, id: 2 * i, slot: env.NewResource(fmt.Sprintf("core%d", 2*i), 1)}
		b := &Core{pool: p, id: 2*i + 1, slot: env.NewResource(fmt.Sprintf("core%d", 2*i+1), 1)}
		a.sibling, b.sibling = b, a
		p.cores = append(p.cores, a, b)
	}
	return p
}

// Config returns the effective configuration.
func (p *Pool) Config() CPUConfig { return p.cfg }

// LogicalCores returns the total logical core count.
func (p *Pool) LogicalCores() int { return len(p.cores) }

// Claim pins a worker to a free logical core. The scheduler fills
// distinct physical cores first (the OS-default spread policy the
// paper's core-count sweep implies: one logical core delivers 2.1 Gbps,
// the sibling adds only 0.6), then siblings.
func (p *Pool) Claim() (*Core, error) {
	// Pass 1: cores whose sibling is unclaimed.
	for _, c := range p.cores {
		if !c.claimed && !c.sibling.claimed {
			c.claimed = true
			return c, nil
		}
	}
	// Pass 2: any free logical core.
	for _, c := range p.cores {
		if !c.claimed {
			c.claimed = true
			return c, nil
		}
	}
	return nil, fmt.Errorf("host: all %d logical cores claimed", len(p.cores))
}

// Release unpins the core.
func (c *Core) Release() { c.claimed = false }

// ID returns the logical core id.
func (c *Core) ID() int { return c.id }

// compressRate returns the core's current software-LZ4 throughput,
// sampled from SMT sibling activity.
func (c *Core) compressRate() float64 {
	if c.sibling.busy {
		return c.pool.cfg.SMTPairBytesPerSec / 2
	}
	return c.pool.cfg.CompressBytesPerSec
}

// run charges busy time to the core. Concurrent charges from different
// procs queue FIFO, like tasks on one pinned thread. The duration
// function is evaluated once the core is actually acquired, so rates
// that depend on sibling activity sample the true start-time state.
func (c *Core) run(p *sim.Proc, duration func() float64) {
	c.slot.Acquire(p)
	c.busy = true
	p.Sleep(duration())
	c.busy = false
	c.slot.Release()
}

// QueueLen reports tasks waiting on this core (load metric).
func (c *Core) QueueLen() int { return c.slot.QueueLen() }

// Stats exposes the core's utilization counters.
func (c *Core) Stats() sim.ResourceStats { return c.slot.Snapshot() }

// Compress charges software LZ4 compression of n bytes. The rate is
// sampled at start (SMT interactions mid-operation are second-order).
func (c *Core) Compress(p *sim.Proc, n float64) {
	c.CompressSlowed(p, n, 1)
}

// CompressSlowed is Compress with a memory-stall slowdown factor (>= 1):
// software LZ4 is memory-intensive, so DRAM latency amplification under
// bus contention divides its effective rate (paper §5.3).
func (c *Core) CompressSlowed(p *sim.Proc, n, factor float64) {
	if n <= 0 {
		return
	}
	if factor < 1 {
		factor = 1
	}
	c.run(p, func() float64 { return n * factor / c.compressRate() })
}

// Decompress charges software LZ4 decompression of n (original) bytes.
func (c *Core) Decompress(p *sim.Proc, n float64) {
	if n <= 0 {
		return
	}
	c.run(p, func() float64 { return n / (c.compressRate() * c.pool.cfg.DecompressFactor) })
}

// Parse charges one header-parse + dispatch decision.
func (c *Core) Parse(p *sim.Proc) {
	c.run(p, func() float64 { return c.pool.cfg.ParseTime })
}

// Work charges an arbitrary busy interval (maintenance services).
func (c *Core) Work(p *sim.Proc, d float64) {
	if d <= 0 {
		return
	}
	c.run(p, func() float64 { return d })
}
