package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/sim"
)

// ReportSchema identifies the run-report JSON layout.
const ReportSchema = "smartds-run-report/v1"

// LatencySummary is the client-observed latency digest of one run.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_sec"`
	P50   float64 `json:"p50_sec"`
	P99   float64 `json:"p99_sec"`
	P999  float64 `json:"p999_sec"`
	Max   float64 `json:"max_sec"`
}

// SummarizeLatency converts a metrics.Summary.
func SummarizeLatency(s metrics.Summary) LatencySummary {
	return LatencySummary{Count: s.Count, Mean: s.Mean, P50: s.P50,
		P99: s.P99, P999: s.P999, Max: s.Max}
}

// TTR is one fault event's recovery time (negative: never recovered).
type TTR struct {
	Kind          string  `json:"kind"`
	Target        string  `json:"target"`
	Start         float64 `json:"start_sec"`
	TimeToRecover float64 `json:"ttr_sec"`
}

// FaultSummary carries the recovery metrics of a fault campaign into
// the run report (mirrors faults.Stats without importing it).
type FaultSummary struct {
	BaselineP99    float64 `json:"baseline_p99_sec"`
	MaxGap         float64 `json:"max_gap_sec"`
	Unavailable    float64 `json:"unavailable_sec"`
	ElevatedWindow float64 `json:"elevated_window_sec"`
	Errors         int     `json:"errors"`
	Recoveries     []TTR   `json:"recoveries,omitempty"`
}

// Alert is one fired SLO alert in the run report (mirrors slo.Alert
// without importing it). Byte-deterministic: alerts fire on the
// sim-time sampling grid, so same-seed runs report identical lists.
type Alert struct {
	SLO       string  `json:"slo"`
	Kind      string  `json:"kind"`
	Severity  string  `json:"severity"`
	At        float64 `json:"at_sec"`
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Detail    string  `json:"detail,omitempty"`
}

// CritpathSegment is one critical-path segment of an exemplar request.
type CritpathSegment struct {
	Stage string  `json:"stage"`
	Wait  bool    `json:"wait,omitempty"`
	Dur   float64 `json:"dur_sec"`
	Frac  float64 `json:"frac"`
}

// CritpathExemplar is one percentile exemplar request's full critical
// path: the segments tile its end-to-end latency exactly.
type CritpathExemplar struct {
	TraceID  string            `json:"trace_id"`
	E2E      float64           `json:"e2e_sec"`
	Segments []CritpathSegment `json:"segments"`
}

// CritpathStage is one stage's share of critical-path time across the
// run's sampled requests.
type CritpathStage struct {
	Stage    string  `json:"stage"`
	Wait     bool    `json:"wait,omitempty"`
	MeanFrac float64 `json:"mean_frac"`
	P99Frac  float64 `json:"p99_frac"`
	P999Frac float64 `json:"p999_frac"`
	MeanSec  float64 `json:"mean_sec"`
}

// CritpathSummary is the run's latency blame profile: per-stage
// critical-path attribution over every sampled request, with p99/p999
// exemplar drill-downs (mirrors critpath.Analysis without importing it).
type CritpathSummary struct {
	Requests int             `json:"requests"`
	Stages   []CritpathStage `json:"stages"`
	P99      *CritpathExemplar `json:"p99,omitempty"`
	P999     *CritpathExemplar `json:"p999,omitempty"`
}

// RunRecord is one cluster.Run's machine-readable result. Matched
// across reports by (Experiment, Design, Seq).
type RunRecord struct {
	Experiment string `json:"experiment"`
	Design     string `json:"design"`
	Protocol   string `json:"protocol,omitempty"`
	Seq        int    `json:"seq"`
	Seed       uint64 `json:"seed"`

	Duration      float64 `json:"duration_sec"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	ThroughputBps float64 `json:"throughput_bytes_per_sec"`
	ReqPerSec     float64 `json:"req_per_sec"`

	// SimEvents counts calendar entries the simulator dispatched during
	// this run. It is a deterministic function of the seed (same-seed
	// runs report identical values), unlike the wall-clock SimPerf block.
	SimEvents uint64 `json:"sim_events"`

	Latency  LatencySummary     `json:"latency"`
	Counters map[string]float64 `json:"counters,omitempty"`
	Faults   *FaultSummary      `json:"faults,omitempty"`
	Alerts   []Alert            `json:"alerts,omitempty"`
	Critpath *CritpathSummary   `json:"critpath,omitempty"`
}

// Key is the cross-report matching identity of a run.
func (rr *RunRecord) Key() string {
	return rr.Experiment + "/" + rr.Design + "#" + strconv.Itoa(rr.Seq)
}

// RunScope binds one cluster run to the registry: instruments
// registered through it share the (exp, design, run) labels, get
// sampled together, and their finals land in the run's record.
type RunScope struct {
	reg     *Registry
	rec     *RunRecord
	labels  LabelSet
	metrics []*Metric
	short   map[*Metric]string

	// Label-budget state (see budget.go): per-name registration counts
	// and the overflow series absorbing over-budget registrations.
	perName  map[string]int
	overflow map[string]*Metric
}

// NewRun opens a scope for one cluster run. Seq is assigned per
// (experiment, design) in creation order, so same-seed executions
// produce identical keys.
func (r *Registry) NewRun(experiment, design string, seed uint64) *RunScope {
	if experiment == "" {
		experiment = "adhoc"
	}
	seqKey := experiment + "/" + design
	seq := r.runSeq[seqKey]
	r.runSeq[seqKey] = seq + 1
	rec := &RunRecord{Experiment: experiment, Design: design, Seq: seq, Seed: seed}
	r.runs = append(r.runs, rec)
	return &RunScope{
		reg: r,
		rec: rec,
		labels: MakeLabels(map[string]string{
			"exp": experiment, "design": design, "run": strconv.Itoa(seq),
		}),
		short: make(map[*Metric]string),
	}
}

// Record returns the scope's run record.
func (sc *RunScope) Record() *RunRecord { return sc.rec }

// SetProtocol stamps the run with the replication protocol it used:
// the record carries it for report readers, and every instrument
// registered afterwards gains a "protocol" label so per-protocol runs
// of the same experiment/design stay distinguishable in metric dumps.
// Call before registering instruments.
func (sc *RunScope) SetProtocol(p string) {
	if p == "" {
		return
	}
	sc.rec.Protocol = p
	sc.labels = sc.mergeLabels(map[string]string{"protocol": p})
}

// scoped merges extra dimensions into the scope labels and remembers
// the metric plus its short (scope-independent) counter key.
func (sc *RunScope) scoped(m *Metric, name string, extra map[string]string) *Metric {
	sc.metrics = append(sc.metrics, m)
	sc.short[m] = name + MakeLabels(extra).String()
	return m
}

func (sc *RunScope) mergeLabels(extra map[string]string) LabelSet {
	ls := sc.labels
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ls = ls.With(k, extra[k])
	}
	return ls
}

// CounterFunc registers a pull counter under the scope's labels. Past
// the registry's label budget the callback folds into the scope's
// overflow series instead (its value is the sum of every fold).
func (sc *RunScope) CounterFunc(name, help string, extra map[string]string, fn func() float64) *Metric {
	if sc.overBudget(name) {
		m := sc.overflowFor(name, help, KindCounter)
		m.reads = append(m.reads, fn)
		m.folded++
		return m
	}
	return sc.scoped(sc.reg.CounterFunc(name, help, sc.mergeLabels(extra), fn), name, extra)
}

// GaugeFunc registers a pull gauge under the scope's labels (folding
// past the label budget like CounterFunc).
func (sc *RunScope) GaugeFunc(name, help string, extra map[string]string, fn func() float64) *Metric {
	if sc.overBudget(name) {
		m := sc.overflowFor(name, help, KindGauge)
		m.reads = append(m.reads, fn)
		m.folded++
		return m
	}
	return sc.scoped(sc.reg.GaugeFunc(name, help, sc.mergeLabels(extra), fn), name, extra)
}

// Histogram registers a histogram under the scope's labels. Past the
// label budget the histogram folds into the overflow series, whose
// exported buckets are the merge of every folded source.
func (sc *RunScope) Histogram(name, help string, extra map[string]string, h *metrics.Histogram) *Metric {
	if sc.overBudget(name) {
		m := sc.overflowFor(name, help, KindHistogram)
		m.srcHists = append(m.srcHists, h)
		m.folded++
		return m
	}
	return sc.scoped(sc.reg.Histogram(name, help, sc.mergeLabels(extra), h), name, extra)
}

// StartSampling begins ring-buffered time-series recording of every
// scope counter/gauge on the registry's sim-clock cadence until stop.
func (sc *RunScope) StartSampling(env *sim.Env, stop float64) *Sampler {
	s := sc.reg.NewSampler(env, sc.metrics)
	s.Run(stop)
	return s
}

// RecordResults fills the run record with the measured outcome and
// snapshots every scope counter/gauge final under its short key.
func (sc *RunScope) RecordResults(duration float64, requests, errors uint64,
	throughputBps, reqPerSec float64, lat metrics.Summary) {
	sc.rec.Duration = duration
	sc.rec.Requests = requests
	sc.rec.Errors = errors
	sc.rec.ThroughputBps = throughputBps
	sc.rec.ReqPerSec = reqPerSec
	sc.rec.Latency = SummarizeLatency(lat)
	finals := make(map[string]float64, len(sc.metrics))
	for _, m := range sc.metrics {
		if m.kind == KindHistogram {
			continue
		}
		finals[sc.short[m]] = m.Value()
	}
	sc.rec.Counters = finals
}

// RecordFaults attaches a fault campaign's recovery summary.
func (sc *RunScope) RecordFaults(fs FaultSummary) { sc.rec.Faults = &fs }

// RecordCritpath attaches the run's latency blame profile.
func (sc *RunScope) RecordCritpath(cs CritpathSummary) { sc.rec.Critpath = &cs }

// RecordAlerts attaches the SLO engine's fired alerts (already in
// deterministic fire order).
func (sc *RunScope) RecordAlerts(alerts []Alert) { sc.rec.Alerts = alerts }

// RecordSimEvents attaches the simulator's dispatched-event count for
// this run (callers diff Env.Events() across the run).
func (sc *RunScope) RecordSimEvents(n uint64) { sc.rec.SimEvents = n }

// MetricFinal is one metric's end-of-run value in the report.
type MetricFinal struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value"`
}

// SeriesEntry is one sampled series' digest in the report.
type SeriesEntry struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Digest Digest            `json:"digest"`
}

// ExemplarEntry is one histogram bucket's exemplar in the report: the
// link from a latency bucket to a kept (head-sampled) trace ID.
type ExemplarEntry struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Le      string            `json:"le"`
	Value   float64           `json:"value"`
	TraceID string            `json:"trace_id"`
	At      float64           `json:"at_sec"`
}

// SimPerf is the wall-clock performance of the simulator itself over
// one harness invocation. It is measured, not simulated — two same-seed
// runs report different SimPerf — so BuildReport never fills it; only
// the top-level command attaches it after the deterministic report is
// assembled (the determinism golden tests compare reports byte-for-byte
// before that point).
type SimPerf struct {
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// Report is the machine-readable record of one harness invocation:
// what ran, with which knobs, and every number the run produced.
type Report struct {
	Schema    string            `json:"schema"`
	Name      string            `json:"name"`
	Seed      uint64            `json:"seed"`
	Quick     bool              `json:"quick"`
	Config    map[string]string `json:"config,omitempty"`
	Runs      []*RunRecord      `json:"runs"`
	Finals    []MetricFinal     `json:"counters"`
	Series    []SeriesEntry     `json:"series,omitempty"`
	Exemplars []ExemplarEntry   `json:"exemplars,omitempty"`
	SimPerf   *SimPerf          `json:"sim_perf,omitempty"`
}

// BuildReport assembles the report from everything the registry has
// seen. Metric order is canonical (sorted by name then labels).
func (r *Registry) BuildReport(name string, seed uint64, quick bool, config map[string]string) *Report {
	rep := &Report{
		Schema: ReportSchema,
		Name:   name,
		Seed:   seed,
		Quick:  quick,
		Config: config,
		Runs:   r.runs,
	}
	for _, m := range r.Metrics() {
		if m.kind != KindHistogram {
			rep.Finals = append(rep.Finals, MetricFinal{
				Name: m.name, Labels: m.labels.Map(), Kind: m.kind.String(), Value: m.Value(),
			})
		}
		if m.series != nil {
			rep.Series = append(rep.Series, SeriesEntry{
				Name: m.name, Labels: m.labels.Map(), Digest: m.series.Digest(),
			})
		}
		for _, le := range m.ExemplarBounds() {
			ex, _ := m.ExemplarFor(le)
			rep.Exemplars = append(rep.Exemplars, ExemplarEntry{
				Name: m.name, Labels: m.labels.Map(), Le: omLe(le),
				Value: ex.Value, TraceID: FormatTraceID(ex.TraceID), At: ex.At,
			})
		}
	}
	return rep
}

// WriteReport encodes the report as stable, indented JSON.
func WriteReport(w io.Writer, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encode report: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadReport parses a report and validates its schema tag.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("telemetry: decode report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("telemetry: unexpected report schema %q (want %q)", rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// LoadReport reads a report file.
func LoadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
