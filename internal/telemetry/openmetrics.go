package telemetry

import (
	"io"
	"math"
	"strconv"
)

// WriteOpenMetrics exports a point-in-time snapshot of every
// registered metric in the OpenMetrics / Prometheus text exposition
// format. Output is deterministic: metric families appear sorted by
// name, series sorted by label set, and histogram buckets in ascending
// le order (only boundaries where the cumulative count changes are
// emitted, plus the mandatory +Inf bucket).
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	ew := &omWriter{w: w}
	prevFamily := ""
	for _, m := range r.Metrics() {
		if m.name != prevFamily {
			prevFamily = m.name
			if m.help != "" {
				ew.line("# HELP " + m.name + " " + m.help)
			}
			ew.line("# TYPE " + m.name + " " + m.kind.String())
		}
		switch m.kind {
		case KindHistogram:
			ew.histogram(m)
		default:
			ew.sample(m.name, m.labels, m.Value())
		}
	}
	ew.line("# EOF")
	return ew.err
}

// omWriter folds write errors so the exporter stays linear.
type omWriter struct {
	w   io.Writer
	err error
}

func (ew *omWriter) line(s string) {
	if ew.err != nil {
		return
	}
	_, ew.err = io.WriteString(ew.w, s+"\n")
}

func (ew *omWriter) sample(name string, labels LabelSet, v float64) {
	ew.line(name + labels.String() + " " + omFloat(v))
}

// histogram emits the cumulative _bucket/_sum/_count triplet. Buckets
// holding an exemplar carry it in OpenMetrics exemplar syntax
// (`# {trace_id="..."} value timestamp`), linking the bucket to a kept
// trace. Overflow series export the merge of their folded sources.
func (ew *omWriter) histogram(m *Metric) {
	h := m.snapshotHist()
	prev := uint64(0)
	first := true
	for _, b := range h.Buckets() {
		// Skip interior boundaries that add no information; the first
		// bucket and +Inf always appear so the family is well formed.
		if !first && !math.IsInf(b.UpperBound, 1) && b.Count == prev {
			continue
		}
		first = false
		prev = b.Count
		line := m.name + "_bucket" + m.labels.With("le", omLe(b.UpperBound)).String() +
			" " + omFloat(float64(b.Count))
		if ex, ok := m.ExemplarFor(b.UpperBound); ok {
			line += " # {trace_id=" + quote(FormatTraceID(ex.TraceID)) + "} " +
				omFloat(ex.Value) + " " + omFloat(ex.At)
		}
		ew.line(line)
	}
	ew.sample(m.name+"_sum", m.labels, h.Sum())
	ew.sample(m.name+"_count", m.labels, float64(h.Count()))
}

// omFloat renders a value in the shortest round-trip decimal form.
func omFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// omLe renders a bucket boundary for the le label.
func omLe(v float64) string { return omFloat(v) }
