package telemetry

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/sim"
)

func TestLabelSetCanonical(t *testing.T) {
	ls := MakeLabels(map[string]string{"b": "2", "a": "1", "c": "3"})
	if got := ls.String(); got != `{a="1",b="2",c="3"}` {
		t.Fatalf("labels = %s", got)
	}
	with := ls.With("ab", "x")
	if got := with.String(); got != `{a="1",ab="x",b="2",c="3"}` {
		t.Fatalf("With = %s", got)
	}
	if got := ls.String(); got != `{a="1",b="2",c="3"}` {
		t.Fatalf("With mutated receiver: %s", got)
	}
	esc := MakeLabels(map[string]string{"p": "a\"b\\c\nd"})
	if got := esc.String(); got != `{p="a\"b\\c\nd"}` {
		t.Fatalf("escaping = %s", got)
	}
	if LabelSet(nil).String() != "" {
		t.Fatalf("empty set must render empty")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", nil)
	c.Add(3)
	c.Add(2)
	if c.Value() != 5 {
		t.Fatalf("counter = %g", c.Value())
	}
	g := r.Gauge("depth", "queue depth", MakeLabels(map[string]string{"port": "0"}))
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %g", g.Value())
	}
	x := 0.0
	r.GaugeFunc("pull", "pull gauge", nil, func() float64 { return x })
	x = 42
	if m := r.Lookup("pull", nil); m == nil || m.Value() != 42 {
		t.Fatalf("pull gauge lookup/value failed")
	}

	// Canonical ordering: sorted by name then labels.
	names := make([]string, 0)
	for _, m := range r.Metrics() {
		names = append(names, m.key())
	}
	want := []string{"depth{port=\"0\"}", "pull", "reqs_total"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("order[%d] = %s, want %s", i, names[i], w)
		}
	}

	// Duplicate registration and counter contract violations panic.
	mustPanic(t, func() { r.Counter("reqs_total", "", nil) })
	mustPanic(t, func() { c.Add(-1) })
	mustPanic(t, func() { c.Set(1) })
	mustPanic(t, func() { g.Add(1) })
	mustPanic(t, func() { r.Histogram("h", "", nil, nil) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	fn()
}

func TestSeriesRing(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 6; i++ {
		s.Append(float64(i), float64(i*10))
	}
	if s.Len() != 4 || s.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", s.Len(), s.Dropped())
	}
	pts := s.Points()
	for i, p := range pts {
		if p.At != float64(i+2) {
			t.Fatalf("point %d at %g, want %g (chronological unwrap)", i, p.At, float64(i+2))
		}
	}
	d := s.Digest()
	if d.Points != 4 || d.First != 20 || d.Last != 50 || d.Min != 20 || d.Max != 50 || d.Mean != 35 {
		t.Fatalf("digest = %+v", d)
	}
}

func TestSamplerVirtualTimeGrid(t *testing.T) {
	env := sim.NewEnv()
	r := NewRegistry()
	r.SampleInterval = 1e-3
	val := 0.0
	g := r.GaugeFunc("load", "", nil, func() float64 { return val })
	h := r.Histogram("lat", "", nil, metrics.NewLatencyHistogram())
	s := r.NewSampler(env, []*Metric{g, h})
	env.After(2.5e-3, func() { val = 9 })
	s.Run(5e-3)
	env.Run(1)
	if s.Samples() != 5 {
		t.Fatalf("samples = %d, want 5", s.Samples())
	}
	pts := g.Series().Points()
	if len(pts) != 5 {
		t.Fatalf("series len = %d", len(pts))
	}
	if pts[0].At != 1e-3 || pts[4].At != 5e-3 {
		t.Fatalf("grid = %g..%g", pts[0].At, pts[4].At)
	}
	if pts[1].Value != 0 || pts[2].Value != 9 {
		t.Fatalf("sample values = %g, %g; want 0 then 9", pts[1].Value, pts[2].Value)
	}
	if h.Series() != nil {
		t.Fatalf("histograms must not be sampled")
	}
}

func TestOpenMetricsSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("smartds_requests_total", "Completed requests.", MakeLabels(map[string]string{"design": "SmartDS-1"}))
	c.Add(12)
	h := metrics.NewLatencyHistogram()
	h.Record(5e-6)
	h.Record(5e-6)
	h.Record(2e-3)
	r.Histogram("smartds_latency_seconds", "Client latency.", nil, h)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP smartds_requests_total Completed requests.\n",
		"# TYPE smartds_requests_total counter\n",
		"smartds_requests_total{design=\"SmartDS-1\"} 12\n",
		"# TYPE smartds_latency_seconds histogram\n",
		"smartds_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"smartds_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing EOF terminator")
	}

	// Bucket lines: cumulative counts must be monotone and end at 3; the
	// compaction must keep first and +Inf buckets.
	prev := -1.0
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "smartds_latency_seconds_bucket") {
			continue
		}
		buckets++
		f := line[strings.LastIndex(line, " ")+1:]
		v, err := parseFloat(f)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < prev {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		prev = v
	}
	if buckets < 3 {
		t.Fatalf("expected >=3 bucket lines, got %d", buckets)
	}
	if prev != 3 {
		t.Fatalf("last bucket = %g, want 3", prev)
	}

	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteOpenMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("repeated export differs")
	}
}

func parseFloat(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func TestRunScopeReport(t *testing.T) {
	env := sim.NewEnv()
	r := NewRegistry()
	r.SampleInterval = 1e-3

	sc := r.NewRun("peak", "SmartDS-1", 42)
	done := 0.0
	sc.CounterFunc("smartds_requests_total", "", nil, func() float64 { return done })
	h := metrics.NewLatencyHistogram()
	sc.Histogram("smartds_latency_seconds", "", nil, h)
	sc.StartSampling(env, 5e-3)
	env.After(2e-3, func() { done = 100; h.Record(10e-6) })
	env.Run(1)

	sc.RecordResults(5e-3, 100, 0, 2e9, 20000, h.Summarize())
	sc.RecordFaults(FaultSummary{MaxGap: 1e-3, Recoveries: []TTR{{Kind: "kill", Target: "s0", Start: 1e-3, TimeToRecover: 2e-3}}})

	sc2 := r.NewRun("peak", "SmartDS-1", 42)
	if sc2.Record().Seq != 1 {
		t.Fatalf("second run seq = %d, want 1", sc2.Record().Seq)
	}
	if sc.Record().Key() != "peak/SmartDS-1#0" {
		t.Fatalf("key = %s", sc.Record().Key())
	}

	rep := r.BuildReport("bench", 42, true, map[string]string{"exp": "peak"})
	if len(rep.Runs) != 2 || rep.Runs[0].Requests != 100 {
		t.Fatalf("runs = %+v", rep.Runs)
	}
	if rep.Runs[0].Counters["smartds_requests_total"] != 100 {
		t.Fatalf("counter final = %v", rep.Runs[0].Counters)
	}
	if rep.Runs[0].Faults == nil || rep.Runs[0].Faults.MaxGap != 1e-3 {
		t.Fatalf("faults = %+v", rep.Runs[0].Faults)
	}
	if len(rep.Series) != 1 || rep.Series[0].Digest.Points != 5 {
		t.Fatalf("series = %+v", rep.Series)
	}

	// Round trip: write → read → byte-identical re-write.
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteReport(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("report round trip not byte-stable")
	}

	// Bad schema must be rejected.
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus"}`)); err == nil {
		t.Fatalf("bogus schema accepted")
	}
}

func TestSeriesExports(t *testing.T) {
	env := sim.NewEnv()
	r := NewRegistry()
	r.SampleInterval = 1e-3
	sc := r.NewRun("peak", "CPU-only", 1)
	v := 0.0
	sc.GaugeFunc("smartds_port_rate", "", map[string]string{"port": "0"}, func() float64 { v += 1; return v })
	sc.StartSampling(env, 3e-3)
	env.Run(1)

	var csv bytes.Buffer
	if err := r.WriteSeriesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if lines[0] != "metric,labels,t_sec,value" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("csv rows = %d, want 3+header:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[1], "smartds_port_rate,\"{") {
		t.Fatalf("csv row = %q", lines[1])
	}

	var js bytes.Buffer
	if err := r.WriteSeriesJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"name": "smartds_port_rate"`) {
		t.Fatalf("json dump missing series name:\n%s", js.String())
	}
}

func TestCompareGate(t *testing.T) {
	mkReport := func(tput, p999 float64, errs uint64) *Report {
		return &Report{
			Schema: ReportSchema,
			Runs: []*RunRecord{{
				Experiment: "peak", Design: "SmartDS-1", Seq: 0,
				Requests: 1000, Errors: errs, ThroughputBps: tput,
				Latency: LatencySummary{Count: 1000, P999: p999},
			}},
		}
	}
	g := DefaultGate()

	// Identical reports pass.
	base := mkReport(10e9, 100e-6, 0)
	deltas, viol := Compare(base, mkReport(10e9, 100e-6, 0), g)
	if len(viol) != 0 || len(deltas) != 1 {
		t.Fatalf("self-compare: viol=%v", viol)
	}

	// 10% throughput drop fails the 5% gate.
	_, viol = Compare(base, mkReport(9e9, 100e-6, 0), g)
	if len(viol) == 0 {
		t.Fatalf("10%% drop passed the gate")
	}

	// 4% drop passes.
	_, viol = Compare(base, mkReport(9.6e9, 100e-6, 0), g)
	if len(viol) != 0 {
		t.Fatalf("4%% drop failed: %v", viol)
	}

	// p999 inflation above floor fails; below floor is ignored.
	_, viol = Compare(base, mkReport(10e9, 200e-6, 0), g)
	if len(viol) == 0 {
		t.Fatalf("2x p999 inflation passed")
	}
	tiny := mkReport(10e9, 5e-6, 0)
	_, viol = Compare(tiny, mkReport(10e9, 9e-6, 0), g)
	if len(viol) != 0 {
		t.Fatalf("sub-floor p999 noise failed: %v", viol)
	}

	// New errors fail.
	_, viol = Compare(base, mkReport(10e9, 100e-6, 3), g)
	if len(viol) == 0 {
		t.Fatalf("error growth passed")
	}

	// Missing run fails.
	_, viol = Compare(base, &Report{Schema: ReportSchema}, g)
	if len(viol) == 0 {
		t.Fatalf("vanished run passed")
	}

	// Table renders every matched run.
	deltas, _ = Compare(base, mkReport(9e9, 100e-6, 0), g)
	if out := ComparisonTable(deltas).String(); !strings.Contains(out, "FAIL") {
		t.Fatalf("table missing verdict:\n%s", out)
	}
}
