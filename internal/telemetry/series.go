package telemetry

import (
	"github.com/disagg/smartds/internal/sim"
)

// Point is one time-series sample in virtual time.
type Point struct {
	At    float64 `json:"t"`
	Value float64 `json:"v"`
}

// Series is a bounded ring of samples. Once full, the oldest points
// are overwritten (and counted dropped) so long runs keep flat memory.
type Series struct {
	cap     int
	pts     []Point
	next    int
	wrapped bool
	dropped uint64
}

// NewSeries creates a ring holding up to capacity points.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Series{cap: capacity, pts: make([]Point, 0, capacity)}
}

// Append records one sample.
func (s *Series) Append(at, v float64) {
	if len(s.pts) < s.cap {
		s.pts = append(s.pts, Point{At: at, Value: v})
		return
	}
	s.pts[s.next] = Point{At: at, Value: v}
	s.next = (s.next + 1) % s.cap
	s.wrapped = true
	s.dropped++
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.pts) }

// Dropped reports points overwritten by the ring.
func (s *Series) Dropped() uint64 { return s.dropped }

// Points returns the retained samples in chronological order.
func (s *Series) Points() []Point {
	if !s.wrapped {
		return append([]Point(nil), s.pts...)
	}
	out := make([]Point, 0, s.cap)
	out = append(out, s.pts[s.next:]...)
	out = append(out, s.pts[:s.next]...)
	return out
}

// Digest summarizes a series for the run report: enough to diff two
// runs without shipping every point.
type Digest struct {
	Points  int     `json:"points"`
	Dropped uint64  `json:"dropped,omitempty"`
	First   float64 `json:"first"`
	Last    float64 `json:"last"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
}

// Digest computes the series summary (zero value when empty).
func (s *Series) Digest() Digest {
	pts := s.Points()
	d := Digest{Points: len(pts), Dropped: s.dropped}
	if len(pts) == 0 {
		return d
	}
	d.First = pts[0].Value
	d.Last = pts[len(pts)-1].Value
	d.Min = pts[0].Value
	d.Max = pts[0].Value
	sum := 0.0
	for _, p := range pts {
		if p.Value < d.Min {
			d.Min = p.Value
		}
		if p.Value > d.Max {
			d.Max = p.Value
		}
		sum += p.Value
	}
	d.Mean = sum / float64(len(pts))
	return d
}

// Sampler walks a metric set on a fixed virtual-time grid, appending
// each counter/gauge reading to its ring series. Histograms are not
// sampled (their summaries land in the run report instead).
type Sampler struct {
	reg      *Registry
	env      *sim.Env
	interval float64
	metrics  []*Metric
	samples  uint64
}

// NewSampler prepares sampling for the given metrics at the registry's
// configured cadence. Metrics gain a series ring on first use.
func (r *Registry) NewSampler(env *sim.Env, ms []*Metric) *Sampler {
	interval := r.SampleInterval
	if interval <= 0 {
		interval = 100e-6
	}
	keep := make([]*Metric, 0, len(ms))
	for _, m := range ms {
		if m.kind == KindHistogram {
			continue
		}
		if m.series == nil {
			m.series = NewSeries(r.SeriesCap)
		}
		keep = append(keep, m)
	}
	return &Sampler{reg: r, env: env, interval: interval, metrics: keep}
}

// Run samples on the virtual-time grid (start+i*interval] until the
// stop time, inclusive of one final sample at or past stop. The grid
// rides the environment's shared Ticker for the interval: all samplers
// (and the trace counter sampler) at the same cadence share one
// calendar entry per tick instead of each running its own timer chain.
// Scheduling stays on the deterministic sim calendar, so same-seed runs
// sample at identical instants.
func (s *Sampler) Run(stop float64) {
	if len(s.metrics) == 0 {
		return
	}
	s.env.Ticker(s.interval).Subscribe(stop, s.sampleOnce)
}

// sampleOnce appends one reading per metric at the current instant.
//
//cold:periodic sampling; series growth is amortized and off the data path
func (s *Sampler) sampleOnce() {
	now := s.env.Now()
	s.samples++
	for _, m := range s.metrics {
		m.series.Append(now, m.Value())
	}
}

// Samples reports how many grid ticks have fired.
func (s *Sampler) Samples() uint64 { return s.samples }
