package telemetry

import (
	"sort"
	"strconv"

	"github.com/disagg/smartds/internal/metrics"
)

// Cardinality control: at cluster scale (the ROADMAP's 10^5 simulated
// volumes) per-entity label sets would mean 10^5 live series per
// metric family. Two mechanisms bound that:
//
//   - Label budgets: a run scope registers at most Registry.LabelBudget
//     distinct series per metric name; registrations past the budget
//     fold deterministically into one overflow series labeled
//     overflow="other" (pull callbacks are summed, histograms merged at
//     export). Registration order is deterministic, so which series
//     overflow is too.
//
//   - Roll-ups: AddRollup derives an aggregate family from a source
//     family by dropping label keys (per-tenant → per-shard → cluster),
//     so dashboards read one rolled-up series while the budgeted
//     per-entity view stays bounded. Roll-ups materialize at export
//     time from whatever series exist (including overflow), cost
//     nothing per sample, and are idempotent per destination name.

// Exemplar ties one recorded sample to the trace that produced it: the
// bridge from a latency bucket to a kept trace ID.
type Exemplar struct {
	Value   float64 // the sample
	TraceID uint64  // head-sampled trace correlation id
	At      float64 // virtual seconds
}

// RecordExemplar attaches an exemplar to a histogram metric's bucket
// (keyed by the `le` boundary the sample incremented; the latest
// exemplar per bucket wins, which is deterministic because completions
// arrive in calendar order). No-op on non-histogram metrics.
func (m *Metric) RecordExemplar(v float64, traceID uint64, at float64) {
	if m == nil || m.hist == nil {
		return
	}
	if m.exemplars == nil {
		m.exemplars = make(map[float64]Exemplar)
	}
	m.exemplars[m.hist.UpperBoundFor(v)] = Exemplar{Value: v, TraceID: traceID, At: at}
}

// ExemplarFor returns the exemplar stored for the bucket boundary, if
// any.
func (m *Metric) ExemplarFor(le float64) (Exemplar, bool) {
	ex, ok := m.exemplars[le]
	return ex, ok
}

// ExemplarBounds returns the bucket boundaries holding exemplars in
// ascending order (the canonical export order).
func (m *Metric) ExemplarBounds() []float64 {
	if len(m.exemplars) == 0 {
		return nil
	}
	out := make([]float64, 0, len(m.exemplars))
	for le := range m.exemplars {
		out = append(out, le)
	}
	sort.Float64s(out)
	return out
}

// Folded reports how many over-budget series were folded into this
// overflow metric (0 for ordinary metrics).
func (m *Metric) Folded() int { return m.folded }

// snapshotHist returns the histogram view to export: the wrapped
// histogram itself, or — for an overflow series — a fresh merge of
// every folded source histogram.
func (m *Metric) snapshotHist() *metrics.Histogram {
	if len(m.srcHists) == 0 {
		return m.hist
	}
	merged := metrics.NewLatencyHistogram()
	for _, h := range m.srcHists {
		merged.Merge(h)
	}
	return merged
}

// foldValue is the scalar reading of an overflow counter/gauge: the sum
// of every folded pull callback.
func (m *Metric) foldValue() float64 {
	var v float64
	for _, fn := range m.reads {
		v += fn()
	}
	return v
}

// overflowFor returns (creating on first use) the scope's overflow
// series for a metric name: the scope labels plus overflow="other".
func (sc *RunScope) overflowFor(name, help string, kind Kind) *Metric {
	if sc.overflow == nil {
		sc.overflow = make(map[string]*Metric)
	}
	if m, ok := sc.overflow[name]; ok {
		if m.kind != kind {
			panic("telemetry: mixed-kind overflow on " + name)
		}
		return m
	}
	labels := sc.mergeLabels(map[string]string{"overflow": "other"})
	m := &Metric{name: name, help: help, kind: kind, labels: labels}
	switch kind {
	case KindHistogram:
		// The exported histogram is the merge of the folded sources;
		// keep a placeholder so Kind-dispatch sites see a histogram.
		m.hist = metrics.NewLatencyHistogram()
	default:
		m.read = m.foldValue
	}
	sc.reg.register(m)
	sc.overflow[name] = m
	sc.metrics = append(sc.metrics, m)
	sc.short[m] = name + MakeLabels(map[string]string{"overflow": "other"}).String()
	return m
}

// overBudget counts a registration against the scope's per-name budget
// and reports whether it must fold into the overflow series.
func (sc *RunScope) overBudget(name string) bool {
	budget := sc.reg.LabelBudget
	if budget <= 0 {
		return false
	}
	if sc.perName == nil {
		sc.perName = make(map[string]int)
	}
	sc.perName[name]++
	return sc.perName[name] > budget
}

// rollupRule derives dst from src by dropping label keys.
type rollupRule struct {
	src, dst string
	help     string
	drop     []string
}

// AddRollup registers a hierarchical roll-up: every series of the src
// family is re-grouped with the listed label keys dropped and exported
// as the dst family (counters and gauges sum; histograms merge).
// Typical chain: drop "tenant" for a per-shard view, then "shard" for
// the cluster view. Idempotent per dst name.
func (r *Registry) AddRollup(src, dst, help string, dropKeys ...string) {
	for _, rule := range r.rollups {
		if rule.dst == dst {
			return
		}
	}
	drop := append([]string(nil), dropKeys...)
	sort.Strings(drop)
	r.rollups = append(r.rollups, rollupRule{src: src, dst: dst, help: help, drop: drop})
}

// materializeRollups builds the derived metrics for every rule from the
// current registry contents. Output order is deterministic: rules in
// registration order, groups sorted by reduced label set.
func (r *Registry) materializeRollups() []*Metric {
	var out []*Metric
	for _, rule := range r.rollups {
		groups := make(map[string]*Metric)
		var order []string
		for _, m := range r.metrics {
			if m.name != rule.src {
				continue
			}
			reduced := dropLabels(m.labels, rule.drop)
			key := reduced.String()
			g, ok := groups[key]
			if !ok {
				g = &Metric{name: rule.dst, help: rule.help, kind: m.kind, labels: reduced}
				if m.kind == KindHistogram {
					g.hist = metrics.NewLatencyHistogram()
				}
				groups[key] = g
				order = append(order, key)
			}
			if g.kind != m.kind {
				panic("telemetry: rollup " + rule.dst + " mixes metric kinds")
			}
			switch m.kind {
			case KindHistogram:
				g.hist.Merge(m.snapshotHist())
			default:
				g.value += m.Value()
			}
		}
		sort.Strings(order)
		for _, key := range order {
			out = append(out, groups[key])
		}
	}
	return out
}

// dropLabels removes the (sorted) keys from a label set.
func dropLabels(ls LabelSet, drop []string) LabelSet {
	out := make(LabelSet, 0, len(ls))
	for _, l := range ls {
		i := sort.SearchStrings(drop, l.Key)
		if i < len(drop) && drop[i] == l.Key {
			continue
		}
		out = append(out, l)
	}
	return out
}

// FormatTraceID renders a trace correlation id the way exemplars and
// smartds-top display it (fixed-width hex, deterministic).
func FormatTraceID(id uint64) string {
	s := strconv.FormatUint(id, 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}
