package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteSeriesCSV dumps every sampled time series in long form:
// one row per point, `metric,labels,t_sec,value`, series in canonical
// (name, labels) order and points chronological. Loads directly into
// pandas / gnuplot for time-resolved views of a fault window.
func (r *Registry) WriteSeriesCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "metric,labels,t_sec,value\n"); err != nil {
		return err
	}
	for _, m := range r.Metrics() {
		if m.series == nil {
			continue
		}
		label := csvQuote(m.labels.String())
		for _, p := range m.series.Points() {
			row := m.name + "," + label + "," +
				strconv.FormatFloat(p.At, 'g', -1, 64) + "," +
				strconv.FormatFloat(p.Value, 'g', -1, 64) + "\n"
			if _, err := io.WriteString(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesJSON is the on-disk layout of one dumped series.
type seriesJSON struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Digest Digest            `json:"digest"`
	Points []Point           `json:"points"`
}

// WriteSeriesJSON dumps every sampled series with full point data as
// one JSON document (canonical order, stable encoding).
func (r *Registry) WriteSeriesJSON(w io.Writer) error {
	var out []seriesJSON
	for _, m := range r.Metrics() {
		if m.series == nil {
			continue
		}
		out = append(out, seriesJSON{
			Name:   m.name,
			Labels: m.labels.Map(),
			Digest: m.series.Digest(),
			Points: m.series.Points(),
		})
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("telemetry: encode series: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// csvQuote wraps a field in quotes, doubling embedded quotes (RFC 4180).
func csvQuote(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}
