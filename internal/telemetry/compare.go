package telemetry

import (
	"fmt"

	"github.com/disagg/smartds/internal/metrics"
)

// Gate is the regression policy cmd/smartds-report enforces: how much
// a run may slow down relative to the baseline report before the
// comparison fails.
type Gate struct {
	// MaxThroughputDrop fails a run whose throughput fell below
	// baseline*(1-frac). 0.05 = 5%.
	MaxThroughputDrop float64
	// MaxP999Inflate fails a run whose p999 latency rose above
	// baseline*(1+frac).
	MaxP999Inflate float64
	// P999Floor ignores p999 inflation while both sides sit under this
	// many seconds — relative noise on microsecond tails is meaningless.
	P999Floor float64
	// MinRequests skips runs that measured fewer requests than this
	// (tiny windows are all noise).
	MinRequests uint64
	// MaxEventsPerSecDrop fails the comparison when the simulator's own
	// wall-clock event rate fell below baseline*(1-frac). Checked only
	// when both reports carry a SimPerf block (wall-clock measurements
	// exist only in bench-produced reports). 0 disables the check.
	MaxEventsPerSecDrop float64
}

// DefaultGate returns the CI policy: 5% throughput drop, 25% p999
// inflation above a 25 µs floor, runs of at least 50 requests, 10%
// simulator events/sec drop.
func DefaultGate() Gate {
	return Gate{
		MaxThroughputDrop:   0.05,
		MaxP999Inflate:      0.25,
		P999Floor:           25e-6,
		MinRequests:         50,
		MaxEventsPerSecDrop: 0.10,
	}
}

// RunDelta is one matched run pair's comparison.
type RunDelta struct {
	Key        string
	Base, Cur  *RunRecord
	Violations []string
}

// ThroughputRatio returns cur/base throughput (0 when base is zero).
func (d RunDelta) ThroughputRatio() float64 {
	if d.Base.ThroughputBps <= 0 {
		return 0
	}
	return d.Cur.ThroughputBps / d.Base.ThroughputBps
}

// P999Ratio returns cur/base p999 (0 when base is zero).
func (d RunDelta) P999Ratio() float64 {
	if d.Base.Latency.P999 <= 0 {
		return 0
	}
	return d.Cur.Latency.P999 / d.Base.Latency.P999
}

// Compare matches the two reports' runs by key and applies the gate.
// It returns every matched pair (baseline order) plus the flat list of
// violations; an empty violation list means the gate passes. Runs only
// present in the current report are informational; runs missing from
// the current report violate the gate (a benchmark silently vanishing
// must not pass CI).
func Compare(base, cur *Report, g Gate) ([]RunDelta, []string) {
	curByKey := make(map[string]*RunRecord, len(cur.Runs))
	for _, rr := range cur.Runs {
		curByKey[rr.Key()] = rr
	}
	var deltas []RunDelta
	var violations []string
	for _, b := range base.Runs {
		c, ok := curByKey[b.Key()]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but missing from current report", b.Key()))
			continue
		}
		d := RunDelta{Key: b.Key(), Base: b, Cur: c}
		if b.Requests >= g.MinRequests && c.Requests >= g.MinRequests {
			if g.MaxThroughputDrop > 0 && b.ThroughputBps > 0 &&
				c.ThroughputBps < b.ThroughputBps*(1-g.MaxThroughputDrop) {
				d.Violations = append(d.Violations, fmt.Sprintf(
					"throughput regressed %.1f%%: %s -> %s (gate %.0f%%)",
					(1-d.ThroughputRatio())*100,
					metrics.FormatGbps(b.ThroughputBps), metrics.FormatGbps(c.ThroughputBps),
					g.MaxThroughputDrop*100))
			}
			if g.MaxP999Inflate > 0 && b.Latency.P999 > 0 &&
				c.Latency.P999 > g.P999Floor &&
				c.Latency.P999 > b.Latency.P999*(1+g.MaxP999Inflate) {
				d.Violations = append(d.Violations, fmt.Sprintf(
					"p999 inflated %.1f%%: %s -> %s (gate %.0f%% above %s)",
					(d.P999Ratio()-1)*100,
					metrics.FormatDuration(b.Latency.P999), metrics.FormatDuration(c.Latency.P999),
					g.MaxP999Inflate*100, metrics.FormatDuration(g.P999Floor)))
			}
			if c.Errors > b.Errors {
				d.Violations = append(d.Violations, fmt.Sprintf(
					"errors grew: %d -> %d", b.Errors, c.Errors))
			}
		}
		for _, v := range d.Violations {
			violations = append(violations, d.Key+": "+v)
		}
		deltas = append(deltas, d)
	}
	if g.MaxEventsPerSecDrop > 0 && base.SimPerf != nil && cur.SimPerf != nil &&
		base.SimPerf.EventsPerSec > 0 &&
		cur.SimPerf.EventsPerSec < base.SimPerf.EventsPerSec*(1-g.MaxEventsPerSecDrop) {
		violations = append(violations, fmt.Sprintf(
			"sim-perf: events/sec regressed %.1f%%: %.0f -> %.0f (gate %.0f%%)",
			(1-cur.SimPerf.EventsPerSec/base.SimPerf.EventsPerSec)*100,
			base.SimPerf.EventsPerSec, cur.SimPerf.EventsPerSec,
			g.MaxEventsPerSecDrop*100))
	}
	return deltas, violations
}

// ComparisonTable renders the matched runs as a paper-style table.
func ComparisonTable(deltas []RunDelta) *metrics.Table {
	tbl := metrics.NewTable("run report comparison (baseline vs current)",
		"run", "throughput", "Δ%", "p999", "Δ%", "errors", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		if len(d.Violations) > 0 {
			verdict = "FAIL"
		}
		tbl.AddRow(d.Key,
			fmt.Sprintf("%s -> %s", metrics.FormatGbps(d.Base.ThroughputBps),
				metrics.FormatGbps(d.Cur.ThroughputBps)),
			pctDelta(d.ThroughputRatio()),
			fmt.Sprintf("%s -> %s", metrics.FormatDuration(d.Base.Latency.P999),
				metrics.FormatDuration(d.Cur.Latency.P999)),
			pctDelta(d.P999Ratio()),
			fmt.Sprintf("%d -> %d", d.Base.Errors, d.Cur.Errors),
			verdict)
	}
	return tbl
}

// pctDelta renders a cur/base ratio as a signed percentage.
func pctDelta(ratio float64) string {
	if ratio == 0 { //detcheck:floateq exact zero is the "no baseline" sentinel, never computed
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
