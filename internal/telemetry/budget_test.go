package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/metrics"
)

// TestExportersEmptyRegistry pins the degenerate exports: a registry
// with nothing registered must still produce well-formed documents.
func TestExportersEmptyRegistry(t *testing.T) {
	r := NewRegistry()

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if om.String() != "# EOF\n" {
		t.Fatalf("empty OpenMetrics = %q, want only the EOF marker", om.String())
	}

	var csv bytes.Buffer
	if err := r.WriteSeriesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := csv.String(); got != "metric,labels,t_sec,value\n" {
		t.Fatalf("empty CSV = %q, want header only", got)
	}

	var js bytes.Buffer
	if err := r.WriteSeriesJSON(&js); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(js.String()); got != "null" {
		t.Fatalf("empty series JSON = %q", got)
	}
}

// TestZeroRunReport covers a report built before any run was recorded:
// it must round-trip and load cleanly rather than panic downstream
// consumers (smartds-report -show / -slo on an aborted run).
func TestZeroRunReport(t *testing.T) {
	r := NewRegistry()
	rep := r.BuildReport("aborted", 9, true, nil)
	if len(rep.Runs) != 0 {
		t.Fatalf("zero-run report carries %d runs", len(rep.Runs))
	}

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "aborted" || back.Seed != 9 || len(back.Runs) != 0 {
		t.Fatalf("zero-run report round trip mangled: %+v", back)
	}
}

// TestSingleSampleSeries pins the one-point digest and its exports:
// First==Last==Min==Max==Mean, and both exporters emit exactly one row.
func TestSingleSampleSeries(t *testing.T) {
	s := NewSeries(8)
	s.Append(2e-3, 42)
	d := s.Digest()
	if d.Points != 1 || d.First != 42 || d.Last != 42 || d.Min != 42 || d.Max != 42 || d.Mean != 42 {
		t.Fatalf("single-sample digest = %+v", d)
	}

	r := NewRegistry()
	sc := r.NewRun("one", "SmartDS-1", 3)
	m := sc.CounterFunc("smartds_one_total", "One sample.", nil, func() float64 { return 42 })
	sam := r.NewSampler(nil, []*Metric{m})
	_ = sam // the sampler attached the ring; append directly without an env
	m.Series().Append(2e-3, 42)

	var csv bytes.Buffer
	if err := r.WriteSeriesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(rows) != 2 {
		t.Fatalf("single-sample CSV rows = %d:\n%s", len(rows), csv.String())
	}
	if !strings.Contains(rows[1], ",0.002,42") {
		t.Fatalf("csv row = %q", rows[1])
	}

	var js bytes.Buffer
	if err := r.WriteSeriesJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"points": 1`) {
		t.Fatalf("json digest missing single point:\n%s", js.String())
	}
}

// buildBudgetRegistry registers six per-tenant series against a budget
// of two, always in the same order — the scenario the determinism test
// snapshots.
func buildBudgetRegistry() *Registry {
	r := NewRegistry()
	r.LabelBudget = 2
	sc := r.NewRun("budget", "SmartDS-1", 5)
	for i := 0; i < 6; i++ {
		tenant := string(rune('a' + i))
		v := float64(i + 1)
		sc.CounterFunc("smartds_tenant_ops_total", "Per-tenant ops.",
			map[string]string{"tenant": tenant}, func() float64 { return v })
	}
	h := metrics.NewLatencyHistogram()
	h.Record(1e-3)
	for i := 0; i < 3; i++ {
		tenant := string(rune('a' + i))
		sc.Histogram("smartds_tenant_latency_seconds", "Per-tenant latency.",
			map[string]string{"tenant": tenant}, h)
	}
	return r
}

// TestLabelBudgetOverflowDeterministic pins that over-budget series
// fold into exactly one overflow="other" series per family, that the
// fold sums the hidden sources, and that two identically-ordered
// builds export byte-identical documents (the property `go test
// -shuffle=on` would break if folding depended on map iteration).
func TestLabelBudgetOverflowDeterministic(t *testing.T) {
	export := func() string {
		var buf bytes.Buffer
		if err := buildBudgetRegistry().WriteOpenMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := export(), export()
	if a != b {
		t.Fatalf("same registrations exported different bytes:\n%s\n---\n%s", a, b)
	}

	// Budget 2 keeps tenants a,b visible; c..f (3+4+5+6 = 18) fold.
	if !strings.Contains(a, `smartds_tenant_ops_total{design="SmartDS-1",exp="budget",overflow="other",run="0"} 18`) {
		t.Fatalf("overflow fold missing or wrong sum:\n%s", a)
	}
	for _, visible := range []string{`tenant="a"`, `tenant="b"`} {
		if !strings.Contains(a, visible) {
			t.Fatalf("within-budget series %s missing:\n%s", visible, a)
		}
	}
	for _, hidden := range []string{`tenant="c"`, `tenant="d"`, `tenant="e"`, `tenant="f"`} {
		if strings.Contains(a, hidden) {
			t.Fatalf("over-budget series %s leaked past the fold:\n%s", hidden, a)
		}
	}

	// Histogram overflow merges the folded source (tenant c only).
	if !strings.Contains(a, `smartds_tenant_latency_seconds_count{design="SmartDS-1",exp="budget",overflow="other",run="0"} 1`) {
		t.Fatalf("histogram overflow merge missing:\n%s", a)
	}

	// The registry reports how many series each overflow absorbed.
	r := buildBudgetRegistry()
	var folded int
	for _, m := range r.Metrics() {
		if m.Folded() > 0 {
			folded = m.Folded()
		}
	}
	if folded == 0 {
		t.Fatal("no metric reports folded sources")
	}
}
