// Package telemetry is the unified measurement surface of the
// simulator: a central registry of labeled counters, gauges, and
// histograms (wrapping the primitives of internal/metrics), a sim-time
// sampler that records ring-buffered time series on a configurable
// virtual-clock interval, and three exporters — an OpenMetrics text
// snapshot, CSV/JSON time-series dumps, and a machine-readable run
// report (report.json) that cmd/smartds-report diffs across builds as
// the perf regression gate.
//
// Everything is driven by virtual time and iterated in sorted order,
// so same-seed runs produce byte-identical artifacts (the golden
// determinism tests pin this).
package telemetry

import (
	"fmt"
	"sort"

	"github.com/disagg/smartds/internal/metrics"
)

// Kind classifies a registered metric.
type Kind int

// The three metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Label is one key=value metric dimension.
type Label struct {
	Key, Value string
}

// LabelSet is a sorted list of labels. Build with MakeLabels so the
// order (and therefore every exported artifact) is canonical.
type LabelSet []Label

// MakeLabels builds a canonical (key-sorted) label set from a map.
func MakeLabels(m map[string]string) LabelSet {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make(LabelSet, 0, len(keys))
	for _, k := range keys {
		ls = append(ls, Label{Key: k, Value: m[k]})
	}
	return ls
}

// With returns a copy of the set with one label added (re-sorted).
func (ls LabelSet) With(key, value string) LabelSet {
	out := make(LabelSet, 0, len(ls)+1)
	out = append(out, ls...)
	out = append(out, Label{Key: key, Value: value})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// String renders the set in OpenMetrics brace syntax ("" when empty).
func (ls LabelSet) String() string {
	if len(ls) == 0 {
		return ""
	}
	s := "{"
	for i, l := range ls {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=" + quote(l.Value)
	}
	return s + "}"
}

// Map returns the labels as a plain map (report JSON encoding; Go's
// encoding/json writes map keys in sorted order, keeping it canonical).
func (ls LabelSet) Map() map[string]string {
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Metric is one registered instrument. Counters and gauges hold either
// a pushed value (Add/Set) or a pull callback (read at sample/export
// time); histograms wrap a metrics.Histogram.
type Metric struct {
	name   string
	help   string
	kind   Kind
	labels LabelSet

	value float64
	read  func() float64
	hist  *metrics.Histogram

	series *Series

	// Exemplars: bucket boundary → latest exemplar (histograms only).
	exemplars map[float64]Exemplar

	// Overflow series state (see budget.go): the pull callbacks and
	// source histograms of every registration folded past the budget.
	reads    []func() float64
	srcHists []*metrics.Histogram
	folded   int
}

// Name returns the metric name.
func (m *Metric) Name() string { return m.name }

// Labels returns the metric's label set.
func (m *Metric) Labels() LabelSet { return m.labels }

// Kind returns the metric kind.
func (m *Metric) Kind() Kind { return m.kind }

// Hist returns the wrapped histogram (nil unless KindHistogram).
func (m *Metric) Hist() *metrics.Histogram { return m.hist }

// Add accumulates into a push counter. Negative deltas and non-counter
// kinds panic: a counter is monotone by contract.
func (m *Metric) Add(v float64) {
	if m.kind != KindCounter || m.read != nil {
		panic("telemetry: Add on a non-push-counter metric " + m.name)
	}
	if v < 0 {
		panic("telemetry: negative counter increment on " + m.name)
	}
	m.value += v
}

// Set stores a push gauge reading.
func (m *Metric) Set(v float64) {
	if m.kind != KindGauge || m.read != nil {
		panic("telemetry: Set on a non-push-gauge metric " + m.name)
	}
	m.value = v
}

// Value reads the metric's current scalar value (histograms report
// their sample count).
func (m *Metric) Value() float64 {
	if m.hist != nil {
		return float64(m.hist.Count())
	}
	if m.read != nil {
		return m.read()
	}
	return m.value
}

// Series returns the metric's recorded time series (nil when the
// metric was never sampled).
func (m *Metric) Series() *Series { return m.series }

// key uniquely identifies a metric inside a registry.
func (m *Metric) key() string { return m.name + m.labels.String() }

// Registry is the central metric table. It is not safe for concurrent
// use; the simulator is single-threaded by construction.
type Registry struct {
	metrics []*Metric
	index   map[string]*Metric

	// SeriesCap bounds each sampled series ring (default 4096 points).
	SeriesCap int
	// SampleInterval is the sim-clock sampling cadence used by run
	// scopes (default 100 µs of virtual time).
	SampleInterval float64
	// LabelBudget bounds the distinct series a run scope may register
	// per metric name; registrations past the budget fold into one
	// overflow="other" series (0 = unlimited; see budget.go).
	LabelBudget int

	rollups []rollupRule

	runs   []*RunRecord
	runSeq map[string]int
}

// NewRegistry returns an empty registry with default sampling knobs.
func NewRegistry() *Registry {
	return &Registry{
		index:          make(map[string]*Metric),
		SeriesCap:      4096,
		SampleInterval: 100e-6,
		runSeq:         make(map[string]int),
	}
}

// register adds a metric, panicking on duplicate (name, labels): two
// instruments writing the same series is always a wiring bug.
func (r *Registry) register(m *Metric) *Metric {
	k := m.key()
	if _, dup := r.index[k]; dup {
		panic("telemetry: duplicate metric " + k)
	}
	r.index[k] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers a push counter (accumulate with Add).
func (r *Registry) Counter(name, help string, labels LabelSet) *Metric {
	return r.register(&Metric{name: name, help: help, kind: KindCounter, labels: labels})
}

// CounterFunc registers a pull counter whose value is read from fn at
// sample and export time. fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, labels LabelSet, fn func() float64) *Metric {
	return r.register(&Metric{name: name, help: help, kind: KindCounter, labels: labels, read: fn})
}

// Gauge registers a push gauge (update with Set).
func (r *Registry) Gauge(name, help string, labels LabelSet) *Metric {
	return r.register(&Metric{name: name, help: help, kind: KindGauge, labels: labels})
}

// GaugeFunc registers a pull gauge read from fn.
func (r *Registry) GaugeFunc(name, help string, labels LabelSet, fn func() float64) *Metric {
	return r.register(&Metric{name: name, help: help, kind: KindGauge, labels: labels, read: fn})
}

// Histogram registers an existing metrics.Histogram under a name.
func (r *Registry) Histogram(name, help string, labels LabelSet, h *metrics.Histogram) *Metric {
	if h == nil {
		panic("telemetry: nil histogram registered as " + name)
	}
	return r.register(&Metric{name: name, help: help, kind: KindHistogram, labels: labels, hist: h})
}

// Lookup returns the metric registered under (name, labels), or nil.
func (r *Registry) Lookup(name string, labels LabelSet) *Metric {
	return r.index[name+labels.String()]
}

// Metrics returns every registered metric plus the materialized
// roll-up families, sorted by (name, labels) — the canonical export
// order.
func (r *Registry) Metrics() []*Metric {
	out := append([]*Metric(nil), r.metrics...)
	out = append(out, r.materializeRollups()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels.String() < out[j].labels.String()
	})
	return out
}

// Runs returns the recorded run records in creation order.
func (r *Registry) Runs() []*RunRecord { return r.runs }

// quote escapes a label value for OpenMetrics / table output.
func quote(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			out = append(out, '\\', c)
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(append(out, '"'))
}
