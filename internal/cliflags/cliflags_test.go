package cliflags

import (
	"bytes"
	"flag"
	"io"
	"testing"
)

func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return c
}

func TestDefaults(t *testing.T) {
	c := parse(t)
	if c.Seed != 42 || c.TraceSample != 1 || c.Replication != "primary" {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.NewTracer(false) != nil {
		t.Fatal("tracer built with no trace flags")
	}
	if c.NewRegistry() != nil {
		t.Fatal("registry built with no artifact flags")
	}
	if c.NewLogger(io.Discard, func() float64 { return 0 }) != nil {
		t.Fatal("logger built with no -log-level")
	}
	if specs, err := c.SLO(); err != nil || specs != nil {
		t.Fatalf("empty -slo parsed to %v, %v", specs, err)
	}
	if _, err := c.Protocol(); err != nil {
		t.Fatalf("default replication rejected: %v", err)
	}
}

func TestTracerSampling(t *testing.T) {
	c := parse(t, "-trace", "out.json", "-trace-sample", "0.01", "-seed", "7")
	tr := c.NewTracer(false)
	if tr == nil {
		t.Fatal("-trace set but no tracer")
	}
	if tr.SampleRate() != 0.01 {
		t.Fatalf("sample rate %v, want 0.01", tr.SampleRate())
	}
	// need=true builds a tracer even without -trace (the -breakdown path).
	c2 := parse(t, "-breakdown")
	if c2.NewTracer(c2.Breakdown) == nil {
		t.Fatal("-breakdown did not get a tracer")
	}
	// Full rate leaves sampling off (identity ForRequest).
	full := parse(t, "-trace", "x").NewTracer(false)
	if full.SampleRate() != 1 {
		t.Fatalf("default sample rate %v, want 1", full.SampleRate())
	}
}

func TestSLOAndLogger(t *testing.T) {
	c := parse(t, "-slo", "avail:99.9;ttr:10ms", "-log-level", "warn")
	specs, err := c.SLO()
	if err != nil || len(specs) != 2 {
		t.Fatalf("SLO() = %v, %v", specs, err)
	}
	var buf bytes.Buffer
	log := c.NewLogger(&buf, func() float64 { return 0 })
	if log == nil {
		t.Fatal("no logger despite -log-level")
	}
	log.Info("dropped")
	log.Warn("kept")
	if got := buf.String(); got != "0.000000 WARN  kept\n" {
		t.Fatalf("level filter wrong: %q", got)
	}
	if _, err := parse(t, "-slo", "bogus:1").SLO(); err == nil {
		t.Fatal("bad -slo accepted")
	}
}

func TestRegistryAndArtifacts(t *testing.T) {
	c := parse(t, "-metrics", "m.prom", "-label-budget", "3")
	reg := c.NewRegistry()
	if reg == nil || reg.LabelBudget != 3 {
		t.Fatalf("registry %+v, want label budget 3", reg)
	}
	wrote := map[string]bool{}
	err := c.WriteArtifacts(reg, func(path string, fn func(io.Writer) error) error {
		wrote[path] = true
		return fn(io.Discard)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wrote["m.prom"] || len(wrote) != 1 {
		t.Fatalf("wrote %v, want just m.prom", wrote)
	}
}
