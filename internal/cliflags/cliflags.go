// Package cliflags holds the flag set shared by the smartds-bench and
// smartds-sim commands, so the observability surface — tracing and its
// sampling rate, SLO specs, event-log level, telemetry artifacts and
// label budgets — is declared once and behaves identically in both
// binaries.
package cliflags

import (
	"flag"
	"io"

	"github.com/disagg/smartds/internal/critpath"
	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/slo"
	"github.com/disagg/smartds/internal/telemetry"
	"github.com/disagg/smartds/internal/trace"
)

// Common is the shared flag surface. Register binds it to a FlagSet;
// read the fields after fs.Parse.
type Common struct {
	Seed        uint64
	TraceFile   string
	TraceSample float64
	FoldedFile  string
	Breakdown   bool
	FaultSpec   string
	Replication string
	SLOSpec     string
	LogLevel    string
	LabelBudget int

	ReportFile  string
	MetricsFile string
	SeriesCSV   string
	SeriesJSON  string
}

// Register declares the shared flags on fs and returns the value
// struct they populate.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Uint64Var(&c.Seed, "seed", 42, "root random seed")
	fs.StringVar(&c.TraceFile, "trace", "", "write a Chrome trace-event JSON file (view in Perfetto / chrome://tracing)")
	fs.Float64Var(&c.TraceSample, "trace-sample", 1, "head-sampling rate for trace spans in [0,1]; errors and p999 outliers are kept regardless")
	fs.StringVar(&c.FoldedFile, "critpath-folded", "", "write per-request critical-path blame as folded stacks (flamegraph.pl / speedscope input) to this file; implies tracing")
	fs.BoolVar(&c.Breakdown, "breakdown", false, "print per-stage latency attribution tables")
	fs.StringVar(&c.FaultSpec, "faults", "", "fault campaign spec (kind:target@start+duration[:param];... — see internal/faults)")
	fs.StringVar(&c.Replication, "replication", "primary", "replication protocol: primary | chain | quorum")
	fs.StringVar(&c.SLOSpec, "slo", "", "SLO specs evaluated by a burn-rate engine (kind:value[@opt=val,...];... — see internal/slo)")
	fs.StringVar(&c.LogLevel, "log-level", "", "emit the structured sim-time event log to stderr at this level (debug|info|warn|error); empty disables")
	fs.IntVar(&c.LabelBudget, "label-budget", 0, "max label sets per metric name per run scope; extras fold into an overflow=\"other\" series (0 = unlimited)")
	fs.StringVar(&c.ReportFile, "report", "", "write the machine-readable run report (JSON) to this file")
	fs.StringVar(&c.MetricsFile, "metrics", "", "write an OpenMetrics snapshot to this file")
	fs.StringVar(&c.SeriesCSV, "series-csv", "", "write sampled time series as CSV to this file")
	fs.StringVar(&c.SeriesJSON, "series-json", "", "write sampled time series as JSON to this file")
	return c
}

// Protocol parses the -replication flag.
func (c *Common) Protocol() (middletier.Protocol, error) {
	return middletier.ParseProtocol(c.Replication)
}

// SLO parses the -slo flag (nil when unset).
func (c *Common) SLO() ([]slo.Spec, error) {
	if c.SLOSpec == "" {
		return nil, nil
	}
	return slo.Parse(c.SLOSpec)
}

// NewFolded builds the folded-stack accumulator implied by
// -critpath-folded (nil when unset).
func (c *Common) NewFolded() *critpath.Folded {
	if c.FoldedFile == "" {
		return nil
	}
	return critpath.NewFolded()
}

// NewTracer builds the tracer implied by the flags: nil when none of
// -trace, -critpath-folded, or a caller-side need (e.g. -breakdown)
// wants one, otherwise
// a tracer with -trace-sample head sampling applied (seeded by -seed so
// the kept-span set is deterministic).
func (c *Common) NewTracer(need bool) *trace.Tracer {
	if c.TraceFile == "" && c.FoldedFile == "" && !need {
		return nil
	}
	tr := trace.New(1 << 18)
	if c.TraceSample < 1 {
		tr.SetSampling(c.TraceSample, c.Seed)
	}
	return tr
}

// TelemetryWanted reports whether any telemetry artifact flag is set.
func (c *Common) TelemetryWanted() bool {
	return c.ReportFile != "" || c.MetricsFile != "" || c.SeriesCSV != "" || c.SeriesJSON != ""
}

// NewRegistry builds the telemetry registry implied by the flags (nil
// when no artifact was requested), with -label-budget applied.
func (c *Common) NewRegistry() *telemetry.Registry {
	if !c.TelemetryWanted() {
		return nil
	}
	reg := telemetry.NewRegistry()
	reg.LabelBudget = c.LabelBudget
	return reg
}

// NewLogger builds the structured event logger implied by -log-level
// (nil when unset), writing to w and stamped by the virtual clock.
func (c *Common) NewLogger(w io.Writer, clock func() float64) *evlog.Logger {
	if c.LogLevel == "" {
		return nil
	}
	return evlog.New(w, evlog.ParseLevel(c.LogLevel), clock)
}

// WriteArtifacts writes the metrics/series artifacts the flags request
// (the report is written by the caller, which owns its header fields).
// writeFile must create the file and stream fn into it.
func (c *Common) WriteArtifacts(reg *telemetry.Registry,
	writeFile func(path string, fn func(io.Writer) error) error) error {
	if reg == nil {
		return nil
	}
	if c.MetricsFile != "" {
		if err := writeFile(c.MetricsFile, reg.WriteOpenMetrics); err != nil {
			return err
		}
	}
	if c.SeriesCSV != "" {
		if err := writeFile(c.SeriesCSV, reg.WriteSeriesCSV); err != nil {
			return err
		}
	}
	if c.SeriesJSON != "" {
		if err := writeFile(c.SeriesJSON, reg.WriteSeriesJSON); err != nil {
			return err
		}
	}
	return nil
}
