// Package rdma implements a RoCE-like reliable message transport on
// top of the netsim fabric: queue pairs, SEND verbs with completion
// events, cumulative ACKs, and go-back-N retransmission.
//
// SmartDS extends an FPGA RoCE stack (StRoM-derived) with its split/
// assemble modules; this package is the unmodified transport those
// modules plug into. Reliability is modeled at message granularity —
// one simulated "message" is one RDMA message of up to several MB, with
// per-packet framing charged via netsim.Fabric.WireSize — which keeps
// event counts tractable while preserving ordering, loss recovery, and
// flow behavior.
package rdma

import (
	"fmt"

	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/trace"
)

// QPID names a queue pair globally: fabric address plus QP number.
type QPID struct {
	Addr netsim.Addr
	QPN  int
}

func (id QPID) String() string { return fmt.Sprintf("%s/qp%d", id.Addr, id.QPN) }

// Config sets transport parameters.
type Config struct {
	// AckBytes is the wire size of an ACK.
	AckBytes float64
	// RetransmitTimeout is how long the sender waits for an ACK before
	// resending all unacknowledged messages.
	RetransmitTimeout float64
	// MaxRetries bounds retransmission attempts before the send
	// completes with an error.
	MaxRetries int
	// HeaderBytes is the transport header charged per message on the
	// wire in addition to payload framing.
	HeaderBytes float64
	// Trace, when set, records one span per reliable send (post to
	// cumulative ACK) and an instant per go-back-N retransmission on
	// the stack's own track. Nil disables tracing.
	Trace *trace.Tracer
}

// DefaultConfig returns datacenter RoCE-ish parameters.
func DefaultConfig() Config {
	return Config{
		AckBytes:          64,
		RetransmitTimeout: 500e-6,
		MaxRetries:        8,
		HeaderBytes:       32,
	}
}

// Message is a delivered RDMA message.
type Message struct {
	From QPID
	Seq  uint64
	Data []byte  // real payload bytes
	Size float64 // modeled payload size (== len(Data) when Data != nil)
}

// ErrRetriesExhausted reports a send that could not be delivered.
var ErrRetriesExhausted = fmt.Errorf("rdma: retries exhausted")

// ErrDisconnected reports sends aborted by a QP reset (Reconnect).
var ErrDisconnected = fmt.Errorf("rdma: queue pair reset")

// Stack is one RoCE instance bound to a fabric port.
type Stack struct {
	env     *sim.Env
	port    *netsim.Port
	cfg     Config
	qps     map[int]*QP
	next    int
	spanSeq uint64 // send span correlation ids, unique per stack
	resets  uint64 // QP resets performed on this stack (telemetry)
}

// traceName is the stack's trace track ("rdma.<addr>").
func (s *Stack) traceName() string { return "rdma." + string(s.port.Addr()) }

// packet is the on-fabric representation.
type packet struct {
	kind   byte // 'D' data, 'A' ack
	src    QPID
	dstQPN int
	seq    uint64 // data: message seq; ack: cumulative next-expected
	epoch  uint32 // connection incarnation; stale-epoch packets are ignored
	data   []byte
	size   float64
}

// NewStack binds a transport instance to a port. The stack takes over
// the port's receive handler.
func NewStack(env *sim.Env, port *netsim.Port, cfg Config) *Stack {
	def := DefaultConfig()
	if cfg.AckBytes <= 0 {
		cfg.AckBytes = def.AckBytes
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = def.RetransmitTimeout
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = def.MaxRetries
	}
	if cfg.HeaderBytes < 0 {
		cfg.HeaderBytes = def.HeaderBytes
	}
	s := &Stack{env: env, port: port, cfg: cfg, qps: make(map[int]*QP), next: 1}
	port.SetHandler(s.receive)
	return s
}

// Port returns the underlying fabric port.
func (s *Stack) Port() *netsim.Port { return s.port }

// Addr returns the stack's fabric address.
func (s *Stack) Addr() netsim.Addr { return s.port.Addr() }

// Stats is the aggregate transport health of one stack: how many queue
// pairs exist, how hard go-back-N is working, and how much is still in
// flight. The telemetry layer samples it per middle-tier / storage NIC.
type Stats struct {
	QPs         int    // allocated queue pairs
	Retransmits uint64 // cumulative go-back-N resends across all QPs
	Resets      uint64 // QP resets (Reconnect incarnations) on this stack
	Broken      int    // QPs currently wedged awaiting Reconnect
	Unacked     int    // sends posted but not yet acked (in flight)
}

// Stats aggregates transport counters across the stack's queue pairs.
// The map walk accumulates only commutative integer sums, so iteration
// order cannot leak into the result.
func (s *Stack) Stats() Stats {
	st := Stats{QPs: len(s.qps), Resets: s.resets}
	for _, qp := range s.qps {
		st.Retransmits += qp.retransmits
		st.Unacked += len(qp.unacked)
		if qp.broken {
			st.Broken++
		}
	}
	return st
}

// QP is one side of a reliable connection.
type QP struct {
	stack  *Stack
	qpn    int
	remote QPID

	sendSeq  uint64 // next sequence to assign
	recvNext uint64 // next expected incoming sequence
	epoch    uint32 // bumped by Reconnect; guards against stale in-flight packets

	unacked []*pendingSend

	// broken marks a QP whose go-back-N window has a permanent gap: a
	// send exhausted its retries, so the receiver can never advance past
	// the missing sequence. Every outstanding and subsequent send fails
	// until Reconnect resets the pair.
	broken bool

	// retransmits counts go-back-N resends (loss-sweep tests bound it).
	retransmits uint64

	// OnRecv receives in-order messages. The upper layer (an AAMS
	// instance, a storage server loop) installs it; nil drops.
	OnRecv func(*Message)
}

type pendingSend struct {
	seq      uint64
	data     []byte
	size     float64
	retries  int
	done     *sim.Event
	timer    sim.Timer
	resolved bool    // acked or failed
	span     uint64  // trace span id (0 when tracing is off)
	postedAt float64 // post time, for the wire/qwait split on sampled sends

	// armFn and timeoutFn are bound once at post time; retransmissions
	// reuse them instead of minting two fresh closures per transmit.
	armFn     func(interface{})
	timeoutFn func()
}

func (ps *pendingSend) cancelTimer() {
	ps.timer.Cancel()
	ps.timer = sim.Timer{}
}

// CreateQP allocates an unconnected QP.
func (s *Stack) CreateQP() *QP {
	qp := &QP{stack: s, qpn: s.next}
	s.qps[s.next] = qp
	s.next++
	return qp
}

// QP returns the stack's queue pair with the given number, or nil —
// Reconnect after a fault needs to reach the peer QP object by the
// identity its partner recorded at Connect time.
func (s *Stack) QP(qpn int) *QP { return s.qps[qpn] }

// ID returns the QP's global identity.
func (qp *QP) ID() QPID { return QPID{Addr: qp.stack.Addr(), QPN: qp.qpn} }

// Remote returns the connected peer's identity.
func (qp *QP) Remote() QPID { return qp.remote }

// Connect pairs two QPs (the out-of-band connection setup real RDMA
// does through a CM exchange).
func Connect(a, b *QP) {
	a.remote = b.ID()
	b.remote = a.ID()
}

// Reconnect resets both ends of a connected pair after a failure — the
// CM-level teardown and re-establish real RoCE performs. Outstanding
// sends on both sides fail with ErrDisconnected, sequence numbers
// restart, and the broken flag clears. Both ends move to a common new
// epoch so stale in-flight packets from the old incarnation (data or
// acks still crossing the fabric) cannot corrupt the fresh sequence
// space. The QP objects keep their numbers, so existing references
// stay valid.
func Reconnect(a, b *QP) {
	epoch := a.epoch
	if b.epoch > epoch {
		epoch = b.epoch
	}
	epoch++
	a.reset(epoch)
	b.reset(epoch)
	a.remote = b.ID()
	b.remote = a.ID()
}

// reset aborts outstanding sends and restarts the QP at a new epoch.
func (qp *QP) reset(epoch uint32) {
	qp.stack.resets++
	failed := qp.unacked
	qp.unacked = nil
	qp.sendSeq = 0
	qp.recvNext = 0
	qp.broken = false
	qp.epoch = epoch
	for _, ps := range failed {
		if ps.resolved {
			continue
		}
		ps.resolved = true
		ps.cancelTimer()
		qp.endSendSpan(ps)
		ps.done.Trigger(ErrDisconnected)
	}
}

// Broken reports whether the QP needs a Reconnect before it can carry
// traffic again.
func (qp *QP) Broken() bool { return qp.broken }

// Retransmits returns the cumulative go-back-N resend count.
func (qp *QP) Retransmits() uint64 { return qp.retransmits }

// Send posts a reliable message carrying real data bytes. The returned
// event fires with nil on ACK or an error after retry exhaustion.
func (qp *QP) Send(data []byte) *sim.Event {
	return qp.send(data, float64(len(data)))
}

// SendSized posts a message with an explicit modeled size and optional
// real bytes (for experiments that move modeled-only traffic).
func (qp *QP) SendSized(data []byte, size float64) *sim.Event {
	return qp.send(data, size)
}

func (qp *QP) send(data []byte, size float64) *sim.Event {
	if qp.remote.Addr == "" {
		panic("rdma: Send on unconnected QP " + qp.ID().String())
	}
	done := qp.stack.env.NewEvent()
	if qp.broken {
		// The window has a permanent gap; nothing sent now can ever be
		// delivered in order. Fail fast instead of burning retries.
		done.Trigger(ErrRetriesExhausted)
		return done
	}
	ps := &pendingSend{seq: qp.sendSeq, data: data, size: size, done: done}
	ps.timeoutFn = func() { qp.onTimeout(ps) }
	ps.armFn = func(interface{}) {
		if ps.resolved {
			return
		}
		ps.timer = qp.stack.env.After(qp.stack.cfg.RetransmitTimeout, ps.timeoutFn)
	}
	qp.sendSeq++
	qp.unacked = append(qp.unacked, ps)
	if tr := qp.stack.cfg.Trace; tr != nil {
		qp.stack.spanSeq++
		// Head sampling: unsampled sends leave ps.span zero so the End
		// side skips too. At full rate ForRequest is the identity.
		if st := tr.ForRequest(qp.stack.spanSeq); st != nil {
			ps.span = qp.stack.spanSeq
			ps.postedAt = qp.stack.env.Now()
			st.Begin(ps.postedAt, qp.stack.traceName(), "send", ps.span)
		}
	}
	qp.transmit(ps)
	return done
}

// endSendSpan closes a pending send's trace span when it resolves and
// splits its duration into wire time vs queue wait: the unloaded
// serialization + propagation time is service, and whatever the send
// actually took beyond that — queueing behind other transfers,
// retransmits, ack turnaround — is wait. The two children tile the
// send span exactly, so critical-path blame can tell "the link was
// busy" apart from "the message was big".
func (qp *QP) endSendSpan(ps *pendingSend) {
	if ps.span == 0 {
		return
	}
	s := qp.stack
	now := s.env.Now()
	tr := s.cfg.Trace
	tr.End(now, s.traceName(), "send", ps.span)
	dur := now - ps.postedAt
	if dur <= 0 {
		return
	}
	wire := s.port.WireTime(fabricSize(s, ps.size))
	if wire > dur {
		wire = dur
	}
	tr.Span(ps.postedAt, ps.postedAt+wire, s.traceName(), "send.wire",
		ps.span, 0, s.traceName(), "send", trace.KindService, "")
	if dur > wire {
		tr.Span(ps.postedAt+wire, now, s.traceName(), "send.qwait",
			ps.span, 0, s.traceName(), "send", trace.KindWait, "")
	}
}

// transmit puts one message on the fabric. The retransmission timer is
// armed only once serialization completes — the NIC cannot time out a
// message that has not finished leaving the port yet.
func (qp *QP) transmit(ps *pendingSend) {
	s := qp.stack
	ps.cancelTimer()
	wire := s.port.Send(&netsim.Message{
		Dst:       qp.remote.Addr,
		WireBytes: fabricSize(s, ps.size),
		Payload: &packet{
			kind:   'D',
			src:    qp.ID(),
			dstQPN: qp.remote.QPN,
			seq:    ps.seq,
			epoch:  qp.epoch,
			data:   ps.data,
			size:   ps.size,
		},
	})
	wire.OnTrigger(ps.armFn)
}

// fabricSize converts a payload size into on-wire bytes: transport
// header plus per-packet framing.
func fabricSize(s *Stack, payload float64) float64 {
	return s.port.Fabric().WireSize(payload + s.cfg.HeaderBytes)
}

// onTimeout handles a retransmission timeout for one message: go-back-N
// resends it and every later unacked message. If any message has
// exhausted its retries the whole window fails and the QP turns broken:
// go-back-N cannot skip the lost sequence, so no later send could ever
// be delivered (previously such sends would silently hang the peer).
func (qp *QP) onTimeout(timed *pendingSend) {
	if Debug != nil {
		Debug("timeout", qp.ID(), timed.seq)
	}
	timed.timer = sim.Timer{}
	if timed.resolved {
		return
	}
	idx := -1
	for i, ps := range qp.unacked {
		if ps == timed {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	for _, ps := range qp.unacked[idx:] {
		if ps.retries+1 > qp.stack.cfg.MaxRetries {
			qp.broken = true
		}
	}
	if qp.broken {
		failed := qp.unacked
		qp.unacked = nil
		for _, ps := range failed {
			ps.resolved = true
			ps.cancelTimer()
			qp.endSendSpan(ps)
			ps.done.Trigger(ErrRetriesExhausted)
		}
		return
	}
	tr := qp.stack.cfg.Trace
	for _, ps := range qp.unacked[idx:] {
		ps.retries++
		qp.retransmits++
		if tr != nil {
			tr.Emit(qp.stack.env.Now(), qp.stack.traceName(), "retransmit",
				fmt.Sprintf("seq %d retry %d", ps.seq, ps.retries))
		}
		qp.transmit(ps)
	}
}

// receive dispatches fabric messages to QPs.
func (s *Stack) receive(m *netsim.Message) {
	pkt, ok := m.Payload.(*packet)
	if !ok {
		return // foreign traffic
	}
	qp, ok := s.qps[pkt.dstQPN]
	if !ok {
		return
	}
	switch pkt.kind {
	case 'D':
		qp.onData(pkt)
	case 'A':
		if pkt.epoch == qp.epoch {
			qp.onAck(pkt.seq)
		}
	}
}

// onData handles an incoming data message: deliver in order, drop
// out-of-order (go-back-N), always re-ack cumulatively. Packets from an
// older connection epoch are dropped without an ack — after a Reconnect
// a stale in-flight data message must not masquerade as a fresh
// sequence number.
func (qp *QP) onData(pkt *packet) {
	if Debug != nil {
		Debug("data", qp.ID(), pkt.seq)
	}
	if pkt.epoch != qp.epoch {
		return
	}
	if pkt.seq == qp.recvNext {
		qp.recvNext++
		if qp.OnRecv != nil {
			qp.OnRecv(&Message{From: pkt.src, Seq: pkt.seq, Data: pkt.data, Size: pkt.size})
		}
	}
	// Cumulative ACK for everything below recvNext (covers duplicates
	// and triggers fast resync after gaps).
	qp.sendAck()
}

func (qp *QP) sendAck() {
	s := qp.stack
	s.port.Send(&netsim.Message{
		Dst:       qp.remote.Addr,
		WireBytes: s.cfg.AckBytes,
		Payload: &packet{
			kind:   'A',
			src:    qp.ID(),
			dstQPN: qp.remote.QPN,
			seq:    qp.recvNext,
			epoch:  qp.epoch,
		},
	})
}

// onAck completes every pending send below the cumulative mark.
func (qp *QP) onAck(next uint64) {
	if Debug != nil {
		Debug("ack", qp.ID(), next)
	}
	kept := qp.unacked[:0]
	var completed []*pendingSend
	for _, ps := range qp.unacked {
		if ps.seq < next {
			ps.resolved = true
			ps.cancelTimer()
			completed = append(completed, ps)
		} else {
			kept = append(kept, ps)
		}
	}
	qp.unacked = kept
	for _, ps := range completed {
		qp.endSendSpan(ps)
		ps.done.Trigger(nil)
	}
}

// Unacked reports the sender's outstanding message count (for tests).
func (qp *QP) Unacked() int { return len(qp.unacked) }
