package rdma

import (
	"testing"
	"testing/quick"

	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
)

// TestPropertyLossyDeliveryInOrder: under any random loss pattern (below
// the retry budget), every message is eventually delivered exactly once
// and in order.
func TestPropertyLossyDeliveryInOrder(t *testing.T) {
	f := func(seed uint16, lossPct uint8) bool {
		lossP := float64(lossPct%60) / 100 // 0..59% loss
		r := rng.New(uint64(seed))

		e := sim.NewEnv()
		fab := netsim.NewFabric(e, netsim.Config{WireLatency: 1e-6, MTU: 4096, PerPktOverhead: 80})
		sa := NewStack(e, fab.NewPort("A", 12.5e9), Config{RetransmitTimeout: 50e-6, MaxRetries: 64})
		sb := NewStack(e, fab.NewPort("B", 12.5e9), Config{RetransmitTimeout: 50e-6, MaxRetries: 64})
		qa, qb := sa.CreateQP(), sb.CreateQP()
		Connect(qa, qb)

		fab.SetLossFn(func(m *netsim.Message) bool {
			// Drop data and acks alike.
			return r.Float64() < lossP
		})

		const n = 25
		var got []uint64
		qb.OnRecv = func(m *Message) { got = append(got, m.Seq) }
		failed := 0
		e.Go("tx", func(p *sim.Proc) {
			evs := make([]*sim.Event, 0, n)
			for i := 0; i < n; i++ {
				evs = append(evs, qa.SendSized(nil, float64(256+i*100)))
			}
			for _, ev := range evs {
				if v := p.Wait(ev); v != nil {
					failed++
				}
			}
		})
		e.Run(0)
		if failed > 0 {
			return false // 64 retries at <60% loss should always succeed
		}
		if len(got) != n {
			return false
		}
		for i, s := range got {
			if s != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoDuplicateDelivery: retransmissions never deliver a
// message twice, even when acks are lost (forcing spurious resends).
func TestPropertyNoDuplicateDelivery(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 7)
		e := sim.NewEnv()
		fab := netsim.NewFabric(e, netsim.DefaultConfig())
		sa := NewStack(e, fab.NewPort("A", 12.5e9), Config{RetransmitTimeout: 30e-6, MaxRetries: 64})
		sb := NewStack(e, fab.NewPort("B", 12.5e9), Config{RetransmitTimeout: 30e-6, MaxRetries: 64})
		qa, qb := sa.CreateQP(), sb.CreateQP()
		Connect(qa, qb)

		// Drop only ACKs, often: data always arrives, acks get lost, so
		// the sender resends data the receiver has already seen.
		fab.SetLossFn(func(m *netsim.Message) bool {
			pkt, ok := m.Payload.(*packet)
			return ok && pkt.kind == 'A' && r.Float64() < 0.5
		})

		counts := map[uint64]int{}
		qb.OnRecv = func(m *Message) { counts[m.Seq]++ }
		e.Go("tx", func(p *sim.Proc) {
			for i := 0; i < 15; i++ {
				p.Wait(qa.SendSized(nil, 1024))
			}
		})
		e.Run(0)
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return len(counts) == 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
