package rdma

import (
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
)

// TestLossSweepExactlyOnceInOrder pipelines a numbered message stream
// through increasingly lossy links and checks the reliability
// contract: every message is delivered exactly once, in order, with a
// bounded number of retransmissions — and a lossless link never
// retransmits at all.
func TestLossSweepExactlyOnceInOrder(t *testing.T) {
	const n = 256
	for _, p := range []float64{0, 0.05, 0.10, 0.20} {
		p := p
		t.Run(fmt.Sprintf("loss=%.0f%%", p*100), func(t *testing.T) {
			e := sim.NewEnv()
			f := netsim.NewFabric(e, netsim.Config{WireLatency: 1e-6, MTU: 4096, PerPktOverhead: 80})
			// Go-back-N charges a retry to every unacked message on each
			// timeout, so the retry budget must scale with pipeline depth;
			// the default budget (8) is sized for the shallow fan-outs the
			// middle tier runs, not a 256-deep stress pipeline.
			cfg := DefaultConfig()
			cfg.MaxRetries = 128
			sa := NewStack(e, f.NewPort("A", 12.5e9), cfg)
			sb := NewStack(e, f.NewPort("B", 12.5e9), DefaultConfig())
			qa, qb := connectedQPs(sa, sb)
			if p > 0 {
				r := rng.New(99)
				f.SetLossFn(func(m *netsim.Message) bool { return r.Float64() < p })
			}
			var got []uint32
			qb.OnRecv = func(m *Message) {
				got = append(got, binary.LittleEndian.Uint32(m.Data))
			}
			var failed int
			e.Go("tx", func(pr *sim.Proc) {
				evs := make([]*sim.Event, n)
				for i := 0; i < n; i++ {
					buf := make([]byte, 4)
					binary.LittleEndian.PutUint32(buf, uint32(i))
					evs[i] = qa.Send(buf)
				}
				for _, ev := range evs {
					if res := pr.Wait(ev); res != nil {
						failed++
					}
				}
			})
			e.Run(0)

			if failed != 0 {
				t.Fatalf("%d of %d sends failed on a recoverable link", failed, n)
			}
			if len(got) != n {
				t.Fatalf("delivered %d messages, want exactly %d", len(got), n)
			}
			for i, v := range got {
				if v != uint32(i) {
					t.Fatalf("delivery out of order at position %d: got seq %d", i, v)
				}
			}
			rtx := qa.Retransmits()
			switch {
			case p == 0 && rtx != 0:
				t.Fatalf("lossless link retransmitted %d times", rtx)
			case p > 0 && rtx == 0:
				t.Fatalf("%.0f%% loss produced no retransmits (loss not injected?)", p*100)
			case rtx > 100*n:
				t.Fatalf("retransmits unbounded: %d for %d messages", rtx, n)
			}
		})
	}
}

// TestBrokenQPReconnectRoundTrip drives a QP through the full failure
// lifecycle: a black-holed link exhausts retries (an error, not a
// hang), the QP turns broken and fails later sends fast, and a
// Reconnect restores it to a working state.
func TestBrokenQPReconnectRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	f := netsim.NewFabric(e, netsim.Config{WireLatency: 1e-6})
	sa := NewStack(e, f.NewPort("A", 12.5e9), Config{RetransmitTimeout: 10e-6, MaxRetries: 2})
	sb := NewStack(e, f.NewPort("B", 12.5e9), DefaultConfig())
	qa, qb := connectedQPs(sa, sb)

	dark := true
	f.SetLossFn(func(m *netsim.Message) bool { return dark })

	var first, second interface{}
	e.Go("tx", func(p *sim.Proc) {
		first = p.Wait(qa.SendSized(nil, 128))
		second = p.Wait(qa.SendSized(nil, 128))
	})
	e.Run(0)

	if first != ErrRetriesExhausted {
		t.Fatalf("black-holed send returned %v, want ErrRetriesExhausted", first)
	}
	if !qa.Broken() {
		t.Fatal("QP not marked broken after retry exhaustion")
	}
	if second != ErrRetriesExhausted {
		t.Fatalf("send on broken QP returned %v, want fail-fast ErrRetriesExhausted", second)
	}

	dark = false
	Reconnect(qa, qb)
	if qa.Broken() || qb.Broken() {
		t.Fatal("QP still broken after Reconnect")
	}
	var delivered []byte
	qb.OnRecv = func(m *Message) { delivered = append([]byte(nil), m.Data...) }
	var res interface{}
	e.Go("tx2", func(p *sim.Proc) { res = p.Wait(qa.Send([]byte("post-reconnect"))) })
	e.Run(0)
	if res != nil {
		t.Fatalf("send after Reconnect failed: %v", res)
	}
	if string(delivered) != "post-reconnect" {
		t.Fatalf("delivered %q after Reconnect", delivered)
	}
}
