package rdma

// Debug, when non-nil, receives transport-level events ("data" for
// arrivals, "ack" for cumulative acknowledgements, "timeout" for
// retransmission timeouts) with the QP they happened on and the
// sequence number involved. It exists for tests and interactive
// debugging of transport behaviour (e.g. spotting go-back-N churn);
// production paths leave it nil, which costs one predictable branch.
var Debug func(event string, qp QPID, seq uint64)
