package rdma

import (
	"bytes"
	"testing"

	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/sim"
)

// pairStacks builds two connected stacks on a private fabric.
func pairStacks(e *sim.Env, rate float64) (*Stack, *Stack, *netsim.Fabric) {
	f := netsim.NewFabric(e, netsim.Config{WireLatency: 1e-6, MTU: 4096, PerPktOverhead: 80})
	sa := NewStack(e, f.NewPort("A", rate), DefaultConfig())
	sb := NewStack(e, f.NewPort("B", rate), DefaultConfig())
	return sa, sb, f
}

func connectedQPs(sa, sb *Stack) (*QP, *QP) {
	qa, qb := sa.CreateQP(), sb.CreateQP()
	Connect(qa, qb)
	return qa, qb
}

func TestSendDeliversRealBytes(t *testing.T) {
	e := sim.NewEnv()
	sa, sb, _ := pairStacks(e, 12.5e9)
	qa, qb := connectedQPs(sa, sb)
	var got []byte
	qb.OnRecv = func(m *Message) { got = append([]byte(nil), m.Data...) }
	payload := []byte("write-request: header+block")
	var ackErr interface{}
	e.Go("tx", func(p *sim.Proc) { ackErr = p.Wait(qa.Send(payload)) })
	e.Run(0)
	if ackErr != nil {
		t.Fatalf("send completed with %v", ackErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q", got)
	}
	if qa.Unacked() != 0 {
		t.Fatalf("unacked = %d after ack", qa.Unacked())
	}
}

func TestInOrderDelivery(t *testing.T) {
	e := sim.NewEnv()
	sa, sb, _ := pairStacks(e, 12.5e9)
	qa, qb := connectedQPs(sa, sb)
	var seqs []uint64
	qb.OnRecv = func(m *Message) { seqs = append(seqs, m.Seq) }
	e.Go("tx", func(p *sim.Proc) {
		var evs []*sim.Event
		for i := 0; i < 20; i++ {
			evs = append(evs, qa.SendSized(nil, 4096))
		}
		p.WaitAll(evs...)
	})
	e.Run(0)
	if len(seqs) != 20 {
		t.Fatalf("delivered %d messages", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("out of order delivery: %v", seqs)
		}
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	e := sim.NewEnv()
	sa, sb, f := pairStacks(e, 12.5e9)
	qa, qb := connectedQPs(sa, sb)
	delivered := 0
	qb.OnRecv = func(*Message) { delivered++ }

	// Drop the first transmission of every data message once.
	dropped := map[uint64]bool{}
	f.SetLossFn(func(m *netsim.Message) bool {
		pkt, ok := m.Payload.(*packet)
		if !ok || pkt.kind != 'D' {
			return false
		}
		if !dropped[pkt.seq] {
			dropped[pkt.seq] = true
			return true
		}
		return false
	})
	var errs int
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if v := p.Wait(qa.SendSized(nil, 1024)); v != nil {
				errs++
			}
		}
	})
	e.Run(0)
	if delivered != 5 || errs != 0 {
		t.Fatalf("delivered=%d errs=%d", delivered, errs)
	}
}

func TestGoBackNOnGap(t *testing.T) {
	// Drop only message seq=1's first transmission while later ones get
	// through; the receiver must discard out-of-order arrivals and end
	// with everything delivered in order.
	e := sim.NewEnv()
	sa, sb, f := pairStacks(e, 12.5e9)
	qa, qb := connectedQPs(sa, sb)
	var seqs []uint64
	qb.OnRecv = func(m *Message) { seqs = append(seqs, m.Seq) }
	first := true
	f.SetLossFn(func(m *netsim.Message) bool {
		pkt, ok := m.Payload.(*packet)
		if ok && pkt.kind == 'D' && pkt.seq == 1 && first {
			first = false
			return true
		}
		return false
	})
	e.Go("tx", func(p *sim.Proc) {
		evs := []*sim.Event{}
		for i := 0; i < 4; i++ {
			evs = append(evs, qa.SendSized(nil, 512))
		}
		p.WaitAll(evs...)
	})
	e.Run(0)
	if len(seqs) != 4 {
		t.Fatalf("delivered %d, want 4 (seqs=%v)", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("delivery order broken: %v", seqs)
		}
	}
}

func TestRetriesExhausted(t *testing.T) {
	e := sim.NewEnv()
	f := netsim.NewFabric(e, netsim.Config{WireLatency: 1e-6})
	sa := NewStack(e, f.NewPort("A", 12.5e9), Config{RetransmitTimeout: 10e-6, MaxRetries: 2})
	sb := NewStack(e, f.NewPort("B", 12.5e9), DefaultConfig())
	qa, qb := connectedQPs(sa, sb)
	_ = qb
	f.SetLossFn(func(m *netsim.Message) bool {
		pkt, ok := m.Payload.(*packet)
		return ok && pkt.kind == 'D' // black-hole all data
	})
	var result interface{}
	e.Go("tx", func(p *sim.Proc) { result = p.Wait(qa.SendSized(nil, 256)) })
	e.Run(0)
	if result != ErrRetriesExhausted {
		t.Fatalf("want ErrRetriesExhausted, got %v", result)
	}
	if qa.Unacked() != 0 {
		t.Fatalf("failed send still pending")
	}
}

func TestThroughputNearLineRate(t *testing.T) {
	// Pipelined 1 MB messages over a 12.5 GB/s (100 Gbps) port should
	// sustain close to line rate.
	e := sim.NewEnv()
	sa, sb, _ := pairStacks(e, 12.5e9)
	qa, qb := connectedQPs(sa, sb)
	received := 0.0
	qb.OnRecv = func(m *Message) { received += m.Size }
	const window = 16
	inflight := 0
	stop := false
	var pump func()
	pump = func() {
		for inflight < window && !stop {
			inflight++
			ev := qa.SendSized(nil, 1<<20)
			ev.OnTrigger(func(interface{}) {
				inflight--
				pump()
			})
		}
	}
	e.Go("tx", func(p *sim.Proc) { pump() })
	dur := 20e-3
	e.After(dur, func() { stop = true })
	e.Run(dur + 1e-3)
	gbps := received * 8 / dur / 1e9
	if gbps < 85 {
		t.Fatalf("achieved %.1f Gbps, want near 100", gbps)
	}
}

func TestUnconnectedSendPanics(t *testing.T) {
	e := sim.NewEnv()
	sa, _, _ := pairStacks(e, 12.5e9)
	qp := sa.CreateQP()
	defer func() {
		if recover() == nil {
			t.Fatal("send on unconnected QP did not panic")
		}
	}()
	qp.Send([]byte("x"))
}

func TestMultipleQPsIndependent(t *testing.T) {
	e := sim.NewEnv()
	sa, sb, _ := pairStacks(e, 12.5e9)
	q1a, q1b := connectedQPs(sa, sb)
	q2a, q2b := connectedQPs(sa, sb)
	var got1, got2 int
	q1b.OnRecv = func(*Message) { got1++ }
	q2b.OnRecv = func(*Message) { got2++ }
	e.Go("tx", func(p *sim.Proc) {
		p.Wait(q1a.SendSized(nil, 100))
		p.Wait(q2a.SendSized(nil, 100))
		p.Wait(q2a.SendSized(nil, 100))
	})
	e.Run(0)
	if got1 != 1 || got2 != 2 {
		t.Fatalf("got1=%d got2=%d", got1, got2)
	}
}

func TestQPIDString(t *testing.T) {
	id := QPID{Addr: "mt0", QPN: 3}
	if id.String() != "mt0/qp3" {
		t.Fatalf("QPID string = %q", id.String())
	}
}

func TestNoRecvHandlerDoesNotBlockAcks(t *testing.T) {
	e := sim.NewEnv()
	sa, sb, _ := pairStacks(e, 12.5e9)
	qa, qb := connectedQPs(sa, sb)
	_ = qb // no OnRecv installed
	var res interface{}
	e.Go("tx", func(p *sim.Proc) { res = p.Wait(qa.SendSized(nil, 128)) })
	e.Run(0)
	if res != nil {
		t.Fatalf("ack missing without recv handler: %v", res)
	}
}
