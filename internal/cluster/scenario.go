package cluster

import (
	"encoding/json"
	"fmt"

	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/middletier"
)

// Scenario is the JSON-friendly description of a cluster plus workload,
// consumed by `smartds-sim -config file.json`. Zero fields keep their
// defaults, so a scenario can be as small as {"kind": "smartds"}.
type Scenario struct {
	// Kind is the middle-tier design: cpu | acc | bf2 | smartds.
	Kind string `json:"kind"`
	// Seed makes the run reproducible.
	Seed uint64 `json:"seed"`

	// Middle-tier knobs.
	Workers          int     `json:"workers"`
	Ports            int     `json:"ports"`
	Replicas         int     `json:"replicas"`
	CompressionLevel int     `json:"compression_level"`
	DDIO             *bool   `json:"ddio"`
	PortGbps         float64 `json:"port_gbps"`
	SplitBytes       int     `json:"split_bytes"`

	// Cluster shape.
	StorageServers int     `json:"storage_servers"`
	Clients        int     `json:"clients"`
	Functional     *bool   `json:"functional"`
	DiskGBps       float64 `json:"disk_gbps"`

	// Workload.
	Window         int     `json:"window"`
	OpenRate       float64 `json:"open_rate"`
	WarmupMs       float64 `json:"warmup_ms"`
	MeasureMs      float64 `json:"measure_ms"`
	ReadFraction   float64 `json:"read_fraction"`
	BypassFraction float64 `json:"bypass_fraction"`

	// Maintenance services on/off.
	Maintenance bool `json:"maintenance"`
}

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("cluster: scenario: %w", err)
	}
	if _, err := sc.kind(); err != nil {
		return nil, err
	}
	if sc.CompressionLevel != 0 && !lz4.Level(sc.CompressionLevel).Valid() {
		return nil, fmt.Errorf("cluster: scenario: compression_level %d out of range 1..9", sc.CompressionLevel)
	}
	if sc.ReadFraction < 0 || sc.ReadFraction > 1 {
		return nil, fmt.Errorf("cluster: scenario: read_fraction %g out of range", sc.ReadFraction)
	}
	if sc.BypassFraction < 0 || sc.BypassFraction > 1 {
		return nil, fmt.Errorf("cluster: scenario: bypass_fraction %g out of range", sc.BypassFraction)
	}
	return &sc, nil
}

func (sc *Scenario) kind() (middletier.Kind, error) {
	switch sc.Kind {
	case "cpu", "cpu-only", "":
		return middletier.CPUOnly, nil
	case "acc", "accel":
		return middletier.Accel, nil
	case "bf2":
		return middletier.BF2, nil
	case "smartds", "sds":
		return middletier.SmartDS, nil
	default:
		return 0, fmt.Errorf("cluster: scenario: unknown kind %q", sc.Kind)
	}
}

// ClusterConfig materializes the cluster half of the scenario.
func (sc *Scenario) ClusterConfig() (Config, error) {
	kind, err := sc.kind()
	if err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig(kind)
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.Workers > 0 {
		cfg.MT.Workers = sc.Workers
	}
	if sc.Ports > 0 {
		cfg.MT.Ports = sc.Ports
	}
	if sc.Replicas > 0 {
		cfg.MT.Replicas = sc.Replicas
	}
	if sc.CompressionLevel > 0 {
		cfg.MT.Level = lz4.Level(sc.CompressionLevel)
	}
	if sc.DDIO != nil {
		cfg.MT.DDIO = *sc.DDIO
	}
	if sc.PortGbps > 0 {
		cfg.MT.PortRate = sc.PortGbps * 1e9 / 8
	}
	if sc.SplitBytes > 0 {
		cfg.MT.SplitBytes = sc.SplitBytes
	}
	if sc.StorageServers > 0 {
		cfg.NumStorage = sc.StorageServers
	}
	if sc.Clients > 0 {
		cfg.NumClients = sc.Clients
	}
	if sc.Functional != nil {
		cfg.Functional = *sc.Functional
	}
	if sc.DiskGBps > 0 {
		cfg.Disk.BytesPerSec = sc.DiskGBps * 1e9
	}
	return cfg, nil
}

// WorkloadConfig materializes the workload half.
func (sc *Scenario) WorkloadConfig() Workload {
	w := Workload{
		Window:         sc.Window,
		Rate:           sc.OpenRate,
		Warmup:         sc.WarmupMs * 1e-3,
		Measure:        sc.MeasureMs * 1e-3,
		ReadFraction:   sc.ReadFraction,
		BypassFraction: sc.BypassFraction,
	}
	if w.Warmup <= 0 {
		w.Warmup = 5e-3
	}
	if w.Measure <= 0 {
		w.Measure = 20e-3
	}
	return w
}
