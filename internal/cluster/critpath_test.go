package cluster

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"github.com/disagg/smartds/internal/critpath"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/telemetry"
	"github.com/disagg/smartds/internal/trace"
)

// allKinds × allProtocols is the full design/protocol matrix the blame
// profiles must hold for.
var critpathKinds = []middletier.Kind{
	middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS,
}

var critpathProtocols = []middletier.Protocol{
	middletier.ProtoPrimary, middletier.ProtoChain, middletier.ProtoQuorum,
}

// TestCritpathTilesExactlyAllDesignsProtocols is the tentpole's core
// invariant at cluster level: for every middle-tier design under every
// replication protocol, every sampled request's critical-path segments
// tile its end-to-end latency EXACTLY — integer picosecond equality,
// not a tolerance — and the blame summary lands in the telemetry run
// record.
func TestCritpathTilesExactlyAllDesignsProtocols(t *testing.T) {
	for _, kind := range critpathKinds {
		for _, proto := range critpathProtocols {
			t.Run(kind.String()+"/"+proto.String(), func(t *testing.T) {
				tr := trace.New(1 << 18)
				reg := telemetry.NewRegistry()
				cfg := DefaultConfig(kind)
				cfg.Seed = 42
				cfg.Functional = false
				cfg.MT.Protocol = proto
				cfg.Trace = tr
				cfg.Telemetry = reg
				cfg.TelemetryExp = "critpath-test"
				c := New(cfg)
				res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 3e-3})
				if res.Requests == 0 || res.Errors != 0 {
					t.Fatalf("run did no clean work: %+v", res)
				}

				a := critpath.Analyze(tr.Events())
				if len(a.Paths) == 0 {
					t.Fatal("no critical paths extracted")
				}
				var total int64
				for _, p := range a.Paths {
					var sum int64
					for _, seg := range p.Segments {
						sum += seg.Dur
					}
					if sum != p.E2E {
						t.Fatalf("req %d: segments sum to %d ps, e2e is %d ps (diff %d)",
							p.Req, sum, p.E2E, p.E2E-sum)
					}
					total += p.E2E
				}
				if total != a.TotalPS {
					t.Fatalf("aggregate total %d != sum of paths %d", a.TotalPS, total)
				}

				// The replication fan-out must be visible on the path: every
				// design/protocol combination records straggler (or hop) wait.
				seen := map[string]bool{}
				for _, sb := range a.Stages {
					seen[sb.Stage] = true
				}
				if !seen["mt/replicate.wait"] {
					t.Errorf("no mt/replicate.wait blame; stages = %v", keys(seen))
				}

				// And the run record must carry the summary the report
				// tooling reads.
				rep := reg.BuildReport("critpath-test", cfg.Seed, true, nil)
				if len(rep.Runs) != 1 || rep.Runs[0].Critpath == nil {
					t.Fatal("run record has no critpath section")
				}
				cp := rep.Runs[0].Critpath
				if cp.Requests != len(a.Paths) || len(cp.Stages) == 0 || cp.P999 == nil {
					t.Fatalf("critpath summary incomplete: %+v", cp)
				}
			})
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestCritpathKeepTailCompleteDAGs pins the KeepTail × critpath
// interaction: with head sampling keeping NOTHING (rate 0), the only
// trace records are tail keeps — p999 outliers and errors — and every
// one of them must still form a complete, exactly-tiling DAG.
func TestCritpathKeepTailCompleteDAGs(t *testing.T) {
	t.Run("p999", func(t *testing.T) {
		tr := trace.New(1 << 18)
		tr.SetSampling(0, 42) // tail keeps only
		cfg := DefaultConfig(middletier.SmartDS)
		cfg.Seed = 42
		cfg.Functional = false
		cfg.Trace = tr
		c := New(cfg)
		// Long enough that each client's histogram passes the 512-count
		// threshold guarding p999 keeps.
		res := c.Run(Workload{Window: 16, Warmup: 1e-3, Measure: 8e-3})
		if res.Requests < 1000 {
			t.Fatalf("only %d requests — not enough mass for p999 keeps", res.Requests)
		}
		if tr.KeptTail() == 0 {
			t.Fatal("no tail keeps despite rate-0 sampling over a long run")
		}
		a := critpath.Analyze(tr.Events())
		if len(a.Paths) == 0 {
			t.Fatal("tail-kept requests produced no critical paths")
		}
		for _, p := range a.Paths {
			if p.RootName != "p999" {
				t.Fatalf("unexpected tail root %q (head sampling should keep nothing)", p.RootName)
			}
			var sum int64
			for _, seg := range p.Segments {
				sum += seg.Dur
			}
			if sum != p.E2E || len(p.Segments) == 0 {
				t.Fatalf("tail-kept req %d: incomplete DAG (%d segments, sum %d, e2e %d)",
					p.Req, len(p.Segments), sum, p.E2E)
			}
		}
	})

	t.Run("error", func(t *testing.T) {
		tr := trace.New(1 << 18)
		tr.SetSampling(0, 42)
		cfg := DefaultConfig(middletier.SmartDS)
		cfg.Seed = 42
		cfg.Functional = false
		cfg.MT.ReplicateTimeout = 1e-3
		cfg.Trace = tr
		c := New(cfg)
		// All three storage servers dark: writes become unroutable and
		// err back to the client, which must tail-keep each one.
		if _, err := c.ApplyFaults(faults.MustParse(
			"crash:ss0@2ms+5ms;crash:ss1@2ms+5ms;crash:ss2@2ms+5ms")); err != nil {
			t.Fatal(err)
		}
		res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 6e-3})
		if res.Errors == 0 {
			t.Fatalf("fault campaign produced no client errors: %+v", res)
		}
		a := critpath.Analyze(tr.Events())
		errPaths := 0
		for _, p := range a.Paths {
			var sum int64
			for _, seg := range p.Segments {
				sum += seg.Dur
			}
			if sum != p.E2E {
				t.Fatalf("tail-kept req %d does not tile: sum %d, e2e %d", p.Req, sum, p.E2E)
			}
			if p.RootName == "error" {
				errPaths++
			}
		}
		if errPaths == 0 {
			t.Fatalf("no error-kept critical paths among %d", len(a.Paths))
		}
	})
}

// TestCritpathBlameDeterminism pins byte determinism of the blame
// profile: two same-seed runs must produce byte-identical critpath
// report sections and byte-identical folded stacks. Runs under CI's
// -run 'Determin' golden step.
func TestCritpathBlameDeterminism(t *testing.T) {
	runOnce := func() ([]byte, []byte) {
		tr := trace.New(1 << 18)
		tr.SetSampling(0.25, 42) // sampled + tail keeps together
		reg := telemetry.NewRegistry()
		folded := critpath.NewFolded()
		cfg := DefaultConfig(middletier.SmartDS)
		cfg.Seed = 42
		cfg.Functional = false
		cfg.Trace = tr
		cfg.CritpathFolded = folded
		cfg.Telemetry = reg
		cfg.TelemetryExp = "determinism"
		c := New(cfg)
		res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 4e-3})
		if res.Requests == 0 {
			t.Fatal("no requests completed")
		}
		rep := reg.BuildReport("determinism", cfg.Seed, true, nil)
		if len(rep.Runs) != 1 || rep.Runs[0].Critpath == nil {
			t.Fatal("no critpath section recorded")
		}
		js, err := json.Marshal(rep.Runs[0].Critpath)
		if err != nil {
			t.Fatal(err)
		}
		var fb bytes.Buffer
		if err := folded.Write(&fb); err != nil {
			t.Fatal(err)
		}
		if fb.Len() == 0 {
			t.Fatal("folded export is empty")
		}
		return js, fb.Bytes()
	}
	jsA, fA := runOnce()
	jsB, fB := runOnce()
	if !bytes.Equal(jsA, jsB) {
		t.Fatalf("critpath sections differ across same-seed runs:\n%s\n%s", jsA, jsB)
	}
	if !bytes.Equal(fA, fB) {
		t.Fatalf("folded stacks differ across same-seed runs:\n%s\n%s", fA, fB)
	}
}

// TestStragglerAcksCounters pins the counter satellite: replicated
// writes bump exactly one per-replica straggler slot per decided
// fan-out, the counts are visible in the telemetry report without any
// tracing, and chain replication (per-hop waits, no fan-out race)
// records none.
func TestStragglerAcksCounters(t *testing.T) {
	run := func(proto middletier.Protocol) (*Cluster, Results, *telemetry.Report) {
		reg := telemetry.NewRegistry()
		cfg := DefaultConfig(middletier.SmartDS)
		cfg.Seed = 42
		cfg.Functional = false
		cfg.MT.Protocol = proto
		cfg.Telemetry = reg
		cfg.TelemetryExp = "straggler"
		c := New(cfg)
		res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 3e-3})
		return c, res, reg.BuildReport("straggler", cfg.Seed, true, nil)
	}

	c, res, rep := run(middletier.ProtoPrimary)
	var sum uint64
	for _, n := range c.MT.StragglerAcks {
		sum += n
	}
	if sum == 0 {
		t.Fatal("primary fan-out bumped no straggler counters")
	}
	if sum < res.Requests/2 {
		t.Errorf("straggler decisions (%d) implausibly few for %d requests", sum, res.Requests)
	}
	found := 0
	for _, mf := range rep.Finals {
		if mf.Name == "smartds_mt_straggler_acks_total" {
			found++
			if mf.Labels["replica"] == "" {
				t.Errorf("straggler counter missing replica label: %+v", mf)
			}
		}
	}
	if found != len(c.MT.StragglerAcks) {
		t.Errorf("report has %d straggler series, want %d", found, len(c.MT.StragglerAcks))
	}

	cc, _, _ := run(middletier.ProtoChain)
	for i, n := range cc.MT.StragglerAcks {
		if n != 0 {
			t.Errorf("chain replication bumped straggler slot %d = %d (per-hop waits have no fan-out race)", i, n)
		}
	}
}
