package cluster

import (
	"bytes"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/telemetry"
)

// telemetryRun executes one small instrumented run and returns the
// registry plus the cluster's results.
func telemetryRun(t *testing.T, kind middletier.Kind, faultSpec string) (*telemetry.Registry, Results) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := smallCfg(kind)
	cfg.Functional = false
	cfg.Telemetry = reg
	cfg.TelemetryExp = "test"
	c := New(cfg)
	if faultSpec != "" {
		sched, err := faults.Parse(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ApplyFaults(sched); err != nil {
			t.Fatal(err)
		}
	}
	res := c.Run(Workload{Window: 16, Warmup: 2e-3, Measure: 8e-3})
	return reg, res
}

func TestTelemetryWiring(t *testing.T) {
	for _, kind := range []middletier.Kind{middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			reg, res := telemetryRun(t, kind, "")
			runs := reg.Runs()
			if len(runs) != 1 {
				t.Fatalf("run records = %d, want 1", len(runs))
			}
			rr := runs[0]
			if rr.Experiment != "test" || rr.Requests != res.Requests ||
				rr.Errors != res.Errors || rr.ThroughputBps != res.Throughput {
				t.Fatalf("run record %+v does not match results %+v", rr, res)
			}
			if rr.Latency.P999 != res.Lat.P999 {
				t.Fatalf("latency summary mismatch")
			}
			// The client-side counter final must agree with the measured
			// request count (both read the same Done counters).
			if got := rr.Counters["smartds_client_requests_total"]; got != float64(res.Requests) {
				t.Fatalf("counter final %g != measured requests %d", got, res.Requests)
			}
			// Time series were sampled over an 8 ms window on the default
			// 100 µs cadence: every scope counter/gauge has points.
			rep := reg.BuildReport("t", 42, true, nil)
			if len(rep.Series) == 0 {
				t.Fatalf("no sampled series in report")
			}
			for _, se := range rep.Series {
				if se.Digest.Points == 0 {
					t.Fatalf("series %s%v sampled no points", se.Name, se.Labels)
				}
			}
			// Designs with hardware engines expose occupancy + HBM gauges.
			if kind == middletier.BF2 || kind == middletier.SmartDS {
				var om bytes.Buffer
				if err := reg.WriteOpenMetrics(&om); err != nil {
					t.Fatal(err)
				}
				for _, want := range []string{"smartds_engine_bytes_total", "smartds_hbm_bytes_per_sec"} {
					if !strings.Contains(om.String(), want) {
						t.Fatalf("%v snapshot missing %s", kind, want)
					}
				}
			}
		})
	}
}

func TestTelemetryFaultSummaryAttached(t *testing.T) {
	reg, _ := telemetryRun(t, middletier.SmartDS, "crash:ss0@3ms+2ms")
	rr := reg.Runs()[0]
	if rr.Faults == nil {
		t.Fatalf("no fault summary on run record")
	}
	if len(rr.Faults.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v, want 1 entry", rr.Faults.Recoveries)
	}
	ttr := rr.Faults.Recoveries[0]
	if ttr.Kind != "crash" || ttr.Target != "ss0" || ttr.Start != 3e-3 {
		t.Fatalf("TTR = %+v", ttr)
	}
	if ttr.TimeToRecover < 0 {
		t.Fatalf("service never recovered: %+v", ttr)
	}
	// Transport and degraded-mode counters must have registered the
	// campaign: go-back-N retransmitted into the dark server, and the
	// middle tier placed writes on fewer replicas while it was gone.
	var retransmits float64
	for name, v := range rr.Counters { //detcheck:ordered integer-valued counters, the sum is order-independent
		if strings.HasPrefix(name, "smartds_rdma_retransmits_total") {
			retransmits += v
		}
	}
	if retransmits == 0 {
		t.Fatalf("no retransmits recorded despite storage crash: %v", rr.Counters)
	}
	if rr.Counters["smartds_mt_degraded_total"] == 0 {
		t.Fatalf("no degraded placements recorded despite storage crash: %v", rr.Counters)
	}
}

// TestTelemetryGoldenDeterminism pins the PR's headline contract: two
// same-seed instrumented runs produce byte-identical run reports and
// OpenMetrics snapshots. Runs under CI's -count=1 golden step.
func TestTelemetryGoldenDeterminism(t *testing.T) {
	artifact := func() (string, string) {
		reg, _ := telemetryRun(t, middletier.SmartDS, "crash:ss0@3ms+2ms")
		rep := reg.BuildReport("golden", 42, true, map[string]string{"exp": "test"})
		var rj, om bytes.Buffer
		if err := telemetry.WriteReport(&rj, rep); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteOpenMetrics(&om); err != nil {
			t.Fatal(err)
		}
		return rj.String(), om.String()
	}
	rep1, om1 := artifact()
	rep2, om2 := artifact()
	if rep1 != rep2 {
		t.Fatalf("same-seed run reports differ:\n--- first ---\n%.2000s\n--- second ---\n%.2000s", rep1, rep2)
	}
	if om1 != om2 {
		t.Fatalf("same-seed OpenMetrics snapshots differ:\n--- first ---\n%.2000s\n--- second ---\n%.2000s", om1, om2)
	}
}
