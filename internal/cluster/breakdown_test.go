package cluster

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/trace"
)

func runTraced(t *testing.T, kind middletier.Kind, seed uint64) (*trace.Tracer, Results) {
	t.Helper()
	cfg := DefaultConfig(kind)
	cfg.Seed = seed
	cfg.Functional = false
	cfg.Trace = trace.New(1 << 16)
	c := New(cfg)
	res := c.Run(Workload{Window: 16, Warmup: 1e-3, Measure: 5e-3})
	return cfg.Trace, res
}

func TestWriteStageBreakdownSumsToE2E(t *testing.T) {
	kinds := []middletier.Kind{middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS}
	for _, kind := range kinds {
		tr, res := runTraced(t, kind, 42)
		b := StageBreakdownFor(tr, WriteStages, res.Lat.Mean)
		if len(b.Stages) != len(WriteStages) {
			t.Fatalf("%v: got %d stages, want %d: %+v", kind, len(b.Stages), len(WriteStages), b.Stages)
		}
		if cov := b.Coverage(); math.Abs(cov-1) > 0.10 {
			t.Errorf("%v: stage means cover %.1f%% of the measured e2e mean (sum %g, e2e %g)",
				kind, 100*cov, b.SumOfMeans, b.E2EMean)
		}
	}
}

func TestTracedRunLeaksNoSpans(t *testing.T) {
	tr, res := runTraced(t, middletier.SmartDS, 7)
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("run did no work: %+v", res)
	}
	// The drain grace period lets every inflight request unwind, so all
	// Begin/End pairs must have matched.
	if open := tr.OpenSpans(); open != 0 {
		t.Errorf("open spans after drain = %d", open)
	}
	if tr.Leaked() != 0 {
		t.Errorf("leaked spans = %d", tr.Leaked())
	}
}

func TestChromeTraceFromClusterRun(t *testing.T) {
	tr, _ := runTraced(t, middletier.SmartDS, 42)
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Every required write stage appears as matched B/E pairs, and the
	// resource counters made it in.
	begins := map[string]int{}
	ends := map[string]int{}
	counters := map[string]bool{}
	for _, ev := range events {
		name, _ := ev["name"].(string)
		switch ev["ph"] {
		case "B":
			begins[name]++
		case "E":
			ends[name]++
		case "C":
			counters[name] = true
		}
	}
	for _, stage := range []string{"parse", "compress", "replicate", "ack", "request", "reply"} {
		if begins[stage] == 0 || begins[stage] != ends[stage] {
			t.Errorf("stage %q: %d begins, %d ends", stage, begins[stage], ends[stage])
		}
	}
	if !counters["mt.mem.read Gbps"] || !counters["mt.sds.pcie.h2d Gbps"] {
		t.Errorf("missing counter tracks, got %v", counters)
	}
}

func TestTraceDeterministicAcrossRuns(t *testing.T) {
	dump := func() string {
		tr, _ := runTraced(t, middletier.SmartDS, 42)
		var b strings.Builder
		if err := tr.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := dump(), dump(); a != b {
		t.Fatal("same-seed runs produced different traces")
	}
}
