package cluster

import (
	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/critpath"
	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/slo"
	"github.com/disagg/smartds/internal/telemetry"
	"github.com/disagg/smartds/internal/trace"
)

// Workload drives the cluster. With Rate == 0 each client runs a
// closed loop of Window outstanding requests (the paper's "one server
// keeps issuing write requests"); otherwise requests arrive open-loop
// Poisson at Rate requests/second total.
type Workload struct {
	Window         int
	Rate           float64
	Warmup         float64
	Measure        float64
	ReadFraction   float64
	BypassFraction float64
}

// DefaultWorkload returns a saturating write-only closed loop.
func DefaultWorkload() Workload {
	return Workload{
		Window:  32,
		Warmup:  5e-3,
		Measure: 30e-3,
	}
}

// Results summarizes one run.
type Results struct {
	Duration   float64
	Requests   uint64
	Errors     uint64
	Throughput float64 // payload bytes/second (the paper's Gbps axis)
	ReqPerSec  float64
	Lat        metrics.Summary

	// Middle-tier resource rates over the measurement window.
	MemReadRate, MemWriteRate float64
	NICH2D, NICD2H            float64 // host NIC PCIe (CPUOnly/Accel)
	AccelH2D, AccelD2H        float64 // accelerator card PCIe (Accel)
	SDSH2D, SDSD2H            float64 // SmartDS card PCIe
	VerifyMismatches          uint64

	// Alerts fired by the run's SLO burn-rate engine (empty without
	// Config.SLO), in deterministic firing order.
	Alerts []slo.Alert
}

// TotalPCIeH2D sums every PCIe endpoint's host-to-device rate.
func (r Results) TotalPCIeH2D() float64 { return r.NICH2D + r.AccelH2D + r.SDSH2D }

// TotalPCIeD2H sums every PCIe endpoint's device-to-host rate.
func (r Results) TotalPCIeD2H() float64 { return r.NICD2H + r.AccelD2H + r.SDSD2H }

// issue sends one request from the client.
func (cl *Client) issue(w Workload) {
	cl.nextReq++
	id := cl.nextReq
	c := cl.c
	blockSize := c.cfg.MT.BlockSize

	isRead := w.ReadFraction > 0 && cl.rng.Float64() < w.ReadFraction && len(cl.writtenLBAs) > 0
	op := "write"
	if isRead {
		op = "read"
	}
	// One sampling decision covers the request end to end: the client
	// spans here, the net span, and (because the middle tier hashes the
	// same trace id) every middle-tier stage span.
	tid := middletier.TraceID(uint64(cl.id), id)
	tr := c.cfg.Trace.ForRequest(tid)
	// The client span is the request root: the end-to-end interval every
	// stage span tiles in critical-path analysis. The outbound net span
	// is its first child.
	tr.BeginReq(c.Env.Now(), cl.comp, op, id, tid, trace.KindRoot)
	tr.BeginReq(c.Env.Now(), "net", "request", tid, tid, trace.KindService)
	if isRead {
		lba := cl.writtenLBAs[cl.rng.Intn(len(cl.writtenLBAs))]
		loc := c.geo.Resolve(lba)
		h := blockstore.Header{
			Op: blockstore.OpRead, VMID: uint64(cl.id), ReqID: id,
			SegmentID: loc.SegmentID, ChunkID: loc.ChunkID, BlockOff: loc.BlockOff,
		}
		cl.inflight[id] = &issued{at: c.Env.Now(), size: float64(blockSize), isRead: true, block: cl.writtenData[lba]}
		cl.qp.SendSized(h.Encode(), blockstore.HeaderSize)
		return
	}

	// Each client writes unique LBAs (its id in the high bits), so a
	// read always targets a fully durable, unambiguous version.
	lba := uint64(cl.id)<<40 | cl.nextLBA
	cl.nextLBA++
	loc := c.geo.Resolve(lba)
	h := blockstore.Header{
		Op: blockstore.OpWrite, VMID: uint64(cl.id), ReqID: id,
		SegmentID: loc.SegmentID, ChunkID: loc.ChunkID, BlockOff: loc.BlockOff,
		OrigLen: uint32(blockSize),
	}
	if w.BypassFraction > 0 && cl.rng.Float64() < w.BypassFraction {
		h.Flags |= blockstore.FlagLatencySensitive
	}
	iss := &issued{at: c.Env.Now(), size: float64(blockSize), lba: lba}
	cl.inflight[id] = iss
	if c.cfg.Functional {
		block := c.corpus.Block(blockSize)
		h.CRC = lz4.Checksum(block)
		iss.block = block
		cl.qp.Send(blockstore.Message(&h, block))
	} else {
		cl.qp.SendSized(h.Encode(), float64(blockstore.HeaderSize+blockSize))
	}
}

// rememberWrite tracks written blocks so reads can verify round trips
// (bounded to keep memory flat on long runs).
func (cl *Client) rememberWrite(lba uint64, block []byte) {
	const maxTracked = 4096
	if cl.writtenData == nil {
		cl.writtenData = make(map[uint64][]byte)
	}
	if _, seen := cl.writtenData[lba]; !seen {
		if len(cl.writtenLBAs) >= maxTracked {
			// Overwrite a random tracked slot.
			i := cl.rng.Intn(len(cl.writtenLBAs))
			delete(cl.writtenData, cl.writtenLBAs[i])
			cl.writtenLBAs[i] = lba
		} else {
			cl.writtenLBAs = append(cl.writtenLBAs, lba)
		}
	}
	cl.writtenData[lba] = block
}

// Run executes the workload and returns measured results.
func (c *Cluster) Run(w Workload) Results {
	if w.Window <= 0 && w.Rate <= 0 {
		w.Window = DefaultWorkload().Window
	}
	if w.Measure <= 0 {
		w.Measure = DefaultWorkload().Measure
	}

	running := true
	for _, cl := range c.Clients {
		cl.Lat.Reset()
		cl.Done = 0
		cl.BytesMoved = 0
	}

	// Open a telemetry run scope: one record per Run invocation, with
	// every layer's instruments registered under (exp, design, run-seq)
	// labels and sampled on the registry's sim-clock cadence.
	var scope *telemetry.RunScope
	if c.cfg.Telemetry != nil {
		scope = c.cfg.Telemetry.NewRun(c.cfg.TelemetryExp, c.KindName(), c.cfg.Seed)
		scope.SetProtocol(c.MT.ReplicatorName())
		c.instrument(scope)
	}
	ev0 := c.Env.Events()
	// Cursor into the shared trace ring: clusters in one process share a
	// tracer (and restart virtual time at 0), so the per-run event
	// window is delimited by record position, not by timestamps.
	ev0trace := c.cfg.Trace.Recorded()

	// Attach the SLO burn-rate engine for this run. sloHook is
	// overwritten (not chained) every Run so engines never stack.
	var eng *slo.Engine
	if len(c.cfg.SLO) > 0 {
		eng = slo.NewEngine(c.Env, c.cfg.SLO, 100e-6)
		for _, cl := range c.Clients {
			cl.sloHook = eng.Observe
		}
	}

	clog := c.cfg.Log.With("cluster")
	if clog.Enabled(evlog.Info) {
		clog.Info("run_start", "design", c.KindName(), "seed", c.cfg.Seed,
			"clients", len(c.Clients), "measure", w.Measure)
	}

	if w.Rate > 0 {
		perClient := w.Rate / float64(len(c.Clients))
		for _, cl := range c.Clients {
			cl := cl
			c.Env.Go("client.open", func(p *sim.Proc) {
				for running {
					p.Sleep(cl.rng.Exp(1 / perClient))
					if !running {
						return
					}
					cl.issue(w)
				}
			})
		}
	} else {
		for _, cl := range c.Clients {
			cl := cl
			cl.onComplete = func() {
				if running {
					cl.issue(w)
				}
			}
			c.Env.Go("client.closed", func(p *sim.Proc) {
				for i := 0; i < w.Window; i++ {
					cl.issue(w)
				}
			})
		}
	}

	var memA, memB mem.BandwidthSnapshot
	var nicA, nicB, accA, accB, sdsA, sdsB pcie.Snapshot
	snapshot := func() (mem.BandwidthSnapshot, pcie.Snapshot, pcie.Snapshot, pcie.Snapshot) {
		var nic, acc, sds pcie.Snapshot
		if c.MT.NIC() != nil {
			nic = c.MT.NIC().PCIe().Snapshot()
		}
		if c.MT.AccelPCIe() != nil {
			acc = c.MT.AccelPCIe().Snapshot()
		}
		if c.MT.Device() != nil {
			sds = c.MT.Device().PCIe().Snapshot()
		}
		return c.MT.Mem.Snapshot(), nic, acc, sds
	}

	start := c.Env.Now()
	if scope != nil {
		scope.StartSampling(c.Env, start+w.Warmup+w.Measure)
	}
	eng.Run(start + w.Warmup + w.Measure)
	// Export periodic resource-utilization counters alongside the request
	// spans: middle-tier memory and PCIe bandwidth plus the first
	// client's NIC PSLink, sampled on a fixed virtual-time grid so
	// same-seed runs produce identical traces.
	if tr := c.cfg.Trace; tr != nil {
		const interval = 100e-6
		stop := start + w.Warmup + w.Measure
		prevMem, prevNIC, prevAcc, prevSDS := snapshot()
		prevTx := c.Clients[0].stack.Port().TxStats()
		prevRx := c.Clients[0].stack.Port().RxStats()
		sample := func() {
			now := c.Env.Now()
			m, nic, acc, sds := snapshot()
			rd, wr := mem.RatesBetween(prevMem, m)
			tr.Counter(now, "mt.mem.read Gbps", metrics.BytesPerSecToGbps(rd))
			tr.Counter(now, "mt.mem.write Gbps", metrics.BytesPerSecToGbps(wr))
			if c.MT.NIC() != nil {
				h2d, d2h := pcie.RatesBetween(prevNIC, nic)
				tr.Counter(now, "mt.nic.pcie.h2d Gbps", metrics.BytesPerSecToGbps(h2d))
				tr.Counter(now, "mt.nic.pcie.d2h Gbps", metrics.BytesPerSecToGbps(d2h))
			}
			if c.MT.AccelPCIe() != nil {
				h2d, d2h := pcie.RatesBetween(prevAcc, acc)
				tr.Counter(now, "mt.accel.pcie.h2d Gbps", metrics.BytesPerSecToGbps(h2d))
				tr.Counter(now, "mt.accel.pcie.d2h Gbps", metrics.BytesPerSecToGbps(d2h))
			}
			if c.MT.Device() != nil {
				h2d, d2h := pcie.RatesBetween(prevSDS, sds)
				tr.Counter(now, "mt.sds.pcie.h2d Gbps", metrics.BytesPerSecToGbps(h2d))
				tr.Counter(now, "mt.sds.pcie.d2h Gbps", metrics.BytesPerSecToGbps(d2h))
			}
			tx := c.Clients[0].stack.Port().TxStats()
			rx := c.Clients[0].stack.Port().RxStats()
			tr.Counter(now, "vm0.nic.tx Gbps", metrics.BytesPerSecToGbps(sim.BandwidthBetween(prevTx, tx)))
			tr.Counter(now, "vm0.nic.rx Gbps", metrics.BytesPerSecToGbps(sim.BandwidthBetween(prevRx, rx)))
			prevMem, prevNIC, prevAcc, prevSDS = m, nic, acc, sds
			prevTx, prevRx = tx, rx
		}
		// Ride the shared 100 µs ticker: the telemetry sampler above
		// subscribes to the same grid, so both fire off one calendar
		// entry per tick (sampler first — subscription order).
		c.Env.Ticker(interval).Subscribe(stop, sample)
	}
	c.Env.At(start+w.Warmup, func() {
		memA, nicA, accA, sdsA = snapshot()
		for _, cl := range c.Clients {
			cl.measuring = true
		}
	})
	end := start + w.Warmup + w.Measure
	c.Env.At(end, func() {
		memB, nicB, accB, sdsB = snapshot()
		for _, cl := range c.Clients {
			cl.measuring = false
		}
		running = false
	})
	// Drain grace period so inflight requests unwind.
	c.Env.Run(end + 5e-3)

	res := Results{Duration: w.Measure}
	lat := metrics.NewLatencyHistogram()
	for _, cl := range c.Clients {
		res.Requests += cl.Done
		res.Errors += cl.Errors
		res.Throughput += cl.BytesMoved / w.Measure
		res.VerifyMismatches += cl.VerifyMismatches()
		lat.Merge(cl.Lat)
	}
	res.ReqPerSec = float64(res.Requests) / w.Measure
	res.Lat = lat.Summarize()
	res.MemReadRate, res.MemWriteRate = mem.RatesBetween(memA, memB)
	res.NICH2D, res.NICD2H = pcie.RatesBetween(nicA, nicB)
	res.AccelH2D, res.AccelD2H = pcie.RatesBetween(accA, accB)
	res.SDSH2D, res.SDSD2H = pcie.RatesBetween(sdsA, sdsB)
	if eng != nil && c.inj != nil && c.faultSched != nil {
		// Recoveries arrive in schedule order, so TTR alerts land in a
		// deterministic order too.
		for _, r := range c.inj.Monitor.Stats(c.faultSched).Recoveries {
			eng.ObserveTTR(end, r.Event.Kind.String(), r.Event.Target, r.TimeToRecover)
		}
	}
	res.Alerts = eng.Alerts()
	for _, al := range res.Alerts {
		if clog.Enabled(evlog.Error) {
			clog.Error("slo_alert", "slo", al.SLO, "kind", al.Kind,
				"severity", al.Severity, "at", al.At, "detail", al.Detail)
		}
	}
	if scope != nil {
		scope.RecordResults(res.Duration, res.Requests, res.Errors,
			res.Throughput, res.ReqPerSec, res.Lat)
		scope.RecordSimEvents(c.Env.Events() - ev0)
		if c.inj != nil && c.faultSched != nil {
			scope.RecordFaults(faultSummary(c.inj.Monitor.Stats(c.faultSched)))
		}
		if len(res.Alerts) > 0 {
			scope.RecordAlerts(alertSummary(res.Alerts))
		}
	}
	if c.cfg.Trace != nil && (scope != nil || c.cfg.CritpathFolded != nil) {
		// Blame profile over this run's sampled requests: critical paths
		// reconstructed from this run's slice of the trace ring and
		// attributed per stage. The telemetry record gets the summary;
		// the folded accumulator gets the stacks, grouped by design and
		// protocol so a sweep's flamegraph stays separable.
		if a := critpath.Analyze(c.cfg.Trace.EventsSince(ev0trace)); len(a.Paths) > 0 {
			if scope != nil {
				scope.RecordCritpath(critpathSummary(a))
			}
			c.cfg.CritpathFolded.Add(c.KindName()+":"+c.MT.ReplicatorName(), a)
		}
	}
	return res
}

// KindName returns the middle-tier label used in tables.
func (c *Cluster) KindName() string {
	k := c.cfg.MT.Kind
	if k == middletier.SmartDS {
		return "SmartDS-" + itoa(c.cfg.MT.Ports)
	}
	return k.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
