package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/trace"
)

// allKinds is the full design matrix the fault battery must pass.
var allKinds = []middletier.Kind{
	middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS,
}

// TestFailoverUnderLoadBattery kills a storage server mid-workload for
// every middle-tier design and verifies the durability contract: every
// write the client saw acknowledged is still readable, with the
// correct bytes, from a replica the placement map currently points at.
func TestFailoverUnderLoadBattery(t *testing.T) {
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(kind)
			cfg.Seed = 7
			cfg.NumStorage = 5 // room to lose one and still place 3 replicas
			cfg.MT.ReplicateTimeout = 1.5e-3
			c := New(cfg)

			sched := faults.MustParse("crash:ss1@4ms+4ms")
			inj, err := c.ApplyFaults(sched)
			if err != nil {
				t.Fatalf("ApplyFaults: %v", err)
			}
			res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 12e-3})

			if res.Requests == 0 {
				t.Fatal("no requests completed")
			}
			if res.VerifyMismatches != 0 {
				t.Fatalf("%d read-verify mismatches", res.VerifyMismatches)
			}
			if err := c.CheckAckedWrites(); err != nil {
				t.Fatalf("durability violated: %v", err)
			}
			// The crash must actually have bitten the write path: writes
			// during the dark window either rerouted (degraded placement),
			// retried a stranded fan-out, or were refused.
			if c.MT.Degraded+c.MT.ReplicateRetries+c.MT.Unroutable == 0 {
				t.Fatal("crash left no trace on the middle tier (fault not injected?)")
			}
			st := inj.Monitor.Stats(sched)
			if len(st.Recoveries) != 1 {
				t.Fatalf("want 1 recovery record, got %d", len(st.Recoveries))
			}
			if st.Recoveries[0].TimeToRecover < 0 {
				t.Fatal("service never completed a request after the crash")
			}
		})
	}
}

// TestRebuildServerRestoresCrashedStore fail-stops a storage server
// after a run — so the placement map still references it — and checks
// that RebuildServer streams the lost chunks back from surviving
// replicas: re-replication bytes are counted and the store holds
// records again.
func TestRebuildServerRestoresCrashedStore(t *testing.T) {
	cfg := DefaultConfig(middletier.SmartDS)
	cfg.Seed = 3
	cfg.NumStorage = 5
	c := New(cfg)
	res := c.Run(Workload{Window: 8, Warmup: 0.5e-3, Measure: 3e-3})
	if res.Errors > 0 {
		t.Fatalf("healthy run errored: %d", res.Errors)
	}
	srv := c.Storage[1]
	before := srv.Store().Records()
	if before == 0 {
		t.Skip("seed placed no replicas on ss1; pick another seed")
	}

	srv.Crash()
	if srv.Store().Records() != 0 {
		t.Fatal("Crash did not lose the store contents")
	}
	srv.Recover()
	c.MT.ReconnectStorage(1, srv)
	var rebuilt float64
	c.Env.Go("rebuild", func(p *sim.Proc) {
		rebuilt = c.MT.RebuildServer(p, 1, c.Storage)
	})
	c.Env.Run(0)

	if rebuilt == 0 {
		t.Fatal("RebuildServer streamed no bytes despite lost replicas")
	}
	if c.MT.RebuildBytes != rebuilt {
		t.Fatalf("RebuildBytes counter %v != returned %v", c.MT.RebuildBytes, rebuilt)
	}
	if after := srv.Store().Records(); after != before {
		t.Fatalf("rebuild restored %d records, crashed server held %d", after, before)
	}
	if err := c.CheckAckedWrites(); err != nil {
		t.Fatalf("durability violated after rebuild: %v", err)
	}
}

// runCampaign executes one seeded run (modeled payloads for speed) and
// returns every observable artifact as comparable values: the result
// struct rendered to text, the fault report tables, and the raw trace
// event stream.
func runCampaign(t *testing.T, spec string) (string, []trace.Event) {
	t.Helper()
	cfg := DefaultConfig(middletier.SmartDS)
	cfg.Seed = 11
	cfg.NumStorage = 5
	cfg.Functional = false // determinism must hold in modeled mode too
	cfg.MT.ReplicateTimeout = 1.5e-3
	tr := trace.New(1 << 16)
	cfg.Trace = tr
	c := New(cfg)

	var inj *faults.Injector
	var sched *faults.Schedule
	if spec != "" {
		sched = faults.MustParse(spec)
		var err error
		inj, err = c.ApplyFaults(sched)
		if err != nil {
			t.Fatalf("ApplyFaults: %v", err)
		}
	}
	res := c.Run(Workload{Window: 16, Warmup: 1e-3, Measure: 8e-3})
	out := fmt.Sprintf("%+v", res)
	if inj != nil {
		out += "\n" + inj.Report().String()
		out += "\n" + inj.Monitor.Stats(sched).Table().String()
	}
	return out, tr.Events()
}

// TestFaultCampaignDeterminism runs the same seed twice — once without
// faults and once under a campaign — and requires byte-identical
// metrics output and trace streams. This is the property that makes a
// campaign-found failover bug replayable under a debugger.
func TestFaultCampaignDeterminism(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"baseline", ""},
		{"campaign", "loss:vm0->mt@2ms+2ms:0.05;crash:ss1@4ms+2ms"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out1, ev1 := runCampaign(t, tc.spec)
			out2, ev2 := runCampaign(t, tc.spec)
			if out1 != out2 {
				t.Fatalf("metrics drifted between same-seed runs:\n--- run1\n%s\n--- run2\n%s", out1, out2)
			}
			if len(ev1) != len(ev2) {
				t.Fatalf("trace streams differ in length: %d vs %d", len(ev1), len(ev2))
			}
			for i := range ev1 {
				if !reflect.DeepEqual(ev1[i], ev2[i]) {
					t.Fatalf("trace streams diverge at event %d:\n run1 %+v\n run2 %+v", i, ev1[i], ev2[i])
				}
			}
		})
	}
}
