package cluster

import (
	"testing"

	"github.com/disagg/smartds/internal/device"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/trace"
)

// smallCfg returns a quick functional cluster config.
func smallCfg(kind middletier.Kind) Config {
	cfg := DefaultConfig(kind)
	if kind == middletier.SmartDS {
		cfg.MT.HBM = device.MemoryConfig{Capacity: 256 << 20}
		cfg.MT.SmartDSInflight = 32
	}
	return cfg
}

func runSmall(t *testing.T, kind middletier.Kind, w Workload) (*Cluster, Results) {
	t.Helper()
	c := New(smallCfg(kind))
	if w.Measure == 0 {
		w = Workload{Window: 16, Warmup: 2e-3, Measure: 10e-3}
	}
	res := c.Run(w)
	if res.Requests == 0 {
		t.Fatalf("%v served no requests", kind)
	}
	if res.Errors != 0 {
		t.Fatalf("%v returned %d errors", kind, res.Errors)
	}
	return c, res
}

func TestAllKindsServeWrites(t *testing.T) {
	for _, kind := range []middletier.Kind{middletier.CPUOnly, middletier.Accel, middletier.BF2, middletier.SmartDS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c, res := runSmall(t, kind, Workload{})
			if res.Lat.Mean <= 0 {
				t.Fatal("no latency recorded")
			}
			// Every write really landed on all three storage servers.
			for i, srv := range c.Storage {
				if srv.Writes == 0 {
					t.Fatalf("storage server %d received no writes", i)
				}
			}
			t.Logf("%v: %s, %.0f req/s, lat %v", kind,
				metrics.FormatGbps(res.Throughput), res.ReqPerSec, res.Lat)
		})
	}
}

func TestFunctionalDataIntegrity(t *testing.T) {
	// Writes then reads with CRC verification end to end, on the two
	// extreme designs.
	for _, kind := range []middletier.Kind{middletier.CPUOnly, middletier.SmartDS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := smallCfg(kind)
			c := New(cfg)
			for _, srv := range c.Storage {
				srv.Verify = true
			}
			res := c.Run(Workload{Window: 8, Warmup: 2e-3, Measure: 20e-3, ReadFraction: 0.3})
			if res.Errors != 0 {
				t.Fatalf("errors: %d", res.Errors)
			}
			if res.VerifyMismatches != 0 {
				t.Fatalf("read verification mismatches: %d", res.VerifyMismatches)
			}
			if c.MT.ReadsDone == 0 {
				t.Fatal("no reads served")
			}
		})
	}
}

func TestSmartDSBeatsCPUOnlyAtTwoCores(t *testing.T) {
	// The headline: with 2 host cores, SmartDS-1 delivers far more
	// write throughput than CPU-only (whose two cores can compress
	// ~4-5 Gbps of blocks).
	runKind := func(kind middletier.Kind) Results {
		cfg := smallCfg(kind)
		cfg.MT.Workers = 2
		c := New(cfg)
		return c.Run(Workload{Window: 64, Warmup: 3e-3, Measure: 20e-3})
	}
	cpu := runKind(middletier.CPUOnly)
	sds := runKind(middletier.SmartDS)
	t.Logf("CPU-only: %s, SmartDS-1: %s",
		metrics.FormatGbps(cpu.Throughput), metrics.FormatGbps(sds.Throughput))
	if sds.Throughput < 3*cpu.Throughput {
		t.Fatalf("SmartDS (%s) should dwarf CPU-only (%s) at 2 cores",
			metrics.FormatGbps(sds.Throughput), metrics.FormatGbps(cpu.Throughput))
	}
}

func TestSmartDSBarelyTouchesHostMemoryAndPCIe(t *testing.T) {
	cfg := smallCfg(middletier.SmartDS)
	c := New(cfg)
	res := c.Run(Workload{Window: 64, Warmup: 3e-3, Measure: 20e-3})
	// The paper's §5.5 estimate: SmartDS-6 uses 49 Gbps host memory and
	// 12.4 Gbps PCIe to serve 348 Gbps of storage traffic (~14% / ~4%).
	// Only headers, completions, and acks cross to the host.
	hostTraffic := res.MemReadRate + res.MemWriteRate
	if hostTraffic > 0.2*res.Throughput {
		t.Fatalf("SmartDS host memory traffic %s vs payload %s: split not working",
			metrics.FormatGbps(hostTraffic), metrics.FormatGbps(res.Throughput))
	}
	pcieTraffic := res.SDSH2D + res.SDSD2H
	if pcieTraffic > 0.2*res.Throughput {
		t.Fatalf("SmartDS PCIe traffic %s vs payload %s",
			metrics.FormatGbps(pcieTraffic), metrics.FormatGbps(res.Throughput))
	}
}

func TestCPUOnlyScalesWithCores(t *testing.T) {
	run := func(workers int) float64 {
		cfg := smallCfg(middletier.CPUOnly)
		cfg.MT.Workers = workers
		c := New(cfg)
		res := c.Run(Workload{Window: 4 * workers, Warmup: 3e-3, Measure: 15e-3})
		return res.Throughput
	}
	t2 := run(2)
	t8 := run(8)
	t.Logf("CPU-only 2 cores: %s, 8 cores: %s", metrics.FormatGbps(t2), metrics.FormatGbps(t8))
	if t8 < 2.5*t2 {
		t.Fatalf("CPU-only did not scale with cores: %g -> %g", t2, t8)
	}
	// 2 cores compress ~4.2 Gbps; sanity-check the absolute value.
	gbps2 := metrics.BytesPerSecToGbps(t2)
	if gbps2 < 2 || gbps2 > 7 {
		t.Fatalf("CPU-only 2-core throughput %.1f Gbps outside the plausible band", gbps2)
	}
}

func TestBypassSkipsCompression(t *testing.T) {
	cfg := smallCfg(middletier.SmartDS)
	c := New(cfg)
	res := c.Run(Workload{Window: 8, Warmup: 2e-3, Measure: 10e-3, BypassFraction: 1.0})
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if c.MT.BypassHits == 0 {
		t.Fatal("bypass flag ignored")
	}
	// Engine processed nothing.
	inst, _ := c.MT.Device().OpenRoCEInstance(0)
	if inst.Engine().Processed() > 0 {
		t.Fatal("bypass writes still hit the compression engine")
	}
}

func TestFailoverReroutesWrites(t *testing.T) {
	cfg := smallCfg(middletier.CPUOnly)
	cfg.NumStorage = 5
	c := New(cfg)
	c.MT.SetServerDown(0, true)
	res := c.Run(Workload{Window: 8, Warmup: 2e-3, Measure: 10e-3})
	if res.Errors != 0 {
		t.Fatalf("errors with server down: %d", res.Errors)
	}
	if c.Storage[0].Writes != 0 {
		t.Fatal("down server still received writes")
	}
	// Chunk-level placement pins each chunk to 3 servers; the client's
	// sequential LBAs live in one chunk, so exactly one healthy replica
	// set (3 of the 4 healthy servers) carries the load.
	served := 0
	for i := 1; i < 5; i++ {
		if c.Storage[i].Writes > 0 {
			served++
		}
	}
	if served < 3 {
		t.Fatalf("only %d healthy servers received writes, want >= 3", served)
	}
}

func TestMaintenanceServicesRun(t *testing.T) {
	cfg := smallCfg(middletier.CPUOnly)
	c := New(cfg)
	m := c.MT.StartMaintenance(middletier.MaintenanceConfig{
		CompactionInterval: 5e-3,
		SnapshotInterval:   10e-3,
	}, c.Storage)
	res := c.Run(Workload{Window: 8, Warmup: 2e-3, Measure: 50e-3})
	m.Stop()
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if m.CompactionPasses == 0 || m.Snapshots == 0 {
		t.Fatalf("maintenance idle: compaction=%d snapshots=%d", m.CompactionPasses, m.Snapshots)
	}
}

func TestModeledModeMatchesShape(t *testing.T) {
	// Modeled (non-functional) runs must work and give the same order
	// of magnitude as functional runs.
	cfg := smallCfg(middletier.CPUOnly)
	cfg.Functional = false
	c := New(cfg)
	res := c.Run(Workload{Window: 16, Warmup: 2e-3, Measure: 10e-3})
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("modeled run failed: %+v", res)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Results {
		c := New(smallCfg(middletier.SmartDS))
		return c.Run(Workload{Window: 16, Warmup: 2e-3, Measure: 10e-3})
	}
	a, b := run(), run()
	if a.Requests != b.Requests || a.Lat.Mean != b.Lat.Mean || a.Throughput != b.Throughput {
		t.Fatalf("nondeterministic cluster runs:\n%+v\n%+v", a, b)
	}
}

func TestRequestTracing(t *testing.T) {
	cfg := smallCfg(middletier.SmartDS)
	cfg.Trace = trace.New(1 << 14)
	c := New(cfg)
	c.Run(Workload{Window: 8, Warmup: 2e-3, Measure: 6e-3, ReadFraction: 0.2})
	spans := cfg.Trace.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	foundWrite := false
	for _, s := range spans {
		if s.Count <= 0 || s.Mean <= 0 {
			t.Fatalf("degenerate span %+v", s)
		}
		if s.Label == "client0/write" {
			foundWrite = true
			// Client-observed span means are storage-latency scale.
			if s.Mean < 1e-6 || s.Mean > 1e-2 {
				t.Fatalf("implausible write span mean %g", s.Mean)
			}
		}
	}
	if !foundWrite {
		t.Fatalf("client0/write span missing: %+v", spans)
	}
	if len(cfg.Trace.Events()) == 0 {
		t.Fatal("no events recorded")
	}
}

func TestAdaptiveEffortImprovesRatioWhenIdle(t *testing.T) {
	// At light load the adaptive policy spends more effort, so stored
	// bytes shrink versus the fixed-fast baseline on the same blocks.
	run := func(adaptive bool, level int) float64 {
		cfg := smallCfg(middletier.CPUOnly)
		cfg.MT.AdaptiveEffort = adaptive
		if level > 0 {
			cfg.MT.Level = lz4.Level(level)
		}
		cfg.MT.Workers = 8
		c := New(cfg)
		// Window 1: the compressor is always idle when a request arrives.
		c.Run(Workload{Window: 1, Warmup: 2e-3, Measure: 15e-3})
		if c.MT.WritesDone == 0 {
			t.Fatal("no writes served")
		}
		return c.MT.BytesStored / float64(c.MT.WritesDone)
	}
	fast := run(false, 1)
	adaptive := run(true, 1)
	t.Logf("stored bytes/write: fast=%.0f adaptive=%.0f", fast, adaptive)
	if adaptive >= fast {
		t.Fatalf("adaptive effort did not improve ratio: %.0f vs %.0f", adaptive, fast)
	}
}

func TestOpenLoopPoissonWorkload(t *testing.T) {
	cfg := smallCfg(middletier.SmartDS)
	cfg.Functional = false
	c := New(cfg)
	const rate = 200000 // req/s, far below capacity
	res := c.Run(Workload{Rate: rate, Warmup: 4e-3, Measure: 20e-3})
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	// Arrival rate within 15% of the requested Poisson rate.
	if res.ReqPerSec < rate*0.85 || res.ReqPerSec > rate*1.15 {
		t.Fatalf("open-loop rate %.0f, want ~%d", res.ReqPerSec, rate)
	}
	// Under light load, latency is unqueued: far below the closed-loop
	// saturation latencies.
	if res.Lat.Mean > 60e-6 {
		t.Fatalf("light-load latency %v implausibly high", res.Lat.Mean)
	}
}

func TestOpenLoopOverload(t *testing.T) {
	// An open-loop rate far above capacity must not wedge the cluster:
	// throughput caps at capacity and the run still completes.
	cfg := smallCfg(middletier.CPUOnly)
	cfg.Functional = false
	cfg.MT.Workers = 2 // ~4.2 Gbps capacity = ~128k req/s
	c := New(cfg)
	res := c.Run(Workload{Rate: 400000, Warmup: 2e-3, Measure: 8e-3})
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	served := res.ReqPerSec
	if served > 200000 {
		t.Fatalf("overloaded middle tier served %.0f req/s, above its capacity", served)
	}
	if served < 50000 {
		t.Fatalf("overloaded middle tier collapsed to %.0f req/s", served)
	}
}
