package cluster

import (
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/trace"
)

// WriteStages lists the spans that tile one client write request in
// virtual time: client issue to middle-tier entry, the four middle-tier
// stages, and the reply's trip back. Because each stage begins exactly
// where the previous one ends, the per-stage means sum to the
// client-observed write latency.
var WriteStages = []string{
	"net/request",
	"mt/parse",
	"mt/compress",
	"mt/replicate",
	"mt/ack",
	"net/reply",
}

// ReadStages is the read-path tiling.
var ReadStages = []string{
	"net/request",
	"mt/parse",
	"mt/fetch",
	"mt/decompress",
	"net/reply",
}

// StageBreakdown attributes end-to-end latency to pipeline stages.
type StageBreakdown struct {
	Stages     []trace.SpanStats
	SumOfMeans float64 // sum of per-stage mean durations (seconds)
	E2EMean    float64 // measured end-to-end mean latency (seconds)
}

// Coverage reports what fraction of the end-to-end mean the stage
// means account for (1.0 when the tiling is gap-free).
func (b StageBreakdown) Coverage() float64 {
	if b.E2EMean <= 0 {
		return 0
	}
	return b.SumOfMeans / b.E2EMean
}

// StageBreakdownFor pulls the named stage histograms out of a tracer
// and pairs them with a measured end-to-end mean (e.g. Results.Lat.Mean).
func StageBreakdownFor(tr *trace.Tracer, stages []string, e2eMean float64) StageBreakdown {
	b := StageBreakdown{E2EMean: e2eMean}
	byLabel := make(map[string]trace.SpanStats)
	for _, s := range tr.Spans() {
		byLabel[s.Label] = s
	}
	for _, label := range stages {
		s, ok := byLabel[label]
		if !ok || s.Count == 0 {
			continue
		}
		b.Stages = append(b.Stages, s)
		b.SumOfMeans += s.Mean
	}
	return b
}

// Table renders the breakdown the way experiment output expects: one
// row per stage plus the reconciliation against the measured mean.
func (b StageBreakdown) Table(title string) *metrics.Table {
	tbl := metrics.NewTable(title, "stage", "count", "mean", "p50", "p99", "max")
	for _, s := range b.Stages {
		tbl.AddRow(s.Label, s.Count,
			metrics.FormatDuration(s.Mean), metrics.FormatDuration(s.P50),
			metrics.FormatDuration(s.P99), metrics.FormatDuration(s.Max))
	}
	tbl.AddNote("stage means sum to %s; measured end-to-end mean %s (%.1f%% covered)",
		metrics.FormatDuration(b.SumOfMeans), metrics.FormatDuration(b.E2EMean),
		100*b.Coverage())
	return tbl
}
