package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/telemetry"
)

// TestProtocolLossSweep drives every replication protocol through the
// RDMA loss sweep (0-20% packet loss on every fabric link) with a
// mixed read/write workload and real payloads. Go-back-N must hide the
// loss from the protocols completely: every read observes the bytes
// the acked write carried (exactly-once, in-order delivery at the
// transport plus read-observes-write at the protocol — for quorum that
// includes version-ranked reads repairing stale replicas), and the
// durability contract holds for every acked write.
func TestProtocolLossSweep(t *testing.T) {
	for _, proto := range middletier.Protocols() {
		for _, p := range []float64{0, 0.05, 0.10, 0.20} {
			proto, p := proto, p
			t.Run(fmt.Sprintf("%s/loss=%.0f%%", proto, p*100), func(t *testing.T) {
				t.Parallel()
				cfg := smallCfg(middletier.CPUOnly)
				cfg.Seed = 23
				cfg.MT.Protocol = proto
				cfg.MT.ReplicateTimeout = 1.5e-3
				c := New(cfg)
				if p > 0 {
					r := rng.New(99)
					c.Fabric.SetLossFn(func(m *netsim.Message) bool { return r.Float64() < p })
				}
				res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 8e-3, ReadFraction: 0.4})

				if res.Requests == 0 {
					t.Fatal("no requests completed")
				}
				if c.MT.ReadsDone == 0 {
					t.Fatal("no reads served; the sweep must exercise the read path")
				}
				if res.VerifyMismatches != 0 {
					t.Fatalf("%d reads returned bytes that did not match the acked write", res.VerifyMismatches)
				}
				if err := c.CheckAckedWrites(); err != nil {
					t.Fatalf("durability violated under %.0f%% loss: %v", p*100, err)
				}
				rtx := uint64(0)
				for _, st := range c.MT.TransportStacks() {
					rtx += st.Stats().Retransmits
				}
				if p > 0 && rtx == 0 {
					t.Fatalf("%.0f%% loss produced no retransmits (loss not injected?)", p*100)
				}
				if p == 0 && rtx != 0 {
					t.Fatalf("lossless fabric retransmitted %d times", rtx)
				}
			})
		}
	}
}

// TestProtocolStaleAckBattery is the cluster-level stale-ack
// regression (the unit-level interleaving is pinned in
// middletier's TestPrimaryReplicatorRetryIgnoresStaleAck): a scripted
// campaign degrades one storage link hard while the replicate timeout
// is tight, so fan-outs time out, retry under fresh ids, and the
// slow-but-alive server's acks arrive after abandonment. Those
// stragglers must be counted stale — not credited to the retry — and
// the durability contract must hold for everything the client saw
// acked.
func TestProtocolStaleAckBattery(t *testing.T) {
	for _, proto := range middletier.Protocols() {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smallCfg(middletier.CPUOnly)
			cfg.Seed = 17
			cfg.NumStorage = 5
			cfg.MT.Protocol = proto
			// Tight enough that a 50x-degraded link's acks miss it.
			cfg.MT.ReplicateTimeout = 60e-6
			c := New(cfg)
			sched := faults.MustParse("degrade:ss1@2ms+5ms:0.02")
			if _, err := c.ApplyFaults(sched); err != nil {
				t.Fatal(err)
			}
			res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 10e-3})

			if res.Requests == 0 {
				t.Fatal("no requests completed")
			}
			if c.MT.ReplicateRetries == 0 {
				t.Fatal("degraded link never forced a replicate retry (schedule too gentle?)")
			}
			if c.MT.StaleAcks == 0 {
				t.Fatal("no stale acks: stragglers from abandoned fan-outs were not exercised")
			}
			if res.VerifyMismatches != 0 {
				t.Fatalf("%d read-verify mismatches", res.VerifyMismatches)
			}
			if err := c.CheckAckedWrites(); err != nil {
				t.Fatalf("stale-ack accounting broke durability: %v", err)
			}
		})
	}
}

// TestProtocolReportGoldenDeterminism pins the cross-protocol golden
// contract: for each replication protocol, two same-seed instrumented
// campaign runs produce byte-identical run reports, and the report
// carries the protocol label so per-protocol runs stay
// distinguishable. Runs under CI's -run 'Determin' golden step.
func TestProtocolReportGoldenDeterminism(t *testing.T) {
	for _, proto := range middletier.Protocols() {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			artifact := func() string {
				reg := telemetry.NewRegistry()
				cfg := smallCfg(middletier.SmartDS)
				cfg.Seed = 42
				cfg.Functional = false
				cfg.NumStorage = 5
				cfg.MT.Protocol = proto
				cfg.MT.ReplicateTimeout = 1.5e-3
				cfg.Telemetry = reg
				cfg.TelemetryExp = "golden-protocols"
				c := New(cfg)
				sched := faults.MustParse("crash:ss1@3ms+2ms")
				if _, err := c.ApplyFaults(sched); err != nil {
					t.Fatal(err)
				}
				c.Run(Workload{Window: 16, Warmup: 2e-3, Measure: 8e-3})
				rr := reg.Runs()[0]
				if rr.Protocol != proto.String() {
					t.Fatalf("run record protocol = %q, want %q", rr.Protocol, proto)
				}
				rep := reg.BuildReport("golden-protocols", 42, true, nil)
				var buf bytes.Buffer
				if err := telemetry.WriteReport(&buf, rep); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			first, second := artifact(), artifact()
			if first != second {
				t.Fatalf("same-seed %s reports differ:\n--- first ---\n%.2000s\n--- second ---\n%.2000s",
					proto, first, second)
			}
		})
	}
}
