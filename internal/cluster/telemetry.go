package cluster

import (
	"strconv"

	"github.com/disagg/smartds/internal/critpath"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/pcie"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/slo"
	"github.com/disagg/smartds/internal/telemetry"
)

// instrument registers every layer's instruments under the given run
// scope: client-observed progress and latency, the middle tier's
// degraded-mode counters and fan-out depth, transport health per RDMA
// stack, fabric port rates and queue depths, compression engine
// occupancy, and on-card / host memory bandwidth. Rate gauges close a
// window per sample tick via stateful snapshots; the dt<=0 guards in
// the *Between helpers make coincident reads yield 0, never Inf/NaN.
func (c *Cluster) instrument(sc *telemetry.RunScope) {
	// Client-observed progress: the numbers the paper's axes plot.
	sc.CounterFunc("smartds_client_requests_total",
		"Requests completed by all clients inside the measurement window.",
		nil, func() float64 {
			var n uint64
			for _, cl := range c.Clients {
				n += cl.Done
			}
			return float64(n)
		})
	sc.CounterFunc("smartds_client_bytes_total",
		"Payload bytes completed by all clients inside the measurement window.",
		nil, func() float64 {
			var b float64
			for _, cl := range c.Clients {
				b += cl.BytesMoved
			}
			return b
		})
	sc.CounterFunc("smartds_client_errors_total",
		"Requests completed with a non-OK status.",
		nil, func() float64 {
			var n uint64
			for _, cl := range c.Clients {
				n += cl.Errors
			}
			return float64(n)
		})
	for i, cl := range c.Clients {
		// Kept so sampled completions can attach exemplars in onReply.
		cl.latMetric = sc.Histogram("smartds_client_latency_seconds",
			"Client-observed request latency.",
			map[string]string{"client": strconv.Itoa(i)}, cl.Lat)
	}

	// Hierarchical roll-ups: per-client latency folds into one cluster
	// series, per-node/stack transport health into one cluster counter.
	// AddRollup is idempotent per destination, so repeated Runs reuse
	// the same rules.
	reg := c.cfg.Telemetry
	reg.AddRollup("smartds_client_latency_seconds", "smartds_cluster_latency_seconds",
		"Client-observed request latency rolled up across all clients.", "client")
	reg.AddRollup("smartds_rdma_retransmits_total", "smartds_cluster_rdma_retransmits_total",
		"Go-back-N resends rolled up across every node and stack.", "node", "stack")
	reg.AddRollup("smartds_rdma_qp_resets_total", "smartds_cluster_rdma_qp_resets_total",
		"QP resets rolled up across every node and stack.", "node", "stack")

	// Middle-tier request handling and degraded-mode behavior.
	mt := c.MT
	sc.CounterFunc("smartds_mt_writes_total", "Writes completed by the middle tier.",
		nil, func() float64 { return float64(mt.WritesDone) })
	sc.CounterFunc("smartds_mt_reads_total", "Reads completed by the middle tier.",
		nil, func() float64 { return float64(mt.ReadsDone) })
	sc.CounterFunc("smartds_mt_bypass_total", "Latency-sensitive writes that bypassed compression.",
		nil, func() float64 { return float64(mt.BypassHits) })
	sc.CounterFunc("smartds_mt_bytes_in_total", "Payload bytes received from clients.",
		nil, func() float64 { return mt.BytesIn })
	sc.CounterFunc("smartds_mt_bytes_stored_total", "Bytes shipped to storage after compression.",
		nil, func() float64 { return mt.BytesStored })
	sc.CounterFunc("smartds_mt_degraded_total", "Writes placed on fewer than the configured replicas.",
		nil, func() float64 { return float64(mt.Degraded) })
	sc.CounterFunc("smartds_mt_unroutable_total", "Requests with no healthy replica at all.",
		nil, func() float64 { return float64(mt.Unroutable) })
	sc.CounterFunc("smartds_mt_replicate_retries_total", "Replication fan-outs re-issued after timeout.",
		nil, func() float64 { return float64(mt.ReplicateRetries) })
	sc.CounterFunc("smartds_mt_retry_bytes_total", "Payload bytes re-sent by replication retries.",
		nil, func() float64 { return mt.RetryBytes })
	sc.CounterFunc("smartds_mt_engine_fallbacks_total", "Writes stored raw because an engine was down.",
		nil, func() float64 { return float64(mt.EngineFallbacks) })
	sc.CounterFunc("smartds_mt_engine_reroutes_total", "SmartDS writes compressed by a surviving port's engine.",
		nil, func() float64 { return float64(mt.EngineReroutes) })
	sc.CounterFunc("smartds_mt_rebuild_bytes_total", "Snapshot bytes streamed rebuilding crashed servers.",
		nil, func() float64 { return mt.RebuildBytes })
	sc.CounterFunc("smartds_mt_stale_acks_total", "Storage acks arriving after their fan-out completed or was abandoned.",
		nil, func() float64 { return float64(mt.StaleAcks) })
	// Which replica slot decided each fan-out (the straggler whose ack
	// closed the wait): visible per replica index without tracing, so a
	// consistently slow replica shows up in any metrics dump.
	for ri := range mt.StragglerAcks {
		ri := ri
		sc.CounterFunc("smartds_mt_straggler_acks_total",
			"Fan-out completions whose deciding (last-needed) ack came from this replica slot.",
			map[string]string{"replica": strconv.Itoa(ri)},
			func() float64 { return float64(mt.StragglerAcks[ri]) })
	}
	sc.CounterFunc("smartds_mt_read_repairs_total", "Stale replicas rewritten by quorum reads.",
		nil, func() float64 { return float64(mt.ReadRepairs) })
	sc.CounterFunc("smartds_mt_repair_bytes_total", "Frame bytes pushed by quorum read-repairs.",
		nil, func() float64 { return mt.RepairBytes })
	sc.CounterFunc("smartds_mt_backfill_bytes_total", "Chunk snapshot bytes copied onto substituted replicas.",
		nil, func() float64 { return mt.BackfillBytes })
	sc.GaugeFunc("smartds_mt_inflight_fanouts", "Client requests with replication fan-outs outstanding.",
		nil, func() float64 { return float64(mt.InflightFanouts()) })

	// Transport health: one label set per RDMA stack. The middle tier's
	// stacks carry both client and storage traffic; the storage servers'
	// stacks see the replication fan-out.
	for si, st := range mt.TransportStacks() {
		st := st
		labels := map[string]string{"node": "mt", "stack": strconv.Itoa(si)}
		sc.CounterFunc("smartds_rdma_retransmits_total", "Go-back-N resends across the stack's QPs.",
			labels, func() float64 { return float64(st.Stats().Retransmits) })
		sc.CounterFunc("smartds_rdma_qp_resets_total", "QP resets (Reconnect incarnations).",
			labels, func() float64 { return float64(st.Stats().Resets) })
		sc.GaugeFunc("smartds_rdma_unacked", "Sends posted but not yet acked (in flight).",
			labels, func() float64 { return float64(st.Stats().Unacked) })
		sc.GaugeFunc("smartds_rdma_broken_qps", "QPs wedged awaiting Reconnect.",
			labels, func() float64 { return float64(st.Stats().Broken) })
	}
	for i, srv := range c.Storage {
		st := srv.Stack()
		labels := map[string]string{"node": "ss" + strconv.Itoa(i), "stack": "0"}
		sc.CounterFunc("smartds_rdma_retransmits_total", "Go-back-N resends across the stack's QPs.",
			labels, func() float64 { return float64(st.Stats().Retransmits) })
		sc.CounterFunc("smartds_rdma_qp_resets_total", "QP resets (Reconnect incarnations).",
			labels, func() float64 { return float64(st.Stats().Resets) })
		sc.GaugeFunc("smartds_rdma_unacked", "Sends posted but not yet acked (in flight).",
			labels, func() float64 { return float64(st.Stats().Unacked) })
	}

	// Fabric ports: serialized rate per direction plus instantaneous
	// queue depth, one label set per middle-tier port.
	for pi, port := range mt.NetPorts() {
		port := port
		labels := map[string]string{"node": "mt", "port": strconv.Itoa(pi)}
		prevTx, prevRx := port.TxStats(), port.RxStats()
		sc.GaugeFunc("smartds_port_tx_bytes_per_sec", "Port transmit rate over the last sample window.",
			labels, func() float64 {
				cur := port.TxStats()
				r := sim.BandwidthBetween(prevTx, cur)
				prevTx = cur
				return r
			})
		sc.GaugeFunc("smartds_port_rx_bytes_per_sec", "Port receive rate over the last sample window.",
			labels, func() float64 {
				cur := port.RxStats()
				r := sim.BandwidthBetween(prevRx, cur)
				prevRx = cur
				return r
			})
		sc.GaugeFunc("smartds_port_tx_queue_depth", "Transfers serializing through the TX direction.",
			labels, func() float64 { return float64(port.TxQueueLen()) })
		sc.GaugeFunc("smartds_port_rx_queue_depth", "Transfers serializing through the RX direction.",
			labels, func() float64 { return float64(port.RxQueueLen()) })
	}

	// Compression engines: windowed occupancy, queue depth, and bytes
	// processed (BF2 SoC engine or SmartDS per-port engines).
	for ei, eng := range mt.Engines() {
		eng := eng
		labels := map[string]string{"engine": strconv.Itoa(ei)}
		prevU := eng.Utilization()
		sc.GaugeFunc("smartds_engine_occupancy", "Engine busy fraction over the last sample window.",
			labels, func() float64 {
				cur := eng.Utilization()
				u := sim.UtilizationBetween(prevU, cur)
				prevU = cur
				return u
			})
		sc.GaugeFunc("smartds_engine_queue_depth", "Jobs waiting for the engine.",
			labels, func() float64 { return float64(eng.QueueLen()) })
		sc.CounterFunc("smartds_engine_bytes_total", "Input bytes processed by the engine.",
			labels, func() float64 { return eng.Processed() })
	}

	// On-card memory (BF2 DRAM / SmartDS HBM): bus bandwidth + bytes
	// resident.
	if dm := mt.DeviceMemory(); dm != nil {
		prevBus := dm.BusStats()
		sc.GaugeFunc("smartds_hbm_bytes_per_sec", "On-card memory bus rate over the last sample window.",
			nil, func() float64 {
				cur := dm.BusStats()
				r := sim.BandwidthBetween(prevBus, cur)
				prevBus = cur
				return r
			})
		sc.GaugeFunc("smartds_hbm_bytes_in_use", "Bytes allocated in on-card memory.",
			nil, func() float64 { return float64(dm.InUse()) })
	}

	// Host memory and PCIe endpoints of the middle-tier server.
	{
		prev := mt.Mem.Snapshot()
		sc.GaugeFunc("smartds_mt_mem_read_bytes_per_sec", "Host memory read rate over the last sample window.",
			nil, func() float64 {
				cur := mt.Mem.Snapshot()
				rd, _ := mem.RatesBetween(prev, cur)
				prev = cur
				return rd
			})
	}
	{
		prev := mt.Mem.Snapshot()
		sc.GaugeFunc("smartds_mt_mem_write_bytes_per_sec", "Host memory write rate over the last sample window.",
			nil, func() float64 {
				cur := mt.Mem.Snapshot()
				_, wr := mem.RatesBetween(prev, cur)
				prev = cur
				return wr
			})
	}
	type pcieEndpoint struct {
		name string
		link *pcie.Link
	}
	endpoints := []pcieEndpoint{}
	if mt.NIC() != nil {
		endpoints = append(endpoints, pcieEndpoint{"nic", mt.NIC().PCIe()})
	}
	if mt.AccelPCIe() != nil {
		endpoints = append(endpoints, pcieEndpoint{"accel", mt.AccelPCIe()})
	}
	if mt.Device() != nil {
		endpoints = append(endpoints, pcieEndpoint{"sds", mt.Device().PCIe()})
	}
	for _, ep := range endpoints {
		link := ep.link
		labels := map[string]string{"endpoint": ep.name}
		{
			prev := link.Snapshot()
			sc.GaugeFunc("smartds_pcie_h2d_bytes_per_sec", "PCIe host-to-device rate over the last sample window.",
				labels, func() float64 {
					cur := link.Snapshot()
					h2d, _ := pcie.RatesBetween(prev, cur)
					prev = cur
					return h2d
				})
		}
		{
			prev := link.Snapshot()
			sc.GaugeFunc("smartds_pcie_d2h_bytes_per_sec", "PCIe device-to-host rate over the last sample window.",
				labels, func() float64 {
					cur := link.Snapshot()
					_, d2h := pcie.RatesBetween(prev, cur)
					prev = cur
					return d2h
				})
		}
	}
}

// faultSummary converts the monitor's campaign stats into the report's
// layer-independent mirror.
func faultSummary(st faults.Stats) telemetry.FaultSummary {
	fs := telemetry.FaultSummary{
		BaselineP99:    st.BaselineP99,
		MaxGap:         st.MaxGap,
		Unavailable:    st.Unavailable,
		ElevatedWindow: st.ElevatedWindow,
		Errors:         st.Errors,
	}
	for _, r := range st.Recoveries {
		fs.Recoveries = append(fs.Recoveries, telemetry.TTR{
			Kind:          r.Event.Kind.String(),
			Target:        r.Event.Target,
			Start:         r.Event.Start,
			TimeToRecover: r.TimeToRecover,
		})
	}
	return fs
}

// critpathSummary converts a blame analysis into the report's
// layer-independent mirror (same pattern as faultSummary).
func critpathSummary(a *critpath.Analysis) telemetry.CritpathSummary {
	cs := telemetry.CritpathSummary{Requests: len(a.Paths)}
	for _, sb := range a.Stages {
		cs.Stages = append(cs.Stages, telemetry.CritpathStage{
			Stage:    sb.Stage,
			Wait:     sb.Wait,
			MeanFrac: sb.MeanFrac,
			P99Frac:  sb.P99Frac,
			P999Frac: sb.P999Frac,
			MeanSec:  sb.MeanSec,
		})
	}
	cs.P99 = critpathExemplar(a.P99)
	cs.P999 = critpathExemplar(a.P999)
	return cs
}

// critpathExemplar converts one percentile exemplar path.
func critpathExemplar(p *critpath.Path) *telemetry.CritpathExemplar {
	if p == nil {
		return nil
	}
	ex := &telemetry.CritpathExemplar{
		TraceID: telemetry.FormatTraceID(p.Req),
		E2E:     float64(p.E2E) * 1e-12,
	}
	for _, seg := range p.Segments {
		ex.Segments = append(ex.Segments, telemetry.CritpathSegment{
			Stage: seg.Stage,
			Wait:  seg.Wait,
			Dur:   float64(seg.Dur) * 1e-12,
			Frac:  float64(seg.Dur) / float64(p.E2E),
		})
	}
	return ex
}

// alertSummary converts fired SLO alerts into the report's
// layer-independent mirror (same pattern as faultSummary).
func alertSummary(alerts []slo.Alert) []telemetry.Alert {
	out := make([]telemetry.Alert, 0, len(alerts))
	for _, al := range alerts {
		out = append(out, telemetry.Alert{
			SLO:       al.SLO,
			Kind:      al.Kind,
			Severity:  al.Severity,
			At:        al.At,
			BurnShort: al.BurnShort,
			BurnLong:  al.BurnLong,
			Detail:    al.Detail,
		})
	}
	return out
}
