// Package cluster assembles the full disaggregated block storage
// system — compute clients (VM storage agents), one middle-tier server
// of any Figure 1 design, and the storage back ends — and drives
// workloads against it, measuring client-observed throughput and
// latency the way the paper's evaluation does.
package cluster

import (
	"fmt"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/corpus"
	"github.com/disagg/smartds/internal/critpath"
	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/slo"
	"github.com/disagg/smartds/internal/storage"
	"github.com/disagg/smartds/internal/telemetry"
	"github.com/disagg/smartds/internal/trace"
)

// Config assembles one cluster.
type Config struct {
	Seed       uint64
	MT         middletier.Config
	NumStorage int
	NumClients int
	// Functional moves real corpus blocks through the system (LZ4
	// compressed for real, CRC-verified at the storage servers). When
	// false, payload sizes are modeled (fast large sweeps).
	Functional bool
	Fabric     netsim.Config
	Disk       storage.DiskConfig
	// ClientPortRate is the compute-server NIC rate.
	ClientPortRate float64
	// Trace, when set, records request lifecycle spans.
	Trace *trace.Tracer
	// CritpathFolded, when set (with Trace), accumulates each Run's
	// critical-path blame as folded stacks prefixed by the design name,
	// for flamegraph.pl / speedscope export.
	CritpathFolded *critpath.Folded
	// Telemetry, when set, registers this cluster's instruments with
	// the central registry: each Run opens a run scope labeled
	// (TelemetryExp, design, run-seq), samples every gauge/counter on
	// the registry's sim-clock cadence, and records the run's results
	// for the machine-readable report.
	Telemetry *telemetry.Registry
	// TelemetryExp labels the run records with the owning experiment.
	TelemetryExp string
	// SLO, when non-empty, attaches a burn-rate engine to every Run:
	// completions stream into multi-window burn-rate evaluation on the
	// 100 µs grid and fault recoveries are checked against TTR ceilings.
	// Fired alerts land in Results.Alerts and the telemetry run record.
	SLO []slo.Spec
	// Log, when set, receives structured sim-time events from every
	// layer (cluster runs, middle-tier rebuilds, fault transitions).
	Log *evlog.Logger
}

// DefaultConfig wires the paper's testbed: one middle-tier server,
// three storage servers, one load-generating compute server.
func DefaultConfig(kind middletier.Kind) Config {
	return Config{
		Seed:           42,
		MT:             middletier.DefaultConfig(kind),
		NumStorage:     3,
		NumClients:     1,
		Functional:     true,
		Fabric:         netsim.DefaultConfig(),
		Disk:           storage.DefaultDisk(),
		ClientPortRate: 12.5e9,
	}
}

// Cluster is the assembled system.
type Cluster struct {
	Env     *sim.Env
	Fabric  *netsim.Fabric
	MT      *middletier.Server
	Storage []*storage.Server
	Clients []*Client

	cfg    Config
	corpus *corpus.Corpus
	rng    *rng.Source
	geo    blockstore.Geometry

	// Fault campaign armed by ApplyFaults; Run attaches its recovery
	// summary to the telemetry run record.
	inj        *faults.Injector
	faultSched *faults.Schedule
}

// New builds and wires a cluster.
func New(cfg Config) *Cluster {
	if cfg.NumStorage <= 0 {
		cfg.NumStorage = 3
	}
	if cfg.NumClients <= 0 {
		cfg.NumClients = 1
	}
	if cfg.ClientPortRate <= 0 {
		cfg.ClientPortRate = 12.5e9
	}
	env := sim.NewEnv()
	fabric := netsim.NewFabric(env, cfg.Fabric)
	c := &Cluster{
		Env:    env,
		Fabric: fabric,
		cfg:    cfg,
		rng:    rng.New(cfg.Seed),
		geo:    blockstore.DefaultGeometry(),
	}
	if cfg.Functional {
		c.corpus = corpus.New(cfg.Seed + 1)
	}

	// One tracer observes every layer: middle-tier stages, AAMS split/
	// assemble, engine occupancy, transport sends, and disk IOs.
	cfg.MT.Trace = cfg.Trace
	cfg.MT.Transport.Trace = cfg.Trace
	cfg.MT.Log = cfg.Log.With("mt")

	c.MT = middletier.New(env, fabric, cfg.MT)
	for i := 0; i < cfg.NumStorage; i++ {
		srv := storage.NewServer(env, fabric, netsim.Addr(fmt.Sprintf("ss%d", i)),
			cfg.ClientPortRate, cfg.MT.Transport, cfg.Disk)
		srv.Trace = cfg.Trace
		c.Storage = append(c.Storage, srv)
	}
	c.MT.ConnectStorage(c.Storage)

	// SmartDS with multiple ports serves clients per port; give every
	// port at least one client so all ports carry load.
	clients := cfg.NumClients
	if cfg.MT.Kind == middletier.SmartDS && clients < cfg.MT.Ports {
		clients = cfg.MT.Ports
	}
	if cfg.MT.Kind == middletier.BF2 && clients < cfg.MT.Ports {
		clients = cfg.MT.Ports
	}
	for i := 0; i < clients; i++ {
		c.Clients = append(c.Clients, c.newClient(i))
	}
	return c
}

// Client is one compute-server load generator (a VM storage agent).
type Client struct {
	c     *Cluster
	id    int
	comp  string // span component, precomputed so the hot path never allocates it
	stack *rdma.Stack
	qp    *rdma.QP
	rng   *rng.Source

	nextReq  uint64
	inflight map[uint64]*issued

	// Measurement state.
	measuring  bool
	Lat        *metrics.Histogram
	Done       uint64  // completed requests while measuring
	BytesMoved float64 // payload bytes of completed requests while measuring
	Errors     uint64
	verifyMism uint64

	// onComplete refills the closed-loop window.
	onComplete func()
	// completionHook, when set, observes every completion as
	// (virtual time, latency, errored) — the fault monitor's feed.
	completionHook func(at, lat float64, err bool)
	// sloHook feeds the same stream into the run's burn-rate engine
	// (reset by each Run so engines never stack across runs).
	sloHook func(at, lat float64, err bool)
	// latMetric is this client's telemetry latency histogram; sampled
	// completions attach exemplars to it.
	latMetric *telemetry.Metric
	nextLBA   uint64
	// Read-verification tracking.
	writtenLBAs []uint64
	writtenData map[uint64][]byte
}

type issued struct {
	at     sim.Time
	size   float64
	block  []byte // write: the block (tracked on completion); read: expected data
	lba    uint64
	isRead bool
}

func (c *Cluster) newClient(id int) *Client {
	stack := rdma.NewStack(c.Env, c.Fabric.NewPort(netsim.Addr(fmt.Sprintf("vm%d", id)), c.cfg.ClientPortRate), c.cfg.MT.Transport)
	cl := &Client{
		c:        c,
		id:       id,
		comp:     "client" + itoa(id),
		stack:    stack,
		rng:      c.rng.Split(),
		inflight: make(map[uint64]*issued),
		Lat:      metrics.NewLatencyHistogram(),
	}
	cl.qp = c.MT.ConnectClient(stack)
	cl.qp.OnRecv = cl.onReply
	return cl
}

// onReply completes one request: record latency, verify read data.
func (cl *Client) onReply(m *rdma.Message) {
	if m.Data == nil || len(m.Data) < blockstore.HeaderSize {
		return
	}
	h, err := blockstore.Decode(m.Data)
	if err != nil {
		return
	}
	iss, ok := cl.inflight[h.ReqID]
	if !ok {
		return
	}
	delete(cl.inflight, h.ReqID)
	op := "write"
	if iss.isRead {
		op = "read"
	}
	now := cl.c.Env.Now()
	lat := now - iss.at
	errored := h.Status != blockstore.StatusOK
	// Resolve the head-sampling decision once; tr is nil for unsampled
	// requests, making both End calls free.
	tid := middletier.TraceID(uint64(cl.id), h.ReqID)
	tr := cl.c.cfg.Trace.ForRequest(tid)
	tr.End(now, "net", "reply", tid)
	tr.End(now, cl.comp, op, h.ReqID)
	if errored {
		cl.Errors++
	} else if iss.isRead {
		if iss.block != nil && len(m.Data) > blockstore.HeaderSize {
			got := m.Data[blockstore.HeaderSize:]
			if lz4.Checksum(got) != lz4.Checksum(iss.block) {
				cl.verifyMism++
			}
		}
	} else {
		// The write is durable; reads may target it now (block is nil
		// for modeled payloads: the read then skips verification).
		cl.rememberWrite(iss.lba, iss.block)
	}
	if cl.completionHook != nil {
		cl.completionHook(now, lat, errored)
	}
	if cl.sloHook != nil {
		cl.sloHook(now, lat, errored)
	}
	if tr == nil && cl.c.cfg.Trace != nil {
		// Tail-based keep: errors and p999 outliers are retroactively
		// traced even when head sampling dropped them (outliers only
		// once the histogram has enough mass to trust its tail).
		if errored {
			cl.c.cfg.Trace.KeepTail(float64(iss.at), now, "error", tid)
		} else if cl.Lat.Count() >= 512 && lat >= cl.Lat.P999() {
			cl.c.cfg.Trace.KeepTail(float64(iss.at), now, "p999", tid)
		}
	}
	if cl.measuring {
		cl.Lat.Record(lat)
		cl.Done++
		cl.BytesMoved += iss.size
		if tr != nil && cl.latMetric != nil {
			// Exemplar: link this latency bucket to a kept trace id.
			cl.latMetric.RecordExemplar(lat, tid, now)
		}
	}
	if cl.onComplete != nil {
		cl.onComplete()
	}
}

// VerifyMismatches reports reads whose data did not match what was
// written (must be zero).
func (cl *Client) VerifyMismatches() uint64 { return cl.verifyMism }
