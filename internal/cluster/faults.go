package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/storage"
)

// ApplyFaults arms a fault campaign against this cluster and wires
// every client's completion stream into the injector's recovery
// monitor. Call before Run; the returned injector's Report and
// Monitor.Stats summarize the campaign afterwards.
func (c *Cluster) ApplyFaults(sched *faults.Schedule) (*faults.Injector, error) {
	inj := faults.New(faults.Target{
		Env:       c.Env,
		Fabric:    c.Fabric,
		MT:        c.MT,
		Storage:   c.Storage,
		Trace:     c.cfg.Trace,
		Log:       c.cfg.Log.With("faults"),
		Seed:      c.cfg.Seed,
		Reconnect: c.ReconnectTransport,
	}, sched)
	if err := inj.Arm(); err != nil {
		return nil, err
	}
	for _, cl := range c.Clients {
		cl.completionHook = inj.Monitor.OnCompletion
	}
	c.inj = inj
	c.faultSched = sched
	return inj, nil
}

// ReconnectTransport re-establishes every client<->middle-tier and
// middle-tier<->storage queue pair whose retry budget was exhausted
// while an endpoint was dark. Healthy connections are untouched.
func (c *Cluster) ReconnectTransport() {
	for i, cl := range c.Clients {
		local := c.MT.ClientLocalQP(i)
		if local == nil {
			continue
		}
		if cl.qp.Broken() || local.Broken() {
			rdma.Reconnect(cl.qp, local)
		}
	}
	for idx, srv := range c.Storage {
		c.MT.ReconnectStorage(idx, srv)
	}
}

// CheckAckedWrites verifies the protocol-generic durability contract
// the failover tests assert: every write a client saw acknowledged is
// still readable with the right bytes from enough healthy replicas in
// the chunk's current placement that every subsequent read must
// observe it. With n placement members of which h are currently
// serving, reads consult ReadQuorum(n) of the healthy members, so the
// block must be held by at least h-ReadQuorum(n)+1 of them (floor 1):
// for primary fan-out and chain (read quorum 1) that is every healthy
// member; for the 3-replica quorum protocol it is enough that every
// 2-member read quorum intersects the holders. Members that are down
// right now are exempt — reads cannot reach them and recovery rebuilds
// them from the survivors before they serve again. It returns nil when
// the contract holds; the error details the first few violations.
// Modeled-payload writes (no real bytes) are skipped. LBAs are walked
// in sorted order so reports are deterministic.
func (c *Cluster) CheckAckedWrites() error {
	var violations []string
	checked := 0
	for _, cl := range c.Clients {
		lbas := make([]uint64, 0, len(cl.writtenData))
		for lba, block := range cl.writtenData {
			if block != nil {
				lbas = append(lbas, lba)
			}
		}
		sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
		for _, lba := range lbas {
			block := cl.writtenData[lba]
			loc := c.geo.Resolve(lba)
			set := c.MT.ReplicaSet(loc.SegmentID, loc.ChunkID)
			checked++
			if len(set) == 0 {
				violations = append(violations,
					fmt.Sprintf("vm%d lba %d: no placement for seg %d chunk %d",
						cl.id, lba, loc.SegmentID, loc.ChunkID))
				continue
			}
			healthy := make([]int, 0, len(set))
			for _, idx := range set {
				if idx >= 0 && idx < len(c.Storage) && !c.Storage[idx].Down() {
					healthy = append(healthy, idx)
				}
			}
			need := len(healthy) - c.MT.ReadQuorum(len(set)) + 1
			if need < 1 {
				need = 1
			}
			if holders := c.blockHolders(loc, healthy, block); holders < need {
				violations = append(violations,
					fmt.Sprintf("vm%d lba %d: %d of healthy %v (placement %v) hold matching bytes, reads need %d",
						cl.id, lba, holders, healthy, set, need))
			}
			if len(violations) >= 8 {
				return fmt.Errorf("cluster: %d+ acked writes unreadable (checked %d): %v",
					len(violations), checked, violations)
			}
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("cluster: %d of %d acked writes unreadable: %v",
			len(violations), checked, violations)
	}
	return nil
}

// blockHolders counts the replicas in set holding the block's bytes
// (decoding the stored frame when it was compressed).
func (c *Cluster) blockHolders(loc blockstore.Location, set []int, block []byte) int {
	key := storage.BlockKey{SegmentID: loc.SegmentID, ChunkID: loc.ChunkID, BlockOff: loc.BlockOff}
	holders := 0
	for _, idx := range set {
		if idx < 0 || idx >= len(c.Storage) {
			continue
		}
		rec, ok := c.Storage[idx].Store().Lookup(key)
		if !ok || rec.Data == nil {
			continue
		}
		data := rec.Data
		if rec.Flags&blockstore.FlagCompressed != 0 {
			orig, err := lz4.DecodeFrame(data)
			if err != nil {
				continue
			}
			data = orig
		}
		if bytes.Equal(data, block) {
			holders++
		}
	}
	return holders
}
