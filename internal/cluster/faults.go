package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/storage"
)

// ApplyFaults arms a fault campaign against this cluster and wires
// every client's completion stream into the injector's recovery
// monitor. Call before Run; the returned injector's Report and
// Monitor.Stats summarize the campaign afterwards.
func (c *Cluster) ApplyFaults(sched *faults.Schedule) (*faults.Injector, error) {
	inj := faults.New(faults.Target{
		Env:       c.Env,
		Fabric:    c.Fabric,
		MT:        c.MT,
		Storage:   c.Storage,
		Trace:     c.cfg.Trace,
		Seed:      c.cfg.Seed,
		Reconnect: c.ReconnectTransport,
	}, sched)
	if err := inj.Arm(); err != nil {
		return nil, err
	}
	for _, cl := range c.Clients {
		cl.completionHook = inj.Monitor.OnCompletion
	}
	c.inj = inj
	c.faultSched = sched
	return inj, nil
}

// ReconnectTransport re-establishes every client<->middle-tier and
// middle-tier<->storage queue pair whose retry budget was exhausted
// while an endpoint was dark. Healthy connections are untouched.
func (c *Cluster) ReconnectTransport() {
	for i, cl := range c.Clients {
		local := c.MT.ClientLocalQP(i)
		if local == nil {
			continue
		}
		if cl.qp.Broken() || local.Broken() {
			rdma.Reconnect(cl.qp, local)
		}
	}
	for idx, srv := range c.Storage {
		c.MT.ReconnectStorage(idx, srv)
	}
}

// CheckAckedWrites verifies the durability contract the failover tests
// assert: every write a client saw acknowledged is still readable with
// the right bytes from at least one replica in the chunk's current
// placement. It returns nil when the contract holds; the error details
// the first few violations. Modeled-payload writes (no real bytes) are
// skipped. LBAs are walked in sorted order so reports are
// deterministic.
func (c *Cluster) CheckAckedWrites() error {
	var violations []string
	checked := 0
	for _, cl := range c.Clients {
		lbas := make([]uint64, 0, len(cl.writtenData))
		for lba, block := range cl.writtenData {
			if block != nil {
				lbas = append(lbas, lba)
			}
		}
		sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
		for _, lba := range lbas {
			block := cl.writtenData[lba]
			loc := c.geo.Resolve(lba)
			set := c.MT.ReplicaSet(loc.SegmentID, loc.ChunkID)
			checked++
			if len(set) == 0 {
				violations = append(violations,
					fmt.Sprintf("vm%d lba %d: no placement for seg %d chunk %d",
						cl.id, lba, loc.SegmentID, loc.ChunkID))
				continue
			}
			if !c.blockReadable(loc, set, block) {
				violations = append(violations,
					fmt.Sprintf("vm%d lba %d: no replica in %v holds matching bytes",
						cl.id, lba, set))
			}
			if len(violations) >= 8 {
				return fmt.Errorf("cluster: %d+ acked writes unreadable (checked %d): %v",
					len(violations), checked, violations)
			}
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("cluster: %d of %d acked writes unreadable: %v",
			len(violations), checked, violations)
	}
	return nil
}

// blockReadable reports whether any replica in set holds the block's
// bytes (decoding the stored frame when it was compressed).
func (c *Cluster) blockReadable(loc blockstore.Location, set []int, block []byte) bool {
	key := storage.BlockKey{SegmentID: loc.SegmentID, ChunkID: loc.ChunkID, BlockOff: loc.BlockOff}
	for _, idx := range set {
		if idx < 0 || idx >= len(c.Storage) {
			continue
		}
		rec, ok := c.Storage[idx].Store().Lookup(key)
		if !ok || rec.Data == nil {
			continue
		}
		data := rec.Data
		if rec.Flags&blockstore.FlagCompressed != 0 {
			orig, err := lz4.DecodeFrame(data)
			if err != nil {
				continue
			}
			data = orig
		}
		if bytes.Equal(data, block) {
			return true
		}
	}
	return false
}
