package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/slo"
	"github.com/disagg/smartds/internal/telemetry"
	"github.com/disagg/smartds/internal/trace"
)

// sloCampaign runs one fault campaign under an SLO spec and returns
// the fired alerts, the telemetry report JSON, and the event log.
func sloCampaign(t *testing.T, spec string) ([]slo.Alert, []byte, string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	var c *Cluster
	log := evlog.New(&buf, evlog.Info, func() float64 { return c.Env.Now() })

	cfg := DefaultConfig(middletier.SmartDS)
	cfg.Seed = 7
	cfg.NumStorage = 5
	cfg.MT.ReplicateTimeout = 1.5e-3
	cfg.Telemetry = reg
	cfg.TelemetryExp = "slo-test"
	cfg.SLO = slo.MustParse(spec)
	cfg.Log = log
	c = New(cfg)

	// A middle-tier restart halts all service for its window, so the
	// first post-fault completion — the monitor's TTR — lands well past
	// the 1 ms ceiling (a storage crash reroutes in microseconds and
	// would not burn TTR budget).
	sched := faults.MustParse("restart:mt@4ms+2ms")
	if _, err := c.ApplyFaults(sched); err != nil {
		t.Fatalf("ApplyFaults: %v", err)
	}
	res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 12e-3})
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	rep, err := json.Marshal(reg.BuildReport("slo-test", cfg.Seed, true, nil))
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return res.Alerts, rep, buf.String()
}

// TestSLOAlertsDeterministic pins the acceptance path end to end: a
// fault campaign whose recovery blows a 1 ms TTR ceiling fires an
// alert, the alert lands in the telemetry run record (what the
// smartds-report -slo gate reads), and two same-seed runs produce
// byte-identical alert lists and event logs.
func TestSLOAlertsDeterministic(t *testing.T) {
	const spec = "ttr:1ms"
	alertsA, repA, logA := sloCampaign(t, spec)
	alertsB, repB, logB := sloCampaign(t, spec)

	if len(alertsA) == 0 {
		t.Fatal("fault campaign fired no TTR alert")
	}
	found := false
	for _, al := range alertsA {
		if al.Kind == "ttr" && al.BurnShort > 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ttr alert over ceiling in %+v", alertsA)
	}

	ja, _ := json.Marshal(alertsA)
	jb, _ := json.Marshal(alertsB)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("alerts differ across same-seed runs:\n%s\n%s", ja, jb)
	}
	if !bytes.Equal(repA, repB) {
		t.Fatal("telemetry reports differ across same-seed runs")
	}
	if logA != logB {
		t.Fatalf("event logs differ across same-seed runs:\n%q\n%q", logA, logB)
	}
	if logA == "" {
		t.Fatal("event log empty — cluster/faults/mt emitted nothing")
	}

	// The record the report gate reads must carry the alert.
	var rep telemetry.Report
	if err := json.Unmarshal(repA, &rep); err != nil {
		t.Fatalf("report round-trip: %v", err)
	}
	fired := 0
	for _, run := range rep.Runs {
		fired += len(run.Alerts)
	}
	if fired == 0 {
		t.Fatal("report runs carry no alerts — smartds-report -slo gate would pass wrongly")
	}
}

// TestSampledTracingCluster pins head sampling at the cluster level: a
// 1% rate keeps far fewer spans than full tracing, the same seed keeps
// the same spans, and sampled completions attach exemplars that
// survive into the report.
func TestSampledTracingCluster(t *testing.T) {
	runOnce := func(rate float64) (spans int, exemplars int) {
		tr := trace.New(1 << 20) // big enough that the ring never wraps
		tr.SetSampling(rate, 42)
		reg := telemetry.NewRegistry()
		cfg := DefaultConfig(middletier.SmartDS)
		cfg.Seed = 11
		cfg.Trace = tr
		cfg.Telemetry = reg
		cfg.TelemetryExp = "sample-test"
		c := New(cfg)
		res := c.Run(Workload{Window: 8, Warmup: 1e-3, Measure: 8e-3})
		if res.Requests == 0 {
			t.Fatal("no requests completed")
		}
		rep := reg.BuildReport("sample-test", cfg.Seed, true, nil)
		return len(tr.Events()), len(rep.Exemplars)
	}

	full, fullEx := runOnce(1)
	sampled, sampledEx := runOnce(0.01)
	if sampled >= full/10 {
		t.Fatalf("1%% sampling kept %d of %d spans — head sampling not engaged", sampled, full)
	}
	if full == 0 || fullEx == 0 {
		t.Fatalf("full tracing recorded %d spans, %d exemplars", full, fullEx)
	}
	// Sampled exemplars only come from kept traces.
	if sampledEx > fullEx {
		t.Fatalf("sampled run has more exemplars (%d) than full (%d)", sampledEx, fullEx)
	}

	again, _ := runOnce(0.01)
	if again != sampled {
		t.Fatalf("same-seed sampled runs kept %d vs %d spans", again, sampled)
	}
}
