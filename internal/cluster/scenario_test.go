package cluster

import (
	"math"
	"testing"

	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/middletier"
)

func TestScenarioMinimal(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"kind": "smartds"}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.ClusterConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MT.Kind != middletier.SmartDS {
		t.Fatalf("kind = %v", cfg.MT.Kind)
	}
	// Defaults survive.
	if cfg.NumStorage != 3 || cfg.MT.Replicas != 3 || !cfg.Functional {
		t.Fatalf("defaults lost: %+v", cfg)
	}
	w := sc.WorkloadConfig()
	if w.Warmup <= 0 || w.Measure <= 0 {
		t.Fatalf("workload defaults missing: %+v", w)
	}
}

func TestScenarioFull(t *testing.T) {
	data := []byte(`{
		"kind": "acc",
		"seed": 7,
		"workers": 4,
		"replicas": 2,
		"compression_level": 6,
		"ddio": false,
		"port_gbps": 200,
		"storage_servers": 5,
		"clients": 2,
		"functional": false,
		"disk_gbps": 8,
		"window": 64,
		"warmup_ms": 3,
		"measure_ms": 9,
		"read_fraction": 0.25,
		"bypass_fraction": 0.1,
		"maintenance": true
	}`)
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.ClusterConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MT.Kind != middletier.Accel || cfg.MT.Workers != 4 || cfg.MT.Replicas != 2 {
		t.Fatalf("mt config wrong: %+v", cfg.MT)
	}
	if cfg.MT.Level != lz4.Level(6) || cfg.MT.DDIO || cfg.MT.PortRate != 25e9 {
		t.Fatalf("mt knobs wrong: %+v", cfg.MT)
	}
	if cfg.NumStorage != 5 || cfg.NumClients != 2 || cfg.Functional || cfg.Disk.BytesPerSec != 8e9 {
		t.Fatalf("cluster shape wrong: %+v", cfg)
	}
	w := sc.WorkloadConfig()
	if w.Window != 64 || math.Abs(w.Warmup-3e-3) > 1e-12 || math.Abs(w.Measure-9e-3) > 1e-12 ||
		w.ReadFraction != 0.25 || w.BypassFraction != 0.1 {
		t.Fatalf("workload wrong: %+v", w)
	}
	if !sc.Maintenance {
		t.Fatal("maintenance flag lost")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []string{
		`{"kind": "gpu"}`,
		`{"compression_level": 12}`,
		`{"read_fraction": 1.5}`,
		`{"bypass_fraction": -0.1}`,
		`not json`,
	}
	for _, data := range bad {
		if _, err := ParseScenario([]byte(data)); err == nil {
			t.Errorf("scenario %q accepted", data)
		}
	}
}

func TestScenarioRunsEndToEnd(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"kind": "smartds", "functional": false,
		"window": 16, "warmup_ms": 2, "measure_ms": 6
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := sc.ClusterConfig()
	c := New(cfg)
	res := c.Run(sc.WorkloadConfig())
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("scenario run failed: %+v", res)
	}
}
