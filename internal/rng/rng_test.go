package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicSequence(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	s := New(0)
	v := s.Uint64()
	for i := 0; i < 10; i++ {
		if s.Uint64() != v {
			return // sequence varies; fine
		}
	}
	t.Fatal("zero seed produced a constant sequence")
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		// one collision is suspicious but possible; check a few more
		if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
			t.Fatal("split children identical")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of bounds: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp returned negative %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp mean = %g, want ~2.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %g", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev = %g", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint16) bool {
		s := New(uint64(seed))
		n := int(seed%20) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesDeterministicAndFull(t *testing.T) {
	a, b := New(21), New(21)
	ba, bb := make([]byte, 37), make([]byte, 37)
	a.Bytes(ba)
	b.Bytes(bb)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("Bytes not deterministic")
		}
	}
	// Odd lengths covered: ensure some spread of values.
	uniq := map[byte]bool{}
	for _, v := range ba {
		uniq[v] = true
	}
	if len(uniq) < 10 {
		t.Fatalf("Bytes output suspiciously uniform: %d unique", len(uniq))
	}
}

func TestChoiceDistribution(t *testing.T) {
	s := New(17)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[s.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weighted ratio = %g, want ~3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	s := New(1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", w)
				}
			}()
			s.Choice(w)
		}()
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(99)
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
