// Package rng provides the deterministic, splittable pseudo-random
// number generator used across the simulation. Every stochastic choice
// (arrival times, corpus sampling, replica placement, loss injection)
// draws from an rng.Source derived from a single root seed, so whole
// experiments replay bit-for-bit.
//
// The generator is xoshiro256**, seeded through SplitMix64, both public
// domain algorithms.
package rng

import "math"

// Source is a deterministic PRNG. It is not safe for concurrent use;
// the simulation is single-threaded by construction so this is fine.
type Source struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New creates a Source from a 64-bit seed.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split derives an independent child generator. Each call yields a
// different child; parent and children remain decorrelated.
func (s *Source) Split() *Source {
	seed := s.Uint64() ^ 0xd2b74407b1ce6e93
	return New(seed)
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Exp returns an exponentially distributed value with the given mean.
// Used for Poisson inter-arrival times in open-loop workloads.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed value (Box–Muller).
func (s *Source) Norm(mean, stddev float64) float64 {
	u1 := s.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills b with random bytes.
func (s *Source) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := s.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	if i < len(b) {
		v := s.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Choice returns a uniformly random element index weighted by w. The
// weights must be non-negative and not all zero.
func (s *Source) Choice(w []float64) int {
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic("rng: negative weight")
		}
		total += v
	}
	if total <= 0 {
		panic("rng: all-zero weights")
	}
	target := s.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if target < acc {
			return i
		}
	}
	return len(w) - 1
}
